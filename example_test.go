package topomap_test

// Godoc examples: compile-checked documentation of the three ways to
// drive the library — the full paper pipeline through the Engine
// service API, an objective-driven portfolio race, and the algorithms
// directly on a hand-built coarse task graph.

import (
	"context"
	"fmt"
	"log"

	topomap "repro"
)

// ExampleEngine_Run runs the paper's full pipeline through the
// service API: generate a workload matrix, partition it into MPI
// ranks, build the task graph, construct an Engine for the (torus,
// allocation) pair — its routing state is precomputed once — and
// serve two mapping requests against it: the SMP-style default
// placement and UWH (greedy construction + WH refinement).
func ExampleEngine_Run() {
	m, err := topomap.GenerateMatrix("mesh2d-a", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	topo := topomap.NewHopperTorus(6, 6, 6)
	a, err := topomap.SparseAllocation(topo, 4, 1) // 4 nodes x 16 procs
	if err != nil {
		log.Fatal(err)
	}
	procs := a.TotalProcs()
	part, err := topomap.PartitionMatrix(topomap.PATOH, m, procs, 1)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, procs)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		log.Fatal(err)
	}
	def, err := eng.Run(topomap.Request{Mapper: topomap.DEF, Tasks: tg, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	uwh, err := eng.Run(topomap.Request{Mapper: topomap.UWH, Tasks: tg, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UWH weighted hops below DEF:", uwh.Metrics.WH <= def.Metrics.WH)
	// Output:
	// UWH weighted hops below DEF: true
}

// ExampleEngine_RunPortfolio declares an outcome instead of an
// algorithm: race three candidate mappers toward "minimize the
// maximum link congestion" and let the engine pick the winner. The
// candidates fan out over one bounded pool, selection is
// deterministic at any worker count, and the leaderboard reports
// every candidate's score.
func ExampleEngine_RunPortfolio() {
	m, err := topomap.GenerateMatrix("mesh2d-a", topomap.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	topo := topomap.NewHopperTorus(6, 6, 6)
	a, err := topomap.SparseAllocation(topo, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	procs := a.TotalProcs()
	part, err := topomap.PartitionMatrix(topomap.PATOH, m, procs, 1)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := topomap.BuildTaskGraph(m, part, procs)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.RunPortfolio(context.Background(), topomap.PortfolioRequest{
		Tasks:     tg,
		Objective: topomap.MinimizeMetric("mc"),
		Candidates: []topomap.Solve{
			{Mapper: topomap.UWH, Seed: 1},
			{Mapper: topomap.UMC, Seed: 1},
			{Mapper: topomap.SMAP, Seed: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	best := res.Leaderboard[0]
	fmt.Println("candidates raced:", len(res.Leaderboard))
	fmt.Println("winner heads the leaderboard:", res.Winner == best.Index)
	fmt.Println("winner has the lowest congestion score:",
		best.Score <= res.Leaderboard[1].Score && best.Score <= res.Leaderboard[2].Score)
	// Output:
	// candidates raced: 3
	// winner heads the leaderboard: true
	// winner has the lowest congestion score: true
}

// ExampleGreedyMap drives the algorithms directly: a hand-built
// coarse task graph (a ring with two heavy pairs), mapped one-to-one
// onto four allocated nodes by Algorithm 1 and improved in place by
// Algorithm 2, which only ever accepts WH-lowering swaps.
func ExampleGreedyMap() {
	topo := topomap.NewHopperTorus(4, 4, 4)
	// Ring 0-1-2-3-0: edges 0-1 and 2-3 are heavy.
	coarse := topomap.FromEdges(4,
		[]int32{0, 1, 1, 2, 2, 3, 3, 0},
		[]int32{1, 0, 2, 1, 3, 2, 0, 3},
		[]int64{90, 90, 5, 5, 90, 90, 5, 5})
	nodes := []int32{0, 1, 21, 42} // a scattered allocation
	nodeOf := topomap.GreedyMap(coarse, topo, nodes)
	before := topomap.EvaluateMetrics(&topomap.TaskGraph{G: coarse, K: 4}, topo,
		&topomap.Placement{NodeOf: nodeOf}).WH
	topomap.RefineWH(coarse, topo, nodes, nodeOf)
	after := topomap.EvaluateMetrics(&topomap.TaskGraph{G: coarse, K: 4}, topo,
		&topomap.Placement{NodeOf: nodeOf}).WH
	fmt.Println("refinement never regresses:", after <= before)
	// Output:
	// refinement never regresses: true
}

package topomap

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/remap"
	"repro/internal/routecache"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// NodeCapacity names one node of an AllocationDelta together with its
// processor capacity.
type NodeCapacity struct {
	Node  int32 `json:"node"`
	Procs int   `json:"procs"`
}

// AllocationDelta is a serializable description of how an allocation
// changed: nodes the scheduler took away, nodes it handed over, and
// nodes whose usable capacity changed. A node may appear at most once
// across the three lists. Setting a node's capacity to zero removes
// it — the wire form of "this node still exists but you may not use
// it". The delta is the unit POST /v1/remap and cmd/mapper -remap
// carry; Apply defines its exact semantics.
type AllocationDelta struct {
	Remove      []int32        `json:"remove,omitempty"`
	Add         []NodeCapacity `json:"add,omitempty"`
	SetCapacity []NodeCapacity `json:"set_capacity,omitempty"`
}

// Empty reports whether the delta changes nothing.
func (d AllocationDelta) Empty() bool {
	return len(d.Remove) == 0 && len(d.Add) == 0 && len(d.SetCapacity) == 0
}

// Apply produces the post-delta allocation: removed and
// zero-capacity nodes leave, surviving nodes keep their allocation
// order (with updated capacities), added nodes append in Add order.
// It validates the delta against the previous allocation — removals
// and capacity changes must name allocated nodes, additions must name
// valid topology nodes not already allocated, no node may appear
// twice — and rejects deltas that change nothing or empty the
// allocation, so a remap request always has real work and a feasible
// target.
func (d AllocationDelta) Apply(topo Topology, prev *Allocation) (*Allocation, error) {
	if d.Empty() {
		return nil, fmt.Errorf("topomap: empty allocation delta; a remap needs a change")
	}
	idx := make(map[int32]int, prev.NumNodes())
	for i, m := range prev.Nodes {
		idx[m] = i
	}
	touched := map[int32]bool{}
	touch := func(m int32) error {
		if touched[m] {
			return fmt.Errorf("topomap: delta names node %d twice", m)
		}
		touched[m] = true
		return nil
	}
	drop := map[int32]bool{}
	procs := append([]int(nil), prev.ProcsPerNode...)
	for _, m := range d.Remove {
		if err := touch(m); err != nil {
			return nil, err
		}
		if _, ok := idx[m]; !ok {
			return nil, fmt.Errorf("topomap: delta removes node %d, which is not allocated", m)
		}
		drop[m] = true
	}
	for _, nc := range d.SetCapacity {
		if err := touch(nc.Node); err != nil {
			return nil, err
		}
		i, ok := idx[nc.Node]
		if !ok {
			return nil, fmt.Errorf("topomap: delta sets capacity of node %d, which is not allocated", nc.Node)
		}
		if nc.Procs < 0 {
			return nil, fmt.Errorf("topomap: delta sets negative capacity %d on node %d", nc.Procs, nc.Node)
		}
		if nc.Procs == 0 {
			drop[nc.Node] = true
			continue
		}
		procs[i] = nc.Procs
	}
	next := &Allocation{}
	for i, m := range prev.Nodes {
		if drop[m] {
			continue
		}
		next.Nodes = append(next.Nodes, m)
		next.ProcsPerNode = append(next.ProcsPerNode, procs[i])
		next.Speeds = append(next.Speeds, prev.Speed(i))
	}
	for _, nc := range d.Add {
		if err := touch(nc.Node); err != nil {
			return nil, err
		}
		if _, ok := idx[nc.Node]; ok {
			return nil, fmt.Errorf("topomap: delta adds node %d, which is already allocated", nc.Node)
		}
		if nc.Node < 0 || int(nc.Node) >= topo.Nodes() {
			return nil, fmt.Errorf("topomap: delta adds node %d outside the topology", nc.Node)
		}
		if nc.Procs <= 0 {
			return nil, fmt.Errorf("topomap: delta adds node %d with capacity %d", nc.Node, nc.Procs)
		}
		next.Nodes = append(next.Nodes, nc.Node)
		next.ProcsPerNode = append(next.ProcsPerNode, nc.Procs)
		next.Speeds = append(next.Speeds, 1)
	}
	if next.NumNodes() == 0 {
		return nil, fmt.Errorf("topomap: delta empties the allocation")
	}
	// Surviving nodes keep their speed factors; added nodes default to
	// unit speed. A fully homogeneous result canonicalizes back to the
	// nil vector so fingerprints and wire bytes stay in the legacy form.
	next.CanonicalizeSpeeds()
	return next, nil
}

// DefaultFenceThreshold is the quality fence's default allowed
// relative objective regression of the warm path over the previous
// mapping: 5% before the engine falls back to a cold solve.
const DefaultFenceThreshold = 0.05

// RemapSpec is the declarative, serializable form of one remap job:
// the solve knobs the warm pipeline and any cold fallback share, the
// objective the quality fence scores, and the fence threshold.
type RemapSpec struct {
	// Solve configures the remap: Seed/Workers/FineRefine/Sim/
	// TimeoutMS apply to the warm pipeline, and the whole Solve is the
	// cold fallback's spec (Mapper defaults to the previous result's
	// mapper when empty; Refine is implied — the warm path always ends
	// in WH refinement).
	Solve Solve `json:"solve,omitempty"`
	// Objective is what the quality fence scores (zero value: WH).
	Objective Objective `json:"objective,omitempty"`
	// FenceThreshold is the allowed relative regression of the warm
	// result's objective over the previous mapping before the engine
	// falls back to a cold solve: 0 means DefaultFenceThreshold,
	// negative disables the fence entirely.
	FenceThreshold float64 `json:"fence_threshold,omitempty"`
}

// RemapOption tunes one Remap call by mutating the RemapSpec it
// lowers onto.
type RemapOption func(*RemapSpec)

// WithRemapSolve sets the solve knobs of the remap (see
// RemapSpec.Solve).
func WithRemapSolve(s Solve) RemapOption {
	return func(r *RemapSpec) { r.Solve = s }
}

// WithRemapObjective sets the objective the quality fence scores.
func WithRemapObjective(o Objective) RemapOption {
	return func(r *RemapSpec) { r.Objective = o }
}

// WithFenceThreshold sets the allowed relative warm-path regression
// (see RemapSpec.FenceThreshold).
func WithFenceThreshold(t float64) RemapOption {
	return func(r *RemapSpec) { r.FenceThreshold = t }
}

// RemapResult is the outcome of an incremental remap: the winning
// mapping on the post-delta allocation, the engine serving that
// allocation (route state patched, not rebuilt — reuse it for
// follow-on requests), and the warm-vs-cold accounting.
type RemapResult struct {
	// Result is the winning mapping in the new allocation's index
	// space.
	Result *MapResult
	// Engine serves the post-delta (topology, allocation) pair.
	Engine *Engine
	// Allocation is the post-delta allocation.
	Allocation *Allocation
	// Warm reports that the warm-started result won; false means the
	// fence fell back to a cold solve and the cold result won.
	Warm bool
	// FenceTripped reports that the warm result regressed past the
	// threshold and the cold fallback ran (the winner is still
	// whichever scored lower).
	FenceTripped bool
	// PrevScore, WarmScore and ColdScore are the objective values of
	// the previous mapping, the warm result, and the cold fallback
	// (ColdScore is meaningful only when FenceTripped).
	PrevScore, WarmScore, ColdScore float64
	// PairsReused of PairsTotal route-cache pairs survived the delta
	// verbatim.
	PairsReused, PairsTotal int
	// MigratedTasks counts the tasks the delta stranded (dead or
	// over-capacity nodes) and the greedy placement moved.
	MigratedTasks int
}

// Remap incrementally remaps a finished result onto a changed
// allocation: the per-pair route cache is patched in place (only
// pairs touching changed nodes recompute), tasks stranded on removed
// or shrunk nodes migrate via cheapest-feasible-node greedy
// placement, and WH — plus congestion refinement when the objective
// asks for a congestion metric — warm-starts from the patched
// placement instead of reconstructing from scratch. A quality fence
// guards the shortcut: when the warm result's objective regresses
// more than the configured threshold over prev's score, a cold
// RunSolve runs and the better result wins. Like every engine
// entry point, the output is byte-identical at any worker count.
func (e *Engine) Remap(ctx context.Context, tasks *TaskGraph, prev *MapResult, delta AllocationDelta, opts ...RemapOption) (*RemapResult, error) {
	var spec RemapSpec
	for _, opt := range opts {
		opt(&spec)
	}
	return e.RunRemap(ctx, tasks, prev, delta, spec)
}

// RunRemap is Remap with an explicit declarative spec — the form the
// wire protocol carries. See Remap.
func (e *Engine) RunRemap(ctx context.Context, tasks *TaskGraph, prev *MapResult, delta AllocationDelta, spec RemapSpec) (*RemapResult, error) {
	if tasks == nil {
		return nil, fmt.Errorf("topomap: remap carries no task graph")
	}
	if prev == nil {
		return nil, fmt.Errorf("topomap: remap carries no previous result")
	}
	if len(prev.GroupOf) != tasks.K {
		return nil, fmt.Errorf("topomap: previous result places %d tasks, task graph has %d", len(prev.GroupOf), tasks.K)
	}
	if len(prev.NodeOf) != e.alloc.NumNodes() {
		return nil, fmt.Errorf("topomap: previous result uses %d nodes, engine's allocation has %d", len(prev.NodeOf), e.alloc.NumNodes())
	}
	if err := spec.Objective.Validate(); err != nil {
		return nil, err
	}
	if spec.Solve.TimeoutMS < 0 {
		return nil, fmt.Errorf("topomap: negative timeout_ms %d", spec.Solve.TimeoutMS)
	}
	if spec.Solve.TimeoutMS > 0 {
		// One budget covers the whole remap — warm path plus any cold
		// fallback — so the fence cannot double the caller's deadline.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.Solve.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	prevScore, err := spec.Objective.Score(prev)
	if err != nil {
		return nil, fmt.Errorf("topomap: remap fence cannot score the previous result: %w", err)
	}

	next, err := delta.Apply(e.topo, e.alloc)
	if err != nil {
		return nil, err
	}
	if int64(tasks.K) > int64(next.TotalProcs()) {
		return nil, fmt.Errorf("topomap: %d tasks exceed %d processors after the delta", tasks.K, next.TotalProcs())
	}
	// The warm path's trace starts here: the route-cache patch is the
	// remap's first real stage, and its reuse counters are exactly what
	// an operator reads the trace for.
	var tr *trace.Trace
	if spec.Solve.Trace {
		tr = trace.New()
	}
	sp := tr.Start("route_patch")
	view, pstats, err := routecache.Patch(e.view, next.Nodes)
	sp.Add("pairs_reused", int64(pstats.Reused))
	sp.Add("pairs_total", int64(pstats.Total))
	sp.End()
	if err != nil {
		return nil, err
	}
	ne := newEngineView(e.topo, view, next)

	res := &RemapResult{
		Engine:      ne,
		Allocation:  next,
		PairsReused: pstats.Reused,
		PairsTotal:  pstats.Total,
		PrevScore:   prevScore,
	}
	warm, err := ne.warmRemap(ctx, tasks, prev, spec, tr)
	if err != nil {
		return nil, err
	}
	res.Result = warm.res
	res.MigratedTasks = warm.migrated
	res.WarmScore, err = spec.Objective.Score(warm.res)
	if err != nil {
		return nil, err
	}
	res.Warm = true

	threshold := spec.FenceThreshold
	if threshold == 0 {
		threshold = DefaultFenceThreshold
	}
	if threshold >= 0 && res.WarmScore > prevScore*(1+threshold) {
		res.FenceTripped = true
		coldSolve := spec.Solve
		coldSolve.TimeoutMS = 0 // ctx already carries the budget
		if coldSolve.Mapper == "" {
			coldSolve.Mapper = prev.Mapper
		}
		cold, err := ne.runSolve(ctx, tasks, coldSolve, 0)
		if err != nil {
			return nil, fmt.Errorf("topomap: remap cold fallback: %w", err)
		}
		res.ColdScore, err = spec.Objective.Score(cold)
		if err != nil {
			return nil, err
		}
		// The warm result wins ties: it is the cheaper path and the
		// smaller migration.
		if res.ColdScore < res.WarmScore {
			res.Result = cold
			res.Warm = false
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// warmResult bundles the warm pipeline's output.
type warmResult struct {
	res      *MapResult
	migrated int
}

// warmRemap runs the warm pipeline on the post-delta engine: patch
// the placement (migrating only stranded tasks), rebuild the coarse
// graph over the patched grouping, then refine — WH always, plus the
// congestion pass the objective's first congestion metric selects —
// and evaluate. The pipeline mirrors runSolve's stage order
// (placement-mutating steps before capacity repair on heterogeneous
// allocations) so its determinism contract carries over. tr (nil
// untraced) continues the stage timeline RunRemap opened with the
// route-cache patch.
func (e *Engine) warmRemap(ctx context.Context, tg *TaskGraph, prev *MapResult, spec RemapSpec, tr *trace.Trace) (*warmResult, error) {
	workers := spec.Solve.Workers
	ex := &core.Exec{Par: parallel.NewGroup(ctx, workers), Arena: e.arena, Trace: tr}
	poolWorkers := ex.Par.NumWorkers()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := ex.StartSpan("patch_placement")
	sym := tg.SymmetricArena(e.arena)
	caps := make([]int64, e.alloc.NumNodes())
	for i, p := range e.alloc.ProcsPerNode {
		caps[i] = int64(p)
	}
	plan, err := remap.PatchPlacement(remap.Instance{
		Sym:        sym,
		Topo:       e.view,
		OldGroupOf: prev.GroupOf,
		OldNodeOf:  prev.NodeOf,
		NewNodes:   e.alloc.Nodes,
		NewCaps:    caps,
	})
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Add("migrated_tasks", int64(len(plan.Stranded)))
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp = ex.StartSpan("coarsen")
	coarse := taskgraph.CoarseGraphArena(e.arena, tg, plan.GroupOf, e.alloc.NumNodes())
	sp.Add("coarse_vertices", int64(coarse.N()))
	sp.Add("coarse_edges", int64(coarse.M()))
	sp.End()
	nodeOf := plan.NodeOf
	sp = ex.StartSpan("refine_wh")
	sp.SetWorkers(poolWorkers)
	core.RefineWH(coarse, e.view, e.alloc.Nodes, nodeOf, core.RefineOptions{Exec: ex})
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if kind, ok := congestionKind(spec.Objective); ok {
		sp = ex.StartSpan("refine_congestion")
		sp.SetWorkers(poolWorkers)
		g := coarse
		if kind == core.MessageCongestion {
			g = taskgraph.CoarseMessageGraphArena(e.arena, tg, plan.GroupOf, e.alloc.NumNodes())
		}
		core.RefineCongestion(g, e.view, e.alloc.Nodes, nodeOf, kind, core.RefineOptions{Exec: ex})
		sp.End()
	}
	if !e.uniform {
		sp = ex.StartSpan("repair")
		weight := e.arena.Int64s(coarse.N())
		for _, g := range plan.GroupOf {
			weight[g]++
		}
		moves := core.RepairCapacities(coarse, e.view, nodeOf, weight, e.capOfNode)
		e.arena.PutInt64s(weight)
		sp.Add("repair_moves", int64(moves))
		sp.End()
	}
	// Mirror runSolve: after the delta the load distribution can be
	// badly skewed (a fast node removed, its tasks migrated wholesale),
	// so the warm path re-balances toward the makespan before the fence
	// scores it.
	if spec.Solve.Balance || !e.unitSpeeds {
		sp = ex.StartSpan("balance")
		moves := hetero.RepairLoad(tg.G, coarse, plan.GroupOf, nodeOf, e.speedOfNode, e.capOfNode)
		sp.Add("balance_moves", int64(moves))
		sp.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &MapResult{Mapper: prev.Mapper, GroupOf: plan.GroupOf, NodeOf: nodeOf, Coarse: coarse, Trace: tr}
	if spec.Solve.FineRefine {
		sp = ex.StartSpan("refine_fine")
		sp.SetWorkers(poolWorkers)
		res.FineWHGain, res.FineVolGain = core.RefineWHFine(sym, e.view, plan.GroupOf, nodeOf, core.RefineOptions{Exec: ex})
		sp.End()
	}
	pl := &metrics.Placement{GroupOf: plan.GroupOf, NodeOf: nodeOf}
	sp = ex.StartSpan("metrics")
	sp.SetWorkers(poolWorkers)
	res.Metrics = metrics.ComputePar(tg.G, e.view, pl, ex.Par)
	if !e.unitSpeeds {
		res.Metrics.Makespan, res.Metrics.LoadImbalance = hetero.Summary(tg.G, plan.GroupOf, nodeOf, e.speedOfNode)
	}
	sp.End()
	if spec.Solve.Sim != nil {
		sp = ex.StartSpan("sim")
		res.SimSeconds = netsim.CommOnly(tg.G, e.view, pl, spec.Solve.Sim.BytesPerUnit, spec.Solve.Sim.Params).Seconds
		res.SimRan = true
		sp.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &warmResult{res: res, migrated: len(plan.Stranded)}, nil
}

// congestionKind selects the congestion-refinement pass the warm path
// runs from the objective: the first congestion metric among its
// terms wins — "mmc" asks for message congestion, "mc"/"amc"/"ac"
// for volume congestion. Objectives without a congestion term (WH,
// hops, sim time) skip the pass; WH refinement already ran.
func congestionKind(o Objective) (core.CongestionKind, bool) {
	ts, err := o.terms()
	if err != nil {
		return 0, false
	}
	for _, t := range ts {
		switch t.Metric {
		case "mmc":
			return core.MessageCongestion, true
		case "mc", "amc", "ac":
			return core.VolumeCongestion, true
		}
	}
	return 0, false
}

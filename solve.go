package topomap

import (
	"time"

	"repro/internal/parallel"
)

// Solve is the declarative, serializable core of one mapping job: the
// mapper to dispatch, the seed driving its randomized choices, and
// every per-request behaviour knob as a plain JSON-tagged field. A
// Solve fully determines the engine's behaviour for a task graph —
// two equal Solve values produce byte-identical results — which makes
// it the unit the mapd wire protocol, portfolio candidate lists and
// persisted job specs all share instead of mirroring the closure
// options field by field.
//
// The legacy Request/RequestOption surface lowers onto a Solve (see
// Request.Solve); both paths run the identical pipeline.
type Solve struct {
	// Mapper names the algorithm, dispatched through the registry.
	Mapper Mapper `json:"mapper"`
	// Seed drives any randomized choice the mapper makes.
	Seed int64 `json:"seed,omitempty"`
	// Refine applies an extra WH swap-refinement pass (Algorithm 2)
	// to the mapper's output; the UWH family already ends with it.
	Refine bool `json:"refine,omitempty"`
	// FineRefine applies the §III-B fine-level refinement after
	// mapping; gains land in MapResult.FineWHGain / FineVolGain.
	FineRefine bool `json:"fine_refine,omitempty"`
	// TimeoutMS bounds this solve's wall-clock in milliseconds; the
	// pipeline bails cooperatively (see RunContext) once the budget
	// expires and surfaces context.DeadlineExceeded. 0 means no
	// per-solve budget (the caller's ctx still governs); negative is
	// rejected. Inside RunPortfolio an over-budget candidate is marked
	// Skipped instead of failing the portfolio — the per-candidate
	// budget the wire protocol exposes.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers bounds the worker goroutines of this solve. 0 means the
	// caller-dependent default: all CPUs for Run/RunContext/RunSolve,
	// one worker per request inside RunBatch and per candidate inside
	// RunPortfolio (their pools already fan out). The result is
	// byte-identical at any value; only the wall-clock changes.
	Workers int `json:"workers,omitempty"`
	// Sim, when set, additionally runs the communication-only
	// simulator (§IV-C) on the finished mapping and stores the result
	// in MapResult.SimSeconds.
	Sim *SimSpec `json:"sim,omitempty"`
	// Trace records the solve's stage timeline — wall time, workers
	// and per-stage counters for grouping, coarsening, the mapper,
	// every refinement pass and metric evaluation — in
	// MapResult.Trace. Tracing never changes the mapping: a traced and
	// an untraced solve are byte-identical; disabled (the default) it
	// costs nothing.
	Trace bool `json:"trace,omitempty"`
	// Balance runs the makespan-aware load-repair stage after mapping:
	// the costliest tasks migrate off the bottleneck node (per-task
	// loads over per-node speeds) onto the cheapest feasible node. The
	// stage runs automatically whenever the allocation declares
	// non-unit speeds; Balance opts in for loads-only jobs, where
	// per-task costs exist but every node runs at unit speed.
	Balance bool `json:"balance,omitempty"`
}

// SimSpec configures the post-solve communication-only simulation of
// a Solve. BytesPerUnit scales task-graph volume units to bytes.
type SimSpec struct {
	BytesPerUnit float64   `json:"bytes_per_unit"`
	Params       SimParams `json:"params"`
}

// Request is one mapping job for an Engine in the legacy imperative
// form: which mapper to run, the task graph to place, the seed, and
// functional options. It lowers onto the declarative Solve (see
// Request.Solve); keep using it freely — it is a thin shim, not a
// deprecated path — or hand the engine a Solve directly via RunSolve.
type Request struct {
	Mapper  Mapper
	Tasks   *TaskGraph
	Seed    int64
	Options []RequestOption
}

// RequestOption tunes one Request by mutating the Solve it lowers
// onto.
type RequestOption func(*Solve)

// Solve lowers the request onto its declarative form: the Mapper and
// Seed fields copied over, then every option applied in order. The
// engine runs the returned Solve, so Request and an equal hand-built
// Solve are byte-identical by construction.
func (r Request) Solve() Solve {
	s := Solve{Mapper: r.Mapper, Seed: r.Seed}
	for _, opt := range r.Options {
		opt(&s)
	}
	return s
}

// Request wraps the Solve back into the imperative Request form — the
// bridge for APIs that consume Request slices (RunBatch). The
// returned request lowers back onto exactly this Solve.
func (s Solve) Request(tasks *TaskGraph) Request {
	return Request{Mapper: s.Mapper, Tasks: tasks, Seed: s.Seed,
		Options: []RequestOption{func(dst *Solve) { *dst = s }}}
}

// WithRefinement applies an extra WH swap-refinement pass
// (Algorithm 2) to the mapper's output — useful to polish baselines
// such as DEF or a custom registered mapper; the UWH family already
// ends with it.
func WithRefinement() RequestOption {
	return func(s *Solve) { s.Refine = true }
}

// WithFineRefine applies the §III-B fine-level refinement after
// mapping: individual tasks swap groups when that lowers WH without
// raising the inter-node volume. The gains are reported in
// MapResult.FineWHGain / FineVolGain. The paper leaves this off by
// default.
func WithFineRefine() RequestOption {
	return func(s *Solve) { s.FineRefine = true }
}

// WithParallelism bounds the worker goroutines of this request's
// solve: the grouping partitioner forks its bisection subtrees, the
// greedy mapper runs its two seeded attempts concurrently, and the
// refinement stages fan candidate scoring out — all on one bounded
// pool of n workers. The result is byte-identical for every n; only
// the wall-clock changes. n <= 0 (and the default for Run/RunContext
// when the option is absent) means parallel.Workers(), i.e. one
// worker per available CPU. Requests inside RunBatch default to 1
// worker instead, because the batch pool already fans out across
// requests; pass WithParallelism explicitly to oversubscribe
// deliberately.
func WithParallelism(n int) RequestOption {
	return func(s *Solve) {
		if n <= 0 {
			n = parallel.Workers()
		}
		s.Workers = n
	}
}

// WithTrace records the solve's stage timeline in MapResult.Trace
// (see Solve.Trace). The mapping itself is byte-identical traced or
// not.
func WithTrace() RequestOption {
	return func(s *Solve) { s.Trace = true }
}

// WithBalance runs the makespan-aware load-repair stage after mapping
// (see Solve.Balance) — the opt-in for loads-only jobs; allocations
// with non-unit speeds get the stage automatically.
func WithBalance() RequestOption {
	return func(s *Solve) { s.Balance = true }
}

// WithTimeout bounds the solve's wall-clock; sub-millisecond values
// round up to 1ms so a tiny but positive budget never lowers to "no
// budget". See Solve.TimeoutMS.
func WithTimeout(d time.Duration) RequestOption {
	return func(s *Solve) {
		ms := d.Milliseconds()
		if ms == 0 && d > 0 {
			ms = 1
		}
		s.TimeoutMS = ms
	}
}

// WithSimParams additionally runs the communication-only simulator
// (§IV-C) on the finished mapping and stores the simulated seconds in
// MapResult.SimSeconds. bytesPerUnit scales task-graph volume units
// to bytes.
func WithSimParams(bytesPerUnit float64, p SimParams) RequestOption {
	return func(s *Solve) {
		s.Sim = &SimSpec{BytesPerUnit: bytesPerUnit, Params: p}
	}
}

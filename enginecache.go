package topomap

import (
	"container/list"
	"sync"
)

// EngineCache is an LRU cache of Engines keyed by the canonical
// fingerprint of their (topology, allocation) pair. Building an
// Engine tabulates the pairwise routing state of the allocation —
// the expensive part of serving a mapping request cold — so a
// resident service keeps one cache and lets repeated jobs on the same
// partition skip the rebuild. The cache is safe for concurrent use;
// concurrent misses on the same key build the engine once and share
// it (the losers block on the winner's build instead of duplicating
// it).
//
// Internally the cache is sharded by a hash of the fingerprint key:
// each shard owns its own mutex, LRU list and share of the capacity,
// so concurrent lookups of different allocations — the portfolio
// daemon's steady state — no longer serialize behind one lock.
// Counters are kept per shard and summed on read, so Stats stays
// exact. Small caches (under four entries per would-be shard)
// collapse to a single shard, preserving exact global LRU order.
type EngineCache struct {
	max    int
	shards []engineCacheShard
}

// engineCacheShard is one independently locked slice of the cache.
type engineCacheShard struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions int64
}

// cacheEntry is one keyed engine; once gates the single build shared
// by concurrent misses.
type cacheEntry struct {
	key  string
	once sync.Once
	eng  *Engine
	err  error
}

// DefaultEngineCacheSize bounds the process-wide cache behind
// NewCachedEngine.
const DefaultEngineCacheSize = 64

// engineCacheMaxShards bounds the shard fan-out; engineCacheMinPerShard
// is the smallest per-shard capacity worth splitting for. Eviction is
// per shard, so a hot working set that hash-skews into one shard is
// capped at that shard's quota — a generous 16-entry floor keeps the
// thrash probability negligible while still splitting the default
// 64-engine cache four ways. Caches under two shards' worth stay
// single-sharded, which also keeps eviction order exactly LRU for
// small caches.
const (
	engineCacheMaxShards   = 8
	engineCacheMinPerShard = 16
)

// NewEngineCache returns an empty cache holding at most max engines
// (max <= 0 means DefaultEngineCacheSize).
func NewEngineCache(max int) *EngineCache {
	if max <= 0 {
		max = DefaultEngineCacheSize
	}
	n := max / engineCacheMinPerShard
	if n > engineCacheMaxShards {
		n = engineCacheMaxShards
	}
	if n < 1 {
		n = 1
	}
	c := &EngineCache{max: max, shards: make([]engineCacheShard, n)}
	base, rem := max/n, max%n
	for i := range c.shards {
		s := &c.shards[i]
		s.max = base
		if i < rem {
			s.max++
		}
		s.ll = list.New()
		s.entries = make(map[string]*list.Element)
	}
	return c
}

// shardFor hashes the fingerprint key onto a shard: inline FNV-1a so
// the daemon's hottest path pays no allocation before the shard lock.
func (c *EngineCache) shardFor(key string) *engineCacheShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

// Get returns the cached engine for the (topology, allocation)
// fingerprint, building and inserting it on a miss. hit reports
// whether the routing state was reused.
func (c *EngineCache) Get(topo Topology, a *Allocation) (eng *Engine, hit bool, err error) {
	return c.GetKeyed(EngineFingerprint(topo, a), func() (*Engine, error) {
		return NewEngine(topo, a)
	})
}

// GetKeyed is Get with a caller-supplied canonical key and engine
// constructor — for callers (the mapd service) that derive the key
// from a wire-level topology spec without building the topology
// first. The key must uniquely determine the engine build.
func (c *EngineCache) GetKeyed(key string, build func() (*Engine, error)) (eng *Engine, hit bool, err error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		s.hits++
		s.mu.Unlock()
		e.once.Do(func() {}) // wait for an in-flight build
		if e.err != nil {
			return nil, false, e.err
		}
		return e.eng, true, nil
	}
	e := &cacheEntry{key: key}
	s.entries[key] = s.ll.PushFront(e)
	s.misses++
	for s.ll.Len() > s.max {
		lru := s.ll.Back()
		s.ll.Remove(lru)
		delete(s.entries, lru.Value.(*cacheEntry).key)
		s.evictions++
	}
	s.mu.Unlock()

	e.once.Do(func() { e.eng, e.err = build() })
	if e.err != nil {
		// Never serve a failed build from the cache.
		s.mu.Lock()
		if el, ok := s.entries[key]; ok && el.Value == e {
			s.ll.Remove(el)
			delete(s.entries, key)
		}
		s.mu.Unlock()
		return nil, false, e.err
	}
	return e.eng, false, nil
}

// Len returns the number of cached engines (including in-flight
// builds).
func (c *EngineCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Cap returns the maximum number of cached engines (the per-shard
// capacities sum to it exactly).
func (c *EngineCache) Cap() int { return c.max }

// Shards returns the number of independently locked shards.
func (c *EngineCache) Shards() int { return len(c.shards) }

// Stats returns the cumulative hit, miss and eviction counts, summed
// exactly over the per-shard counters. An eviction rate rivaling the
// miss rate tells an operator the cache is sized below the live
// (topology, allocation) working set, i.e. the cached-path win is
// not being realized.
func (c *EngineCache) Stats() (hits, misses, evictions int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		evictions += s.evictions
		s.mu.Unlock()
	}
	return hits, misses, evictions
}

// processEngines backs NewCachedEngine: one cache per process, the
// way a resident scheduler component holds it.
var processEngines = NewEngineCache(DefaultEngineCacheSize)

// NewCachedEngine is NewEngine through a process-wide LRU cache: a
// repeated (topology, allocation) fingerprint returns the already
// built engine, skipping the route-state rebuild. The returned engine
// is shared and immutable — exactly as safe as any Engine — and must
// not be assumed private to the caller.
func NewCachedEngine(topo Topology, a *Allocation) (*Engine, error) {
	eng, _, err := processEngines.Get(topo, a)
	return eng, err
}

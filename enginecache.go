package topomap

import (
	"container/list"
	"sync"
)

// EngineCache is an LRU cache of Engines keyed by the canonical
// fingerprint of their (topology, allocation) pair. Building an
// Engine tabulates the pairwise routing state of the allocation —
// the expensive part of serving a mapping request cold — so a
// resident service keeps one cache and lets repeated jobs on the same
// partition skip the rebuild. The cache is safe for concurrent use;
// concurrent misses on the same key build the engine once and share
// it (the losers block on the winner's build instead of duplicating
// it).
type EngineCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions int64
}

// cacheEntry is one keyed engine; once gates the single build shared
// by concurrent misses.
type cacheEntry struct {
	key  string
	once sync.Once
	eng  *Engine
	err  error
}

// DefaultEngineCacheSize bounds the process-wide cache behind
// NewCachedEngine.
const DefaultEngineCacheSize = 64

// NewEngineCache returns an empty cache holding at most max engines
// (max <= 0 means DefaultEngineCacheSize).
func NewEngineCache(max int) *EngineCache {
	if max <= 0 {
		max = DefaultEngineCacheSize
	}
	return &EngineCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached engine for the (topology, allocation)
// fingerprint, building and inserting it on a miss. hit reports
// whether the routing state was reused.
func (c *EngineCache) Get(topo Topology, a *Allocation) (eng *Engine, hit bool, err error) {
	return c.GetKeyed(EngineFingerprint(topo, a), func() (*Engine, error) {
		return NewEngine(topo, a)
	})
}

// GetKeyed is Get with a caller-supplied canonical key and engine
// constructor — for callers (the mapd service) that derive the key
// from a wire-level topology spec without building the topology
// first. The key must uniquely determine the engine build.
func (c *EngineCache) GetKeyed(key string, build func() (*Engine, error)) (eng *Engine, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.hits++
		c.mu.Unlock()
		e.once.Do(func() {}) // wait for an in-flight build
		if e.err != nil {
			return nil, false, e.err
		}
		return e.eng, true, nil
	}
	e := &cacheEntry{key: key}
	c.entries[key] = c.ll.PushFront(e)
	c.misses++
	for c.ll.Len() > c.max {
		lru := c.ll.Back()
		c.ll.Remove(lru)
		delete(c.entries, lru.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()

	e.once.Do(func() { e.eng, e.err = build() })
	if e.err != nil {
		// Never serve a failed build from the cache.
		c.mu.Lock()
		if el, ok := c.entries[key]; ok && el.Value == e {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, false, e.err
	}
	return e.eng, false, nil
}

// Len returns the number of cached engines (including in-flight
// builds).
func (c *EngineCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the maximum number of cached engines.
func (c *EngineCache) Cap() int { return c.max }

// Stats returns the cumulative hit, miss and eviction counts. An
// eviction rate rivaling the miss rate tells an operator the cache is
// sized below the live (topology, allocation) working set, i.e. the
// cached-path win is not being realized.
func (c *EngineCache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// processEngines backs NewCachedEngine: one cache per process, the
// way a resident scheduler component holds it.
var processEngines = NewEngineCache(DefaultEngineCacheSize)

// NewCachedEngine is NewEngine through a process-wide LRU cache: a
// repeated (topology, allocation) fingerprint returns the already
// built engine, skipping the route-state rebuild. The returned engine
// is shared and immutable — exactly as safe as any Engine — and must
// not be assumed private to the caller.
func NewCachedEngine(topo Topology, a *Allocation) (*Engine, error) {
	eng, _, err := processEngines.Get(topo, a)
	return eng, err
}

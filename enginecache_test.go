package topomap

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Fingerprint and engine-cache tests: canonical keys must separate
// what differs and unify what doesn't, and the LRU must evict, share
// in-flight builds, and never cache failures.

func TestTopologyFingerprintFamilies(t *testing.T) {
	ft, err := NewFatTree(8, 10e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewDragonfly(3, 10e9, 5e9, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	fps := map[string]string{
		"torus":   TopologyFingerprint(NewHopperTorus(8, 8, 8)),
		"mesh":    TopologyFingerprint(NewTorusMesh([]int{8, 8, 8}, []float64{9.38e9, 4.68e9, 9.38e9})),
		"torus2":  TopologyFingerprint(NewHopperTorus(8, 8, 4)),
		"fattree": TopologyFingerprint(ft),
		"dfly":    TopologyFingerprint(df),
	}
	seen := map[string]string{}
	for name, fp := range fps {
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s and %s share fingerprint %q", name, prev, fp)
		}
		seen[fp] = name
	}
	// Same construction parameters, same fingerprint.
	if fps["torus"] != TopologyFingerprint(NewHopperTorus(8, 8, 8)) {
		t.Fatal("identical tori fingerprint differently")
	}
	// A mesh is not a torus of the same dims.
	if !strings.HasPrefix(fps["mesh"], "mesh:") || !strings.HasPrefix(fps["torus"], "torus:") {
		t.Fatalf("family prefixes missing: %q / %q", fps["mesh"], fps["torus"])
	}
	// The engine's cached view fingerprints as its base topology.
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	if TopologyFingerprint(eng.view) != TopologyFingerprint(topo) {
		t.Fatal("route-cached view fingerprints differently from its base")
	}
}

func TestTopologyFingerprintCustomFallback(t *testing.T) {
	topo := NewHopperTorus(4, 4, 4)
	flat := flatTopo{topo} // hides Fingerprinter: structural hash path
	fp := TopologyFingerprint(flat)
	if !strings.HasPrefix(fp, "custom:") {
		t.Fatalf("custom topology fingerprint %q lacks structural prefix", fp)
	}
	if fp != TopologyFingerprint(flatTopo{NewHopperTorus(4, 4, 4)}) {
		t.Fatal("identical custom topologies hash differently")
	}
	if fp == TopologyFingerprint(flatTopo{NewHopperTorus(4, 4, 8)}) {
		t.Fatal("different custom topologies collide")
	}
}

func TestAllocationFingerprint(t *testing.T) {
	a := &Allocation{Nodes: []int32{1, 2, 3}, ProcsPerNode: []int{16, 16, 16}}
	b := &Allocation{Nodes: []int32{1, 2, 3}, ProcsPerNode: []int{16, 16, 16}}
	if AllocationFingerprint(a) != AllocationFingerprint(b) {
		t.Fatal("identical allocations fingerprint differently")
	}
	for _, diff := range []*Allocation{
		{Nodes: []int32{1, 3, 2}, ProcsPerNode: []int{16, 16, 16}}, // order matters (DEF follows it)
		{Nodes: []int32{1, 2, 4}, ProcsPerNode: []int{16, 16, 16}},
		{Nodes: []int32{1, 2, 3}, ProcsPerNode: []int{16, 8, 16}},
	} {
		if AllocationFingerprint(a) == AllocationFingerprint(diff) {
			t.Fatalf("allocation %+v collides with %+v", diff, a)
		}
	}
}

func TestEngineCacheLRU(t *testing.T) {
	topo := NewHopperTorus(6, 6, 6)
	allocs := make([]*Allocation, 3)
	for i := range allocs {
		a, err := SparseAllocation(topo, 4, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		allocs[i] = a
	}
	c := NewEngineCache(2)
	e0, hit, err := c.Get(topo, allocs[0])
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	if _, hit, _ := c.Get(topo, allocs[0]); !hit {
		t.Fatal("repeat get missed")
	}
	c.Get(topo, allocs[1])
	c.Get(topo, allocs[2]) // evicts allocs[0] (LRU)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d engines, cap 2", c.Len())
	}
	e0b, hit, err := c.Get(topo, allocs[0])
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("evicted entry reported a hit")
	}
	if e0b == e0 {
		t.Fatal("evicted engine pointer resurfaced without a rebuild")
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 4 {
		t.Fatalf("stats = %d hits / %d misses, want 1/4", hits, misses)
	}
	if evictions != 2 {
		t.Fatalf("stats = %d evictions, want 2", evictions)
	}
}

func TestEngineCacheSharesInFlightBuild(t *testing.T) {
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewEngineCache(4)
	const goroutines = 16
	engines := make([]*Engine, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng, _, err := c.Get(topo, a)
			if err != nil {
				t.Error(err)
				return
			}
			engines[g] = eng
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if engines[g] != engines[0] {
			t.Fatal("concurrent misses built distinct engines for one key")
		}
	}
	if _, misses, _ := c.Stats(); misses != 1 {
		t.Fatalf("%d misses for one key under concurrency, want 1 shared build", misses)
	}
}

func TestEngineCacheDoesNotCacheFailures(t *testing.T) {
	c := NewEngineCache(4)
	calls := 0
	_, _, err := c.GetKeyed("k", func() (*Engine, error) {
		calls++
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("want build error")
	}
	if c.Len() != 0 {
		t.Fatal("failed build left a cache entry")
	}
	topo := NewHopperTorus(4, 4, 4)
	a, err := SparseAllocation(topo, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, hit, err := c.GetKeyed("k", func() (*Engine, error) { calls++; return NewEngine(topo, a) })
	if err != nil || hit || eng == nil {
		t.Fatalf("retry after failure: eng=%v hit=%v err=%v", eng, hit, err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2 (failure must not be cached)", calls)
	}
}

// TestEngineCacheShardSizing pins the sharding policy: small caches
// stay single-sharded (exact global LRU, which the tests above rely
// on), large ones split with per-shard capacities summing exactly to
// the cap.
func TestEngineCacheShardSizing(t *testing.T) {
	for _, tc := range []struct {
		max, shards int
	}{
		{1, 1}, {2, 1}, {15, 1}, {16, 1}, {31, 1}, {32, 2}, {64, 4}, {100, 6}, {200, 8},
	} {
		c := NewEngineCache(tc.max)
		if c.Shards() != tc.shards {
			t.Fatalf("max=%d: %d shards, want %d", tc.max, c.Shards(), tc.shards)
		}
		if c.Cap() != tc.max {
			t.Fatalf("max=%d: cap %d", tc.max, c.Cap())
		}
	}
}

// TestEngineCacheShardedStats churns many keys through a multi-shard
// cache: counters must stay exact (hits+misses = lookups, evictions =
// misses - residents), capacity must hold globally, and resident keys
// must keep hitting whichever shard they live on.
func TestEngineCacheShardedStats(t *testing.T) {
	topo := NewHopperTorus(4, 4, 4)
	a, err := SparseAllocation(topo, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*Engine, error) { return NewEngine(topo, a) }
	c := NewEngineCache(32)
	if c.Shards() < 2 {
		t.Fatalf("want a multi-shard cache, got %d shards", c.Shards())
	}
	const keys = 100
	for i := 0; i < keys; i++ {
		if _, hit, err := c.GetKeyed(fmt.Sprintf("key-%d", i), build); err != nil || hit {
			t.Fatalf("key-%d: hit=%v err=%v", i, hit, err)
		}
	}
	if c.Len() > c.Cap() {
		t.Fatalf("cache holds %d engines, cap %d", c.Len(), c.Cap())
	}
	hits, misses, evictions := c.Stats()
	if hits != 0 || misses != keys {
		t.Fatalf("stats = %d hits / %d misses, want 0/%d", hits, misses, keys)
	}
	if evictions != int64(keys-c.Len()) {
		t.Fatalf("evictions = %d, want misses - residents = %d", evictions, keys-c.Len())
	}
	// Each shard's residents are its most recently inserted keys, so a
	// reverse-order pass visits every resident before re-inserting any
	// evicted key of its shard: it must hit exactly Len() times (a
	// same-order pass would be the classic LRU sequential-scan worst
	// case and hit zero).
	lenBefore := c.Len()
	resident := 0
	for i := keys - 1; i >= 0; i-- {
		if _, hit, err := c.GetKeyed(fmt.Sprintf("key-%d", i), build); err != nil {
			t.Fatal(err)
		} else if hit {
			resident++
		}
	}
	if resident != lenBefore {
		t.Fatalf("reverse pass hit %d keys, want the %d residents", resident, lenBefore)
	}
	hits, misses, _ = c.Stats()
	if int(hits) != resident {
		t.Fatalf("reverse pass hit %d times, stats say %d", resident, hits)
	}
	if misses != int64(2*keys)-hits {
		t.Fatalf("misses = %d, want %d", misses, int64(2*keys)-hits)
	}

	// Concurrent mixed traffic across shards stays consistent: every
	// lookup lands as exactly one hit or miss.
	var wg sync.WaitGroup
	const goroutines, perG = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, _, err := c.GetKeyed(fmt.Sprintf("key-%d", (g*7+i)%keys), build); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	hits2, misses2, _ := c.Stats()
	if hits2+misses2 != hits+misses+goroutines*perG {
		t.Fatalf("lookup accounting drifted: %d+%d after %d more lookups on %d+%d",
			hits2, misses2, goroutines*perG, hits, misses)
	}
}

func TestNewCachedEngine(t *testing.T) {
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := NewCachedEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	// Same fingerprint — even through a different but identical
	// topology value — returns the resident engine.
	e2, err := NewCachedEngine(NewHopperTorus(6, 6, 6), &Allocation{
		Nodes:        append([]int32(nil), a.Nodes...),
		ProcsPerNode: append([]int(nil), a.ProcsPerNode...),
	})
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("NewCachedEngine rebuilt an engine for an identical (topology, allocation) pair")
	}
	// Cached engines answer identically to fresh ones.
	tg, _, _ := engineFixture(t, 64)
	fresh, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(Request{Mapper: UWH, Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e1.Run(Request{Mapper: UWH, Tasks: tg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want.Metrics != got.Metrics {
		t.Fatalf("cached engine diverged: %+v vs %+v", want.Metrics, got.Metrics)
	}
}

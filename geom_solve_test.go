package topomap

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Geometric-mapper tests: the coordinate degeneracy (attaching and
// stripping coordinates must be invisible to every coordinate-free
// mapper), the quality claim on a stencil (GEOM and SFCM beat the
// order-split baseline's hop-bytes), worker-count determinism of the
// multi-jagged bisection, prompt cancellation mid-bisection, and the
// NeedsCoords capability gates at the engine and the portfolio.

// withTestCoords returns a copy of tg carrying synthetic 3D
// coordinates (tasks laid out on the smallest cube that fits them)
// without touching the shared CSR — the fixture the coordinate
// mappers run on where the test graph itself has no geometry.
func withTestCoords(t *testing.T, tg *TaskGraph) *TaskGraph {
	t.Helper()
	g := *tg.G
	out := &TaskGraph{G: &g, K: tg.K}
	coords := make([]float64, tg.K*3)
	side := 1
	for side*side*side < tg.K {
		side++
	}
	for i := 0; i < tg.K; i++ {
		coords[i*3] = float64(i % side)
		coords[i*3+1] = float64(i / side % side)
		coords[i*3+2] = float64(i / (side * side))
	}
	if err := out.SetCoords(3, coords); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSolveCoordinateDegeneracy pins the unit-is-nil discipline for
// coordinates: a graph that carried coordinates and had them stripped
// must behave byte-identically to one that never carried them, for
// every coordinate-free mapper — placement, metrics and rankfile.
func TestSolveCoordinateDegeneracy(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	attached := withTestCoords(t, tg)
	if !attached.HasCoords() {
		t.Fatal("fixture failed to attach coordinates")
	}
	stripped := withTestCoords(t, tg)
	if err := stripped.SetCoords(0, nil); err != nil {
		t.Fatal(err)
	}
	if stripped.HasCoords() || stripped.Dim != 0 || stripped.Coords != nil {
		t.Fatal("SetCoords(0, nil) did not restore the canonical absent spelling")
	}

	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue // registered by other tests in this binary
		}
		if MapperCapsOf(mp).NeedsCoords {
			continue // cannot run without coordinates by construction
		}
		want, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1})
		if err != nil {
			t.Fatalf("%s: coordinate-free: %v", mp, err)
		}
		got, err := eng.Run(Request{Mapper: mp, Tasks: stripped, Seed: 1})
		if err != nil {
			t.Fatalf("%s: stripped: %v", mp, err)
		}
		if !reflect.DeepEqual(got.GroupOf, want.GroupOf) || !reflect.DeepEqual(got.NodeOf, want.NodeOf) {
			t.Fatalf("%s: placement diverged between never-attached and stripped coordinates", mp)
		}
		if got.Metrics != want.Metrics {
			t.Fatalf("%s: metrics diverged:\n absent   %+v\n stripped %+v", mp, want.Metrics, got.Metrics)
		}
		if rankfileBytes(t, got, a) != rankfileBytes(t, want, a) {
			t.Fatalf("%s: rankfile diverged between never-attached and stripped coordinates", mp)
		}
		// Coordinates present must also be invisible to coordinate-free
		// mappers: they ignore geometry entirely.
		withC, err := eng.Run(Request{Mapper: mp, Tasks: attached, Seed: 1})
		if err != nil {
			t.Fatalf("%s: with coords: %v", mp, err)
		}
		if !reflect.DeepEqual(withC.GroupOf, want.GroupOf) || !reflect.DeepEqual(withC.NodeOf, want.NodeOf) ||
			withC.Metrics != want.Metrics {
			t.Fatalf("%s: attaching coordinates changed a coordinate-free mapper's output", mp)
		}
	}
}

// stencilFixture builds the scale where geometry pays: a 16x16x16
// halo-exchange stencil (4096 tasks, coordinates = grid positions) on
// 256 sparse nodes of an 8x8x8 Hopper torus.
func stencilFixture(t *testing.T) (*TaskGraph, *Torus, *Allocation) {
	t.Helper()
	tg, err := StencilTaskGraph(16, 16, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !tg.HasCoords() || tg.Dim != 3 {
		t.Fatal("stencil generator did not attach 3D coordinates")
	}
	topo := NewHopperTorus(8, 8, 8)
	a, err := SparseAllocation(topo, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tg, topo, a
}

// TestGeomBeatsOrderOnStencil is the geometric pair's reason to
// exist: on a structured stencil where task coordinates mirror the
// communication pattern, both GEOM and SFCM must land strictly fewer
// weighted hop-bytes than the order-split baseline DEF, on sparse and
// contiguous allocations alike.
func TestGeomBeatsOrderOnStencil(t *testing.T) {
	tg, topo, _ := stencilFixture(t)
	for _, mode := range []string{"sparse", "contiguous"} {
		var a *Allocation
		var err error
		if mode == "sparse" {
			a, err = SparseAllocation(topo, 256, 1)
		} else {
			a, err = ContiguousAllocation(topo, 256, 1)
		}
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(topo, a)
		if err != nil {
			t.Fatal(err)
		}
		base, err := eng.Run(Request{Mapper: DEF, Tasks: tg, Seed: 1})
		if err != nil {
			t.Fatalf("%s/DEF: %v", mode, err)
		}
		for _, mp := range []Mapper{GEOM, SFCM} {
			res, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", mode, mp, err)
			}
			if res.Metrics.WH >= base.Metrics.WH {
				t.Fatalf("%s: %s hop-bytes %d did not beat DEF's %d",
					mode, mp, res.Metrics.WH, base.Metrics.WH)
			}
		}
	}
}

// TestGeomWorkerDeterminism: the multi-jagged bisection forks per
// subtree, so this is the proof its per-subtree seeding makes worker
// count a wall-clock knob only — byte-identical rankfiles at 1, 2
// and 8 workers on the full 4096-task stencil.
func TestGeomWorkerDeterminism(t *testing.T) {
	tg, topo, a := stencilFixture(t)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range []Mapper{GEOM, SFCM} {
		var want *MapResult
		var wantRF string
		for _, workers := range []int{1, 2, 8} {
			res, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 7,
				Options: []RequestOption{WithParallelism(workers)}})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mp, workers, err)
			}
			rf := rankfileBytes(t, res, a)
			if want == nil {
				want, wantRF = res, rf
				continue
			}
			if !reflect.DeepEqual(res.GroupOf, want.GroupOf) || !reflect.DeepEqual(res.NodeOf, want.NodeOf) {
				t.Fatalf("%s: placement diverged at workers=%d", mp, workers)
			}
			if res.Metrics != want.Metrics {
				t.Fatalf("%s: metrics diverged at workers=%d:\n %+v\n vs %+v", mp, workers, want.Metrics, res.Metrics)
			}
			if rf != wantRF {
				t.Fatalf("%s: rankfile bytes diverged at workers=%d", mp, workers)
			}
		}
	}
}

// TestGeomCancellationMidSolve: a deadline landing inside the
// multi-jagged bisection of a GEOM solve must surface as the context
// error promptly, not after the full recursion completes.
func TestGeomCancellationMidSolve(t *testing.T) {
	tg, topo, a := stencilFixture(t)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	// Warm run to measure the instance (and warm the arena).
	if _, err := eng.Run(Request{Mapper: GEOM, Tasks: tg, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	began := time.Now()
	_, err = eng.RunContext(ctx, Request{Mapper: GEOM, Tasks: tg, Seed: 7,
		Options: []RequestOption{WithParallelism(2)}})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(began); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestGeomNeedsCoordsGates pins every gate the NeedsCoords capability
// drives: the engine's refusal on a coordinate-free graph, the
// portfolio's explicit-candidate refusal, and the CompatibleMappers /
// CompatibleMappersFor split.
func TestGeomNeedsCoordsGates(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range []Mapper{GEOM, SFCM} {
		if !MapperCapsOf(mp).NeedsCoords {
			t.Fatalf("%s does not declare NeedsCoords", mp)
		}
		if _, err := eng.Run(Request{Mapper: mp, Tasks: tg, Seed: 1}); err == nil {
			t.Fatalf("%s ran on a coordinate-free task graph", mp)
		} else if !strings.Contains(err.Error(), "coordinates") {
			t.Fatalf("%s: error %q does not mention coordinates", mp, err)
		}
	}
	if _, err := eng.RunPortfolio(context.Background(), PortfolioRequest{
		Tasks:      tg,
		Candidates: []Solve{{Mapper: GEOM, Seed: 1}},
	}); err == nil {
		t.Fatal("portfolio accepted a GEOM candidate on a coordinate-free graph")
	} else if !strings.Contains(err.Error(), "coordinates") {
		t.Fatalf("portfolio error %q does not mention coordinates", err)
	}

	inSet := func(set []Mapper, mp Mapper) bool {
		for _, m := range set {
			if m == mp {
				return true
			}
		}
		return false
	}
	always := eng.CompatibleMappers()
	bare := eng.CompatibleMappersFor(tg)
	withC := eng.CompatibleMappersFor(withTestCoords(t, tg))
	for _, mp := range []Mapper{GEOM, SFCM} {
		if inSet(always, mp) || inSet(bare, mp) {
			t.Fatalf("%s offered without a coordinate-carrying graph", mp)
		}
		if !inSet(withC, mp) {
			t.Fatalf("%s missing from CompatibleMappersFor on a coordinate-carrying graph", mp)
		}
	}
	if !reflect.DeepEqual(bare, always) {
		t.Fatal("CompatibleMappersFor on a coordinate-free graph diverged from CompatibleMappers")
	}
}

package topomap

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/torus"
)

// PortfolioRequest races a set of candidate Solves against one task
// graph and selects the winner by a declared Objective — the
// production shape of the paper's "the winning mapper varies by
// topology and graph" observation: instead of asking for an
// algorithm, the caller asks for an outcome and the engine tries the
// portfolio.
type PortfolioRequest struct {
	// Tasks is the task graph every candidate places.
	Tasks *TaskGraph
	// Candidates are the solves to race. Candidates must differ in
	// (mapper, seed) — duplicates are rejected up front. Empty means
	// "every registered mapper compatible with the engine's
	// topology", each at Seed.
	Candidates []Solve
	// Seed is the seed auto-expanded candidates run at (ignored when
	// Candidates is non-empty).
	Seed int64
	// Objective declares what the portfolio minimizes. The zero value
	// minimizes weighted hops.
	Objective Objective
	// Workers bounds the pool the candidates fan out on (0 = all
	// CPUs). Each candidate solves with one worker by default —
	// the portfolio pool already fans out — unless its Solve.Workers
	// says otherwise.
	Workers int
	// Sim is the default simulation spec applied to candidates
	// without their own; required (here or per candidate) when the
	// objective scores sim_seconds.
	Sim *SimSpec
}

// PortfolioEntry is one candidate's line on the leaderboard.
type PortfolioEntry struct {
	// Index is the candidate's position in the (expanded) candidate
	// list — the stable identity tie-breaks and reporting use.
	Index int
	// Solve is the candidate spec.
	Solve Solve
	// Score is the objective value (lower is better); meaningless
	// when Skipped.
	Score float64
	// Result is the candidate's full solve result; nil when Skipped.
	Result *MapResult
	// Skipped reports that the deadline expired before this
	// candidate finished; the portfolio returned the best of the
	// rest.
	Skipped bool
}

// PortfolioResult is the outcome of a portfolio solve: the winning
// candidate plus the full per-candidate leaderboard.
type PortfolioResult struct {
	// Winner is the candidate index of the winning solve.
	Winner int
	// Best is the winning result (same pointer as the winner's
	// leaderboard entry).
	Best *MapResult
	// Leaderboard lists every candidate: completed ones first in
	// ascending score order (ties broken by candidate index), then
	// deadline-skipped ones in index order.
	Leaderboard []PortfolioEntry
	// Skipped counts the candidates the deadline cut off.
	Skipped int
}

// CompatibleMappers returns the registered mappers the engine's
// topology can dispatch on any task graph, in registration order.
// Mappers requiring multipath route enumeration are filtered out on
// topologies that cannot provide it, and mappers requiring per-task
// coordinates are always filtered out — the engine alone cannot
// promise a coordinate-carrying graph; see CompatibleMappersFor.
func (e *Engine) CompatibleMappers() []Mapper {
	return e.compatibleMappers(false)
}

// CompatibleMappersFor is CompatibleMappers specialized to one task
// graph — the candidate set a PortfolioRequest with no explicit
// Candidates expands to. When tasks carries per-task coordinates the
// geometric mappers join the set; coordinate-free graphs keep the
// CompatibleMappers set exactly.
func (e *Engine) CompatibleMappersFor(tasks *TaskGraph) []Mapper {
	return e.compatibleMappers(tasks != nil && tasks.HasCoords())
}

func (e *Engine) compatibleMappers(hasCoords bool) []Mapper {
	_, multipath := torus.MultipathOf(e.view)
	var out []Mapper
	for _, info := range registry.List() {
		if info.Caps.NeedsMultipath && !multipath {
			continue
		}
		if info.Caps.NeedsCoords && !hasCoords {
			continue
		}
		out = append(out, Mapper(info.Name))
	}
	return out
}

// portfolioCandidates expands, defaults and validates the candidate
// set of req: explicit candidates checked against the registry and
// the topology, or all compatible mappers at req.Seed; duplicate
// (mapper, seed) pairs rejected; req.Sim applied to candidates
// without their own; a sim-scoring objective required to have one
// everywhere.
func (e *Engine) portfolioCandidates(req PortfolioRequest) ([]Solve, error) {
	hasCoords := req.Tasks != nil && req.Tasks.HasCoords()
	cands := append([]Solve(nil), req.Candidates...)
	if len(cands) == 0 {
		for _, mp := range e.CompatibleMappersFor(req.Tasks) {
			cands = append(cands, Solve{Mapper: mp, Seed: req.Seed})
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("topomap: portfolio found no registered mapper compatible with the topology")
		}
	}
	_, multipath := torus.MultipathOf(e.view)
	type identity struct {
		mapper Mapper
		seed   int64
	}
	seen := map[identity]int{}
	for i := range cands {
		c := &cands[i]
		spec, ok := registry.Lookup(string(c.Mapper))
		if !ok {
			return nil, fmt.Errorf("topomap: portfolio candidate %d: unknown mapper %q", i, c.Mapper)
		}
		if spec.Caps().NeedsMultipath && !multipath {
			return nil, fmt.Errorf("topomap: portfolio candidate %d: mapper %s needs a topology with minimal-route enumeration", i, c.Mapper)
		}
		if spec.Caps().NeedsCoords && !hasCoords {
			return nil, fmt.Errorf("topomap: portfolio candidate %d: mapper %s needs per-task coordinates on the task graph", i, c.Mapper)
		}
		if c.TimeoutMS < 0 {
			return nil, fmt.Errorf("topomap: portfolio candidate %d (%s): negative timeout_ms %d", i, c.Mapper, c.TimeoutMS)
		}
		id := identity{c.Mapper, c.Seed}
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("topomap: portfolio candidates %d and %d duplicate (mapper %s, seed %d); candidates must differ in mapper or seed", prev, i, c.Mapper, c.Seed)
		}
		seen[id] = i
		if c.Sim == nil {
			c.Sim = req.Sim
		}
		if req.Objective.NeedsSim() && c.Sim == nil {
			return nil, fmt.Errorf("topomap: objective %s needs a sim spec, candidate %d (%s) has none", SimSecondsMetric, i, c.Mapper)
		}
	}
	return cands, nil
}

// RunPortfolio fans the candidate set out across a bounded worker
// pool, scores every finished result against the objective, and
// returns the winner plus the full leaderboard. Selection is
// deterministic at any worker count: scores are computed after the
// fan-out and sorted with a stable tie-break on candidate index.
// Cancellation is cooperative — when the deadline expires, candidates
// still solving bail at their next polling point, and the portfolio
// returns the best of what completed (with the cut-off candidates
// marked Skipped) instead of failing; only a deadline that beats
// every candidate surfaces ctx.Err. Any non-cancellation solve
// failure fails the whole portfolio, lowest candidate index first.
func (e *Engine) RunPortfolio(ctx context.Context, req PortfolioRequest) (*PortfolioResult, error) {
	if req.Tasks == nil {
		return nil, fmt.Errorf("topomap: portfolio carries no task graph")
	}
	if err := req.Objective.Validate(); err != nil {
		return nil, err
	}
	cands, err := e.portfolioCandidates(req)
	if err != nil {
		return nil, err
	}

	results := make([]*MapResult, len(cands))
	errs := make([]error, len(cands))
	grp := parallel.NewGroup(ctx, req.Workers)
	grp.ForEachIdx(len(cands), func(i int) {
		// One worker per candidate by default: the portfolio pool is
		// the fan-out. Solve.Workers oversubscribes deliberately.
		results[i], errs[i] = e.runSolve(ctx, req.Tasks, cands[i], 1)
	})

	var entries, skipped []PortfolioEntry
	for i, res := range results {
		switch {
		case errs[i] == nil:
			score, err := req.Objective.Score(res)
			if err != nil {
				return nil, fmt.Errorf("topomap: portfolio candidate %d (%s): %w", i, cands[i].Mapper, err)
			}
			entries = append(entries, PortfolioEntry{Index: i, Solve: cands[i], Score: score, Result: res})
		case errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded):
			skipped = append(skipped, PortfolioEntry{Index: i, Solve: cands[i], Skipped: true})
		default:
			return nil, fmt.Errorf("topomap: portfolio candidate %d (%s): %w", i, cands[i].Mapper, errs[i])
		}
	}
	if len(entries) == 0 {
		// Nothing finished: the deadline beat every candidate.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("topomap: portfolio completed no candidates")
	}
	sort.SliceStable(entries, func(a, b int) bool {
		if entries[a].Score != entries[b].Score {
			return entries[a].Score < entries[b].Score
		}
		return entries[a].Index < entries[b].Index
	})
	return &PortfolioResult{
		Winner:      entries[0].Index,
		Best:        entries[0].Result,
		Leaderboard: append(entries, skipped...),
		Skipped:     len(skipped),
	}, nil
}

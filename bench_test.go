package topomap_test

// The benchmark harness: one benchmark per table/figure of the paper
// (regenerating it at Tiny scale through the exp package), plus
// per-algorithm microbenchmarks and the ablation benches DESIGN.md
// calls out. Run everything with
//
//	go test -bench=. -benchmem
//
// and regenerate the full-size outputs with cmd/experiments.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/dragonfly"
	"repro/internal/exp"
	"repro/internal/fattree"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/partitioners"
	"repro/internal/taskgraph"
	"repro/internal/torus"

	topomap "repro"
)

// --- one bench per figure/table -------------------------------------

func benchFigure(b *testing.B, run func(exp.Config) (string, error)) {
	b.Helper()
	cfg := exp.TinyConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1 (partition metrics TV/TM/MSV/
// MSM across the seven partitioners).
func BenchmarkFigure1(b *testing.B) { benchFigure(b, exp.Figure1) }

// BenchmarkFigure2 regenerates Figure 2 (mapping metrics normalized
// to DEF).
func BenchmarkFigure2(b *testing.B) { benchFigure(b, exp.Figure2) }

// BenchmarkFigure3 regenerates Figure 3 (mapping algorithm times).
func BenchmarkFigure3(b *testing.B) { benchFigure(b, exp.Figure3) }

// BenchmarkFigure4a regenerates Figure 4a (comm-only, cagelike).
func BenchmarkFigure4a(b *testing.B) {
	benchFigure(b, func(c exp.Config) (string, error) { return exp.Figure4(c, "a") })
}

// BenchmarkFigure4b regenerates Figure 4b (comm-only, rgg).
func BenchmarkFigure4b(b *testing.B) {
	benchFigure(b, func(c exp.Config) (string, error) { return exp.Figure4(c, "b") })
}

// BenchmarkFigure5 regenerates Figure 5 (SpMV, cagelike).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, exp.Figure5) }

// BenchmarkTable1 regenerates Table I (summary improvements).
func BenchmarkTable1(b *testing.B) { benchFigure(b, exp.Table1) }

// BenchmarkRegression regenerates the §IV-E NNLS regression analysis.
func BenchmarkRegression(b *testing.B) { benchFigure(b, exp.Regression) }

// --- per-algorithm microbenchmarks ----------------------------------

// benchFixture builds a coarse task graph (n supertasks) and an
// allocation of n nodes on a Hopper-like torus.
func benchFixture(b *testing.B, n int) (*graph.Graph, *torus.Torus, *alloc.Allocation) {
	b.Helper()
	topo := torus.NewHopper3D(16, 12, 16)
	a, err := alloc.Generate(topo, n, alloc.Config{Mode: alloc.Sparse, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.RandomConnected(n, 4*n, 100, 2)
	return g, topo, a
}

// BenchmarkMapperUG measures Algorithm 1 (both NBFS settings) on a
// 256-supertask graph.
func BenchmarkMapperUG(b *testing.B) {
	g, topo, a := benchFixture(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MapUG(g, topo, a.Nodes)
	}
}

// BenchmarkMapperUWH measures greedy + Algorithm 2.
func BenchmarkMapperUWH(b *testing.B) {
	g, topo, a := benchFixture(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MapUWH(g, topo, a.Nodes)
	}
}

// BenchmarkMapperUMC measures greedy + Algorithm 3 (volume).
func BenchmarkMapperUMC(b *testing.B) {
	g, topo, a := benchFixture(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MapUMC(g, topo, a.Nodes)
	}
}

// BenchmarkMapperUMMC measures greedy + Algorithm 3 (messages); the
// benchmark graph's edges are single messages, so the graph doubles
// as its own message view.
func BenchmarkMapperUMMC(b *testing.B) {
	g, topo, a := benchFixture(b, 256)
	msgG := g.Clone()
	msgG.EW = make([]int64, g.M())
	for i := range msgG.EW {
		msgG.EW[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MapUMMC(g, msgG, topo, a.Nodes)
	}
}

// BenchmarkPartitionerGraph measures the multilevel graph partitioner
// (KaFFPa personality) on the tiny cagelike matrix.
func BenchmarkPartitionerGraph(b *testing.B) {
	spec, err := gen.ByName(gen.Cagelike)
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Generate(gen.Tiny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partitioners.Run(partitioners.KAFFPAP, m, 64, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionerHypergraph measures the multilevel hypergraph
// partitioner (PaToH personality) on the tiny cagelike matrix.
func BenchmarkPartitionerHypergraph(b *testing.B) {
	spec, err := gen.ByName(gen.Cagelike)
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Generate(gen.Tiny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partitioners.Run(partitioners.PATOHP, m, 64, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaskGraphBuild measures MPI task graph construction.
func BenchmarkTaskGraphBuild(b *testing.B) {
	spec, err := gen.ByName(gen.Cagelike)
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Generate(gen.Tiny)
	part, err := partitioners.Run(partitioners.PATOHP, m, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taskgraph.Build(m, part, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsCompute measures the full mapping-metric evaluation
// with static-route enumeration.
func BenchmarkMetricsCompute(b *testing.B) {
	g, topo, a := benchFixture(b, 256)
	nodeOf := core.MapUG(g, topo, a.Nodes)
	pl := &metrics.Placement{NodeOf: nodeOf}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Compute(g, topo, pl)
	}
}

// BenchmarkSimulatorCommOnly measures the contention-aware
// communication simulator.
func BenchmarkSimulatorCommOnly(b *testing.B) {
	g, topo, a := benchFixture(b, 256)
	nodeOf := core.MapUG(g, topo, a.Nodes)
	pl := &metrics.Placement{NodeOf: nodeOf}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		netsim.CommOnly(g, topo, pl, 4096, netsim.Params{Seed: int64(i)})
	}
}

// --- ablations (DESIGN.md §7) ---------------------------------------

// BenchmarkAblationDelta sweeps the ∆ swap-candidate bound of
// Algorithm 2 (the paper fixes ∆=8) and reports the resulting WH as
// a custom metric.
func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []int{2, 8, 32} {
		b.Run(map[int]string{2: "delta2", 8: "delta8", 32: "delta32"}[delta], func(b *testing.B) {
			g, topo, a := benchFixture(b, 256)
			base := core.MapUG(g, topo, a.Nodes)
			var lastWH int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodeOf := append([]int32(nil), base...)
				core.RefineWH(g, topo, a.Nodes, nodeOf, core.RefineOptions{Delta: delta})
				lastWH = metrics.WeightedHops(g, topo, nodeOf)
			}
			b.ReportMetric(float64(lastWH), "WH")
		})
	}
}

// BenchmarkAblationNBFS compares the two greedy seeding modes the
// paper blends (NBFS = 0 vs 1).
func BenchmarkAblationNBFS(b *testing.B) {
	for _, nbfs := range []int{0, 1} {
		name := map[int]string{0: "nbfs0", 1: "nbfs1"}[nbfs]
		b.Run(name, func(b *testing.B) {
			g, topo, a := benchFixture(b, 256)
			var lastWH int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodeOf := core.Greedy(g, topo, a.Nodes, core.GreedyOptions{NBFS: nbfs})
				lastWH = metrics.WeightedHops(g, topo, nodeOf)
			}
			b.ReportMetric(float64(lastWH), "WH")
		})
	}
}

// BenchmarkAblationEarlyExit compares GETBESTNODE's early-exit BFS
// against exhaustively scoring every empty allocated node; the paper
// credits the early exit for Algorithm 1's speed.
func BenchmarkAblationEarlyExit(b *testing.B) {
	for _, mode := range []string{"earlyExit", "exhaustive"} {
		b.Run(mode, func(b *testing.B) {
			g, topo, a := benchFixture(b, 256)
			var lastWH int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodeOf := core.Greedy(g, topo, a.Nodes, core.GreedyOptions{
					NoEarlyExit: mode == "exhaustive",
				})
				lastWH = metrics.WeightedHops(g, topo, nodeOf)
			}
			b.ReportMetric(float64(lastWH), "WH")
		})
	}
}

// BenchmarkAblationFineRefinement measures the §III-B fine-level WH
// refinement the paper leaves off by default, reporting the extra WH
// it recovers on top of UWH.
func BenchmarkAblationFineRefinement(b *testing.B) {
	spec, err := gen.ByName(gen.Cagelike)
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Generate(gen.Tiny)
	part, err := partitioners.Run(partitioners.PATOHP, m, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	tg, err := taskgraph.Build(m, part, 256)
	if err != nil {
		b.Fatal(err)
	}
	topo := torus.NewHopper3D(8, 8, 8)
	a, err := alloc.Generate(topo, 16, alloc.Config{Mode: alloc.Sparse, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var whGain int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := topomap.RunMapping(topomap.UWH, tg, topo, a, 1)
		if err != nil {
			b.Fatal(err)
		}
		whGain, _ = topomap.RefineFineLevel(tg, topo, res)
	}
	b.ReportMetric(float64(whGain), "extraWH")
}

// BenchmarkAblationMultilevel compares the greedy construction (UG),
// greedy + Algorithm 2 (UWH), and the §III-B multilevel scheme (UML)
// on the same instance, reporting the final WH each achieves.
func BenchmarkAblationMultilevel(b *testing.B) {
	run := func(name string, mapFn func(*graph.Graph, torus.Topology, []int32) []int32) {
		b.Run(name, func(b *testing.B) {
			g, topo, a := benchFixture(b, 256)
			var lastWH int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodeOf := mapFn(g, topo, a.Nodes)
				lastWH = metrics.WeightedHops(g, topo, nodeOf)
			}
			b.ReportMetric(float64(lastWH), "WH")
		})
	}
	run("UG", core.MapUG)
	run("UWH", core.MapUWH)
	run("UML", func(g *graph.Graph, topo torus.Topology, nodes []int32) []int32 {
		return core.MapUML(g, topo, nodes, core.MultilevelOptions{})
	})
}

// BenchmarkFatTreeMapping measures the WH pipeline on a k=16 fat
// tree (1024 hosts, 512 mapped supertasks) — the topology-agnostic
// claim of §III at scale.
func BenchmarkFatTreeMapping(b *testing.B) {
	ft, err := fattree.New(16, 10e9, 2)
	if err != nil {
		b.Fatal(err)
	}
	a, err := fattree.SparseHosts(ft, 512, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.RandomConnected(512, 2048, 100, 2)
	var lastWH int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodeOf := core.MapUWH(g, ft, a.Nodes)
		lastWH = metrics.WeightedHops(g, ft, nodeOf)
	}
	b.ReportMetric(float64(lastWH), "WH")
}

// BenchmarkDragonflyMapping measures the WH pipeline on a canonical
// h=3 dragonfly (19 groups x 6 routers x 3 hosts = 342 hosts, 128
// mapped supertasks).
func BenchmarkDragonflyMapping(b *testing.B) {
	d, err := dragonfly.New(3, 10e9, 5e9, 4e9)
	if err != nil {
		b.Fatal(err)
	}
	a, err := dragonfly.SparseHosts(d, 128, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := graph.RandomConnected(128, 512, 100, 2)
	var lastWH int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodeOf := core.MapUWH(g, d, a.Nodes)
		lastWH = metrics.WeightedHops(g, d, nodeOf)
	}
	b.ReportMetric(float64(lastWH), "WH")
}

// BenchmarkAblationAdaptiveRouting compares refining for static
// congestion (UMC) against refining for the expected congestion of an
// adaptively routed torus (UMCA, §III-C's dynamic-routing remark),
// scoring both under the adaptive metric EMC ×1e6.
func BenchmarkAblationAdaptiveRouting(b *testing.B) {
	run := func(name string, mapFn func(*graph.Graph, *torus.Torus, []int32) []int32) {
		b.Run(name, func(b *testing.B) {
			g, topo, a := benchFixture(b, 256)
			var lastEMC float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodeOf := mapFn(g, topo, a.Nodes)
				pl := &metrics.Placement{NodeOf: nodeOf}
				lastEMC = metrics.ComputeAdaptive(g, topo, pl).EMC
			}
			b.ReportMetric(lastEMC*1e6, "EMC_us")
		})
	}
	run("UMC_static", func(g *graph.Graph, topo *torus.Torus, nodes []int32) []int32 {
		return core.MapUMC(g, topo, nodes)
	})
	run("UMCA_adaptive", func(g *graph.Graph, topo *torus.Torus, nodes []int32) []int32 {
		return core.MapUMCA(g, topo, nodes)
	})
}

// BenchmarkAblationAdaptiveSim closes the §III-C loop in execution
// time: on an adaptively routed torus, a mapping refined against the
// static congestion model (UMC) races one refined against the
// expected congestion (UMCA); both are scored by the multipath
// communication-only simulator (microseconds reported).
func BenchmarkAblationAdaptiveSim(b *testing.B) {
	run := func(name string, mapFn func(*graph.Graph, *torus.Torus, []int32) []int32) {
		b.Run(name, func(b *testing.B) {
			g, topo, a := benchFixture(b, 256)
			var lastT float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodeOf := mapFn(g, topo, a.Nodes)
				pl := &metrics.Placement{NodeOf: nodeOf}
				lastT = netsim.CommOnlyAdaptive(g, topo, pl, 4096,
					netsim.Params{Seed: 1, NoiseSigma: 1e-9}).Seconds
			}
			b.ReportMetric(lastT*1e6, "simTime_us")
		})
	}
	run("UMC_static_model", func(g *graph.Graph, topo *torus.Torus, nodes []int32) []int32 {
		return core.MapUMC(g, topo, nodes)
	})
	run("UMCA_adaptive_model", func(g *graph.Graph, topo *torus.Torus, nodes []int32) []int32 {
		return core.MapUMCA(g, topo, nodes)
	})
}

// --- engine (service API) benchmarks --------------------------------

// engineBenchFixture builds the full-pipeline fixture of the engine
// benchmarks: a 256-task PATOH task graph and matching sparse
// allocations on a Hopper-like torus and a canonical dragonfly.
func engineBenchFixture(b *testing.B) (*topomap.TaskGraph, *torus.Torus, *alloc.Allocation, *dragonfly.Dragonfly, *alloc.Allocation) {
	b.Helper()
	spec, err := gen.ByName(gen.Cagelike)
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Generate(gen.Tiny)
	part, err := partitioners.Run(partitioners.PATOHP, m, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	tg, err := taskgraph.Build(m, part, 256)
	if err != nil {
		b.Fatal(err)
	}
	topo := torus.NewHopper3D(8, 8, 8)
	a, err := alloc.Generate(topo, 16, alloc.Config{Mode: alloc.Sparse, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	d, err := dragonfly.New(3, 10e9, 5e9, 4e9)
	if err != nil {
		b.Fatal(err)
	}
	da, err := dragonfly.SparseHosts(d, 16, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	return tg, topo, a, d, da
}

// BenchmarkSolveTraced measures the cost of stage tracing against the
// identical untraced solve: the delta is the tracing overhead the
// "zero overhead disabled, negligible enabled" contract promises
// (mapd traces every solve it serves).
func BenchmarkSolveTraced(b *testing.B) {
	tg, topo, a, _, _ := engineBenchFixture(b)
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		b.Fatal(err)
	}
	for _, traced := range []bool{false, true} {
		name := "untraced"
		if traced {
			name = "traced"
		}
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol := topomap.Solve{Mapper: topomap.UMC, Seed: 1, Trace: traced}
				if _, err := eng.RunSolve(context.Background(), tg, sol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineReuse measures the steady state of the service API:
// one Engine per (topology, allocation), its routing/distance state
// precomputed once, serving repeated UWH requests. Compare with
// BenchmarkEngineColdStart for the cached-routing-state win.
func BenchmarkEngineReuse(b *testing.B) {
	tg, topo, a, d, da := engineBenchFixture(b)
	run := func(name string, t topomap.Topology, al *alloc.Allocation) {
		b.Run(name, func(b *testing.B) {
			eng, err := topomap.NewEngine(t, al)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(topomap.Request{Mapper: topomap.UMC, Tasks: tg, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("torus", topo, a)
	run("dragonfly", d, da)
}

// BenchmarkEngineColdStart is the baseline BenchmarkEngineReuse beats:
// every request recomputes routes from scratch — the legacy RunMapping
// path on the torus, a freshly built engine per request on the
// dragonfly (which the legacy API could not serve at all).
func BenchmarkEngineColdStart(b *testing.B) {
	tg, topo, a, d, da := engineBenchFixture(b)
	b.Run("torus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := topomap.RunMapping(topomap.UMC, tg, topo, a, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dragonfly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := topomap.NewEngine(d, da)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(topomap.Request{Mapper: topomap.UMC, Tasks: tg, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineCacheHit measures the mapd steady state: every
// request fingerprints its (topology, allocation) pair, hits the
// engine cache, and solves against the resident routing state. The
// delta against BenchmarkEngineColdStart is the per-request win of
// the allocation-keyed cache (route-state rebuild plus topology
// construction skipped).
func BenchmarkEngineCacheHit(b *testing.B) {
	tg, topo, a, d, da := engineBenchFixture(b)
	run := func(name string, t topomap.Topology, al *alloc.Allocation) {
		b.Run(name, func(b *testing.B) {
			cache := topomap.NewEngineCache(8)
			if _, _, err := cache.Get(t, al); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, hit, err := cache.Get(t, al)
				if err != nil {
					b.Fatal(err)
				}
				if !hit {
					b.Fatal("warm key missed the cache")
				}
				if _, err := eng.Run(topomap.Request{Mapper: topomap.UMC, Tasks: tg, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("torus", topo, a)
	run("dragonfly", d, da)
}

// BenchmarkEngineRunBatch measures the worker-pool fan-out: the seven
// Figure-2 mappers as one batch against a shared engine.
func BenchmarkEngineRunBatch(b *testing.B) {
	tg, topo, a, _, _ := engineBenchFixture(b)
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		b.Fatal(err)
	}
	var reqs []topomap.Request
	for _, mp := range topomap.Mappers() {
		reqs = append(reqs, topomap.Request{Mapper: mp, Tasks: tg, Seed: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunBatch(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePortfolio measures the objective-driven racing path:
// a six-candidate portfolio selecting by MC against the winning
// mapper run alone — the price of discovering the winner at request
// time instead of hard-coding it (on a multi-core host the portfolio
// amortizes across the pool; single-CPU hosts pay roughly the sum of
// the candidates).
func BenchmarkEnginePortfolio(b *testing.B) {
	tg, topo, a, _, _ := engineBenchFixture(b)
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		b.Fatal(err)
	}
	cands := make([]topomap.Solve, 0, 6)
	for _, mp := range []topomap.Mapper{topomap.DEF, topomap.TMAP, topomap.SMAP, topomap.UG, topomap.UWH, topomap.UMC} {
		cands = append(cands, topomap.Solve{Mapper: mp, Seed: 1})
	}
	req := topomap.PortfolioRequest{Tasks: tg, Candidates: cands,
		Objective: topomap.MinimizeMetric("mc"), Workers: 8}
	warm, err := eng.RunPortfolio(context.Background(), req)
	if err != nil {
		b.Fatal(err)
	}
	winner := cands[warm.Winner]
	b.Run("portfolio6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunPortfolio(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bestSingle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunSolve(context.Background(), tg, winner); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRefineMC measures Algorithm 3 alone — the congestion
// refinement that dominates large UMC/UMMC solves — at 1 and 8
// workers on a 512-supertask torus instance above the scoring work
// gate. The refined mapping is byte-identical across worker counts
// (TestRefineMCParallelDeterminism); only the wall-clock may differ,
// and on a single-CPU host the two are expected to tie.
func BenchmarkRefineMC(b *testing.B) {
	topo := torus.NewHopper3D(16, 12, 16)
	a, err := alloc.Generate(topo, 512, alloc.Config{Mode: alloc.Sparse, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.RandomConnected(512, 2048, 100, 17)
	base := core.MapUG(g, topo, a.Nodes)
	ar := arena.New()
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("torus/w%d", workers), func(b *testing.B) {
			grp := parallel.NewGroup(context.Background(), workers)
			nodeOf := make([]int32, len(base))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(nodeOf, base)
				core.RefineCongestion(g, topo, a.Nodes, nodeOf, core.VolumeCongestion,
					core.RefineOptions{Exec: &core.Exec{Par: grp, Arena: ar}})
			}
		})
	}
}

// BenchmarkAblationGrouping compares SMP-style block grouping against
// the partition-based grouping of §III-A.
func BenchmarkAblationGrouping(b *testing.B) {
	spec, err := gen.ByName(gen.Cagelike)
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Generate(gen.Tiny)
	part, err := partitioners.Run(partitioners.PATOHP, m, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	tg, err := taskgraph.Build(m, part, 256)
	if err != nil {
		b.Fatal(err)
	}
	caps := make([]int64, 16)
	for i := range caps {
		caps[i] = 16
	}
	b.Run("blocks", func(b *testing.B) {
		var vol int64
		for i := 0; i < b.N; i++ {
			group, err := taskgraph.GroupBlocks(256, caps)
			if err != nil {
				b.Fatal(err)
			}
			vol = taskgraph.CoarseGraph(tg, group, 16).TotalEdgeWeight() / 2
		}
		b.ReportMetric(float64(vol), "interVol")
	})
	b.Run("partitioned", func(b *testing.B) {
		var vol int64
		for i := 0; i < b.N; i++ {
			group, err := taskgraph.GroupTasks(tg, caps, 1)
			if err != nil {
				b.Fatal(err)
			}
			vol = taskgraph.CoarseGraph(tg, group, 16).TotalEdgeWeight() / 2
		}
		b.ReportMetric(float64(vol), "interVol")
	})
}

// BenchmarkRemapVsCold measures the incremental-remap win (PR 6): a
// single node death on a 4096-task instance, handled warm — route
// cache patched in place, only the stranded tasks migrated, WH
// refinement warm-started — against the cold path a naive client pays
// (rebuild the post-delta engine, re-solve from scratch). The fence
// is disabled so the remap side times the pure warm pipeline; the
// pairReuse% metric reports the fraction of per-pair route state the
// patch reused verbatim (single-node removal keeps every surviving
// pair, so it reads 100).
func BenchmarkRemapVsCold(b *testing.B) {
	tg := parallelBenchInstance(b, 4096)
	type instance struct {
		name string
		topo topomap.Topology
		a    *alloc.Allocation
	}
	var instances []instance

	// 257 allocated nodes x 16 procs leave one node of slack, so a
	// node death keeps the 4096 tasks feasible.
	topo := torus.NewHopper3D(16, 12, 16)
	ta, err := alloc.Generate(topo, 257, alloc.Config{Mode: alloc.Sparse, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	instances = append(instances, instance{"torus", topo, ta})

	df, err := dragonfly.New(4, 10e9, 5e9, 4e9)
	if err != nil {
		b.Fatal(err)
	}
	da, err := dragonfly.SparseHosts(df, 257, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	instances = append(instances, instance{"dragonfly", df, da})

	for _, inst := range instances {
		eng, err := topomap.NewEngine(inst.topo, inst.a)
		if err != nil {
			b.Fatal(err)
		}
		prev, err := eng.RunSolve(context.Background(), tg, topomap.Solve{Mapper: topomap.UWH, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		delta := topomap.AllocationDelta{Remove: []int32{inst.a.Nodes[len(inst.a.Nodes)/2]}}
		b.Run(inst.name+"/remap", func(b *testing.B) {
			var reuse float64
			for i := 0; i < b.N; i++ {
				rres, err := eng.RunRemap(context.Background(), tg, prev, delta,
					topomap.RemapSpec{FenceThreshold: -1})
				if err != nil {
					b.Fatal(err)
				}
				reuse = float64(rres.PairsReused) / float64(rres.PairsTotal) * 100
			}
			b.ReportMetric(reuse, "pairReuse%")
		})
		next, err := delta.Apply(inst.topo, inst.a)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(inst.name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ne, err := topomap.NewEngine(inst.topo, next)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ne.RunSolve(context.Background(), tg, topomap.Solve{Mapper: topomap.UWH, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeteroSolve measures the heterogeneous pipeline on a
// 4096-task inference-pipeline graph (64 stages x 64 branches, skewed
// per-task loads) over a sparse torus allocation where every third
// node is a 4x accelerator. The hetero-aware side runs HET with the
// makespan load-repair stage, loads and speeds visible; the blind side
// runs UWH with both stripped — the pre-heterogeneity engine — and is
// then scored under the true loads and speeds. Both report the
// makespan they actually achieve, so the JSON record tracks the win,
// not just the wall-clock.
func BenchmarkHeteroSolve(b *testing.B) {
	tg, err := taskgraph.MLPipe(64, 64, 3)
	if err != nil {
		b.Fatal(err)
	}
	topo := torus.NewHopper3D(16, 12, 16)
	a, err := alloc.Generate(topo, 256, alloc.Config{Mode: alloc.Sparse, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	a.Speeds = make([]float64, len(a.Nodes))
	for i := range a.Speeds {
		a.Speeds[i] = 1
		if i%3 == 0 {
			a.Speeds[i] = 4
		}
	}
	dense := make([]float64, topo.Nodes())
	for i, n := range a.Nodes {
		dense[n] = a.Speeds[i]
	}

	b.Run("heteroAware", func(b *testing.B) {
		eng, err := topomap.NewEngine(topo, a)
		if err != nil {
			b.Fatal(err)
		}
		var makespan float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Run(topomap.Request{Mapper: topomap.HET, Tasks: tg, Seed: 1,
				Options: []topomap.RequestOption{topomap.WithBalance()}})
			if err != nil {
				b.Fatal(err)
			}
			makespan = res.Metrics.Makespan
		}
		b.ReportMetric(makespan, "makespan")
	})
	b.Run("heteroBlind", func(b *testing.B) {
		blindG := *tg.G
		blindG.VW = nil
		blindTG := &topomap.TaskGraph{G: &blindG, K: tg.K}
		aBlind := *a
		aBlind.Speeds = nil
		eng, err := topomap.NewEngine(topo, &aBlind)
		if err != nil {
			b.Fatal(err)
		}
		var makespan float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Run(topomap.Request{Mapper: topomap.UWH, Tasks: blindTG, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			makespan, _ = hetero.Summary(tg.G, res.GroupOf, res.NodeOf, dense)
		}
		b.ReportMetric(makespan, "makespan")
	})
}

// BenchmarkGeomSolve measures the geometric pipeline against the
// paper's mapper on the geometric pair's native workload: a 16^3
// halo-exchange stencil (4096 tasks, coordinates = grid positions)
// over 256 sparse nodes of an 8x8x8 Hopper torus. GEOM runs the
// multi-jagged bisection + Hilbert node order, SFCM the pure
// SFC-to-SFC placement, UML the library's multi-level construction —
// geometry is cheap sorting, so GEOM's construction must come in well
// under UML's while each records the hop-byte quality it buys.
func BenchmarkGeomSolve(b *testing.B) {
	tg, err := taskgraph.Stencil(16, 16, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	topo := torus.NewHopper3D(8, 8, 8)
	a, err := alloc.Generate(topo, 256, alloc.Config{Mode: alloc.Sparse, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, mp := range []topomap.Mapper{topomap.GEOM, topomap.SFCM, topomap.UML, topomap.DEF} {
		b.Run("solve/"+string(mp), func(b *testing.B) {
			eng, err := topomap.NewEngine(topo, a)
			if err != nil {
				b.Fatal(err)
			}
			var wh int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(topomap.Request{Mapper: mp, Tasks: tg, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				wh = res.Metrics.WH
			}
			b.ReportMetric(float64(wh), "hop-bytes")
		})
	}

	// Construction-stage sub-benches: the end-to-end solves above share
	// the coarsening cost, so the mapper-stage difference — where
	// geometry's cheap sorting replaces UML's recursive multi-level
	// construction — is measured on the precomputed coarse inputs.
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := eng.Run(topomap.Request{Mapper: topomap.GEOM, Tasks: tg, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	coarse, group := warm.Coarse, warm.GroupOf
	dim := tg.Dim
	cent := make([]float64, coarse.N()*dim)
	wsum := make([]float64, coarse.N())
	for v := 0; v < tg.K; v++ {
		g := int(group[v])
		w := float64(tg.G.VertexWeight(v))
		wsum[g] += w
		for d := 0; d < dim; d++ {
			cent[g*dim+d] += w * tg.Coords[v*dim+d]
		}
	}
	for g := range wsum {
		for d := 0; d < dim; d++ {
			cent[g*dim+d] /= wsum[g]
		}
	}
	b.Run("construct/GEOM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := geom.MapGEOM(cent, dim, coarse.VW, topo, a.Nodes, geom.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("construct/SFCM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := geom.MapSFCM(cent, dim, topo, a.Nodes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("construct/UML", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MapUML(coarse, topo, a.Nodes, core.MultilevelOptions{})
		}
	})
}

// --- parallel solve benchmarks (PR 3) --------------------------------

// parallelBenchInstance builds one large solve instance: a random
// connected task graph of `tasks` vertices grouped onto `nodes`
// allocated nodes of the given topology — big enough that the
// grouping partitioner's bisection tree dominates, which is the part
// the worker pool parallelizes.
func parallelBenchInstance(b *testing.B, tasks int) *topomap.TaskGraph {
	b.Helper()
	g := graph.RandomConnected(tasks, 6*tasks, 100, 11)
	return &topomap.TaskGraph{G: g, K: tasks}
}

// BenchmarkEngineParallelSolve measures one large UWH solve per
// topology family at 1 and 8 workers. UWH's cost concentrates in the
// grouping partitioner's bisection tree — the stage the worker pool
// parallelizes — so this is the benchmark the ≥1.5x@8-workers
// acceptance target is stated over (on a host with ≥8 CPUs; on a
// single-CPU host the two are expected to tie). The placements are
// byte-identical across the worker counts (see
// TestEngineParallelDeterminism); only the wall-clock may differ.
func BenchmarkEngineParallelSolve(b *testing.B) {
	tg := parallelBenchInstance(b, 4096)
	type instance struct {
		name string
		topo topomap.Topology
		a    *alloc.Allocation
	}
	var instances []instance

	topo := torus.NewHopper3D(16, 12, 16)
	ta, err := alloc.Generate(topo, 256, alloc.Config{Mode: alloc.Sparse, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	instances = append(instances, instance{"torus", topo, ta})

	ft, err := fattree.New(16, 10e9, 2)
	if err != nil {
		b.Fatal(err)
	}
	fa, err := fattree.SparseHosts(ft, 256, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	instances = append(instances, instance{"fattree", ft, fa})

	df, err := dragonfly.New(4, 10e9, 5e9, 4e9)
	if err != nil {
		b.Fatal(err)
	}
	da, err := dragonfly.SparseHosts(df, 256, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	instances = append(instances, instance{"dragonfly", df, da})

	for _, inst := range instances {
		eng, err := topomap.NewEngine(inst.topo, inst.a)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/w%d", inst.name, workers), func(b *testing.B) {
				req := topomap.Request{Mapper: topomap.UWH, Tasks: tg, Seed: 1,
					Options: []topomap.RequestOption{topomap.WithParallelism(workers)}}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

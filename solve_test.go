package topomap

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// Solve-spec tests: the declarative Solve must serialize losslessly,
// and the legacy Request+RequestOption shim must lower onto it with
// byte-identical engine behaviour — the API redesign's conservation
// law.

// TestSolveJSONRoundTrip: a fully populated Solve survives the JSON
// codec field for field, and a minimal one marshals minimally.
func TestSolveJSONRoundTrip(t *testing.T) {
	want := Solve{
		Mapper:     UMC,
		Seed:       42,
		Refine:     true,
		FineRefine: true,
		Workers:    4,
		Trace:      true,
		Sim:        &SimSpec{BytesPerUnit: 4096, Params: SimParams{Seed: 7, NoiseSigma: 0.02}},
	}
	buf, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Solve
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n want %+v\n got  %+v", want, got)
	}
	// Zero knobs stay off the wire: a minimal solve is a minimal
	// payload, not a field-by-field mirror of every option.
	minimal, err := json.Marshal(Solve{Mapper: UWH})
	if err != nil {
		t.Fatal(err)
	}
	if string(minimal) != `{"mapper":"UWH"}` {
		t.Fatalf("minimal solve marshals as %s", minimal)
	}
}

// TestRequestLowersToSolve pins the lowering: every option mutates
// exactly the Solve field it documents.
func TestRequestLowersToSolve(t *testing.T) {
	req := Request{Mapper: UWH, Seed: 9, Options: []RequestOption{
		WithRefinement(),
		WithFineRefine(),
		WithParallelism(3),
		WithSimParams(2048, SimParams{Seed: 5}),
	}}
	got := req.Solve()
	want := Solve{Mapper: UWH, Seed: 9, Refine: true, FineRefine: true, Workers: 3,
		Sim: &SimSpec{BytesPerUnit: 2048, Params: SimParams{Seed: 5}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lowering diverged:\n want %+v\n got  %+v", want, got)
	}
	// Solve.Request round-trips back onto the same Solve.
	if rt := got.Request(nil).Solve(); !reflect.DeepEqual(rt, got) {
		t.Fatalf("Solve -> Request -> Solve diverged: %+v", rt)
	}
}

// TestRunSolveMatchesRequestPath is the compatibility-shim acceptance
// gate: for every registered mapper and every option combination, a
// JSON-round-tripped Solve through RunSolve produces byte-identical
// results to the closure-option Request path.
func TestRunSolveMatchesRequestPath(t *testing.T) {
	tg, topo, a := engineFixture(t, 128)
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		opts []RequestOption
	}{
		{"plain", nil},
		{"refine", []RequestOption{WithRefinement()}},
		{"fine", []RequestOption{WithFineRefine()}},
		{"sim", []RequestOption{WithSimParams(4096, SimParams{Seed: 1})}},
		{"all", []RequestOption{WithRefinement(), WithFineRefine(), WithParallelism(2), WithSimParams(4096, SimParams{Seed: 1})}},
	}
	tgc := withTestCoords(t, tg)
	for _, mp := range RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue // registered by other tests in this binary
		}
		tasks := tg
		if MapperCapsOf(mp).NeedsCoords {
			tasks = tgc
		}
		for _, v := range variants {
			req := Request{Mapper: mp, Tasks: tasks, Seed: 3, Options: v.opts}
			legacy, err := eng.Run(req)
			if err != nil {
				t.Fatalf("%s/%s: request path: %v", mp, v.name, err)
			}
			// The Solve takes a trip through the JSON codec — the wire
			// path — before solving.
			buf, err := json.Marshal(req.Solve())
			if err != nil {
				t.Fatal(err)
			}
			var s Solve
			if err := json.Unmarshal(buf, &s); err != nil {
				t.Fatal(err)
			}
			got, err := eng.RunSolve(context.Background(), tasks, s)
			if err != nil {
				t.Fatalf("%s/%s: solve path: %v", mp, v.name, err)
			}
			if !reflect.DeepEqual(got.GroupOf, legacy.GroupOf) ||
				!reflect.DeepEqual(got.NodeOf, legacy.NodeOf) {
				t.Fatalf("%s/%s: placement diverged between Solve and Request paths", mp, v.name)
			}
			if got.Metrics != legacy.Metrics {
				t.Fatalf("%s/%s: metrics diverged:\n request %+v\n solve   %+v", mp, v.name, legacy.Metrics, got.Metrics)
			}
			if got.FineWHGain != legacy.FineWHGain || got.FineVolGain != legacy.FineVolGain {
				t.Fatalf("%s/%s: fine-refine gains diverged", mp, v.name)
			}
			if got.SimSeconds != legacy.SimSeconds {
				t.Fatalf("%s/%s: sim seconds diverged: %g vs %g", mp, v.name, got.SimSeconds, legacy.SimSeconds)
			}
		}
	}
}

package topomap

import (
	"context"
	"strings"
	"testing"
)

// Solve-stage tracing tests: span presence and order for a full solve
// and a warm remap, and the conservation law — tracing never changes
// the mapping, at any worker count (the determinism case runs under
// `make race` via its Solve/Remap name match).

// stageNames projects a result's trace onto its span-name sequence.
func stageNames(t *testing.T, res *MapResult) []string {
	t.Helper()
	if res.Trace == nil {
		t.Fatal("traced solve returned a nil Trace")
	}
	stages := res.Trace.Stages()
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.Name
	}
	return names
}

// TestSolveTraceStages: a traced full solve records every pipeline
// stage it ran, in pipeline order, with durations and the counters the
// stages promise; an untraced solve carries no trace at all.
func TestSolveTraceStages(t *testing.T) {
	tg := ringTaskGraph(96, 4)
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := eng.RunSolve(context.Background(), tg, Solve{Mapper: UWH, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatalf("untraced solve carries a trace with %d stages", len(plain.Trace.Stages()))
	}

	res, err := eng.RunSolve(context.Background(), tg,
		Solve{Mapper: UWH, Seed: 3, Refine: true, FineRefine: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"group", "coarsen", "map", "refine_wh", "refine_fine", "metrics"}
	got := stageNames(t, res)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("stage order %v, want %v", got, want)
	}

	stages := res.Trace.Stages()
	for _, st := range stages {
		if st.DurMS < 0 {
			t.Fatalf("stage %s has negative duration %v", st.Name, st.DurMS)
		}
	}
	byName := map[string]map[string]int64{}
	for _, st := range stages {
		byName[st.Name] = st.Counters
	}
	if byName["group"]["groups"] != int64(a.NumNodes()) {
		t.Fatalf("group stage counted %d groups, want %d", byName["group"]["groups"], a.NumNodes())
	}
	if byName["group"]["bisections"] < 1 {
		t.Fatalf("group stage recorded no bisections: %v", byName["group"])
	}
	if byName["coarsen"]["coarse_vertices"] != int64(a.NumNodes()) {
		t.Fatalf("coarsen stage counted %d vertices, want %d", byName["coarsen"]["coarse_vertices"], a.NumNodes())
	}
	// UWH runs greedy + WH refinement inside the map stage, so its
	// counters land there; the explicit refine_wh pass owns its own.
	if byName["map"]["wh_passes"] < 1 {
		t.Fatalf("map stage recorded no WH passes: %v", byName["map"])
	}
	if res.Trace.TotalMS() <= 0 {
		t.Fatalf("TotalMS = %v, want > 0", res.Trace.TotalMS())
	}
	// The trace must be pure observation: same placement either way.
	if strings.Join(rankfileOf(t, eng, plain), "") != strings.Join(rankfileOf(t, eng, res), "") {
		t.Fatal("traced and untraced solves placed differently")
	}
}

// TestRemapTraceStages: a traced warm remap's timeline starts with the
// route-cache patch (with its pair-reuse counters) and continues
// through the warm pipeline's stages in order.
func TestRemapTraceStages(t *testing.T) {
	eng, tg, prev := remapFixture(t)
	dead := prev.NodeOf[0]
	spare := findSpareNode(t, eng)
	delta := AllocationDelta{Remove: []int32{dead}, Add: []NodeCapacity{{Node: spare, Procs: 16}}}
	res, err := eng.RunRemap(context.Background(), tg, prev, delta, RemapSpec{
		Solve: Solve{Seed: 3, Trace: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Warm {
		t.Skip("fence fell back to a cold solve; warm timeline not exercised")
	}
	got := stageNames(t, res.Result)
	want := []string{"route_patch", "patch_placement", "coarsen", "refine_wh", "metrics"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("warm remap stage order %v, want %v", got, want)
	}
	stages := res.Result.Trace.Stages()
	patch := stages[0].Counters
	if patch["pairs_total"] == 0 || patch["pairs_reused"] == 0 {
		t.Fatalf("route_patch counters %v, want nonzero pairs_reused/pairs_total", patch)
	}
	if patch["pairs_reused"] != int64(res.PairsReused) || patch["pairs_total"] != int64(res.PairsTotal) {
		t.Fatalf("route_patch counters %v disagree with result (%d/%d)", patch, res.PairsReused, res.PairsTotal)
	}
	if mig := stages[1].Counters["migrated_tasks"]; mig != int64(res.MigratedTasks) {
		t.Fatalf("patch_placement migrated_tasks = %d, result says %d", mig, res.MigratedTasks)
	}
}

// rankfileOf renders a result's rankfile — the byte-level identity the
// determinism tests compare.
func rankfileOf(t *testing.T, eng *Engine, res *MapResult) []string {
	t.Helper()
	var sb strings.Builder
	if err := WriteRankOrder(&sb, res.Placement(), eng.Allocation()); err != nil {
		t.Fatal(err)
	}
	return []string{sb.String()}
}

// findSpareNode returns a placement-eligible node outside the engine's
// allocation.
func findSpareNode(t *testing.T, eng *Engine) int32 {
	t.Helper()
	in := map[int32]bool{}
	for _, n := range eng.Allocation().Nodes {
		in[n] = true
	}
	for n := int32(0); ; n++ {
		if !in[n] {
			return n
		}
	}
}

// TestSolveTraceDeterminism: for workers 1, 2 and 8, traced and
// untraced solves of the same spec produce byte-identical rankfiles —
// tracing observes the pipeline, it never steers it. Runs under
// `make race`, so the trace's internal locking is exercised against
// the parallel counter writers.
func TestSolveTraceDeterminism(t *testing.T) {
	tg := ringTaskGraph(96, 4)
	topo := NewHopperTorus(6, 6, 6)
	a, err := SparseAllocation(topo, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	var ref string
	for _, workers := range []int{1, 2, 8} {
		for _, traced := range []bool{false, true} {
			res, err := eng.RunSolve(context.Background(), tg,
				Solve{Mapper: UWH, Seed: 3, Refine: true, Workers: workers, Trace: traced})
			if err != nil {
				t.Fatal(err)
			}
			rf := rankfileOf(t, eng, res)[0]
			if ref == "" {
				ref = rf
				continue
			}
			if rf != ref {
				t.Fatalf("workers=%d traced=%v diverged from the workers=1 untraced rankfile", workers, traced)
			}
		}
	}
}

package topomap

import (
	"context"
	"fmt"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/routecache"
	"repro/internal/taskgraph"
	"repro/internal/torus"
	"repro/internal/trace"
)

// Engine is the topology-generic mapping service: constructed once
// per (Topology, Allocation) pair, it precomputes the pairwise
// routing and distance state of the allocated nodes (torus
// dimension-ordered routes, fat-tree D-mod-k paths, dragonfly
// hierarchical minimal routes — whatever the topology's static
// routing produces) and serves any number of mapping requests against
// that cached state. An Engine is immutable after construction and
// safe for concurrent use; Run may be called from many goroutines,
// RunBatch fans a request slice out over a worker pool, and
// RunPortfolio races a candidate set toward a declared Objective.
//
// Mappers are dispatched through the pluggable registry: the eleven
// built-ins plus anything added with RegisterMapper.
type Engine struct {
	topo      Topology
	view      Topology // route-cached view of topo (identical answers)
	alloc     *Allocation
	caps      []int64 // per-allocated-node capacities, allocation order
	capOfNode []int64 // node id -> capacity (repair accounting)
	uniform   bool

	// speedOfNode is the dense node id -> speed factor vector of a
	// heterogeneous allocation (nil on unit speeds), and unitSpeeds its
	// gate: when set, every node computes at the same rate and the
	// makespan-aware balance stage only runs on request (Solve.Balance).
	speedOfNode []float64
	unitSpeeds  bool

	// arena recycles per-solve scratch (BFS marks, gain buffers,
	// heaps, queues) across requests, so the steady state of a
	// resident engine allocates almost nothing per solve. It is
	// concurrency-safe; concurrent requests and the parallel subtasks
	// within one request share it.
	arena *arena.Arena
}

// NewEngine validates the allocation against the topology and builds
// the engine's cached routing state. Any Topology works: *Torus,
// *FatTree, *Dragonfly, or a user implementation.
func NewEngine(topo Topology, a *Allocation) (*Engine, error) {
	if topo == nil || a == nil {
		return nil, fmt.Errorf("topomap: NewEngine needs a topology and an allocation")
	}
	if err := a.Validate(topo); err != nil {
		return nil, err
	}
	view, err := routecache.New(topo, a.Nodes)
	if err != nil {
		return nil, err
	}
	return newEngineView(topo, view, a), nil
}

// newEngineView assembles an engine around an arbitrary topology view
// (cached for NewEngine, the raw topology for the legacy RunMapping
// shim). It performs no validation — the legacy path never did.
func newEngineView(topo, view Topology, a *Allocation) *Engine {
	e := &Engine{
		topo:      topo,
		view:      view,
		alloc:     a,
		caps:      make([]int64, a.NumNodes()),
		capOfNode: make([]int64, topo.Nodes()),
		uniform:   uniformCaps(a.ProcsPerNode),
		arena:     arena.New(),
	}
	for i, p := range a.ProcsPerNode {
		e.caps[i] = int64(p)
		e.capOfNode[a.Nodes[i]] = int64(p)
	}
	e.unitSpeeds = a.UnitSpeeds()
	if !e.unitSpeeds {
		e.speedOfNode = make([]float64, topo.Nodes())
		for i, m := range a.Nodes {
			e.speedOfNode[m] = a.Speeds[i]
		}
	}
	return e
}

// Topology returns the network the engine maps onto.
func (e *Engine) Topology() Topology { return e.topo }

// Allocation returns the node set the engine maps onto.
func (e *Engine) Allocation() *Allocation { return e.alloc }

// MapResult bundles the outcome of one mapping request.
type MapResult struct {
	// Mapper is the algorithm that produced the result.
	Mapper Mapper
	// GroupOf maps each task to its supertask/group (node index).
	GroupOf []int32
	// NodeOf maps each group to its network node.
	NodeOf []int32
	// Coarse is the aggregated supertask graph the mapper ran on.
	Coarse *Graph
	// Metrics holds the mapping metrics on the fine task graph.
	Metrics MapMetrics
	// FineWHGain and FineVolGain are the WH and volume improvements
	// of the fine-level refinement (Solve.FineRefine only).
	FineWHGain, FineVolGain int64
	// SimSeconds is the simulated communication time; meaningful only
	// when SimRan is set.
	SimSeconds float64
	// SimRan reports whether the communication-only simulator ran for
	// this solve (Solve.Sim was set) — zero simulated seconds on a
	// communication-free placement is a result, not an omission.
	SimRan bool
	// Trace is the solve's stage timeline, recorded only when
	// Solve.Trace was set (nil otherwise). Serialize it with
	// Trace.Stages().
	Trace *trace.Trace
}

// Placement returns the task→node composition for the simulator.
func (r *MapResult) Placement() *Placement {
	return &metrics.Placement{GroupOf: r.GroupOf, NodeOf: r.NodeOf}
}

// Run executes the paper's full mapping pipeline (§III-A) for one
// request: group the tasks onto the allocated nodes (SMP-style blocks
// for block-grouping mappers, graph partitioning with capacity fix-up
// for the rest), aggregate to the coarse supertask graph, dispatch
// the mapper through the registry, repair heterogeneous capacity
// violations, and evaluate the metrics on the fine task graph —
// all against the engine's cached routing state.
func (e *Engine) Run(req Request) (*MapResult, error) {
	return e.RunContext(context.Background(), req)
}

// RunContext is Run with cancellation, both between and inside the
// pipeline stages: the pipeline checks ctx at stage boundaries
// (grouping, mapper dispatch, refinement, metric evaluation), and the
// stages themselves — the bisection recursion, the greedy placement
// loop, every refinement pass — poll the context cooperatively and
// bail early, so cancellation latency is bounded by one refinement
// swap or bisection level, not a whole stage. It returns ctx.Err() as
// soon as the deadline expires or the caller cancels.
func (e *Engine) RunContext(ctx context.Context, req Request) (*MapResult, error) {
	return e.runSolve(ctx, req.Tasks, req.Solve(), 0)
}

// RunSolve executes one declarative Solve spec against the task
// graph — the same pipeline as RunContext, which is a thin shim
// lowering Request+RequestOption onto a Solve. An unmarshalled wire
// Solve and a hand-built Request describing the same job produce
// byte-identical results.
func (e *Engine) RunSolve(ctx context.Context, tasks *TaskGraph, s Solve) (*MapResult, error) {
	return e.runSolve(ctx, tasks, s, 0)
}

// runSolve implements the solve pipeline. defaultWorkers is the
// parallelism a Solve with Workers == 0 gets: 0 means
// parallel.Workers() (direct Run/RunContext/RunSolve calls use the
// whole host), while RunBatch and RunPortfolio pass 1 (their pools
// already fan out across requests).
func (e *Engine) runSolve(ctx context.Context, tg *TaskGraph, s Solve, defaultWorkers int) (*MapResult, error) {
	if tg == nil {
		return nil, fmt.Errorf("topomap: request carries no task graph")
	}
	if s.TimeoutMS < 0 {
		return nil, fmt.Errorf("topomap: negative timeout_ms %d", s.TimeoutMS)
	}
	if s.TimeoutMS > 0 {
		// The per-solve budget composes with the caller's ctx:
		// whichever expires first cancels the pipeline. Enforcing it
		// here (the single pipeline entry) makes the budget uniform
		// across RunSolve, RunBatch and portfolio candidates.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(s.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if tg.K > e.alloc.TotalProcs() {
		return nil, fmt.Errorf("topomap: %d tasks exceed %d allocated processors", tg.K, e.alloc.TotalProcs())
	}
	spec, ok := registry.Lookup(string(s.Mapper))
	if !ok {
		return nil, fmt.Errorf("topomap: unknown mapper %q", s.Mapper)
	}
	caps := spec.Caps()
	if caps.NeedsMultipath {
		if _, ok := torus.MultipathOf(e.view); !ok {
			return nil, fmt.Errorf("topomap: mapper %s needs a topology with minimal-route enumeration", s.Mapper)
		}
	}
	if caps.NeedsCoords && !tg.HasCoords() {
		return nil, fmt.Errorf("topomap: mapper %s needs per-task coordinates on the task graph", s.Mapper)
	}
	workers := s.Workers
	if workers == 0 {
		workers = defaultWorkers
	}
	var tr *trace.Trace
	if s.Trace {
		tr = trace.New()
	}
	ex := &core.Exec{Par: parallel.NewGroup(ctx, workers), Arena: e.arena, Trace: tr}
	poolWorkers := ex.Par.NumWorkers()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := ex.StartSpan("group")
	sp.SetWorkers(poolWorkers)
	var group []int32
	var err error
	if caps.BlockGrouping {
		group, err = taskgraph.GroupBlocks(tg.K, e.caps)
	} else {
		group, err = taskgraph.GroupTasksExec(tg, e.caps, s.Seed, ex.Par, e.arena, tr)
	}
	sp.Add("groups", int64(e.alloc.NumNodes()))
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp = ex.StartSpan("coarsen")
	coarse := taskgraph.CoarseGraphArena(e.arena, tg, group, e.alloc.NumNodes())
	in := registry.Input{Coarse: coarse, Topo: e.view, Alloc: e.alloc, Seed: s.Seed, Exec: ex}
	if caps.NeedsMessageGraph {
		in.Msg = taskgraph.CoarseMessageGraphArena(e.arena, tg, group, e.alloc.NumNodes())
	}
	if caps.NeedsCoords {
		in.Coords, in.Dim = groupCentroids(tg, group, e.alloc.NumNodes())
	}
	sp.Add("coarse_vertices", int64(coarse.N()))
	sp.Add("coarse_edges", int64(coarse.M()))
	sp.End()
	sp = ex.StartSpan("map")
	sp.SetWorkers(poolWorkers)
	nodeOf, err := spec.Map(in)
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The optional extra WH pass runs before the capacity repair:
	// RefineWH swaps whole groups between nodes without weighing
	// their sizes, so it must never be the last placement-mutating
	// step on a heterogeneous allocation.
	if s.Refine {
		sp = ex.StartSpan("refine_wh")
		sp.SetWorkers(poolWorkers)
		core.RefineWH(coarse, e.view, e.alloc.Nodes, nodeOf, core.RefineOptions{Exec: ex})
		sp.End()
	}
	// Heterogeneous capacities (§III-A): the mappers optimize locality
	// one-to-one; when node capacities are non-uniform a heavy group
	// can land on a small node, so repair any violations with
	// weight-aware swaps (a no-op on uniform allocations).
	if !caps.BlockGrouping && !e.uniform {
		sp = ex.StartSpan("repair")
		weight := e.arena.Int64s(coarse.N())
		for _, g := range group {
			weight[g]++
		}
		moves := core.RepairCapacities(coarse, e.view, nodeOf, weight, e.capOfNode)
		e.arena.PutInt64s(weight)
		sp.Add("repair_moves", int64(moves))
		sp.End()
	}
	// Makespan-aware load repair (heterogeneous processors): migrate
	// the costliest tasks off the bottleneck node — per-task loads over
	// per-node speeds — onto the cheapest feasible node. Runs whenever
	// the allocation declares non-unit speeds, or on request
	// (Solve.Balance) for loads-only jobs; block-grouping mappers pin
	// tasks to rank blocks and are exempt, like capacity repair.
	if !caps.BlockGrouping && (s.Balance || !e.unitSpeeds) {
		sp = ex.StartSpan("balance")
		moves := hetero.RepairLoad(tg.G, coarse, group, nodeOf, e.speedOfNode, e.capOfNode)
		sp.Add("balance_moves", int64(moves))
		sp.End()
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &MapResult{Mapper: s.Mapper, GroupOf: group, NodeOf: nodeOf, Coarse: coarse, Trace: tr}
	if s.FineRefine {
		sp = ex.StartSpan("refine_fine")
		sp.SetWorkers(poolWorkers)
		res.FineWHGain, res.FineVolGain = core.RefineWHFine(tg.SymmetricArena(e.arena), e.view, group, nodeOf, core.RefineOptions{Exec: ex})
		sp.End()
	}
	pl := &metrics.Placement{GroupOf: group, NodeOf: nodeOf}
	sp = ex.StartSpan("metrics")
	sp.SetWorkers(poolWorkers)
	res.Metrics = metrics.ComputePar(tg.G, e.view, pl, ex.Par)
	// ComputePar fills the unit-speed makespan; a heterogeneous
	// allocation overwrites it with the speed-aware finish times.
	if !e.unitSpeeds {
		res.Metrics.Makespan, res.Metrics.LoadImbalance = hetero.Summary(tg.G, group, nodeOf, e.speedOfNode)
	}
	sp.End()
	if s.Sim != nil {
		sp = ex.StartSpan("sim")
		res.SimSeconds = netsim.CommOnly(tg.G, e.view, pl, s.Sim.BytesPerUnit, s.Sim.Params).Seconds
		res.SimRan = true
		sp.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// groupCentroids reduces the task coordinates to one point per
// supertask group: the load-weighted mean of the member tasks'
// coordinates (unit weights when the graph carries no loads). The
// geometric mappers place these centroids instead of raw tasks, so
// they see the same coarse problem every other mapper does.
func groupCentroids(tg *TaskGraph, group []int32, numGroups int) ([]float64, int) {
	dim := tg.Dim
	cent := make([]float64, numGroups*dim)
	wsum := make([]float64, numGroups)
	for v := 0; v < tg.K; v++ {
		g := int(group[v])
		w := float64(tg.G.VertexWeight(v))
		wsum[g] += w
		c := tg.Coord(v)
		for d := 0; d < dim; d++ {
			cent[g*dim+d] += w * c[d]
		}
	}
	for g := 0; g < numGroups; g++ {
		if wsum[g] > 0 {
			for d := 0; d < dim; d++ {
				cent[g*dim+d] /= wsum[g]
			}
		}
	}
	return cent, dim
}

// RunBatch runs every request on a worker pool sized to the host
// (GOMAXPROCS) and returns the results by request index. Results are
// deterministic: the same requests produce the same placements
// regardless of worker count or scheduling. On error the first
// failure (lowest request index, as a serial loop would hit it) is
// returned; entries for requests that completed are still filled.
func (e *Engine) RunBatch(reqs []Request) ([]*MapResult, error) {
	return e.RunBatchWorkers(reqs, 0)
}

// RunBatchWorkers is RunBatch with an explicit worker count
// (workers <= 0 means GOMAXPROCS).
func (e *Engine) RunBatchWorkers(reqs []Request, workers int) ([]*MapResult, error) {
	return e.RunBatchContext(context.Background(), reqs, workers)
}

// RunBatchContext is RunBatchWorkers with cancellation: every request
// runs under ctx (see RunContext), so one deadline bounds the whole
// batch.
func (e *Engine) RunBatchContext(ctx context.Context, reqs []Request, workers int) ([]*MapResult, error) {
	results := make([]*MapResult, len(reqs))
	err := parallel.ForEach(len(reqs), workers, func(i int) error {
		// Each request defaults to one worker: the batch pool already
		// fans out across requests, so per-request parallelism on top
		// would oversubscribe the host. Solve.Workers overrides.
		res, err := e.runSolve(ctx, reqs[i].Tasks, reqs[i].Solve(), 1)
		if err != nil {
			return fmt.Errorf("topomap: request %d (%s): %w", i, reqs[i].Mapper, err)
		}
		results[i] = res
		return nil
	})
	return results, err
}

// Evaluate computes the mapping metrics of an arbitrary placement
// through the engine's cached routing state (same answers as
// EvaluateMetrics, faster on repeated calls).
func (e *Engine) Evaluate(tg *TaskGraph, pl *Placement) MapMetrics {
	return metrics.Compute(tg.G, e.view, pl)
}

// RunMapping executes the full mapping pipeline for one mapper on a
// torus, without reusable cached state.
//
// Deprecated: build an Engine with NewEngine and call Run — it serves
// any Topology (fat trees, dragonflies, custom networks), reuses the
// precomputed routing state across requests, and batches. RunMapping
// remains as a shim over the same registry-dispatched pipeline.
func RunMapping(mapper Mapper, tg *TaskGraph, topo *Torus, a *Allocation, seed int64) (*MapResult, error) {
	return newEngineView(topo, topo, a).Run(Request{Mapper: mapper, Tasks: tg, Seed: seed})
}

// uniformCaps reports whether every allocated node has the same
// processor capacity (vacuously true for empty allocations).
func uniformCaps(procs []int) bool {
	if len(procs) == 0 {
		return true
	}
	for _, p := range procs[1:] {
		if p != procs[0] {
			return false
		}
	}
	return true
}

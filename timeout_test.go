package topomap

import (
	"context"
	"strings"
	"testing"
	"time"
)

// Per-solve timeout budgets (Solve.TimeoutMS): central enforcement in
// the pipeline, rejection of negative values, and the portfolio
// marking over-budget candidates Skipped instead of failing.

func timeoutFixture(t *testing.T) (*Engine, *TaskGraph) {
	t.Helper()
	tg := ringTaskGraph(1024, 6)
	topo := NewHopperTorus(8, 8, 8)
	a, err := SparseAllocation(topo, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	return eng, tg
}

// TestSolveTimeoutBudget: a 1ms budget on an instance whose UMC solve
// takes far longer must surface context.DeadlineExceeded without the
// caller passing any deadline of its own.
func TestSolveTimeoutBudget(t *testing.T) {
	eng, tg := timeoutFixture(t)
	// Warm run proves the instance is well-formed (and warms the arena).
	if _, err := eng.RunSolve(context.Background(), tg, Solve{Mapper: UMC, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	_, err := eng.RunSolve(context.Background(), tg, Solve{Mapper: UMC, Seed: 7, TimeoutMS: 1})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSolveNegativeTimeoutRejected(t *testing.T) {
	eng, tg := timeoutFixture(t)
	_, err := eng.RunSolve(context.Background(), tg, Solve{Mapper: DEF, TimeoutMS: -5})
	if err == nil || !strings.Contains(err.Error(), "timeout_ms") {
		t.Fatalf("err = %v, want negative timeout_ms rejection", err)
	}
	// The portfolio rejects it during candidate validation, naming the
	// candidate, before any solve runs.
	_, err = eng.RunPortfolio(context.Background(), PortfolioRequest{
		Tasks: tg,
		Candidates: []Solve{
			{Mapper: DEF},
			{Mapper: UMC, TimeoutMS: -1},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "candidate 1") || !strings.Contains(err.Error(), "timeout_ms") {
		t.Fatalf("err = %v, want candidate-1 timeout_ms rejection", err)
	}
}

// TestPortfolioCandidateTimeoutSkipped: an over-budget candidate is
// marked Skipped and the portfolio still returns the best of the
// rest — the per-candidate budget must never fail the whole request.
func TestPortfolioCandidateTimeoutSkipped(t *testing.T) {
	eng, tg := timeoutFixture(t)
	res, err := eng.RunPortfolio(context.Background(), PortfolioRequest{
		Tasks: tg,
		Candidates: []Solve{
			{Mapper: DEF, Seed: 1},
			{Mapper: UMC, Seed: 1, TimeoutMS: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", res.Skipped)
	}
	if res.Winner != 0 {
		t.Fatalf("winner = %d, want the in-budget candidate 0", res.Winner)
	}
	last := res.Leaderboard[len(res.Leaderboard)-1]
	if last.Index != 1 || !last.Skipped || last.Result != nil {
		t.Fatalf("over-budget candidate not marked Skipped: %+v", last)
	}

	// A generous budget changes nothing: both candidates finish and the
	// leaderboard is complete.
	res2, err := eng.RunPortfolio(context.Background(), PortfolioRequest{
		Tasks: tg,
		Candidates: []Solve{
			{Mapper: DEF, Seed: 1},
			{Mapper: UMC, Seed: 1, TimeoutMS: time.Minute.Milliseconds()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Skipped != 0 {
		t.Fatalf("generous budget skipped %d candidates", res2.Skipped)
	}
}

package remap

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/torus"
)

// line4 builds a 4-task path graph 0-1-2-3 with the given edge
// weights (w01, w12, w23), symmetric.
func line4(w01, w12, w23 int64) *graph.Graph {
	us := []int32{0, 1, 1, 2, 2, 3}
	vs := []int32{1, 0, 2, 1, 3, 2}
	ws := []int64{w01, w01, w12, w12, w23, w23}
	return graph.FromEdges(4, us, vs, ws, nil)
}

func TestPatchPlacementKeepsSurvivors(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	sym := line4(10, 1, 10)
	// Old: tasks 0,1 on node 5 (group 0); tasks 2,3 on node 9 (group 1).
	// Node 9 dies; node 7 arrives. Tasks 2,3 must migrate, 0,1 stay.
	plan, err := PatchPlacement(Instance{
		Sym:        sym,
		Topo:       topo,
		OldGroupOf: []int32{0, 0, 1, 1},
		OldNodeOf:  []int32{5, 9},
		NewNodes:   []int32{5, 7},
		NewCaps:    []int64{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.NodeOf, []int32{5, 7}) {
		t.Fatalf("NodeOf = %v, want identity [5 7]", plan.NodeOf)
	}
	if plan.GroupOf[0] != 0 || plan.GroupOf[1] != 0 {
		t.Fatalf("surviving tasks moved: %v", plan.GroupOf)
	}
	if plan.GroupOf[2] != 1 || plan.GroupOf[3] != 1 {
		t.Fatalf("stranded tasks not placed on the only free node: %v", plan.GroupOf)
	}
	if len(plan.Stranded) != 2 {
		t.Fatalf("stranded = %v, want tasks 2 and 3", plan.Stranded)
	}
}

func TestPatchPlacementEvictsLoosestAttached(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	// All four tasks on node 5; capacity drops to 3. Task 2's internal
	// attachment (1+10) beats task 0's (10) and task 3's (10), and
	// task 1's is highest (10+1) — the evictee is the loosest-attached
	// with ties to the lowest id: attachments are 0:10 1:11 2:11 3:10,
	// so task 0 leaves.
	plan, err := PatchPlacement(Instance{
		Sym:        line4(10, 1, 10),
		Topo:       topo,
		OldGroupOf: []int32{0, 0, 0, 0},
		OldNodeOf:  []int32{5},
		NewNodes:   []int32{5, 7},
		NewCaps:    []int64{3, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Stranded, []int32{0}) {
		t.Fatalf("stranded = %v, want [0]", plan.Stranded)
	}
	if plan.GroupOf[0] != 1 {
		t.Fatalf("evicted task placed on group %d, want the free node", plan.GroupOf[0])
	}
}

func TestPatchPlacementRejectsBadPrev(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	// Two old groups on the same node: not a bijection.
	_, err := PatchPlacement(Instance{
		Sym:        line4(1, 1, 1),
		Topo:       topo,
		OldGroupOf: []int32{0, 0, 1, 1},
		OldNodeOf:  []int32{5, 5},
		NewNodes:   []int32{5, 7},
		NewCaps:    []int64{2, 2},
	})
	if err == nil {
		t.Fatal("duplicate old node accepted")
	}
	// More tasks than post-delta capacity.
	_, err = PatchPlacement(Instance{
		Sym:        line4(1, 1, 1),
		Topo:       topo,
		OldGroupOf: []int32{0, 0, 1, 1},
		OldNodeOf:  []int32{5, 9},
		NewNodes:   []int32{5},
		NewCaps:    []int64{2},
	})
	if err == nil {
		t.Fatal("over-capacity instance accepted")
	}
}

// Package remap computes warm-start placements for incremental
// remapping: given a finished mapping and a changed allocation, it
// keeps every task whose node survived exactly where it was and
// migrates only the stranded ones — tasks whose node left the
// allocation or whose node's capacity shrank below its load — via a
// cheapest-feasible-node greedy placement on the patched route state.
// The output is a complete grouping/placement pair in the new
// allocation's index space, ready for the engine's refinement stages
// to polish; everything here is serial and deterministic, so the
// remap pipeline inherits the engine's byte-identical-at-any-worker-
// count contract.
package remap

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/torus"
)

// Instance is one warm-start computation: the symmetric fine task
// graph, the previous placement, and the new allocation (nodes in
// allocation order with per-node capacities) on the patched topology
// view.
type Instance struct {
	// Sym is the undirected task graph (c(t,u) = w(t→u)+w(u→t)), the
	// cost model migration placement minimizes against.
	Sym *graph.Graph
	// Topo answers HopDist on the new allocation — the patched
	// route-cache view, so lookups are O(1).
	Topo torus.Topology
	// OldGroupOf maps each task to its previous group; OldNodeOf maps
	// each previous group to its network node (a bijection onto the
	// previous allocation).
	OldGroupOf, OldNodeOf []int32
	// NewNodes and NewCaps describe the new allocation in allocation
	// order.
	NewNodes []int32
	NewCaps  []int64
}

// Plan is the warm-start placement: a complete task → group mapping
// onto the new allocation's group index space, the identity group →
// node assignment refinement then permutes, and the ids of the tasks
// that had to move.
type Plan struct {
	GroupOf  []int32
	NodeOf   []int32
	Stranded []int32
}

// PatchPlacement computes the warm-start plan. Group j of the new
// index space is pinned to NewNodes[j]; a task keeps its group when
// its old node survived the delta, every other task is stranded and
// re-placed greedily: highest-traffic tasks first, each onto the
// feasible node with the cheapest weighted-hop attachment to the
// tasks already placed (ties to the lowest allocation index).
func PatchPlacement(inst Instance) (*Plan, error) {
	k := len(inst.OldGroupOf)
	if inst.Sym.N() != k {
		return nil, fmt.Errorf("remap: task graph has %d vertices, placement %d", inst.Sym.N(), k)
	}
	var total int64
	for _, c := range inst.NewCaps {
		total += c
	}
	if int64(k) > total {
		return nil, fmt.Errorf("remap: %d tasks exceed %d processors after the delta", k, total)
	}

	// Old group → new group: survive iff the group's node is still
	// allocated. newIdx indexes the new allocation by node id.
	newIdx := map[int32]int32{}
	for j, m := range inst.NewNodes {
		newIdx[m] = int32(j)
	}
	seen := map[int32]bool{}
	groupMap := make([]int32, len(inst.OldNodeOf))
	for g, m := range inst.OldNodeOf {
		if seen[m] {
			return nil, fmt.Errorf("remap: previous placement maps two groups to node %d", m)
		}
		seen[m] = true
		if j, ok := newIdx[m]; ok {
			groupMap[g] = j
		} else {
			groupMap[g] = -1
		}
	}

	n := len(inst.NewNodes)
	plan := &Plan{
		GroupOf: make([]int32, k),
		NodeOf:  make([]int32, n),
	}
	for j, m := range inst.NewNodes {
		plan.NodeOf[j] = m
	}
	load := make([]int64, n)
	for t := 0; t < k; t++ {
		og := inst.OldGroupOf[t]
		if og < 0 || int(og) >= len(groupMap) {
			return nil, fmt.Errorf("remap: task %d has group %d out of range", t, og)
		}
		j := groupMap[og]
		plan.GroupOf[t] = j
		if j >= 0 {
			load[j]++
		}
	}

	// Evict from surviving groups whose capacity shrank below their
	// load: the loosest-attached tasks leave first (cheapest to move),
	// ties to the lowest task id for determinism.
	for j := 0; j < n; j++ {
		if load[j] <= inst.NewCaps[j] {
			continue
		}
		var members []int32
		for t := 0; t < k; t++ {
			if plan.GroupOf[t] == int32(j) {
				members = append(members, int32(t))
			}
		}
		attach := func(t int32) int64 {
			var a int64
			adj, w := inst.Sym.Neighbors(int(t)), inst.Sym.Weights(int(t))
			for i, u := range adj {
				if plan.GroupOf[u] == int32(j) {
					a += w[i]
				}
			}
			return a
		}
		sort.Slice(members, func(a, b int) bool {
			aa, ab := attach(members[a]), attach(members[b])
			if aa != ab {
				return aa < ab
			}
			return members[a] < members[b]
		})
		for _, t := range members[:load[j]-inst.NewCaps[j]] {
			plan.GroupOf[t] = -1
		}
		load[j] = inst.NewCaps[j]
	}

	// Collect the stranded tasks, heaviest communicators first so the
	// traffic that matters most picks its node before the slots fill.
	var stranded []int32
	vol := make([]int64, k)
	for t := 0; t < k; t++ {
		for _, w := range inst.Sym.Weights(t) {
			vol[t] += w
		}
		if plan.GroupOf[t] < 0 {
			stranded = append(stranded, int32(t))
		}
	}
	sort.Slice(stranded, func(a, b int) bool {
		if vol[stranded[a]] != vol[stranded[b]] {
			return vol[stranded[a]] > vol[stranded[b]]
		}
		return stranded[a] < stranded[b]
	})

	// Greedy cheapest-feasible-node: for each stranded task, the node
	// minimizing the weighted hop distance to its already-placed
	// neighbours (stranded tasks placed earlier in this loop count).
	for _, t := range stranded {
		bestJ, bestCost := -1, int64(-1)
		for j := 0; j < n; j++ {
			if load[j] >= inst.NewCaps[j] {
				continue
			}
			var cost int64
			adj, w := inst.Sym.Neighbors(int(t)), inst.Sym.Weights(int(t))
			for i, u := range adj {
				if gj := plan.GroupOf[u]; gj >= 0 {
					cost += w[i] * int64(inst.Topo.HopDist(int(inst.NewNodes[j]), int(inst.NewNodes[gj])))
				}
			}
			if bestJ < 0 || cost < bestCost {
				bestJ, bestCost = j, cost
			}
		}
		if bestJ < 0 {
			return nil, fmt.Errorf("remap: no feasible node for task %d", t)
		}
		plan.GroupOf[t] = int32(bestJ)
		load[bestJ]++
	}
	plan.Stranded = stranded
	return plan, nil
}

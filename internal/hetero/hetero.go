// Package hetero is the heterogeneous-processor subsystem: per-task
// execution costs (task-graph vertex weights) crossed with per-node
// speed factors. It computes per-node finish times and the compute
// makespan they imply, provides a makespan-aware load-repair stage
// (greedy migration of the costliest tasks off the bottleneck node
// onto the cheapest feasible node, deterministic tie-breaks — the
// CPU/GPU greedy-migration scheme the heterogeneous-mapping
// literature converges on), and a hetero-aware greedy construction
// mapper (HET) that places the heaviest supertask groups onto the
// fastest nodes first, breaking ties toward communication locality.
//
// Everything here is exactly neutral on homogeneous inputs: with unit
// loads and unit speeds the finish time of a node is its task count,
// the repair stage finds no improving move beyond capacity balance,
// and the engine never invokes it unless asked — which is what keeps
// every pre-heterogeneity golden byte-identical.
package hetero

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/torus"
)

// speedOf reads a dense per-node speed vector, defaulting to unit
// speed for a nil vector or an unset (zero) entry — unallocated nodes
// hold 0 and are never hosts, but a defensive 1 keeps the math sane.
func speedOf(speeds []float64, node int32) float64 {
	if speeds == nil {
		return 1
	}
	if s := speeds[node]; s > 0 {
		return s
	}
	return 1
}

// FinishTimes returns the per-group compute finish times of a
// placement: group g's summed task load divided by the speed of the
// node hosting it. g is the FINE task graph (VW = per-task loads, nil
// meaning unit), group maps task→group, nodeOf group→node, and speeds
// is a dense per-node speed vector (nil = homogeneous). The returned
// slice is freshly allocated, one entry per group.
func FinishTimes(g *graph.Graph, group, nodeOf []int32, speeds []float64) []float64 {
	load := make([]int64, len(nodeOf))
	for t := 0; t < g.N(); t++ {
		load[group[t]] += g.VertexWeight(t)
	}
	finish := make([]float64, len(nodeOf))
	for gi := range finish {
		finish[gi] = float64(load[gi]) / speedOf(speeds, nodeOf[gi])
	}
	return finish
}

// Summary computes the makespan (max per-node finish time) and the
// load imbalance (max/mean of the finish times; 1 is perfectly
// balanced, 0 when nothing computes) of a placement. It reads the
// fine task graph, so it is exact after task-level migration and
// fine-level refinement, not just after grouping.
func Summary(g *graph.Graph, group, nodeOf []int32, speeds []float64) (makespan, imbalance float64) {
	finish := FinishTimes(g, group, nodeOf, speeds)
	var sum float64
	for _, f := range finish {
		sum += f
		if f > makespan {
			makespan = f
		}
	}
	if len(finish) > 0 && sum > 0 {
		imbalance = makespan * float64(len(finish)) / sum
	}
	return makespan, imbalance
}

// RepairLoad is the makespan-aware load-repair stage: while some node
// finishes strictly later than the rest, migrate that node's
// costliest task to the feasible node (a free processor slot) whose
// resulting finish time is lowest. Each accepted move strictly lowers
// the (makespan, nodes-at-makespan) pair, so the pass terminates; all
// choices have deterministic tie-breaks (bottleneck: lower group
// index; task: heavier load then lower task id; target: lower
// resulting finish, then faster node, then lower group index), so the
// result is byte-identical at any worker count.
//
// group is mutated in place; coarse.VW (per-group summed loads), when
// non-nil, is kept in sync so later stages see the migrated loads.
// capacity is the dense per-node processor-count vector (unallocated
// nodes hold 0). Returns the number of tasks migrated.
func RepairLoad(g *graph.Graph, coarse *graph.Graph, group, nodeOf []int32, speeds []float64, capacity []int64) int {
	nGroups := len(nodeOf)
	load := make([]int64, nGroups)
	count := make([]int64, nGroups)
	for t := 0; t < g.N(); t++ {
		load[group[t]] += g.VertexWeight(t)
		count[group[t]]++
	}
	finish := func(gi int32) float64 {
		return float64(load[gi]) / speedOf(speeds, nodeOf[gi])
	}

	// tasksByLoad(g) enumerates a group's tasks heaviest first (ties to
	// the lower task id). Rebuilt per bottleneck visit — the bottleneck
	// set shrinks monotonically, so this stays far off any hot path.
	tasksByLoad := func(gi int32) []int32 {
		var ts []int32
		for t := 0; t < g.N(); t++ {
			if group[t] == gi {
				ts = append(ts, int32(t))
			}
		}
		sort.Slice(ts, func(a, b int) bool {
			wa, wb := g.VertexWeight(int(ts[a])), g.VertexWeight(int(ts[b]))
			if wa != wb {
				return wa > wb
			}
			return ts[a] < ts[b]
		})
		return ts
	}

	moves := 0
	for {
		// Bottleneck: the latest-finishing group, ties to the lower
		// index.
		var worst int32
		worstFinish := finish(0)
		for gi := int32(1); gi < int32(nGroups); gi++ {
			if f := finish(gi); f > worstFinish {
				worst, worstFinish = gi, f
			}
		}
		if worstFinish == 0 {
			return moves // nothing computes anywhere
		}

		moved := false
		for _, t := range tasksByLoad(worst) {
			w := g.VertexWeight(int(t))
			if w <= 0 {
				break // zero-load tasks cannot lower any finish time
			}
			newSrc := float64(load[worst]-w) / speedOf(speeds, nodeOf[worst])
			if newSrc >= worstFinish {
				continue
			}
			// Cheapest feasible target: free slot, lowest resulting
			// finish; ties to the faster node, then the lower index.
			var best int32 = -1
			var bestFinish, bestSpeed float64
			for gi := int32(0); gi < int32(nGroups); gi++ {
				if gi == worst || count[gi] >= capacity[nodeOf[gi]] {
					continue
				}
				sp := speedOf(speeds, nodeOf[gi])
				nf := float64(load[gi]+w) / sp
				if best < 0 || nf < bestFinish || (nf == bestFinish && sp > bestSpeed) {
					best, bestFinish, bestSpeed = gi, nf, sp
				}
			}
			if best < 0 || bestFinish >= worstFinish {
				continue // this task cannot come off without a new bottleneck
			}
			group[t] = best
			load[worst] -= w
			load[best] += w
			count[worst]--
			count[best]++
			if coarse != nil && coarse.VW != nil {
				coarse.VW[worst] -= w
				coarse.VW[best] += w
			}
			moves++
			moved = true
			break
		}
		if !moved {
			return moves
		}
	}
}

// Map is the hetero-aware greedy construction mapper (HET): supertask
// groups in descending load order (ties to the lower index) each take
// the unassigned allocated node minimizing the group's compute finish
// time load/speed, breaking ties toward the node with the lowest
// weighted-hop cost to the group's already-placed neighbors, then
// toward allocation order. On a homogeneous allocation the finish
// times all tie and the mapper degrades to a pure communication-
// locality greedy — still a valid (if simple) construction.
func Map(coarse *graph.Graph, topo torus.Topology, a *alloc.Allocation) []int32 {
	n := coarse.N()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		wi, wj := coarse.VertexWeight(int(order[i])), coarse.VertexWeight(int(order[j]))
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})

	nodeOf := make([]int32, n)
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	taken := make([]bool, len(a.Nodes))
	for _, gi := range order {
		w := coarse.VertexWeight(int(gi))
		var best = -1
		var bestCost, bestAff float64
		for ai, node := range a.Nodes {
			if taken[ai] {
				continue
			}
			cost := float64(w) / a.Speed(ai)
			if best >= 0 && cost > bestCost {
				continue
			}
			// Affinity: weighted hops from this node to the group's
			// already-placed neighbors (lower is better).
			var aff float64
			for i := coarse.Xadj[gi]; i < coarse.Xadj[gi+1]; i++ {
				u := coarse.Adj[i]
				if nodeOf[u] < 0 {
					continue
				}
				aff += float64(coarse.EdgeWeight(int(i))) *
					float64(topo.HopDist(int(node), int(nodeOf[u])))
			}
			if best < 0 || cost < bestCost || (cost == bestCost && aff < bestAff) {
				best, bestCost, bestAff = ai, cost, aff
			}
		}
		nodeOf[gi] = a.Nodes[best]
		taken[best] = true
	}
	return nodeOf
}

package gen

import (
	"testing"

	"repro/internal/matrix"
)

func checkSquareValid(t *testing.T, m *matrix.CSR) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != m.Cols {
		t.Fatalf("not square: %dx%d", m.Rows, m.Cols)
	}
}

func isSymmetric(m *matrix.CSR) bool {
	tr := m.Transpose()
	if tr.NNZ() != m.NNZ() {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), tr.Row(i)
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

func hasFullDiagonal(m *matrix.CSR) bool {
	for i := 0; i < m.Rows; i++ {
		found := false
		for _, c := range m.Row(i) {
			if int(c) == i {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestDeBruijn(t *testing.T) {
	m := DeBruijn(4, 4) // 256 states
	checkSquareValid(t, m)
	if m.Rows != 256 {
		t.Fatalf("rows = %d, want 256", m.Rows)
	}
	if !hasFullDiagonal(m) {
		t.Fatal("missing diagonal")
	}
	// Every row must have at least alpha+1 entries (self + shifts).
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) < 5 {
			t.Fatalf("row %d has only %d entries", i, m.RowNNZ(i))
		}
	}
}

func TestRGGSymmetricAndConnected(t *testing.T) {
	m := RGG(2000, 1.8, 42)
	checkSquareValid(t, m)
	if !isSymmetric(m) {
		t.Fatal("RGG not symmetric")
	}
	if !hasFullDiagonal(m) {
		t.Fatal("RGG missing diagonal")
	}
	// Mean degree should be moderate, not absurd.
	avg := float64(m.NNZ()) / float64(m.Rows)
	if avg < 3 || avg > 60 {
		t.Fatalf("RGG mean row nnz = %f, suspicious", avg)
	}
}

func TestRGGDeterminism(t *testing.T) {
	a := RGG(500, 1.8, 7)
	b := RGG(500, 1.8, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("RGG not deterministic")
	}
}

func TestMesh2D(t *testing.T) {
	m := Mesh2D(10, 8, 5)
	checkSquareValid(t, m)
	if m.Rows != 80 {
		t.Fatalf("rows = %d, want 80", m.Rows)
	}
	if !isSymmetric(m) {
		t.Fatal("mesh not symmetric")
	}
	// Interior point has 5 entries with the 5-point stencil.
	interior := 3*10 + 4
	if m.RowNNZ(interior) != 5 {
		t.Fatalf("interior row nnz = %d, want 5", m.RowNNZ(interior))
	}
	// Corner has 3.
	if m.RowNNZ(0) != 3 {
		t.Fatalf("corner row nnz = %d, want 3", m.RowNNZ(0))
	}
	m9 := Mesh2D(10, 8, 9)
	if m9.RowNNZ(interior) != 9 {
		t.Fatalf("9-point interior nnz = %d, want 9", m9.RowNNZ(interior))
	}
}

func TestMesh3D(t *testing.T) {
	m := Mesh3D(5, 4, 3)
	checkSquareValid(t, m)
	if m.Rows != 60 {
		t.Fatalf("rows = %d, want 60", m.Rows)
	}
	if !isSymmetric(m) {
		t.Fatal("3d mesh not symmetric")
	}
	// Interior point (x=2,y=2,z=1) has 7 entries.
	id := (1*4+2)*5 + 2
	if m.RowNNZ(id) != 7 {
		t.Fatalf("interior nnz = %d, want 7", m.RowNNZ(id))
	}
}

func TestRMAT(t *testing.T) {
	m := RMAT(10, 8, 3)
	checkSquareValid(t, m)
	if m.Rows != 1024 {
		t.Fatalf("rows = %d, want 1024", m.Rows)
	}
	if !isSymmetric(m) {
		t.Fatal("RMAT not symmetric after symmetrization")
	}
	// Power-law-ish: max degree far above mean.
	avg := float64(m.NNZ()) / float64(m.Rows)
	if float64(m.MaxRowNNZ()) < 3*avg {
		t.Fatalf("RMAT max degree %d not skewed vs mean %f", m.MaxRowNNZ(), avg)
	}
}

func TestBandedStaysInBand(t *testing.T) {
	const band = 16
	m := Banded(1000, band, 4, 5)
	checkSquareValid(t, m)
	if !isSymmetric(m) {
		t.Fatal("banded not symmetric")
	}
	for i := 0; i < m.Rows; i++ {
		for _, c := range m.Row(i) {
			d := int(c) - i
			if d < 0 {
				d = -d
			}
			if d > band {
				t.Fatalf("entry (%d,%d) outside band %d", i, c, band)
			}
		}
	}
}

func TestCircuitHasHubs(t *testing.T) {
	m := Circuit(3000, 10, 9)
	checkSquareValid(t, m)
	if !isSymmetric(m) {
		t.Fatal("circuit not symmetric")
	}
	avg := float64(m.NNZ()) / float64(m.Rows)
	if float64(m.MaxRowNNZ()) < 5*avg {
		t.Fatalf("circuit lacks hub rows: max %d, mean %f", m.MaxRowNNZ(), avg)
	}
}

func TestWebIsDirected(t *testing.T) {
	m := Web(2000, 5, 4)
	checkSquareValid(t, m)
	if isSymmetric(m) {
		t.Fatal("web pattern should be asymmetric")
	}
	if !hasFullDiagonal(m) {
		t.Fatal("web missing diagonal")
	}
}

func TestKKTStructure(t *testing.T) {
	m := KKT(900, 100, 6)
	checkSquareValid(t, m)
	if !isSymmetric(m) {
		t.Fatal("KKT not symmetric")
	}
	if m.Rows != 30*30+100 {
		t.Fatalf("rows = %d, want 1000", m.Rows)
	}
}

func TestUniform(t *testing.T) {
	m := Uniform(1000, 4, 8)
	checkSquareValid(t, m)
	if !isSymmetric(m) {
		t.Fatal("uniform not symmetric")
	}
}

func TestDatasetRegistry(t *testing.T) {
	ds := Dataset()
	if len(ds) != 25 {
		t.Fatalf("dataset has %d matrices, want 25", len(ds))
	}
	classes := map[Class]int{}
	names := map[string]bool{}
	for _, s := range ds {
		if names[s.Name] {
			t.Fatalf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		classes[s.Class]++
	}
	if len(classes) != 9 {
		t.Fatalf("dataset has %d classes, want 9", len(classes))
	}
	if !names[Cagelike] || !names[RGGName] {
		t.Fatal("headline matrices missing from registry")
	}
}

func TestDatasetTinyGeneratesValid(t *testing.T) {
	for _, s := range Dataset() {
		m := s.Generate(Tiny)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if m.Rows < 256 {
			t.Fatalf("%s: tiny tier too small (%d rows)", s.Name, m.Rows)
		}
		if m.Rows > 20000 {
			t.Fatalf("%s: tiny tier too big (%d rows)", s.Name, m.Rows)
		}
	}
}

func TestDatasetTiersGrow(t *testing.T) {
	s, err := ByName("mesh2d-a")
	if err != nil {
		t.Fatal(err)
	}
	tiny, small := s.Generate(Tiny), s.Generate(Small)
	if tiny.Rows >= small.Rows {
		t.Fatalf("tiers do not grow: tiny %d, small %d", tiny.Rows, small.Rows)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-matrix"); err == nil {
		t.Fatal("expected error")
	}
	if len(Names()) != 25 {
		t.Fatalf("Names() = %d entries", len(Names()))
	}
}

package gen

import (
	"fmt"

	"repro/internal/matrix"
)

// Class identifies one of the nine matrix classes of the dataset
// (§IV: "25 matrices ... belonging to 9 different classes").
type Class string

// The nine classes.
const (
	ClassCage    Class = "dna-electrophoresis" // cage15 analogue
	ClassRGG     Class = "random-geometric"    // rgg_n_2_23_s0 analogue
	ClassMesh2D  Class = "2d-mesh"
	ClassMesh3D  Class = "3d-mesh"
	ClassSocial  Class = "social-network"
	ClassBanded  Class = "structural"
	ClassCircuit Class = "circuit"
	ClassWeb     Class = "web-link"
	ClassOpt     Class = "optimization"
)

// Spec names one dataset matrix and how to generate it. Sizes are
// expressed at three tiers so tests, default runs and paper-scale
// runs can share the registry.
type Spec struct {
	Name  string
	Class Class
	gen   func(tier Tier) *matrix.CSR
}

// Tier selects the dataset scale.
type Tier int

// Dataset scales.
const (
	// Tiny is for unit tests and quick benchmarks (1-5k rows).
	Tiny Tier = iota
	// Small is the default experiment scale (15-70k rows); the full
	// pipeline over all 25 matrices runs in minutes.
	Small
	// Large approaches the paper's scale where feasible (up to ~0.3M
	// rows) and is selected by the -paper flag of the cmds.
	Large
)

func pick[T any](t Tier, tiny, small, large T) T {
	switch t {
	case Tiny:
		return tiny
	case Small:
		return small
	default:
		return large
	}
}

// Generate builds the matrix at the given tier.
func (s Spec) Generate(t Tier) *matrix.CSR { return s.gen(t) }

// Cagelike is the name of the cage15 stand-in, used by the
// communication-only and SpMV experiments (Figures 4a, 5, Table I).
const Cagelike = "cagelike"

// RGGName is the name of the rgg_n_2_23_s0 stand-in (Figure 4b, Table I).
const RGGName = "rgg"

// Dataset returns the 25-matrix registry. Generation is deterministic:
// every Spec embeds its own seed.
func Dataset() []Spec {
	specs := []Spec{
		// DNA electrophoresis (cage family): 3 sizes.
		{Cagelike, ClassCage, func(t Tier) *matrix.CSR { return DeBruijn(4, pick(t, 6, 8, 9)) }},
		{"cagelike-mid", ClassCage, func(t Tier) *matrix.CSR { return DeBruijn(4, pick(t, 5, 7, 8)) }},
		{"cagelike-small", ClassCage, func(t Tier) *matrix.CSR { return DeBruijn(2, pick(t, 11, 14, 16)) }},
		// Random geometric: 3 sizes.
		{RGGName, ClassRGG, func(t Tier) *matrix.CSR { return RGG(pick(t, 4096, 131072, 262144), 1.6, 101) }},
		{"rgg-mid", ClassRGG, func(t Tier) *matrix.CSR { return RGG(pick(t, 2048, 65536, 131072), 1.6, 102) }},
		{"rgg-small", ClassRGG, func(t Tier) *matrix.CSR { return RGG(pick(t, 1024, 32768, 65536), 1.8, 103) }},
		// 2D meshes.
		{"mesh2d-a", ClassMesh2D, func(t Tier) *matrix.CSR { return Mesh2D(pick(t, 48, 224, 400), pick(t, 48, 224, 400), 5) }},
		{"mesh2d-b", ClassMesh2D, func(t Tier) *matrix.CSR { return Mesh2D(pick(t, 64, 256, 512), pick(t, 32, 128, 256), 9) }},
		{"mesh2d-c", ClassMesh2D, func(t Tier) *matrix.CSR { return Mesh2D(pick(t, 96, 512, 1024), pick(t, 24, 64, 128), 5) }},
		// 3D meshes.
		{"mesh3d-a", ClassMesh3D, func(t Tier) *matrix.CSR { return Mesh3D(pick(t, 14, 32, 48), pick(t, 14, 32, 48), pick(t, 14, 32, 48)) }},
		{"mesh3d-b", ClassMesh3D, func(t Tier) *matrix.CSR { return Mesh3D(pick(t, 20, 64, 96), pick(t, 12, 24, 40), pick(t, 12, 24, 40)) }},
		{"mesh3d-c", ClassMesh3D, func(t Tier) *matrix.CSR { return Mesh3D(pick(t, 32, 128, 192), pick(t, 8, 16, 24), pick(t, 8, 16, 24)) }},
		// Social networks (R-MAT).
		{"social-a", ClassSocial, func(t Tier) *matrix.CSR { return RMAT(pick(t, 11, 15, 17), 8, 201) }},
		{"social-b", ClassSocial, func(t Tier) *matrix.CSR { return RMAT(pick(t, 10, 14, 16), 12, 202) }},
		{"social-c", ClassSocial, func(t Tier) *matrix.CSR { return RMAT(pick(t, 12, 16, 18), 6, 203) }},
		// Structural (banded).
		{"struct-a", ClassBanded, func(t Tier) *matrix.CSR { return Banded(pick(t, 4000, 60000, 200000), 24, 6, 301) }},
		{"struct-b", ClassBanded, func(t Tier) *matrix.CSR { return Banded(pick(t, 3000, 40000, 120000), 64, 8, 302) }},
		{"struct-c", ClassBanded, func(t Tier) *matrix.CSR { return Banded(pick(t, 5000, 80000, 250000), 12, 4, 303) }},
		// Circuits.
		{"circuit-a", ClassCircuit, func(t Tier) *matrix.CSR { return Circuit(pick(t, 4000, 50000, 150000), 20, 401) }},
		{"circuit-b", ClassCircuit, func(t Tier) *matrix.CSR { return Circuit(pick(t, 3000, 30000, 100000), 10, 402) }},
		// Web link graphs.
		{"web-a", ClassWeb, func(t Tier) *matrix.CSR { return Web(pick(t, 4000, 50000, 150000), 6, 501) }},
		{"web-b", ClassWeb, func(t Tier) *matrix.CSR { return Web(pick(t, 3000, 40000, 120000), 9, 502) }},
		// Optimization (KKT).
		{"opt-a", ClassOpt, func(t Tier) *matrix.CSR { return KKT(pick(t, 3600, 40000, 120000), pick(t, 500, 6000, 20000), 601) }},
		{"opt-b", ClassOpt, func(t Tier) *matrix.CSR { return KKT(pick(t, 2500, 25000, 90000), pick(t, 400, 5000, 15000), 602) }},
		// Circuit-like uniform random sparse.
		{"circuit-c", ClassCircuit, func(t Tier) *matrix.CSR { return Uniform(pick(t, 4000, 50000, 150000), 5, 701) }},
	}
	return specs
}

// ByName returns the dataset spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Dataset() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gen: unknown dataset matrix %q", name)
}

// Names returns all dataset matrix names in registry order.
func Names() []string {
	ds := Dataset()
	out := make([]string, len(ds))
	for i, s := range ds {
		out[i] = s.Name
	}
	return out
}

// Package gen generates the synthetic workload matrices that stand in
// for the paper's 25 University of Florida collection matrices. The
// paper draws from 9 matrix classes; each generator below reproduces
// the structural character of one class, deterministically from a
// seed, so the whole evaluation is self-contained and offline.
//
// The two matrices the paper singles out get faithful structural
// analogues: cage15 (DNA electrophoresis; cage matrices are de Bruijn
// graph based) maps to the de Bruijn generator, and rgg_n_2_23_s0
// maps to the random geometric graph generator.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// DeBruijn returns the adjacency pattern of a de Bruijn-like chain
// over an alphabet of size alpha with word length k (n = alpha^k
// rows): each state connects to its left- and right-shift successors
// plus the diagonal, mimicking the cage DNA-electrophoresis matrices.
func DeBruijn(alpha, k int) *matrix.CSR {
	n := 1
	for i := 0; i < k; i++ {
		n *= alpha
	}
	high := n / alpha
	var ri, ci []int32
	for u := 0; u < n; u++ {
		ri = append(ri, int32(u))
		ci = append(ci, int32(u))
		base := (u * alpha) % n
		for s := 0; s < alpha; s++ {
			ri = append(ri, int32(u))
			ci = append(ci, int32(base+s))
		}
		rbase := u / alpha
		for s := 0; s < alpha; s++ {
			ri = append(ri, int32(u))
			ci = append(ci, int32(rbase+s*high))
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// RGG returns a random geometric graph on n points in the unit
// square: points closer than radius are connected. radiusFactor
// scales the connectivity threshold sqrt(ln n / (pi n)); 2.0 gives an
// almost surely connected graph with mean degree ~4 ln n. The pattern
// is symmetric with a full diagonal.
func RGG(n int, radiusFactor float64, seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	r := radiusFactor * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
	// Grid bucketing with cell size r: neighbours lie in the 3x3
	// surrounding cells.
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]int32)
	cellOf := func(i int) [2]int {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		bucket[c] = append(bucket[c], int32(i))
	}
	r2 := r * r
	var ri, ci []int32
	for i := 0; i < n; i++ {
		ri = append(ri, int32(i))
		ci = append(ci, int32(i))
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if int(j) <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						ri = append(ri, int32(i), j)
						ci = append(ci, j, int32(i))
					}
				}
			}
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// Mesh2D returns the 5-point (stencil=5) or 9-point (stencil=9)
// Laplacian pattern of an nx×ny structured grid.
func Mesh2D(nx, ny, stencil int) *matrix.CSR {
	n := nx * ny
	id := func(x, y int) int32 { return int32(y*nx + x) }
	var ri, ci []int32
	add := func(a, b int32) { ri = append(ri, a); ci = append(ci, b) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := id(x, y)
			add(v, v)
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				xx, yy := x+d[0], y+d[1]
				if xx >= 0 && xx < nx && yy >= 0 && yy < ny {
					add(v, id(xx, yy))
				}
			}
			if stencil == 9 {
				for _, d := range [][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
					xx, yy := x+d[0], y+d[1]
					if xx >= 0 && xx < nx && yy >= 0 && yy < ny {
						add(v, id(xx, yy))
					}
				}
			}
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// Mesh3D returns the 7-point Laplacian pattern of an nx×ny×nz grid.
func Mesh3D(nx, ny, nz int) *matrix.CSR {
	n := nx * ny * nz
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	var ri, ci []int32
	add := func(a, b int32) { ri = append(ri, a); ci = append(ci, b) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				add(v, v)
				for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
					xx, yy, zz := x+d[0], y+d[1], z+d[2]
					if xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz {
						add(v, id(xx, yy, zz))
					}
				}
			}
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// RMAT returns a symmetrized R-MAT (Kronecker) graph pattern with 2^scale
// vertices and roughly edgeFactor·2^scale undirected edges, using the
// classic (0.57, 0.19, 0.19, 0.05) parameters of social-network-like
// graphs.
func RMAT(scale, edgeFactor int, seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << uint(scale)
	m := edgeFactor * n
	const a, b, c = 0.57, 0.19, 0.19
	var ri, ci []int32
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			p := rng.Float64()
			switch {
			case p < a: // top-left
			case p < a+b:
				v += bit
			case p < a+b+c:
				u += bit
			default:
				u += bit
				v += bit
			}
		}
		if u == v {
			continue
		}
		ri = append(ri, int32(u), int32(v))
		ci = append(ci, int32(v), int32(u))
	}
	for i := 0; i < n; i++ {
		ri = append(ri, int32(i))
		ci = append(ci, int32(i))
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// Banded returns a structural-mechanics-like banded pattern: full
// diagonal plus fill drawn within the given half bandwidth at the
// given per-row density, symmetrized.
func Banded(n, band int, perRow int, seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed))
	var ri, ci []int32
	for i := 0; i < n; i++ {
		ri = append(ri, int32(i))
		ci = append(ci, int32(i))
		for k := 0; k < perRow; k++ {
			off := 1 + rng.Intn(band)
			j := i + off
			if j < n {
				ri = append(ri, int32(i), int32(j))
				ci = append(ci, int32(j), int32(i))
			}
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// Circuit returns a circuit-simulation-like pattern: a sparse
// near-banded core plus a few high-degree hub rows/columns (supply
// rails), symmetric.
func Circuit(n, hubs int, seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed))
	var ri, ci []int32
	add := func(a, b int32) {
		ri = append(ri, a, b)
		ci = append(ci, b, a)
	}
	for i := 0; i < n; i++ {
		ri = append(ri, int32(i))
		ci = append(ci, int32(i))
		deg := 1 + rng.Intn(3)
		for k := 0; k < deg; k++ {
			j := i + 1 + rng.Intn(16)
			if j < n {
				add(int32(i), int32(j))
			}
		}
	}
	for h := 0; h < hubs; h++ {
		hub := rng.Intn(n)
		fan := n / (hubs * 4)
		for k := 0; k < fan; k++ {
			add(int32(hub), int32(rng.Intn(n)))
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// Web returns a directed preferential-attachment pattern with the
// given out-degree, modelling web/link matrices (asymmetric).
func Web(n, outDeg int, seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed))
	var ri, ci []int32
	targets := make([]int32, 0, n*outDeg)
	for i := 0; i < n; i++ {
		ri = append(ri, int32(i))
		ci = append(ci, int32(i))
		for k := 0; k < outDeg; k++ {
			var t int32
			if i > 0 && len(targets) > 0 && rng.Float64() < 0.7 {
				t = targets[rng.Intn(len(targets))] // preferential
			} else if i > 0 {
				t = int32(rng.Intn(i))
			} else {
				continue
			}
			ri = append(ri, int32(i))
			ci = append(ci, t)
			targets = append(targets, t, int32(i))
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// KKT returns an optimization-style saddle-point pattern
// [[A, B^T], [B, 0]] where A is a 2D mesh Laplacian with meshN total
// vertices and B has consRows constraint rows touching a few mesh
// variables each.
func KKT(meshN, consRows int, seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed))
	side := int(math.Sqrt(float64(meshN)))
	if side < 2 {
		side = 2
	}
	a := Mesh2D(side, side, 5)
	na := a.Rows
	n := na + consRows
	var ri, ci []int32
	for r := 0; r < na; r++ {
		for _, c := range a.Row(r) {
			ri = append(ri, int32(r))
			ci = append(ci, c)
		}
	}
	for r := 0; r < consRows; r++ {
		row := int32(na + r)
		ri = append(ri, row)
		ci = append(ci, row)
		k := 2 + rng.Intn(4)
		for j := 0; j < k; j++ {
			v := int32(rng.Intn(na))
			ri = append(ri, row, v)
			ci = append(ci, v, row)
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// Uniform returns a uniformly random symmetric pattern with about
// perRow off-diagonals per row, a "generic sparse" class.
func Uniform(n, perRow int, seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed))
	var ri, ci []int32
	for i := 0; i < n; i++ {
		ri = append(ri, int32(i))
		ci = append(ci, int32(i))
		for k := 0; k < perRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			ri = append(ri, int32(i), int32(j))
			ci = append(ci, int32(j), int32(i))
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

// Package trace records the stage-level timeline of one solve: named
// spans with wall time, the worker count they ran at, and per-stage
// counters (coarsening levels, bisection forks, refinement passes and
// swaps, candidates scored, route pairs reused). It is the
// measurement substrate behind Solve{Trace: true}, cmd/mapper -trace
// and mapd's per-stage latency histograms.
//
// The whole API is nil-safe and zero-overhead when disabled: a nil
// *Trace returns a nil *Span from Start, and every method on a nil
// receiver is an immediate no-op, so the pipeline threads one pointer
// through core.Exec and pays nothing unless a request asked to be
// traced. Tracing never influences an algorithmic decision — a traced
// and an untraced solve produce byte-identical mappings.
//
// Concurrency: spans are started and ended by the solve's serial
// orchestration (the pipeline stages run one after another), but
// counters may be added from the parallel workers inside a stage
// (bisection subtrees, scoring fan-outs); all mutation is guarded by
// one mutex, which the stage-boundary call sites keep off every hot
// inner loop — internal/ds and internal/graph must never import this
// package (enforced by `make check`).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is the recorded timeline of one solve.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	spans []*Span
	cur   *Span // innermost un-ended span; Add attaches counters here
}

// Span is one named stage of the timeline. Fields are written through
// the owning Trace's mutex and read via Stages snapshots.
type Span struct {
	tr       *Trace
	name     string
	workers  int
	start    time.Time
	dur      time.Duration
	ended    bool
	counters map[string]int64
}

// New returns an empty trace whose clock starts now.
func New() *Trace {
	return &Trace{start: time.Now()}
}

// Start opens a named span and makes it the attachment target for
// Add/Max until End. Nil-safe: a nil trace returns a nil span.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, name: name, start: time.Now()}
	t.spans = append(t.spans, s)
	t.cur = s
	return s
}

// End closes the span, fixing its duration. Nil-safe and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if s.tr.cur == s {
		s.tr.cur = nil
	}
}

// SetWorkers records the worker bound the span's stage ran at.
func (s *Span) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.workers = n
	s.tr.mu.Unlock()
}

// Add accumulates a named counter on the span.
func (s *Span) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.addLocked(name, delta)
	s.tr.mu.Unlock()
}

func (s *Span) addLocked(name string, delta int64) {
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[name] += delta
}

// Add accumulates a named counter on the currently open span — how
// the pipeline stages report totals (refinement swaps, candidates
// scored) without holding span handles: whichever stage is open owns
// the count. A trace with no open span drops the count.
func (t *Trace) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.cur != nil {
		t.cur.addLocked(name, delta)
	}
	t.mu.Unlock()
}

// Max raises a named counter on the currently open span to v if v is
// larger — the merge for depth-style counters reported from parallel
// subtrees.
func (t *Trace) Max(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.cur; s != nil {
		if s.counters == nil {
			s.counters = make(map[string]int64, 4)
		}
		if cur, ok := s.counters[name]; !ok || v > cur {
			s.counters[name] = v
		}
	}
	t.mu.Unlock()
}

// Stage is the serializable form of one span: start offset and
// duration in milliseconds, the worker bound, and the counters.
type Stage struct {
	Name     string           `json:"name"`
	StartMS  float64          `json:"start_ms"`
	DurMS    float64          `json:"dur_ms"`
	Workers  int              `json:"workers,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Stages snapshots the recorded spans in start order. Un-ended spans
// report their duration as of the call. Nil-safe: a nil trace has no
// stages.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, len(t.spans))
	for i, s := range t.spans {
		d := s.dur
		if !s.ended {
			d = time.Since(s.start)
		}
		st := Stage{
			Name:    s.name,
			StartMS: float64(s.start.Sub(t.start)) / float64(time.Millisecond),
			DurMS:   float64(d) / float64(time.Millisecond),
			Workers: s.workers,
		}
		if len(s.counters) > 0 {
			st.Counters = make(map[string]int64, len(s.counters))
			for k, v := range s.counters {
				st.Counters[k] = v
			}
		}
		out[i] = st
	}
	return out
}

// TotalMS is the wall time from the trace's start to the end of its
// last ended span (or now, with spans still open).
func (t *Trace) TotalMS() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var end time.Time
	for _, s := range t.spans {
		se := s.start.Add(s.dur)
		if !s.ended {
			se = time.Now()
		}
		if se.After(end) {
			end = se
		}
	}
	if end.IsZero() {
		return 0
	}
	return float64(end.Sub(t.start)) / float64(time.Millisecond)
}

// Format renders the timeline as an aligned text table — the shape
// cmd/mapper -trace prints:
//
//	group        3.1ms  41.2%  workers=8  bisections=63
//	map          2.2ms  29.3%  workers=8  wh_passes=4 wh_swaps=118
func Format(stages []Stage, totalMS float64) string {
	var b strings.Builder
	width := 4
	for _, st := range stages {
		if len(st.Name) > width {
			width = len(st.Name)
		}
	}
	for _, st := range stages {
		pct := 0.0
		if totalMS > 0 {
			pct = 100 * st.DurMS / totalMS
		}
		fmt.Fprintf(&b, "  %-*s %9.3fms %5.1f%%", width, st.Name, st.DurMS, pct)
		if st.Workers > 0 {
			fmt.Fprintf(&b, "  workers=%d", st.Workers)
		}
		if len(st.Counters) > 0 {
			keys := make([]string, 0, len(st.Counters))
			for k := range st.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%d", k, st.Counters[k])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("group")
	if sp != nil {
		t.Fatalf("nil trace returned non-nil span")
	}
	sp.SetWorkers(8)
	sp.Add("x", 1)
	sp.End()
	tr.Add("y", 2)
	tr.Max("z", 3)
	if got := tr.Stages(); got != nil {
		t.Fatalf("nil trace has stages: %v", got)
	}
	if got := tr.TotalMS(); got != 0 {
		t.Fatalf("nil trace TotalMS = %v", got)
	}
}

func TestSpanOrderAndCounters(t *testing.T) {
	tr := New()
	a := tr.Start("group")
	tr.Add("bisections", 3)
	tr.Max("depth", 2)
	tr.Max("depth", 5)
	tr.Max("depth", 4)
	a.SetWorkers(4)
	a.End()
	b := tr.Start("map")
	b.Add("swaps", 7)
	b.Add("swaps", 2)
	b.End()

	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	if stages[0].Name != "group" || stages[1].Name != "map" {
		t.Fatalf("stage order %q, %q", stages[0].Name, stages[1].Name)
	}
	if stages[0].Workers != 4 {
		t.Fatalf("workers = %d, want 4", stages[0].Workers)
	}
	if stages[0].Counters["bisections"] != 3 || stages[0].Counters["depth"] != 5 {
		t.Fatalf("group counters = %v", stages[0].Counters)
	}
	if stages[1].Counters["swaps"] != 9 {
		t.Fatalf("map counters = %v", stages[1].Counters)
	}
	if stages[1].StartMS < stages[0].StartMS {
		t.Fatalf("stage starts out of order: %v then %v", stages[0].StartMS, stages[1].StartMS)
	}
}

func TestAddOutsideSpanIsDropped(t *testing.T) {
	tr := New()
	tr.Add("orphan", 1) // no open span: dropped, not panicking
	sp := tr.Start("s")
	sp.End()
	tr.Add("late", 1) // span already ended: dropped
	stages := tr.Stages()
	if len(stages) != 1 || len(stages[0].Counters) != 0 {
		t.Fatalf("orphan counters leaked: %+v", stages)
	}
}

func TestConcurrentAdds(t *testing.T) {
	tr := New()
	sp := tr.Start("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Add("n", 1)
				tr.Max("m", int64(j))
			}
		}()
	}
	wg.Wait()
	sp.End()
	st := tr.Stages()[0]
	if st.Counters["n"] != 8000 {
		t.Fatalf("n = %d, want 8000", st.Counters["n"])
	}
	if st.Counters["m"] != 999 {
		t.Fatalf("m = %d, want 999", st.Counters["m"])
	}
}

func TestDurationsCoverWork(t *testing.T) {
	tr := New()
	sp := tr.Start("sleep")
	time.Sleep(5 * time.Millisecond)
	sp.End()
	st := tr.Stages()[0]
	if st.DurMS < 4 {
		t.Fatalf("span dur %.3fms, want >= ~5ms", st.DurMS)
	}
	if tot := tr.TotalMS(); tot < st.DurMS {
		t.Fatalf("TotalMS %.3f below span dur %.3f", tot, st.DurMS)
	}
}

func TestFormat(t *testing.T) {
	tr := New()
	sp := tr.Start("group")
	tr.Add("bisections", 3)
	sp.SetWorkers(2)
	sp.End()
	out := Format(tr.Stages(), tr.TotalMS())
	if !strings.Contains(out, "group") || !strings.Contains(out, "workers=2") || !strings.Contains(out, "bisections=3") {
		t.Fatalf("format output missing fields:\n%s", out)
	}
}

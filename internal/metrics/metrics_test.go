package metrics

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/torus"
)

// twoTaskGraph returns a directed task graph with one edge 0->1 of
// the given volume.
func twoTaskGraph(vol int64) *graph.Graph {
	return graph.FromEdges(2, []int32{0}, []int32{1}, []int64{vol}, nil)
}

func TestComputeSingleMessage(t *testing.T) {
	topo := torus.New([]int{4, 4, 4}, []float64{2, 2, 2})
	tg := twoTaskGraph(10)
	// Place tasks three X-hops apart... on a 4-torus max X distance is 2.
	a := topo.NodeAt([]int{0, 0, 0})
	b := topo.NodeAt([]int{2, 0, 0})
	pl := &Placement{NodeOf: []int32{int32(a), int32(b)}}
	m := Compute(tg, topo, pl)
	if m.TH != 2 || m.WH != 20 {
		t.Fatalf("TH=%d WH=%d, want 2,20", m.TH, m.WH)
	}
	if m.MMC != 1 {
		t.Fatalf("MMC = %d, want 1", m.MMC)
	}
	if m.MC != 10.0/2.0 {
		t.Fatalf("MC = %f, want 5", m.MC)
	}
	if m.UsedLinks != 2 {
		t.Fatalf("UsedLinks = %d, want 2", m.UsedLinks)
	}
	if m.AMC != 1 || m.AC != 5 {
		t.Fatalf("AMC=%f AC=%f, want 1,5", m.AMC, m.AC)
	}
	if m.ICV != 10 || m.ICM != 1 || m.MNRV != 10 || m.MNRM != 1 {
		t.Fatalf("ICV=%d ICM=%d MNRV=%d MNRM=%d", m.ICV, m.ICM, m.MNRV, m.MNRM)
	}
}

func TestComputeIntraNodeIsFree(t *testing.T) {
	topo := torus.New([]int{4, 4}, []float64{1, 1})
	tg := twoTaskGraph(100)
	pl := &Placement{NodeOf: []int32{3, 3}} // same node
	m := Compute(tg, topo, pl)
	if m.TH != 0 || m.WH != 0 || m.ICV != 0 || m.ICM != 0 || m.UsedLinks != 0 {
		t.Fatalf("intra-node traffic leaked into metrics: %+v", m)
	}
}

func TestComputeGroupComposition(t *testing.T) {
	topo := torus.New([]int{8}, []float64{1})
	// Four tasks in two groups; edges 0->2 (vol 3) and 1->3 (vol 5).
	tg := graph.FromEdges(4, []int32{0, 1}, []int32{2, 3}, []int64{3, 5}, nil)
	pl := &Placement{
		GroupOf: []int32{0, 0, 1, 1},
		NodeOf:  []int32{0, 2},
	}
	m := Compute(tg, topo, pl)
	// Both messages travel 2 hops: TH=4, WH=2*3+2*5=16.
	if m.TH != 4 || m.WH != 16 {
		t.Fatalf("TH=%d WH=%d, want 4,16", m.TH, m.WH)
	}
	// Messages share the same 2-link route: MMC=2.
	if m.MMC != 2 {
		t.Fatalf("MMC = %d, want 2", m.MMC)
	}
	// Node 2 receives both: MNRV=8, MNRM=2.
	if m.MNRV != 8 || m.MNRM != 2 {
		t.Fatalf("MNRV=%d MNRM=%d", m.MNRV, m.MNRM)
	}
}

func TestCongestionSumEqualsTH(t *testing.T) {
	// The identity the paper states: TH = sum of link congestions.
	topo := torus.New([]int{5, 5}, []float64{1, 1})
	var us, vs []int32
	var ws []int64
	for i := 0; i < 10; i++ {
		us = append(us, int32(i))
		vs = append(vs, int32((i+3)%20))
		ws = append(ws, int64(i+1))
	}
	tg := graph.FromEdges(20, us, vs, ws, nil)
	nodeOf := make([]int32, 20)
	for i := range nodeOf {
		nodeOf[i] = int32(i % topo.Nodes())
	}
	pl := &Placement{NodeOf: nodeOf}
	m := Compute(tg, topo, pl)
	if m.UsedLinks == 0 {
		t.Fatal("no links used")
	}
	// AMC * UsedLinks = total messages over links = TH.
	sum := m.AMC * float64(m.UsedLinks)
	if diff := sum - float64(m.TH); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum of congestions %f != TH %d", sum, m.TH)
	}
}

func TestWeightedHopsAgreesWithCompute(t *testing.T) {
	topo := torus.New([]int{4, 4}, []float64{1, 1})
	g := graph.RandomConnected(10, 20, 7, 3)
	nodeOf := make([]int32, 10)
	for i := range nodeOf {
		nodeOf[i] = int32((i * 3) % topo.Nodes())
	}
	pl := &Placement{NodeOf: nodeOf}
	m := Compute(g, topo, pl)
	if wh := WeightedHops(g, topo, nodeOf); wh != m.WH {
		t.Fatalf("WeightedHops %d != Compute.WH %d", wh, m.WH)
	}
	if th := TotalHops(g, topo, nodeOf); th != m.TH {
		t.Fatalf("TotalHops %d != Compute.TH %d", th, m.TH)
	}
}

func TestHeterogeneousBandwidthAffectsMC(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	tg := twoTaskGraph(torus.GB)
	a := topo.NodeAt([]int{0, 0, 0})
	// Y-neighbour: low-bandwidth link.
	bY := topo.NodeAt([]int{0, 1, 0})
	mY := Compute(tg, topo, &Placement{NodeOf: []int32{int32(a), int32(bY)}})
	// X-neighbour: high-bandwidth link.
	bX := topo.NodeAt([]int{1, 0, 0})
	mX := Compute(tg, topo, &Placement{NodeOf: []int32{int32(a), int32(bX)}})
	if mY.MC <= mX.MC {
		t.Fatalf("Y-link MC %f should exceed X-link MC %f", mY.MC, mX.MC)
	}
}

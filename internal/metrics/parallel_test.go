package metrics

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/torus"
)

// Parallel-evaluation tests: ComputePar must equal Compute exactly —
// every integer count and every derived float — at any worker count,
// above and below the parallel gate.

// parallelFixture builds a random placement big enough to clear the
// parallel gate: 2048 tasks on a 6x6x6 torus.
func parallelFixture() (*graph.Graph, *torus.Torus, *Placement) {
	topo := torus.NewHopper3D(6, 6, 6)
	tg := graph.RandomConnected(2048, 6*2048, 100, 3)
	nodeOf := make([]int32, tg.N())
	// Deterministic scatter over a subset of nodes; some self-loops
	// (intra-node edges) by construction.
	for v := range nodeOf {
		nodeOf[v] = int32((v*31 + 7) % topo.Nodes())
	}
	return tg, topo, &Placement{NodeOf: nodeOf}
}

func TestComputeParMatchesSerial(t *testing.T) {
	tg, topo, pl := parallelFixture()
	want := Compute(tg, topo, pl)
	if want.WH <= 0 || want.UsedLinks == 0 {
		t.Fatalf("degenerate fixture: %+v", want)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		grp := parallel.NewGroup(context.Background(), workers)
		got := ComputePar(tg, topo, pl, grp)
		if got != want {
			t.Fatalf("workers=%d diverged:\n serial   %+v\n parallel %+v", workers, got, want)
		}
	}
	// A nil group is the serial path.
	if got := ComputePar(tg, topo, pl, nil); got != want {
		t.Fatalf("nil group diverged: %+v", got)
	}
}

// TestComputeParSmallGraphGate: graphs under the parallel gate take
// the serial path and still answer identically.
func TestComputeParSmallGraphGate(t *testing.T) {
	topo := torus.New([]int{4, 4, 4}, []float64{2, 2, 2})
	tg := twoTaskGraph(10)
	pl := &Placement{NodeOf: []int32{int32(topo.NodeAt([]int{0, 0, 0})), int32(topo.NodeAt([]int{2, 0, 0}))}}
	want := Compute(tg, topo, pl)
	grp := parallel.NewGroup(context.Background(), 8)
	if got := ComputePar(tg, topo, pl, grp); got != want {
		t.Fatalf("gated path diverged: %+v vs %+v", got, want)
	}
}

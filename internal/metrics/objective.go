package metrics

// Metric field access by canonical name — the resolution layer behind
// the public Objective type: objectives are declared over the wire
// with the same lowercase names the JSON metric payload uses, and
// scored here against the computed MapMetrics.

// metricNames lists every scoreable MapMetrics field in wire order.
// "sim_seconds" is scoreable too but lives on the solve result, not
// on MapMetrics; the public Objective layer resolves it.
var metricNames = []string{
	"th", "wh", "mmc", "mc", "amc", "ac",
	"icv", "icm", "mnrv", "mnrm", "used_links",
	"makespan", "load_imbalance",
}

// MetricNames returns the canonical names MetricValue resolves, in
// wire order.
func MetricNames() []string {
	return append([]string(nil), metricNames...)
}

// MetricValue returns the named metric of m as a float64. Names are
// the canonical lowercase wire names ("wh", "mc", ...); unknown names
// report ok=false.
func MetricValue(m MapMetrics, name string) (v float64, ok bool) {
	switch name {
	case "th":
		return float64(m.TH), true
	case "wh":
		return float64(m.WH), true
	case "mmc":
		return float64(m.MMC), true
	case "mc":
		return m.MC, true
	case "amc":
		return m.AMC, true
	case "ac":
		return m.AC, true
	case "icv":
		return float64(m.ICV), true
	case "icm":
		return float64(m.ICM), true
	case "mnrv":
		return float64(m.MNRV), true
	case "mnrm":
		return float64(m.MNRM), true
	case "used_links":
		return float64(m.UsedLinks), true
	case "makespan":
		return m.Makespan, true
	case "load_imbalance":
		return m.LoadImbalance, true
	}
	return 0, false
}

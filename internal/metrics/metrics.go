// Package metrics computes the topology-aware mapping metrics of the
// paper's §II: total hops TH, weighted hops WH, maximum message
// congestion MMC, maximum (volume) congestion MC, and the averaged
// variants AMC and AC, plus the extra regression covariates of §IV-E
// (ICV, ICM, MNRV, MNRM). All metrics are evaluated on the fine task
// graph through the task→group→node composition, with messages routed
// on the topology's static shortest paths.
package metrics

import (
	"repro/internal/graph"
	"repro/internal/torus"
)

// MapMetrics holds every mapping metric for one mapping.
type MapMetrics struct {
	TH  int64   // total hop count: sum of dilations over task edges
	WH  int64   // weighted hops: dilation * volume
	MMC int64   // max messages crossing any link
	MC  float64 // max volume congestion: max over links of volume/bw
	AMC float64 // average message congestion over used links
	AC  float64 // average volume congestion over used links

	ICV  int64 // inter-node communication volume
	ICM  int64 // inter-node message count
	MNRV int64 // max volume received by a node
	MNRM int64 // max messages received by a node

	UsedLinks int // |E_tm|: links carrying at least one message
}

// Placement maps fine tasks to nodes: node(t) = NodeOf[GroupOf[t]]
// when GroupOf is non-nil, else NodeOf[t] directly.
type Placement struct {
	GroupOf []int32 // task -> group (nil for identity)
	NodeOf  []int32 // group -> network node
}

// Node returns the network node hosting task t.
func (p *Placement) Node(t int32) int32 {
	if p.GroupOf == nil {
		return p.NodeOf[t]
	}
	return p.NodeOf[p.GroupOf[t]]
}

// Compute evaluates all metrics for the directed task graph tg under
// the placement on topo.
func Compute(tg *graph.Graph, topo torus.Topology, pl *Placement) MapMetrics {
	var m MapMetrics
	msgCong := make([]int64, topo.Links())
	volCong := make([]int64, topo.Links())
	recvVol := make(map[int32]int64)
	recvMsg := make(map[int32]int64)
	var route []int32
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			u := tg.Adj[i]
			b := pl.Node(u)
			if a == b {
				continue // intra-node: no network traffic
			}
			w := tg.EdgeWeight(int(i))
			hops := int64(topo.HopDist(int(a), int(b)))
			m.TH += hops
			m.WH += hops * w
			m.ICV += w
			m.ICM++
			recvVol[b] += w
			recvMsg[b]++
			route = topo.Route(int(a), int(b), route[:0])
			for _, l := range route {
				msgCong[l]++
				volCong[l] += w
			}
		}
	}
	var sumMsg int64
	var sumVC float64
	for l := range msgCong {
		if msgCong[l] == 0 {
			continue
		}
		m.UsedLinks++
		sumMsg += msgCong[l]
		if msgCong[l] > m.MMC {
			m.MMC = msgCong[l]
		}
		vc := float64(volCong[l]) / topo.LinkBW(l)
		sumVC += vc
		if vc > m.MC {
			m.MC = vc
		}
	}
	if m.UsedLinks > 0 {
		m.AMC = float64(sumMsg) / float64(m.UsedLinks)
		m.AC = sumVC / float64(m.UsedLinks)
	}
	for _, v := range recvVol {
		if v > m.MNRV {
			m.MNRV = v
		}
	}
	for _, c := range recvMsg {
		if c > m.MNRM {
			m.MNRM = c
		}
	}
	return m
}

// WeightedHops computes only WH for a symmetric coarse graph mapped
// one-to-one onto nodes (each stored direction counted once; for a
// symmetric graph WH of the directed view double-counts each
// undirected edge, matching the refinement algorithms' internal
// accounting).
func WeightedHops(g *graph.Graph, topo torus.Topology, nodeOf []int32) int64 {
	var wh int64
	for v := 0; v < g.N(); v++ {
		a := int(nodeOf[v])
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			b := int(nodeOf[g.Adj[i]])
			wh += int64(topo.HopDist(a, b)) * g.EdgeWeight(int(i))
		}
	}
	return wh
}

// TotalHops computes only TH (unit costs) for a coarse graph mapping.
func TotalHops(g *graph.Graph, topo torus.Topology, nodeOf []int32) int64 {
	var th int64
	for v := 0; v < g.N(); v++ {
		a := int(nodeOf[v])
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			th += int64(topo.HopDist(a, int(nodeOf[g.Adj[i]])))
		}
	}
	return th
}

// Package metrics computes the topology-aware mapping metrics of the
// paper's §II: total hops TH, weighted hops WH, maximum message
// congestion MMC, maximum (volume) congestion MC, and the averaged
// variants AMC and AC, plus the extra regression covariates of §IV-E
// (ICV, ICM, MNRV, MNRM). All metrics are evaluated on the fine task
// graph through the task→group→node composition, with messages routed
// on the topology's static shortest paths.
package metrics

import (
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/torus"
)

// MapMetrics holds every mapping metric for one mapping.
type MapMetrics struct {
	TH  int64   // total hop count: sum of dilations over task edges
	WH  int64   // weighted hops: dilation * volume
	MMC int64   // max messages crossing any link
	MC  float64 // max volume congestion: max over links of volume/bw
	AMC float64 // average message congestion over used links
	AC  float64 // average volume congestion over used links

	ICV  int64 // inter-node communication volume
	ICM  int64 // inter-node message count
	MNRV int64 // max volume received by a node
	MNRM int64 // max messages received by a node

	UsedLinks int // |E_tm|: links carrying at least one message

	// Heterogeneous-processor metrics (per-task loads × per-node
	// speeds): the compute makespan max over nodes of load/speed, and
	// the load imbalance max/mean of the same per-node finish times.
	// On homogeneous inputs (unit loads, unit speeds) makespan is the
	// largest group size — still well defined, just capacity-shaped.
	Makespan      float64
	LoadImbalance float64
}

// Placement maps fine tasks to nodes: node(t) = NodeOf[GroupOf[t]]
// when GroupOf is non-nil, else NodeOf[t] directly.
type Placement struct {
	GroupOf []int32 // task -> group (nil for identity)
	NodeOf  []int32 // group -> network node
}

// Node returns the network node hosting task t.
func (p *Placement) Node(t int32) int32 {
	if p.GroupOf == nil {
		return p.NodeOf[t]
	}
	return p.NodeOf[p.GroupOf[t]]
}

// computeState accumulates the per-vertex partial sums of one vertex
// range. Every field is an integer count, so merging states is exact
// and order-independent — the property the parallel evaluation's
// any-worker-count determinism rests on.
type computeState struct {
	th, wh, icv, icm int64
	msgCong, volCong []int64
	recvVol, recvMsg map[int32]int64
}

// accumulate walks the out-edges of tasks [lo,hi) under the placement
// and adds their traffic to st.
func (st *computeState) accumulate(tg *graph.Graph, topo torus.Topology, pl *Placement, lo, hi int) {
	var route []int32
	for t := lo; t < hi; t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			u := tg.Adj[i]
			b := pl.Node(u)
			if a == b {
				continue // intra-node: no network traffic
			}
			w := tg.EdgeWeight(int(i))
			hops := int64(topo.HopDist(int(a), int(b)))
			st.th += hops
			st.wh += hops * w
			st.icv += w
			st.icm++
			st.recvVol[b] += w
			st.recvMsg[b]++
			route = topo.Route(int(a), int(b), route[:0])
			for _, l := range route {
				st.msgCong[l]++
				st.volCong[l] += w
			}
		}
	}
}

// finalize derives the aggregate metrics from a fully merged state.
func (st *computeState) finalize(topo torus.Topology) MapMetrics {
	m := MapMetrics{TH: st.th, WH: st.wh, ICV: st.icv, ICM: st.icm}
	var sumMsg int64
	var sumVC float64
	for l := range st.msgCong {
		if st.msgCong[l] == 0 {
			continue
		}
		m.UsedLinks++
		sumMsg += st.msgCong[l]
		if st.msgCong[l] > m.MMC {
			m.MMC = st.msgCong[l]
		}
		vc := float64(st.volCong[l]) / topo.LinkBW(l)
		sumVC += vc
		if vc > m.MC {
			m.MC = vc
		}
	}
	if m.UsedLinks > 0 {
		m.AMC = float64(sumMsg) / float64(m.UsedLinks)
		m.AC = sumVC / float64(m.UsedLinks)
	}
	for _, v := range st.recvVol {
		if v > m.MNRV {
			m.MNRV = v
		}
	}
	for _, c := range st.recvMsg {
		if c > m.MNRM {
			m.MNRM = c
		}
	}
	return m
}

func newComputeState(links int) computeState {
	return computeState{
		msgCong: make([]int64, links),
		volCong: make([]int64, links),
		recvVol: make(map[int32]int64),
		recvMsg: make(map[int32]int64),
	}
}

// loadSummary computes the unit-speed heterogeneous metrics of a
// placement: per-group summed task loads (vertex weights), their
// maximum (the makespan at unit speed) and max/mean (the load
// imbalance). Placement-only evaluation has no speed vector, so unit
// speeds are the contract here; the engine overwrites both fields
// with speed-aware values when its allocation is heterogeneous.
func loadSummary(tg *graph.Graph, pl *Placement) (makespan, imbalance float64) {
	n := len(pl.NodeOf)
	if n == 0 {
		return 0, 0
	}
	load := make([]int64, n)
	for t := 0; t < tg.N(); t++ {
		g := int32(t)
		if pl.GroupOf != nil {
			g = pl.GroupOf[t]
		}
		load[g] += tg.VertexWeight(t)
	}
	var max, sum int64
	for _, l := range load {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum > 0 {
		imbalance = float64(max) * float64(n) / float64(sum)
	}
	return float64(max), imbalance
}

// Compute evaluates all metrics for the directed task graph tg under
// the placement on topo, serially.
func Compute(tg *graph.Graph, topo torus.Topology, pl *Placement) MapMetrics {
	st := newComputeState(topo.Links())
	st.accumulate(tg, topo, pl, 0, tg.N())
	m := st.finalize(topo)
	m.Makespan, m.LoadImbalance = loadSummary(tg, pl)
	return m
}

// parallelComputeMinTasks gates the parallel evaluation: below this
// many tasks the per-shard link arrays cost more than the edge walk.
const parallelComputeMinTasks = 512

// ComputePar is Compute with the per-vertex partial sums fanned out
// over the solve's bounded worker pool and reduced in shard order.
// Every accumulated quantity is an integer count, so the merged state
// — and therefore every metric, including the float aggregates
// derived from it — is identical at any worker count, including the
// serial path a nil or single-worker group takes.
func ComputePar(tg *graph.Graph, topo torus.Topology, pl *Placement, par *parallel.Group) MapMetrics {
	n := tg.N()
	workers := par.NumWorkers()
	// Stay serial when the fan-out cannot pay for itself: each shard
	// allocates and later merges two link-length arrays, so a sparse
	// graph on a huge topology (edges under one link-array's worth of
	// work) would spend more on shard state than on the edge walk.
	if workers <= 1 || n < parallelComputeMinTasks || tg.M() < topo.Links() {
		return Compute(tg, topo, pl)
	}
	shards := workers
	if shards > n {
		shards = n
	}
	parts := make([]computeState, shards)
	chunk := (n + shards - 1) / shards
	par.ForEachIdx(shards, func(s int) {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		parts[s] = newComputeState(topo.Links())
		parts[s].accumulate(tg, topo, pl, lo, hi)
	})
	st := parts[0]
	for s := 1; s < shards; s++ {
		p := &parts[s]
		st.th += p.th
		st.wh += p.wh
		st.icv += p.icv
		st.icm += p.icm
		for l, c := range p.msgCong {
			st.msgCong[l] += c
		}
		for l, v := range p.volCong {
			st.volCong[l] += v
		}
		for node, v := range p.recvVol {
			st.recvVol[node] += v
		}
		for node, c := range p.recvMsg {
			st.recvMsg[node] += c
		}
	}
	m := st.finalize(topo)
	m.Makespan, m.LoadImbalance = loadSummary(tg, pl)
	return m
}

// WeightedHops computes only WH for a symmetric coarse graph mapped
// one-to-one onto nodes (each stored direction counted once; for a
// symmetric graph WH of the directed view double-counts each
// undirected edge, matching the refinement algorithms' internal
// accounting).
func WeightedHops(g *graph.Graph, topo torus.Topology, nodeOf []int32) int64 {
	var wh int64
	for v := 0; v < g.N(); v++ {
		a := int(nodeOf[v])
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			b := int(nodeOf[g.Adj[i]])
			wh += int64(topo.HopDist(a, b)) * g.EdgeWeight(int(i))
		}
	}
	return wh
}

// TotalHops computes only TH (unit costs) for a coarse graph mapping.
func TotalHops(g *graph.Graph, topo torus.Topology, nodeOf []int32) int64 {
	var th int64
	for v := 0; v < g.N(); v++ {
		a := int(nodeOf[v])
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			th += int64(topo.HopDist(a, int(nodeOf[g.Adj[i]])))
		}
	}
	return th
}

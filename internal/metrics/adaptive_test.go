package metrics

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/torus"
)

// oneMessageGraph returns a 2-task directed graph with a single
// message of the given volume from task 0 to task 1.
func oneMessageGraph(w int64) *graph.Graph {
	return graph.FromEdges(2, []int32{0}, []int32{1}, []int64{w}, nil)
}

func TestAdaptiveSingleDimMessage(t *testing.T) {
	// Tasks on nodes differing in one dimension: a unique minimal
	// route, so adaptive == static congestion.
	topo := torus.New([]int{8, 8}, []float64{2e9, 1e9})
	g := oneMessageGraph(1000)
	pl := &Placement{NodeOf: []int32{int32(topo.NodeAt([]int{0, 0})), int32(topo.NodeAt([]int{3, 0}))}}
	am := ComputeAdaptive(g, topo, pl)
	sm := Compute(g, topo, pl)
	if math.Abs(am.EMC-sm.MC) > 1e-12 {
		t.Fatalf("single-route EMC %g != MC %g", am.EMC, sm.MC)
	}
	if am.EMMC != 1 {
		t.Fatalf("EMMC %g, want 1", am.EMMC)
	}
	if am.UsedLinks != sm.UsedLinks || am.UsedLinks != 3 {
		t.Fatalf("UsedLinks %d/%d, want 3", am.UsedLinks, sm.UsedLinks)
	}
}

func TestAdaptiveTwoDimMessageSplits(t *testing.T) {
	// Offset in two dimensions: two L-shaped routes that share no
	// links, each taken with probability 1/2.
	topo := torus.New([]int{8, 8}, []float64{1e9, 1e9})
	g := oneMessageGraph(1000)
	pl := &Placement{NodeOf: []int32{
		int32(topo.NodeAt([]int{0, 0})),
		int32(topo.NodeAt([]int{2, 3})),
	}}
	am := ComputeAdaptive(g, topo, pl)
	if am.EMMC != 0.5 {
		t.Fatalf("EMMC %g, want 0.5", am.EMMC)
	}
	wantEMC := 500.0 / 1e9
	if math.Abs(am.EMC-wantEMC) > 1e-15 {
		t.Fatalf("EMC %g, want %g", am.EMC, wantEMC)
	}
	// The two routes cover 2 * HopDist distinct links.
	if hops := topo.HopDist(int(pl.NodeOf[0]), int(pl.NodeOf[1])); am.UsedLinks != 2*hops {
		t.Fatalf("UsedLinks %d, want %d", am.UsedLinks, 2*hops)
	}
	// Static routing puts everything on one route.
	sm := Compute(g, topo, pl)
	if am.EMC >= sm.MC {
		t.Fatalf("splitting did not lower max congestion: EMC %g >= MC %g", am.EMC, sm.MC)
	}
}

func TestAdaptiveIntraNodeIgnored(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	g := oneMessageGraph(50)
	pl := &Placement{NodeOf: []int32{7, 7}}
	am := ComputeAdaptive(g, topo, pl)
	if am.EMC != 0 || am.EMMC != 0 || am.UsedLinks != 0 {
		t.Fatalf("intra-node message produced traffic: %+v", am)
	}
}

func TestAdaptiveGroupComposition(t *testing.T) {
	// GroupOf composition must behave as in Compute.
	topo := torus.NewHopper3D(4, 4, 4)
	g := graph.FromEdges(4,
		[]int32{0, 1, 2}, []int32{1, 2, 3}, []int64{10, 20, 30}, nil)
	grouped := &Placement{GroupOf: []int32{0, 0, 1, 1}, NodeOf: []int32{3, 12}}
	am := ComputeAdaptive(g, topo, grouped)
	// Only the 1->2 edge crosses groups.
	p := float64(topo.NumMinimalRoutes(3, 12))
	if p < 1 {
		t.Fatal("test nodes must differ")
	}
	wantEMMC := 1 / p
	if math.Abs(am.EMMC-wantEMMC) > 1e-12 {
		t.Fatalf("EMMC %g, want %g", am.EMMC, wantEMMC)
	}
}

func TestAdaptiveAveragesBounded(t *testing.T) {
	// EAC <= EMC and EAMC <= EMMC by definition.
	topo := torus.NewHopper3D(4, 4, 4)
	g := graph.RandomConnected(24, 60, 100, 5)
	nodeOf := make([]int32, 24)
	for i := range nodeOf {
		nodeOf[i] = int32((i * 7) % topo.Nodes())
	}
	// Deduplicate nodes (placement need not be injective for metrics).
	pl := &Placement{NodeOf: nodeOf}
	am := ComputeAdaptive(g, topo, pl)
	if am.EAC > am.EMC+1e-12 || am.EAMC > am.EMMC+1e-12 {
		t.Fatalf("averages exceed maxima: %+v", am)
	}
	if am.EMC <= 0 || am.UsedLinks == 0 {
		t.Fatalf("degenerate adaptive metrics: %+v", am)
	}
}

func TestAdaptiveConservesExpectedHops(t *testing.T) {
	// Sum over links of E[messages] equals TH: every minimal route of
	// a message has exactly HopDist links, so the expectation
	// preserves the total. We recover the sum as EAMC * UsedLinks.
	topo := torus.New([]int{5, 5, 5}, []float64{1e9, 1e9, 1e9})
	g := graph.RandomConnected(30, 90, 50, 9)
	nodeOf := make([]int32, 30)
	for i := range nodeOf {
		nodeOf[i] = int32((i * 11) % topo.Nodes())
	}
	pl := &Placement{NodeOf: nodeOf}
	am := ComputeAdaptive(g, topo, pl)
	sm := Compute(g, topo, pl)
	sumMsg := am.EAMC * float64(am.UsedLinks)
	if math.Abs(sumMsg-float64(sm.TH)) > 1e-6*float64(sm.TH) {
		t.Fatalf("sum of expected per-link messages %g != TH %d", sumMsg, sm.TH)
	}
}

package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/torus"
)

// TestMetricsInvariantsProperty checks the definitional relations of
// §II on random task graphs and placements:
//
//	AC  <= MC    (average over used links cannot exceed the max)
//	AMC <= MMC
//	AMC * UsedLinks == TH  (paper: "TH = sum of Congestion(e)")
//	WH  >= TH    when every edge weight is >= 1
//	UsedLinks <= Links
//	MNRV <= ICV, MNRM <= ICM
func TestMetricsInvariantsProperty(t *testing.T) {
	topo := torus.NewHopper3D(5, 4, 3)
	f := func(seed int64, nn uint8) bool {
		n := 4 + int(nn%24)
		g := graph.RandomConnected(n, 3*n, 50, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		nodeOf := make([]int32, n)
		for i := range nodeOf {
			nodeOf[i] = int32(rng.Intn(topo.Nodes()))
		}
		m := Compute(g, topo, &Placement{NodeOf: nodeOf})
		if m.AC > m.MC+1e-12 || m.AMC > float64(m.MMC)+1e-12 {
			return false
		}
		if m.UsedLinks > topo.Links() || m.UsedLinks < 0 {
			return false
		}
		sumCong := m.AMC * float64(m.UsedLinks)
		if diff := sumCong - float64(m.TH); diff > 1e-6 || diff < -1e-6 {
			return false
		}
		if m.WH < m.TH { // weights are >= 1 in RandomConnected
			return false
		}
		if m.MNRV > m.ICV || m.MNRM > m.ICM {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsPermutationInvariance: relabeling the tasks of a
// symmetric graph while permuting the placement accordingly leaves
// every metric unchanged.
func TestMetricsPermutationInvariance(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	g := graph.RandomConnected(12, 30, 40, 9).Symmetrize()
	rng := rand.New(rand.NewSource(4))
	nodeOf := make([]int32, 12)
	for i := range nodeOf {
		nodeOf[i] = int32(rng.Intn(topo.Nodes()))
	}
	base := Compute(g, topo, &Placement{NodeOf: nodeOf})

	perm := rng.Perm(12)
	// Relabeled graph: vertex v becomes perm[v].
	var us, vs []int32
	var ws []int64
	for v := 0; v < g.N(); v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			us = append(us, int32(perm[v]))
			vs = append(vs, int32(perm[g.Adj[i]]))
			ws = append(ws, g.EdgeWeight(int(i)))
		}
	}
	relabeled := graph.FromEdges(12, us, vs, ws, nil)
	permNode := make([]int32, 12)
	for v := 0; v < 12; v++ {
		permNode[perm[v]] = nodeOf[v]
	}
	got := Compute(relabeled, topo, &Placement{NodeOf: permNode})
	if got != base {
		t.Fatalf("metrics changed under task relabeling:\n base %+v\n got  %+v", base, got)
	}
}

// TestMetricsMonotoneUnderExtraEdge: adding a new inter-node message
// can only increase (or keep) each cumulative metric.
func TestMetricsMonotoneUnderExtraEdge(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	us := []int32{0, 1}
	vs := []int32{1, 2}
	ws := []int64{10, 20}
	nodeOf := []int32{0, 7, 21, 42}
	before := Compute(graph.FromEdges(4, us, vs, ws, nil), topo, &Placement{NodeOf: nodeOf})
	us = append(us, 2)
	vs = append(vs, 3)
	ws = append(ws, 30)
	after := Compute(graph.FromEdges(4, us, vs, ws, nil), topo, &Placement{NodeOf: nodeOf})
	if after.TH < before.TH || after.WH < before.WH || after.MMC < before.MMC ||
		after.MC < before.MC || after.ICV < before.ICV || after.ICM < before.ICM ||
		after.UsedLinks < before.UsedLinks {
		t.Fatalf("metric decreased when a message was added:\n before %+v\n after  %+v", before, after)
	}
}

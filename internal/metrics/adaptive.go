package metrics

import (
	"repro/internal/graph"
	"repro/internal/torus"
)

// AdaptiveMetrics holds the expected-congestion metrics of a mapping
// under the dynamic-routing model of torus.MultipathTopology: every
// message is spread uniformly over its minimal dimension-ordered
// routes, so per-link loads are expectations (§III-C's Blue Gene
// remark). Hop metrics are unchanged by the routing policy (all
// minimal routes have the same length), so only the congestion family
// is recomputed here.
type AdaptiveMetrics struct {
	EMC  float64 // expected max volume congestion: max over links of E[volume]/bw
	EMMC float64 // expected max message congestion: max over links of E[messages]
	EAC  float64 // average expected volume congestion over used links
	EAMC float64 // average expected message congestion over used links

	// UsedLinks counts links with a nonzero probability of carrying
	// traffic (a superset of the static UsedLinks).
	UsedLinks int
}

// ComputeAdaptive evaluates the expected congestion of the directed
// task graph tg under the placement, with every message routed
// uniformly at random over its minimal dimension-ordered routes.
func ComputeAdaptive(tg *graph.Graph, topo torus.MultipathTopology, pl *Placement) AdaptiveMetrics {
	volLoad := make([]float64, topo.Links())
	msgLoad := make([]float64, topo.Links())
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			b := pl.Node(tg.Adj[i])
			if a == b {
				continue
			}
			w := float64(tg.EdgeWeight(int(i)))
			p := float64(topo.NumMinimalRoutes(int(a), int(b)))
			topo.ForEachMinimalRoute(int(a), int(b), func(route []int32) {
				for _, l := range route {
					volLoad[l] += w / p
					msgLoad[l] += 1 / p
				}
			})
		}
	}
	var m AdaptiveMetrics
	var sumVC, sumMsg float64
	for l := range volLoad {
		if msgLoad[l] == 0 {
			continue
		}
		m.UsedLinks++
		vc := volLoad[l] / topo.LinkBW(l)
		sumVC += vc
		sumMsg += msgLoad[l]
		if vc > m.EMC {
			m.EMC = vc
		}
		if msgLoad[l] > m.EMMC {
			m.EMMC = msgLoad[l]
		}
	}
	if m.UsedLinks > 0 {
		m.EAC = sumVC / float64(m.UsedLinks)
		m.EAMC = sumMsg / float64(m.UsedLinks)
	}
	return m
}

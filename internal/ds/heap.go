// Package ds provides the low-level data structures shared by the
// partitioning and mapping algorithms: indexed binary heaps with
// update-key, FM gain buckets, disjoint sets, compact integer sets and
// queues. All structures are deterministic and allocation-conscious;
// none of them is safe for concurrent mutation.
package ds

import "math"

// IndexedMaxHeap is a binary max-heap over the items 0..n-1 keyed by
// int64 priorities. It supports O(log n) push, pop, removal and
// arbitrary key updates, which the mapping algorithms need for their
// connectivity and congestion heaps (Algorithms 1-3 of the paper).
//
// An item is either in the heap or out of it; pushing an item that is
// already present panics, as does updating an absent item. Use
// Contains to query membership.
type IndexedMaxHeap struct {
	keys []int64 // keys[item] is valid only while pos[item] >= 0
	heap []int32 // heap of item ids
	pos  []int32 // pos[item] = index in heap, or -1 if absent
}

// NewIndexedMaxHeap returns an empty heap able to hold items 0..n-1.
func NewIndexedMaxHeap(n int) *IndexedMaxHeap {
	h := &IndexedMaxHeap{
		keys: make([]int64, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of items currently in the heap.
func (h *IndexedMaxHeap) Len() int { return len(h.heap) }

// Cap reports the number of item ids the heap can address.
func (h *IndexedMaxHeap) Cap() int { return len(h.pos) }

// Contains reports whether item is currently in the heap.
func (h *IndexedMaxHeap) Contains(item int) bool { return h.pos[item] >= 0 }

// Key returns the key of item; valid only if Contains(item).
func (h *IndexedMaxHeap) Key(item int) int64 { return h.keys[item] }

// Push inserts item with the given key.
func (h *IndexedMaxHeap) Push(item int, key int64) {
	if h.pos[item] >= 0 {
		panic("ds: Push of item already in heap")
	}
	h.keys[item] = key
	h.pos[item] = int32(len(h.heap))
	h.heap = append(h.heap, int32(item))
	h.up(len(h.heap) - 1)
}

// Pop removes and returns the item with the maximum key.
// It panics on an empty heap.
func (h *IndexedMaxHeap) Pop() (item int, key int64) {
	if len(h.heap) == 0 {
		panic("ds: Pop of empty heap")
	}
	top := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return int(top), h.keys[top]
}

// Peek returns the maximum item without removing it.
// It panics on an empty heap.
func (h *IndexedMaxHeap) Peek() (item int, key int64) {
	if len(h.heap) == 0 {
		panic("ds: Peek of empty heap")
	}
	return int(h.heap[0]), h.keys[h.heap[0]]
}

// MaxKeyExcept returns the maximum key over the items for which skip
// reports false, or math.MinInt64 when the heap is empty or every item
// is skipped. It is read-only — safe for any number of concurrent
// callers as long as nobody mutates the heap — and visits O(k) nodes
// for k skipped items: the descent only continues below a skipped
// node, because an unskipped node already bounds its whole subtree.
// The congestion refinement uses it to score hypothetical swaps
// without temporarily updating the shared heap.
func (h *IndexedMaxHeap) MaxKeyExcept(skip func(item int) bool) int64 {
	return h.maxKeyExcept(0, skip)
}

func (h *IndexedMaxHeap) maxKeyExcept(i int, skip func(item int) bool) int64 {
	if i >= len(h.heap) {
		return math.MinInt64
	}
	it := h.heap[i]
	if !skip(int(it)) {
		return h.keys[it]
	}
	best := h.maxKeyExcept(2*i+1, skip)
	if r := h.maxKeyExcept(2*i+2, skip); r > best {
		best = r
	}
	return best
}

// Update sets the key of an item already in the heap.
func (h *IndexedMaxHeap) Update(item int, key int64) {
	p := h.pos[item]
	if p < 0 {
		panic("ds: Update of item not in heap")
	}
	old := h.keys[item]
	h.keys[item] = key
	switch {
	case key > old:
		h.up(int(p))
	case key < old:
		h.down(int(p))
	}
}

// Add increases (or decreases, for negative delta) the key of item by
// delta. If the item is absent it is pushed with key delta. This is
// the conn.update operation of Algorithm 1.
func (h *IndexedMaxHeap) Add(item int, delta int64) {
	if h.pos[item] < 0 {
		h.Push(item, delta)
		return
	}
	h.Update(item, h.keys[item]+delta)
}

// Remove deletes item from the heap if present.
func (h *IndexedMaxHeap) Remove(item int) {
	p := h.pos[item]
	if p < 0 {
		return
	}
	last := len(h.heap) - 1
	h.swap(int(p), last)
	h.heap = h.heap[:last]
	h.pos[item] = -1
	if int(p) < last {
		h.down(int(p))
		h.up(int(p))
	}
}

// Clear empties the heap in O(len) time without releasing storage.
func (h *IndexedMaxHeap) Clear() {
	for _, it := range h.heap {
		h.pos[it] = -1
	}
	h.heap = h.heap[:0]
}

// Reset empties the heap and re-dimensions it for items 0..n-1,
// reusing the existing storage when it is large enough. It leaves the
// heap exactly as NewIndexedMaxHeap(n) would.
func (h *IndexedMaxHeap) Reset(n int) {
	if cap(h.pos) < n {
		h.keys = make([]int64, n)
		h.heap = make([]int32, 0, n)
		h.pos = make([]int32, n)
	} else {
		h.keys = h.keys[:n]
		h.heap = h.heap[:0]
		h.pos = h.pos[:n]
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func (h *IndexedMaxHeap) less(i, j int) bool {
	ki, kj := h.keys[h.heap[i]], h.keys[h.heap[j]]
	if ki != kj {
		return ki > kj // max-heap: "less" means higher priority
	}
	return h.heap[i] < h.heap[j] // deterministic tie-break by id
}

func (h *IndexedMaxHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *IndexedMaxHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedMaxHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// IndexedMinHeap is the min-keyed counterpart of IndexedMaxHeap,
// implemented by negating keys.
type IndexedMinHeap struct {
	h IndexedMaxHeap
}

// NewIndexedMinHeap returns an empty min-heap for items 0..n-1.
func NewIndexedMinHeap(n int) *IndexedMinHeap {
	return &IndexedMinHeap{h: *NewIndexedMaxHeap(n)}
}

// Len reports the number of items currently in the heap.
func (h *IndexedMinHeap) Len() int { return h.h.Len() }

// Contains reports whether item is currently in the heap.
func (h *IndexedMinHeap) Contains(item int) bool { return h.h.Contains(item) }

// Key returns the key of item; valid only if Contains(item).
func (h *IndexedMinHeap) Key(item int) int64 { return -h.h.Key(item) }

// Push inserts item with the given key.
func (h *IndexedMinHeap) Push(item int, key int64) { h.h.Push(item, -key) }

// Pop removes and returns the item with the minimum key.
func (h *IndexedMinHeap) Pop() (item int, key int64) {
	item, k := h.h.Pop()
	return item, -k
}

// Peek returns the minimum item without removing it.
func (h *IndexedMinHeap) Peek() (item int, key int64) {
	item, k := h.h.Peek()
	return item, -k
}

// Update sets the key of an item already in the heap.
func (h *IndexedMinHeap) Update(item int, key int64) { h.h.Update(item, -key) }

// Remove deletes item from the heap if present.
func (h *IndexedMinHeap) Remove(item int) { h.h.Remove(item) }

// Clear empties the heap without releasing storage.
func (h *IndexedMinHeap) Clear() { h.h.Clear() }

package ds

// EdgeTriple is one directed weighted edge in the staging form the
// CSR builders sort and merge before laying out a graph. It lives in
// ds (not graph) so the arena can pool triple scratch without
// importing the graph package.
type EdgeTriple struct {
	U, V int32
	W    int64
}

package ds

// GainBucket is the classic Fiduccia–Mattheyses gain bucket structure:
// a doubly linked list per integer gain value plus a moving max-gain
// pointer. All operations are O(1) except MaxItem's pointer decay,
// which is amortized O(1) over a refinement pass.
//
// Gains must lie in [-maxGain, +maxGain]; the structure is sized for
// items 0..n-1.
type GainBucket struct {
	maxGain int
	first   []int32 // per bucket (gain+maxGain) -> first item or -1
	next    []int32 // per item
	prev    []int32 // per item
	gain    []int32 // per item
	in      []bool  // per item: membership
	top     int     // current highest possibly-nonempty bucket index
	n       int     // number of items currently stored
}

// NewGainBucket returns an empty bucket list for items 0..n-1 with
// gains clamped to [-maxGain, maxGain].
func NewGainBucket(n, maxGain int) *GainBucket {
	if maxGain < 1 {
		maxGain = 1
	}
	b := &GainBucket{
		maxGain: maxGain,
		first:   make([]int32, 2*maxGain+1),
		next:    make([]int32, n),
		prev:    make([]int32, n),
		gain:    make([]int32, n),
		in:      make([]bool, n),
		top:     -1,
	}
	for i := range b.first {
		b.first[i] = -1
	}
	return b
}

// Len reports the number of items currently stored.
func (b *GainBucket) Len() int { return b.n }

// Contains reports whether item is stored.
func (b *GainBucket) Contains(item int) bool { return b.in[item] }

// Gain returns the clamped gain of a stored item.
func (b *GainBucket) Gain(item int) int { return int(b.gain[item]) }

func (b *GainBucket) clamp(g int) int {
	if g > b.maxGain {
		return b.maxGain
	}
	if g < -b.maxGain {
		return -b.maxGain
	}
	return g
}

// Insert adds item with the given gain (clamped to the allowed range).
func (b *GainBucket) Insert(item, gain int) {
	if b.in[item] {
		panic("ds: GainBucket.Insert of stored item")
	}
	g := b.clamp(gain)
	idx := g + b.maxGain
	b.gain[item] = int32(g)
	b.next[item] = b.first[idx]
	b.prev[item] = -1
	if b.first[idx] >= 0 {
		b.prev[b.first[idx]] = int32(item)
	}
	b.first[idx] = int32(item)
	b.in[item] = true
	b.n++
	if idx > b.top {
		b.top = idx
	}
}

// Remove deletes item if stored.
func (b *GainBucket) Remove(item int) {
	if !b.in[item] {
		return
	}
	idx := int(b.gain[item]) + b.maxGain
	if b.prev[item] >= 0 {
		b.next[b.prev[item]] = b.next[item]
	} else {
		b.first[idx] = b.next[item]
	}
	if b.next[item] >= 0 {
		b.prev[b.next[item]] = b.prev[item]
	}
	b.in[item] = false
	b.n--
}

// UpdateGain moves item to a new gain bucket.
func (b *GainBucket) UpdateGain(item, gain int) {
	if !b.in[item] {
		panic("ds: GainBucket.UpdateGain of absent item")
	}
	if int(b.gain[item]) == b.clamp(gain) {
		return
	}
	b.Remove(item)
	b.Insert(item, gain)
}

// MaxItem returns the stored item with the highest gain (ties broken by
// most-recently inserted) and that gain. ok is false when empty.
func (b *GainBucket) MaxItem() (item, gain int, ok bool) {
	if b.n == 0 {
		b.top = -1
		return 0, 0, false
	}
	for b.top >= 0 && b.first[b.top] < 0 {
		b.top--
	}
	if b.top < 0 {
		return 0, 0, false
	}
	it := b.first[b.top]
	return int(it), b.top - b.maxGain, true
}

// Clear removes all items in O(stored) time.
func (b *GainBucket) Clear() {
	for i := range b.first {
		b.first[i] = -1
	}
	for i := range b.in {
		b.in[i] = false
	}
	b.n = 0
	b.top = -1
}

package ds

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDisjointSetBasic(t *testing.T) {
	d := NewDisjointSet(6)
	if d.Same(0, 1) {
		t.Fatal("fresh sets should be disjoint")
	}
	if !d.Union(0, 1) {
		t.Fatal("Union(0,1) should merge")
	}
	if d.Union(1, 0) {
		t.Fatal("repeated Union should report false")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if !d.Same(1, 2) {
		t.Fatal("1 and 2 should be connected via unions")
	}
	if d.Same(4, 5) {
		t.Fatal("4 and 5 were never merged")
	}
}

func TestDisjointSetTransitivityProperty(t *testing.T) {
	prop := func(pairs [][2]uint8) bool {
		const n = 64
		d := NewDisjointSet(n)
		type edge struct{ a, b int }
		var edges []edge
		for _, p := range pairs {
			a, b := int(p[0])%n, int(p[1])%n
			d.Union(a, b)
			edges = append(edges, edge{a, b})
		}
		// Reference connectivity via BFS over the union edges.
		adj := make([][]int, n)
		for _, e := range edges {
			adj[e.a] = append(adj[e.a], e.b)
			adj[e.b] = append(adj[e.b], e.a)
		}
		comp := make([]int, n)
		for i := range comp {
			comp[i] = -1
		}
		c := 0
		for s := 0; s < n; s++ {
			if comp[s] >= 0 {
				continue
			}
			stack := []int{s}
			comp[s] = c
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range adj[v] {
					if comp[w] < 0 {
						comp[w] = c
						stack = append(stack, w)
					}
				}
			}
			c++
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d.Same(i, j) != (comp[i] == comp[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIntSetBasic(t *testing.T) {
	var s IntSet
	if s.Len() != 0 || s.Contains(3) {
		t.Fatal("fresh set should be empty")
	}
	if !s.Add(5) || !s.Add(1) || !s.Add(3) {
		t.Fatal("Add of new items should report true")
	}
	if s.Add(3) {
		t.Fatal("Add of existing item should report false")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.Items()
	want := []int32{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v, want %v", got, want)
		}
	}
	if !s.Delete(3) || s.Delete(3) {
		t.Fatal("Delete semantics wrong")
	}
	if s.Contains(3) {
		t.Fatal("3 still present after Delete")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestIntSetMatchesMapProperty(t *testing.T) {
	prop := func(ops []int16) bool {
		var s IntSet
		ref := map[int]bool{}
		for _, op := range ops {
			x := int(op) % 50
			if op%2 == 0 {
				s.Add(x)
				ref[x] = true
			} else {
				s.Delete(x)
				delete(ref, x)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		var want []int
		for k := range ref {
			want = append(want, k)
		}
		sort.Ints(want)
		items := s.Items()
		for i, w := range want {
			if int(items[i]) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(2)
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	mustPanic(t, "Pop empty queue", func() { q.Pop() })
}

func TestQueueInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewQueue(4)
	var ref []int
	for step := 0; step < 10000; step++ {
		if rng.Intn(2) == 0 || len(ref) == 0 {
			v := rng.Intn(1 << 20)
			q.Push(v)
			ref = append(ref, v)
		} else {
			got := q.Pop()
			if got != ref[0] {
				t.Fatalf("step %d: Pop = %d, want %d", step, got, ref[0])
			}
			ref = ref[1:]
		}
		if q.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, q.Len(), len(ref))
		}
	}
}

func TestQueueClear(t *testing.T) {
	q := NewQueue(4)
	q.Push(1)
	q.Push(2)
	q.Clear()
	if q.Len() != 0 {
		t.Fatal("Clear failed")
	}
	q.Push(9)
	if q.Pop() != 9 {
		t.Fatal("queue unusable after Clear")
	}
}

func TestGainBucketBasic(t *testing.T) {
	b := NewGainBucket(8, 10)
	b.Insert(0, 3)
	b.Insert(1, -2)
	b.Insert(2, 7)
	item, gain, ok := b.MaxItem()
	if !ok || item != 2 || gain != 7 {
		t.Fatalf("MaxItem = (%d,%d,%v), want (2,7,true)", item, gain, ok)
	}
	b.Remove(2)
	item, gain, _ = b.MaxItem()
	if item != 0 || gain != 3 {
		t.Fatalf("MaxItem after remove = (%d,%d), want (0,3)", item, gain)
	}
	b.UpdateGain(1, 9)
	item, gain, _ = b.MaxItem()
	if item != 1 || gain != 9 {
		t.Fatalf("MaxItem after update = (%d,%d), want (1,9)", item, gain)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
}

func TestGainBucketClamping(t *testing.T) {
	b := NewGainBucket(4, 5)
	b.Insert(0, 100)
	b.Insert(1, -100)
	if b.Gain(0) != 5 || b.Gain(1) != -5 {
		t.Fatalf("clamped gains = (%d,%d), want (5,-5)", b.Gain(0), b.Gain(1))
	}
}

func TestGainBucketEmpty(t *testing.T) {
	b := NewGainBucket(4, 5)
	if _, _, ok := b.MaxItem(); ok {
		t.Fatal("MaxItem on empty bucket should report !ok")
	}
	b.Insert(2, 1)
	b.Remove(2)
	if _, _, ok := b.MaxItem(); ok {
		t.Fatal("MaxItem after removing the only item should report !ok")
	}
}

func TestGainBucketAgainstHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, maxG = 40, 30
	b := NewGainBucket(n, maxG)
	ref := map[int]int{}
	for step := 0; step < 4000; step++ {
		item := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			if _, ok := ref[item]; !ok {
				g := rng.Intn(2*maxG+1) - maxG
				b.Insert(item, g)
				ref[item] = g
			}
		case 1:
			if _, ok := ref[item]; ok {
				g := rng.Intn(2*maxG+1) - maxG
				b.UpdateGain(item, g)
				ref[item] = g
			}
		case 2:
			b.Remove(item)
			delete(ref, item)
		}
		_, gain, ok := b.MaxItem()
		if ok != (len(ref) > 0) {
			t.Fatalf("step %d: ok=%v ref len=%d", step, ok, len(ref))
		}
		if ok {
			best := -maxG - 1
			for _, g := range ref {
				if g > best {
					best = g
				}
			}
			if gain != best {
				t.Fatalf("step %d: MaxItem gain = %d, want %d", step, gain, best)
			}
		}
	}
}

package ds

import "sort"

// DisjointSet is a union-find structure with path compression and
// union by rank, used by the matching/coarsening phases.
type DisjointSet struct {
	parent []int32
	rank   []int8
}

// NewDisjointSet returns n singleton sets {0}..{n-1}.
func NewDisjointSet(n int) *DisjointSet {
	d := &DisjointSet{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Find returns the canonical representative of x's set.
func (d *DisjointSet) Find(x int) int {
	root := x
	for int(d.parent[root]) != root {
		root = int(d.parent[root])
	}
	for int(d.parent[x]) != root {
		d.parent[x], x = int32(root), int(d.parent[x])
	}
	return root
}

// Union merges the sets containing x and y and reports whether they
// were previously distinct.
func (d *DisjointSet) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	return true
}

// Same reports whether x and y are in the same set.
func (d *DisjointSet) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// IntSet is a sorted set of ints stored as a slice. It backs the
// commTasks[e] sets of Algorithm 3 (the paper used std::set); a sorted
// slice gives the same O(log n) membership with far better locality at
// the small cardinalities involved.
type IntSet struct {
	items []int32
}

// Len reports the cardinality.
func (s *IntSet) Len() int { return len(s.items) }

// Contains reports membership of x.
func (s *IntSet) Contains(x int) bool {
	i := sort.Search(len(s.items), func(i int) bool { return s.items[i] >= int32(x) })
	return i < len(s.items) && s.items[i] == int32(x)
}

// Add inserts x, reporting whether it was absent.
func (s *IntSet) Add(x int) bool {
	i := sort.Search(len(s.items), func(i int) bool { return s.items[i] >= int32(x) })
	if i < len(s.items) && s.items[i] == int32(x) {
		return false
	}
	s.items = append(s.items, 0)
	copy(s.items[i+1:], s.items[i:])
	s.items[i] = int32(x)
	return true
}

// Delete removes x, reporting whether it was present.
func (s *IntSet) Delete(x int) bool {
	i := sort.Search(len(s.items), func(i int) bool { return s.items[i] >= int32(x) })
	if i >= len(s.items) || s.items[i] != int32(x) {
		return false
	}
	copy(s.items[i:], s.items[i+1:])
	s.items = s.items[:len(s.items)-1]
	return true
}

// Items returns the sorted members; the slice must not be mutated.
func (s *IntSet) Items() []int32 { return s.items }

// Clear empties the set without releasing storage.
func (s *IntSet) Clear() { s.items = s.items[:0] }

// Queue is a simple FIFO of ints backed by a ring buffer, used by the
// many BFS traversals in the mapping algorithms.
type Queue struct {
	buf        []int32
	head, tail int // tail is one past the last element
	n          int
}

// NewQueue returns a queue with the given initial capacity.
func NewQueue(capacity int) *Queue {
	if capacity < 4 {
		capacity = 4
	}
	return &Queue{buf: make([]int32, capacity)}
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return q.n }

// Push appends x.
func (q *Queue) Push(x int) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail] = int32(x)
	q.tail = (q.tail + 1) % len(q.buf)
	q.n++
}

// Pop removes and returns the oldest item; it panics when empty.
func (q *Queue) Pop() int {
	if q.n == 0 {
		panic("ds: Pop of empty queue")
	}
	x := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return int(x)
}

// Clear empties the queue without releasing storage.
func (q *Queue) Clear() { q.head, q.tail, q.n = 0, 0, 0 }

func (q *Queue) grow() {
	nb := make([]int32, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head, q.tail = 0, q.n
}

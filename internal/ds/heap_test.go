package ds

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexedMaxHeapBasic(t *testing.T) {
	h := NewIndexedMaxHeap(8)
	if h.Len() != 0 {
		t.Fatalf("new heap Len = %d, want 0", h.Len())
	}
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(5, 50)
	h.Push(2, 20)
	if got := h.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if item, key := h.Peek(); item != 5 || key != 50 {
		t.Fatalf("Peek = (%d,%d), want (5,50)", item, key)
	}
	item, key := h.Pop()
	if item != 5 || key != 50 {
		t.Fatalf("Pop = (%d,%d), want (5,50)", item, key)
	}
	if h.Contains(5) {
		t.Fatal("heap still contains popped item 5")
	}
	item, _ = h.Pop()
	if item != 3 {
		t.Fatalf("second Pop item = %d, want 3", item)
	}
}

func TestIndexedMaxHeapUpdate(t *testing.T) {
	h := NewIndexedMaxHeap(4)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Push(2, 3)
	h.Update(0, 100)
	if item, key := h.Peek(); item != 0 || key != 100 {
		t.Fatalf("after Update Peek = (%d,%d), want (0,100)", item, key)
	}
	h.Update(0, -5)
	if item, _ := h.Peek(); item != 2 {
		t.Fatalf("after decrease Peek item = %d, want 2", item)
	}
}

func TestIndexedMaxHeapAdd(t *testing.T) {
	h := NewIndexedMaxHeap(4)
	h.Add(2, 5) // absent: behaves like Push
	if !h.Contains(2) || h.Key(2) != 5 {
		t.Fatalf("Add on absent item: Contains=%v Key=%d", h.Contains(2), h.Key(2))
	}
	h.Add(2, 7)
	if h.Key(2) != 12 {
		t.Fatalf("Add accumulate: Key = %d, want 12", h.Key(2))
	}
	h.Add(2, -20)
	if h.Key(2) != -8 {
		t.Fatalf("Add negative: Key = %d, want -8", h.Key(2))
	}
}

func TestIndexedMaxHeapRemove(t *testing.T) {
	h := NewIndexedMaxHeap(6)
	for i := 0; i < 6; i++ {
		h.Push(i, int64(i))
	}
	h.Remove(5)
	h.Remove(0)
	h.Remove(0) // double remove is a no-op
	if h.Len() != 4 {
		t.Fatalf("Len after removes = %d, want 4", h.Len())
	}
	if item, _ := h.Peek(); item != 4 {
		t.Fatalf("Peek after removes = %d, want 4", item)
	}
}

func TestIndexedMaxHeapDeterministicTies(t *testing.T) {
	h := NewIndexedMaxHeap(5)
	for i := 4; i >= 0; i-- {
		h.Push(i, 7)
	}
	// All keys equal: pops must come out in ascending id order.
	for want := 0; want < 5; want++ {
		item, _ := h.Pop()
		if item != want {
			t.Fatalf("tie-break pop = %d, want %d", item, want)
		}
	}
}

func TestIndexedMaxHeapPanics(t *testing.T) {
	h := NewIndexedMaxHeap(2)
	mustPanic(t, "Pop empty", func() { h.Pop() })
	mustPanic(t, "Peek empty", func() { h.Peek() })
	h.Push(0, 1)
	mustPanic(t, "double Push", func() { h.Push(0, 2) })
	mustPanic(t, "Update absent", func() { h.Update(1, 3) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

// Property: popping everything yields keys in non-increasing order and
// returns exactly the pushed items, for arbitrary key sets.
func TestIndexedMaxHeapSortProperty(t *testing.T) {
	prop := func(keys []int64) bool {
		if len(keys) > 512 {
			keys = keys[:512]
		}
		h := NewIndexedMaxHeap(len(keys))
		for i, k := range keys {
			h.Push(i, k)
		}
		got := make([]int64, 0, len(keys))
		for h.Len() > 0 {
			_, k := h.Pop()
			got = append(got, k)
		}
		if len(got) != len(keys) {
			return false
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a long random sequence of push/update/remove operations
// keeps the heap consistent with a reference map implementation.
func TestIndexedMaxHeapRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 64
	h := NewIndexedMaxHeap(n)
	ref := map[int]int64{}
	for step := 0; step < 5000; step++ {
		item := rng.Intn(n)
		switch rng.Intn(4) {
		case 0:
			if _, ok := ref[item]; !ok {
				k := int64(rng.Intn(1000) - 500)
				h.Push(item, k)
				ref[item] = k
			}
		case 1:
			if _, ok := ref[item]; ok {
				k := int64(rng.Intn(1000) - 500)
				h.Update(item, k)
				ref[item] = k
			}
		case 2:
			h.Remove(item)
			delete(ref, item)
		case 3:
			if len(ref) > 0 {
				it, k := h.Peek()
				want, ok := ref[it]
				if !ok || want != k {
					t.Fatalf("step %d: Peek item %d key %d not in ref (%v)", step, it, k, ref[it])
				}
				for ri, rk := range ref {
					if rk > k || (rk == k && ri < it) {
						t.Fatalf("step %d: Peek returned (%d,%d) but ref has better (%d,%d)", step, it, k, ri, rk)
					}
				}
			}
		}
		if h.Len() != len(ref) {
			t.Fatalf("step %d: Len %d != ref %d", step, h.Len(), len(ref))
		}
	}
}

func TestIndexedMinHeap(t *testing.T) {
	h := NewIndexedMinHeap(4)
	h.Push(0, 30)
	h.Push(1, 10)
	h.Push(2, 20)
	if item, key := h.Peek(); item != 1 || key != 10 {
		t.Fatalf("Peek = (%d,%d), want (1,10)", item, key)
	}
	h.Update(2, -5)
	item, key := h.Pop()
	if item != 2 || key != -5 {
		t.Fatalf("Pop = (%d,%d), want (2,-5)", item, key)
	}
	if h.Key(0) != 30 {
		t.Fatalf("Key(0) = %d, want 30", h.Key(0))
	}
	h.Remove(0)
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	h.Clear()
	if h.Len() != 0 || h.Contains(1) {
		t.Fatal("Clear left items behind")
	}
}

func TestIndexedMaxHeapClear(t *testing.T) {
	h := NewIndexedMaxHeap(10)
	for i := 0; i < 10; i++ {
		h.Push(i, int64(i*i))
	}
	h.Clear()
	if h.Len() != 0 {
		t.Fatalf("Len after Clear = %d", h.Len())
	}
	for i := 0; i < 10; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d still present after Clear", i)
		}
	}
	// Heap must be reusable after Clear.
	h.Push(3, 1)
	if item, _ := h.Peek(); item != 3 {
		t.Fatal("heap unusable after Clear")
	}
}

// TestMaxKeyExcept checks the read-only max query against a brute
// force over random heaps and random skip sets, including the
// everything-skipped and empty-heap corners.
func TestMaxKeyExcept(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(24)
		h := NewIndexedMaxHeap(n)
		keys := make(map[int]int64)
		for item := 0; item < n; item++ {
			if rng.Intn(4) == 0 {
				continue // leave some items out of the heap
			}
			k := int64(rng.Intn(7)) // narrow range: force key ties
			h.Push(item, k)
			keys[item] = k
		}
		skip := make(map[int]bool)
		for item := range keys {
			if rng.Intn(3) == 0 {
				skip[item] = true
			}
		}
		want := int64(math.MinInt64)
		for item, k := range keys {
			if !skip[item] && k > want {
				want = k
			}
		}
		got := h.MaxKeyExcept(func(item int) bool { return skip[item] })
		if got != want {
			t.Fatalf("trial %d: MaxKeyExcept = %d, want %d (n=%d heap=%d skipped=%d)",
				trial, got, want, n, h.Len(), len(skip))
		}
	}
	empty := NewIndexedMaxHeap(4)
	if got := empty.MaxKeyExcept(func(int) bool { return false }); got != math.MinInt64 {
		t.Fatalf("empty heap MaxKeyExcept = %d, want MinInt64", got)
	}
}

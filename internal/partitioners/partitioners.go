// Package partitioners exposes the seven partitioner personalities of
// the paper's evaluation (§IV-A): SCOTCH, KaFFPa, METIS, PaToH and the
// three multi-objective UMPA variants. Each personality is a
// configuration of the multilevel graph partitioner (edge-cut
// objective) or the multilevel hypergraph partitioner (communication
// volume objective), matching how the real tools differ:
//
//   - SCOTCHP, KAFFPAP: edge-cut minimizers on the graph model, with
//     Scotch-flavoured (random matching, light refinement) and
//     KaFFPa-flavoured (heavy-edge matching, aggressive refinement)
//     settings.
//   - METISP, PATOHP: total-communication-volume minimizers on the
//     column-net hypergraph (the paper runs METIS and PaToH "to
//     minimize the total communication volume").
//   - UMPAMV, UMPAMM, UMPATM: PATOHP followed by the multi-objective
//     refinement with objective stacks (MSV,TV), (MSM,TM,TV), (TM,TV).
package partitioners

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hpart"
	"repro/internal/hypergraph"
	"repro/internal/matrix"
	"repro/internal/partition"
)

// Name identifies a partitioner personality.
type Name string

// The seven personalities, named as in the paper's figures.
const (
	SCOTCHP Name = "SCOTCH"
	KAFFPAP Name = "KAFFPA"
	METISP  Name = "METIS"
	PATOHP  Name = "PATOH"
	UMPAMV  Name = "UMPAMV"
	UMPAMM  Name = "UMPAMM"
	UMPATM  Name = "UMPATM"
)

// All returns the personalities in the paper's figure order.
func All() []Name {
	return []Name{KAFFPAP, METISP, PATOHP, SCOTCHP, UMPAMM, UMPAMV, UMPATM}
}

// GraphModel converts a square matrix to the undirected graph model
// used by edge-cut partitioners: vertices are rows weighted by their
// nonzero counts; an edge joins i and j when a_ij or a_ji is nonzero.
func GraphModel(m *matrix.CSR) *graph.Graph {
	sym := m.SymmetrizePattern()
	var us, vs []int32
	for i := 0; i < sym.Rows; i++ {
		for _, j := range sym.Row(i) {
			if int(j) == i {
				continue
			}
			us = append(us, int32(i))
			vs = append(vs, j)
		}
	}
	vw := make([]int64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		w := int64(m.RowNNZ(i))
		if w == 0 {
			w = 1
		}
		vw[i] = w
	}
	return graph.FromEdges(m.Rows, us, vs, nil, vw)
}

// Run partitions matrix m into k parts with the given personality and
// returns the row part vector.
func Run(name Name, m *matrix.CSR, k int, seed int64) ([]int32, error) {
	switch name {
	case SCOTCHP:
		g := GraphModel(m)
		return partition.Partition(g, k, partition.Options{
			Seed:     seed,
			Matching: partition.RandomEdge,
			InitRuns: 2,
			FMPasses: 1,
		})
	case KAFFPAP:
		g := GraphModel(m)
		return partition.Partition(g, k, partition.Options{
			Seed:        seed,
			Matching:    partition.HeavyEdge,
			InitRuns:    6,
			FMPasses:    3,
			MaxNegMoves: 200,
		})
	case METISP:
		h := hypergraph.ColumnNet(m)
		return hpart.Partition(h, k, hpart.Options{
			Seed:     seed,
			InitRuns: 2,
			FMPasses: 1,
		})
	case PATOHP:
		h := hypergraph.ColumnNet(m)
		return hpart.Partition(h, k, hpart.Options{
			Seed:     seed,
			InitRuns: 4,
			FMPasses: 2,
		})
	case UMPAMV, UMPAMM, UMPATM:
		h := hypergraph.ColumnNet(m)
		part, err := hpart.Partition(h, k, hpart.Options{
			Seed:     seed,
			InitRuns: 3,
			FMPasses: 2,
		})
		if err != nil {
			return nil, err
		}
		owner := make([]int32, h.NN)
		for i := range owner {
			owner[i] = int32(i)
		}
		targets := make([]int64, k)
		total := h.TotalVertexWeight()
		for i := range targets {
			targets[i] = total / int64(k)
			if int64(i) < total%int64(k) {
				targets[i]++
			}
		}
		var stack []hpart.Objective
		switch name {
		case UMPAMV:
			stack = hpart.StackMV
		case UMPAMM:
			stack = hpart.StackMM
		default:
			stack = hpart.StackTM
		}
		hpart.RefineObjectives(h, part, k, owner, stack, targets, 0.10, 3)
		return part, nil
	}
	return nil, fmt.Errorf("partitioners: unknown personality %q", name)
}

package partitioners

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/taskgraph"
)

func TestAllPersonalitiesProduceValidPartitions(t *testing.T) {
	m := gen.Mesh2D(32, 32, 5) // 1024 rows
	const k = 16
	for _, name := range All() {
		part, err := Run(name, m, k, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(part) != m.Rows {
			t.Fatalf("%s: part length %d", name, len(part))
		}
		counts := make([]int, k)
		for _, p := range part {
			if p < 0 || int(p) >= k {
				t.Fatalf("%s: part id %d out of range", name, p)
			}
			counts[p]++
		}
		for p, c := range counts {
			if c == 0 {
				t.Fatalf("%s: part %d empty", name, p)
			}
		}
	}
}

func TestRunUnknownName(t *testing.T) {
	m := gen.Mesh2D(4, 4, 5)
	if _, err := Run(Name("NOPE"), m, 2, 1); err == nil {
		t.Fatal("want error for unknown personality")
	}
}

func TestAllOrder(t *testing.T) {
	names := All()
	if len(names) != 7 {
		t.Fatalf("expected 7 personalities, got %d", len(names))
	}
	// Paper figure order: KAFFPA METIS PATOH SCOTCH UMPAMM UMPAMV UMPATM.
	want := []Name{KAFFPAP, METISP, PATOHP, SCOTCHP, UMPAMM, UMPAMV, UMPATM}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestGraphModel(t *testing.T) {
	m := gen.Web(500, 4, 1) // directed pattern
	g := GraphModel(m)
	if g.N() != m.Rows {
		t.Fatalf("graph has %d vertices, want %d", g.N(), m.Rows)
	}
	if !g.IsSymmetric() {
		t.Fatal("graph model must be symmetric")
	}
	// Vertex weights are row nnz.
	if g.VertexWeight(0) != int64(m.RowNNZ(0)) {
		t.Fatalf("vw[0] = %d, want %d", g.VertexWeight(0), m.RowNNZ(0))
	}
}

// The qualitative Figure 1 shapes the personalities must reproduce:
// hypergraph-based partitioners (PATOH) beat edge-cut partitioners
// (SCOTCH, KAFFPA) on total volume, and each UMPA variant improves
// its primary objective relative to PATOH.
func TestPersonalityShapes(t *testing.T) {
	m := gen.DeBruijn(4, 5) // 1024 rows, irregular
	const k = 32
	metricsOf := func(name Name) taskgraph.Metrics {
		part, err := Run(name, m, k, 3)
		if err != nil {
			t.Fatal(err)
		}
		tg, err := taskgraph.Build(m, part, k)
		if err != nil {
			t.Fatal(err)
		}
		return tg.PartitionMetrics()
	}
	patoh := metricsOf(PATOHP)
	scotch := metricsOf(SCOTCHP)
	if float64(patoh.TV) > 1.05*float64(scotch.TV) {
		t.Fatalf("PATOH TV %d clearly worse than SCOTCH TV %d", patoh.TV, scotch.TV)
	}
	umpamv := metricsOf(UMPAMV)
	if umpamv.MSV > patoh.MSV {
		t.Fatalf("UMPAMV MSV %d worse than PATOH %d", umpamv.MSV, patoh.MSV)
	}
	umpatm := metricsOf(UMPATM)
	if float64(umpatm.TM) > 1.05*float64(patoh.TM) {
		t.Fatalf("UMPATM TM %d clearly worse than PATOH %d", umpatm.TM, patoh.TM)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	m := gen.Mesh2D(20, 20, 5)
	for _, name := range []Name{SCOTCHP, PATOHP, UMPAMM} {
		a, err := Run(name, m, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(name, m, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at %d", name, i)
			}
		}
	}
}

func TestConnectivityMatchesTaskGraphTV(t *testing.T) {
	// The hypergraph partitioner's objective (connectivity-1) must
	// equal the task graph's TV for its own partitions.
	m := gen.Uniform(600, 4, 9)
	h := hypergraph.ColumnNet(m)
	part, err := Run(PATOHP, m, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, part, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tg.PartitionMetrics().TV, h.Connectivity(part, 12); got != want {
		t.Fatalf("TV %d != connectivity %d", got, want)
	}
}

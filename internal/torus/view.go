package torus

// Capability discovery for wrapped topologies. The engine layer wraps
// a Topology in caching views; algorithms that need more than the
// base interface (torus coordinates for geometric splitting, minimal-
// route enumeration for adaptive congestion) discover those
// capabilities through the helpers below, which see through any chain
// of Unwrapper layers.

// CoordTopology is a Topology whose nodes live on an integer
// coordinate grid (tori and meshes). The recursive-bipartitioning
// baselines use it to split node sets geometrically.
type CoordTopology interface {
	Topology
	// NDims returns the number of grid dimensions.
	NDims() int
	// Coord writes the coordinates of node into dst and returns it.
	Coord(node int, dst []int) []int
}

// Unwrapper is implemented by topology views (caches, decorators)
// that delegate to an underlying Topology.
type Unwrapper interface {
	Unwrap() Topology
}

// Underlying peels every view layer off t and returns the base
// topology.
func Underlying(t Topology) Topology {
	for {
		u, ok := t.(Unwrapper)
		if !ok {
			return t
		}
		t = u.Unwrap()
	}
}

// CoordsOf returns the coordinate-grid view of t, looking through
// view layers; ok is false when the topology has no grid geometry
// (fat trees, dragonflies, custom topologies).
func CoordsOf(t Topology) (CoordTopology, bool) {
	for {
		if ct, ok := t.(CoordTopology); ok {
			return ct, true
		}
		u, ok := t.(Unwrapper)
		if !ok {
			return nil, false
		}
		t = u.Unwrap()
	}
}

// MultipathOf returns the multipath view of t, looking through view
// layers; ok is false when the topology cannot enumerate minimal
// routes.
func MultipathOf(t Topology) (MultipathTopology, bool) {
	for {
		if mp, ok := t.(MultipathTopology); ok {
			return mp, true
		}
		u, ok := t.(Unwrapper)
		if !ok {
			return nil, false
		}
		t = u.Unwrap()
	}
}

package torus

// Dynamic-routing support (§III-C). The paper's congestion refinement
// assumes static routing; its closing remark sketches the extension:
// "For the networks with dynamic routing, an approximate refinement
// algorithm with a similar structure can be used" (citing the Blue
// Gene/P and /Q torus networks). This file models such a network: an
// adaptively routed torus spreads every message uniformly over its
// minimal dimension-ordered routes instead of committing to the fixed
// X-then-Y-then-Z order. A packet correcting offsets in d dimensions
// then has d! equally likely routes, and a link's load becomes an
// expectation over route choices.
//
// This is an approximation of true adaptive routing (which also
// interleaves steps of different dimensions mid-route), but it
// captures the property the refinement needs: congestion spreads over
// the minimal-path diversity between each node pair, so hot links are
// an expectation rather than a certainty.

// MultipathTopology is a Topology that can enumerate the minimal
// routes an adaptively routed network may pick between two nodes.
type MultipathTopology interface {
	Topology
	// ForEachMinimalRoute invokes fn once per distinct minimal route
	// from a to b and returns the number of routes. The route slice
	// is reused between invocations; callers must not retain it. For
	// a == b it returns 0 without calling fn.
	ForEachMinimalRoute(a, b int, fn func(route []int32)) int
	// NumMinimalRoutes returns the route count without enumerating.
	// For a torus it is d! for d dimensions with a nonzero minimal
	// offset.
	NumMinimalRoutes(a, b int) int
	// RouteScale returns a fixed-point denominator divisible by every
	// route count the topology can produce, so mult = RouteScale/P is
	// always integral (a torus returns ndims!, capped structure keeps
	// it small).
	RouteScale() int64
}

// RouteScale is the fixed-point denominator for integer expected-load
// accounting on a torus: RouteScale/P is integral for every possible
// route count P = d! with d <= 6 dimensions (720 = 6!).
const RouteScale = 720

// RouteScale returns ndims! — every route count d! with d <= ndims
// divides it.
func (t *Torus) RouteScale() int64 {
	f := int64(1)
	for i := 2; i <= len(t.dims); i++ {
		f *= int64(i)
	}
	return f
}

// activeDims appends the dimensions in which a and b differ, i.e. the
// dimensions a minimal route must correct.
func (t *Torus) activeDims(a, b int, dst []int) []int {
	for d := range t.dims {
		if t.coordOf(a, d) != t.coordOf(b, d) {
			dst = append(dst, d)
		}
	}
	return dst
}

// NumMinimalRoutes returns d! where d is the number of dimensions
// with a nonzero offset between a and b (0 when a == b).
func (t *Torus) NumMinimalRoutes(a, b int) int {
	if a == b {
		return 0
	}
	n := 1
	cnt := 0
	for d := range t.dims {
		if t.coordOf(a, d) != t.coordOf(b, d) {
			cnt++
			n *= cnt
		}
	}
	return n
}

// routeDim appends the links correcting dimension d from cur to b's
// coordinate (shorter wrap side, positive on ties — the same
// deterministic choice Route makes) and returns the node reached.
func (t *Torus) routeDim(cur, b, d int, dst []int32) (int, []int32) {
	sz := t.dims[d]
	delta := t.coordOf(b, d) - t.coordOf(cur, d)
	if delta == 0 {
		return cur, dst
	}
	var steps, dir int
	if !t.wrap {
		steps, dir = delta, 0
		if delta < 0 {
			steps, dir = -delta, 1
		}
	} else {
		if delta < 0 {
			delta += sz
		}
		steps, dir = delta, 0
		if rev := sz - delta; rev < delta {
			steps, dir = rev, 1
		}
	}
	for s := 0; s < steps; s++ {
		dst = append(dst, int32(t.linkID(cur, d, dir)))
		cur = t.neighbor(cur, d, dir)
	}
	return cur, dst
}

// ForEachMinimalRoute enumerates the d! dimension-ordered minimal
// routes from a to b, where d is the number of dimensions with a
// nonzero offset. Each ordering yields a distinct path (two orderings
// first diverge at some position and step along different dimensions
// from the same node there). The route buffer is reused across
// invocations of fn.
func (t *Torus) ForEachMinimalRoute(a, b int, fn func(route []int32)) int {
	if a == b {
		return 0
	}
	var dimBuf [6]int
	active := t.activeDims(a, b, dimBuf[:0])
	count := 0
	route := make([]int32, 0, t.diam)
	emit := func(order []int) {
		route = route[:0]
		cur := a
		for _, d := range order {
			cur, route = t.routeDim(cur, b, d, route)
		}
		count++
		fn(route)
	}
	permute(active, emit)
	return count
}

// permute invokes fn with every permutation of s (Heap's algorithm,
// iterative; s is mutated in place and restored only incidentally).
func permute(s []int, fn func([]int)) {
	n := len(s)
	if n == 0 {
		fn(s)
		return
	}
	c := make([]int, n)
	fn(s)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				s[0], s[i] = s[i], s[0]
			} else {
				s[c[i]], s[i] = s[i], s[c[i]]
			}
			fn(s)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

var _ MultipathTopology = (*Torus)(nil)

package torus

import "testing"

func TestMeshHopDist(t *testing.T) {
	m := NewMesh([]int{8}, []float64{1})
	// No wraparound: 0 -> 7 is 7 hops on a mesh, 1 on a torus.
	if got := m.HopDist(0, 7); got != 7 {
		t.Fatalf("mesh HopDist(0,7) = %d, want 7", got)
	}
	tor := New([]int{8}, []float64{1})
	if got := tor.HopDist(0, 7); got != 1 {
		t.Fatalf("torus HopDist(0,7) = %d, want 1", got)
	}
	if m.Diameter() != 7 || tor.Diameter() != 4 {
		t.Fatalf("diameters: mesh %d torus %d", m.Diameter(), tor.Diameter())
	}
	if m.Wraparound() || !tor.Wraparound() {
		t.Fatal("Wraparound flags wrong")
	}
}

func TestMeshRouteMatchesHopDist(t *testing.T) {
	m := NewMesh([]int{5, 4, 3}, []float64{1, 2, 3})
	var route []int32
	for a := 0; a < m.Nodes(); a += 3 {
		for b := 0; b < m.Nodes(); b++ {
			route = m.Route(a, b, route[:0])
			if len(route) != m.HopDist(a, b) {
				t.Fatalf("route(%d,%d) len %d != dist %d", a, b, len(route), m.HopDist(a, b))
			}
			// Route must be contiguous and never leave the mesh.
			cur := a
			for _, l := range route {
				from, _, _, to := m.LinkInfo(int(l))
				if from != cur || to < 0 {
					t.Fatalf("route(%d,%d) broken at link %d", a, b, l)
				}
				cur = to
			}
			if cur != b {
				t.Fatalf("route(%d,%d) ends at %d", a, b, cur)
			}
		}
	}
}

func TestMeshNeighborsAtCorner(t *testing.T) {
	m := NewMesh([]int{4, 4, 4}, []float64{1, 1, 1})
	// Corner (0,0,0) has exactly 3 neighbours on a mesh.
	nb := m.NeighborNodes(0, nil)
	if len(nb) != 3 {
		t.Fatalf("mesh corner degree = %d, want 3", len(nb))
	}
	// Interior node has 6.
	interior := m.NodeAt([]int{2, 2, 2})
	nb = m.NeighborNodes(interior, nil)
	if len(nb) != 6 {
		t.Fatalf("mesh interior degree = %d, want 6", len(nb))
	}
}

func TestMeshBFSDistMatchesHopDist(t *testing.T) {
	m := NewMesh([]int{4, 3, 2}, []float64{1, 1, 1})
	n := m.Nodes()
	for s := 0; s < n; s++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range m.NeighborNodes(v, nil) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, int(u))
				}
			}
		}
		for v := 0; v < n; v++ {
			if dist[v] != m.HopDist(s, v) {
				t.Fatalf("HopDist(%d,%d) = %d, BFS = %d", s, v, m.HopDist(s, v), dist[v])
			}
		}
	}
}

func TestMappingOnMesh(t *testing.T) {
	// The whole Topology interface must work for meshes: exercise a
	// route-heavy path (diameter corner-to-corner).
	m := NewMesh([]int{6, 6}, []float64{1, 1})
	a := m.NodeAt([]int{0, 0})
	b := m.NodeAt([]int{5, 5})
	route := m.Route(a, b, nil)
	if len(route) != 10 {
		t.Fatalf("corner-to-corner route = %d links, want 10", len(route))
	}
	if m.HopDist(a, b) != m.Diameter() {
		t.Fatalf("corner pair not at diameter: %d vs %d", m.HopDist(a, b), m.Diameter())
	}
}

package torus

import (
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	tor := New([]int{4, 3, 5}, []float64{1, 1, 1})
	if tor.Nodes() != 60 {
		t.Fatalf("Nodes = %d, want 60", tor.Nodes())
	}
	var buf []int
	for node := 0; node < tor.Nodes(); node++ {
		buf = tor.Coord(node, buf)
		if got := tor.NodeAt(buf); got != node {
			t.Fatalf("round trip %d -> %v -> %d", node, buf, got)
		}
	}
}

func TestHopDistRing(t *testing.T) {
	// 1D torus of size 8 is a ring.
	tor := New([]int{8}, []float64{1})
	want := [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 3}, {6, 2}, {7, 1}}
	for _, w := range want {
		if got := tor.HopDist(0, w[0]); got != w[1] {
			t.Fatalf("HopDist(0,%d) = %d, want %d", w[0], got, w[1])
		}
	}
	if tor.Diameter() != 4 {
		t.Fatalf("Diameter = %d, want 4", tor.Diameter())
	}
}

func TestHopDistSymmetricProperty(t *testing.T) {
	tor := New([]int{5, 4, 6}, []float64{1, 1, 1})
	prop := func(a, b uint16) bool {
		x, y := int(a)%tor.Nodes(), int(b)%tor.Nodes()
		d := tor.HopDist(x, y)
		return d == tor.HopDist(y, x) && d >= 0 && d <= tor.Diameter() &&
			(d == 0) == (x == y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistTriangleInequality(t *testing.T) {
	tor := New([]int{4, 4, 4}, []float64{1, 1, 1})
	prop := func(a, b, c uint16) bool {
		x, y, z := int(a)%64, int(b)%64, int(c)%64
		return tor.HopDist(x, z) <= tor.HopDist(x, y)+tor.HopDist(y, z)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteLengthMatchesHopDist(t *testing.T) {
	tor := New([]int{5, 3, 4}, []float64{1, 2, 3})
	var route []int32
	for a := 0; a < tor.Nodes(); a += 7 {
		for b := 0; b < tor.Nodes(); b++ {
			route = tor.Route(a, b, route[:0])
			if len(route) != tor.HopDist(a, b) {
				t.Fatalf("route(%d,%d) has %d links, HopDist=%d", a, b, len(route), tor.HopDist(a, b))
			}
		}
	}
}

func TestRouteIsContiguous(t *testing.T) {
	tor := New([]int{6, 5, 4}, []float64{1, 1, 1})
	var route []int32
	for _, pair := range [][2]int{{0, 119}, {3, 77}, {50, 2}, {119, 0}, {17, 17}} {
		route = tor.Route(pair[0], pair[1], route[:0])
		cur := pair[0]
		for _, l := range route {
			from, _, _, to := tor.LinkInfo(int(l))
			if from != cur {
				t.Fatalf("route %v: link %d starts at %d, expected %d", pair, l, from, cur)
			}
			cur = to
		}
		if cur != pair[1] {
			t.Fatalf("route %v ends at %d", pair, cur)
		}
	}
}

func TestRouteDimensionOrdered(t *testing.T) {
	tor := New([]int{8, 8, 8}, []float64{1, 1, 1})
	var route []int32
	route = tor.Route(tor.NodeAt([]int{0, 0, 0}), tor.NodeAt([]int{2, 3, 1}), route)
	lastDim := -1
	for _, l := range route {
		_, dim, _, _ := tor.LinkInfo(int(l))
		if dim < lastDim {
			t.Fatalf("route not dimension ordered: dim %d after %d", dim, lastDim)
		}
		lastDim = dim
	}
	if len(route) != 6 {
		t.Fatalf("route length = %d, want 6", len(route))
	}
}

func TestRouteWrapsAround(t *testing.T) {
	tor := New([]int{8}, []float64{1})
	var route []int32
	// 0 -> 6 should wrap backwards: 2 hops in the negative direction.
	route = tor.Route(0, 6, route)
	if len(route) != 2 {
		t.Fatalf("wrap route length = %d, want 2", len(route))
	}
	for _, l := range route {
		_, _, dir, _ := tor.LinkInfo(int(l))
		if dir != 1 {
			t.Fatal("expected negative-direction links for wrap route")
		}
	}
	// Tie at distance 4: deterministic positive direction.
	route = tor.Route(0, 4, route[:0])
	if len(route) != 4 {
		t.Fatalf("tie route length = %d, want 4", len(route))
	}
	for _, l := range route {
		_, _, dir, _ := tor.LinkInfo(int(l))
		if dir != 0 {
			t.Fatal("tie should route in positive direction")
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	tor := NewHopper3D(6, 6, 6)
	a, b := 5, 200
	r1 := tor.Route(a, b, nil)
	r2 := tor.Route(a, b, nil)
	if len(r1) != len(r2) {
		t.Fatal("routing not deterministic")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("routing not deterministic")
		}
	}
}

func TestNeighborNodes(t *testing.T) {
	tor := New([]int{4, 4, 4}, []float64{1, 1, 1})
	nb := tor.NeighborNodes(0, nil)
	if len(nb) != 6 {
		t.Fatalf("3D torus degree = %d, want 6", len(nb))
	}
	seen := map[int32]bool{}
	for _, v := range nb {
		if seen[v] {
			t.Fatalf("duplicate neighbour %d", v)
		}
		seen[v] = true
		if tor.HopDist(0, int(v)) != 1 {
			t.Fatalf("neighbour %d not at distance 1", v)
		}
	}
	// Size-2 dimension: only one distinct neighbour in that dim.
	tor2 := New([]int{2, 3}, []float64{1, 1})
	nb2 := tor2.NeighborNodes(0, nil)
	if len(nb2) != 3 {
		t.Fatalf("2x3 torus degree at 0 = %d, want 3", len(nb2))
	}
	// Size-1 dimension contributes nothing.
	tor1 := New([]int{1, 4}, []float64{1, 1})
	nb1 := tor1.NeighborNodes(0, nil)
	if len(nb1) != 2 {
		t.Fatalf("1x4 torus degree = %d, want 2", len(nb1))
	}
}

func TestLinkInfoRoundTrip(t *testing.T) {
	tor := New([]int{3, 4}, []float64{10, 20})
	for link := 0; link < tor.Links(); link++ {
		from, dim, dir, to := tor.LinkInfo(link)
		if got := tor.linkID(from, dim, dir); got != link {
			t.Fatalf("linkID round trip: %d -> %d", link, got)
		}
		if tor.dims[dim] > 1 && tor.HopDist(from, to) != 1 {
			t.Fatalf("link %d endpoints not adjacent", link)
		}
	}
}

func TestLinkBWPerDimension(t *testing.T) {
	tor := NewHopper3D(4, 4, 4)
	var route []int32
	// A pure-Y route must use the low-bandwidth links.
	a := tor.NodeAt([]int{0, 0, 0})
	b := tor.NodeAt([]int{0, 1, 0})
	route = tor.Route(a, b, route)
	if len(route) != 1 {
		t.Fatalf("expected single-hop route, got %d", len(route))
	}
	if bw := tor.LinkBW(int(route[0])); bw != HopperBWLow {
		t.Fatalf("Y link bw = %g, want %g", bw, HopperBWLow)
	}
	// A pure-X route must use the high-bandwidth links.
	c := tor.NodeAt([]int{1, 0, 0})
	route = tor.Route(a, c, route[:0])
	if bw := tor.LinkBW(int(route[0])); bw != HopperBWHigh {
		t.Fatalf("X link bw = %g, want %g", bw, HopperBWHigh)
	}
}

func TestHopDistBruteForce(t *testing.T) {
	// Compare the O(1) metric against BFS distances on the topology
	// graph for a small torus.
	tor := New([]int{4, 3, 2}, []float64{1, 1, 1})
	n := tor.Nodes()
	for s := 0; s < n; s++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range tor.NeighborNodes(v, nil) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, int(u))
				}
			}
		}
		for v := 0; v < n; v++ {
			if dist[v] != tor.HopDist(s, v) {
				t.Fatalf("HopDist(%d,%d) = %d, BFS = %d", s, v, tor.HopDist(s, v), dist[v])
			}
		}
	}
}

func TestDiameterIsAchieved(t *testing.T) {
	tor := New([]int{5, 4}, []float64{1, 1})
	maxD := 0
	for a := 0; a < tor.Nodes(); a++ {
		for b := 0; b < tor.Nodes(); b++ {
			if d := tor.HopDist(a, b); d > maxD {
				maxD = d
			}
		}
	}
	if maxD != tor.Diameter() {
		t.Fatalf("observed max dist %d != Diameter() %d", maxD, tor.Diameter())
	}
}

func TestFiveDimensionalTorus(t *testing.T) {
	// The paper's intro motivates 5D tori (BlueGene/Q style).
	tor := New([]int{4, 3, 2, 2, 3}, []float64{1, 1, 1, 1, 1})
	if tor.Nodes() != 144 {
		t.Fatalf("Nodes = %d, want 144", tor.Nodes())
	}
	var route []int32
	for a := 0; a < tor.Nodes(); a += 13 {
		for b := 0; b < tor.Nodes(); b += 7 {
			route = tor.Route(a, b, route[:0])
			if len(route) != tor.HopDist(a, b) {
				t.Fatalf("5D route(%d,%d) len %d != dist %d", a, b, len(route), tor.HopDist(a, b))
			}
		}
	}
}

package torus

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// validateRoute checks that links chain from a to b and returns the
// hop count.
func validateRoute(t *testing.T, topo *Torus, a, b int, route []int32) int {
	t.Helper()
	cur := a
	for _, l := range route {
		from, _, _, to := topo.LinkInfo(int(l))
		if from != cur {
			t.Fatalf("route link %d starts at %d, expected %d", l, from, cur)
		}
		cur = to
	}
	if cur != b {
		t.Fatalf("route ends at %d, want %d", cur, b)
	}
	return len(route)
}

func TestNumMinimalRoutesFactorial(t *testing.T) {
	topo := New([]int{4, 4, 4}, []float64{1e9, 1e9, 1e9})
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{0, 0, 0}, []int{0, 0, 0}, 0},
		{[]int{0, 0, 0}, []int{2, 0, 0}, 1},
		{[]int{0, 0, 0}, []int{1, 1, 0}, 2},
		{[]int{0, 0, 0}, []int{1, 2, 1}, 6},
		{[]int{1, 3, 2}, []int{1, 0, 2}, 1}, // wrap on y only
	}
	for _, c := range cases {
		a, b := topo.NodeAt(c.a), topo.NodeAt(c.b)
		if got := topo.NumMinimalRoutes(a, b); got != c.want {
			t.Errorf("NumMinimalRoutes(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestForEachMinimalRouteValidAndDistinct(t *testing.T) {
	topo := New([]int{4, 3, 5}, []float64{1e9, 1e9, 1e9})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Intn(topo.Nodes()), rng.Intn(topo.Nodes())
		want := topo.NumMinimalRoutes(a, b)
		seen := map[string]bool{}
		n := topo.ForEachMinimalRoute(a, b, func(route []int32) {
			if got := validateRoute(t, topo, a, b, route); got != topo.HopDist(a, b) {
				t.Fatalf("minimal route a=%d b=%d has %d links, HopDist=%d", a, b, got, topo.HopDist(a, b))
			}
			seen[fmt.Sprint(route)] = true
		})
		if n != want {
			t.Fatalf("a=%d b=%d: enumerated %d routes, NumMinimalRoutes=%d", a, b, n, want)
		}
		if a != b && len(seen) != n {
			t.Fatalf("a=%d b=%d: %d distinct routes of %d enumerated", a, b, len(seen), n)
		}
	}
}

func TestStaticRouteAmongMinimalRoutes(t *testing.T) {
	topo := NewHopper3D(4, 4, 4)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		a, b := rng.Intn(topo.Nodes()), rng.Intn(topo.Nodes())
		if a == b {
			continue
		}
		static := fmt.Sprint(topo.Route(a, b, nil))
		found := false
		topo.ForEachMinimalRoute(a, b, func(route []int32) {
			if fmt.Sprint(route) == static {
				found = true
			}
		})
		if !found {
			t.Fatalf("static route of (%d,%d) not among the minimal routes", a, b)
		}
	}
}

func TestForEachMinimalRouteMesh(t *testing.T) {
	topo := NewMesh([]int{4, 4}, []float64{1e9, 1e9})
	a, b := topo.NodeAt([]int{0, 0}), topo.NodeAt([]int{3, 3})
	n := topo.ForEachMinimalRoute(a, b, func(route []int32) {
		validateRoute(t, topo, a, b, route)
	})
	if n != 2 {
		t.Fatalf("mesh corner-to-corner: %d routes, want 2", n)
	}
}

func TestForEachMinimalRouteSamePoint(t *testing.T) {
	topo := NewHopper3D(3, 3, 3)
	called := false
	if n := topo.ForEachMinimalRoute(5, 5, func([]int32) { called = true }); n != 0 || called {
		t.Fatalf("a==b: n=%d called=%v, want 0,false", n, called)
	}
}

func TestPermuteGeneratesAll(t *testing.T) {
	for n := 0; n <= 4; n++ {
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		seen := map[string]bool{}
		calls := 0
		permute(s, func(p []int) {
			calls++
			cp := append([]int(nil), p...)
			sort.Ints(cp)
			for i := range cp {
				if cp[i] != i {
					t.Fatalf("n=%d: not a permutation: %v", n, p)
				}
			}
			seen[fmt.Sprint(p)] = true
		})
		want := factorial(n)
		if n == 0 {
			want = 1
		}
		if calls != want || len(seen) != want {
			t.Fatalf("n=%d: %d calls, %d distinct, want %d", n, calls, len(seen), want)
		}
	}
}

func TestMinimalRoutesProperty5D(t *testing.T) {
	topo := New([]int{3, 3, 3, 3, 3}, []float64{1e9, 1e9, 1e9, 1e9, 1e9})
	f := func(ai, bi uint16) bool {
		a := int(ai) % topo.Nodes()
		b := int(bi) % topo.Nodes()
		want := topo.NumMinimalRoutes(a, b)
		hops := topo.HopDist(a, b)
		ok := true
		n := topo.ForEachMinimalRoute(a, b, func(route []int32) {
			if len(route) != hops {
				ok = false
			}
			cur := a
			for _, l := range route {
				from, _, _, to := topo.LinkInfo(int(l))
				if from != cur {
					ok = false
				}
				cur = to
			}
			if cur != b {
				ok = false
			}
		})
		return ok && n == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteScaleDividesAllCounts(t *testing.T) {
	for d := 0; d <= 6; d++ {
		if p := factorial(d); p > 0 && RouteScale%p != 0 {
			t.Fatalf("RouteScale %d not divisible by %d! = %d", RouteScale, d, p)
		}
	}
}

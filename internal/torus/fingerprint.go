package torus

import "strconv"

// Fingerprinter is implemented by topologies that can describe their
// construction parameters as a short canonical string. Two topologies
// with the same fingerprint are structurally identical — same nodes,
// links, routes and bandwidths — so routing state computed against one
// is valid for the other. The engine cache keys on it; topologies that
// do not implement it fall back to a structural hash.
type Fingerprinter interface {
	// TopologyFingerprint returns the canonical construction string,
	// e.g. "torus:8x8x8;wrap;bw=9.38e+09,4.68e+09,9.38e+09".
	TopologyFingerprint() string
}

// FingerprintOf returns the canonical fingerprint of t, looking
// through view layers (route caches delegate structure to their base);
// ok is false when no layer implements Fingerprinter.
func FingerprintOf(t Topology) (string, bool) {
	for {
		if f, ok := t.(Fingerprinter); ok {
			return f.TopologyFingerprint(), true
		}
		u, ok := t.(Unwrapper)
		if !ok {
			return "", false
		}
		t = u.Unwrap()
	}
}

// TopologyFingerprint canonically describes the torus or mesh:
// dimension sizes, wraparound, and per-dimension bandwidths.
func (t *Torus) TopologyFingerprint() string {
	buf := make([]byte, 0, 64)
	if t.wrap {
		buf = append(buf, "torus:"...)
	} else {
		buf = append(buf, "mesh:"...)
	}
	for d, sz := range t.dims {
		if d > 0 {
			buf = append(buf, 'x')
		}
		buf = strconv.AppendInt(buf, int64(sz), 10)
	}
	buf = append(buf, ";bw="...)
	for d, b := range t.bw {
		if d > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendFloat(buf, b, 'g', -1, 64)
	}
	return string(buf)
}

// Package torus models the interconnection network the paper targets:
// NERSC Hopper's Cray XE6 Gemini 3D torus, generalized to any number
// of dimensions (the intro motivates 5D/6D tori as well). The model
// provides exactly what the paper's metrics and algorithms consume:
// O(1) shortest-path hop counts, static dimension-ordered shortest
// routes (Gemini routes statically along shortest paths, §II-B), per-
// dimension heterogeneous link bandwidths, and the topology graph for
// BFS traversals.
package torus

// Topology is the abstract network seen by the mapping algorithms and
// metrics. Node and link ids are dense integers.
type Topology interface {
	// Nodes returns the number of network nodes.
	Nodes() int
	// HopDist returns the shortest-path length between two nodes.
	HopDist(a, b int) int
	// Diameter returns the maximum HopDist over all node pairs.
	Diameter() int
	// NeighborNodes appends the nodes adjacent to v to dst and
	// returns it (topology-graph adjacency for BFS).
	NeighborNodes(v int, dst []int32) []int32
	// Links returns the number of directed links.
	Links() int
	// Route appends the directed link ids of the static shortest
	// route from a to b to dst and returns it. Route(a,a) is empty.
	Route(a, b int, dst []int32) []int32
	// LinkBW returns the bandwidth of a directed link in bytes/sec.
	LinkBW(link int) float64
}

// Hopper-like per-dimension Gemini link bandwidths in bytes/sec. The
// paper reports link bandwidths varying from 4.68 to 9.38 GB/s on
// Hopper; the Y dimension of Gemini has half the X/Z bandwidth.
const (
	GB            = 1e9
	HopperBWHigh  = 9.38 * GB
	HopperBWLow   = 4.68 * GB
	HopperLatNear = 1.27e-6 // seconds, nearest node pair (§II-B)
	HopperLatFar  = 3.88e-6 // seconds, farthest node pair
)

// Torus is an N-dimensional torus with wraparound links and static
// dimension-ordered routing. It implements Topology. With wraparound
// disabled (NewMesh) it models a mesh network instead — the paper's
// WH-minimizing algorithms "can be applied to various topologies"
// (§III) and this is the most common alternative.
type Torus struct {
	dims   []int
	bw     []float64 // per-dimension bandwidth
	stride []int     // stride[d] = product of dims[0..d-1]
	n      int
	diam   int
	wrap   bool
}

// New returns a torus with the given dimension sizes and per-dimension
// link bandwidths (len(bw) must equal len(dims)). Every dimension must
// be >= 1; dimensions of size 1 or 2 have no distinct wraparound.
func New(dims []int, bw []float64) *Torus {
	return build(dims, bw, true)
}

// NewMesh returns the mesh (no wraparound) counterpart of New.
func NewMesh(dims []int, bw []float64) *Torus {
	return build(dims, bw, false)
}

func build(dims []int, bw []float64, wrap bool) *Torus {
	if len(dims) == 0 || len(bw) != len(dims) {
		panic("torus: dims/bw length mismatch")
	}
	t := &Torus{
		dims:   append([]int(nil), dims...),
		bw:     append([]float64(nil), bw...),
		stride: make([]int, len(dims)),
		n:      1,
		wrap:   wrap,
	}
	for d, sz := range dims {
		if sz < 1 {
			panic("torus: dimension size < 1")
		}
		t.stride[d] = t.n
		t.n *= sz
		if wrap {
			t.diam += sz / 2
		} else {
			t.diam += sz - 1
		}
	}
	return t
}

// Wraparound reports whether the network is a torus (true) or a mesh.
func (t *Torus) Wraparound() bool { return t.wrap }

// NewHopper3D returns a 3D torus with Hopper-like heterogeneous
// bandwidths (X and Z fast, Y slow).
func NewHopper3D(x, y, z int) *Torus {
	return New([]int{x, y, z}, []float64{HopperBWHigh, HopperBWLow, HopperBWHigh})
}

// Dims returns the dimension sizes; the caller must not mutate them.
func (t *Torus) Dims() []int { return t.dims }

// NDims returns the number of torus dimensions.
func (t *Torus) NDims() int { return len(t.dims) }

// Nodes returns the number of nodes.
func (t *Torus) Nodes() int { return t.n }

// Diameter returns the network diameter (sum of per-dimension radii).
func (t *Torus) Diameter() int { return t.diam }

// Coord writes the coordinates of node into dst and returns it.
func (t *Torus) Coord(node int, dst []int) []int {
	dst = dst[:0]
	for d := range t.dims {
		dst = append(dst, node/t.stride[d]%t.dims[d])
	}
	return dst
}

// NodeAt returns the node id at the given coordinates.
func (t *Torus) NodeAt(coord []int) int {
	id := 0
	for d, c := range coord {
		id += c * t.stride[d]
	}
	return id
}

// coordOf returns a single coordinate of node along dim.
func (t *Torus) coordOf(node, dim int) int { return node / t.stride[dim] % t.dims[dim] }

// HopDist returns the shortest-path length in O(ndims).
func (t *Torus) HopDist(a, b int) int {
	dist := 0
	for d, sz := range t.dims {
		delta := t.coordOf(b, d) - t.coordOf(a, d)
		if !t.wrap {
			if delta < 0 {
				delta = -delta
			}
			dist += delta
			continue
		}
		if delta < 0 {
			delta += sz
		}
		if rev := sz - delta; rev < delta {
			delta = rev
		}
		dist += delta
	}
	return dist
}

// Links returns the number of directed links: 2 per dimension per
// node. Dimensions of size 1 contribute degenerate self-links that no
// route ever uses.
func (t *Torus) Links() int { return t.n * 2 * len(t.dims) }

// linkID encodes the directed link leaving node along dim in
// direction dir (0 = +, 1 = -).
func (t *Torus) linkID(node, dim, dir int) int {
	return node*2*len(t.dims) + 2*dim + dir
}

// LinkInfo decodes a link id into its source node, dimension,
// direction (0 = +, 1 = -) and destination node.
func (t *Torus) LinkInfo(link int) (from, dim, dir, to int) {
	k := 2 * len(t.dims)
	from = link / k
	rem := link % k
	dim, dir = rem/2, rem%2
	to = t.neighbor(from, dim, dir)
	return from, dim, dir, to
}

// LinkBW returns the bandwidth of link (a function of its dimension).
func (t *Torus) LinkBW(link int) float64 {
	return t.bw[link%(2*len(t.dims))/2]
}

// neighbor returns node's neighbour along dim in direction dir, or -1
// when a mesh boundary blocks the step.
func (t *Torus) neighbor(node, dim, dir int) int {
	sz := t.dims[dim]
	c := t.coordOf(node, dim)
	var nc int
	if dir == 0 {
		nc = c + 1
		if nc == sz {
			if !t.wrap {
				return -1
			}
			nc = 0
		}
	} else {
		nc = c - 1
		if nc < 0 {
			if !t.wrap {
				return -1
			}
			nc = sz - 1
		}
	}
	return node + (nc-c)*t.stride[dim]
}

// NeighborNodes appends the distinct neighbours of v to dst.
func (t *Torus) NeighborNodes(v int, dst []int32) []int32 {
	for d, sz := range t.dims {
		if sz == 1 {
			continue
		}
		if p := t.neighbor(v, d, 0); p >= 0 {
			dst = append(dst, int32(p))
		}
		if sz > 2 || !t.wrap {
			if p := t.neighbor(v, d, 1); p >= 0 {
				dst = append(dst, int32(p))
			}
		}
	}
	return dst
}

// Route appends the directed links of the static dimension-ordered
// shortest route from a to b (X first, then Y, then Z, ...). For each
// dimension the shorter wrap direction is taken; exact ties go to the
// positive direction, mirroring a fixed deterministic routing table.
func (t *Torus) Route(a, b int, dst []int32) []int32 {
	cur := a
	for d := range t.dims {
		cur, dst = t.routeDim(cur, b, d, dst)
	}
	return dst
}

var _ Topology = (*Torus)(nil)

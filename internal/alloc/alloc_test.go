package alloc

import (
	"testing"

	"repro/internal/torus"
)

func testTorus() *torus.Torus { return torus.NewHopper3D(8, 8, 8) }

func TestGenerateSparse(t *testing.T) {
	tor := testTorus()
	a, err := Generate(tor, 64, Config{Mode: Sparse, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(tor); err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != 64 {
		t.Fatalf("NumNodes = %d, want 64", a.NumNodes())
	}
	if a.TotalProcs() != 64*DefaultProcsPerNode {
		t.Fatalf("TotalProcs = %d, want %d", a.TotalProcs(), 64*DefaultProcsPerNode)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tor := testTorus()
	a1, err := Generate(tor, 32, Config{Mode: Sparse, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Generate(tor, 32, Config{Mode: Sparse, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Nodes {
		if a1.Nodes[i] != a2.Nodes[i] {
			t.Fatal("same seed produced different allocations")
		}
	}
	a3, err := Generate(tor, 32, Config{Mode: Sparse, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a1.Nodes {
		if a1.Nodes[i] != a3.Nodes[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical allocations")
	}
}

func TestContiguousAllocationIsLocal(t *testing.T) {
	tor := testTorus()
	cont, err := Generate(tor, 64, Config{Mode: Contiguous, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scat, err := Generate(tor, 64, Config{Mode: Scattered, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous allocations should have a smaller mean pairwise hop
	// distance than scattered ones.
	meanDist := func(a *Allocation) float64 {
		var total, cnt float64
		for i := 0; i < a.NumNodes(); i++ {
			for j := i + 1; j < a.NumNodes(); j++ {
				total += float64(tor.HopDist(int(a.Nodes[i]), int(a.Nodes[j])))
				cnt++
			}
		}
		return total / cnt
	}
	dc, dsc := meanDist(cont), meanDist(scat)
	if dc >= dsc {
		t.Fatalf("contiguous mean dist %f >= scattered %f", dc, dsc)
	}
}

func TestSparseBetweenContiguousAndScattered(t *testing.T) {
	tor := testTorus()
	meanDist := func(a *Allocation) float64 {
		var total, cnt float64
		for i := 0; i < a.NumNodes(); i++ {
			for j := i + 1; j < a.NumNodes(); j++ {
				total += float64(tor.HopDist(int(a.Nodes[i]), int(a.Nodes[j])))
				cnt++
			}
		}
		return total / cnt
	}
	avg := func(mode Mode) float64 {
		var s float64
		for seed := int64(0); seed < 5; seed++ {
			a, err := Generate(tor, 48, Config{Mode: mode, Seed: seed, BusyFraction: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			s += meanDist(a)
		}
		return s / 5
	}
	dc, dsp, dsc := avg(Contiguous), avg(Sparse), avg(Scattered)
	if !(dc < dsp && dsp < dsc) {
		t.Fatalf("expected contiguous < sparse < scattered, got %f, %f, %f", dc, dsp, dsc)
	}
}

func TestGenerateErrors(t *testing.T) {
	tor := testTorus()
	if _, err := Generate(tor, 0, Config{}); err == nil {
		t.Fatal("want error for zero nodes")
	}
	if _, err := Generate(tor, tor.Nodes()+1, Config{}); err == nil {
		t.Fatal("want error for oversubscription")
	}
	if _, err := Generate(tor, 4, Config{BusyFraction: 1.5}); err == nil {
		t.Fatal("want error for bad busy fraction")
	}
}

func TestGenerateWholeMachine(t *testing.T) {
	tor := torus.NewHopper3D(4, 4, 4)
	// Requesting every node must succeed even in sparse mode: the
	// generator caps the busy set to keep the request satisfiable.
	a, err := Generate(tor, tor.Nodes(), Config{Mode: Sparse, Seed: 2, BusyFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != tor.Nodes() {
		t.Fatalf("NumNodes = %d, want %d", a.NumNodes(), tor.Nodes())
	}
	if err := a.Validate(tor); err != nil {
		t.Fatal(err)
	}
}

func TestMachineOrderCoversMachine(t *testing.T) {
	for _, dims := range [][]int{{8, 8, 8}, {5, 3, 7}, {4, 4}, {9}, {3, 3, 3, 2}} {
		bw := make([]float64, len(dims))
		for i := range bw {
			bw[i] = 1
		}
		tor := torus.New(dims, bw)
		order := MachineOrder(tor)
		if len(order) != tor.Nodes() {
			t.Fatalf("dims %v: order has %d entries, want %d", dims, len(order), tor.Nodes())
		}
		seen := make([]bool, tor.Nodes())
		for _, v := range order {
			if seen[v] {
				t.Fatalf("dims %v: duplicate node %d in order", dims, v)
			}
			seen[v] = true
		}
	}
}

func TestValidateCatchesBadAllocations(t *testing.T) {
	tor := testTorus()
	bad := &Allocation{Nodes: []int32{1, 1}, ProcsPerNode: []int{16, 16}}
	if bad.Validate(tor) == nil {
		t.Fatal("Validate missed duplicate node")
	}
	bad2 := &Allocation{Nodes: []int32{99999}, ProcsPerNode: []int{16}}
	if bad2.Validate(tor) == nil {
		t.Fatal("Validate missed out-of-range node")
	}
	bad3 := &Allocation{Nodes: []int32{1}, ProcsPerNode: []int{0}}
	if bad3.Validate(tor) == nil {
		t.Fatal("Validate missed zero capacity")
	}
	bad4 := &Allocation{Nodes: []int32{1, 2}, ProcsPerNode: []int{16}}
	if bad4.Validate(tor) == nil {
		t.Fatal("Validate missed length mismatch")
	}
}

func TestSparseIDsProperties(t *testing.T) {
	ids, err := SparseIDs(100, 30, 7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 30 {
		t.Fatalf("%d ids", len(ids))
	}
	seen := map[int32]bool{}
	for _, id := range ids {
		if id < 0 || id >= 100 || seen[id] {
			t.Fatalf("bad id %d", id)
		}
		seen[id] = true
	}
	// Deterministic per seed.
	again, err := SparseIDs(100, 30, 7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestSparseIDsContiguousWhenNotBusy(t *testing.T) {
	ids, err := SparseIDs(50, 10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != (ids[i-1]+1)%50 {
			t.Fatalf("busyFraction=0 not contiguous: %v", ids)
		}
	}
}

func TestSparseIDsErrors(t *testing.T) {
	if _, err := SparseIDs(10, 0, 1, 0.5); err == nil {
		t.Error("want=0 accepted")
	}
	if _, err := SparseIDs(10, 11, 1, 0.5); err == nil {
		t.Error("want>total accepted")
	}
	if _, err := SparseIDs(10, 5, 1, 1.0); err == nil {
		t.Error("busyFraction=1 accepted")
	}
	if _, err := SparseIDs(10, 10, 1, 0.9); err != nil {
		t.Errorf("full-machine request rejected: %v", err)
	}
}

// Package alloc models how a batch scheduler hands nodes to a job.
// On Cray systems the scheduler allocates a non-contiguous set of
// nodes; it attempts to assign nearby nodes (walking a linear ordering
// of the machine) but provides no locality guarantee because other
// jobs occupy parts of the machine (paper §II-B, Albing et al.). The
// generator reproduces that: it orders the torus along a space-filling
// curve, marks a random fraction of the machine as busy, and collects
// the first free nodes from a random starting offset.
package alloc

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sfc"
	"repro/internal/torus"
)

// Allocation is the node set Va reserved for the application, in
// allocation order (the order the scheduler assigned them, which the
// DEF mapping follows). ProcsPerNode holds the computation capacity
// w(m) of each allocated node. Speeds optionally holds per-node speed
// factors for heterogeneous machines (a node with speed s finishes a
// compute load L in L/s time units); nil means every node runs at
// unit speed — the homogeneous setting of the paper.
type Allocation struct {
	Nodes        []int32
	ProcsPerNode []int
	Speeds       []float64
}

// NumNodes returns |Va|.
func (a *Allocation) NumNodes() int { return len(a.Nodes) }

// Speed returns the speed factor of the i-th allocated node,
// defaulting to 1 when Speeds is nil.
func (a *Allocation) Speed(i int) float64 {
	if a.Speeds == nil {
		return 1
	}
	return a.Speeds[i]
}

// UnitSpeeds reports whether the allocation is homogeneous: no speed
// vector, or one where every factor is exactly 1.
func (a *Allocation) UnitSpeeds() bool {
	for _, s := range a.Speeds {
		if s != 1 {
			return false
		}
	}
	return true
}

// CanonicalizeSpeeds drops an all-unit speed vector, so a
// heterogeneous spec that spells out the homogeneous default
// fingerprints — and therefore caches and solves — identically to one
// that omits it.
func (a *Allocation) CanonicalizeSpeeds() {
	if a.Speeds != nil && a.UnitSpeeds() {
		a.Speeds = nil
	}
}

// TotalProcs returns the total number of allocated processors.
func (a *Allocation) TotalProcs() int {
	total := 0
	for _, p := range a.ProcsPerNode {
		total += p
	}
	return total
}

// Validate checks the allocation against a topology.
func (a *Allocation) Validate(topo torus.Topology) error {
	if len(a.Nodes) != len(a.ProcsPerNode) {
		return fmt.Errorf("alloc: %d nodes but %d capacities", len(a.Nodes), len(a.ProcsPerNode))
	}
	seen := make(map[int32]bool, len(a.Nodes))
	for i, m := range a.Nodes {
		if m < 0 || int(m) >= topo.Nodes() {
			return fmt.Errorf("alloc: node %d out of range", m)
		}
		if seen[m] {
			return fmt.Errorf("alloc: duplicate node %d", m)
		}
		seen[m] = true
		if a.ProcsPerNode[i] <= 0 {
			return fmt.Errorf("alloc: node %d has capacity %d", m, a.ProcsPerNode[i])
		}
	}
	if a.Speeds != nil {
		if len(a.Speeds) != len(a.Nodes) {
			return fmt.Errorf("alloc: %d nodes but %d speeds", len(a.Nodes), len(a.Speeds))
		}
		for i, s := range a.Speeds {
			if !(s > 0) || math.IsInf(s, 1) {
				return fmt.Errorf("alloc: node %d has speed %g (need a positive finite factor)", a.Nodes[i], s)
			}
		}
	}
	return nil
}

// Mode selects the allocation policy.
type Mode int

// Allocation policies.
const (
	// Sparse walks the machine in SFC order with a random busy
	// fraction, yielding the non-contiguous locality-biased
	// allocations of Cray schedulers. This is the paper's setting.
	Sparse Mode = iota
	// Contiguous takes consecutive nodes in SFC order (BlueGene-like
	// block allocation).
	Contiguous
	// Scattered draws nodes uniformly at random (worst case).
	Scattered
)

// Config controls allocation generation.
type Config struct {
	Mode Mode
	// BusyFraction is the fraction of the machine occupied by other
	// jobs (Sparse mode only). Default 0.5.
	BusyFraction float64
	// ProcsPerNode is the uniform node capacity. Default 16 (paper
	// §IV-B uses 16 of Hopper's 24 cores per node).
	ProcsPerNode int
	// Seed makes the allocation deterministic.
	Seed int64
}

// DefaultProcsPerNode matches the paper's 16 processors per node.
const DefaultProcsPerNode = 16

// Generate reserves want nodes on a 3D (or higher-D) torus. For tori
// with more than three dimensions the SFC order degenerates to the
// first three dimensions by treating the rest row-major.
func Generate(t *torus.Torus, want int, cfg Config) (*Allocation, error) {
	if want <= 0 {
		return nil, fmt.Errorf("alloc: want %d nodes", want)
	}
	if want > t.Nodes() {
		return nil, fmt.Errorf("alloc: want %d nodes, machine has %d", want, t.Nodes())
	}
	if cfg.ProcsPerNode == 0 {
		cfg.ProcsPerNode = DefaultProcsPerNode
	}
	if cfg.BusyFraction == 0 {
		cfg.BusyFraction = 0.5
	}
	if cfg.BusyFraction < 0 || cfg.BusyFraction >= 1 {
		return nil, fmt.Errorf("alloc: busy fraction %g out of [0,1)", cfg.BusyFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := MachineOrder(t)

	var nodes []int32
	switch cfg.Mode {
	case Contiguous:
		start := rng.Intn(t.Nodes())
		for i := 0; i < want; i++ {
			nodes = append(nodes, order[(start+i)%len(order)])
		}
	case Scattered:
		perm := rng.Perm(t.Nodes())
		for i := 0; i < want; i++ {
			nodes = append(nodes, int32(perm[i]))
		}
	case Sparse:
		// Occupy a random busy fraction, but never so much that the
		// request cannot be satisfied.
		free := t.Nodes()
		busyTarget := int(cfg.BusyFraction * float64(t.Nodes()))
		if free-busyTarget < want {
			busyTarget = free - want
		}
		busy := make([]bool, t.Nodes())
		for _, v := range rng.Perm(t.Nodes())[:busyTarget] {
			busy[v] = true
		}
		start := rng.Intn(len(order))
		for i := 0; len(nodes) < want && i < len(order); i++ {
			m := order[(start+i)%len(order)]
			if !busy[m] {
				nodes = append(nodes, m)
			}
		}
	default:
		return nil, fmt.Errorf("alloc: unknown mode %d", cfg.Mode)
	}
	if len(nodes) != want {
		return nil, fmt.Errorf("alloc: produced %d of %d nodes", len(nodes), want)
	}
	procs := make([]int, want)
	for i := range procs {
		procs[i] = cfg.ProcsPerNode
	}
	return &Allocation{Nodes: nodes, ProcsPerNode: procs}, nil
}

// SparseIDs reserves want ids out of [0,total) the way a busy
// scheduler does on any machine with a linear locality order: a
// seeded busyFraction of the ids is occupied and the first want free
// ids after a random offset are taken — non-contiguous but locality
// biased. busyFraction 0 yields a contiguous block. The indirect
// topologies (fat tree, dragonfly) use it with their host-id order,
// which follows the physical racks.
func SparseIDs(total, want int, seed int64, busyFraction float64) ([]int32, error) {
	if want <= 0 || want > total {
		return nil, fmt.Errorf("alloc: want %d of %d ids", want, total)
	}
	if busyFraction < 0 || busyFraction >= 1 {
		return nil, fmt.Errorf("alloc: busy fraction %g out of [0,1)", busyFraction)
	}
	rng := rand.New(rand.NewSource(seed))
	busy := make([]bool, total)
	busyTarget := int(busyFraction * float64(total))
	if total-busyTarget < want {
		busyTarget = total - want
	}
	for _, v := range rng.Perm(total)[:busyTarget] {
		busy[v] = true
	}
	start := rng.Intn(total)
	ids := make([]int32, 0, want)
	for i := 0; len(ids) < want && i < total; i++ {
		id := (start + i) % total
		if !busy[id] {
			ids = append(ids, int32(id))
		}
	}
	if len(ids) != want {
		return nil, fmt.Errorf("alloc: produced %d of %d ids", len(ids), want)
	}
	return ids, nil
}

// MachineOrder returns the nodes of the torus in the scheduler's
// linear (space-filling curve) order.
func MachineOrder(t *torus.Torus) []int32 {
	dims := t.Dims()
	switch {
	case len(dims) >= 3:
		x, y, z := dims[0], dims[1], dims[2]
		rest := 1
		for _, d := range dims[3:] {
			rest *= d
		}
		base := sfc.BoxOrder(sfc.OrderHilbert, x, y, z)
		if rest == 1 {
			return base
		}
		out := make([]int32, 0, t.Nodes())
		for r := 0; r < rest; r++ {
			offset := int32(r * x * y * z)
			for _, v := range base {
				out = append(out, v+offset)
			}
		}
		return out
	case len(dims) == 2:
		return sfc.BoxOrder(sfc.OrderHilbert, dims[0], dims[1], 1)
	default:
		return sfc.BoxOrder(sfc.OrderRowMajor, dims[0], 1, 1)
	}
}

package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

// fixture returns a Hopper-like torus and a sparse allocation of n
// nodes.
func fixture(t *testing.T, n int, seed int64) (*torus.Torus, *alloc.Allocation) {
	t.Helper()
	topo := torus.NewHopper3D(8, 8, 8)
	a, err := alloc.Generate(topo, n, alloc.Config{Mode: alloc.Sparse, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return topo, a
}

func checkValidMapping(t *testing.T, g *graph.Graph, a *alloc.Allocation, nodeOf []int32) {
	t.Helper()
	if len(nodeOf) != g.N() {
		t.Fatalf("mapping length %d, want %d", len(nodeOf), g.N())
	}
	allocated := map[int32]bool{}
	for _, m := range a.Nodes {
		allocated[m] = true
	}
	used := map[int32]bool{}
	for tk, m := range nodeOf {
		if !allocated[m] {
			t.Fatalf("task %d mapped to unallocated node %d", tk, m)
		}
		if used[m] {
			t.Fatalf("node %d hosts two tasks", m)
		}
		used[m] = true
	}
}

func wh(g *graph.Graph, topo torus.Topology, nodeOf []int32) int64 {
	return objectiveValue(g, topo, nodeOf, WeightedHops)
}

func TestGreedyProducesValidMapping(t *testing.T) {
	topo, a := fixture(t, 32, 1)
	g := graph.RandomConnected(32, 64, 50, 2)
	for _, nbfs := range []int{0, 1, 2} {
		nodeOf := Greedy(g, topo, a.Nodes, GreedyOptions{NBFS: nbfs})
		checkValidMapping(t, g, a, nodeOf)
	}
}

func TestGreedyBeatsRandomPlacement(t *testing.T) {
	topo, a := fixture(t, 48, 3)
	g := graph.RandomConnected(48, 120, 30, 4)
	greedy := GreedyBest(g, topo, a.Nodes, WeightedHops)
	checkValidMapping(t, g, a, greedy)
	// Random (identity-order) placement baseline.
	random := make([]int32, g.N())
	copy(random, a.Nodes[:g.N()])
	if wh(g, topo, greedy) >= wh(g, topo, random) {
		t.Fatalf("greedy WH %d not better than naive %d", wh(g, topo, greedy), wh(g, topo, random))
	}
}

func TestGreedyPlacesCliquesTogether(t *testing.T) {
	// Two 4-cliques joined by a single light edge must land in two
	// tight groups: heavy intra-clique edges get dilation <= light
	// inter-clique one.
	var us, vs []int32
	var ws []int64
	addClique := func(base int32) {
		for i := int32(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				us = append(us, base+i, base+j)
				vs = append(vs, base+j, base+i)
				ws = append(ws, 100, 100)
			}
		}
	}
	addClique(0)
	addClique(4)
	us = append(us, 0, 4)
	vs = append(vs, 4, 0)
	ws = append(ws, 1, 1)
	g := graph.FromEdges(8, us, vs, ws, nil)

	topo, a := fixture(t, 8, 5)
	nodeOf := GreedyBest(g, topo, a.Nodes, WeightedHops)
	checkValidMapping(t, g, a, nodeOf)
	// Average intra-clique hop distance must not exceed the overall
	// average pair distance of the allocation.
	var intra, intraCnt float64
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			intra += float64(topo.HopDist(int(nodeOf[i]), int(nodeOf[j])))
			intra += float64(topo.HopDist(int(nodeOf[i+4]), int(nodeOf[j+4])))
			intraCnt += 2
		}
	}
	var all, allCnt float64
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			all += float64(topo.HopDist(int(nodeOf[i]), int(nodeOf[j])))
			allCnt++
		}
	}
	if intra/intraCnt > all/allCnt {
		t.Fatalf("cliques scattered: intra mean %f > overall mean %f", intra/intraCnt, all/allCnt)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	topo, a := fixture(t, 24, 7)
	g := graph.RandomConnected(24, 48, 9, 8)
	m1 := Greedy(g, topo, a.Nodes, GreedyOptions{})
	m2 := Greedy(g, topo, a.Nodes, GreedyOptions{})
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("greedy not deterministic")
		}
	}
}

func TestGreedyDisconnectedComponents(t *testing.T) {
	// Two disjoint rings; all tasks must still be mapped.
	r := graph.Ring(8)
	var us, vs []int32
	var ws []int64
	for u := 0; u < 8; u++ {
		for i := r.Xadj[u]; i < r.Xadj[u+1]; i++ {
			us = append(us, int32(u), int32(u+8))
			vs = append(vs, r.Adj[i], r.Adj[i]+8)
			ws = append(ws, 1, 1)
		}
	}
	g := graph.FromEdges(16, us, vs, ws, nil)
	topo, a := fixture(t, 16, 9)
	for _, nbfs := range []int{0, 1} {
		nodeOf := Greedy(g, topo, a.Nodes, GreedyOptions{NBFS: nbfs})
		checkValidMapping(t, g, a, nodeOf)
	}
}

func TestGreedyMoreAllocThanTasks(t *testing.T) {
	topo, a := fixture(t, 30, 11)
	g := graph.RandomConnected(12, 24, 5, 12)
	nodeOf := Greedy(g, topo, a.Nodes, GreedyOptions{})
	checkValidMapping(t, g, a, nodeOf)
}

func TestRefineWHNeverWorsens(t *testing.T) {
	topo, a := fixture(t, 40, 13)
	g := graph.RandomConnected(40, 100, 20, 14)
	nodeOf := DEFLike(a, g.N())
	before := wh(g, topo, nodeOf)
	gain := RefineWH(g, topo, a.Nodes, nodeOf, RefineOptions{})
	after := wh(g, topo, nodeOf)
	checkValidMapping(t, g, a, nodeOf)
	if after > before {
		t.Fatalf("refinement worsened WH: %d -> %d", before, after)
	}
	if before-after != gain {
		t.Fatalf("gain accounting: before %d after %d reported %d", before, after, gain)
	}
}

// DEFLike maps task i to the i-th allocated node (test helper).
func DEFLike(a *alloc.Allocation, n int) []int32 {
	nodeOf := make([]int32, n)
	copy(nodeOf, a.Nodes[:n])
	return nodeOf
}

func TestRefineWHImprovesBadMapping(t *testing.T) {
	// Adversarial start: reverse the allocation order for a path task
	// graph, then check a real improvement happens.
	topo, a := fixture(t, 32, 15)
	var us, vs []int32
	var ws []int64
	for i := 0; i < 31; i++ {
		us = append(us, int32(i), int32(i+1))
		vs = append(vs, int32(i+1), int32(i))
		ws = append(ws, 10, 10)
	}
	g := graph.FromEdges(32, us, vs, ws, nil)
	nodeOf := make([]int32, 32)
	for i := range nodeOf {
		nodeOf[i] = a.Nodes[(i*17)%32] // scrambled placement
	}
	before := wh(g, topo, nodeOf)
	RefineWH(g, topo, a.Nodes, nodeOf, RefineOptions{})
	after := wh(g, topo, nodeOf)
	if after >= before {
		t.Fatalf("no improvement on scrambled path: %d -> %d", before, after)
	}
}

func TestRefineWHDeltaExact(t *testing.T) {
	// The incremental swap delta must equal the recomputed difference.
	topo, a := fixture(t, 16, 17)
	g := graph.RandomConnected(16, 40, 7, 18)
	nodeOf := DEFLike(a, 16)
	before := wh(g, topo, nodeOf)
	// Swap two tasks manually and compare to objectiveValue.
	nodeOf[3], nodeOf[11] = nodeOf[11], nodeOf[3]
	after := wh(g, topo, nodeOf)
	if before == after {
		t.Skip("degenerate swap, pick other fixture")
	}
	// The refinement must find this reverse swap if it improves.
	if after > before {
		RefineWH(g, topo, a.Nodes, nodeOf, RefineOptions{Delta: 16})
		final := wh(g, topo, nodeOf)
		if final > after {
			t.Fatalf("refinement worsened: %d -> %d", after, final)
		}
	}
}

func TestRefineCongestionLowersMC(t *testing.T) {
	topo, a := fixture(t, 40, 19)
	g := graph.RandomConnected(40, 120, 40, 20)
	nodeOf := DEFLike(a, 40)
	pl := func(m []int32) *metrics.Placement { return &metrics.Placement{NodeOf: m} }
	before := metrics.Compute(g, topo, pl(nodeOf))
	swaps := RefineCongestion(g, topo, a.Nodes, nodeOf, VolumeCongestion, RefineOptions{})
	after := metrics.Compute(g, topo, pl(nodeOf))
	checkValidMapping(t, g, a, nodeOf)
	if after.MC > before.MC*1.0000001 {
		t.Fatalf("MC refinement raised MC: %f -> %f (%d swaps)", before.MC, after.MC, swaps)
	}
	if swaps > 0 && after.MC >= before.MC {
		// Accepted swaps must strictly improve (MC, AC) lexicographically;
		// equal MC is fine only with lower AC.
		if after.MC == before.MC && after.AC >= before.AC {
			t.Fatalf("swaps accepted but neither MC nor AC improved")
		}
	}
}

// unitView returns a copy of g with all edge weights set to one (a
// message-count view where every edge is a single message).
func unitView(g *graph.Graph) *graph.Graph {
	c := g.Clone()
	c.EW = make([]int64, g.M())
	for i := range c.EW {
		c.EW[i] = 1
	}
	return c
}

func TestRefineCongestionMMCVariant(t *testing.T) {
	topo, a := fixture(t, 32, 21)
	g := graph.RandomConnected(32, 90, 25, 22)
	nodeOf := DEFLike(a, 32)
	before := metrics.Compute(g, topo, &metrics.Placement{NodeOf: nodeOf})
	RefineCongestion(unitView(g), topo, a.Nodes, nodeOf, MessageCongestion, RefineOptions{})
	after := metrics.Compute(g, topo, &metrics.Placement{NodeOf: nodeOf})
	checkValidMapping(t, g, a, nodeOf)
	if after.MMC > before.MMC {
		t.Fatalf("MMC refinement raised MMC: %d -> %d", before.MMC, after.MMC)
	}
}

func TestCongStateLoadsMatchMetrics(t *testing.T) {
	// The congestion state's max key must order links exactly like the
	// metrics package's MC computation.
	topo, a := fixture(t, 24, 23)
	g := graph.RandomConnected(24, 60, 15, 24)
	nodeOf := DEFLike(a, 24)
	st := newMapState(g, topo, a.Nodes, nil)
	for i, m := range nodeOf {
		st.place(int32(i), m)
	}
	cs := newCongState(g, topo, st, VolumeCongestion, nil)
	m := metrics.Compute(g, topo, &metrics.Placement{NodeOf: nodeOf})
	// Find the max-congestion link from the raw loads.
	var maxVC float64
	for l := 0; l < topo.Links(); l++ {
		vc := float64(cs.load[l]) / topo.LinkBW(l)
		if vc > maxVC {
			maxVC = vc
		}
	}
	if diff := maxVC - m.MC; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("congState max VC %g != metrics MC %g", maxVC, m.MC)
	}
	if cs.usedLinks != m.UsedLinks {
		t.Fatalf("usedLinks %d != metrics %d", cs.usedLinks, m.UsedLinks)
	}
}

func TestCongStateDeltasExact(t *testing.T) {
	// Apply deltas for a swap, commit it, and verify loads equal a
	// freshly built state.
	topo, a := fixture(t, 20, 25)
	g := graph.RandomConnected(20, 50, 12, 26)
	nodeOf := DEFLike(a, 20)
	st := newMapState(g, topo, a.Nodes, nil)
	for i, m := range nodeOf {
		st.place(int32(i), m)
	}
	cs := newCongState(g, topo, st, VolumeCongestion, nil)
	aT, bT := int32(2), int32(9)
	cs.collectSwapDeltas(aT, bT)
	cs.applyDeltas(1)
	cs.commitSwap(aT, bT)

	// Fresh state from the new mapping.
	st2 := newMapState(g, topo, a.Nodes, nil)
	for i := 0; i < g.N(); i++ {
		st2.place(int32(i), cs.st.nodeOf[i])
	}
	cs2 := newCongState(g, topo, st2, VolumeCongestion, nil)
	for l := 0; l < topo.Links(); l++ {
		if cs.load[l] != cs2.load[l] {
			t.Fatalf("link %d load %d != fresh %d", l, cs.load[l], cs2.load[l])
		}
		if cs.linkEdges[l].Len() != cs2.linkEdges[l].Len() {
			t.Fatalf("link %d edge set size %d != fresh %d", l, cs.linkEdges[l].Len(), cs2.linkEdges[l].Len())
		}
	}
	if cs.usedLinks != cs2.usedLinks || cs.sumKeys != cs2.sumKeys {
		t.Fatalf("aggregates diverge: used %d/%d sum %d/%d", cs.usedLinks, cs2.usedLinks, cs.sumKeys, cs2.sumKeys)
	}
}

func TestCongStateApplyRevert(t *testing.T) {
	topo, a := fixture(t, 20, 27)
	g := graph.RandomConnected(20, 50, 12, 28)
	st := newMapState(g, topo, a.Nodes, nil)
	for i := 0; i < g.N(); i++ {
		st.place(int32(i), a.Nodes[i])
	}
	cs := newCongState(g, topo, st, VolumeCongestion, nil)
	loads := append([]int64(nil), cs.load...)
	sum, used := cs.sumKeys, cs.usedLinks
	cs.collectSwapDeltas(1, 14)
	cs.applyDeltas(1)
	cs.applyDeltas(-1)
	for l := range loads {
		if cs.load[l] != loads[l] {
			t.Fatalf("revert failed at link %d: %d != %d", l, cs.load[l], loads[l])
		}
	}
	if cs.sumKeys != sum || cs.usedLinks != used {
		t.Fatalf("aggregates not reverted: sum %d/%d used %d/%d", cs.sumKeys, sum, cs.usedLinks, used)
	}
}

func TestVariantPipelines(t *testing.T) {
	topo, a := fixture(t, 36, 29)
	g := graph.RandomConnected(36, 100, 30, 30)
	ug := MapUG(g, topo, a.Nodes)
	uwh := MapUWH(g, topo, a.Nodes)
	umc := MapUMC(g, topo, a.Nodes)
	ummc := MapUMMC(g, unitView(g), topo, a.Nodes)
	uth := MapUTH(g, topo, a.Nodes)
	for name, m := range map[string][]int32{"UG": ug, "UWH": uwh, "UMC": umc, "UMMC": ummc, "UTH": uth} {
		checkValidMapping(t, g, a, m)
		_ = name
	}
	// UWH must not be worse than UG on WH.
	if wh(g, topo, uwh) > wh(g, topo, ug) {
		t.Fatalf("UWH WH %d worse than UG %d", wh(g, topo, uwh), wh(g, topo, ug))
	}
	// UMC must not be worse than UG on MC.
	mUG := metrics.Compute(g, topo, &metrics.Placement{NodeOf: ug})
	mUMC := metrics.Compute(g, topo, &metrics.Placement{NodeOf: umc})
	if mUMC.MC > mUG.MC*1.0000001 {
		t.Fatalf("UMC MC %f worse than UG %f", mUMC.MC, mUG.MC)
	}
	mUMMC := metrics.Compute(g, topo, &metrics.Placement{NodeOf: ummc})
	if mUMMC.MMC > mUG.MMC {
		t.Fatalf("UMMC MMC %d worse than UG %d", mUMMC.MMC, mUG.MMC)
	}
}

func TestObjectiveValueTH(t *testing.T) {
	topo, a := fixture(t, 8, 31)
	g := graph.Ring(8)
	nodeOf := DEFLike(a, 8)
	th := objectiveValue(g, topo, nodeOf, TotalHops)
	whv := objectiveValue(g, topo, nodeOf, WeightedHops)
	// Unit weights: TH == WH.
	if th != whv {
		t.Fatalf("unit-weight TH %d != WH %d", th, whv)
	}
}

func TestGreedyPanicsOnTooFewNodes(t *testing.T) {
	topo, a := fixture(t, 4, 33)
	g := graph.Ring(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with fewer nodes than tasks")
		}
	}()
	Greedy(g, topo, a.Nodes, GreedyOptions{})
}

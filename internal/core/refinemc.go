package core

import (
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/torus"
)

// CongestionKind selects which congestion Algorithm 3 minimizes.
type CongestionKind int

// Congestion kinds.
const (
	// VolumeCongestion refines MC: per-link volume divided by link
	// bandwidth (the paper's primary variant). Edge weights are
	// communication volumes.
	VolumeCongestion CongestionKind = iota
	// MessageCongestion refines MMC: messages per link, ignoring
	// bandwidth ("adapting this algorithm to refine MMC is trivial",
	// §III-C). Edge weights are message multiplicities — pass a
	// message-count-weighted graph (taskgraph.CoarseMessageGraph) for
	// coarse supertask graphs, or a unit-weight graph when every edge
	// is one message.
	MessageCongestion
)

// congState carries the link-load bookkeeping of Algorithm 3: exact
// per-link loads under static routing, a max-heap of scaled
// congestion keys, and the commTasks structure mapping each link to
// the directed task-graph edges routed through it.
type congState struct {
	g    *graph.Graph
	topo torus.Topology
	st   *mapState
	kind CongestionKind

	// multipath enables the §III-C dynamic-routing approximation:
	// when non-nil, loads are expectations over all minimal
	// dimension-ordered routes (fixed point in units of 1/RouteScale)
	// instead of exact loads on the single static route.
	multipath torus.MultipathTopology

	scale     []int64 // per link: congestion = load*scale (fixed point 1/bw)
	load      []int64 // per link: volume (or message count)
	congHeap  *ds.IndexedMaxHeap
	linkEdges []ds.IntSet // per link: directed edge ids crossing it
	edgeOwner []int32     // directed edge id -> source task
	sumKeys   int64       // sum of keys over used links
	usedLinks int

	routeBuf []int32
	deltaL   []int64 // scratch: per-link load delta
	touched  []int32 // links touched by the current delta collection
	linkSeen []int32 // per-link generation stamp (dedupes touched)
	linkGen  int32
	edgeSeen []int32 // per-edge generation stamp
	edgeGen  int32
	revEdge  []int32 // directed edge id -> id of the reverse edge

	// Pre-bound route-link visitors. forEachRouteLink runs per edge in
	// the innermost loops of every swap evaluation; handing it a fresh
	// closure there allocates once per edge and dominated the solve's
	// garbage. These two are built once per congState and parameterized
	// through curW / curEdge.
	deltaFn func(l int32, mult int64) // addDelta(l, curW*mult)
	addFn   func(l int32, mult int64) // linkEdges[l].Add(curEdge)
	delFn   func(l int32, mult int64) // linkEdges[l].Delete(curEdge)
	curW    int64
	curEdge int
}

func newCongState(g *graph.Graph, topo torus.Topology, st *mapState, kind CongestionKind, multipath torus.MultipathTopology) *congState {
	ar := st.ex.arenaOf()
	cs := &congState{
		g:         g,
		topo:      topo,
		st:        st,
		kind:      kind,
		multipath: multipath,
		scale:     ar.Int64s(topo.Links()),
		load:      ar.Int64s(topo.Links()),
		congHeap:  ar.MaxHeap(topo.Links()),
		linkEdges: make([]ds.IntSet, topo.Links()),
		edgeOwner: ar.Int32s(g.M()),
		deltaL:    ar.Int64s(topo.Links()),
		linkSeen:  ar.Int32s(topo.Links()),
		edgeSeen:  ar.Int32s(g.M()),
		revEdge:   ar.Int32s(g.M()),
	}
	cs.deltaFn = func(l int32, mult int64) { cs.addDelta(l, cs.curW*mult) }
	cs.addFn = func(l int32, _ int64) { cs.linkEdges[l].Add(cs.curEdge) }
	cs.delFn = func(l int32, _ int64) { cs.linkEdges[l].Delete(cs.curEdge) }
	// Fixed-point congestion scale: proportional to 1/bw, normalized
	// so the fastest link gets 1024. Message congestion ignores
	// bandwidth (unit links).
	maxBW := 0.0
	for l := 0; l < topo.Links(); l++ {
		if bw := topo.LinkBW(l); bw > maxBW {
			maxBW = bw
		}
	}
	for l := 0; l < topo.Links(); l++ {
		if kind == MessageCongestion {
			cs.scale[l] = 1
		} else {
			cs.scale[l] = int64(1024 * maxBW / topo.LinkBW(l))
		}
	}
	for v := 0; v < g.N(); v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			cs.edgeOwner[i] = int32(v)
		}
	}
	// Reverse-edge ids: the symmetric graph stores (u,v) and (v,u);
	// adjacency lists are sorted, so the reverse is found by binary
	// search.
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			v := g.Adj[i]
			lo, hi := g.Xadj[v], g.Xadj[v+1]
			cs.revEdge[i] = -1
			for lo < hi {
				mid := (lo + hi) / 2
				if g.Adj[mid] < int32(u) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < g.Xadj[v+1] && g.Adj[lo] == int32(u) {
				cs.revEdge[i] = lo
			}
		}
	}
	// Route every directed edge and accumulate loads.
	for v := 0; v < g.N(); v++ {
		a := int(st.nodeOf[v])
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			b := int(st.nodeOf[g.Adj[i]])
			if a == b {
				continue
			}
			w := cs.edgeLoad(int(i))
			cs.forEachRouteLink(a, b, func(l int32, mult int64) {
				cs.load[l] += w * mult
				cs.linkEdges[l].Add(int(i))
			})
		}
	}
	for l := 0; l < topo.Links(); l++ {
		key := cs.load[l] * cs.scale[l]
		cs.congHeap.Push(l, key)
		if cs.load[l] > 0 {
			cs.usedLinks++
			cs.sumKeys += key
		}
	}
	return cs
}

// release returns the state's arena-backed buffers.
func (cs *congState) release() {
	ar := cs.st.ex.arenaOf()
	ar.PutInt64s(cs.scale)
	ar.PutInt64s(cs.load)
	ar.PutMaxHeap(cs.congHeap)
	ar.PutInt32s(cs.edgeOwner)
	ar.PutInt64s(cs.deltaL)
	ar.PutInt32s(cs.linkSeen)
	ar.PutInt32s(cs.edgeSeen)
	ar.PutInt32s(cs.revEdge)
	cs.scale, cs.load, cs.congHeap, cs.edgeOwner = nil, nil, nil, nil
	cs.deltaL, cs.linkSeen, cs.edgeSeen, cs.revEdge = nil, nil, nil, nil
}

// addDelta accumulates a per-link load delta, tracking touched links.
func (cs *congState) addDelta(l int32, d int64) {
	if cs.linkSeen[l] != cs.linkGen {
		cs.linkSeen[l] = cs.linkGen
		cs.touched = append(cs.touched, l)
	}
	cs.deltaL[l] += d
}

// edgeLoad is the routed load of directed edge i: its weight, read as
// a volume for MC and as a message multiplicity for MMC.
func (cs *congState) edgeLoad(i int) int64 {
	return cs.g.EdgeWeight(i)
}

// forEachRouteLink invokes fn(link, mult) for every (route, link)
// pair of a message a→b. Static routing yields the single static
// route with mult 1; the dynamic-routing approximation yields every
// minimal dimension-ordered route with mult RouteScale/P, so a link's
// accumulated load is RouteScale times its expected load. The two
// modes differ by a constant factor per mode, which comparisons never
// see. a != b must hold.
func (cs *congState) forEachRouteLink(a, b int, fn func(l int32, mult int64)) {
	cs.routeBuf = routeLinks(cs.topo, cs.multipath, a, b, cs.routeBuf, fn)
}

// routeLinks is the buffer-explicit core of forEachRouteLink, shared
// between the congState (commit path) and the concurrent swap scorers:
// each caller passes its own route buffer, so parallel scoring never
// shares mutable scratch. It returns the (possibly grown) buffer.
// Topology Route/ForEachMinimalRoute implementations use call-local
// state only, so concurrent read-only callers are safe.
func routeLinks(topo torus.Topology, multipath torus.MultipathTopology, a, b int, buf []int32, fn func(l int32, mult int64)) []int32 {
	if multipath == nil {
		buf = topo.Route(a, b, buf[:0])
		for _, l := range buf {
			fn(l, 1)
		}
		return buf
	}
	p := int64(multipath.NumMinimalRoutes(a, b))
	scale := multipath.RouteScale()
	if p <= 0 || scale%p != 0 {
		panic("core: topology RouteScale not divisible by its route count")
	}
	mult := scale / p
	multipath.ForEachMinimalRoute(a, b, func(route []int32) {
		for _, l := range route {
			fn(l, mult)
		}
	})
	return buf
}

// acNum and acDen expose AC = sumKeys/usedLinks as an exact fraction.
func (cs *congState) ac() (num, den int64) {
	if cs.usedLinks == 0 {
		return 0, 1
	}
	return cs.sumKeys, int64(cs.usedLinks)
}

// forEachSwapEdge enumerates every directed edge incident to the
// swap pair (a, b), deduplicated through the caller's generation
// marks, handing each to visit with its old and new endpoint
// placements under the hypothetical a↔b exchange. It is THE single
// copy of the swap-edge traversal: the commit path (collectSwapDeltas,
// updateEdgeSets) and the read-only scorers all route through it, so
// the scorer can never drift from what a commit would do. It reads
// only shared immutable state plus st.nodeOf; edgeSeen is the
// caller's scratch, which is what keeps concurrent scorers race-free.
func (cs *congState) forEachSwapEdge(a, b int32, edgeSeen []int32, edgeGen int32, visit func(i int32, oldA, oldB, newA, newB int32)) {
	ma, mb := cs.st.nodeOf[a], cs.st.nodeOf[b]
	newNode := func(t int32) int32 {
		switch t {
		case a:
			return mb
		case b:
			return ma
		default:
			return cs.st.nodeOf[t]
		}
	}
	handleEdge := func(i int32, src, dst int32) {
		if edgeSeen[i] == edgeGen {
			return
		}
		edgeSeen[i] = edgeGen
		visit(i, cs.st.nodeOf[src], cs.st.nodeOf[dst], newNode(src), newNode(dst))
	}
	for _, t := range [2]int32{a, b} {
		for i := cs.g.Xadj[t]; i < cs.g.Xadj[t+1]; i++ {
			u := cs.g.Adj[i]
			handleEdge(int32(i), t, u)
			if j := cs.revEdge[i]; j >= 0 {
				handleEdge(j, u, t)
			}
		}
	}
}

// collectSwapDeltas fills cs.deltaL (per-link load deltas) for
// swapping tasks a and b, without applying anything. The deltas flow
// through the pre-bound deltaFn visitor (a closure allocated here
// would be one per edge per evaluated swap).
func (cs *congState) collectSwapDeltas(a, b int32) {
	for _, l := range cs.touched {
		cs.deltaL[l] = 0
	}
	cs.touched = cs.touched[:0]
	cs.linkGen++
	cs.edgeGen++
	cs.forEachSwapEdge(a, b, cs.edgeSeen, cs.edgeGen, func(i, oldA, oldB, newA, newB int32) {
		w := cs.edgeLoad(int(i))
		if oldA != oldB {
			cs.curW = -w
			cs.forEachRouteLink(int(oldA), int(oldB), cs.deltaFn)
		}
		if newA != newB {
			cs.curW = w
			cs.forEachRouteLink(int(newA), int(newB), cs.deltaFn)
		}
	})
}

// applyDeltas pushes the collected deltas into the heap and load
// table; revert by calling again after negating (the caller uses
// apply/inspect/revert, the paper's "temporarily updating congHeap").
func (cs *congState) applyDeltas(sign int64) {
	for _, l := range cs.touched {
		dl := cs.deltaL[l]
		if dl == 0 {
			continue
		}
		oldLoad := cs.load[l]
		cs.load[l] = oldLoad + sign*dl
		key := cs.load[l] * cs.scale[l]
		cs.congHeap.Update(int(l), key)
		if oldLoad > 0 && cs.load[l] == 0 {
			cs.usedLinks--
			cs.sumKeys -= oldLoad * cs.scale[l]
		} else if oldLoad == 0 && cs.load[l] > 0 {
			cs.usedLinks++
			cs.sumKeys += key
		} else if oldLoad > 0 {
			cs.sumKeys += key - oldLoad*cs.scale[l]
		}
	}
}

// commitSwap finalizes an accepted swap: updates the commTasks edge
// sets for all edges of a and b (the loads and heap already hold the
// new state from applyDeltas).
func (cs *congState) commitSwap(a, b int32) {
	ma, mb := cs.st.nodeOf[a], cs.st.nodeOf[b]
	// Remove memberships for old routes of all incident edges (both
	// directions), then re-add for new routes — before place() flips
	// the shared nodeOf the traversal reads.
	cs.updateEdgeSets(a, b)
	cs.st.place(a, mb)
	cs.st.place(b, ma)
}

func (cs *congState) updateEdgeSets(a, b int32) {
	cs.edgeGen++
	cs.forEachSwapEdge(a, b, cs.edgeSeen, cs.edgeGen, func(i, oldA, oldB, newA, newB int32) {
		cs.curEdge = int(i)
		if oldA != oldB {
			cs.forEachRouteLink(int(oldA), int(oldB), cs.delFn)
		}
		if newA != newB {
			cs.forEachRouteLink(int(newA), int(newB), cs.addFn)
		}
	})
}

// congScore is the outcome a hypothetical swap would commit to: the
// new maximum congestion key and the new AC value as an exact
// fraction. Scores are what the deterministic commit rule compares.
type congScore struct {
	max   int64
	acNum int64
	acDen int64
}

// better reports whether the score improves on the current state —
// strictly lower maximum congestion, or equal maximum with strictly
// lower average congestion: the acceptance rule of Algorithm 3.
func (s congScore) better(curMax, curACnum, curACden int64) bool {
	return s.max < curMax || (s.max == curMax && s.acNum*curACden < curACnum*s.acDen)
}

// beats orders two candidate scores for the commit rule: lower
// maximum first, then lower AC. A tie keeps the earlier candidate, so
// selection is deterministic by candidate index.
func (s congScore) beats(o congScore) bool {
	return s.max < o.max || (s.max == o.max && s.acNum*o.acDen < o.acNum*s.acDen)
}

// congScorer evaluates one hypothetical swap read-only: it collects
// the per-link load deltas into its own scratch and derives the
// post-swap (max congestion, AC) from the shared congState without
// touching the state's loads, heap or link-membership sets. Between
// two commits the shared state is frozen, so one scorer per candidate
// slot lets candidate evaluation fan out over the solve's worker pool
// race-free; the chosen swap is then committed serially through the
// congState. A scorer run serially produces exactly the values the
// serial apply/peek/revert chain observed, which is what keeps the
// mapping byte-identical at every worker count.
type congScorer struct {
	cs       *congState
	deltaL   []int64 // scratch: per-link load delta
	touched  []int32 // links touched by the current evaluation
	linkSeen []int32 // per-link generation stamp (dedupes touched)
	linkGen  int32
	edgeSeen []int32 // per-edge generation stamp
	edgeGen  int32
	routeBuf []int32

	// Pre-bound visitor and skip predicate (see congState.deltaFn):
	// built once per scorer so the per-edge inner loops and the heap
	// query allocate nothing.
	curW    int64
	deltaFn func(l int32, mult int64)
	skipFn  func(item int) bool
}

func newCongScorer(cs *congState) *congScorer {
	ar := cs.st.ex.arenaOf()
	sc := &congScorer{
		cs:       cs,
		deltaL:   ar.Int64s(cs.topo.Links()),
		linkSeen: ar.Int32s(cs.topo.Links()),
		edgeSeen: ar.Int32s(cs.g.M()),
	}
	sc.deltaFn = func(l int32, mult int64) { sc.addDelta(l, sc.curW*mult) }
	sc.skipFn = func(item int) bool { return sc.linkSeen[item] == sc.linkGen }
	return sc
}

// release returns the scorer's arena-backed buffers.
func (sc *congScorer) release() {
	ar := sc.cs.st.ex.arenaOf()
	ar.PutInt64s(sc.deltaL)
	ar.PutInt32s(sc.linkSeen)
	ar.PutInt32s(sc.edgeSeen)
	sc.deltaL, sc.linkSeen, sc.edgeSeen = nil, nil, nil
}

func (sc *congScorer) addDelta(l int32, d int64) {
	if sc.linkSeen[l] != sc.linkGen {
		sc.linkSeen[l] = sc.linkGen
		sc.touched = append(sc.touched, l)
	}
	sc.deltaL[l] += d
}

// score evaluates swapping tasks a and b. It mirrors the commit
// path's collectSwapDeltas + applyDeltas(1) + Peek + ac() + revert,
// but entirely on the scorer's own scratch: shared state (placements,
// loads, heap keys, AC sums) is only read.
func (sc *congScorer) score(a, b int32) congScore {
	cs := sc.cs
	for _, l := range sc.touched {
		sc.deltaL[l] = 0
	}
	sc.touched = sc.touched[:0]
	sc.linkGen++
	sc.edgeGen++
	// The traversal is the shared forEachSwapEdge — identical to what
	// a commit of this swap would walk — with the scorer's own
	// edgeSeen marks and route buffer, so concurrent scorers only
	// read the shared state.
	cs.forEachSwapEdge(a, b, sc.edgeSeen, sc.edgeGen, func(i, oldA, oldB, newA, newB int32) {
		w := cs.edgeLoad(int(i))
		if oldA != oldB {
			sc.curW = -w
			sc.routeBuf = routeLinks(cs.topo, cs.multipath, int(oldA), int(oldB), sc.routeBuf, sc.deltaFn)
		}
		if newA != newB {
			sc.curW = w
			sc.routeBuf = routeLinks(cs.topo, cs.multipath, int(newA), int(newB), sc.routeBuf, sc.deltaFn)
		}
	})
	// Post-swap aggregates: untouched links keep their heap keys —
	// MaxKeyExcept reads them without mutating the shared heap — and
	// touched links re-key as (load+delta)*scale with the used-link
	// accounting of applyDeltas.
	newMax := cs.congHeap.MaxKeyExcept(sc.skipFn)
	sum := cs.sumKeys
	used := cs.usedLinks
	for _, l := range sc.touched {
		dl := sc.deltaL[l]
		oldLoad := cs.load[l]
		newLoad := oldLoad + dl
		key := newLoad * cs.scale[l]
		if key > newMax {
			newMax = key
		}
		if dl == 0 {
			continue
		}
		switch {
		case oldLoad > 0 && newLoad == 0:
			used--
			sum -= oldLoad * cs.scale[l]
		case oldLoad == 0 && newLoad > 0:
			used++
			sum += key
		case oldLoad > 0:
			sum += key - oldLoad*cs.scale[l]
		}
	}
	if newMax < 0 {
		newMax = 0 // empty heap corner: nothing routed anywhere
	}
	if used == 0 {
		return congScore{max: newMax, acNum: 0, acDen: 1}
	}
	return congScore{max: newMax, acNum: sum, acDen: int64(used)}
}

// congScoreParMinWork gates the scoring fan-out, in edge-link
// traversals per candidate evaluation: below it, handing a candidate
// to the pool costs more than scoring it inline, so small instances
// keep the serial fast path. The gate depends only on the instance —
// never on the worker count — and the commit rule is identical on
// both paths, so it affects wall-clock only, never bytes.
const congScoreParMinWork = 256

// congScoreWork estimates the edge-link traversals of one candidate
// evaluation: the two swapped tasks re-route every incident directed
// edge twice (old and new placement) over routes bounded by half the
// topology diameter — 2 × average degree × diameter.
func congScoreWork(g *graph.Graph, topo torus.Topology) int {
	if g.N() == 0 {
		return 0
	}
	return 2 * (g.M() / g.N()) * topo.Diameter()
}

// RefineCongestion runs Algorithm 3 on a complete mapping, mutating
// nodeOf in place. It repeatedly examines the most congested link and
// swaps tasks to lower MC (lexicographically: lower MC, or equal MC
// with lower AC); per task it scores up to Delta BFS-ordered swap
// candidates — fanned out over opt.Exec's worker pool on instances
// past the work gate — and commits the best-scoring improving one,
// ties broken by candidate index. It stops when the most congested
// link cannot be improved. The mapping is byte-identical at every
// worker count. Returns the number of swaps applied.
func RefineCongestion(g *graph.Graph, topo torus.Topology, allocNodes []int32, nodeOf []int32, kind CongestionKind, opt RefineOptions) int {
	return refineCongestion(g, topo, nil, allocNodes, nodeOf, kind, opt)
}

// RefineCongestionAdaptive runs the §III-C dynamic-routing adaptation
// of Algorithm 3: per-link loads are expectations over every minimal
// dimension-ordered route of each message (the Blue Gene style
// approximate refinement the paper sketches for networks without
// static routing). The acceptance rule and search structure are those
// of Algorithm 3, applied to the expected congestion. Returns the
// number of swaps applied.
func RefineCongestionAdaptive(g *graph.Graph, topo torus.MultipathTopology, allocNodes []int32, nodeOf []int32, kind CongestionKind, opt RefineOptions) int {
	return refineCongestion(g, topo, topo, allocNodes, nodeOf, kind, opt)
}

func refineCongestion(g *graph.Graph, topo torus.Topology, multipath torus.MultipathTopology, allocNodes []int32, nodeOf []int32, kind CongestionKind, opt RefineOptions) int {
	opt = opt.withDefaults()
	ex := opt.Exec
	st := newMapState(g, topo, allocNodes, ex)
	defer st.release()
	for t := 0; t < g.N(); t++ {
		st.place(int32(t), nodeOf[t])
	}
	defer copy(nodeOf, st.nodeOf)
	cs := newCongState(g, topo, st, kind, multipath)
	defer cs.release()

	// Candidate scoring is read-only between commits, so it fans out
	// over the request's worker pool: slot i scores candidate i on its
	// own scratch, and the commit rule — best score, ties broken by
	// candidate index — is applied to the same candidate prefix the
	// serial chain would have examined, so the mapping is
	// byte-identical at every worker count. The serial path (gated-off
	// fan-out, or one free worker) scores the same batch inline with
	// one scorer and commits by the same rule.
	serialScorer := newCongScorer(cs)
	defer serialScorer.release()
	var scorers []*congScorer
	if ex.par().NumWorkers() > 1 && congScoreWork(g, topo) >= congScoreParMinWork {
		scorers = make([]*congScorer, opt.Delta)
		for i := range scorers {
			scorers[i] = newCongScorer(cs)
		}
		defer func() {
			for _, sc := range scorers {
				sc.release()
			}
		}()
	}
	cands := make([]int32, 0, opt.Delta)
	scores := make([]congScore, opt.Delta)

	swaps := 0
	rounds, scored := int64(0), int64(0)
	maxIters := 4 * topo.Links()
	seeds := make([]int32, 0, 16)
	var tasksBuf []int32
	for iter := 0; iter < maxIters; iter++ {
		if ex.cancelled() {
			break // polled between commit rounds
		}
		emc, curMax := cs.congHeap.Peek()
		if curMax == 0 {
			break // nothing routed at all
		}
		rounds++
		curACnum, curACden := cs.ac()
		improvedLink := false
		// Distinct tasks whose messages cross emc.
		tasksBuf = tasksBuf[:0]
		for _, ei := range cs.linkEdges[emc].Items() {
			src := cs.edgeOwner[ei]
			dst := cs.g.Adj[ei]
			tasksBuf = appendUnique(tasksBuf, src)
			tasksBuf = appendUnique(tasksBuf, dst)
		}
	taskLoop:
		for _, tmc := range tasksBuf {
			seeds = seeds[:0]
			for _, u := range cs.g.Neighbors(int(tmc)) {
				seeds = append(seeds, cs.st.nodeOf[u])
			}
			if len(seeds) == 0 {
				continue
			}
			// Collect up to Delta swap partners in BFS order — the
			// exact prefix the serial chain of Algorithm 3 examines.
			cands = cands[:0]
			cs.st.bfs(seeds, func(node, lv int32) bool {
				if !cs.st.allocated[node] || node == cs.st.nodeOf[tmc] {
					return true
				}
				t := cs.st.taskAt[node]
				if t < 0 || t == tmc {
					return true
				}
				cands = append(cands, t)
				return len(cands) < opt.Delta
			})
			if len(cands) == 0 {
				continue
			}
			scored += int64(len(cands))
			if scorers != nil && len(cands) > 1 {
				ex.par().ForEachIdx(len(cands), func(i int) {
					scores[i] = scorers[i].score(tmc, cands[i])
				})
			} else {
				for i, t := range cands {
					scores[i] = serialScorer.score(tmc, t)
				}
			}
			chosen := -1
			for i := range cands {
				if !scores[i].better(curMax, curACnum, curACden) {
					continue
				}
				if chosen < 0 || scores[i].beats(scores[chosen]) {
					chosen = i
				}
			}
			if chosen < 0 {
				continue
			}
			// Commit serially on the shared state: re-collect the
			// winner's deltas, push them into the loads and heap, and
			// update the link-membership sets.
			t := cands[chosen]
			cs.collectSwapDeltas(tmc, t)
			cs.applyDeltas(1)
			cs.commitSwap(tmc, t)
			swaps++
			improvedLink = true
			break taskLoop
		}
		if !improvedLink {
			break // the most congested link cannot be improved
		}
	}
	ex.Count("cong_rounds", rounds)
	ex.Count("cong_candidates_scored", scored)
	ex.Count("cong_swaps", int64(swaps))
	return swaps
}

func appendUnique(s []int32, v int32) []int32 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

package core

import (
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/torus"
)

// CongestionKind selects which congestion Algorithm 3 minimizes.
type CongestionKind int

// Congestion kinds.
const (
	// VolumeCongestion refines MC: per-link volume divided by link
	// bandwidth (the paper's primary variant). Edge weights are
	// communication volumes.
	VolumeCongestion CongestionKind = iota
	// MessageCongestion refines MMC: messages per link, ignoring
	// bandwidth ("adapting this algorithm to refine MMC is trivial",
	// §III-C). Edge weights are message multiplicities — pass a
	// message-count-weighted graph (taskgraph.CoarseMessageGraph) for
	// coarse supertask graphs, or a unit-weight graph when every edge
	// is one message.
	MessageCongestion
)

// congState carries the link-load bookkeeping of Algorithm 3: exact
// per-link loads under static routing, a max-heap of scaled
// congestion keys, and the commTasks structure mapping each link to
// the directed task-graph edges routed through it.
type congState struct {
	g    *graph.Graph
	topo torus.Topology
	st   *mapState
	kind CongestionKind

	// multipath enables the §III-C dynamic-routing approximation:
	// when non-nil, loads are expectations over all minimal
	// dimension-ordered routes (fixed point in units of 1/RouteScale)
	// instead of exact loads on the single static route.
	multipath torus.MultipathTopology

	scale     []int64 // per link: congestion = load*scale (fixed point 1/bw)
	load      []int64 // per link: volume (or message count)
	congHeap  *ds.IndexedMaxHeap
	linkEdges []ds.IntSet // per link: directed edge ids crossing it
	edgeOwner []int32     // directed edge id -> source task
	sumKeys   int64       // sum of keys over used links
	usedLinks int

	routeBuf []int32
	deltaL   []int64 // scratch: per-link load delta
	touched  []int32 // links touched by the current delta collection
	linkSeen []int32 // per-link generation stamp (dedupes touched)
	linkGen  int32
	edgeSeen []int32 // per-edge generation stamp
	edgeGen  int32
	revEdge  []int32 // directed edge id -> id of the reverse edge

	// Pre-bound route-link visitors. forEachRouteLink runs per edge in
	// the innermost loops of every swap evaluation; handing it a fresh
	// closure there allocates once per edge and dominated the solve's
	// garbage. These two are built once per congState and parameterized
	// through curW / curEdge.
	deltaFn func(l int32, mult int64) // addDelta(l, curW*mult)
	addFn   func(l int32, mult int64) // linkEdges[l].Add(curEdge)
	delFn   func(l int32, mult int64) // linkEdges[l].Delete(curEdge)
	curW    int64
	curEdge int
}

func newCongState(g *graph.Graph, topo torus.Topology, st *mapState, kind CongestionKind, multipath torus.MultipathTopology) *congState {
	ar := st.ex.arenaOf()
	cs := &congState{
		g:         g,
		topo:      topo,
		st:        st,
		kind:      kind,
		multipath: multipath,
		scale:     ar.Int64s(topo.Links()),
		load:      ar.Int64s(topo.Links()),
		congHeap:  ar.MaxHeap(topo.Links()),
		linkEdges: make([]ds.IntSet, topo.Links()),
		edgeOwner: ar.Int32s(g.M()),
		deltaL:    ar.Int64s(topo.Links()),
		linkSeen:  ar.Int32s(topo.Links()),
		edgeSeen:  ar.Int32s(g.M()),
		revEdge:   ar.Int32s(g.M()),
	}
	cs.deltaFn = func(l int32, mult int64) { cs.addDelta(l, cs.curW*mult) }
	cs.addFn = func(l int32, _ int64) { cs.linkEdges[l].Add(cs.curEdge) }
	cs.delFn = func(l int32, _ int64) { cs.linkEdges[l].Delete(cs.curEdge) }
	// Fixed-point congestion scale: proportional to 1/bw, normalized
	// so the fastest link gets 1024. Message congestion ignores
	// bandwidth (unit links).
	maxBW := 0.0
	for l := 0; l < topo.Links(); l++ {
		if bw := topo.LinkBW(l); bw > maxBW {
			maxBW = bw
		}
	}
	for l := 0; l < topo.Links(); l++ {
		if kind == MessageCongestion {
			cs.scale[l] = 1
		} else {
			cs.scale[l] = int64(1024 * maxBW / topo.LinkBW(l))
		}
	}
	for v := 0; v < g.N(); v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			cs.edgeOwner[i] = int32(v)
		}
	}
	// Reverse-edge ids: the symmetric graph stores (u,v) and (v,u);
	// adjacency lists are sorted, so the reverse is found by binary
	// search.
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			v := g.Adj[i]
			lo, hi := g.Xadj[v], g.Xadj[v+1]
			cs.revEdge[i] = -1
			for lo < hi {
				mid := (lo + hi) / 2
				if g.Adj[mid] < int32(u) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < g.Xadj[v+1] && g.Adj[lo] == int32(u) {
				cs.revEdge[i] = lo
			}
		}
	}
	// Route every directed edge and accumulate loads.
	for v := 0; v < g.N(); v++ {
		a := int(st.nodeOf[v])
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			b := int(st.nodeOf[g.Adj[i]])
			if a == b {
				continue
			}
			w := cs.edgeLoad(int(i))
			cs.forEachRouteLink(a, b, func(l int32, mult int64) {
				cs.load[l] += w * mult
				cs.linkEdges[l].Add(int(i))
			})
		}
	}
	for l := 0; l < topo.Links(); l++ {
		key := cs.load[l] * cs.scale[l]
		cs.congHeap.Push(l, key)
		if cs.load[l] > 0 {
			cs.usedLinks++
			cs.sumKeys += key
		}
	}
	return cs
}

// release returns the state's arena-backed buffers.
func (cs *congState) release() {
	ar := cs.st.ex.arenaOf()
	ar.PutInt64s(cs.scale)
	ar.PutInt64s(cs.load)
	ar.PutMaxHeap(cs.congHeap)
	ar.PutInt32s(cs.edgeOwner)
	ar.PutInt64s(cs.deltaL)
	ar.PutInt32s(cs.linkSeen)
	ar.PutInt32s(cs.edgeSeen)
	ar.PutInt32s(cs.revEdge)
	cs.scale, cs.load, cs.congHeap, cs.edgeOwner = nil, nil, nil, nil
	cs.deltaL, cs.linkSeen, cs.edgeSeen, cs.revEdge = nil, nil, nil, nil
}

// addDelta accumulates a per-link load delta, tracking touched links.
func (cs *congState) addDelta(l int32, d int64) {
	if cs.linkSeen[l] != cs.linkGen {
		cs.linkSeen[l] = cs.linkGen
		cs.touched = append(cs.touched, l)
	}
	cs.deltaL[l] += d
}

// edgeLoad is the routed load of directed edge i: its weight, read as
// a volume for MC and as a message multiplicity for MMC.
func (cs *congState) edgeLoad(i int) int64 {
	return cs.g.EdgeWeight(i)
}

// forEachRouteLink invokes fn(link, mult) for every (route, link)
// pair of a message a→b. Static routing yields the single static
// route with mult 1; the dynamic-routing approximation yields every
// minimal dimension-ordered route with mult RouteScale/P, so a link's
// accumulated load is RouteScale times its expected load. The two
// modes differ by a constant factor per mode, which comparisons never
// see. a != b must hold.
func (cs *congState) forEachRouteLink(a, b int, fn func(l int32, mult int64)) {
	if cs.multipath == nil {
		cs.routeBuf = cs.topo.Route(a, b, cs.routeBuf[:0])
		for _, l := range cs.routeBuf {
			fn(l, 1)
		}
		return
	}
	p := int64(cs.multipath.NumMinimalRoutes(a, b))
	scale := cs.multipath.RouteScale()
	if p <= 0 || scale%p != 0 {
		panic("core: topology RouteScale not divisible by its route count")
	}
	mult := scale / p
	cs.multipath.ForEachMinimalRoute(a, b, func(route []int32) {
		for _, l := range route {
			fn(l, mult)
		}
	})
}

// acNum and acDen expose AC = sumKeys/usedLinks as an exact fraction.
func (cs *congState) ac() (num, den int64) {
	if cs.usedLinks == 0 {
		return 0, 1
	}
	return cs.sumKeys, int64(cs.usedLinks)
}

// collectSwapDeltas fills cs.deltaL (per-link load deltas) for
// swapping tasks a and b, without applying anything.
func (cs *congState) collectSwapDeltas(a, b int32) {
	for _, l := range cs.touched {
		cs.deltaL[l] = 0
	}
	cs.touched = cs.touched[:0]
	cs.linkGen++
	cs.edgeGen++
	ma, mb := cs.st.nodeOf[a], cs.st.nodeOf[b]
	newNode := func(t int32) int32 {
		switch t {
		case a:
			return mb
		case b:
			return ma
		default:
			return cs.st.nodeOf[t]
		}
	}
	// handleEdge reroutes directed edge i = (src, dst) through the
	// pre-bound deltaFn visitor (closure allocation here would be one
	// per edge per evaluated swap).
	handleEdge := func(i int32, src, dst int32) {
		if cs.edgeSeen[i] == cs.edgeGen {
			return
		}
		cs.edgeSeen[i] = cs.edgeGen
		w := cs.edgeLoad(int(i))
		oldA, oldB := cs.st.nodeOf[src], cs.st.nodeOf[dst]
		if oldA != oldB {
			cs.curW = -w
			cs.forEachRouteLink(int(oldA), int(oldB), cs.deltaFn)
		}
		nA, nB := newNode(src), newNode(dst)
		if nA != nB {
			cs.curW = w
			cs.forEachRouteLink(int(nA), int(nB), cs.deltaFn)
		}
	}
	for _, t := range [2]int32{a, b} {
		for i := cs.g.Xadj[t]; i < cs.g.Xadj[t+1]; i++ {
			u := cs.g.Adj[i]
			handleEdge(int32(i), t, u)
			if j := cs.revEdge[i]; j >= 0 {
				handleEdge(j, u, t)
			}
		}
	}
}

// applyDeltas pushes the collected deltas into the heap and load
// table; revert by calling again after negating (the caller uses
// apply/inspect/revert, the paper's "temporarily updating congHeap").
func (cs *congState) applyDeltas(sign int64) {
	for _, l := range cs.touched {
		dl := cs.deltaL[l]
		if dl == 0 {
			continue
		}
		oldLoad := cs.load[l]
		cs.load[l] = oldLoad + sign*dl
		key := cs.load[l] * cs.scale[l]
		cs.congHeap.Update(int(l), key)
		if oldLoad > 0 && cs.load[l] == 0 {
			cs.usedLinks--
			cs.sumKeys -= oldLoad * cs.scale[l]
		} else if oldLoad == 0 && cs.load[l] > 0 {
			cs.usedLinks++
			cs.sumKeys += key
		} else if oldLoad > 0 {
			cs.sumKeys += key - oldLoad*cs.scale[l]
		}
	}
}

// commitSwap finalizes an accepted swap: updates the commTasks edge
// sets for all edges of a and b (the loads and heap already hold the
// new state from applyDeltas).
func (cs *congState) commitSwap(a, b int32) {
	ma, mb := cs.st.nodeOf[a], cs.st.nodeOf[b]
	// Remove memberships for old routes of all incident edges (both
	// directions), then re-add for new routes.
	cs.updateEdgeSets(a, b, ma, mb)
	cs.st.place(a, mb)
	cs.st.place(b, ma)
}

func (cs *congState) updateEdgeSets(a, b, ma, mb int32) {
	newNode := func(t int32) int32 {
		switch t {
		case a:
			return mb
		case b:
			return ma
		default:
			return cs.st.nodeOf[t]
		}
	}
	cs.edgeGen++
	handle := func(i int32, src, dst int32) {
		if cs.edgeSeen[i] == cs.edgeGen {
			return
		}
		cs.edgeSeen[i] = cs.edgeGen
		cs.curEdge = int(i)
		oldA, oldB := cs.st.nodeOf[src], cs.st.nodeOf[dst]
		if oldA != oldB {
			cs.forEachRouteLink(int(oldA), int(oldB), cs.delFn)
		}
		nA, nB := newNode(src), newNode(dst)
		if nA != nB {
			cs.forEachRouteLink(int(nA), int(nB), cs.addFn)
		}
	}
	for _, t := range [2]int32{a, b} {
		for i := cs.g.Xadj[t]; i < cs.g.Xadj[t+1]; i++ {
			u := cs.g.Adj[i]
			handle(int32(i), t, u)
			if j := cs.revEdge[i]; j >= 0 {
				handle(j, u, t)
			}
		}
	}
}

// RefineCongestion runs Algorithm 3 on a complete mapping, mutating
// nodeOf in place. It repeatedly examines the most congested link and
// accepts task swaps that lower MC (lexicographically: lower MC, or
// equal MC with lower AC); it stops when the most congested link
// cannot be improved. Returns the number of swaps applied.
func RefineCongestion(g *graph.Graph, topo torus.Topology, allocNodes []int32, nodeOf []int32, kind CongestionKind, opt RefineOptions) int {
	return refineCongestion(g, topo, nil, allocNodes, nodeOf, kind, opt)
}

// RefineCongestionAdaptive runs the §III-C dynamic-routing adaptation
// of Algorithm 3: per-link loads are expectations over every minimal
// dimension-ordered route of each message (the Blue Gene style
// approximate refinement the paper sketches for networks without
// static routing). The acceptance rule and search structure are those
// of Algorithm 3, applied to the expected congestion. Returns the
// number of swaps applied.
func RefineCongestionAdaptive(g *graph.Graph, topo torus.MultipathTopology, allocNodes []int32, nodeOf []int32, kind CongestionKind, opt RefineOptions) int {
	return refineCongestion(g, topo, topo, allocNodes, nodeOf, kind, opt)
}

func refineCongestion(g *graph.Graph, topo torus.Topology, multipath torus.MultipathTopology, allocNodes []int32, nodeOf []int32, kind CongestionKind, opt RefineOptions) int {
	opt = opt.withDefaults()
	ex := opt.Exec
	st := newMapState(g, topo, allocNodes, ex)
	defer st.release()
	for t := 0; t < g.N(); t++ {
		st.place(int32(t), nodeOf[t])
	}
	defer copy(nodeOf, st.nodeOf)
	cs := newCongState(g, topo, st, kind, multipath)
	defer cs.release()

	swaps := 0
	maxIters := 4 * topo.Links()
	seeds := make([]int32, 0, 16)
	var tasksBuf []int32
	for iter := 0; iter < maxIters; iter++ {
		if ex.cancelled() {
			break
		}
		emc, curMax := cs.congHeap.Peek()
		if curMax == 0 {
			break // nothing routed at all
		}
		curACnum, curACden := cs.ac()
		improvedLink := false
		// Distinct tasks whose messages cross emc.
		tasksBuf = tasksBuf[:0]
		for _, ei := range cs.linkEdges[emc].Items() {
			src := cs.edgeOwner[ei]
			dst := cs.g.Adj[ei]
			tasksBuf = appendUnique(tasksBuf, src)
			tasksBuf = appendUnique(tasksBuf, dst)
		}
	taskLoop:
		for _, tmc := range tasksBuf {
			seeds = seeds[:0]
			for _, u := range cs.g.Neighbors(int(tmc)) {
				seeds = append(seeds, cs.st.nodeOf[u])
			}
			if len(seeds) == 0 {
				continue
			}
			tried := 0
			var accepted bool
			cs.st.bfs(seeds, func(node, lv int32) bool {
				if !cs.st.allocated[node] || node == cs.st.nodeOf[tmc] {
					return true
				}
				t := cs.st.taskAt[node]
				if t < 0 || t == tmc {
					return true
				}
				tried++
				cs.collectSwapDeltas(tmc, t)
				cs.applyDeltas(1)
				_, newMax := cs.congHeap.Peek()
				newACnum, newACden := cs.ac()
				better := newMax < curMax ||
					(newMax == curMax && newACnum*curACden < curACnum*newACden)
				if better {
					cs.commitSwap(tmc, t)
					swaps++
					accepted = true
					return false
				}
				cs.applyDeltas(-1) // revert
				return tried < opt.Delta
			})
			if accepted {
				improvedLink = true
				break taskLoop
			}
		}
		if !improvedLink {
			break // the most congested link cannot be improved
		}
	}
	return swaps
}

func appendUnique(s []int32, v int32) []int32 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

package core

import (
	"testing"

	"repro/internal/graph"
)

func TestHeterogeneousFirstMapsUniqueWeightsEarly(t *testing.T) {
	topo, a := fixture(t, 12, 41)
	g := graph.RandomConnected(12, 30, 10, 42)
	// Weights: task 7 uniquely heavy, task 3 uniquely light, the rest
	// share weight 5.
	g.VW = make([]int64, 12)
	for i := range g.VW {
		g.VW[i] = 5
	}
	g.VW[7] = 100
	g.VW[3] = 1
	nodeOf := Greedy(g, topo, a.Nodes, GreedyOptions{HeterogeneousFirst: true})
	checkValidMapping(t, g, a, nodeOf)
	// The mapping must still be complete and deterministic.
	nodeOf2 := Greedy(g, topo, a.Nodes, GreedyOptions{HeterogeneousFirst: true})
	for i := range nodeOf {
		if nodeOf[i] != nodeOf2[i] {
			t.Fatal("heterogeneous greedy not deterministic")
		}
	}
}

func TestHeterogeneousFirstNoopOnUniformWeights(t *testing.T) {
	topo, a := fixture(t, 10, 43)
	g := graph.RandomConnected(10, 25, 8, 44)
	plain := Greedy(g, topo, a.Nodes, GreedyOptions{})
	hetero := Greedy(g, topo, a.Nodes, GreedyOptions{HeterogeneousFirst: true})
	// Uniform (nil) vertex weights: no weight is unique, so the
	// option must not change the result.
	for i := range plain {
		if plain[i] != hetero[i] {
			t.Fatal("HeterogeneousFirst changed a uniform-weight mapping")
		}
	}
}

func TestSortByWeightDesc(t *testing.T) {
	g := graph.Ring(4)
	g.VW = []int64{3, 9, 1, 9}
	tasks := []int32{0, 1, 2, 3}
	sortByWeightDesc(g, tasks)
	want := []int32{1, 3, 0, 2} // stable: 1 before 3 at weight 9
	for i := range want {
		if tasks[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", tasks, want)
		}
	}
}

func TestNoEarlyExitValidMapping(t *testing.T) {
	topo, a := fixture(t, 20, 45)
	g := graph.RandomConnected(20, 50, 12, 46)
	nodeOf := Greedy(g, topo, a.Nodes, GreedyOptions{NoEarlyExit: true})
	checkValidMapping(t, g, a, nodeOf)
	// Exhaustive search considers a superset of the early-exit
	// candidates at each step, and both must produce valid mappings;
	// quality may differ either way, but not validity.
	nodeOf2 := Greedy(g, topo, a.Nodes, GreedyOptions{})
	checkValidMapping(t, g, a, nodeOf2)
}

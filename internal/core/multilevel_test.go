package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/torus"
)

func TestHeavyEdgeMatchValid(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := graph.RandomConnected(64, 96, 50, seed)
		cmap, nc := heavyEdgeMatch(g)
		if nc <= 0 || nc > g.N() {
			t.Fatalf("seed %d: bad coarse count %d", seed, nc)
		}
		sizes := make([]int, nc)
		for v, c := range cmap {
			if c < 0 || int(c) >= nc {
				t.Fatalf("seed %d: vertex %d has out-of-range cluster %d", seed, v, c)
			}
			sizes[c]++
		}
		for c, s := range sizes {
			if s < 1 || s > 2 {
				t.Fatalf("seed %d: cluster %d has %d members, want 1 or 2", seed, c, s)
			}
		}
		// Matched pairs must share an edge.
		first := make([]int32, nc)
		for i := range first {
			first[i] = -1
		}
		for v := 0; v < g.N(); v++ {
			c := cmap[v]
			if first[c] < 0 {
				first[c] = int32(v)
			} else if !g.HasEdge(int(first[c]), v) {
				t.Fatalf("seed %d: cluster %d pairs non-adjacent %d,%d", seed, c, first[c], v)
			}
		}
	}
}

func TestHeavyEdgeMatchPrefersHeavyEdges(t *testing.T) {
	// Path 0-1-2-3 with a heavy middle edge: 1 must match 2.
	g := graph.FromEdges(4,
		[]int32{0, 1, 2}, []int32{1, 2, 3}, []int64{1, 100, 1}, nil).Symmetrize()
	cmap, _ := heavyEdgeMatch(g)
	if cmap[1] != cmap[2] {
		t.Fatalf("heavy edge 1-2 not contracted: cmap=%v", cmap)
	}
	if cmap[0] == cmap[1] || cmap[3] == cmap[2] {
		t.Fatalf("light edges contracted over heavy one: cmap=%v", cmap)
	}
}

func TestMLHierarchyShrinks(t *testing.T) {
	g := graph.RandomConnected(200, 400, 20, 7)
	levels := mlHierarchy(g, 16)
	if len(levels) < 2 {
		t.Fatalf("no coarsening happened on a 200-vertex graph")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].g.N() >= levels[i-1].g.N() {
			t.Fatalf("level %d did not shrink: %d -> %d", i, levels[i-1].g.N(), levels[i].g.N())
		}
		if len(levels[i-1].cmap) != levels[i-1].g.N() {
			t.Fatalf("level %d cmap has %d entries, want %d", i-1, len(levels[i-1].cmap), levels[i-1].g.N())
		}
	}
	coarsest := levels[len(levels)-1].g
	if coarsest.N() > 16 && levels[len(levels)-1].cmap != nil {
		t.Fatalf("coarsest level %d vertices but hierarchy continued", coarsest.N())
	}
}

func TestClusterSetsPartition(t *testing.T) {
	g := graph.RandomConnected(100, 150, 30, 3)
	levels := mlHierarchy(g, 8)
	for l := range levels {
		cl0, members := clusterSets(levels, l)
		seen := make([]bool, g.N())
		for c, mem := range members {
			prev := int32(-1)
			for _, v := range mem {
				if seen[v] {
					t.Fatalf("level %d: vertex %d in two clusters", l, v)
				}
				seen[v] = true
				if cl0[v] != int32(c) {
					t.Fatalf("level %d: cl0[%d]=%d but member of %d", l, v, cl0[v], c)
				}
				if v <= prev {
					t.Fatalf("level %d cluster %d members not increasing: %v", l, c, mem)
				}
				prev = v
			}
			if len(mem) == 0 {
				t.Fatalf("level %d: empty cluster %d", l, c)
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("level %d: vertex %d not in any cluster", l, v)
			}
		}
	}
}

func TestPlaceCoarsestValidAssignment(t *testing.T) {
	topo, a := fixture(t, 48, 11)
	g := graph.RandomConnected(48, 90, 40, 5)
	levels := mlHierarchy(g, 8)
	L := len(levels) - 1
	_, members := clusterSets(levels, L)
	nodeOf := make([]int32, g.N())
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	placeCoarsest(levels[L].g, members, topo, a.Nodes, nodeOf, nil)
	checkValidMapping(t, g, a, nodeOf)
}

func TestPlaceCoarsestRegionsContiguousOnRing(t *testing.T) {
	// Two 4-cliques with a weak bridge, placed on a 16-node ring:
	// each clique's region should be tight (max pairwise hop small).
	var us, vs []int32
	var ws []int64
	addClique := func(base int32) {
		for i := int32(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				us = append(us, base+i)
				vs = append(vs, base+j)
				ws = append(ws, 100)
			}
		}
	}
	addClique(0)
	addClique(4)
	us = append(us, 0)
	vs = append(vs, 4)
	ws = append(ws, 1)
	g := graph.FromEdges(8, us, vs, ws, nil).Symmetrize()

	topo := torus.New([]int{16}, []float64{torus.HopperBWHigh})
	nodes := make([]int32, 16)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	levels := mlHierarchy(g, 2)
	L := len(levels) - 1
	_, members := clusterSets(levels, L)
	nodeOf := make([]int32, 8)
	placeCoarsest(levels[L].g, members, topo, nodes, nodeOf, nil)
	// Every vertex placed on a distinct ring node.
	used := map[int32]bool{}
	for _, m := range nodeOf {
		if used[m] {
			t.Fatalf("duplicate node %d in %v", m, nodeOf)
		}
		used[m] = true
	}
	// Region of each clique spans at most 5 hops on the 16-ring
	// (perfectly tight would be 3).
	for _, base := range []int{0, 4} {
		for i := base; i < base+4; i++ {
			for j := i + 1; j < base+4; j++ {
				if d := topo.HopDist(int(nodeOf[i]), int(nodeOf[j])); d > 5 {
					t.Fatalf("clique at %d spread %d hops apart: %v", base, d, nodeOf)
				}
			}
		}
	}
}

func TestRefineClusterLevelExactGain(t *testing.T) {
	topo, a := fixture(t, 40, 3)
	g := graph.RandomConnected(40, 80, 25, 9)
	levels := mlHierarchy(g, 8)
	if len(levels) < 2 {
		t.Skip("graph did not coarsen")
	}
	rng := rand.New(rand.NewSource(4))
	perm := rng.Perm(len(a.Nodes))
	nodeOf := make([]int32, g.N())
	for i := range nodeOf {
		nodeOf[i] = a.Nodes[perm[i]]
	}
	for l := len(levels) - 1; l >= 1; l-- {
		cl0, members := clusterSets(levels, l)
		before := wh(g, topo, nodeOf)
		gain := refineClusterLevel(g, levels[l].g, cl0, members, topo, a.Nodes, nodeOf, RefineOptions{})
		after := wh(g, topo, nodeOf)
		if gain < 0 {
			t.Fatalf("level %d: negative gain %d", l, gain)
		}
		if before-after != gain {
			t.Fatalf("level %d: reported gain %d, measured %d", l, gain, before-after)
		}
		checkValidMapping(t, g, a, nodeOf)
	}
}

func TestSwapDeltaMatchesRecompute(t *testing.T) {
	topo, a := fixture(t, 32, 6)
	g := graph.RandomConnected(32, 64, 15, 2)
	levels := mlHierarchy(g, 8)
	if len(levels) < 2 {
		t.Skip("graph did not coarsen")
	}
	l := 1
	cl0, members := clusterSets(levels, l)
	nodeOf := make([]int32, g.N())
	for i := range nodeOf {
		nodeOf[i] = a.Nodes[i]
	}
	cr := &clusterRefineState{
		g0: g, topo: topo, nodeOf: nodeOf,
		taskAt:  make([]int32, topo.Nodes()),
		cl0:     cl0,
		members: members,
	}
	ps := &pairScratch{
		inPair:  make([]int32, g.N()),
		pairPos: make([]int32, g.N()),
	}
	for i := range cr.taskAt {
		cr.taskAt[i] = -1
	}
	for v, m := range nodeOf {
		cr.taskAt[m] = int32(v)
	}
	nc := levels[l].g.N()
	checked := 0
	for x := 0; x < nc && checked < 20; x++ {
		for y := x + 1; y < nc && checked < 20; y++ {
			if len(members[x]) != len(members[y]) {
				continue
			}
			before := wh(g, topo, nodeOf)
			d := cr.swapDelta(ps, int32(x), int32(y), WeightedHops)
			cr.applySwap(int32(x), int32(y))
			after := wh(g, topo, nodeOf)
			if after-before != d {
				t.Fatalf("swap (%d,%d): delta %d, recompute %d", x, y, d, after-before)
			}
			cr.applySwap(int32(x), int32(y)) // revert
			if got := wh(g, topo, nodeOf); got != before {
				t.Fatalf("swap (%d,%d) revert mismatch: %d != %d", x, y, got, before)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no equal-cardinality cluster pair found")
	}
}

func TestMapUMLValidMapping(t *testing.T) {
	topo, a := fixture(t, 64, 17)
	g := graph.RandomConnected(64, 128, 60, 8)
	nodeOf := MapUML(g, topo, a.Nodes, MultilevelOptions{})
	checkValidMapping(t, g, a, nodeOf)
}

func TestMapUMLBeatsRandomPlacement(t *testing.T) {
	topo, a := fixture(t, 64, 12)
	g := graph.RandomConnected(64, 160, 80, 21)
	uml := MapUML(g, topo, a.Nodes, MultilevelOptions{})
	rng := rand.New(rand.NewSource(99))
	perm := rng.Perm(len(a.Nodes))
	random := make([]int32, g.N())
	for i := range random {
		random[i] = a.Nodes[perm[i]]
	}
	if wh(g, topo, uml) >= wh(g, topo, random) {
		t.Fatalf("UML WH %d not below random %d", wh(g, topo, uml), wh(g, topo, random))
	}
}

func TestMapUMLCompetitiveWithUG(t *testing.T) {
	// The multilevel scheme should land in the same quality regime as
	// the greedy construction (within 2x on WH — typically it is equal
	// or better after the final Algorithm 2 pass).
	topo, a := fixture(t, 48, 5)
	g := graph.RandomConnected(48, 120, 50, 33)
	uml := wh(g, topo, MapUML(g, topo, a.Nodes, MultilevelOptions{}))
	ug := wh(g, topo, MapUG(g, topo, a.Nodes))
	if uml > 2*ug {
		t.Fatalf("UML WH %d more than 2x UG WH %d", uml, ug)
	}
}

func TestMapUMLSmallGraphFallsBack(t *testing.T) {
	topo, a := fixture(t, 12, 8)
	g := graph.RandomConnected(10, 15, 10, 4)
	nodeOf := MapUML(g, topo, a.Nodes, MultilevelOptions{CoarsenTo: 16})
	want := GreedyBest(g, topo, a.Nodes, WeightedHops)
	RefineWH(g, topo, a.Nodes, want, RefineOptions{})
	for i := range nodeOf {
		if nodeOf[i] != want[i] {
			t.Fatalf("fallback differs from UG+RefineWH at %d: %d != %d", i, nodeOf[i], want[i])
		}
	}
}

func TestMapUMLDeterministic(t *testing.T) {
	topo, a := fixture(t, 40, 23)
	g := graph.RandomConnected(40, 90, 35, 13)
	m1 := MapUML(g, topo, a.Nodes, MultilevelOptions{})
	m2 := MapUML(g, topo, a.Nodes, MultilevelOptions{})
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("non-deterministic at %d: %d != %d", i, m1[i], m2[i])
		}
	}
}

func TestMapUMLPanicsOnTooFewNodes(t *testing.T) {
	topo, a := fixture(t, 4, 2)
	g := graph.RandomConnected(8, 12, 5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic with fewer nodes than tasks")
		}
	}()
	MapUML(g, topo, a.Nodes, MultilevelOptions{})
}

func TestMapUMLPropertyValid(t *testing.T) {
	topo, a := fixture(t, 36, 31)
	f := func(seed int64, extra uint8) bool {
		g := graph.RandomConnected(36, 36+int(extra%64), 30, seed)
		nodeOf := MapUML(g, topo, a.Nodes, MultilevelOptions{})
		if len(nodeOf) != g.N() {
			return false
		}
		used := map[int32]bool{}
		allocated := map[int32]bool{}
		for _, m := range a.Nodes {
			allocated[m] = true
		}
		for _, m := range nodeOf {
			if used[m] || !allocated[m] {
				return false
			}
			used[m] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMapUMLHonorsCoarsenTo(t *testing.T) {
	g := graph.RandomConnected(120, 240, 40, 15)
	for _, to := range []int{4, 8, 32} {
		levels := mlHierarchy(g, to)
		coarsest := levels[len(levels)-1].g.N()
		// Either we reached the target or matching stalled above it.
		if coarsest > to {
			cmap, nc := heavyEdgeMatch(levels[len(levels)-1].g)
			_ = cmap
			if float64(nc) <= 0.95*float64(coarsest) {
				t.Fatalf("coarsenTo=%d: stopped at %d although matching still shrinks (nc=%d)", to, coarsest, nc)
			}
		}
	}
}

package core

import (
	"repro/internal/graph"
	"repro/internal/torus"
)

// The four UMPA mapping variants of the evaluation (§IV): UG is the
// greedy mapping alone, UWH adds WH refinement, UMC and UMMC add
// congestion refinement on top of the greedy mapping.
//
// Each variant has an Ex form taking the solve's execution context
// (worker pool + scratch arena + cancellation); the plain forms are
// the serial facades the examples and tests use. Results are
// byte-identical between the two and across worker counts.

// MapUG produces the UG mapping: greedy with the better of NBFS∈{0,1}.
func MapUG(g *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	return MapUGEx(g, topo, allocNodes, nil)
}

// MapUGEx is MapUG under an execution context.
func MapUGEx(g *graph.Graph, topo torus.Topology, allocNodes []int32, ex *Exec) []int32 {
	return GreedyBestEx(g, topo, allocNodes, WeightedHops, ex)
}

// MapUWH produces the UWH mapping: UG followed by Algorithm 2.
func MapUWH(g *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	return MapUWHEx(g, topo, allocNodes, nil)
}

// MapUWHEx is MapUWH under an execution context.
func MapUWHEx(g *graph.Graph, topo torus.Topology, allocNodes []int32, ex *Exec) []int32 {
	nodeOf := MapUGEx(g, topo, allocNodes, ex)
	RefineWH(g, topo, allocNodes, nodeOf, RefineOptions{Exec: ex})
	return nodeOf
}

// MapUMC produces the UMC mapping: UG followed by volume-congestion
// refinement (Algorithm 3).
func MapUMC(g *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	return MapUMCEx(g, topo, allocNodes, nil)
}

// MapUMCEx is MapUMC under an execution context.
func MapUMCEx(g *graph.Graph, topo torus.Topology, allocNodes []int32, ex *Exec) []int32 {
	nodeOf := MapUGEx(g, topo, allocNodes, ex)
	RefineCongestion(g, topo, allocNodes, nodeOf, VolumeCongestion, RefineOptions{Exec: ex})
	return nodeOf
}

// MapUMMC produces the UMMC mapping: UG on the volume-weighted graph
// followed by message-congestion refinement on msgG, a message-count-
// weighted view of the same supertasks (taskgraph.CoarseMessageGraph).
// Pass g itself as msgG when every edge represents a single message.
func MapUMMC(g, msgG *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	return MapUMMCEx(g, msgG, topo, allocNodes, nil)
}

// MapUMMCEx is MapUMMC under an execution context.
func MapUMMCEx(g, msgG *graph.Graph, topo torus.Topology, allocNodes []int32, ex *Exec) []int32 {
	nodeOf := MapUGEx(g, topo, allocNodes, ex)
	RefineCongestion(msgG, topo, allocNodes, nodeOf, MessageCongestion, RefineOptions{Exec: ex})
	return nodeOf
}

// MapUMCA produces the dynamic-routing congestion variant of §III-C's
// closing remark: UG followed by the approximate congestion
// refinement in which per-link loads are expectations over all
// minimal dimension-ordered routes (Blue Gene style adaptive
// routing).
func MapUMCA(g *graph.Graph, topo torus.MultipathTopology, allocNodes []int32) []int32 {
	return MapUMCAEx(g, topo, allocNodes, nil)
}

// MapUMCAEx is MapUMCA under an execution context.
func MapUMCAEx(g *graph.Graph, topo torus.MultipathTopology, allocNodes []int32, ex *Exec) []int32 {
	nodeOf := MapUGEx(g, topo, allocNodes, ex)
	RefineCongestionAdaptive(g, topo, allocNodes, nodeOf, VolumeCongestion, RefineOptions{Exec: ex})
	return nodeOf
}

// MapUTH produces the TH-objective variant the paper mentions but
// does not plot ("we do not give the results for TH variant as they
// are very close to those of UG and UWH", §IV): greedy plus WH
// refinement, both under the TotalHops objective.
func MapUTH(g *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	return MapUTHEx(g, topo, allocNodes, nil)
}

// MapUTHEx is MapUTH under an execution context.
func MapUTHEx(g *graph.Graph, topo torus.Topology, allocNodes []int32, ex *Exec) []int32 {
	nodeOf := GreedyBestEx(g, topo, allocNodes, TotalHops, ex)
	RefineWH(g, topo, allocNodes, nodeOf, RefineOptions{Objective: TotalHops, Exec: ex})
	return nodeOf
}

package core

import (
	"repro/internal/graph"
	"repro/internal/torus"
)

// The four UMPA mapping variants of the evaluation (§IV): UG is the
// greedy mapping alone, UWH adds WH refinement, UMC and UMMC add
// congestion refinement on top of the greedy mapping.

// MapUG produces the UG mapping: greedy with the better of NBFS∈{0,1}.
func MapUG(g *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	return GreedyBest(g, topo, allocNodes, WeightedHops)
}

// MapUWH produces the UWH mapping: UG followed by Algorithm 2.
func MapUWH(g *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	nodeOf := MapUG(g, topo, allocNodes)
	RefineWH(g, topo, allocNodes, nodeOf, RefineOptions{})
	return nodeOf
}

// MapUMC produces the UMC mapping: UG followed by volume-congestion
// refinement (Algorithm 3).
func MapUMC(g *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	nodeOf := MapUG(g, topo, allocNodes)
	RefineCongestion(g, topo, allocNodes, nodeOf, VolumeCongestion, RefineOptions{})
	return nodeOf
}

// MapUMMC produces the UMMC mapping: UG on the volume-weighted graph
// followed by message-congestion refinement on msgG, a message-count-
// weighted view of the same supertasks (taskgraph.CoarseMessageGraph).
// Pass g itself as msgG when every edge represents a single message.
func MapUMMC(g, msgG *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	nodeOf := MapUG(g, topo, allocNodes)
	RefineCongestion(msgG, topo, allocNodes, nodeOf, MessageCongestion, RefineOptions{})
	return nodeOf
}

// MapUMCA produces the dynamic-routing congestion variant of §III-C's
// closing remark: UG followed by the approximate congestion
// refinement in which per-link loads are expectations over all
// minimal dimension-ordered routes (Blue Gene style adaptive
// routing).
func MapUMCA(g *graph.Graph, topo torus.MultipathTopology, allocNodes []int32) []int32 {
	nodeOf := MapUG(g, topo, allocNodes)
	RefineCongestionAdaptive(g, topo, allocNodes, nodeOf, VolumeCongestion, RefineOptions{})
	return nodeOf
}

// MapUTH produces the TH-objective variant the paper mentions but
// does not plot ("we do not give the results for TH variant as they
// are very close to those of UG and UWH", §IV): greedy plus WH
// refinement, both under the TotalHops objective.
func MapUTH(g *graph.Graph, topo torus.Topology, allocNodes []int32) []int32 {
	nodeOf := GreedyBest(g, topo, allocNodes, TotalHops)
	RefineWH(g, topo, allocNodes, nodeOf, RefineOptions{Objective: TotalHops})
	return nodeOf
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/torus"
)

// capacityFixture builds a graph of n groups with the given weights,
// an allocation whose capacities are a permutation of those weights,
// and an initial mapping that scrambles the groups across the nodes.
func capacityFixture(t *testing.T, weights []int64, seed int64) (*graph.Graph, *torus.Torus, []int32, []int32, []int64, []int64) {
	t.Helper()
	n := len(weights)
	topo := torus.NewHopper3D(6, 6, 6)
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(n, 3*n, 40, seed)
	nodes := make([]int32, n)
	used := map[int32]bool{}
	for i := range nodes {
		for {
			m := int32(rng.Intn(topo.Nodes()))
			if !used[m] {
				used[m] = true
				nodes[i] = m
				break
			}
		}
	}
	capOfNode := make([]int64, topo.Nodes())
	capsPerm := rng.Perm(n)
	for i, m := range nodes {
		capOfNode[m] = weights[capsPerm[i]]
	}
	nodeOf := make([]int32, n)
	for i, p := range rng.Perm(n) {
		nodeOf[i] = nodes[p]
	}
	return g, topo, nodes, nodeOf, weights, capOfNode
}

func totalExcess(nodeOf []int32, weights, capOfNode []int64) int64 {
	var e int64
	for v, m := range nodeOf {
		if x := weights[v] - capOfNode[m]; x > 0 {
			e += x
		}
	}
	return e
}

func TestRepairCapacitiesFixesAllViolations(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		weights := []int64{24, 24, 16, 16, 16, 8, 8, 8, 8, 4}
		g, topo, _, nodeOf, w, caps := capacityFixture(t, weights, seed)
		RepairCapacities(g, topo, nodeOf, w, caps)
		if e := totalExcess(nodeOf, w, caps); e != 0 {
			t.Fatalf("seed %d: %d oversubscription remains", seed, e)
		}
		// Still a bijection onto the same node set.
		seen := map[int32]bool{}
		for _, m := range nodeOf {
			if seen[m] {
				t.Fatalf("seed %d: node %d used twice", seed, m)
			}
			seen[m] = true
		}
	}
}

func TestRepairCapacitiesNoopWhenFeasible(t *testing.T) {
	weights := []int64{16, 16, 16, 16}
	g, topo, _, nodeOf, w, caps := capacityFixture(t, weights, 3)
	before := append([]int32(nil), nodeOf...)
	if swaps := RepairCapacities(g, topo, nodeOf, w, caps); swaps != 0 {
		t.Fatalf("uniform case performed %d swaps", swaps)
	}
	for i := range nodeOf {
		if nodeOf[i] != before[i] {
			t.Fatalf("no-op repair moved group %d", i)
		}
	}
}

func TestRepairCapacitiesMinimizesWHDamage(t *testing.T) {
	// Two nodes, two groups: heavy group on the small node. The only
	// repair is one swap; WH afterwards must equal the feasible
	// assignment's WH.
	topo := torus.NewHopper3D(4, 4, 4)
	g := graph.FromEdges(2, []int32{0}, []int32{1}, []int64{10}, nil).Symmetrize()
	nodeOf := []int32{0, 5}
	w := []int64{16, 8}
	caps := make([]int64, topo.Nodes())
	caps[0] = 8
	caps[5] = 16
	if swaps := RepairCapacities(g, topo, nodeOf, w, caps); swaps != 1 {
		t.Fatalf("%d swaps, want 1", swaps)
	}
	if nodeOf[0] != 5 || nodeOf[1] != 0 {
		t.Fatalf("wrong repair: %v", nodeOf)
	}
}

func TestRepairCapacitiesGivesUpOnInfeasible(t *testing.T) {
	// Total capacity cannot host the weights: the pass must terminate
	// without looping.
	topo := torus.NewHopper3D(4, 4, 4)
	g := graph.FromEdges(2, []int32{0}, []int32{1}, []int64{5}, nil).Symmetrize()
	nodeOf := []int32{0, 5}
	w := []int64{16, 16}
	caps := make([]int64, topo.Nodes())
	caps[0] = 8
	caps[5] = 8
	RepairCapacities(g, topo, nodeOf, w, caps) // must return
	if nodeOf[0] == nodeOf[1] {
		t.Fatal("repair corrupted the bijection")
	}
}

package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/torus"
)

// This file implements the multilevel variant of the paper's WH
// refinement that §III-B sketches: "With slight modifications, it can
// perform the refinement on the finer level task vertices or in a
// multilevel fashion from coarser to finer levels."
//
// MapUML coarsens the (supertask) graph with heavy-edge matching,
// places the coarsest clusters onto node regions grown by BFS over
// the topology, and then refines from the coarsest level to the
// finest: at every level a Kernighan–Lin pass swaps the node sets of
// two equal-cardinality clusters when that lowers WH, and the finest
// level runs Algorithm 2 verbatim.

// MultilevelOptions configures MapUML.
type MultilevelOptions struct {
	// CoarsenTo stops coarsening once the cluster graph has at most
	// this many vertices (default 16).
	CoarsenTo int
	// Refine configures the per-level swap refinement and the final
	// Algorithm 2 run.
	Refine RefineOptions
	// Exec supplies the solve's scratch arena, worker pool and
	// cancellation; nil runs serial with fresh allocations.
	Exec *Exec
}

func (o MultilevelOptions) withDefaults() MultilevelOptions {
	if o.CoarsenTo == 0 {
		o.CoarsenTo = 16
	}
	return o
}

// mlLevel is one rung of the multilevel hierarchy. cmap maps this
// level's vertices to the clusters of the next (coarser) level and is
// nil on the coarsest rung.
type mlLevel struct {
	g    *graph.Graph
	cmap []int32
}

// heavyEdgeMatch computes a deterministic heavy-edge matching: the
// vertices are visited in decreasing order of total incident weight
// (ties by id) and matched with their heaviest unmatched neighbour.
// It returns the fine→coarse map and the coarse vertex count.
func heavyEdgeMatch(g *graph.Graph) ([]int32, int) {
	n := g.N()
	order := make([]int32, n)
	incident := make([]int64, n)
	for v := 0; v < n; v++ {
		order[v] = int32(v)
		for _, w := range g.Weights(v) {
			incident[v] += w
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return incident[order[i]] > incident[order[j]]
	})
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		var bestW int64 = -1
		nb := g.Neighbors(int(v))
		wt := g.Weights(int(v))
		for i, u := range nb {
			if u == v || match[u] >= 0 {
				continue
			}
			if wt[i] > bestW || (wt[i] == bestW && u < best) {
				bestW, best = wt[i], u
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
		} else {
			match[v] = v
		}
	}
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	nc := int32(0)
	for v := 0; v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = nc
		if m := match[v]; int(m) != v {
			cmap[m] = nc
		}
		nc++
	}
	return cmap, int(nc)
}

// contractClusters builds the coarse cluster graph: parallel edges are
// merged by graph.FromEdges, intra-cluster edges dropped, vertex
// weights summed.
func contractClusters(g *graph.Graph, cmap []int32, nc int) *graph.Graph {
	vw := make([]int64, nc)
	for v := 0; v < g.N(); v++ {
		vw[cmap[v]] += g.VertexWeight(v)
	}
	var us, vs []int32
	var ws []int64
	for u := 0; u < g.N(); u++ {
		cu := cmap[u]
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			if cv := cmap[g.Adj[i]]; cu != cv {
				us = append(us, cu)
				vs = append(vs, cv)
				ws = append(ws, g.EdgeWeight(int(i)))
			}
		}
	}
	return graph.FromEdges(nc, us, vs, ws, vw)
}

// mlHierarchy builds the matching hierarchy from the fine graph down
// to at most coarsenTo clusters, stopping early when matching stalls.
func mlHierarchy(g *graph.Graph, coarsenTo int) []mlLevel {
	levels := []mlLevel{{g: g}}
	cur := g
	for cur.N() > coarsenTo {
		cmap, nc := heavyEdgeMatch(cur)
		if float64(nc) > 0.95*float64(cur.N()) {
			break // star-like graph: matching no longer shrinks it
		}
		next := contractClusters(cur, cmap, nc)
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, mlLevel{g: next})
		cur = next
	}
	return levels
}

// clusterSets returns, for hierarchy level l, the level-0 membership:
// cl0 maps each fine vertex to its level-l cluster and members lists
// the fine vertices of each cluster in increasing id order.
func clusterSets(levels []mlLevel, l int) (cl0 []int32, members [][]int32) {
	n0 := levels[0].g.N()
	cl0 = make([]int32, n0)
	for v := range cl0 {
		cl0[v] = int32(v)
	}
	for i := 0; i < l; i++ {
		cmap := levels[i].cmap
		for v := range cl0 {
			cl0[v] = cmap[cl0[v]]
		}
	}
	members = make([][]int32, levels[l].g.N())
	for v := 0; v < n0; v++ {
		c := cl0[v]
		members[c] = append(members[c], int32(v))
	}
	return cl0, members
}

// placeCoarsest assigns every coarsest-level cluster a region of
// |members| empty allocated nodes grown by BFS over the topology, in
// the greedy order of Algorithm 1 (max-volume cluster first, then by
// connectivity to the already placed clusters). It fills nodeOf for
// all fine vertices.
func placeCoarsest(gl *graph.Graph, members [][]int32, topo torus.Topology, allocNodes []int32, nodeOf []int32, ex *Exec) {
	nc := gl.N()
	st := newMapState(gl, topo, allocNodes, ex) // reused for its BFS scratch and allocated[]
	defer st.release()
	ar := ex.arenaOf()
	occupied := ar.Bools(topo.Nodes())
	rep := ar.Int32s(nc) // first node of each placed cluster's region
	volume := ar.Int64s(nc)
	conn := ar.MaxHeap(nc)
	placed := ar.Bools(nc)
	defer func() {
		ar.PutBools(occupied)
		ar.PutInt32s(rep)
		ar.PutInt64s(volume)
		ar.PutMaxHeap(conn)
		ar.PutBools(placed)
	}()
	for i := range rep {
		rep[i] = -1
	}
	for v := 0; v < nc; v++ {
		for _, w := range gl.Weights(v) {
			volume[v] += w
		}
	}
	nPlaced := 0

	// anyEmpty reports whether an allocated node is still free.
	anyEmpty := func() int32 {
		for _, m := range allocNodes {
			if !occupied[m] {
				return m
			}
		}
		panic("core: multilevel placement ran out of allocated nodes")
	}

	// growRegion collects want empty allocated nodes nearest to seed
	// (BFS order, seed first) and assigns the cluster's members to
	// them in that order.
	growRegion := func(c int32, seed int32) {
		want := len(members[c])
		got := 0
		st.bfs([]int32{seed}, func(node, lv int32) bool {
			if st.allocated[node] && !occupied[node] {
				occupied[node] = true
				nodeOf[members[c][got]] = node
				if got == 0 {
					rep[c] = node
				}
				got++
			}
			return got < want
		})
		for got < want {
			// Disconnected allocation remnants: take any free node.
			m := anyEmpty()
			occupied[m] = true
			nodeOf[members[c][got]] = m
			if got == 0 {
				rep[c] = m
			}
			got++
		}
	}

	// bestSeed finds the empty allocated node minimizing the weighted
	// hop cost to the representatives of c's placed neighbours, with
	// the early-exit BFS of GETBESTNODE.
	bestSeed := func(c int32) int32 {
		type nbRep struct {
			node int32
			cost int64
		}
		var seeds []int32
		var nbs []nbRep
		nb := gl.Neighbors(int(c))
		wt := gl.Weights(int(c))
		for i, u := range nb {
			if placed[u] {
				nbs = append(nbs, nbRep{rep[u], wt[i]})
				seeds = append(seeds, rep[u])
			}
		}
		if len(seeds) == 0 {
			// Farthest empty allocated node from the occupied ones.
			var occ []int32
			for _, m := range allocNodes {
				if occupied[m] {
					occ = append(occ, m)
				}
			}
			if len(occ) == 0 {
				return allocNodes[0]
			}
			var best int32 = -1
			bestLv := int32(-1)
			st.bfs(occ, func(node, lv int32) bool {
				if st.allocated[node] && !occupied[node] && lv >= bestLv {
					if lv > bestLv || node < best {
						best = node
					}
					bestLv = lv
				}
				return true
			})
			if best < 0 {
				return anyEmpty()
			}
			return best
		}
		var best int32 = -1
		var bestCost int64
		stopLevel := int32(-1)
		st.bfs(seeds, func(node, lv int32) bool {
			if stopLevel >= 0 && lv > stopLevel {
				return false
			}
			if st.allocated[node] && !occupied[node] {
				stopLevel = lv
				var cost int64
				for _, r := range nbs {
					cost += r.cost * int64(topo.HopDist(int(node), int(r.node)))
				}
				if best < 0 || cost < bestCost || (cost == bestCost && node < best) {
					best, bestCost = node, cost
				}
			}
			return true
		})
		if best < 0 {
			return anyEmpty()
		}
		return best
	}

	place := func(c int32, seed int32) {
		growRegion(c, seed)
		placed[c] = true
		nPlaced++
		conn.Remove(int(c))
		nb := gl.Neighbors(int(c))
		wt := gl.Weights(int(c))
		for i, u := range nb {
			if !placed[u] {
				conn.Add(int(u), wt[i])
			}
		}
	}

	// Start from the max-volume cluster on the first allocated node.
	c0 := int32(0)
	var bestVol int64 = -1
	for c := 0; c < nc; c++ {
		if volume[c] > bestVol {
			bestVol, c0 = volume[c], int32(c)
		}
	}
	place(c0, allocNodes[0])
	for nPlaced < nc {
		var c int32
		if conn.Len() > 0 {
			ci, _ := conn.Pop()
			c = int32(ci)
		} else {
			// Disconnected component: max-volume unplaced cluster.
			c = -1
			var bv int64 = -1
			for v := 0; v < nc; v++ {
				if !placed[v] && volume[v] > bv {
					bv, c = volume[v], int32(v)
				}
			}
		}
		place(c, bestSeed(c))
	}
}

// clusterRefineState carries the per-level swap refinement context.
type clusterRefineState struct {
	g0      *graph.Graph // fine (level-0) graph
	topo    torus.Topology
	nodeOf  []int32   // fine vertex -> node (mutated)
	taskAt  []int32   // node -> fine vertex
	cl0     []int32   // fine vertex -> cluster at the current level
	members [][]int32 // cluster -> fine vertices (sorted by id)

	triedMark []int32 // generation marks: cluster already tried?
	triedGen  int32
}

// pairScratch is the generation-marked swap-pair bookkeeping of one
// swapDelta evaluation. Candidate scoring fans swaps out over the
// worker pool, and the marks are mutated per evaluation, so every
// concurrent scorer owns its own pairScratch.
type pairScratch struct {
	inPair  []int32 // generation marks: fine vertex in the swap pair?
	pairPos []int32 // index of the vertex within its cluster's members
	gen     int32
}

// clusterWH returns the WH incurred by a cluster: the weighted hops
// of every directed fine edge whose tail lies in the cluster.
func (cr *clusterRefineState) clusterWH(c int32, obj Objective) int64 {
	var wh int64
	g := cr.g0
	for _, t := range cr.members[c] {
		a := int(cr.nodeOf[t])
		for i := g.Xadj[t]; i < g.Xadj[t+1]; i++ {
			w := int64(1)
			if obj == WeightedHops {
				w = g.EdgeWeight(int(i))
			}
			wh += w * int64(cr.topo.HopDist(a, int(cr.nodeOf[g.Adj[i]])))
		}
	}
	return wh
}

// swapDelta computes the exact total WH change (doubled-edge
// accounting) of exchanging the node sets of clusters a and b:
// member i of a moves to the node of member i of b and vice versa.
// Internal a∪b edges are counted once per direction; edges leaving
// the pair are counted twice (their reverse direction changes by the
// same amount on the symmetric graph). It reads only shared state and
// mutates only ps, so concurrent scorers with distinct ps are safe.
func (cr *clusterRefineState) swapDelta(ps *pairScratch, a, b int32, obj Objective) int64 {
	g := cr.g0
	ma, mb := cr.members[a], cr.members[b]
	ps.gen++
	gen := ps.gen
	for i, t := range ma {
		ps.inPair[t] = gen
		ps.pairPos[t] = int32(i)
	}
	for i, t := range mb {
		ps.inPair[t] = gen
		ps.pairPos[t] = int32(i)
	}
	// newNode(t): position after the hypothetical swap.
	newNode := func(t int32) int32 {
		if ps.inPair[t] != gen {
			return cr.nodeOf[t]
		}
		if cr.cl0[t] == a {
			return cr.nodeOf[mb[ps.pairPos[t]]]
		}
		return cr.nodeOf[ma[ps.pairPos[t]]]
	}
	var d int64
	scan := func(mem []int32) {
		for _, t := range mem {
			nt, ot := int(newNode(t)), int(cr.nodeOf[t])
			for i := g.Xadj[t]; i < g.Xadj[t+1]; i++ {
				u := g.Adj[i]
				w := int64(1)
				if obj == WeightedHops {
					w = g.EdgeWeight(int(i))
				}
				if ps.inPair[u] == gen {
					// Internal edge: the loop visits both directions.
					d += w * int64(cr.topo.HopDist(nt, int(newNode(u)))-cr.topo.HopDist(ot, int(cr.nodeOf[u])))
				} else {
					// External edge: reverse direction changes equally.
					d += 2 * w * int64(cr.topo.HopDist(nt, int(cr.nodeOf[u]))-cr.topo.HopDist(ot, int(cr.nodeOf[u])))
				}
			}
		}
	}
	scan(ma)
	scan(mb)
	return d
}

// applySwap exchanges the node sets of equal-cardinality clusters a
// and b member-wise.
func (cr *clusterRefineState) applySwap(a, b int32) {
	ma, mb := cr.members[a], cr.members[b]
	for i := range ma {
		na, nb := cr.nodeOf[ma[i]], cr.nodeOf[mb[i]]
		cr.nodeOf[ma[i]], cr.nodeOf[mb[i]] = nb, na
		cr.taskAt[na], cr.taskAt[nb] = mb[i], ma[i]
	}
}

// refineClusterLevel runs one multilevel refinement stage: KL-style
// swaps of equal-cardinality level-l clusters, candidate clusters
// discovered by BFS over the topology from the nodes of the popped
// cluster's neighbours (the level-l analogue of Algorithm 2). It
// mutates nodeOf and returns the total WH gain achieved (positive =
// improvement, doubled-edge accounting).
func refineClusterLevel(g0, gl *graph.Graph, cl0 []int32, members [][]int32, topo torus.Topology, allocNodes []int32, nodeOf []int32, opt RefineOptions) int64 {
	opt = opt.withDefaults()
	ex := opt.Exec
	ar := ex.arenaOf()
	par := ex.par()
	nc := gl.N()
	st := newMapState(gl, topo, allocNodes, ex) // BFS scratch + allocated[]
	defer st.release()
	cr := &clusterRefineState{
		g0:        g0,
		topo:      topo,
		nodeOf:    nodeOf,
		taskAt:    ar.Int32s(topo.Nodes()),
		cl0:       cl0,
		members:   members,
		triedMark: ar.Int32s(nc),
	}
	defer func() {
		ar.PutInt32s(cr.taskAt)
		ar.PutInt32s(cr.triedMark)
	}()
	for i := range cr.taskAt {
		cr.taskAt[i] = -1
	}
	for t := 0; t < g0.N(); t++ {
		cr.taskAt[nodeOf[t]] = int32(t)
	}

	// Per-cluster WH values: clusterWH reads only the shared placement,
	// so the per-pass reloads fan out over the worker pool; the serial
	// fill below keeps heap order identical at every worker count.
	whVals := ar.Int64s(nc)
	defer ar.PutInt64s(whVals)
	loadWH := func() {
		par.ForEachIdx(nc, func(c int) { whVals[c] = cr.clusterWH(int32(c), opt.Objective) })
	}
	loadWH()
	var totalWH int64
	for c := 0; c < nc; c++ {
		totalWH += whVals[c]
	}
	var totalGain int64
	heap := ar.MaxHeap(nc)
	defer ar.PutMaxHeap(heap)
	var seeds []int32

	// Swap-candidate scoring scratch: the serial path owns one
	// pairScratch; parallel scoring slot i owns scorers[i] for the
	// whole refine call (generation marks make reuse across pops
	// correct without re-zeroing — borrowing fresh buffers per
	// candidate would cost O(n) zeroing against O(deg) useful work).
	newPS := func() *pairScratch {
		return &pairScratch{inPair: ar.Int32s(g0.N()), pairPos: ar.Int32s(g0.N())}
	}
	putPS := func(ps *pairScratch) {
		ar.PutInt32s(ps.inPair)
		ar.PutInt32s(ps.pairPos)
	}
	serialPS := newPS()
	defer putPS(serialPS)
	var scorers []*pairScratch
	if ex.par().NumWorkers() > 1 {
		scorers = make([]*pairScratch, opt.Delta)
		for i := range scorers {
			scorers[i] = newPS()
		}
		defer func() {
			for _, ps := range scorers {
				putPS(ps)
			}
		}()
	}
	cands := make([]int32, 0, opt.Delta)
	deltas := make([]int64, opt.Delta)

	for pass := 0; pass < opt.MaxPasses; pass++ {
		if ex.cancelled() {
			break
		}
		passStart := totalWH
		heap.Clear()
		if pass > 0 {
			loadWH()
		}
		for c := 0; c < nc; c++ {
			heap.Push(c, whVals[c])
		}
		for heap.Len() > 0 {
			if ex.cancelled() {
				break
			}
			ci, _ := heap.Pop()
			cwh := int32(ci)
			seeds = seeds[:0]
			for _, u := range gl.Neighbors(int(cwh)) {
				for _, t := range members[u] {
					seeds = append(seeds, nodeOf[t])
				}
			}
			if len(seeds) == 0 {
				continue
			}
			// Collect up to Delta equal-cardinality candidates in BFS
			// order — the exact prefix the serial algorithm would have
			// tried — then score them (in parallel when workers are
			// free) and apply the first improving swap in that order.
			cands = cands[:0]
			cr.triedGen++
			st.bfs(seeds, func(node, lv int32) bool {
				t := cr.taskAt[node]
				if t < 0 {
					return true
				}
				b := cl0[t]
				if b == cwh || cr.triedMark[b] == cr.triedGen {
					return true
				}
				cr.triedMark[b] = cr.triedGen
				if len(members[b]) != len(members[cwh]) {
					return true // only equal-cardinality clusters swap 1:1
				}
				cands = append(cands, b)
				return len(cands) < opt.Delta
			})
			chosen := -1
			var chosenDelta int64
			// Fan scoring out only when one evaluation is chunky
			// enough to amortize the hand-off: swapDelta walks every
			// member's adjacency, so small clusters (the fine
			// levels) score faster serially.
			if scorers != nil && len(cands) > 1 && len(members[cwh]) >= 16 {
				par.ForEachIdx(len(cands), func(i int) {
					deltas[i] = cr.swapDelta(scorers[i], cwh, cands[i], opt.Objective)
				})
				for i := range cands {
					if deltas[i] < 0 {
						chosen, chosenDelta = i, deltas[i]
						break
					}
				}
			} else {
				for i, b := range cands {
					if d := cr.swapDelta(serialPS, cwh, b, opt.Objective); d < 0 {
						chosen, chosenDelta = i, d
						break
					}
				}
			}
			if chosen >= 0 {
				b := cands[chosen]
				cr.applySwap(cwh, b)
				totalWH += chosenDelta
				totalGain -= chosenDelta
				for _, u := range gl.Neighbors(int(cwh)) {
					if heap.Contains(int(u)) {
						heap.Update(int(u), cr.clusterWH(u, opt.Objective))
					}
				}
				for _, u := range gl.Neighbors(int(b)) {
					if heap.Contains(int(u)) {
						heap.Update(int(u), cr.clusterWH(u, opt.Objective))
					}
				}
				if heap.Contains(int(b)) {
					heap.Update(int(b), cr.clusterWH(b, opt.Objective))
				}
			}
		}
		passGain := passStart - totalWH
		if passStart == 0 || float64(passGain) < opt.MinPassGain*float64(passStart) {
			break
		}
	}
	return totalGain
}

// MapUML maps the symmetric task graph g one-to-one onto allocNodes
// with the multilevel scheme: heavy-edge-matching hierarchy, BFS
// region placement of the coarsest clusters, cluster-swap WH
// refinement from the coarsest level to the finest, and Algorithm 2
// on the finest level. It returns the task→node mapping.
func MapUML(g *graph.Graph, topo torus.Topology, allocNodes []int32, opt MultilevelOptions) []int32 {
	opt = opt.withDefaults()
	ex := opt.Exec
	opt.Refine.Exec = ex
	n := g.N()
	if len(allocNodes) < n {
		panic("core: fewer allocated nodes than tasks")
	}
	levels := mlHierarchy(g, opt.CoarsenTo)
	L := len(levels) - 1
	ex.Count("coarse_levels", int64(L))
	nodeOf := make([]int32, n)
	if L == 0 {
		// Graph already at/below the coarsest size: plain UG + WH.
		copy(nodeOf, GreedyBestEx(g, topo, allocNodes, opt.Refine.Objective, ex))
		RefineWH(g, topo, allocNodes, nodeOf, opt.Refine)
		return nodeOf
	}
	cl0, members := clusterSets(levels, L)
	placeCoarsest(levels[L].g, members, topo, allocNodes, nodeOf, ex)
	for l := L; l >= 1; l-- {
		if ex.cancelled() {
			break
		}
		cl0, members = clusterSets(levels, l)
		refineClusterLevel(g, levels[l].g, cl0, members, topo, allocNodes, nodeOf, opt.Refine)
	}
	RefineWH(g, topo, allocNodes, nodeOf, opt.Refine)
	return nodeOf
}

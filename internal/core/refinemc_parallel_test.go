package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/arena"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/torus"
)

// Parallel congestion-refinement tests: the Algorithm 3 scoring
// fan-out must change wall-clock only, never bytes. These run under
// `make race` as the proof that the concurrent scorers are read-only
// between commits.

// refineMCFixture builds an instance dense enough to pass the scoring
// work gate, so the worker sweep genuinely exercises the fan-out.
func refineMCFixture(t testing.TB) (*graph.Graph, *torus.Torus, []int32) {
	t.Helper()
	topo := torus.NewHopper3D(16, 12, 16)
	a, err := allocFixture(topo, 256)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(256, 1024, 100, 31)
	if congScoreWork(g, topo) < congScoreParMinWork {
		t.Fatalf("fixture below the parallel work gate: %d < %d",
			congScoreWork(g, topo), congScoreParMinWork)
	}
	return g, topo, a
}

// execWithWorkers builds an Exec running w workers under ctx.
func execWithWorkers(ctx context.Context, w int) *Exec {
	return &Exec{Par: parallel.NewGroup(ctx, w), Arena: arena.New()}
}

// TestRefineCongestionWorkerDeterminism: for both congestion kinds and
// the adaptive variant, the refined mapping and the swap count must be
// byte-identical at workers = 1, 2 and 8.
func TestRefineCongestionWorkerDeterminism(t *testing.T) {
	g, topo, nodes := refineMCFixture(t)
	base := MapUG(g, topo, nodes)

	run := func(kind CongestionKind, adaptive bool, w int) ([]int32, int) {
		nodeOf := append([]int32(nil), base...)
		opt := RefineOptions{Exec: execWithWorkers(context.Background(), w)}
		var swaps int
		if adaptive {
			swaps = RefineCongestionAdaptive(g, topo, nodes, nodeOf, kind, opt)
		} else {
			swaps = RefineCongestion(g, topo, nodes, nodeOf, kind, opt)
		}
		return nodeOf, swaps
	}
	cases := []struct {
		name     string
		kind     CongestionKind
		adaptive bool
	}{
		{"volume", VolumeCongestion, false},
		{"message", MessageCongestion, false},
		{"volume-adaptive", VolumeCongestion, true},
	}
	for _, tc := range cases {
		serial, serialSwaps := run(tc.kind, tc.adaptive, 1)
		if serialSwaps == 0 {
			t.Fatalf("%s: refinement found no swap on the fixture", tc.name)
		}
		for _, w := range []int{2, 8} {
			got, swaps := run(tc.kind, tc.adaptive, w)
			if swaps != serialSwaps {
				t.Fatalf("%s workers=%d: %d swaps, serial did %d", tc.name, w, swaps, serialSwaps)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("%s workers=%d: mapping diverged from serial", tc.name, w)
			}
		}
	}
}

// TestRefineCongestionGateKeepsBytes: an instance below the work gate
// takes the serial fast path at any worker count; forcing it through
// with a parallel pool must still produce the serial bytes, because
// the commit rule is shared.
func TestRefineCongestionGateKeepsBytes(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := allocFixture(topo, 24)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(24, 60, 40, 9)
	if congScoreWork(g, topo) >= congScoreParMinWork {
		t.Fatalf("small fixture unexpectedly passes the work gate")
	}
	base := MapUG(g, topo, a)
	serial := append([]int32(nil), base...)
	RefineCongestion(g, topo, a, serial, VolumeCongestion, RefineOptions{})
	pooled := append([]int32(nil), base...)
	RefineCongestion(g, topo, a, pooled, VolumeCongestion,
		RefineOptions{Exec: execWithWorkers(context.Background(), 8)})
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatal("gated instance diverged between nil Exec and an 8-worker pool")
	}
}

// TestRefineCongestionCancelMidRefinement: cancelling the context
// while Algorithm 3 is mid-flight must make it bail at the next
// commit-round poll with a structurally valid (injective, allocated)
// mapping — not run to convergence, not corrupt state.
func TestRefineCongestionCancelMidRefinement(t *testing.T) {
	g, topo, nodes := refineMCFixture(t)
	base := MapUG(g, topo, nodes)

	// Baseline: how many swaps an uncancelled run commits.
	full := append([]int32(nil), base...)
	fullSwaps := RefineCongestion(g, topo, nodes, full, VolumeCongestion,
		RefineOptions{Exec: execWithWorkers(context.Background(), 2)})
	if fullSwaps < 2 {
		t.Skipf("fixture converges in %d swaps; nothing to cancel mid-flight", fullSwaps)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-dead context: the first poll must stop the run
	cancelled := append([]int32(nil), base...)
	swaps := RefineCongestion(g, topo, nodes, cancelled, VolumeCongestion,
		RefineOptions{Exec: execWithWorkers(ctx, 2)})
	if swaps != 0 {
		t.Fatalf("pre-cancelled context still committed %d swaps", swaps)
	}
	if !reflect.DeepEqual(cancelled, base) {
		t.Fatal("pre-cancelled refinement mutated the mapping")
	}

	// Mid-flight: cancel shortly after the run starts; it must return
	// promptly with a valid permutation of the allocated nodes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel2()
	mid := append([]int32(nil), base...)
	start := time.Now()
	RefineCongestion(g, topo, nodes, mid, VolumeCongestion,
		RefineOptions{Exec: execWithWorkers(ctx2, 2)})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled refinement ran %v", elapsed)
	}
	allocated := map[int32]bool{}
	for _, m := range nodes {
		allocated[m] = true
	}
	used := map[int32]bool{}
	for task, m := range mid {
		if !allocated[m] {
			t.Fatalf("task %d on unallocated node %d after cancellation", task, m)
		}
		if used[m] {
			t.Fatalf("node %d hosts two tasks after cancellation", m)
		}
		used[m] = true
	}
}

// allocFixture reserves n sparse nodes on topo (helper shared by the
// parallel refinement tests; returns node ids only).
func allocFixture(topo *torus.Torus, n int) ([]int32, error) {
	a, err := alloc.Generate(topo, n, alloc.Config{Mode: alloc.Sparse, Seed: 13})
	if err != nil {
		return nil, err
	}
	return a.Nodes, nil
}

package core

import (
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/torus"
)

// isPermutationOnto reports whether nodeOf maps tasks bijectively
// into the allocated node set.
func isPermutationOnto(nodeOf []int32, a *alloc.Allocation) bool {
	allocated := map[int32]bool{}
	for _, m := range a.Nodes {
		allocated[m] = true
	}
	used := map[int32]bool{}
	for _, m := range nodeOf {
		if !allocated[m] || used[m] {
			return false
		}
		used[m] = true
	}
	return true
}

// Property: for arbitrary seeds, the full pipeline of every variant
// yields a valid injective mapping and the refinements never worsen
// their own objective.
func TestMappingInvariantsProperty(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	prop := func(seed int64) bool {
		n := 16 + int(uint64(seed)%17)
		a, err := alloc.Generate(topo, n, alloc.Config{Mode: alloc.Sparse, Seed: seed})
		if err != nil {
			return false
		}
		g := graph.RandomConnected(n, 3*n, 20, seed+1)
		ug := MapUG(g, topo, a.Nodes)
		if !isPermutationOnto(ug, a) {
			return false
		}
		whUG := objectiveValue(g, topo, ug, WeightedHops)
		uwh := append([]int32(nil), ug...)
		RefineWH(g, topo, a.Nodes, uwh, RefineOptions{})
		if !isPermutationOnto(uwh, a) {
			return false
		}
		if objectiveValue(g, topo, uwh, WeightedHops) > whUG {
			return false
		}
		umc := append([]int32(nil), ug...)
		RefineCongestion(g, topo, a.Nodes, umc, VolumeCongestion, RefineOptions{})
		return isPermutationOnto(umc, a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy mapping quality is invariant under relabeling the
// allocation order (the algorithm reads the node set, not its order,
// except for the arbitrary first placement).
func TestGreedyAllocationOrderOnlyAffectsSeedNode(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := alloc.Generate(topo, 20, alloc.Config{Mode: alloc.Sparse, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(20, 60, 10, 4)
	base := Greedy(g, topo, a.Nodes, GreedyOptions{})
	// Reverse all but the first allocated node: t0 lands on the same
	// node, and the BFS-driven construction sees the same node *set*.
	rev := append([]int32(nil), a.Nodes...)
	for i, j := 1, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	alt := Greedy(g, topo, rev, GreedyOptions{})
	whBase := objectiveValue(g, topo, base, WeightedHops)
	whAlt := objectiveValue(g, topo, alt, WeightedHops)
	if whBase != whAlt {
		t.Fatalf("allocation order changed greedy quality: %d vs %d", whBase, whAlt)
	}
}

// The RefineWH pass threshold must actually stop refinement: with
// MinPassGain of 100% no second pass can run, so the result equals a
// single-pass run.
func TestRefineWHPassThreshold(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := alloc.Generate(topo, 24, alloc.Config{Mode: alloc.Sparse, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(24, 70, 12, 6)
	one := make([]int32, 24)
	copy(one, a.Nodes[:24])
	multi := append([]int32(nil), one...)
	RefineWH(g, topo, a.Nodes, one, RefineOptions{MaxPasses: 1})
	RefineWH(g, topo, a.Nodes, multi, RefineOptions{MinPassGain: 1.0})
	whOne := objectiveValue(g, topo, one, WeightedHops)
	whMulti := objectiveValue(g, topo, multi, WeightedHops)
	if whOne != whMulti {
		t.Fatalf("MinPassGain=1.0 should behave like a single pass: %d vs %d", whOne, whMulti)
	}
}

// UTH must never lose to UG on the TotalHops objective it optimizes.
func TestUTHOptimizesTotalHops(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := alloc.Generate(topo, 24, alloc.Config{Mode: alloc.Sparse, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(24, 80, 50, 8)
	uth := MapUTH(g, topo, a.Nodes)
	ugTH := objectiveValue(g, topo, GreedyBest(g, topo, a.Nodes, TotalHops), TotalHops)
	uthTH := objectiveValue(g, topo, uth, TotalHops)
	if uthTH > ugTH {
		t.Fatalf("UTH TH %d worse than its own greedy %d", uthTH, ugTH)
	}
}

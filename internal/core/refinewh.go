package core

import (
	"repro/internal/graph"
	"repro/internal/torus"
)

// RefineOptions configures Algorithms 2 and 3.
type RefineOptions struct {
	// Delta bounds the swap candidates examined per task (∆=8 in the
	// paper's experiments).
	Delta int
	// MinPassGain is the minimum relative WH improvement a pass must
	// achieve for another pass to run (0.5% in the paper).
	MinPassGain float64
	// Objective selects WH or TH for Algorithm 2.
	Objective Objective
	// MaxPasses is a safety bound on refinement passes (default 32).
	MaxPasses int
	// Exec supplies the solve's scratch arena, worker pool and
	// cancellation; nil runs serial with fresh allocations.
	Exec *Exec
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.Delta == 0 {
		o.Delta = 8
	}
	if o.MinPassGain == 0 {
		o.MinPassGain = 0.005
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 32
	}
	return o
}

// RefineWH runs Algorithm 2 on a complete task→node mapping nodeOf of
// the symmetric coarse graph g, mutating it in place. It returns the
// total WH (or TH) improvement achieved, in the doubled edge
// accounting of the symmetric graph.
func RefineWH(g *graph.Graph, topo torus.Topology, allocNodes []int32, nodeOf []int32, opt RefineOptions) int64 {
	opt = opt.withDefaults()
	n := g.N()
	ex := opt.Exec
	st := newMapState(g, topo, allocNodes, ex)
	defer st.release()
	for t := 0; t < n; t++ {
		st.place(int32(t), nodeOf[t])
	}
	// st.nodeOf aliases its own slice; copy back at the end (before
	// release, which runs last-in).
	defer copy(nodeOf, st.nodeOf)

	cost := func(i int) int64 {
		if opt.Objective == TotalHops {
			return 1
		}
		return g.EdgeWeight(i)
	}
	// taskWHops: the WH a task is individually responsible for.
	taskWH := func(t int32) int64 {
		var wh int64
		a := int(st.nodeOf[t])
		for i := g.Xadj[t]; i < g.Xadj[t+1]; i++ {
			wh += cost(int(i)) * int64(topo.HopDist(a, int(st.nodeOf[g.Adj[i]])))
		}
		return wh
	}
	// deltaSwap computes the total WH change of swapping tasks a and b
	// (negative is an improvement). The a-b edge itself contributes no
	// change because hop distance is symmetric.
	deltaSwap := func(a, b int32) int64 {
		ma, mb := st.nodeOf[a], st.nodeOf[b]
		var d int64
		for i := g.Xadj[a]; i < g.Xadj[a+1]; i++ {
			u := g.Adj[i]
			if u == b {
				continue
			}
			mu := int(st.nodeOf[u])
			d += cost(int(i)) * int64(topo.HopDist(int(mb), mu)-topo.HopDist(int(ma), mu))
		}
		for i := g.Xadj[b]; i < g.Xadj[b+1]; i++ {
			u := g.Adj[i]
			if u == a {
				continue
			}
			mu := int(st.nodeOf[u])
			d += cost(int(i)) * int64(topo.HopDist(int(ma), mu)-topo.HopDist(int(mb), mu))
		}
		return 2 * d // symmetric graph stores each edge twice
	}

	ar := ex.arenaOf()
	// Per-task WH values, recomputed in parallel at each pass start:
	// taskWH(t) reads only the shared placement, so scoring fans out
	// over the worker pool and the serial heap load below keeps the
	// iteration order identical at every worker count.
	whVals := ar.Int64s(n)
	whHeap := ar.MaxHeap(n)
	defer func() {
		ar.PutInt64s(whVals)
		ar.PutMaxHeap(whHeap)
	}()
	loadWH := func() {
		ex.par().ForEachIdx(n, func(t int) { whVals[t] = taskWH(int32(t)) })
	}
	loadWH()
	var totalWH int64
	for t := 0; t < n; t++ {
		totalWH += whVals[t]
	}
	var totalGain int64
	seeds := make([]int32, 0, 16)
	cands := make([]int32, 0, opt.Delta)

	for pass := 0; pass < opt.MaxPasses; pass++ {
		if ex.cancelled() {
			break
		}
		passSwaps := int64(0)
		passStartWH := totalWH
		// Load the heap with each task's incurred WH.
		whHeap.Clear()
		if pass > 0 {
			loadWH()
		}
		for t := 0; t < n; t++ {
			whHeap.Push(t, whVals[t])
		}
		for whHeap.Len() > 0 {
			if ex.cancelled() {
				break
			}
			twhInt, _ := whHeap.Pop()
			twh := int32(twhInt)
			// BFS from the nodes of twh's neighbours.
			seeds = seeds[:0]
			for _, u := range g.Neighbors(int(twh)) {
				seeds = append(seeds, st.nodeOf[u])
			}
			if len(seeds) == 0 {
				continue
			}
			// Collect up to Delta swap partners in BFS order — the
			// exact prefix the serial loop would have tried — then
			// apply the first improving swap in that order. Scoring
			// stays serial here: a supertask deltaSwap is O(deg),
			// far below the cost of a fan-out; the stage's
			// parallelism lives in the per-pass loadWH above.
			cands = cands[:0]
			st.bfs(seeds, func(node, lv int32) bool {
				if !st.allocated[node] || node == st.nodeOf[twh] {
					return true
				}
				t := st.taskAt[node]
				if t < 0 {
					return true // empty allocated nodes can't swap here
				}
				cands = append(cands, t)
				return len(cands) < opt.Delta
			})
			chosen := -1
			var chosenDelta int64
			for i, t := range cands {
				if d := deltaSwap(twh, t); d < 0 {
					chosen, chosenDelta = i, d
					break
				}
			}
			if chosen >= 0 {
				// Perform the swap.
				passSwaps++
				t := cands[chosen]
				ma, mb := st.nodeOf[twh], st.nodeOf[t]
				st.place(twh, mb)
				st.place(t, ma)
				totalWH += chosenDelta
				totalGain -= chosenDelta
				// Update whHeap for the neighbours of both tasks.
				for _, u := range g.Neighbors(int(twh)) {
					if whHeap.Contains(int(u)) {
						whHeap.Update(int(u), taskWH(u))
					}
				}
				for _, u := range g.Neighbors(int(t)) {
					if whHeap.Contains(int(u)) {
						whHeap.Update(int(u), taskWH(u))
					}
				}
				if whHeap.Contains(int(t)) {
					whHeap.Update(int(t), taskWH(t))
				}
			}
		}
		ex.Count("wh_passes", 1)
		ex.Count("wh_swaps", passSwaps)
		passGain := passStartWH - totalWH
		if passStartWH == 0 || float64(passGain) < opt.MinPassGain*float64(passStartWH) {
			break
		}
	}
	return totalGain
}

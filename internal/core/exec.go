package core

import (
	"repro/internal/arena"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Exec is the execution context of one solve: the bounded fork-join
// group carrying intra-request parallelism and cooperative
// cancellation, and the scratch arena the solve borrows its
// node-sized buffers from. The Engine owns the arena and builds one
// Exec per request; the mapping algorithms thread it through their
// option structs. A nil *Exec (the legacy serial facades) means
// "serial, fresh allocations, never cancelled" — every algorithm
// produces byte-identical results either way.
type Exec struct {
	// Par bounds the solve's worker goroutines and carries the
	// request context. Nil runs serial.
	Par *parallel.Group
	// Arena recycles scratch buffers across solves. Nil allocates
	// fresh.
	Arena *arena.Arena
	// Trace, when non-nil, records the solve's stage timeline and
	// per-stage counters (Solve{Trace: true}). Nil — the default — is
	// zero-overhead: every span/counter call below is an immediate
	// no-op. Tracing never changes a mapping decision.
	Trace *trace.Trace
}

// par returns the group, nil-safely.
func (e *Exec) par() *parallel.Group {
	if e == nil {
		return nil
	}
	return e.Par
}

// arenaOf returns the arena, nil-safely.
func (e *Exec) arenaOf() *arena.Arena {
	if e == nil {
		return nil
	}
	return e.Arena
}

// cancelled reports whether the solve's context died. Algorithms poll
// it at safe points (between swaps, passes and placements) and bail
// early with structurally valid state; the engine surfaces ctx.Err.
func (e *Exec) cancelled() bool {
	return e != nil && e.Par.Cancelled()
}

// StartSpan opens a named stage span on the solve's trace, nil-safe
// both ways (nil Exec, nil Trace). The engine wraps its pipeline
// stages with it; core algorithms report counters into whichever span
// is open via Count/CountMax.
func (e *Exec) StartSpan(name string) *trace.Span {
	if e == nil {
		return nil
	}
	return e.Trace.Start(name)
}

// Count adds delta to a named counter of the currently open stage
// span (no-op untraced). Call it at stage boundaries — once per pass
// or batch, never inside a hot inner loop.
func (e *Exec) Count(name string, delta int64) {
	if e == nil {
		return
	}
	e.Trace.Add(name, delta)
}

// CountMax raises a named counter of the open stage span to v (no-op
// untraced) — the merge for depth-style counters.
func (e *Exec) CountMax(name string, v int64) {
	if e == nil {
		return
	}
	e.Trace.Max(name, v)
}

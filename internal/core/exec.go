package core

import (
	"repro/internal/arena"
	"repro/internal/parallel"
)

// Exec is the execution context of one solve: the bounded fork-join
// group carrying intra-request parallelism and cooperative
// cancellation, and the scratch arena the solve borrows its
// node-sized buffers from. The Engine owns the arena and builds one
// Exec per request; the mapping algorithms thread it through their
// option structs. A nil *Exec (the legacy serial facades) means
// "serial, fresh allocations, never cancelled" — every algorithm
// produces byte-identical results either way.
type Exec struct {
	// Par bounds the solve's worker goroutines and carries the
	// request context. Nil runs serial.
	Par *parallel.Group
	// Arena recycles scratch buffers across solves. Nil allocates
	// fresh.
	Arena *arena.Arena
}

// par returns the group, nil-safely.
func (e *Exec) par() *parallel.Group {
	if e == nil {
		return nil
	}
	return e.Par
}

// arenaOf returns the arena, nil-safely.
func (e *Exec) arenaOf() *arena.Arena {
	if e == nil {
		return nil
	}
	return e.Arena
}

// cancelled reports whether the solve's context died. Algorithms poll
// it at safe points (between swaps, passes and placements) and bail
// early with structurally valid state; the engine surfaces ctx.Err.
func (e *Exec) cancelled() bool {
	return e != nil && e.Par.Cancelled()
}

package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// fineFixture builds a 64-task path graph grouped 8 tasks per node on
// 8 allocated nodes, with a deliberately scrambled grouping.
func fineFixture(t *testing.T) (*graph.Graph, []int32, []int32, interface {
	HopDist(a, b int) int
	Nodes() int
}) {
	t.Helper()
	topo, a := fixture(t, 8, 51)
	var us, vs []int32
	var ws []int64
	for i := 0; i < 63; i++ {
		us = append(us, int32(i), int32(i+1))
		vs = append(vs, int32(i+1), int32(i))
		ws = append(ws, 7, 7)
	}
	g := graph.FromEdges(64, us, vs, ws, nil)
	group := make([]int32, 64)
	for i := range group {
		group[i] = int32((i * 5) % 8) // scrambled: neighbours split apart
	}
	nodeOf := make([]int32, 8)
	copy(nodeOf, a.Nodes[:8])
	return g, group, nodeOf, topo
}

func TestRefineWHFineImprovesWH(t *testing.T) {
	g, group, nodeOf, topo := fineFixture(t)
	_ = topo
	tp, _ := fixture(t, 8, 51)
	pl := &metrics.Placement{GroupOf: group, NodeOf: nodeOf}
	before := metrics.Compute(g, tp, pl)
	whGain, volGain := RefineWHFine(g, tp, group, nodeOf, RefineOptions{})
	after := metrics.Compute(g, tp, pl)
	if after.WH > before.WH {
		t.Fatalf("fine refinement worsened WH: %d -> %d", before.WH, after.WH)
	}
	if whGain < 0 || volGain < 0 {
		t.Fatalf("negative gains: wh %d vol %d (volume increase must be rejected)", whGain, volGain)
	}
	if after.ICV > before.ICV {
		t.Fatalf("fine refinement raised inter-node volume: %d -> %d", before.ICV, after.ICV)
	}
	if whGain > 0 && after.WH >= before.WH {
		t.Fatal("reported WH gain but metric did not improve")
	}
}

func TestRefineWHFinePreservesGroupSizes(t *testing.T) {
	g, group, nodeOf, _ := fineFixture(t)
	tp, _ := fixture(t, 8, 51)
	sizeBefore := make([]int, 8)
	for _, gr := range group {
		sizeBefore[gr]++
	}
	RefineWHFine(g, tp, group, nodeOf, RefineOptions{})
	sizeAfter := make([]int, 8)
	for _, gr := range group {
		sizeAfter[gr]++
	}
	for i := range sizeBefore {
		if sizeBefore[i] != sizeAfter[i] {
			t.Fatalf("group %d size changed: %d -> %d (capacity violation)", i, sizeBefore[i], sizeAfter[i])
		}
	}
}

func TestRefineWHFineGainAccounting(t *testing.T) {
	g, group, nodeOf, _ := fineFixture(t)
	tp, _ := fixture(t, 8, 51)
	pl := &metrics.Placement{GroupOf: group, NodeOf: nodeOf}
	before := metrics.Compute(g, tp, pl)
	whGain, volGain := RefineWHFine(g, tp, group, nodeOf, RefineOptions{})
	after := metrics.Compute(g, tp, pl)
	// The doubled-edge accounting of the refinement equals the
	// directed-graph metric exactly (symmetric graph stores both
	// directions).
	if int64(before.WH-after.WH) != whGain {
		t.Fatalf("WH gain %d != metric delta %d", whGain, before.WH-after.WH)
	}
	if int64(before.ICV-after.ICV) != volGain {
		t.Fatalf("vol gain %d != metric delta %d", volGain, before.ICV-after.ICV)
	}
}

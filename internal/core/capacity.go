package core

import (
	"repro/internal/graph"
	"repro/internal/torus"
)

// RepairCapacities makes a one-to-one group→node mapping
// capacity-feasible for heterogeneous nodes (§III-A: group weights
// follow the per-node processor counts, so a group may only land on a
// node with enough processors). The mapping algorithms optimize
// locality without tracking capacities; this pass fixes any
// violations afterwards with weight-aware swaps chosen to damage WH
// the least.
//
// weight[v] is the task count of group v and capacity[m] the
// processor count of node m (indexed by node id; unallocated nodes
// hold 0). When the multiset of group weights is dominated by the
// multiset of capacities — which the grouping step guarantees — a
// feasible assignment exists and the pass always terminates: each
// swap moves the most-oversubscribed group onto a node that fits it
// and strictly decreases the total oversubscription. Returns the
// number of swaps performed.
func RepairCapacities(g *graph.Graph, topo torus.Topology, nodeOf []int32, weight []int64, capacity []int64) int {
	n := g.N()
	taskAt := make([]int32, topo.Nodes())
	for i := range taskAt {
		taskAt[i] = -1
	}
	for v := 0; v < n; v++ {
		taskAt[nodeOf[v]] = int32(v)
	}
	excess := func(v int32) int64 {
		return weight[v] - capacity[nodeOf[v]]
	}
	// deltaWH of swapping groups a and b (doubled-edge accounting of
	// the symmetric graph; only relative order matters here).
	deltaWH := func(a, b int32) int64 {
		ma, mb := nodeOf[a], nodeOf[b]
		var d int64
		scan := func(t int32, from, to int32) {
			for i := g.Xadj[t]; i < g.Xadj[t+1]; i++ {
				u := g.Adj[i]
				if u == a || u == b {
					continue // pair-internal: unchanged under swap
				}
				mu := int(nodeOf[u])
				d += g.EdgeWeight(int(i)) *
					int64(topo.HopDist(int(to), mu)-topo.HopDist(int(from), mu))
			}
		}
		scan(a, ma, mb)
		scan(b, mb, ma)
		return d
	}

	swaps := 0
	for {
		// Most oversubscribed group.
		var worst int32 = -1
		var worstExcess int64
		for v := int32(0); v < int32(n); v++ {
			if e := excess(v); e > worstExcess {
				worst, worstExcess = v, e
			}
		}
		if worst < 0 {
			return swaps
		}
		// Swap partner: a group on a node that fits worst, itself
		// lighter than worst (so total oversubscription strictly
		// drops). Among partners, least WH damage wins.
		var best int32 = -1
		var bestDelta int64
		for v := int32(0); v < int32(n); v++ {
			if v == worst || weight[v] >= weight[worst] {
				continue
			}
			if capacity[nodeOf[v]] < weight[worst] {
				continue
			}
			d := deltaWH(worst, v)
			if best < 0 || d < bestDelta || (d == bestDelta && v < best) {
				best, bestDelta = v, d
			}
		}
		if best < 0 {
			// No partner: capacities cannot host the weights (the
			// grouping step violated its contract). Leave the mapping
			// as is rather than loop forever.
			return swaps
		}
		ma, mb := nodeOf[worst], nodeOf[best]
		nodeOf[worst], nodeOf[best] = mb, ma
		taskAt[ma], taskAt[mb] = best, worst
		swaps++
	}
}

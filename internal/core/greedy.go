// Package core implements the paper's contribution: the three fast,
// high-quality topology-aware task mapping algorithms of §III.
//
//   - Greedy mapping (Algorithm 1) grows a mapping from the task with
//     the maximum send+receive volume, placing each task on the best
//     allocated node found by an early-exit BFS over the topology.
//   - WH refinement (Algorithm 2) is a Kernighan–Lin style swap
//     refinement of the weighted-hop metric.
//   - Congestion refinement (Algorithm 3) lowers the maximum link
//     congestion (volume-based MC or message-based MMC) with minimal
//     WH damage, exploiting static routing.
//
// All three operate on a symmetric coarse task graph whose vertices
// are supertasks (one per allocated node, produced by the grouping
// step in package taskgraph) and on a torus.Topology.
package core

import (
	"sort"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/torus"
)

// Objective selects the hop metric the greedy mapper and the WH
// refinement minimize: volume-weighted hops (WH) or plain hops (TH).
// The paper presents WH; "their adaptation for TH ... is trivial"
// (§III) and provided here.
type Objective int

// Objectives.
const (
	// WeightedHops minimizes WH = sum dilation*volume.
	WeightedHops Objective = iota
	// TotalHops minimizes TH = sum dilation.
	TotalHops
)

// GreedyOptions configures Algorithm 1.
type GreedyOptions struct {
	// NBFS is the number of BFS-seeded far-task selections performed
	// after the initial MSRV seed (§III-A; the implementation counts
	// selections after t0 so NBFS=0 and NBFS=1 give the two distinct
	// mappings the paper generates).
	NBFS int
	// Objective selects WH (default) or TH.
	Objective Objective
	// HeterogeneousFirst maps tasks whose vertex weight is unique in
	// the graph before all others, in decreasing weight order — the
	// paper's rule for non-uniform processor counts per node ("we map
	// the groups of tasks with different weights at the beginning of
	// the greedy mapping since their nodes are almost decided due
	// their uniqueness", §III-A).
	HeterogeneousFirst bool
	// NoEarlyExit disables GETBESTNODE's early-exit mechanism and
	// evaluates every empty allocated node instead of only the first
	// BFS level containing one. The paper credits the early exit for
	// the algorithm's speed ("in practice it runs faster thanks to
	// the early exits", §III-A); this switch exists for the ablation
	// benchmark.
	NoEarlyExit bool
	// Exec supplies the solve's scratch arena and cancellation; nil
	// runs serial with fresh allocations.
	Exec *Exec
}

// Greedy runs Algorithm 1: it maps each vertex of the symmetric task
// graph g onto a distinct node of allocNodes and returns the
// task→node mapping. len(allocNodes) must be >= g.N().
func Greedy(g *graph.Graph, topo torus.Topology, allocNodes []int32, opt GreedyOptions) []int32 {
	n := g.N()
	if len(allocNodes) < n {
		panic("core: fewer allocated nodes than tasks")
	}
	ex := opt.Exec
	ar := ex.arenaOf()
	st := newMapState(g, topo, allocNodes, ex)
	defer st.release()

	conn := ar.MaxHeap(n)
	mapped := ar.Bools(n)
	defer func() {
		ar.PutMaxHeap(conn)
		ar.PutBools(mapped)
	}()
	nMapped := 0
	bfsSeeded := 0

	// Total send+receive volume per task: the MSRV start and the BFS
	// tie-break both use it.
	volume := ar.Int64s(n)
	defer ar.PutInt64s(volume)
	for v := 0; v < n; v++ {
		for _, w := range g.Weights(v) {
			volume[v] += w
		}
	}

	mapTask := func(t int32, node int32) {
		st.place(t, node)
		mapped[t] = true
		nMapped++
		conn.Remove(int(t))
		nb := g.Neighbors(int(t))
		wt := g.Weights(int(t))
		for i, u := range nb {
			if !mapped[u] {
				conn.Add(int(u), wt[i]) // conn.update(tn, c(t, tn))
			}
		}
	}

	// Map t_MSRV to an arbitrary (first allocated) node.
	t0 := int32(0)
	var best int64 = -1
	for v := 0; v < n; v++ {
		if volume[v] > best {
			best, t0 = volume[v], int32(v)
		}
	}
	mapTask(t0, allocNodes[0])

	// Heterogeneous capacities: queue the unique-weight tasks to be
	// mapped first, heaviest first.
	var hetero []int32
	if opt.HeterogeneousFirst {
		freq := map[int64]int{}
		for v := 0; v < n; v++ {
			freq[g.VertexWeight(v)]++
		}
		for v := 0; v < n; v++ {
			if !mapped[v] && freq[g.VertexWeight(v)] == 1 {
				hetero = append(hetero, int32(v))
			}
		}
		sortByWeightDesc(g, hetero)
	}

	mappedSeeds := make([]int32, 0, n)
	for nMapped < n {
		if ex.cancelled() {
			// Bail early but keep the mapping complete: the remaining
			// tasks take the free allocated nodes in order (the engine
			// discards the result, downstream refinement must not see
			// a half-filled nodeOf).
			fillRemaining(st, mapped)
			break
		}
		var tbest int32 = -1
		if len(hetero) > 0 {
			tbest = hetero[0]
			hetero = hetero[1:]
			if mapped[tbest] {
				continue
			}
		} else if bfsSeeded < opt.NBFS {
			// Farthest unmapped task from the mapped set, ties in
			// favour of higher communication volume.
			mappedSeeds = mappedSeeds[:0]
			for v := 0; v < n; v++ {
				if mapped[v] {
					mappedSeeds = append(mappedSeeds, int32(v))
				}
			}
			far, _, ok := graph.FarthestVertex(g, mappedSeeds,
				func(v int32) bool { return !mapped[v] }, volume)
			if ok {
				tbest = far
			} else {
				tbest = maxVolumeUnmapped(mapped, volume)
			}
			bfsSeeded++
		} else if conn.Len() > 0 {
			t, _ := conn.Pop()
			tbest = int32(t)
		} else {
			// Disconnected component: take its max-volume task.
			tbest = maxVolumeUnmapped(mapped, volume)
		}
		var node int32
		if opt.NoEarlyExit {
			node = st.bestNodeExhaustive(tbest, opt.Objective)
		} else {
			node = st.bestNode(tbest, opt.Objective)
		}
		mapTask(tbest, node)
	}
	out := make([]int32, n)
	copy(out, st.nodeOf)
	return out
}

// fillRemaining assigns every unmapped task a free allocated node in
// increasing task/node order — the cheap deterministic completion of
// a cancelled greedy run.
func fillRemaining(st *mapState, mapped []bool) {
	next := 0
	for t := range mapped {
		if mapped[t] {
			continue
		}
		for ; next < len(st.allocNodes); next++ {
			if m := st.allocNodes[next]; st.taskAt[m] < 0 {
				st.place(int32(t), m)
				mapped[t] = true
				break
			}
		}
	}
}

// GreedyBest runs Algorithm 1 with NBFS=0 and NBFS=1 and returns the
// mapping with the lower objective value, as the paper's
// implementation does (§III-A).
func GreedyBest(g *graph.Graph, topo torus.Topology, allocNodes []int32, objective Objective) []int32 {
	return GreedyBestEx(g, topo, allocNodes, objective, nil)
}

// GreedyBestEx is GreedyBest under an execution context: the two
// independent greedy runs fork onto the solve's worker pool (they
// share nothing but read-only inputs and the concurrency-safe arena),
// and the winner is chosen afterwards exactly as the serial code
// does — so the result is identical at every worker count.
func GreedyBestEx(g *graph.Graph, topo torus.Topology, allocNodes []int32, objective Objective, ex *Exec) []int32 {
	var m0, m1 []int32
	ex.par().Fork(
		func() { m0 = Greedy(g, topo, allocNodes, GreedyOptions{NBFS: 0, Objective: objective, Exec: ex}) },
		func() { m1 = Greedy(g, topo, allocNodes, GreedyOptions{NBFS: 1, Objective: objective, Exec: ex}) },
	)
	ex.Count("greedy_attempts", 2)
	if objectiveValue(g, topo, m1, objective) < objectiveValue(g, topo, m0, objective) {
		return m1
	}
	return m0
}

// sortByWeightDesc orders tasks by decreasing vertex weight (stable
// by id for determinism).
func sortByWeightDesc(g *graph.Graph, tasks []int32) {
	sort.SliceStable(tasks, func(i, j int) bool {
		return g.VertexWeight(int(tasks[i])) > g.VertexWeight(int(tasks[j]))
	})
}

func maxVolumeUnmapped(mapped []bool, volume []int64) int32 {
	var t int32 = -1
	var best int64 = -1
	for v := range mapped {
		if !mapped[v] && volume[v] > best {
			best, t = volume[v], int32(v)
		}
	}
	return t
}

// objectiveValue evaluates WH or TH of a complete mapping over the
// symmetric coarse graph (each undirected edge counted twice,
// consistently for comparisons).
func objectiveValue(g *graph.Graph, topo torus.Topology, nodeOf []int32, obj Objective) int64 {
	var total int64
	for v := 0; v < g.N(); v++ {
		a := int(nodeOf[v])
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			h := int64(topo.HopDist(a, int(nodeOf[g.Adj[i]])))
			if obj == WeightedHops {
				total += h * g.EdgeWeight(int(i))
			} else {
				total += h
			}
		}
	}
	return total
}

// mapState holds the placement bookkeeping shared by Algorithm 1's
// GETBESTNODE and the refinement algorithms' BFS candidate searches.
// Its node-sized buffers dominate a solve's allocations, so they are
// borrowed from the solve's arena when one is supplied; release
// returns them. A mapState is single-goroutine state — parallel
// subtasks each borrow their own.
type mapState struct {
	g          *graph.Graph
	topo       torus.Topology
	allocNodes []int32
	ex         *Exec
	nodeOf     []int32 // task -> node (-1 while unmapped)
	taskAt     []int32 // node -> task (-1 when empty), len topo.Nodes()
	allocated  []bool  // node -> allocated?

	// BFS scratch with generation stamps so repeated traversals do
	// not pay O(nodes) resets.
	visitGen  int32
	visitMark []int32
	level     []int32
	queue     *ds.Queue
	nbBuf     []int32
}

func newMapState(g *graph.Graph, topo torus.Topology, allocNodes []int32, ex *Exec) *mapState {
	ar := ex.arenaOf()
	st := &mapState{
		g:          g,
		topo:       topo,
		allocNodes: allocNodes,
		ex:         ex,
		nodeOf:     ar.Int32s(g.N()),
		taskAt:     ar.Int32s(topo.Nodes()),
		allocated:  ar.Bools(topo.Nodes()),
		visitMark:  ar.Int32s(topo.Nodes()),
		level:      ar.Int32s(topo.Nodes()),
		queue:      ar.Queue(),
	}
	for i := range st.nodeOf {
		st.nodeOf[i] = -1
	}
	for i := range st.taskAt {
		st.taskAt[i] = -1
	}
	for _, m := range allocNodes {
		st.allocated[m] = true
	}
	return st
}

// release returns the state's buffers to the solve's arena. The
// mapState must not be used afterwards.
func (st *mapState) release() {
	ar := st.ex.arenaOf()
	ar.PutInt32s(st.nodeOf)
	ar.PutInt32s(st.taskAt)
	ar.PutBools(st.allocated)
	ar.PutInt32s(st.visitMark)
	ar.PutInt32s(st.level)
	ar.PutQueue(st.queue)
	st.nodeOf, st.taskAt, st.allocated, st.visitMark, st.level, st.queue = nil, nil, nil, nil, nil, nil
}

func (st *mapState) place(t, node int32) {
	st.nodeOf[t] = node
	st.taskAt[node] = t
}

// bestNode implements GETBESTNODE (§III-A): a BFS over the topology
// graph from the nodes hosting t's mapped neighbours, stopping at the
// first level that contains empty allocated nodes and returning the
// one that adds the least WH (or TH). Tasks with no mapped neighbour
// get one of the farthest allocated empty nodes from the non-empty
// nodes instead.
func (st *mapState) bestNode(t int32, obj Objective) int32 {
	type seedNB struct {
		node int32
		cost int64
	}
	var seeds []int32
	var nbPlaced []seedNB
	nb := st.g.Neighbors(int(t))
	wt := st.g.Weights(int(t))
	for i, u := range nb {
		if m := st.nodeOf[u]; m >= 0 {
			c := wt[i]
			if obj == TotalHops {
				c = 1
			}
			nbPlaced = append(nbPlaced, seedNB{m, c})
			seeds = append(seeds, m)
		}
	}
	if len(seeds) == 0 {
		return st.farthestEmptyNode()
	}
	// Cost of placing t at m.
	costAt := func(m int32) int64 {
		var c int64
		for _, s := range nbPlaced {
			c += s.cost * int64(st.topo.HopDist(int(m), int(s.node)))
		}
		return c
	}
	var best int32 = -1
	var bestCost int64
	stopLevel := int32(-1)
	st.bfs(seeds, func(node, lv int32) bool {
		if stopLevel >= 0 && lv > stopLevel {
			return false // early exit: a deeper level started
		}
		if st.allocated[node] && st.taskAt[node] < 0 {
			stopLevel = lv
			c := costAt(node)
			if best < 0 || c < bestCost || (c == bestCost && node < best) {
				best, bestCost = node, c
			}
		}
		return true
	})
	if best < 0 {
		// Every allocated node reachable is full (should not happen
		// with |alloc| >= |tasks|), fall back to any empty one.
		for _, m := range st.allocNodes {
			if st.taskAt[m] < 0 {
				return m
			}
		}
		panic("core: no empty allocated node")
	}
	return best
}

// bestNodeExhaustive is the no-early-exit variant of bestNode: it
// scores every empty allocated node (ablation baseline).
func (st *mapState) bestNodeExhaustive(t int32, obj Objective) int32 {
	nb := st.g.Neighbors(int(t))
	wt := st.g.Weights(int(t))
	type seedNB struct {
		node int32
		cost int64
	}
	var nbPlaced []seedNB
	for i, u := range nb {
		if m := st.nodeOf[u]; m >= 0 {
			c := wt[i]
			if obj == TotalHops {
				c = 1
			}
			nbPlaced = append(nbPlaced, seedNB{m, c})
		}
	}
	if len(nbPlaced) == 0 {
		return st.farthestEmptyNode()
	}
	var best int32 = -1
	var bestCost int64
	for _, m := range st.allocNodes {
		if st.taskAt[m] >= 0 {
			continue
		}
		var c int64
		for _, s := range nbPlaced {
			c += s.cost * int64(st.topo.HopDist(int(m), int(s.node)))
		}
		if best < 0 || c < bestCost || (c == bestCost && m < best) {
			best, bestCost = m, c
		}
	}
	if best < 0 {
		panic("core: no empty allocated node")
	}
	return best
}

// farthestEmptyNode returns an empty allocated node at maximum BFS
// distance from the set of non-empty nodes (used for tasks with no
// mapped neighbours, e.g. new components or BFS seeds).
func (st *mapState) farthestEmptyNode() int32 {
	var seeds []int32
	for _, m := range st.allocNodes {
		if st.taskAt[m] >= 0 {
			seeds = append(seeds, m)
		}
	}
	if len(seeds) == 0 {
		return st.allocNodes[0]
	}
	var best int32 = -1
	bestLevel := int32(-1)
	st.bfs(seeds, func(node, lv int32) bool {
		if st.allocated[node] && st.taskAt[node] < 0 && lv >= bestLevel {
			if lv > bestLevel || node < best {
				best = node
			}
			bestLevel = lv
		}
		return true
	})
	if best < 0 {
		for _, m := range st.allocNodes {
			if st.taskAt[m] < 0 {
				return m
			}
		}
		panic("core: no empty allocated node")
	}
	return best
}

// bfs runs a breadth-first traversal of the topology graph from the
// seed nodes (level 0), invoking visit in BFS order until it returns
// false. Seeds are visited too.
func (st *mapState) bfs(seeds []int32, visit func(node, level int32) bool) {
	st.visitGen++
	gen := st.visitGen
	st.queue.Clear()
	for _, s := range seeds {
		if st.visitMark[s] == gen {
			continue
		}
		st.visitMark[s] = gen
		st.level[s] = 0
		st.queue.Push(int(s))
	}
	for st.queue.Len() > 0 {
		v := int32(st.queue.Pop())
		if !visit(v, st.level[v]) {
			return
		}
		st.nbBuf = st.topo.NeighborNodes(int(v), st.nbBuf[:0])
		for _, u := range st.nbBuf {
			if st.visitMark[u] != gen {
				st.visitMark[u] = gen
				st.level[u] = st.level[v] + 1
				st.queue.Push(int(u))
			}
		}
	}
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

// emc evaluates the expected max volume congestion of a coarse
// mapping under the adaptive-routing model.
func emc(g *graph.Graph, topo torus.MultipathTopology, nodeOf []int32) float64 {
	pl := &metrics.Placement{NodeOf: nodeOf}
	return metrics.ComputeAdaptive(g, topo, pl).EMC
}

func TestRefineCongestionAdaptiveValidMapping(t *testing.T) {
	topo, a := fixture(t, 32, 19)
	g := graph.RandomConnected(32, 96, 80, 7)
	nodeOf := MapUG(g, topo, a.Nodes)
	RefineCongestionAdaptive(g, topo, a.Nodes, nodeOf, VolumeCongestion, RefineOptions{})
	checkValidMapping(t, g, a, nodeOf)
}

func TestRefineCongestionAdaptiveNeverWorsensEMC(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		topo, a := fixture(t, 32, seed)
		g := graph.RandomConnected(32, 96, 60, seed*13)
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(a.Nodes))
		nodeOf := make([]int32, g.N())
		for i := range nodeOf {
			nodeOf[i] = a.Nodes[perm[i]]
		}
		before := emc(g, topo, nodeOf)
		RefineCongestionAdaptive(g, topo, a.Nodes, nodeOf, VolumeCongestion, RefineOptions{})
		after := emc(g, topo, nodeOf)
		if after > before*(1+1e-9) {
			t.Fatalf("seed %d: EMC worsened %g -> %g", seed, before, after)
		}
	}
}

func TestRefineCongestionAdaptiveImprovesCrowdedLine(t *testing.T) {
	// Tasks strung along one torus line all talking to task 0: the
	// initial line placement overloads the links near task 0. The
	// adaptive refinement should spread the load and lower EMC.
	topo := torus.NewHopper3D(6, 6, 6)
	n := 12
	var us, vs []int32
	var ws []int64
	for i := 1; i < n; i++ {
		us = append(us, 0)
		vs = append(vs, int32(i))
		ws = append(ws, 100)
	}
	g := graph.FromEdges(n, us, vs, ws, nil).Symmetrize()
	// Allocation: two parallel lines of 6 nodes each.
	var nodes []int32
	for x := 0; x < 6; x++ {
		nodes = append(nodes, int32(topo.NodeAt([]int{x, 0, 0})))
		nodes = append(nodes, int32(topo.NodeAt([]int{x, 3, 3})))
	}
	// Worst-case start: interleave tasks across the two lines.
	nodeOf := make([]int32, n)
	copy(nodeOf, nodes[:n])
	before := emc(g, topo, nodeOf)
	swaps := RefineCongestionAdaptive(g, topo, nodes, nodeOf, VolumeCongestion, RefineOptions{})
	after := emc(g, topo, nodeOf)
	if swaps == 0 {
		t.Skip("refinement found no improving swap on this instance")
	}
	if after >= before {
		t.Fatalf("EMC not improved: %g -> %g (%d swaps)", before, after, swaps)
	}
}

func TestAdaptiveEqualsStaticOnRing(t *testing.T) {
	// On a 1D ring every node pair has exactly one minimal route, so
	// the adaptive refinement must make the same decisions as the
	// static Algorithm 3 (keys scale by RouteScale uniformly).
	topo := torus.New([]int{24}, []float64{1e9})
	nodes := make([]int32, 16)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	g := graph.RandomConnected(16, 40, 30, 11)
	a := MapUG(g, topo, nodes)
	b := append([]int32(nil), a...)
	RefineCongestion(g, topo, nodes, a, VolumeCongestion, RefineOptions{})
	RefineCongestionAdaptive(g, topo, nodes, b, VolumeCongestion, RefineOptions{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("static and adaptive diverge on single-route network at task %d: %d != %d", i, a[i], b[i])
		}
	}
}

func TestMapUMCAPipeline(t *testing.T) {
	topo, a := fixture(t, 24, 29)
	g := graph.RandomConnected(24, 72, 90, 17)
	nodeOf := MapUMCA(g, topo, a.Nodes)
	checkValidMapping(t, g, a, nodeOf)
	// UMCA must not have higher expected congestion than plain UG.
	ug := MapUG(g, topo, a.Nodes)
	if emc(g, topo, nodeOf) > emc(g, topo, ug)*(1+1e-9) {
		t.Fatalf("UMCA EMC %g above UG EMC %g", emc(g, topo, nodeOf), emc(g, topo, ug))
	}
}

func TestRefineCongestionAdaptiveMessageKind(t *testing.T) {
	topo, a := fixture(t, 24, 31)
	g := graph.RandomConnected(24, 60, 1, 23) // unit weights: one message per edge
	nodeOf := MapUG(g, topo, a.Nodes)
	pl := &metrics.Placement{NodeOf: append([]int32(nil), nodeOf...)}
	before := metrics.ComputeAdaptive(g, topo, pl).EMMC
	RefineCongestionAdaptive(g, topo, a.Nodes, nodeOf, MessageCongestion, RefineOptions{})
	checkValidMapping(t, g, a, nodeOf)
	after := metrics.ComputeAdaptive(g, topo, &metrics.Placement{NodeOf: nodeOf}).EMMC
	if after > before*(1+1e-9) {
		t.Fatalf("EMMC worsened %g -> %g", before, after)
	}
}

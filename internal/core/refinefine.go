package core

import (
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/torus"
)

// RefineWHFine performs Algorithm 2 on the *finer level* task
// vertices, the variant §III-B describes but leaves switched off by
// default: instead of swapping whole supertasks (nodes), it swaps
// individual tasks between groups. The paper's caveat — "with
// WH-improving swap operations on the finer level, the total
// internode communication volume can also increase and the
// performance may decrease. Although this increase can also be
// tracked during the refinement..." — is implemented literally: a
// swap is accepted only when it strictly lowers WH without raising
// the inter-node communication volume.
//
// fine is the symmetric fine task graph; group maps each task to a
// group (mutated in place); nodeOf maps groups to nodes (not
// mutated). Swapping two tasks exchanges their groups, so per-group
// occupancies (processor counts) are preserved. It returns the WH
// gain and the inter-node volume gain achieved (both nonnegative,
// doubled-edge accounting).
func RefineWHFine(fine *graph.Graph, topo torus.Topology, group []int32, nodeOf []int32, opt RefineOptions) (whGain, volGain int64) {
	opt = opt.withDefaults()
	n := fine.N()
	nodeOfTask := func(t int32) int32 { return nodeOf[group[t]] }

	taskWH := func(t int32) int64 {
		var wh int64
		a := int(nodeOfTask(t))
		for i := fine.Xadj[t]; i < fine.Xadj[t+1]; i++ {
			wh += fine.EdgeWeight(int(i)) * int64(topo.HopDist(a, int(nodeOfTask(fine.Adj[i]))))
		}
		return wh
	}
	// deltas returns the WH and inter-node-volume change of swapping
	// tasks a and b (groups exchanged).
	deltas := func(a, b int32) (dWH, dVol int64) {
		na, nb := nodeOfTask(a), nodeOfTask(b)
		if na == nb {
			return 0, 0
		}
		acc := func(t int32, from, to int32, skip int32) {
			for i := fine.Xadj[t]; i < fine.Xadj[t+1]; i++ {
				u := fine.Adj[i]
				if u == skip {
					continue
				}
				nu := nodeOfTask(u)
				// The neighbour may be the other swapped task; its
				// node flips too.
				if u == a {
					nu = nb
				} else if u == b {
					nu = na
				}
				c := fine.EdgeWeight(int(i))
				dWH += c * int64(topo.HopDist(int(to), int(nu))-topo.HopDist(int(from), int(nu)))
				wasCross := from != nu
				nowCross := to != nu
				switch {
				case nowCross && !wasCross:
					dVol += c
				case wasCross && !nowCross:
					dVol -= c
				}
			}
		}
		acc(a, na, nb, b)
		acc(b, nb, na, a)
		return 2 * dWH, 2 * dVol
	}

	// BFS over the topology from the nodes of a task's neighbours,
	// mirroring Algorithm 2's candidate search; candidate tasks come
	// from the groups mapped to visited nodes.
	tasksOnNode := map[int32][]int32{}
	for t := 0; t < n; t++ {
		nd := nodeOfTask(int32(t))
		tasksOnNode[nd] = append(tasksOnNode[nd], int32(t))
	}
	moveTask := func(t int32, from, to int32) {
		list := tasksOnNode[from]
		for i, x := range list {
			if x == t {
				list[i] = list[len(list)-1]
				tasksOnNode[from] = list[:len(list)-1]
				break
			}
		}
		tasksOnNode[to] = append(tasksOnNode[to], t)
	}

	st := newMapState(fine, topo, nodeOf, opt.Exec) // only for its BFS scratch
	defer st.release()
	var totalWH int64
	for t := 0; t < n; t++ {
		totalWH += taskWH(int32(t))
	}
	whHeap := ds.NewIndexedMaxHeap(n)
	seeds := make([]int32, 0, 32)

	for pass := 0; pass < opt.MaxPasses; pass++ {
		opt.Exec.Count("fine_passes", 1)
		passStart := totalWH
		whHeap.Clear()
		for t := 0; t < n; t++ {
			whHeap.Push(t, taskWH(int32(t)))
		}
		for whHeap.Len() > 0 {
			tw, _ := whHeap.Pop()
			twh := int32(tw)
			seeds = seeds[:0]
			for _, u := range fine.Neighbors(int(twh)) {
				seeds = append(seeds, nodeOfTask(u))
			}
			if len(seeds) == 0 {
				continue
			}
			myNode := nodeOfTask(twh)
			tried := 0
			st.bfs(seeds, func(node, lv int32) bool {
				if node == myNode {
					return true
				}
				cands := tasksOnNode[node]
				if len(cands) == 0 {
					return true
				}
				tried++
				// Pick the best swap partner on this node.
				var best int32 = -1
				var bestWH, bestVol int64
				for _, cand := range cands {
					dWH, dVol := deltas(twh, cand)
					if dWH < 0 && dVol <= 0 && (best < 0 || dWH < bestWH) {
						best, bestWH, bestVol = cand, dWH, dVol
					}
				}
				if best >= 0 {
					opt.Exec.Count("fine_swaps", 1)
					ga, gb := group[twh], group[best]
					group[twh], group[best] = gb, ga
					moveTask(twh, myNode, node)
					moveTask(best, node, myNode)
					totalWH += bestWH
					whGain -= bestWH
					volGain -= bestVol
					for _, u := range fine.Neighbors(int(twh)) {
						if whHeap.Contains(int(u)) {
							whHeap.Update(int(u), taskWH(u))
						}
					}
					for _, u := range fine.Neighbors(int(best)) {
						if whHeap.Contains(int(u)) {
							whHeap.Update(int(u), taskWH(u))
						}
					}
					if whHeap.Contains(int(best)) {
						whHeap.Update(int(best), taskWH(best))
					}
					return false
				}
				return tried < opt.Delta
			})
		}
		gain := passStart - totalWH
		if passStart == 0 || float64(gain) < opt.MinPassGain*float64(passStart) {
			break
		}
	}
	return whGain, volGain
}

package taskgraph

import (
	"fmt"

	"repro/internal/graph"
)

// Stencil generates the halo-exchange task graph of an nx×ny(×nz)
// structured grid — one task per cell, a directed edge of volume
// `vol` to each face neighbor (5-point in 2D, 7-point in 3D) — with
// per-task coordinates set to the cell's grid position. nz == 1
// produces a 2D problem (Dim 2); nz > 1 a 3D one (Dim 3). This is the
// geometric mappers' native workload: the coordinates carry exactly
// the locality the graph edges encode.
//
// The generator is fully deterministic in its arguments: tasks are
// laid out in x-fastest order (t = x + nx*(y + ny*z)) and edges are
// emitted in task order.
func Stencil(nx, ny, nz int, vol int64) (*TaskGraph, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("taskgraph: stencil needs positive dimensions, got %dx%dx%d", nx, ny, nz)
	}
	if vol < 1 {
		return nil, fmt.Errorf("taskgraph: stencil volume must be positive, got %d", vol)
	}
	n := nx * ny * nz
	id := func(x, y, z int) int32 { return int32(x + nx*(y+ny*z)) }

	var us, vs []int32
	var ws []int64
	arc := func(u, v int32) {
		us = append(us, u)
		vs = append(vs, v)
		ws = append(ws, vol)
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				t := id(x, y, z)
				if x+1 < nx {
					arc(t, id(x+1, y, z))
					arc(id(x+1, y, z), t)
				}
				if y+1 < ny {
					arc(t, id(x, y+1, z))
					arc(id(x, y+1, z), t)
				}
				if z+1 < nz {
					arc(t, id(x, y, z+1))
					arc(id(x, y, z+1), t)
				}
			}
		}
	}

	dim := 3
	if nz == 1 {
		dim = 2
	}
	coords := make([]float64, n*dim)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				off := int(id(x, y, z)) * dim
				coords[off] = float64(x)
				coords[off+1] = float64(y)
				if dim == 3 {
					coords[off+2] = float64(z)
				}
			}
		}
	}

	g := graph.FromEdges(n, us, vs, ws, nil)
	tg := &TaskGraph{G: g, K: n}
	if err := tg.SetCoords(dim, coords); err != nil {
		return nil, err
	}
	return tg, nil
}

// Package taskgraph builds MPI task communication graphs from a
// 1D row-wise partitioned sparse matrix (the paper's workload
// pipeline, §IV-A/§IV-B) and computes the partition-level
// communication metrics TV, TM, MSV, MSM. It also provides the
// task-to-node grouping step of §III-A: partitioning the task graph
// into |Va| groups with node capacities as target weights, fixed up
// to hard feasibility with an FM balance pass.
package taskgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arena"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/trace"
)

// TaskGraph is a directed MPI task graph: vertex t sends w(t,u) units
// of data to vertex u (x-vector entries for SpMV workloads). G.VW
// holds per-task computation loads (nonzeros owned).
//
// Coords optionally carries per-task geometric coordinates (task-major
// flattened, Dim values per task, Dim ∈ {2,3}) for the geometric
// mappers. Absent coordinates are the canonical spelling: Coords nil,
// Dim 0 — the pre-coordinate code paths exactly.
type TaskGraph struct {
	G      *graph.Graph
	K      int       // number of tasks
	Coords []float64 // per-task coordinates, K*Dim long (nil = none)
	Dim    int       // coordinate dimensionality, 2 or 3 (0 = none)
}

// HasCoords reports whether the graph carries task coordinates.
func (t *TaskGraph) HasCoords() bool { return t.Dim > 0 && len(t.Coords) > 0 }

// SetCoords installs per-task coordinates (task-major flattened, dim
// values per task) after validating dimensionality, length and
// finiteness. A nil slice strips coordinates back to the canonical
// absent spelling.
func (t *TaskGraph) SetCoords(dim int, coords []float64) error {
	if coords == nil {
		t.Coords, t.Dim = nil, 0
		return nil
	}
	if dim != 2 && dim != 3 {
		return fmt.Errorf("taskgraph: coordinate dim %d, want 2 or 3", dim)
	}
	if len(coords) != t.K*dim {
		return fmt.Errorf("taskgraph: %d coordinate values for %d tasks at dim %d (want %d)", len(coords), t.K, dim, t.K*dim)
	}
	for i, c := range coords {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("taskgraph: coordinate %d of task %d is not finite", i%dim, i/dim)
		}
	}
	t.Coords, t.Dim = coords, dim
	return nil
}

// Coord returns task v's coordinate vector (a view into Coords).
func (t *TaskGraph) Coord(v int) []float64 {
	return t.Coords[v*t.Dim : (v+1)*t.Dim]
}

// Metrics are the partition communication metrics of §IV-A, in unit
// costs: total volume, total messages, maximum per-part send volume
// and maximum per-part sent messages.
type Metrics struct {
	TV, TM, MSV, MSM int64
}

// Build constructs the task graph of a k-part 1D row-wise SpMV on m:
// the owner of row/column j (part[j]) sends x_j to every other part
// that has a nonzero in column j. Edge weights count distinct x
// entries.
func Build(m *matrix.CSR, part []int32, k int) (*TaskGraph, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("taskgraph: matrix not square")
	}
	if len(part) != m.Rows {
		return nil, fmt.Errorf("taskgraph: part vector length %d, want %d", len(part), m.Rows)
	}
	for _, p := range part {
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("taskgraph: part id %d out of [0,%d)", p, k)
		}
	}
	tr := m.Transpose()
	vol := make(map[int64]int64)
	stamp := make([]int32, k)
	for i := range stamp {
		stamp[i] = -1
	}
	for j := 0; j < m.Cols; j++ {
		q := part[j] // owner of x_j
		for _, i := range tr.Row(j) {
			p := part[i]
			if p == q || stamp[p] == int32(j) {
				continue
			}
			stamp[p] = int32(j)
			vol[int64(q)*int64(k)+int64(p)]++
		}
	}
	var us, vs []int32
	var ws []int64
	for key, w := range vol {
		us = append(us, int32(key/int64(k)))
		vs = append(vs, int32(key%int64(k)))
		ws = append(ws, w)
	}
	loads := make([]int64, k)
	for i := 0; i < m.Rows; i++ {
		loads[part[i]] += int64(m.RowNNZ(i))
	}
	g := graph.FromEdges(k, us, vs, ws, loads)
	return &TaskGraph{G: g, K: k}, nil
}

// PartitionMetrics computes TV/TM/MSV/MSM from the task graph.
func (t *TaskGraph) PartitionMetrics() Metrics {
	var m Metrics
	m.TM = int64(t.G.M())
	for v := 0; v < t.G.N(); v++ {
		var sv int64
		for _, w := range t.G.Weights(v) {
			sv += w
		}
		m.TV += sv
		if sv > m.MSV {
			m.MSV = sv
		}
		if d := int64(t.G.Degree(v)); d > m.MSM {
			m.MSM = d
		}
	}
	return m
}

// Symmetric returns the undirected view of the task graph with
// c(t,u) = w(t→u) + w(u→t), which the mapping algorithms assume
// (WH is an undirected metric, §III-A).
func (t *TaskGraph) Symmetric() *graph.Graph { return t.G.Symmetrize() }

// SymmetricArena is Symmetric with pooled staging scratch.
func (t *TaskGraph) SymmetricArena(ar *arena.Arena) *graph.Graph {
	return t.G.SymmetrizeArena(ar)
}

// GroupBlocks groups tasks into consecutive-rank blocks matching the
// node capacities, exactly how an SMP-style default mapping fills
// nodes: group g takes capacities[g] consecutive task ids.
func GroupBlocks(nTasks int, capacities []int64) ([]int32, error) {
	group := make([]int32, nTasks)
	t := 0
	for gidx, c := range capacities {
		for i := int64(0); i < c && t < nTasks; i++ {
			group[t] = int32(gidx)
			t++
		}
	}
	if t != nTasks {
		return nil, fmt.Errorf("taskgraph: capacities sum below %d tasks", nTasks)
	}
	return group, nil
}

// GroupTasks partitions the task graph into len(capacities) groups so
// that group g holds at most capacities[g] tasks (each task counts
// one processor slot), minimizing inter-group communication: the
// paper's "use METIS to partition Gt into |Va| nodes" plus the
// single FM balance fix (§III-A).
//
// Two candidates are produced — a multilevel partition of the task
// graph, and the consecutive-rank block grouping refined with k-way
// passes (recursive-bisection part ids are already locality-ordered,
// §IV-B, so blocks are a strong start) — and the one with the lower
// inter-group volume wins.
func GroupTasks(t *TaskGraph, capacities []int64, seed int64) ([]int32, error) {
	return GroupTasksExec(t, capacities, seed, nil, nil, nil)
}

// GroupTasksExec is GroupTasks under an execution context: the two
// grouping candidates run as forked subtasks on the solve's worker
// pool (the multilevel partition additionally parallelizes its own
// bisection subtrees on the same pool), the partitioner borrows its
// scratch from ar, and tr — when tracing — receives the stage's
// counters (bisections, recursion depth, which candidate won). A nil
// group/arena/trace runs serial with fresh allocations, untraced; the
// winner — and therefore the grouping — is identical either way.
func GroupTasksExec(t *TaskGraph, capacities []int64, seed int64, par *parallel.Group, ar *arena.Arena, tr *trace.Trace) ([]int32, error) {
	sym := t.SymmetricArena(ar)
	// Unit vertex weights: a task occupies one processor.
	unit := make([]int64, sym.N())
	for i := range unit {
		unit[i] = 1
	}
	sym.VW = unit
	interVolume := func(group []int32) int64 {
		var vol int64
		for u := 0; u < sym.N(); u++ {
			for i := sym.Xadj[u]; i < sym.Xadj[u+1]; i++ {
				if group[u] != group[sym.Adj[i]] {
					vol += sym.EW[i]
				}
			}
		}
		return vol
	}

	// The two candidates are independent: they read the shared
	// symmetric graph and build their own part vectors.
	var (
		partitioned, blocks []int32
		perr, berr          error
	)
	par.Fork(
		func() {
			partitioned, perr = partition.PartitionTargets(sym, capacities, partition.Options{
				Seed:      seed,
				Imbalance: 0.02,
				Par:       par,
				Arena:     ar,
				Trace:     tr,
			})
			if perr == nil {
				perr = partition.FixToCapacities(sym, partitioned, capacities)
			}
		},
		func() {
			blocks, berr = GroupBlocks(sym.N(), capacities)
			if berr != nil {
				return
			}
			for pass := 0; pass < 4; pass++ {
				if par.Cancelled() {
					return
				}
				if partition.RefineKWayPass(sym, blocks, capacities) == 0 {
					break
				}
			}
		},
	)
	if perr != nil {
		return nil, perr
	}
	if berr != nil {
		return nil, berr
	}
	if err := par.Err(); err != nil {
		return nil, err
	}

	if interVolume(blocks) < interVolume(partitioned) {
		tr.Add("group_blocks_won", 1)
		return blocks, nil
	}
	return partitioned, nil
}

// CoarseGraph aggregates the task graph over a grouping: vertex g of
// the result is a supertask holding the tasks with group[t]==g; edge
// weights are summed task volumes (symmetrized), vertex weights are
// summed compute loads. Mapping algorithms run on this graph, one
// supertask per allocated node (§III-A, §III-B "we choose to perform
// only on the coarser task graphs").
func CoarseGraph(t *TaskGraph, group []int32, nGroups int) *graph.Graph {
	return CoarseGraphArena(nil, t, group, nGroups)
}

// CoarseGraphArena is CoarseGraph with the edge-staging scratch
// borrowed from an arena: triples are built directly (no intermediate
// us/vs/ws slices) and pooled after the CSR layout copies them out.
func CoarseGraphArena(ar *arena.Arena, t *TaskGraph, group []int32, nGroups int) *graph.Graph {
	triples := ar.Edges(2 * t.G.M())
	cnt := 0
	for u := 0; u < t.G.N(); u++ {
		gu := group[u]
		for i := t.G.Xadj[u]; i < t.G.Xadj[u+1]; i++ {
			gv := group[t.G.Adj[i]]
			if gu == gv {
				continue
			}
			w := t.G.EdgeWeight(int(i))
			triples[cnt] = ds.EdgeTriple{U: gu, V: gv, W: w}
			triples[cnt+1] = ds.EdgeTriple{U: gv, V: gu, W: w}
			cnt += 2
		}
	}
	vw := make([]int64, nGroups)
	for u := 0; u < t.G.N(); u++ {
		vw[group[u]] += t.G.VertexWeight(u)
	}
	g := graph.FromTriples(nGroups, triples[:cnt], vw)
	ar.PutEdges(triples)
	return g
}

// CoarseMessageGraph aggregates like CoarseGraph but weights each
// coarse edge by the number of fine directed messages between the two
// groups (both directions summed), which is the load the
// message-congestion (MMC) refinement must see: all fine messages
// between a group pair follow the same static route.
func CoarseMessageGraph(t *TaskGraph, group []int32, nGroups int) *graph.Graph {
	return CoarseMessageGraphArena(nil, t, group, nGroups)
}

// CoarseMessageGraphArena is CoarseMessageGraph with pooled staging
// scratch (see CoarseGraphArena).
func CoarseMessageGraphArena(ar *arena.Arena, t *TaskGraph, group []int32, nGroups int) *graph.Graph {
	triples := ar.Edges(2 * t.G.M())
	cnt := 0
	for u := 0; u < t.G.N(); u++ {
		gu := group[u]
		for i := t.G.Xadj[u]; i < t.G.Xadj[u+1]; i++ {
			gv := group[t.G.Adj[i]]
			if gu == gv {
				continue
			}
			triples[cnt] = ds.EdgeTriple{U: gu, V: gv, W: 1}
			triples[cnt+1] = ds.EdgeTriple{U: gv, V: gu, W: 1}
			cnt += 2
		}
	}
	vw := make([]int64, nGroups)
	for u := 0; u < t.G.N(); u++ {
		vw[group[u]] += t.G.VertexWeight(u)
	}
	g := graph.FromTriples(nGroups, triples[:cnt], vw)
	ar.PutEdges(triples)
	return g
}

// MaxSendReceiveVertex returns the task with the maximum total
// send+receive volume (the t_MSRV starting vertex of Algorithm 1)
// of a symmetric graph.
func MaxSendReceiveVertex(g *graph.Graph) int32 {
	var best int32
	var bestVol int64 = -1
	for v := 0; v < g.N(); v++ {
		var vol int64
		for _, w := range g.Weights(v) {
			vol += w
		}
		if vol > bestVol {
			bestVol, best = vol, int32(v)
		}
	}
	return best
}

// SortedEdgeVolumes returns all directed edge volumes sorted
// descending (diagnostics and tests).
func SortedEdgeVolumes(t *TaskGraph) []int64 {
	out := append([]int64(nil), t.G.EW...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

package taskgraph

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// MLPipe generates a stage-parallel inference-pipeline task graph:
// `stages` consecutive layers of `width` parallel branches. Each task
// streams activations to its same-branch successor, exchanges a
// smaller shuffle volume with the neighboring branch of the next
// stage, and syncs along a ring within its own stage. Per-task compute
// loads are deliberately skewed — every fourth stage is a heavy
// (conv-like) block, the rest are light glue ops, with per-branch
// jitter from seed — so the graph exercises the heterogeneous
// makespan path: a communication-only mapper packs heavy tasks
// together and pays for it, a load-aware one spreads them.
//
// The generator is deterministic in (stages, width, seed): volumes
// are fixed by structure, only the load jitter draws from the seeded
// generator, in task order.
func MLPipe(stages, width int, seed int64) (*TaskGraph, error) {
	if stages < 1 || width < 1 {
		return nil, fmt.Errorf("taskgraph: mlpipe needs stages >= 1 and width >= 1, got %dx%d", stages, width)
	}
	n := stages * width
	id := func(s, b int) int32 { return int32(s*width + b) }

	var us, vs []int32
	var ws []int64
	for s := 0; s < stages; s++ {
		for b := 0; b < width; b++ {
			if s+1 < stages {
				// Activation stream to the same branch downstream.
				us = append(us, id(s, b))
				vs = append(vs, id(s+1, b))
				ws = append(ws, 16)
				if width > 1 {
					// Shuffle traffic into the neighboring branch.
					us = append(us, id(s, b))
					vs = append(vs, id(s+1, (b+1)%width))
					ws = append(ws, 4)
				}
			}
			if width > 2 || (width == 2 && b == 0) {
				// Intra-stage sync ring (allreduce-style, light).
				us = append(us, id(s, b))
				vs = append(vs, id(s, (b+1)%width))
				ws = append(ws, 2)
			}
		}
	}

	rng := rand.New(rand.NewSource(seed))
	loads := make([]int64, n)
	for s := 0; s < stages; s++ {
		base := int64(2)
		if s%4 == 0 {
			base = 64
		}
		for b := 0; b < width; b++ {
			loads[id(s, b)] = base * int64(1+rng.Intn(8))
		}
	}

	g := graph.FromEdges(n, us, vs, ws, loads)
	return &TaskGraph{G: g, K: n}, nil
}

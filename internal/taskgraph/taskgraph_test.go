package taskgraph

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/matrix"
)

func tridiag(n int) *matrix.CSR {
	var ri, ci []int32
	for i := 0; i < n; i++ {
		for _, j := range []int{i - 1, i, i + 1} {
			if j >= 0 && j < n {
				ri = append(ri, int32(i))
				ci = append(ci, int32(j))
			}
		}
	}
	return matrix.FromCOO(n, n, ri, ci)
}

func TestBuildTridiagonal(t *testing.T) {
	m := tridiag(8)
	part := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	tg, err := Build(m, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Row 4 (part 1) needs x_3 (part 0); row 3 (part 0) needs x_4.
	// So volumes 0->1: {x_3}=1 and 1->0: {x_4}=1.
	if tg.G.M() != 2 {
		t.Fatalf("M = %d, want 2", tg.G.M())
	}
	met := tg.PartitionMetrics()
	if met.TV != 2 || met.TM != 2 || met.MSV != 1 || met.MSM != 1 {
		t.Fatalf("metrics = %+v", met)
	}
	// Compute loads: each part owns half the nonzeros (22 total).
	if tg.G.VertexWeight(0)+tg.G.VertexWeight(1) != int64(m.NNZ()) {
		t.Fatal("compute loads don't sum to nnz")
	}
}

func TestBuildCountsDistinctEntries(t *testing.T) {
	// Column j used by two rows of the same part: volume counted once.
	// Matrix: rows 0,1 (part 1) both have a nonzero in column 2 (part 0).
	m := matrix.FromCOO(3, 3,
		[]int32{0, 1, 2, 0, 1},
		[]int32{2, 2, 2, 0, 1})
	part := []int32{1, 1, 0}
	tg, err := Build(m, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	met := tg.PartitionMetrics()
	if met.TV != 1 {
		t.Fatalf("TV = %d, want 1 (x_2 sent once to part 1)", met.TV)
	}
	if met.TM != 1 {
		t.Fatalf("TM = %d, want 1", met.TM)
	}
}

func TestTVMatchesHypergraphConnectivity(t *testing.T) {
	// TV from the task graph must equal connectivity-1 of the
	// column-net hypergraph — the identity the paper's model rests on.
	m := gen.Uniform(300, 4, 3)
	h := hypergraph.ColumnNet(m)
	const k = 7
	part := make([]int32, m.Rows)
	for i := range part {
		part[i] = int32((i * 13) % k)
	}
	tg, err := Build(m, part, k)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tg.PartitionMetrics().TV, h.Connectivity(part, k); got != want {
		t.Fatalf("task graph TV %d != hypergraph connectivity %d", got, want)
	}
}

func TestBuildErrors(t *testing.T) {
	m := tridiag(4)
	if _, err := Build(m, []int32{0, 0}, 2); err == nil {
		t.Fatal("want error for short part vector")
	}
	if _, err := Build(m, []int32{0, 0, 9, 0}, 2); err == nil {
		t.Fatal("want error for out-of-range part")
	}
	rect := matrix.FromCOO(2, 3, []int32{0}, []int32{2})
	if _, err := Build(rect, []int32{0, 0}, 1); err == nil {
		t.Fatal("want error for non-square matrix")
	}
}

func TestSymmetricCombinesDirections(t *testing.T) {
	m := tridiag(8)
	part := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	tg, _ := Build(m, part, 2)
	sym := tg.Symmetric()
	// c(0,1) = vol(0->1) + vol(1->0) = 2.
	if sym.M() != 2 {
		t.Fatalf("sym M = %d, want 2", sym.M())
	}
	if sym.EW[0] != 2 {
		t.Fatalf("sym weight = %d, want 2", sym.EW[0])
	}
}

func TestGroupBlocks(t *testing.T) {
	group, err := GroupBlocks(8, []int64{3, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 0, 0, 1, 1, 1, 2, 2}
	for i := range want {
		if group[i] != want[i] {
			t.Fatalf("group = %v, want %v", group, want)
		}
	}
	if _, err := GroupBlocks(10, []int64{4, 4}); err == nil {
		t.Fatal("want error when capacity insufficient")
	}
}

func TestGroupTasksRespectsCapacities(t *testing.T) {
	m := gen.Mesh2D(16, 16, 5) // 256 rows
	const k = 64
	part := make([]int32, m.Rows)
	for i := range part {
		part[i] = int32(i % k) // poor partition, but legal
	}
	tg, err := Build(m, part, k)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int64, 16)
	for i := range caps {
		caps[i] = 4 // 16 nodes x 4 procs = 64 tasks
	}
	group, err := GroupTasks(tg, caps, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 16)
	for _, g := range group {
		counts[g]++
	}
	for i, c := range counts {
		if c > caps[i] {
			t.Fatalf("group %d has %d tasks, capacity %d", i, c, caps[i])
		}
	}
}

func TestGroupTasksKeepsCommunicatorsTogether(t *testing.T) {
	// A path-structured task graph grouped into nodes should mostly
	// put consecutive tasks in the same group: inter-group volume
	// should be far below total volume.
	m := tridiag(64)
	part := make([]int32, 64)
	for i := range part {
		part[i] = int32(i) // one row per task
	}
	tg, err := Build(m, part, 64)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int64, 8)
	for i := range caps {
		caps[i] = 8
	}
	group, err := GroupTasks(tg, caps, 3)
	if err != nil {
		t.Fatal(err)
	}
	coarse := CoarseGraph(tg, group, 8)
	interVol := coarse.TotalEdgeWeight() / 2
	totalVol := tg.PartitionMetrics().TV
	if interVol*3 > totalVol {
		t.Fatalf("grouping kept too little locality: inter %d of %d", interVol, totalVol)
	}
}

func TestCoarseGraphAggregates(t *testing.T) {
	m := tridiag(8)
	part := make([]int32, 8)
	for i := range part {
		part[i] = int32(i)
	}
	tg, _ := Build(m, part, 8)
	group := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	coarse := CoarseGraph(tg, group, 2)
	if coarse.N() != 2 {
		t.Fatalf("coarse N = %d", coarse.N())
	}
	// Only tasks 3<->4 communicate across groups: volume 1 each way,
	// symmetrized to c=2 stored in both directions.
	if coarse.M() != 2 || coarse.EW[0] != 2 {
		t.Fatalf("coarse M=%d w=%d, want 2,2", coarse.M(), coarse.EW[0])
	}
	// Vertex weights: sum of compute loads halves.
	if coarse.VertexWeight(0)+coarse.VertexWeight(1) != int64(m.NNZ()) {
		t.Fatal("coarse compute loads don't sum")
	}
}

func TestMaxSendReceiveVertex(t *testing.T) {
	// Star task graph: hub 0 has the max total volume.
	m := matrix.FromCOO(5, 5,
		[]int32{1, 2, 3, 4, 0, 0, 0, 0, 0, 1, 2, 3, 4},
		[]int32{0, 0, 0, 0, 1, 2, 3, 4, 0, 1, 2, 3, 4})
	part := []int32{0, 1, 2, 3, 4}
	tg, err := Build(m, part, 5)
	if err != nil {
		t.Fatal(err)
	}
	sym := tg.Symmetric()
	if v := MaxSendReceiveVertex(sym); v != 0 {
		t.Fatalf("MSRV = %d, want 0 (hub)", v)
	}
}

func TestSortedEdgeVolumes(t *testing.T) {
	m := tridiag(8)
	part := []int32{0, 0, 1, 1, 2, 2, 3, 3}
	tg, _ := Build(m, part, 4)
	vols := SortedEdgeVolumes(tg)
	for i := 1; i < len(vols); i++ {
		if vols[i] > vols[i-1] {
			t.Fatal("volumes not sorted descending")
		}
	}
}

func TestCoarseMessageGraph(t *testing.T) {
	m := tridiag(8)
	part := make([]int32, 8)
	for i := range part {
		part[i] = int32(i)
	}
	tg, _ := Build(m, part, 8)
	group := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	msg := CoarseMessageGraph(tg, group, 2)
	// Fine messages crossing groups: 3->4 and 4->3, i.e. 2 directed
	// messages; symmetrized count = 2 on each stored direction.
	if msg.N() != 2 || msg.M() != 2 {
		t.Fatalf("msg graph N=%d M=%d", msg.N(), msg.M())
	}
	if msg.EW[0] != 2 {
		t.Fatalf("message count = %d, want 2", msg.EW[0])
	}
	// Volume graph weight may differ from message count when volumes
	// exceed one unit; here both are 2 (1 unit each way).
	vol := CoarseGraph(tg, group, 2)
	if vol.EW[0] != 2 {
		t.Fatalf("volume = %d, want 2", vol.EW[0])
	}
}

func TestCoarseMessageGraphCountsMultiplicity(t *testing.T) {
	// Two tasks in group 0 each send to two tasks in group 1: four
	// directed fine messages -> message weight 4, regardless of volume.
	m := matrix.FromCOO(4, 4,
		[]int32{2, 2, 3, 3, 0, 1, 2, 3},
		[]int32{0, 1, 0, 1, 0, 1, 2, 3})
	part := []int32{0, 1, 2, 3}
	tg, err := Build(m, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	group := []int32{0, 0, 1, 1}
	msg := CoarseMessageGraph(tg, group, 2)
	if msg.M() != 2 || msg.EW[0] != 4 {
		t.Fatalf("message graph M=%d w=%v, want weight 4", msg.M(), msg.EW)
	}
}

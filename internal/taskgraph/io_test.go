package taskgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestTaskGraphIORoundTrip(t *testing.T) {
	m := tridiag(16)
	part := make([]int32, 16)
	for i := range part {
		part[i] = int32(i / 4)
	}
	tg, err := Build(m, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tg.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != tg.K || back.G.M() != tg.G.M() {
		t.Fatalf("round trip shape: K %d/%d M %d/%d", back.K, tg.K, back.G.M(), tg.G.M())
	}
	for u := 0; u < tg.G.N(); u++ {
		a, b := tg.G.Neighbors(u), back.G.Neighbors(u)
		wa, wb := tg.G.Weights(u), back.G.Weights(u)
		if len(a) != len(b) {
			t.Fatalf("task %d adjacency differs", u)
		}
		for i := range a {
			if a[i] != b[i] || wa[i] != wb[i] {
				t.Fatalf("task %d edge %d differs", u, i)
			}
		}
		if tg.G.VertexWeight(u) != back.G.VertexWeight(u) {
			t.Fatalf("task %d load lost: %d vs %d", u, tg.G.VertexWeight(u), back.G.VertexWeight(u))
		}
	}
	// Partition metrics must survive the round trip.
	if tg.PartitionMetrics() != back.PartitionMetrics() {
		t.Fatal("metrics differ after round trip")
	}
}

func TestReadDefaults(t *testing.T) {
	in := `# comment line
0 1 10

1 2
`
	tg, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tg.K != 3 {
		t.Fatalf("K = %d, want 3", tg.K)
	}
	// Edge 1->2 defaults to volume 1.
	found := false
	for i := tg.G.Xadj[1]; i < tg.G.Xadj[2]; i++ {
		if tg.G.Adj[i] == 2 && tg.G.EW[i] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("default volume edge missing")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"0\n",           // too few fields
		"a b 1\n",       // bad src
		"0 b 1\n",       // bad dst
		"0 1 x\n",       // bad volume
		"0 1 0\n",       // non-positive volume
		"-1 2 1\n",      // negative id
		"# only\n#hi\n", // comments only
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d (%q): expected error", i, in)
		}
	}
}

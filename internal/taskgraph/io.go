package taskgraph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Encode serializes the task graph in the plain text edge-list
// format "src dst volume" (one directed edge per line, 0-based ids),
// preceded by a comment header. Compute loads are emitted as
// "# load <task> <nnz>" lines and task coordinates as
// "# coord <task> <x> <y> [z]" lines when present.
func (t *TaskGraph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# task graph: %d tasks, %d directed edges\n", t.K, t.G.M()); err != nil {
		return err
	}
	if t.G.VW != nil {
		for v, load := range t.G.VW {
			if _, err := fmt.Fprintf(bw, "# load %d %d\n", v, load); err != nil {
				return err
			}
		}
	}
	if t.HasCoords() {
		for v := 0; v < t.K; v++ {
			if _, err := fmt.Fprintf(bw, "# coord %d", v); err != nil {
				return err
			}
			for _, c := range t.Coord(v) {
				if _, err := fmt.Fprintf(bw, " %s", strconv.FormatFloat(c, 'g', -1, 64)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		}
	}
	for u := 0; u < t.G.N(); u++ {
		for i := t.G.Xadj[u]; i < t.G.Xadj[u+1]; i++ {
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", u, t.G.Adj[i], t.G.EdgeWeight(int(i))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses the text edge-list format of Encode: whitespace-
// separated "src dst [volume]" lines (volume defaults to 1), with
// "#"-prefixed comments; "# load <task> <nnz>" comments restore
// compute loads and "# coord <task> <x> <y> [z]" comments restore
// task coordinates (the first coord line fixes the dimensionality;
// tasks without one sit at the origin). The number of tasks is one
// plus the largest id seen.
func Read(r io.Reader) (*TaskGraph, error) {
	var us, vs []int32
	var ws []int64
	loads := map[int]int64{}
	coords := map[int][]float64{}
	coordDim := 0
	maxID := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "load" {
				id, err1 := strconv.Atoi(fields[2])
				load, err2 := strconv.ParseInt(fields[3], 10, 64)
				if err1 == nil && err2 == nil {
					loads[id] = load
					if id > maxID {
						maxID = id
					}
				}
			}
			if (len(fields) == 5 || len(fields) == 6) && fields[1] == "coord" {
				id, err := strconv.Atoi(fields[2])
				dim := len(fields) - 3
				vec := make([]float64, 0, dim)
				for _, f := range fields[3:] {
					c, cerr := strconv.ParseFloat(f, 64)
					if cerr != nil || math.IsNaN(c) || math.IsInf(c, 0) {
						err = fmt.Errorf("bad coord")
						break
					}
					vec = append(vec, c)
				}
				if err == nil && id >= 0 && (coordDim == 0 || coordDim == dim) {
					coordDim = dim
					coords[id] = vec
					if id > maxID {
						maxID = id
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("taskgraph: line %d: need \"src dst [volume]\", got %q", lineNo, line)
		}
		s, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("taskgraph: line %d: bad src %q", lineNo, fields[0])
		}
		d, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("taskgraph: line %d: bad dst %q", lineNo, fields[1])
		}
		if s < 0 || d < 0 {
			return nil, fmt.Errorf("taskgraph: line %d: negative task id", lineNo)
		}
		w := int64(1)
		if len(fields) > 2 {
			w, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("taskgraph: line %d: bad volume %q", lineNo, fields[2])
			}
			if w <= 0 {
				return nil, fmt.Errorf("taskgraph: line %d: volume must be positive", lineNo)
			}
		}
		us = append(us, int32(s))
		vs = append(vs, int32(d))
		ws = append(ws, w)
		if s > maxID {
			maxID = s
		}
		if d > maxID {
			maxID = d
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxID < 0 {
		return nil, fmt.Errorf("taskgraph: empty input")
	}
	n := maxID + 1
	var vw []int64
	if len(loads) > 0 {
		vw = make([]int64, n)
		for i := range vw {
			vw[i] = 1
		}
		for id, load := range loads {
			vw[id] = load
		}
	}
	g := graph.FromEdges(n, us, vs, ws, vw)
	tg := &TaskGraph{G: g, K: n}
	if len(coords) > 0 {
		flat := make([]float64, n*coordDim)
		for id, vec := range coords {
			copy(flat[id*coordDim:], vec)
		}
		if err := tg.SetCoords(coordDim, flat); err != nil {
			return nil, err
		}
	}
	return tg, nil
}

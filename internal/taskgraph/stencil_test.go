package taskgraph

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// Stencil and coordinate tests: the generator's shape and geometry,
// the SetCoords validation surface, and the text-format round trip of
// "# coord" lines.

// TestStencilShape: task count, degree structure and coordinates of
// small 2D and 3D grids.
func TestStencilShape(t *testing.T) {
	tg, err := Stencil(4, 3, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tg.K != 12 || tg.Dim != 2 {
		t.Fatalf("4x3 stencil: K=%d Dim=%d, want 12/2", tg.K, tg.Dim)
	}
	// Interior/edge/corner degrees of a 4x3 grid: 2 at corners, 3 on
	// edges, 4 inside. Directed edge count = 2*(nx-1)*ny + 2*nx*(ny-1).
	if want := int64(2*3*3 + 2*4*2); int64(tg.G.M()) != want {
		t.Fatalf("4x3 stencil: %d directed edges, want %d", tg.G.M(), want)
	}
	// Task ids are x-fastest: task 5 is (x=1, y=1).
	if c := tg.Coord(5); c[0] != 1 || c[1] != 1 {
		t.Fatalf("task 5 at %v, want (1,1)", c)
	}
	for v := 0; v < tg.K; v++ {
		for _, w := range tg.G.Weights(v) {
			if w != 5 {
				t.Fatalf("task %d carries edge volume %d, want 5", v, w)
			}
		}
	}

	tg3, err := Stencil(3, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tg3.K != 27 || tg3.Dim != 3 {
		t.Fatalf("3x3x3 stencil: K=%d Dim=%d, want 27/3", tg3.K, tg3.Dim)
	}
	// The center cell (1,1,1) = task 13 has all six face neighbors.
	if deg := len(tg3.G.Neighbors(13)); deg != 6 {
		t.Fatalf("center cell degree %d, want 6", deg)
	}
	if c := tg3.Coord(13); c[0] != 1 || c[1] != 1 || c[2] != 1 {
		t.Fatalf("center cell at %v, want (1,1,1)", c)
	}

	if _, err := Stencil(0, 3, 3, 1); err == nil {
		t.Fatal("zero-extent stencil accepted")
	}
	if _, err := Stencil(3, 3, 3, 0); err == nil {
		t.Fatal("zero-volume stencil accepted")
	}
}

// TestSetCoordsValidation walks the coordinate installation surface:
// bad dims, length mismatches, non-finite values, and the canonical
// nil strip.
func TestSetCoordsValidation(t *testing.T) {
	tg, err := Stencil(2, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.SetCoords(1, make([]float64, 4)); err == nil {
		t.Fatal("dim 1 accepted")
	}
	if err := tg.SetCoords(4, make([]float64, 16)); err == nil {
		t.Fatal("dim 4 accepted")
	}
	if err := tg.SetCoords(2, make([]float64, 7)); err == nil {
		t.Fatal("short coordinate slice accepted")
	}
	if err := tg.SetCoords(2, []float64{0, 1, 2, 3, 4, 5, 6, math.NaN()}); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	if err := tg.SetCoords(2, []float64{0, 1, 2, 3, 4, 5, 6, math.Inf(1)}); err == nil {
		t.Fatal("infinite coordinate accepted")
	}
	if err := tg.SetCoords(0, nil); err != nil {
		t.Fatal(err)
	}
	if tg.HasCoords() || tg.Dim != 0 || tg.Coords != nil {
		t.Fatal("nil strip did not restore the canonical absent spelling")
	}
}

// TestCoordsIORoundTrip: "# coord" lines survive Encode/Read exactly,
// in 2D and 3D, and a coordinate-free graph emits none.
func TestCoordsIORoundTrip(t *testing.T) {
	for _, dims := range [][3]int{{4, 3, 1}, {3, 2, 2}} {
		tg, err := Stencil(dims[0], dims[1], dims[2], 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tg.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if back.Dim != tg.Dim || !reflect.DeepEqual(back.Coords, tg.Coords) {
			t.Fatalf("%v: coordinates diverged after round trip", dims)
		}
	}

	plain := &TaskGraph{G: graph.FromEdges(3, []int32{0, 1}, []int32{1, 2}, []int64{4, 4}, nil), K: 3}
	var buf bytes.Buffer
	if err := plain.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "# coord") {
		t.Fatal("coordinate-free graph emitted coord lines")
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.HasCoords() {
		t.Fatal("coordinate-free graph grew coordinates on the round trip")
	}
}

// TestCoordsReadTolerance: malformed coord comments are skipped (they
// are comments), mixed dimensionality keeps the first, and tasks
// without a coord line sit at the origin.
func TestCoordsReadTolerance(t *testing.T) {
	in := `# coord 0 1.5 2.5
# coord 1 3 4 5
# coord bad x y
0 1 10
1 2 10
`
	tg, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tg.Dim != 2 {
		t.Fatalf("Dim = %d, want 2 (first coord line wins)", tg.Dim)
	}
	if c := tg.Coord(0); c[0] != 1.5 || c[1] != 2.5 {
		t.Fatalf("task 0 at %v", c)
	}
	if c := tg.Coord(2); c[0] != 0 || c[1] != 0 {
		t.Fatalf("unlisted task 2 at %v, want origin", c)
	}
}

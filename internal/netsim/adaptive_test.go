package netsim

import (
	"testing"

	"repro/internal/fattree"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

func TestCommOnlyAdaptiveSingleRouteMatchesStatic(t *testing.T) {
	// On a ring every pair has one minimal route, so the adaptive
	// simulator must agree with the static one exactly.
	topo := torus.New([]int{16}, []float64{1e9})
	g := graph.RandomConnected(8, 20, 40, 3)
	nodeOf := make([]int32, 8)
	for i := range nodeOf {
		nodeOf[i] = int32(i * 2)
	}
	pl := &metrics.Placement{NodeOf: nodeOf}
	p := Params{Seed: 5}
	a := CommOnly(g, topo, pl, 1024, p).Seconds
	b := CommOnlyAdaptive(g, topo, pl, 1024, p).Seconds
	if a != b {
		t.Fatalf("static %g != adaptive %g on single-route network", a, b)
	}
}

func TestCommOnlyAdaptiveRelievesHotLink(t *testing.T) {
	// Many equal messages from distinct sources to distinct targets,
	// all of whose static routes share the first X-dimension link.
	// Spraying over minimal routes must strictly beat static routing.
	topo := torus.NewHopper3D(6, 6, 6)
	const n = 8
	var us, vs []int32
	var ws []int64
	nodeOf := make([]int32, 2*n)
	for i := 0; i < n; i++ {
		us = append(us, int32(i))
		vs = append(vs, int32(n+i))
		ws = append(ws, 1000)
		// Sources along a YZ column at x=0; destinations at x=2..3,
		// offset in y and z so the static X-first routes pile onto
		// the same x links while minimal alternatives exist.
		nodeOf[i] = int32(topo.NodeAt([]int{0, i % 6, i / 6}))
		nodeOf[n+i] = int32(topo.NodeAt([]int{2 + i%2, (i + 1) % 6, (i/6 + 1) % 6}))
	}
	g := graph.FromEdges(2*n, us, vs, ws, nil)
	pl := &metrics.Placement{NodeOf: nodeOf}
	p := Params{Seed: 2, NoiseSigma: 1e-9}
	static := CommOnly(g, topo, pl, 1<<20, p).Seconds
	adaptive := CommOnlyAdaptive(g, topo, pl, 1<<20, p).Seconds
	if adaptive >= static {
		t.Fatalf("adaptive %g not faster than static %g on a hot-link pattern", adaptive, static)
	}
}

func TestCommOnlyAdaptiveOnFatTree(t *testing.T) {
	ft, err := fattree.New(4, 10e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(8, 20, 50, 7)
	nodeOf := make([]int32, 8)
	for i := range nodeOf {
		nodeOf[i] = int32(i * 2)
	}
	pl := &metrics.Placement{NodeOf: nodeOf}
	p := Params{Seed: 9}
	static := CommOnly(g, ft, pl, 4096, p).Seconds
	adaptive := CommOnlyAdaptive(g, ft, pl, 4096, p).Seconds
	if static <= 0 || adaptive <= 0 {
		t.Fatalf("degenerate times: static %g adaptive %g", static, adaptive)
	}
	// ECMP spraying cannot be slower than deterministic ECMP under
	// this model when loads are symmetric; allow equality.
	if adaptive > static*1.001 {
		t.Fatalf("adaptive %g slower than static %g on full-bisection fat tree", adaptive, static)
	}
}

func TestCommOnlyAdaptiveDeterministicPerSeed(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	g := graph.RandomConnected(12, 30, 60, 11)
	nodeOf := make([]int32, 12)
	for i := range nodeOf {
		nodeOf[i] = int32(i * 5 % topo.Nodes())
	}
	pl := &metrics.Placement{NodeOf: nodeOf}
	a := CommOnlyAdaptive(g, topo, pl, 512, Params{Seed: 3}).Seconds
	b := CommOnlyAdaptive(g, topo, pl, 512, Params{Seed: 3}).Seconds
	if a != b {
		t.Fatalf("same seed, different times: %g %g", a, b)
	}
	c := CommOnlyAdaptive(g, topo, pl, 512, Params{Seed: 4}).Seconds
	if a == c {
		t.Fatalf("different seeds produced identical noise")
	}
}

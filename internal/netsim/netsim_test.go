package netsim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

func topoFixture() *torus.Torus { return torus.NewHopper3D(6, 6, 6) }

func lineGraph(n int, vol int64) *graph.Graph {
	var us, vs []int32
	var ws []int64
	for i := 0; i < n-1; i++ {
		us = append(us, int32(i))
		vs = append(vs, int32(i+1))
		ws = append(ws, vol)
	}
	return graph.FromEdges(n, us, vs, ws, nil)
}

func TestCommOnlyZeroWhenLocal(t *testing.T) {
	topo := topoFixture()
	tg := lineGraph(4, 100)
	pl := &metrics.Placement{NodeOf: []int32{5, 5, 5, 5}}
	r := CommOnly(tg, topo, pl, 4096, Params{Seed: 1})
	if r.Seconds != 0 {
		t.Fatalf("all-local communication took %g s", r.Seconds)
	}
}

func TestCommOnlyScalesWithVolume(t *testing.T) {
	topo := topoFixture()
	pl := &metrics.Placement{NodeOf: []int32{0, 1}}
	small := CommOnly(lineGraph(2, 10), topo, pl, 4096, Params{Seed: 2, NoiseSigma: 1e-9})
	big := CommOnly(lineGraph(2, 1000), topo, pl, 4096, Params{Seed: 2, NoiseSigma: 1e-9})
	if big.Seconds <= small.Seconds {
		t.Fatalf("100x volume not slower: %g vs %g", big.Seconds, small.Seconds)
	}
}

func TestCommOnlyPenalizesCongestion(t *testing.T) {
	topo := topoFixture()
	// Many tasks all sending to neighbours over the same link vs
	// spread out. Build a star: tasks 1..8 send to task 0.
	var us, vs []int32
	var ws []int64
	for i := 1; i <= 8; i++ {
		us = append(us, int32(i))
		vs = append(vs, 0)
		ws = append(ws, 1000)
	}
	tg := graph.FromEdges(9, us, vs, ws, nil)
	// Congested: all senders on one node, receiver on the next; all
	// messages share one link.
	a := topo.NodeAt([]int{0, 0, 0})
	b := topo.NodeAt([]int{1, 0, 0})
	congested := make([]int32, 9)
	congested[0] = int32(b)
	for i := 1; i <= 8; i++ {
		congested[i] = int32(a)
	}
	// Spread: senders on distinct neighbours of the receiver.
	nb := topo.NeighborNodes(b, nil)
	spread := make([]int32, 9)
	spread[0] = int32(b)
	for i := 1; i <= 8; i++ {
		if i-1 < len(nb) {
			spread[i] = nb[(i-1)%len(nb)]
		} else {
			spread[i] = nb[0]
		}
	}
	p := Params{Seed: 3, NoiseSigma: 1e-9}
	tc := CommOnly(tg, topo, &metrics.Placement{NodeOf: congested}, 1<<18, p)
	ts := CommOnly(tg, topo, &metrics.Placement{NodeOf: spread}, 1<<18, p)
	if tc.Seconds <= ts.Seconds {
		t.Fatalf("congested placement not slower: %g vs %g", tc.Seconds, ts.Seconds)
	}
}

func TestCommOnlyPenalizesDilation(t *testing.T) {
	topo := topoFixture()
	tg := lineGraph(2, 1) // single tiny message: latency dominated
	near := &metrics.Placement{NodeOf: []int32{
		int32(topo.NodeAt([]int{0, 0, 0})), int32(topo.NodeAt([]int{1, 0, 0}))}}
	far := &metrics.Placement{NodeOf: []int32{
		int32(topo.NodeAt([]int{0, 0, 0})), int32(topo.NodeAt([]int{3, 3, 3}))}}
	p := Params{Seed: 4, NoiseSigma: 1e-9}
	tn := CommOnly(tg, topo, near, 8, p)
	tf := CommOnly(tg, topo, far, 8, p)
	if tf.Seconds <= tn.Seconds {
		t.Fatalf("far placement not slower: %g vs %g", tf.Seconds, tn.Seconds)
	}
}

func TestSpMVIterationsScale(t *testing.T) {
	topo := topoFixture()
	tg := lineGraph(8, 50)
	tg.VW = make([]int64, 8)
	for i := range tg.VW {
		tg.VW[i] = 10000
	}
	nodeOf := make([]int32, 8)
	for i := range nodeOf {
		nodeOf[i] = int32(i)
	}
	pl := &metrics.Placement{NodeOf: nodeOf}
	p := Params{Seed: 5, NoiseSigma: 1e-9}
	t500 := SpMV(tg, topo, pl, 500, p)
	t1000 := SpMV(tg, topo, pl, 1000, p)
	ratio := t1000.Seconds / t500.Seconds
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("iteration scaling ratio = %g, want ~2", ratio)
	}
}

func TestSpMVLatencyBound(t *testing.T) {
	// With small messages, a mapping with more per-rank messages
	// must be slower even at equal volume.
	topo := topoFixture()
	// Hub task 0 exchanges with 6 others (many messages) vs a chain
	// (few messages per rank), same total volume.
	var us, vs []int32
	var ws []int64
	for i := 1; i <= 6; i++ {
		us = append(us, 0)
		vs = append(vs, int32(i))
		ws = append(ws, 10)
	}
	hub := graph.FromEdges(7, us, vs, ws, nil)
	chainG := lineGraph(7, 10)
	nodeOf := make([]int32, 7)
	for i := range nodeOf {
		nodeOf[i] = int32(i)
	}
	pl := &metrics.Placement{NodeOf: nodeOf}
	p := Params{Seed: 6, NoiseSigma: 1e-9}
	tHub := SpMV(hub, topo, pl, 100, p)
	tChain := SpMV(chainG, topo, pl, 100, p)
	if tHub.Seconds <= tChain.Seconds {
		t.Fatalf("hub pattern (max 6 msgs/rank) not slower than chain: %g vs %g", tHub.Seconds, tChain.Seconds)
	}
}

func TestRepeatStatistics(t *testing.T) {
	mean, std := Repeat(5, 1, func(seed int64) float64 { return 10 })
	if mean != 10 || std != 0 {
		t.Fatalf("constant sim: mean %g std %g", mean, std)
	}
	mean, std = Repeat(50, 2, func(seed int64) float64 {
		return float64(seed % 7)
	})
	if std == 0 {
		t.Fatal("varying sim should have nonzero std")
	}
	if mean <= 0 {
		t.Fatalf("mean = %g", mean)
	}
	m0, s0 := Repeat(0, 3, func(int64) float64 { return 1 })
	if m0 != 0 || s0 != 0 {
		t.Fatal("zero count should return zeros")
	}
}

func TestNoiseReproducible(t *testing.T) {
	topo := topoFixture()
	tg := lineGraph(3, 100)
	pl := &metrics.Placement{NodeOf: []int32{0, 1, 2}}
	p := Params{Seed: 42, NoiseSigma: 0.05}
	a := CommOnly(tg, topo, pl, 4096, p)
	b := CommOnly(tg, topo, pl, 4096, p)
	if a.Seconds != b.Seconds {
		t.Fatal("same seed should reproduce exactly")
	}
	c := CommOnly(tg, topo, pl, 4096, Params{Seed: 43, NoiseSigma: 0.05})
	if a.Seconds == c.Seconds {
		t.Fatal("different seeds should differ under noise")
	}
}

func TestLatencyInterpolation(t *testing.T) {
	p := Params{}.withDefaults()
	if l := p.latency(0, 10); l != 0 {
		t.Fatalf("latency(0) = %g", l)
	}
	if l := p.latency(1, 10); l != p.LatNear {
		t.Fatalf("latency(1) = %g, want LatNear", l)
	}
	if l := p.latency(10, 10); l != p.LatFar {
		t.Fatalf("latency(diam) = %g, want LatFar", l)
	}
	mid := p.latency(5, 10)
	if mid <= p.LatNear || mid >= p.LatFar {
		t.Fatalf("latency(5) = %g not between", mid)
	}
}

package netsim

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

// Adaptive-routing execution model (§III-C's closing remark). The
// static simulator commits every message to its dimension-ordered
// route; a Blue Gene style adaptively routed torus instead sprays a
// message's packets over its minimal routes. This simulator models
// that as even splitting: a message's bytes divide across its P
// minimal routes, every link carries the *expected* message load, and
// the message completes when its slowest chunk does. Mappings that
// lower the expected congestion (UMCA) show up faster here, the same
// way MC-refined mappings show up faster under the static model.

// messageTimesAdaptive mirrors messageTimes under multipath spraying.
func messageTimesAdaptive(tg *graph.Graph, topo torus.MultipathTopology, pl *metrics.Placement, bytesPerUnit float64, p Params) []float64 {
	// Expected per-link message load: each of a message's P routes
	// carries weight 1/P.
	load := make([]float64, topo.Links())
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			b := pl.Node(tg.Adj[i])
			if a == b {
				continue
			}
			share := 1 / float64(topo.NumMinimalRoutes(int(a), int(b)))
			topo.ForEachMinimalRoute(int(a), int(b), func(route []int32) {
				for _, l := range route {
					load[l] += share
				}
			})
		}
	}
	diam := topo.Diameter()
	times := make([]float64, tg.M())
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			b := pl.Node(tg.Adj[i])
			if a == b {
				continue
			}
			nRoutes := float64(topo.NumMinimalRoutes(int(a), int(b)))
			chunk := float64(tg.EdgeWeight(int(i))) * bytesPerUnit / nRoutes
			worst := 0.0 // slowest chunk decides
			hops := 0
			topo.ForEachMinimalRoute(int(a), int(b), func(route []int32) {
				rate := math.Inf(1)
				for _, l := range route {
					share := topo.LinkBW(int(l)) / load[l]
					if share < rate {
						rate = share
					}
				}
				if tm := chunk / rate; tm > worst {
					worst = tm
				}
				hops = len(route)
			})
			times[i] = p.latency(hops, diam) + worst
		}
	}
	return times
}

// CommOnlyAdaptive simulates the communication-only application of
// §IV-C on an adaptively routed network: all transfers start at time
// zero, each sprayed evenly over its minimal routes, and the
// application finishes with its slowest message.
func CommOnlyAdaptive(tg *graph.Graph, topo torus.MultipathTopology, pl *metrics.Placement, bytesPerUnit float64, p Params) Result {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	worst := 0.0
	for _, tm := range messageTimesAdaptive(tg, topo, pl, bytesPerUnit, p) {
		if tm > worst {
			worst = tm
		}
	}
	return Result{Seconds: worst * noise(rng, p.NoiseSigma)}
}

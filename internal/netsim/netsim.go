// Package netsim simulates the execution time of the paper's two
// applications on the modelled torus: the synthetic communication-only
// application of §IV-C (all transfers initiated simultaneously) and
// the Trilinos-style SpMV kernel of §IV-D. The simulator substitutes
// for the Hopper runs: it is a contention-aware max-rate model whose
// completion times respond to exactly the factors the paper's metrics
// capture — dilation (WH/TH), link sharing (MC/MMC) and per-message
// latency (AMC/TH) — so mapping-quality differences show up in the
// simulated times the way they showed up on the real machine.
package netsim

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/torus"
)

// Params tunes the cost model; zero fields take Hopper-like defaults.
// The JSON tags make Params part of the serializable Solve spec (the
// mapd wire protocol carries it inside a sim block verbatim).
type Params struct {
	// LatNear is the one-hop message latency (default 1.27µs, §II-B).
	LatNear float64 `json:"lat_near,omitempty"`
	// LatFar is the network-diameter latency (default 3.88µs).
	LatFar float64 `json:"lat_far,omitempty"`
	// PerMessageOverhead is the CPU cost to post/receive one message
	// (default 1µs).
	PerMessageOverhead float64 `json:"per_message_overhead,omitempty"`
	// ComputeRate is the per-processor SpMV nonzero throughput per
	// second (default 1e9).
	ComputeRate float64 `json:"compute_rate,omitempty"`
	// NoiseSigma is the relative standard deviation of the
	// multiplicative run-to-run noise (default 0.01; the paper
	// repeats every execution 5 times for the same reason).
	NoiseSigma float64 `json:"noise_sigma,omitempty"`
	// Seed drives the noise.
	Seed int64 `json:"seed,omitempty"`
}

func (p Params) withDefaults() Params {
	if p.LatNear == 0 {
		p.LatNear = torus.HopperLatNear
	}
	if p.LatFar == 0 {
		p.LatFar = torus.HopperLatFar
	}
	if p.PerMessageOverhead == 0 {
		p.PerMessageOverhead = 1e-6
	}
	if p.ComputeRate == 0 {
		p.ComputeRate = 1e9
	}
	if p.NoiseSigma == 0 {
		p.NoiseSigma = 0.01
	}
	return p
}

// latency interpolates the paper's near/far latencies by hop count.
func (p Params) latency(hops, diameter int) float64 {
	if hops <= 0 {
		return 0
	}
	if diameter <= 1 {
		return p.LatNear
	}
	f := float64(hops-1) / float64(diameter-1)
	return p.LatNear + (p.LatFar-p.LatNear)*f
}

// Result carries a simulated execution time.
type Result struct {
	// Seconds is the simulated wall-clock time.
	Seconds float64
}

// messageTimes computes, for every directed task edge, the transfer
// time of its message under the bandwidth-sharing max-rate model: a
// message's rate on each link of its static route is the link
// bandwidth divided by the number of messages crossing that link; its
// transfer rate is the minimum share along the route; its time adds
// the hop-dependent latency. Intra-node edges get time 0. The result
// is indexed by the edge's position in tg's CSR.
func messageTimes(tg *graph.Graph, topo torus.Topology, pl *metrics.Placement, bytesPerUnit float64, p Params) []float64 {
	msgPerLink := make([]int64, topo.Links())
	var route []int32
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			b := pl.Node(tg.Adj[i])
			if a == b {
				continue
			}
			route = topo.Route(int(a), int(b), route[:0])
			for _, l := range route {
				msgPerLink[l]++
			}
		}
	}
	diam := topo.Diameter()
	times := make([]float64, tg.M())
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			b := pl.Node(tg.Adj[i])
			if a == b {
				continue
			}
			bytes := float64(tg.EdgeWeight(int(i))) * bytesPerUnit
			route = topo.Route(int(a), int(b), route[:0])
			rate := math.Inf(1)
			for _, l := range route {
				share := topo.LinkBW(int(l)) / float64(msgPerLink[l])
				if share < rate {
					rate = share
				}
			}
			times[i] = p.latency(len(route), diam) + bytes/rate
		}
	}
	return times
}

// CommOnly simulates the communication-only application: every
// directed inter-node task message is injected at time zero and the
// application finishes when the slowest message does (§IV-C: "all the
// transfers are initialized at the same time ... the total execution
// time of this application is equal to its communication time").
// bytesPerUnit scales task-graph volumes to bytes (the paper scales
// cage15 by 4K and rgg by 256K).
func CommOnly(tg *graph.Graph, topo torus.Topology, pl *metrics.Placement, bytesPerUnit float64, p Params) Result {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	worst := 0.0
	for _, tm := range messageTimes(tg, topo, pl, bytesPerUnit, p) {
		if tm > worst {
			worst = tm
		}
	}
	return Result{Seconds: worst * noise(rng, p.NoiseSigma)}
}

// SpMV simulates iters iterations of a 1D row-wise SpMV. The kernel
// is latency-bound (§IV-D): on the critical rank, an iteration pays
// the per-message CPU/MPI overhead for every post and receive, the
// hop-dependent network latency of each incoming message (small
// eager-protocol receives complete serially on the progress engine,
// so dilations accumulate — this is why TH and AMC correlate with the
// measured time in the paper's regression), and the contention-shared
// transfer time of its slowest incoming message; the balanced compute
// phase follows.
func SpMV(tg *graph.Graph, topo torus.Topology, pl *metrics.Placement, iters int, p Params) Result {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	times := messageTimes(tg, topo, pl, 8, p)
	diam := topo.Diameter()

	// Per-rank: message counts (posts + receives), summed incoming
	// latencies, and slowest incoming bandwidth term.
	msgs := make([]int64, tg.N())
	latSum := make([]float64, tg.N())
	worstBW := make([]float64, tg.N())
	for t := 0; t < tg.N(); t++ {
		a := pl.Node(int32(t))
		for i := tg.Xadj[t]; i < tg.Xadj[t+1]; i++ {
			u := tg.Adj[i]
			b := pl.Node(u)
			if a == b {
				continue
			}
			msgs[t]++
			msgs[u]++
			lat := p.latency(topo.HopDist(int(a), int(b)), diam)
			latSum[u] += lat
			if bw := times[i] - lat; bw > worstBW[u] {
				worstBW[u] = bw
			}
		}
	}
	commCritical := 0.0
	for t := 0; t < tg.N(); t++ {
		c := float64(msgs[t])*p.PerMessageOverhead + latSum[t] + worstBW[t]
		if c > commCritical {
			commCritical = c
		}
	}
	var maxLoad int64
	for t := 0; t < tg.N(); t++ {
		if l := tg.VertexWeight(t); l > maxLoad {
			maxLoad = l
		}
	}
	iter := commCritical + float64(maxLoad)/p.ComputeRate
	return Result{Seconds: float64(iters) * iter * noise(rng, p.NoiseSigma)}
}

// noise returns a multiplicative factor 1+sigma*z clamped to stay
// positive.
func noise(rng *rand.Rand, sigma float64) float64 {
	f := 1 + sigma*rng.NormFloat64()
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// Repeat runs sim count times with distinct seeds and returns the
// mean and standard deviation, the protocol of §IV-C/§IV-D ("the
// execution is repeated 5 times to reduce the noise"). The
// repetitions run concurrently — each gets its own seed and the
// moments are accumulated in index order, so the result is identical
// to a serial run. sim must be safe for concurrent invocation (the
// simulators in this package are: they only read their inputs).
func Repeat(count int, baseSeed int64, sim func(seed int64) float64) (mean, std float64) {
	if count <= 0 {
		return 0, 0
	}
	xs := make([]float64, count)
	_ = parallel.ForEach(count, 0, func(i int) error {
		xs[i] = sim(baseSeed + int64(i)*7919)
		return nil
	})
	for _, x := range xs {
		mean += x
	}
	mean /= float64(count)
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(count))
	return mean, std
}

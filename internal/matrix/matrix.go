// Package matrix provides the sparse-matrix substrate: CSR storage,
// structural transforms and MatrixMarket I/O. The paper's workloads
// are 25 UFL sparse matrices converted to column-net hypergraphs and
// 1D row-wise partitioned for SpMV; this package supplies the matrix
// side of that pipeline.
package matrix

import (
	"fmt"
	"sort"
)

// CSR is a sparse pattern matrix in compressed sparse row form. The
// evaluation pipeline only needs the structure (communication is
// driven by which x-entries an SpMV row touches), so no numerical
// values are stored; Rows/Cols are the logical dimensions.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // length Rows+1
	ColIdx     []int32 // length NNZ
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices of row i; the caller must not mutate
// the slice.
func (m *CSR) Row(i int) []int32 { return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]] }

// RowNNZ returns the number of nonzeros in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Validate checks structural invariants.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("matrix: len(RowPtr)=%d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0]=%d", m.RowPtr[0])
	}
	// Bounds before any slicing: a corrupt RowPtr must yield an error,
	// not a panic.
	for i, p := range m.RowPtr {
		if int(p) > len(m.ColIdx) || p < 0 {
			return fmt.Errorf("matrix: RowPtr[%d]=%d out of [0,%d]", i, p, len(m.ColIdx))
		}
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("matrix: RowPtr not monotone at row %d", i)
		}
		prev := int32(-1)
		for _, c := range m.Row(i) {
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("matrix: col %d out of range in row %d", c, i)
			}
			if c <= prev {
				return fmt.Errorf("matrix: row %d not strictly sorted", i)
			}
			prev = c
		}
	}
	if int(m.RowPtr[m.Rows]) != len(m.ColIdx) {
		return fmt.Errorf("matrix: RowPtr[Rows]=%d, NNZ=%d", m.RowPtr[m.Rows], len(m.ColIdx))
	}
	return nil
}

// FromCOO builds a CSR matrix from coordinate form, sorting rows and
// dropping duplicate entries.
func FromCOO(rows, cols int, ri, ci []int32) *CSR {
	if len(ri) != len(ci) {
		panic("matrix: COO length mismatch")
	}
	type pair struct{ r, c int32 }
	entries := make([]pair, len(ri))
	for i := range ri {
		entries[i] = pair{ri[i], ci[i]}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].r != entries[j].r {
			return entries[i].r < entries[j].r
		}
		return entries[i].c < entries[j].c
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	var last pair = pair{-1, -1}
	for _, e := range entries {
		if e == last {
			continue
		}
		last = e
		m.ColIdx = append(m.ColIdx, e.c)
		m.RowPtr[e.r+1]++
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// Transpose returns the structural transpose.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int32, m.Cols+1)}
	t.ColIdx = make([]int32, m.NNZ())
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int32(nil), t.RowPtr[:t.Rows]...)
	for r := 0; r < m.Rows; r++ {
		for _, c := range m.Row(r) {
			t.ColIdx[next[c]] = int32(r)
			next[c]++
		}
	}
	return t
}

// SymmetrizePattern returns A | A^T with the diagonal forced present,
// as needed when converting a square matrix to an undirected graph.
func (m *CSR) SymmetrizePattern() *CSR {
	if m.Rows != m.Cols {
		panic("matrix: SymmetrizePattern on non-square matrix")
	}
	t := m.Transpose()
	var ri, ci []int32
	for r := 0; r < m.Rows; r++ {
		ri = append(ri, int32(r))
		ci = append(ci, int32(r))
		for _, c := range m.Row(r) {
			ri = append(ri, int32(r))
			ci = append(ci, c)
		}
		for _, c := range t.Row(r) {
			ri = append(ri, int32(r))
			ci = append(ci, c)
		}
	}
	return FromCOO(m.Rows, m.Cols, ri, ci)
}

// MaxRowNNZ returns the maximum row length.
func (m *CSR) MaxRowNNZ() int {
	maxLen := 0
	for i := 0; i < m.Rows; i++ {
		if l := m.RowNNZ(i); l > maxLen {
			maxLen = l
		}
	}
	return maxLen
}

package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes the pattern of m in MatrixMarket coordinate
// format ("%%MatrixMarket matrix coordinate pattern general").
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern general"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for r := 0; r < m.Rows; r++ {
		for _, c := range m.Row(r) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", r+1, c+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket reads a MatrixMarket coordinate file. Pattern,
// integer and real matrices are accepted (values are discarded);
// "symmetric" and "skew-symmetric" storage is expanded to general.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("matrixmarket: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("matrixmarket: bad header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("matrixmarket: only coordinate format supported, got %q", header[2])
	}
	symmetric := false
	for _, f := range header[3:] {
		switch f {
		case "symmetric", "skew-symmetric", "hermitian":
			symmetric = true
		case "complex":
			return nil, fmt.Errorf("matrixmarket: complex matrices not supported")
		}
	}
	// Skip comments, find the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("matrixmarket: bad size line %q: %v", line, err)
		}
		break
	}
	ri := make([]int32, 0, nnz)
	ci := make([]int32, 0, nnz)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("matrixmarket: bad entry line %q", line)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: bad row index %q", fields[0])
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: bad col index %q", fields[1])
		}
		if a < 1 || a > rows || b < 1 || b > cols {
			return nil, fmt.Errorf("matrixmarket: entry (%d,%d) out of %dx%d", a, b, rows, cols)
		}
		ri = append(ri, int32(a-1))
		ci = append(ci, int32(b-1))
		if symmetric && a != b {
			ri = append(ri, int32(b-1))
			ci = append(ci, int32(a-1))
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("matrixmarket: expected %d entries, found %d", nnz, read)
	}
	return FromCOO(rows, cols, ri, ci), nil
}

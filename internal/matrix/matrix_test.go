package matrix

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func small() *CSR {
	// 3x3: row0 -> {0,2}, row1 -> {1}, row2 -> {0,1,2}
	return FromCOO(3, 3,
		[]int32{0, 0, 1, 2, 2, 2},
		[]int32{2, 0, 1, 1, 0, 2})
}

func TestFromCOOSortsAndDedupes(t *testing.T) {
	m := FromCOO(2, 2, []int32{1, 0, 1, 1}, []int32{0, 1, 0, 1})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicate dropped)", m.NNZ())
	}
	row1 := m.Row(1)
	if len(row1) != 2 || row1[0] != 0 || row1[1] != 1 {
		t.Fatalf("row 1 = %v, want [0 1]", row1)
	}
}

func TestValidate(t *testing.T) {
	m := small()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 6 || m.RowNNZ(2) != 3 || m.MaxRowNNZ() != 3 {
		t.Fatalf("shape wrong: nnz=%d row2=%d max=%d", m.NNZ(), m.RowNNZ(2), m.MaxRowNNZ())
	}
	bad := &CSR{Rows: 1, Cols: 1, RowPtr: []int32{0, 1}, ColIdx: []int32{5}}
	if bad.Validate() == nil {
		t.Fatal("Validate missed out-of-range column")
	}
}

func TestTranspose(t *testing.T) {
	m := small()
	tr := m.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NNZ() != m.NNZ() {
		t.Fatalf("transpose NNZ = %d, want %d", tr.NNZ(), m.NNZ())
	}
	// (0,2) in m must be (2,0) in tr.
	found := false
	for _, c := range tr.Row(2) {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("transpose missing entry (2,0)")
	}
	// Double transpose is identity.
	tt := tr.Transpose()
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), tt.Row(i)
		if len(a) != len(b) {
			t.Fatalf("row %d length differs after double transpose", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d differs after double transpose", i)
			}
		}
	}
}

func TestTransposeProperty(t *testing.T) {
	prop := func(entries [][2]uint8) bool {
		const n = 16
		var ri, ci []int32
		for _, e := range entries {
			ri = append(ri, int32(e[0])%n)
			ci = append(ci, int32(e[1])%n)
		}
		m := FromCOO(n, n, ri, ci)
		tr := m.Transpose()
		if tr.Validate() != nil || tr.NNZ() != m.NNZ() {
			return false
		}
		// Every (i,j) in m appears as (j,i) in tr.
		for i := 0; i < n; i++ {
			for _, j := range m.Row(i) {
				ok := false
				for _, c := range tr.Row(int(j)) {
					if int(c) == i {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrizePattern(t *testing.T) {
	m := FromCOO(3, 3, []int32{0}, []int32{2}) // single entry (0,2)
	s := m.SymmetrizePattern()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Must contain (0,2), (2,0) and the full diagonal.
	want := map[[2]int32]bool{{0, 2}: true, {2, 0}: true, {0, 0}: true, {1, 1}: true, {2, 2}: true}
	got := map[[2]int32]bool{}
	for i := 0; i < 3; i++ {
		for _, c := range s.Row(i) {
			got[[2]int32{int32(i), c}] = true
		}
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing entry %v after SymmetrizePattern", k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("extra entries: got %v", got)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := small()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatalf("round trip shape: %dx%d nnz %d", back.Rows, back.Cols, back.NNZ())
	}
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), back.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d differs after round trip", i)
			}
		}
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 2
2 1 1.5
3 3 2.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// (2,1) expands to (1,0) and (0,1) zero-based; (3,3) stays single.
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if len(m.Row(0)) != 1 || m.Row(0)[0] != 1 {
		t.Fatalf("row 0 = %v, want [1]", m.Row(0))
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"not a header\n1 1 0\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestValidateMoreBranches(t *testing.T) {
	cases := []*CSR{
		{Rows: -1, Cols: 2, RowPtr: []int32{0}},                          // negative dims
		{Rows: 1, Cols: 1, RowPtr: []int32{0}},                           // short RowPtr
		{Rows: 1, Cols: 1, RowPtr: []int32{1, 1}},                        // RowPtr[0] != 0
		{Rows: 2, Cols: 2, RowPtr: []int32{0, 2, 1}, ColIdx: []int32{0}}, // non-monotone
		{Rows: 1, Cols: 2, RowPtr: []int32{0, 2}, ColIdx: []int32{1, 0}}, // unsorted row
		{Rows: 1, Cols: 2, RowPtr: []int32{0, 2}, ColIdx: []int32{0, 0}}, // duplicate col
		{Rows: 1, Cols: 1, RowPtr: []int32{0, 2}, ColIdx: []int32{0}},    // nnz mismatch
	}
	for i, m := range cases {
		if m.Validate() == nil {
			t.Fatalf("case %d: Validate accepted corrupt matrix", i)
		}
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.after -= len(p)
	if w.after <= 0 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestWriteMatrixMarketPropagatesErrors(t *testing.T) {
	m := small()
	// Fail at various points of the output to cover each branch.
	for _, budget := range []int{1, 60, 75} {
		if err := WriteMatrixMarket(&failWriter{after: budget}, m); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
}

package fattree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func mustNew(t testing.TB, k int) *FatTree {
	t.Helper()
	ft, err := New(k, 10e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestNewValidation(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, -2} {
		if _, err := New(k, 1e9, 1); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
	if _, err := New(4, 0, 1); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(4, 1e9, 0.5); err == nil {
		t.Error("taper < 1 accepted")
	}
}

func TestCounts(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		ft := mustNew(t, k)
		if got, want := ft.Hosts(), k*k*k/4; got != want {
			t.Errorf("k=%d: hosts %d, want %d", k, got, want)
		}
		if got, want := ft.Nodes(), k*k*k/4+k*k+k*k/4; got != want {
			t.Errorf("k=%d: nodes %d, want %d", k, got, want)
		}
		// Directed links: 2 per physical link; physical links are
		// hosts (k^3/4) + edge-agg (k*(k/2)^2) + agg-core (k*(k/2)^2).
		want := 2 * (k*k*k/4 + 2*k*(k/2)*(k/2))
		if got := ft.Links(); got != want {
			t.Errorf("k=%d: links %d, want %d", k, got, want)
		}
	}
}

func TestClassifyRoundTrip(t *testing.T) {
	ft := mustNew(t, 4)
	counts := map[Level]int{}
	for v := 0; v < ft.Nodes(); v++ {
		lv, a, b := ft.Classify(v)
		counts[lv]++
		var back int
		switch lv {
		case Host:
			back = ft.hostID(a, b/ft.half, b%ft.half)
		case Edge:
			back = ft.edgeID(a, b)
		case Agg:
			back = ft.aggID(a, b)
		case Core:
			back = ft.coreID(a, b)
		}
		if back != v {
			t.Fatalf("classify(%d) = (%v,%d,%d) does not round-trip (got %d)", v, lv, a, b, back)
		}
	}
	if counts[Host] != 16 || counts[Edge] != 8 || counts[Agg] != 8 || counts[Core] != 4 {
		t.Fatalf("k=4 level counts: %v", counts)
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	ft := mustNew(t, 4)
	for v := 0; v < ft.Nodes(); v++ {
		var nb []int32
		nb = ft.NeighborNodes(v, nb)
		for _, u := range nb {
			var back []int32
			back = ft.NeighborNodes(int(u), back)
			found := false
			for _, w := range back {
				if int(w) == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", v, u)
			}
		}
	}
}

func TestDegrees(t *testing.T) {
	ft := mustNew(t, 4)
	for v := 0; v < ft.Nodes(); v++ {
		lv, _, _ := ft.Classify(v)
		deg := len(ft.NeighborNodes(v, nil))
		want := map[Level]int{Host: 1, Edge: 4, Agg: 4, Core: 4}[lv]
		if deg != want {
			t.Fatalf("vertex %d (level %v): degree %d, want %d", v, lv, deg, want)
		}
	}
}

// bfsDist computes exact shortest-path distance for validation.
func bfsDist(ft *FatTree, a, b int) int {
	if a == b {
		return 0
	}
	dist := make([]int, ft.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range ft.NeighborNodes(v, nil) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				if int(u) == b {
					return dist[u]
				}
				queue = append(queue, int(u))
			}
		}
	}
	return -1
}

func TestHopDistMatchesBFS(t *testing.T) {
	ft := mustNew(t, 4)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(ft.Nodes()), rng.Intn(ft.Nodes())
		if got, want := ft.HopDist(a, b), bfsDist(ft, a, b); got != want {
			la, pa, ia := ft.Classify(a)
			lb, pb, ib := ft.Classify(b)
			t.Fatalf("HopDist(%d,%d) = %d, BFS %d (a=%v/%d/%d b=%v/%d/%d)",
				a, b, got, want, la, pa, ia, lb, pb, ib)
		}
	}
}

func TestHopDistMatchesBFSK6(t *testing.T) {
	ft := mustNew(t, 6)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		a, b := rng.Intn(ft.Nodes()), rng.Intn(ft.Nodes())
		if got, want := ft.HopDist(a, b), bfsDist(ft, a, b); got != want {
			t.Fatalf("k=6 HopDist(%d,%d) = %d, BFS %d", a, b, got, want)
		}
	}
}

func TestDiameter(t *testing.T) {
	ft := mustNew(t, 4)
	max := 0
	for a := 0; a < ft.Nodes(); a++ {
		for b := a + 1; b < ft.Nodes(); b++ {
			if d := ft.HopDist(a, b); d > max {
				max = d
			}
		}
	}
	if max != ft.Diameter() {
		t.Fatalf("true diameter %d, Diameter() %d", max, ft.Diameter())
	}
}

func validateRoute(t *testing.T, ft *FatTree, a, b int, route []int32) {
	t.Helper()
	cur := a
	for _, l := range route {
		from, to := ft.LinkInfo(int(l))
		if from != cur {
			t.Fatalf("route %d->%d: link %d leaves %d, expected %d", a, b, l, from, cur)
		}
		cur = to
	}
	if cur != b {
		t.Fatalf("route %d->%d ends at %d", a, b, cur)
	}
}

func TestRouteValidAndShortest(t *testing.T) {
	ft := mustNew(t, 4)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(ft.Hosts()), rng.Intn(ft.Hosts())
		route := ft.Route(a, b, nil)
		validateRoute(t, ft, a, b, route)
		if len(route) != ft.HopDist(a, b) {
			t.Fatalf("route %d->%d has %d links, HopDist %d", a, b, len(route), ft.HopDist(a, b))
		}
	}
}

func TestRoutePanicsOnSwitchEndpoint(t *testing.T) {
	ft := mustNew(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for switch endpoint")
		}
	}()
	ft.Route(0, ft.Hosts(), nil)
}

func TestMinimalRoutesECMPWidths(t *testing.T) {
	ft := mustNew(t, 4)
	// Hosts 0 and 1 share edge switch 0 of pod 0.
	if got := ft.NumMinimalRoutes(0, 1); got != 1 {
		t.Fatalf("same-edge ECMP width %d, want 1", got)
	}
	// Hosts 0 and 2 are in pod 0, different edge switches.
	if got := ft.NumMinimalRoutes(0, 2); got != 2 {
		t.Fatalf("same-pod ECMP width %d, want k/2=2", got)
	}
	// Host 0 (pod 0) and host 4 (pod 1).
	if got := ft.NumMinimalRoutes(0, 4); got != 4 {
		t.Fatalf("inter-pod ECMP width %d, want (k/2)^2=4", got)
	}
}

func TestForEachMinimalRouteValidDistinct(t *testing.T) {
	ft := mustNew(t, 4)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Intn(ft.Hosts()), rng.Intn(ft.Hosts())
		seen := map[string]bool{}
		hops := ft.HopDist(a, b)
		n := ft.ForEachMinimalRoute(a, b, func(route []int32) {
			validateRoute(t, ft, a, b, route)
			if len(route) != hops {
				t.Fatalf("minimal route %d->%d length %d, want %d", a, b, len(route), hops)
			}
			seen[fmt.Sprint(route)] = true
		})
		if n != ft.NumMinimalRoutes(a, b) {
			t.Fatalf("enumerated %d, NumMinimalRoutes %d", n, ft.NumMinimalRoutes(a, b))
		}
		if a != b && len(seen) != n {
			t.Fatalf("%d->%d: %d distinct of %d routes", a, b, len(seen), n)
		}
	}
}

func TestStaticRouteAmongMinimal(t *testing.T) {
	ft := mustNew(t, 6)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Intn(ft.Hosts()), rng.Intn(ft.Hosts())
		if a == b {
			continue
		}
		static := fmt.Sprint(ft.Route(a, b, nil))
		found := false
		ft.ForEachMinimalRoute(a, b, func(route []int32) {
			if fmt.Sprint(route) == static {
				found = true
			}
		})
		if !found {
			t.Fatalf("static route %d->%d not among minimal routes", a, b)
		}
	}
}

func TestRouteScaleDividesECMPWidths(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16} {
		ft := mustNew(t, k)
		scale := ft.RouteScale()
		for _, p := range []int64{1, int64(k / 2), int64(k/2) * int64(k/2)} {
			if scale%p != 0 {
				t.Fatalf("k=%d: RouteScale %d not divisible by %d", k, scale, p)
			}
		}
	}
}

func TestTaperReducesUplinkBandwidth(t *testing.T) {
	ft, err := New(4, 8e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	// host-edge links at 8, edge-agg at 4, agg-core at 2 GB/s.
	route := ft.Route(0, ft.Hosts()-1, nil) // inter-pod: 6 links, 2 at each level
	want := []float64{8e9, 4e9, 2e9, 2e9, 4e9, 8e9}
	for i, l := range route {
		if got := ft.LinkBW(int(l)); got != want[i] {
			t.Fatalf("link %d of inter-pod route: bw %g, want %g", i, got, want[i])
		}
	}
}

func TestLinkInfoInvertsLinkID(t *testing.T) {
	ft := mustNew(t, 4)
	for l := 0; l < ft.Links(); l++ {
		from, to := ft.LinkInfo(l)
		if got := ft.linkID(from, to); got != int32(l) {
			t.Fatalf("LinkInfo(%d) = (%d,%d), linkID back = %d", l, from, to, got)
		}
	}
}

func TestSparseHostsProperties(t *testing.T) {
	ft := mustNew(t, 8)
	a, err := SparseHosts(ft, 40, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != 40 || a.TotalProcs() != 640 {
		t.Fatalf("allocation %d nodes, %d procs", len(a.Nodes), a.TotalProcs())
	}
	seen := map[int32]bool{}
	for _, h := range a.Nodes {
		if h < 0 || int(h) >= ft.Hosts() {
			t.Fatalf("allocated non-host %d", h)
		}
		if seen[h] {
			t.Fatalf("host %d allocated twice", h)
		}
		seen[h] = true
	}
}

func TestSparseHostsErrors(t *testing.T) {
	ft := mustNew(t, 4)
	if _, err := SparseHosts(ft, 0, 16, 1); err == nil {
		t.Error("want=0 accepted")
	}
	if _, err := SparseHosts(ft, ft.Hosts()+1, 16, 1); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := ContiguousHosts(ft, ft.Hosts(), 16, 1); err != nil {
		t.Errorf("full-machine contiguous allocation rejected: %v", err)
	}
}

func TestMappingPipelineOnFatTree(t *testing.T) {
	// End-to-end: the paper's WH algorithms run unchanged on a fat
	// tree and improve over a block mapping.
	ft := mustNew(t, 8)
	a, err := SparseHosts(ft, 32, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(32, 96, 50, 11)
	block := make([]int32, 32)
	copy(block, a.Nodes[:32])
	nodeOf := core.MapUWH(g, ft, a.Nodes)
	whBlock := metrics.WeightedHops(g, ft, block)
	whUWH := metrics.WeightedHops(g, ft, nodeOf)
	if whUWH > whBlock {
		t.Fatalf("UWH on fat tree (%d) worse than block mapping (%d)", whUWH, whBlock)
	}
	// Congestion refinement (static ECMP routes) runs too.
	mc := append([]int32(nil), nodeOf...)
	core.RefineCongestion(g, ft, a.Nodes, mc, core.VolumeCongestion, core.RefineOptions{})
	pl := &metrics.Placement{NodeOf: mc}
	if m := metrics.Compute(g, ft, pl); m.MC <= 0 {
		t.Fatalf("degenerate MC %g", m.MC)
	}
	// Adaptive (ECMP-spread) refinement as well.
	ad := append([]int32(nil), nodeOf...)
	core.RefineCongestionAdaptive(g, ft, a.Nodes, ad, core.VolumeCongestion, core.RefineOptions{})
	if m := metrics.ComputeAdaptive(g, ft, &metrics.Placement{NodeOf: ad}); m.EMC <= 0 {
		t.Fatalf("degenerate EMC %g", m.EMC)
	}
}

func TestHopDistProperty(t *testing.T) {
	ft := mustNew(t, 4)
	f := func(ai, bi uint16) bool {
		a, b := int(ai)%ft.Nodes(), int(bi)%ft.Nodes()
		d := ft.HopDist(a, b)
		if d != ft.HopDist(b, a) {
			return false // symmetry
		}
		if (d == 0) != (a == b) {
			return false // identity
		}
		return d <= ft.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package fattree models a k-ary fat-tree network (the three-level
// Clos topology of HPC and datacenter clusters) behind the same
// torus.Topology interface the mapping algorithms consume. The paper
// presents its WH-minimizing algorithms as topology-agnostic ("the
// ones that minimize WH can be applied to various topologies", §III);
// this package exercises that claim on the most common non-torus
// interconnect.
//
// Structure of a k-ary fat tree (k even): k pods, each with k/2 edge
// switches and k/2 aggregation switches; each edge switch hosts k/2
// compute nodes; (k/2)² core switches connect the pods, core group j
// attaching to aggregation switch j of every pod. Hosts therefore
// number k³/4.
//
// Vertex ids place the hosts first (0..H-1), so host ids double as
// placement targets; switches follow. Static routing is
// destination-deterministic ("D-mod-k"): the aggregation and core
// switch of a route are chosen by the destination id, which is how
// deterministic ECMP tables spread load in practice. The package also
// implements torus.MultipathTopology by enumerating every minimal
// (agg, core) choice, so the adaptive congestion refinement runs on
// fat trees too.
package fattree

import (
	"fmt"
	"strconv"

	"repro/internal/torus"
)

// Level classifies a vertex of the fat tree.
type Level int

// Vertex levels.
const (
	Host Level = iota
	Edge
	Agg
	Core
)

// FatTree is a k-ary fat-tree topology. It implements
// torus.Topology and torus.MultipathTopology.
type FatTree struct {
	k     int // arity (even, >= 2)
	half  int // k/2
	hosts int // k^3/4

	// CSR adjacency over all vertices (hosts + switches); the index
	// of a neighbour within its row is the directed link id offset.
	xadj []int32
	adj  []int32
	bw   []float64 // per directed link

	bwHost float64 // host-edge link bandwidth
	taper  float64 // bandwidth divisor per level upward
}

// New builds a k-ary fat tree. k must be even and >= 2. bwHost is the
// host-to-edge link bandwidth (bytes/sec); taper >= 1 divides the
// bandwidth once per level upward (taper 1 = full bisection, taper 2
// = 2:1 oversubscription at each level).
func New(k int, bwHost, taper float64) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fattree: arity k must be even and >= 2, got %d", k)
	}
	if bwHost <= 0 || taper < 1 {
		return nil, fmt.Errorf("fattree: need bwHost > 0 and taper >= 1")
	}
	ft := &FatTree{k: k, half: k / 2, hosts: k * k * k / 4, bwHost: bwHost, taper: taper}
	ft.build()
	return ft, nil
}

// Arity returns k.
func (ft *FatTree) Arity() int { return ft.k }

// TopologyFingerprint canonically describes the fat tree: arity,
// host-link bandwidth and per-level taper (torus.Fingerprinter).
func (ft *FatTree) TopologyFingerprint() string {
	return "fattree:k=" + strconv.Itoa(ft.k) +
		";bw=" + strconv.FormatFloat(ft.bwHost, 'g', -1, 64) +
		";taper=" + strconv.FormatFloat(ft.taper, 'g', -1, 64)
}

// Hosts returns the number of compute nodes (k³/4); they are vertices
// 0..Hosts()-1.
func (ft *FatTree) Hosts() int { return ft.hosts }

// vertex id layout
func (ft *FatTree) hostID(pod, edge, port int) int { return pod*ft.half*ft.half + edge*ft.half + port }
func (ft *FatTree) edgeID(pod, e int) int          { return ft.hosts + pod*ft.half + e }
func (ft *FatTree) aggID(pod, j int) int           { return ft.hosts + ft.k*ft.half + pod*ft.half + j }
func (ft *FatTree) coreID(j, c int) int            { return ft.hosts + 2*ft.k*ft.half + j*ft.half + c }

// Classify returns the level and structural coordinates of a vertex:
// (Host, pod, edge*half+port), (Edge, pod, e), (Agg, pod, j) or
// (Core, j, c).
func (ft *FatTree) Classify(v int) (lv Level, a, b int) {
	if v < ft.hosts {
		pod := v / (ft.half * ft.half)
		return Host, pod, v % (ft.half * ft.half)
	}
	v -= ft.hosts
	if v < ft.k*ft.half {
		return Edge, v / ft.half, v % ft.half
	}
	v -= ft.k * ft.half
	if v < ft.k*ft.half {
		return Agg, v / ft.half, v % ft.half
	}
	v -= ft.k * ft.half
	return Core, v / ft.half, v % ft.half
}

// build constructs the CSR adjacency and per-link bandwidths.
func (ft *FatTree) build() {
	n := ft.Nodes()
	deg := make([]int32, n)
	addDeg := func(u, v int) { deg[u]++; deg[v]++ }
	ft.forEachUndirectedLink(func(u, v, level int) { addDeg(u, v) })
	ft.xadj = make([]int32, n+1)
	for v := 0; v < n; v++ {
		ft.xadj[v+1] = ft.xadj[v] + deg[v]
	}
	ft.adj = make([]int32, ft.xadj[n])
	ft.bw = make([]float64, ft.xadj[n])
	fill := make([]int32, n)
	put := func(u, v, level int) {
		bw := ft.bwHost
		for l := 0; l < level; l++ {
			bw /= ft.taper
		}
		i := ft.xadj[u] + fill[u]
		ft.adj[i] = int32(v)
		ft.bw[i] = bw
		fill[u]++
		i = ft.xadj[v] + fill[v]
		ft.adj[i] = int32(u)
		ft.bw[i] = bw
		fill[v]++
	}
	ft.forEachUndirectedLink(put)
}

// forEachUndirectedLink enumerates the physical links with their
// level (0 host-edge, 1 edge-agg, 2 agg-core).
func (ft *FatTree) forEachUndirectedLink(fn func(u, v, level int)) {
	for p := 0; p < ft.k; p++ {
		for e := 0; e < ft.half; e++ {
			for port := 0; port < ft.half; port++ {
				fn(ft.hostID(p, e, port), ft.edgeID(p, e), 0)
			}
			for j := 0; j < ft.half; j++ {
				fn(ft.edgeID(p, e), ft.aggID(p, j), 1)
			}
		}
		for j := 0; j < ft.half; j++ {
			for c := 0; c < ft.half; c++ {
				fn(ft.aggID(p, j), ft.coreID(j, c), 2)
			}
		}
	}
}

// Nodes returns the total vertex count: hosts plus k² pod switches
// plus (k/2)² core switches.
func (ft *FatTree) Nodes() int { return ft.hosts + 2*ft.k*ft.half + ft.half*ft.half }

// Diameter of a fat tree is 6 (host-edge-agg-core-agg-edge-host).
func (ft *FatTree) Diameter() int { return 6 }

// Links returns the number of directed links.
func (ft *FatTree) Links() int { return len(ft.adj) }

// LinkBW returns a directed link's bandwidth.
func (ft *FatTree) LinkBW(link int) float64 { return ft.bw[link] }

// LinkInfo decodes a directed link id into its endpoints.
func (ft *FatTree) LinkInfo(link int) (from, to int) {
	// Binary search the CSR row containing the link.
	lo, hi := 0, len(ft.xadj)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(ft.xadj[mid]) <= link {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, int(ft.adj[link])
}

// NeighborNodes appends the vertices adjacent to v.
func (ft *FatTree) NeighborNodes(v int, dst []int32) []int32 {
	return append(dst, ft.adj[ft.xadj[v]:ft.xadj[v+1]]...)
}

// linkID returns the directed link id u→v; u and v must be adjacent.
func (ft *FatTree) linkID(u, v int) int32 {
	for i := ft.xadj[u]; i < ft.xadj[u+1]; i++ {
		if ft.adj[i] == int32(v) {
			return i
		}
	}
	panic(fmt.Sprintf("fattree: vertices %d and %d are not adjacent", u, v))
}

// HopDist returns the shortest-path length between any two vertices
// in O(1) by case analysis on their levels.
func (ft *FatTree) HopDist(a, b int) int {
	if a == b {
		return 0
	}
	la, pa, ia := ft.Classify(a)
	lb, pb, ib := ft.Classify(b)
	if la > lb {
		la, pa, ia, lb, pb, ib = lb, pb, ib, la, pa, ia
	}
	switch la {
	case Host:
		ea := ia / ft.half
		switch lb {
		case Host:
			eb := ib / ft.half
			switch {
			case pa == pb && ea == eb:
				return 2
			case pa == pb:
				return 4
			default:
				return 6
			}
		case Edge:
			switch {
			case pa == pb && ea == ib:
				return 1
			case pa == pb:
				return 3
			default:
				return 5
			}
		case Agg:
			if pa == pb {
				return 2
			}
			return 4
		default: // Core
			return 3
		}
	case Edge:
		switch lb {
		case Edge:
			if pa == pb {
				return 2
			}
			return 4
		case Agg:
			if pa == pb {
				return 1
			}
			return 3
		default: // Core
			return 2
		}
	case Agg:
		switch lb {
		case Agg:
			if pa == pb || ia == ib {
				return 2
			}
			return 4
		default: // Core: pb is the core group j
			if ia == pb {
				return 1
			}
			return 3
		}
	default: // Core-Core: pa, pb are the groups
		if pa == pb {
			return 2
		}
		return 4
	}
}

// routeVia appends the links of the route a→b through the given
// aggregation index j and core column c (ignored when unused).
func (ft *FatTree) routeVia(a, b, j, c int, dst []int32) []int32 {
	_, pa, ia := ft.Classify(a)
	_, pb, ib := ft.Classify(b)
	ea, eb := ia/ft.half, ib/ft.half
	edgeA, edgeB := ft.edgeID(pa, ea), ft.edgeID(pb, eb)
	dst = append(dst, ft.linkID(a, edgeA))
	if pa == pb && ea == eb {
		return append(dst, ft.linkID(edgeA, b))
	}
	aggA := ft.aggID(pa, j)
	dst = append(dst, ft.linkID(edgeA, aggA))
	if pa == pb {
		dst = append(dst, ft.linkID(aggA, edgeB))
		return append(dst, ft.linkID(edgeB, b))
	}
	core := ft.coreID(j, c)
	aggB := ft.aggID(pb, j)
	dst = append(dst,
		ft.linkID(aggA, core),
		ft.linkID(core, aggB),
		ft.linkID(aggB, edgeB),
		ft.linkID(edgeB, b))
	return dst
}

// Route appends the static route between two hosts: the aggregation
// and core hops are picked deterministically from the destination id
// (D-mod-k routing), which is how static ECMP routing tables are
// populated on fat trees. Both endpoints must be hosts.
func (ft *FatTree) Route(a, b int, dst []int32) []int32 {
	if a == b {
		return dst
	}
	if a >= ft.hosts || b >= ft.hosts {
		panic("fattree: Route endpoints must be hosts")
	}
	j := b % ft.half
	c := (b / ft.half) % ft.half
	return ft.routeVia(a, b, j, c, dst)
}

// NumMinimalRoutes returns the ECMP width between two hosts: 1 under
// the same edge switch, k/2 within a pod (choice of aggregation
// switch), (k/2)² across pods (choice of core switch).
func (ft *FatTree) NumMinimalRoutes(a, b int) int {
	if a == b {
		return 0
	}
	_, pa, ia := ft.Classify(a)
	_, pb, ib := ft.Classify(b)
	switch {
	case pa == pb && ia/ft.half == ib/ft.half:
		return 1
	case pa == pb:
		return ft.half
	default:
		return ft.half * ft.half
	}
}

// ForEachMinimalRoute enumerates the minimal routes between two
// hosts: every aggregation choice within a pod, every (agg, core)
// choice across pods. The route buffer is reused between calls.
func (ft *FatTree) ForEachMinimalRoute(a, b int, fn func(route []int32)) int {
	if a == b {
		return 0
	}
	_, pa, ia := ft.Classify(a)
	_, pb, ib := ft.Classify(b)
	route := make([]int32, 0, 6)
	switch {
	case pa == pb && ia/ft.half == ib/ft.half:
		fn(ft.routeVia(a, b, 0, 0, route[:0]))
		return 1
	case pa == pb:
		for j := 0; j < ft.half; j++ {
			fn(ft.routeVia(a, b, j, 0, route[:0]))
		}
		return ft.half
	default:
		for j := 0; j < ft.half; j++ {
			for c := 0; c < ft.half; c++ {
				fn(ft.routeVia(a, b, j, c, route[:0]))
			}
		}
		return ft.half * ft.half
	}
}

// RouteScale returns (k/2)², which every possible route count
// (1, k/2, (k/2)²) divides.
func (ft *FatTree) RouteScale() int64 { return int64(ft.half) * int64(ft.half) }

var (
	_ torus.Topology          = (*FatTree)(nil)
	_ torus.MultipathTopology = (*FatTree)(nil)
)

package fattree

import (
	"fmt"

	"repro/internal/alloc"
)

// Host allocation mirrors internal/alloc's Cray-style modes: a fat
// tree's scheduler linear order is simply host-id order, which walks
// ports, then edge switches, then pods — the locality order of the
// physical racks.

// SparseHosts reserves want hosts on a busy machine: a seeded random
// busyFraction of the hosts is occupied and the first want free hosts
// after a random offset (in id order) are taken — non-contiguous but
// locality-biased, like the paper's Hopper allocations. Each host
// gets procsPerHost processors.
func SparseHosts(ft *FatTree, want, procsPerHost int, seed int64) (*alloc.Allocation, error) {
	return hosts(ft, want, procsPerHost, seed, 0.5)
}

// ContiguousHosts reserves want consecutive hosts in id order from a
// seeded offset.
func ContiguousHosts(ft *FatTree, want, procsPerHost int, seed int64) (*alloc.Allocation, error) {
	return hosts(ft, want, procsPerHost, seed, 0)
}

func hosts(ft *FatTree, want, procsPerHost int, seed int64, busyFraction float64) (*alloc.Allocation, error) {
	if procsPerHost <= 0 {
		procsPerHost = alloc.DefaultProcsPerNode
	}
	nodes, err := alloc.SparseIDs(ft.Hosts(), want, seed, busyFraction)
	if err != nil {
		return nil, fmt.Errorf("fattree: %w", err)
	}
	procs := make([]int, want)
	for i := range procs {
		procs[i] = procsPerHost
	}
	return &alloc.Allocation{Nodes: nodes, ProcsPerNode: procs}, nil
}

// Package routecache precomputes the routing and distance state a
// mapping engine reuses across requests: for a fixed (topology,
// allocation) pair it tabulates the hop distance and the static route
// of every allocated node pair once, and serves them from dense
// read-only tables afterwards. The tables are built from the
// underlying topology's own HopDist/Route answers, so a cached view
// is observationally identical to the raw topology — mappings and
// metrics computed through it are byte-for-byte the same — while
// queries between allocated nodes (the hot path of every mapping
// algorithm and of the metric evaluation) become O(1) table lookups
// instead of per-call route recomputation.
//
// The view is immutable after construction and therefore safe for
// any number of concurrent readers, which is what makes one engine
// serve parallel mapping requests race-free.
package routecache

import (
	"fmt"

	"repro/internal/torus"
)

// cached is the core view: Topology with tabulated HopDist/Route for
// allocated node pairs, delegation for everything else.
type cached struct {
	base torus.Topology
	idx  []int32 // node id -> dense allocated index, -1 when not allocated
	n    int     // number of allocated nodes

	dist  []int32 // n*n hop distances
	off   []int32 // n*n+1 CSR offsets into links
	links []int32 // concatenated route link ids
}

// New returns a Topology view of base with the pairwise routing state
// of allocNodes precomputed. The view preserves every capability of
// the base topology that the mapping stack uses: it implements
// torus.MultipathTopology when base does (route enumeration is
// delegated), and torus.CoordsOf/MultipathOf see through it via
// Unwrap. allocNodes must be valid node ids of base.
func New(base torus.Topology, allocNodes []int32) (torus.Topology, error) {
	n := len(allocNodes)
	c := &cached{
		base: base,
		idx:  make([]int32, base.Nodes()),
		n:    n,
		dist: make([]int32, n*n),
		off:  make([]int32, n*n+1),
	}
	for i := range c.idx {
		c.idx[i] = -1
	}
	for i, m := range allocNodes {
		if m < 0 || int(m) >= base.Nodes() {
			return nil, fmt.Errorf("routecache: node %d outside topology", m)
		}
		if c.idx[m] >= 0 {
			return nil, fmt.Errorf("routecache: duplicate node %d", m)
		}
		c.idx[m] = int32(i)
	}
	var route []int32
	for i, a := range allocNodes {
		for j, b := range allocNodes {
			p := i*n + j
			if a == b {
				c.dist[p] = 0
				c.off[p+1] = c.off[p]
				continue
			}
			c.dist[p] = int32(base.HopDist(int(a), int(b)))
			route = base.Route(int(a), int(b), route[:0])
			c.links = append(c.links, route...)
			c.off[p+1] = c.off[p] + int32(len(route))
		}
	}
	if mp, ok := base.(torus.MultipathTopology); ok {
		return &cachedMultipath{cached: c, mp: mp}, nil
	}
	return c, nil
}

// Unwrap exposes the underlying topology to torus.Underlying and the
// capability helpers.
func (c *cached) Unwrap() torus.Topology { return c.base }

// Nodes delegates to the base topology.
func (c *cached) Nodes() int { return c.base.Nodes() }

// Diameter delegates to the base topology.
func (c *cached) Diameter() int { return c.base.Diameter() }

// NeighborNodes delegates to the base topology.
func (c *cached) NeighborNodes(v int, dst []int32) []int32 {
	return c.base.NeighborNodes(v, dst)
}

// Links delegates to the base topology.
func (c *cached) Links() int { return c.base.Links() }

// LinkBW delegates to the base topology.
func (c *cached) LinkBW(link int) float64 { return c.base.LinkBW(link) }

// HopDist serves allocated pairs from the table and delegates the
// rest (BFS frontiers may touch unallocated nodes).
func (c *cached) HopDist(a, b int) int {
	ia, ib := c.idx[a], c.idx[b]
	if ia < 0 || ib < 0 {
		return c.base.HopDist(a, b)
	}
	return int(c.dist[int(ia)*c.n+int(ib)])
}

// Route appends the tabulated route for allocated pairs and delegates
// the rest.
func (c *cached) Route(a, b int, dst []int32) []int32 {
	ia, ib := c.idx[a], c.idx[b]
	if ia < 0 || ib < 0 {
		return c.base.Route(a, b, dst)
	}
	p := int(ia)*c.n + int(ib)
	return append(dst, c.links[c.off[p]:c.off[p+1]]...)
}

// cachedMultipath adds minimal-route enumeration by delegation, so
// the adaptive congestion refinement and metrics run through the view
// unchanged.
type cachedMultipath struct {
	*cached
	mp torus.MultipathTopology
}

// ForEachMinimalRoute delegates to the base topology.
func (c *cachedMultipath) ForEachMinimalRoute(a, b int, fn func(route []int32)) int {
	return c.mp.ForEachMinimalRoute(a, b, fn)
}

// NumMinimalRoutes delegates to the base topology.
func (c *cachedMultipath) NumMinimalRoutes(a, b int) int { return c.mp.NumMinimalRoutes(a, b) }

// RouteScale delegates to the base topology.
func (c *cachedMultipath) RouteScale() int64 { return c.mp.RouteScale() }

var (
	_ torus.Topology          = (*cached)(nil)
	_ torus.Unwrapper         = (*cached)(nil)
	_ torus.MultipathTopology = (*cachedMultipath)(nil)
)

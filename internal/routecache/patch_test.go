package routecache

import (
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dragonfly"
	"repro/internal/torus"
)

// checkEquivalent verifies the patched view answers HopDist/Route
// exactly like a cold New build over the same allocation.
func checkEquivalent(t *testing.T, base torus.Topology, patched torus.Topology, nodes []int32) {
	t.Helper()
	cold, err := New(base, nodes)
	if err != nil {
		t.Fatal(err)
	}
	var want, got []int32
	for _, a := range nodes {
		for _, b := range nodes {
			if patched.HopDist(int(a), int(b)) != cold.HopDist(int(a), int(b)) {
				t.Fatalf("HopDist(%d,%d) diverged from cold build", a, b)
			}
			want = cold.Route(int(a), int(b), want[:0])
			got = patched.Route(int(a), int(b), got[:0])
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("Route(%d,%d) diverged: cold %v patched %v", a, b, want, got)
			}
		}
	}
	_, coldMP := cold.(torus.MultipathTopology)
	_, patchMP := patched.(torus.MultipathTopology)
	if coldMP != patchMP {
		t.Fatalf("multipath capability diverged: cold %v patched %v", coldMP, patchMP)
	}
}

func TestPatchRemoveNode(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := alloc.Generate(topo, 16, alloc.Config{Mode: alloc.Sparse, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := New(topo, a.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one node: every surviving pair must be reused.
	next := append([]int32(nil), a.Nodes[1:]...)
	view, stats, err := Patch(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	n := len(next)
	if stats.Total != n*n-n {
		t.Fatalf("Total = %d, want %d", stats.Total, n*n-n)
	}
	if stats.Reused != stats.Total {
		t.Fatalf("node removal must reuse every surviving pair: reused %d of %d", stats.Reused, stats.Total)
	}
	checkEquivalent(t, topo, view, next)
}

func TestPatchAddNode(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := alloc.Generate(topo, 16, alloc.Config{Mode: alloc.Sparse, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := New(topo, a.Nodes[:15])
	if err != nil {
		t.Fatal(err)
	}
	// Add one node: only pairs touching it recompute.
	next := a.Nodes
	view, stats, err := Patch(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	oldPairs := 15*15 - 15
	if stats.Reused != oldPairs {
		t.Fatalf("adding a node must reuse all %d old pairs, reused %d", oldPairs, stats.Reused)
	}
	if stats.Total != 16*16-16 {
		t.Fatalf("Total = %d, want %d", stats.Total, 16*16-16)
	}
	checkEquivalent(t, topo, view, next)
}

func TestPatchMultipath(t *testing.T) {
	d, err := dragonfly.New(2, 10e9, 5e9, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := dragonfly.SparseHosts(d, 12, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := New(d, a.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	next := append([]int32(nil), a.Nodes[:len(a.Nodes)-2]...)
	view, stats, err := Patch(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != stats.Total {
		t.Fatalf("shrink must reuse every pair: %d of %d", stats.Reused, stats.Total)
	}
	checkEquivalent(t, d, view, next)
}

func TestPatchRawFallback(t *testing.T) {
	// A raw (uncached) topology as prev falls back to a cold build.
	topo := torus.NewHopper3D(4, 4, 4)
	nodes := []int32{0, 5, 9}
	view, stats, err := Patch(topo, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != 0 {
		t.Fatalf("raw fallback must report zero reuse, got %d", stats.Reused)
	}
	checkEquivalent(t, topo, view, nodes)
}

func TestPatchRejectsBadNodes(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	prev, err := New(topo, []int32{0, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Patch(prev, []int32{0, 64}); err == nil {
		t.Fatal("out-of-range node must be rejected")
	}
	if _, _, err := Patch(prev, []int32{3, 3}); err == nil {
		t.Fatal("duplicate node must be rejected")
	}
}

package routecache

import (
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dragonfly"
	"repro/internal/fattree"
	"repro/internal/torus"
)

// checkView verifies a cached view answers exactly like its base
// topology for every allocated pair (and a sample of unallocated
// pairs, which must fall through to the base).
func checkView(t *testing.T, base torus.Topology, nodes []int32) {
	t.Helper()
	view, err := New(base, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if view.Nodes() != base.Nodes() || view.Links() != base.Links() || view.Diameter() != base.Diameter() {
		t.Fatal("delegated scalars diverge")
	}
	var want, got []int32
	for _, a := range nodes {
		for _, b := range nodes {
			if view.HopDist(int(a), int(b)) != base.HopDist(int(a), int(b)) {
				t.Fatalf("HopDist(%d,%d) diverged", a, b)
			}
			want = base.Route(int(a), int(b), want[:0])
			got = view.Route(int(a), int(b), got[:0])
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("Route(%d,%d) diverged: base %v view %v", a, b, want, got)
			}
		}
	}
	// Unwrap must reach the base topology.
	if torus.Underlying(view) != base {
		t.Fatal("Underlying did not reach the base topology")
	}
	// Multipath capability must be preserved exactly.
	_, baseMP := base.(torus.MultipathTopology)
	_, viewMP := view.(torus.MultipathTopology)
	if baseMP != viewMP {
		t.Fatalf("multipath capability changed: base %v view %v", baseMP, viewMP)
	}
}

func TestCachedTorus(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := alloc.Generate(topo, 12, alloc.Config{Mode: alloc.Sparse, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkView(t, topo, a.Nodes)
}

func TestCachedFatTree(t *testing.T) {
	ft, err := fattree.New(8, 10e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fattree.SparseHosts(ft, 16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkView(t, ft, a.Nodes)
}

func TestCachedDragonfly(t *testing.T) {
	d, err := dragonfly.New(2, 10e9, 5e9, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := dragonfly.SparseHosts(d, 12, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkView(t, d, a.Nodes)
}

func TestCachedUnallocatedFallthrough(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	nodes := []int32{0, 5, 9}
	view, err := New(topo, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// 60 and 61 are not allocated: both lookups must delegate.
	if view.HopDist(60, 61) != topo.HopDist(60, 61) {
		t.Fatal("unallocated HopDist diverged")
	}
	var want, got []int32
	want = topo.Route(60, 0, want)
	got = view.Route(60, 0, got)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("unallocated Route diverged")
	}
	// Coordinate capability remains discoverable through the view.
	if _, ok := torus.CoordsOf(view); !ok {
		t.Fatal("CoordsOf must see through the cached view")
	}
}

func TestNewRejectsBadNodes(t *testing.T) {
	topo := torus.NewHopper3D(4, 4, 4)
	if _, err := New(topo, []int32{0, 64}); err == nil {
		t.Fatal("out-of-range node must be rejected")
	}
	if _, err := New(topo, []int32{3, 3}); err == nil {
		t.Fatal("duplicate node must be rejected")
	}
}

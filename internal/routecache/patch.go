package routecache

import (
	"fmt"

	"repro/internal/torus"
)

// PatchStats reports how much of a previous view's tabulated state a
// Patch call salvaged: Reused counts the ordered off-diagonal node
// pairs copied verbatim from the previous tables, Total the pairs the
// new view tabulates. On a pure node-removal or capacity-only delta
// every surviving pair is reused; only pairs touching an added node
// pay a route recomputation.
type PatchStats struct {
	Reused, Total int
}

// Patch builds the route-cache view for allocNodes by patching a
// previous view in place of a cold build: every (a,b) pair whose two
// endpoints were both allocated in prev keeps its tabulated hop
// distance and route verbatim — only pairs touching a node prev did
// not cover are recomputed from the base topology. The result is
// observationally identical to New(base, allocNodes) (both tables are
// derived from the same base Route/HopDist answers), so a patched
// engine and a cold engine produce byte-identical mappings; Patch
// only changes how much construction work the delta costs.
//
// prev must be a view returned by New or Patch; any other Topology
// falls back to a cold New build with zero reuse (stats report it).
func Patch(prev torus.Topology, allocNodes []int32) (torus.Topology, PatchStats, error) {
	n := len(allocNodes)
	stats := PatchStats{Total: n*n - n}
	var old *cached
	switch v := prev.(type) {
	case *cachedMultipath:
		old = v.cached
	case *cached:
		old = v
	default:
		view, err := New(prev, allocNodes)
		return view, stats, err
	}
	base := old.base
	c := &cached{
		base: base,
		idx:  make([]int32, base.Nodes()),
		n:    n,
		dist: make([]int32, n*n),
		off:  make([]int32, n*n+1),
	}
	for i := range c.idx {
		c.idx[i] = -1
	}
	for i, m := range allocNodes {
		if m < 0 || int(m) >= base.Nodes() {
			return nil, stats, fmt.Errorf("routecache: node %d outside topology", m)
		}
		if c.idx[m] >= 0 {
			return nil, stats, fmt.Errorf("routecache: duplicate node %d", m)
		}
		c.idx[m] = int32(i)
	}
	var route []int32
	for i, a := range allocNodes {
		oa := old.idx[a]
		for j, b := range allocNodes {
			p := i*n + j
			if a == b {
				c.dist[p] = 0
				c.off[p+1] = c.off[p]
				continue
			}
			if ob := old.idx[b]; oa >= 0 && ob >= 0 {
				// Both endpoints survive: copy the tabulated pair.
				op := int(oa)*old.n + int(ob)
				c.dist[p] = old.dist[op]
				c.links = append(c.links, old.links[old.off[op]:old.off[op+1]]...)
				c.off[p+1] = c.off[p] + (old.off[op+1] - old.off[op])
				stats.Reused++
				continue
			}
			c.dist[p] = int32(base.HopDist(int(a), int(b)))
			route = base.Route(int(a), int(b), route[:0])
			c.links = append(c.links, route...)
			c.off[p+1] = c.off[p] + int32(len(route))
		}
	}
	if mp, ok := base.(torus.MultipathTopology); ok {
		return &cachedMultipath{cached: c, mp: mp}, stats, nil
	}
	return c, stats, nil
}

package rankfile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/metrics"
	"repro/internal/torus"
)

func testAlloc(nodes ...int32) *alloc.Allocation {
	procs := make([]int, len(nodes))
	for i := range procs {
		procs[i] = 4
	}
	return &alloc.Allocation{Nodes: nodes, ProcsPerNode: procs}
}

func TestWriteReadRankOrderRoundTrip(t *testing.T) {
	a := testAlloc(10, 3, 77)
	// 12 ranks, 4 per node, scrambled across the three nodes.
	groupOf := []int32{2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1}
	pl := &metrics.Placement{GroupOf: groupOf, NodeOf: a.Nodes}
	var buf bytes.Buffer
	if err := WriteRankOrder(&buf, pl, a); err != nil {
		t.Fatal(err)
	}
	order, err := ReadRankOrder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 12 {
		t.Fatalf("order has %d ranks", len(order))
	}
	back, err := PlacementFromRankOrder(order, a)
	if err != nil {
		t.Fatal(err)
	}
	for r := int32(0); r < 12; r++ {
		if back.Node(r) != pl.Node(r) {
			t.Fatalf("rank %d: node %d after round trip, want %d", r, back.Node(r), pl.Node(r))
		}
	}
}

func TestWriteRankOrderSMPBlocks(t *testing.T) {
	// Identity placement: the file must be 0..n-1 in order.
	a := testAlloc(5, 6)
	groupOf := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	pl := &metrics.Placement{GroupOf: groupOf, NodeOf: a.Nodes}
	var buf bytes.Buffer
	if err := WriteRankOrder(&buf, pl, a); err != nil {
		t.Fatal(err)
	}
	order, err := ReadRankOrder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range order {
		if int(r) != i {
			t.Fatalf("identity placement produced order %v", order)
		}
	}
}

func TestWriteRankOrderRejectsForeignNode(t *testing.T) {
	a := testAlloc(1, 2)
	pl := &metrics.Placement{NodeOf: []int32{1, 99}}
	if err := WriteRankOrder(&bytes.Buffer{}, pl, a); err == nil {
		t.Fatal("node outside allocation accepted")
	}
}

func TestWriteRankOrderRejectsOverCapacity(t *testing.T) {
	a := &alloc.Allocation{Nodes: []int32{4}, ProcsPerNode: []int{2}}
	pl := &metrics.Placement{GroupOf: []int32{0, 0, 0}, NodeOf: []int32{4}}
	if err := WriteRankOrder(&bytes.Buffer{}, pl, a); err == nil {
		t.Fatal("over-capacity node accepted")
	}
}

func TestWriteRankOrderRejectsUnrealizablePlacement(t *testing.T) {
	// Node 0 partially filled (3 of 4) while node 1 is non-empty: SMP
	// block filling would steal a node-1 rank onto node 0.
	a := testAlloc(5, 6)
	groupOf := []int32{0, 0, 0, 1, 1, 1, 1}
	pl := &metrics.Placement{GroupOf: groupOf, NodeOf: a.Nodes}
	if err := WriteRankOrder(&bytes.Buffer{}, pl, a); err == nil {
		t.Fatal("unrealizable placement accepted")
	}
}

func TestWriteRankOrderAcceptsTrailingPartialNode(t *testing.T) {
	// 6 ranks on capacities 4+4: full node then partial final node.
	a := testAlloc(5, 6)
	groupOf := []int32{0, 0, 0, 0, 1, 1}
	pl := &metrics.Placement{GroupOf: groupOf, NodeOf: a.Nodes}
	var buf bytes.Buffer
	if err := WriteRankOrder(&buf, pl, a); err != nil {
		t.Fatal(err)
	}
	order, err := ReadRankOrder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := PlacementFromRankOrder(order, a)
	if err != nil {
		t.Fatal(err)
	}
	for r := int32(0); r < 6; r++ {
		if back.Node(r) != pl.Node(r) {
			t.Fatalf("rank %d: node %d, want %d", r, back.Node(r), pl.Node(r))
		}
	}
}

func TestReadRankOrderFormats(t *testing.T) {
	for _, in := range []string{
		"0,1,2,3",
		"0, 1, 2, 3",
		"# comment\n0,1,\n2,3\n",
		"3 2 1 0",
	} {
		order, err := ReadRankOrder(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(order) != 4 {
			t.Fatalf("%q: %d ranks", in, len(order))
		}
	}
}

func TestReadRankOrderRejectsNonPermutation(t *testing.T) {
	for _, in := range []string{"", "0,1,1", "0,2", "-1,0", "a,b"} {
		if _, err := ReadRankOrder(strings.NewReader(in)); err == nil {
			t.Fatalf("%q accepted", in)
		}
	}
}

func TestPlacementFromRankOrderCapacity(t *testing.T) {
	a := &alloc.Allocation{Nodes: []int32{7}, ProcsPerNode: []int{2}}
	if _, err := PlacementFromRankOrder([]int32{0, 1, 2}, a); err == nil {
		t.Fatal("3 ranks on a 2-processor allocation accepted")
	}
}

func TestNodeListRoundTrip(t *testing.T) {
	a := &alloc.Allocation{Nodes: []int32{9, 1, 30}, ProcsPerNode: []int{16, 8, 16}}
	var buf bytes.Buffer
	if err := WriteNodeList(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNodeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != 3 {
		t.Fatalf("read %d nodes", len(back.Nodes))
	}
	for i := range a.Nodes {
		if back.Nodes[i] != a.Nodes[i] || back.ProcsPerNode[i] != a.ProcsPerNode[i] {
			t.Fatalf("node %d: got (%d,%d), want (%d,%d)", i,
				back.Nodes[i], back.ProcsPerNode[i], a.Nodes[i], a.ProcsPerNode[i])
		}
	}
}

func TestReadNodeListDefaultsAndErrors(t *testing.T) {
	a, err := ReadNodeList(strings.NewReader("5\n8 24\n"))
	if err != nil {
		t.Fatal(err)
	}
	if a.ProcsPerNode[0] != alloc.DefaultProcsPerNode || a.ProcsPerNode[1] != 24 {
		t.Fatalf("capacities %v", a.ProcsPerNode)
	}
	for _, in := range []string{"", "x", "1 2 3", "3\n3\n", "-4", "5 0"} {
		if _, err := ReadNodeList(strings.NewReader(in)); err == nil {
			t.Fatalf("%q accepted", in)
		}
	}
}

func TestRankOrderPreservesMetrics(t *testing.T) {
	// The placement reconstructed from the emitted file must induce
	// identical mapping metrics — the file is a faithful carrier.
	topo := torus.NewHopper3D(4, 4, 4)
	a := &alloc.Allocation{Nodes: []int32{2, 17, 40, 63}, ProcsPerNode: []int{4, 4, 4, 4}}
	groupOf := make([]int32, 16)
	for r := range groupOf {
		groupOf[r] = int32((r * 7) % 4)
	}
	pl := &metrics.Placement{GroupOf: groupOf, NodeOf: a.Nodes}

	var buf bytes.Buffer
	if err := WriteRankOrder(&buf, pl, a); err != nil {
		t.Fatal(err)
	}
	order, err := ReadRankOrder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := PlacementFromRankOrder(order, a)
	if err != nil {
		t.Fatal(err)
	}
	for r := int32(0); r < 16; r++ {
		if pl.Node(r) != back.Node(r) {
			t.Fatalf("rank %d node differs", r)
		}
	}
	_ = topo // placement equality implies metric equality on any topology
}

func TestRankOrderRoundTripProperty(t *testing.T) {
	a := testAlloc(3, 11, 4, 25)
	f := func(assign [16]uint8) bool {
		groupOf := make([]int32, 16)
		for r, g := range assign {
			groupOf[r] = int32(g) % 4
		}
		pl := &metrics.Placement{GroupOf: groupOf, NodeOf: a.Nodes}
		var buf bytes.Buffer
		if err := WriteRankOrder(&buf, pl, a); err != nil {
			// Over-capacity assignments are legitimately rejected.
			counts := map[int32]int{}
			for _, g := range groupOf {
				counts[g]++
			}
			for _, c := range counts {
				if c > 4 {
					return true
				}
			}
			return false
		}
		order, err := ReadRankOrder(&buf)
		if err != nil {
			return false
		}
		back, err := PlacementFromRankOrder(order, a)
		if err != nil {
			return false
		}
		for r := int32(0); r < 16; r++ {
			if back.Node(r) != pl.Node(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package rankfile reads and writes the artifacts a task mapping
// exchanges with a real MPI launch. A mapping library is only useful
// downstream if its result can reach the runtime: on Cray systems the
// accepted channel is a rank-order file (MPICH_RANK_REORDER_METHOD=3
// reads MPICH_RANK_ORDER: a comma-separated permutation of ranks,
// filled onto the allocated nodes block by block in SMP style), and
// the allocation itself arrives as a list of node ids captured from
// the scheduler (§II-B: "the topology information ... can be captured
// using system calls"). LibTopoMap emits the same artifacts.
package rankfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/alloc"
	"repro/internal/metrics"
)

// ranksPerLine keeps the emitted MPICH_RANK_ORDER lines readable.
const ranksPerLine = 16

// WriteRankOrder emits the rank permutation that realizes the
// placement under SMP-style (block) filling: the first
// a.ProcsPerNode[0] ranks of the file land on a.Nodes[0], the next
// block on a.Nodes[1], and so on — so the file lists, node by node in
// allocation order, the ranks the placement assigns there. Ranks
// assigned to the same node are listed in increasing order.
func WriteRankOrder(w io.Writer, pl *metrics.Placement, a *alloc.Allocation) error {
	nRanks := len(pl.NodeOf)
	if pl.GroupOf != nil {
		nRanks = len(pl.GroupOf)
	}
	// node id -> allocation position.
	pos := map[int32]int{}
	for i, m := range a.Nodes {
		pos[m] = i
	}
	byNode := make([][]int32, len(a.Nodes))
	for r := 0; r < nRanks; r++ {
		m := pl.Node(int32(r))
		i, ok := pos[m]
		if !ok {
			return fmt.Errorf("rankfile: rank %d mapped to node %d outside the allocation", r, m)
		}
		byNode[i] = append(byNode[i], int32(r))
	}
	// A rank-order file cannot realize every placement: the runtime
	// fills the nodes block by block, ProcsPerNode[i] ranks at a time,
	// so each node must be filled exactly to capacity — except for one
	// final partial node followed only by empty nodes.
	partialSeen := false
	for i, ranks := range byNode {
		switch {
		case len(ranks) > a.ProcsPerNode[i]:
			return fmt.Errorf("rankfile: node %d hosts %d ranks, capacity %d",
				a.Nodes[i], len(ranks), a.ProcsPerNode[i])
		case partialSeen && len(ranks) > 0:
			return fmt.Errorf("rankfile: node %d is non-empty after a partially filled node; "+
				"SMP block filling cannot realize this placement", a.Nodes[i])
		case len(ranks) < a.ProcsPerNode[i]:
			partialSeen = true
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# MPICH_RANK_ORDER: %d ranks on %d nodes (SMP filling)\n", nRanks, len(a.Nodes))
	n := 0
	for _, ranks := range byNode {
		for _, r := range ranks {
			if n > 0 {
				if n%ranksPerLine == 0 {
					bw.WriteString(",\n")
				} else {
					bw.WriteString(",")
				}
			}
			fmt.Fprintf(bw, "%d", r)
			n++
		}
	}
	bw.WriteString("\n")
	return bw.Flush()
}

// ReadRankOrder parses a rank-order file (comma- and/or newline-
// separated rank ids, '#' comments) and verifies it is a permutation
// of 0..n-1.
func ReadRankOrder(r io.Reader) ([]int32, error) {
	var order []int32
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, f := range strings.FieldsFunc(line, func(c rune) bool { return c == ',' || c == ' ' || c == '\t' }) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("rankfile: bad rank %q", f)
			}
			order = append(order, int32(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("rankfile: empty rank order")
	}
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || int(v) >= len(order) || seen[v] {
			return nil, fmt.Errorf("rankfile: rank order is not a permutation (rank %d)", v)
		}
		seen[v] = true
	}
	return order, nil
}

// PlacementFromRankOrder reconstructs the rank→node placement an MPI
// runtime would realize from the rank-order file on the given
// allocation: the file's ranks fill a.Nodes in order, a.ProcsPerNode
// capacities at a time. The result has one group per allocated node.
func PlacementFromRankOrder(order []int32, a *alloc.Allocation) (*metrics.Placement, error) {
	groupOf := make([]int32, len(order))
	idx := 0
	for i := range a.Nodes {
		take := a.ProcsPerNode[i]
		for j := 0; j < take && idx < len(order); j++ {
			groupOf[order[idx]] = int32(i)
			idx++
		}
	}
	if idx != len(order) {
		return nil, fmt.Errorf("rankfile: %d ranks exceed allocation capacity %d", len(order), a.TotalProcs())
	}
	return &metrics.Placement{GroupOf: groupOf, NodeOf: append([]int32(nil), a.Nodes...)}, nil
}

// WriteNodeList emits an allocation as "node procs" lines, the form a
// launcher wrapper captures from the scheduler.
func WriteNodeList(w io.Writer, a *alloc.Allocation) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# allocation: %d nodes, %d processors\n", len(a.Nodes), a.TotalProcs())
	for i, m := range a.Nodes {
		fmt.Fprintf(bw, "%d %d\n", m, a.ProcsPerNode[i])
	}
	return bw.Flush()
}

// ReadNodeList parses an allocation file: one node per line, either
// "node" (capacity defaults to 16 processors, the paper's setting) or
// "node procs". '#' starts a comment. Node order is preserved — it is
// the scheduler's allocation order the DEF mapping follows.
func ReadNodeList(r io.Reader) (*alloc.Allocation, error) {
	a := &alloc.Allocation{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("rankfile: bad node line %q", line)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil || node < 0 {
			return nil, fmt.Errorf("rankfile: bad node id %q", fields[0])
		}
		procs := alloc.DefaultProcsPerNode
		if len(fields) == 2 {
			procs, err = strconv.Atoi(fields[1])
			if err != nil || procs < 1 {
				return nil, fmt.Errorf("rankfile: bad processor count %q", fields[1])
			}
		}
		a.Nodes = append(a.Nodes, int32(node))
		a.ProcsPerNode = append(a.ProcsPerNode, procs)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(a.Nodes) == 0 {
		return nil, fmt.Errorf("rankfile: empty node list")
	}
	seen := map[int32]bool{}
	for _, m := range a.Nodes {
		if seen[m] {
			return nil, fmt.Errorf("rankfile: node %d listed twice", m)
		}
		seen[m] = true
	}
	return a, nil
}

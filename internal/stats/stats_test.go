package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-12 {
		t.Fatalf("GeoMean = %g, want 10", g)
	}
	if g := GeoMean([]float64{2, 0, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean skipping zero = %g, want 4", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("empty GeoMean should be NaN")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %g", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("Std = %g, want 2", s)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4}, 2)
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("Normalize = %v", out)
	}
	zero := Normalize([]float64{3}, 0)
	if zero[0] != 0 {
		t.Fatal("zero base should produce zeros")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", "1.00")
	tab.AddRow("b", "22.50")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: 'value' header starts at same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1.00") {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestAddRowf(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRowf([]string{"%s", "%.2f"}, "x", 3.14159)
	var sb strings.Builder
	tab.Fprint(&sb)
	if !strings.Contains(sb.String(), "3.14") {
		t.Fatal("AddRowf formatting lost")
	}
}

func TestF(t *testing.T) {
	if F(1.23456) != "1.235" || F2(1.23456) != "1.23" {
		t.Fatal("float formatting helpers wrong")
	}
}

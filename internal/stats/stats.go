// Package stats provides the aggregation and reporting helpers the
// experiment harness uses: geometric means (the paper reports
// geometric means throughout §IV), normalization, and fixed-width
// ASCII tables shaped like the paper's figures.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs (zero/negative entries are
// skipped; empty input returns NaN).
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Normalize divides each entry by base, guarding zero bases.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if base != 0 {
			out[i] = x / base
		}
	}
	return out
}

// Table renders aligned fixed-width text tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where every value is formatted with the
// corresponding verb ("%s", "%.3f", ...).
func (t *Table) AddRowf(format []string, values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf(format[i], v)
	}
	t.rows = append(t.rows, cells)
}

// Fprint writes the table.
func (t *Table) Fprint(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// F formats a float with 3 decimals (table cells).
func F(x float64) string { return fmt.Sprintf("%.3f", x) }

// F2 formats a float with 2 decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

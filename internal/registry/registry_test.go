package registry

import (
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/torus"
)

func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	want := []string{"DEF", "TMAP", "SMAP", "UG", "UWH", "UMC", "UMMC", "UTH", "TMAPG", "UML", "UMCA"}
	if len(names) < len(want) {
		t.Fatalf("only %d registered mappers: %v", len(names), names)
	}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("registration order %v, want prefix %v", names, want)
		}
	}
	for _, w := range Figure2Names() {
		if _, ok := Lookup(w); !ok {
			t.Fatalf("figure-2 mapper %s not registered", w)
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	spec := NewFunc("TEST-DUP", Caps{}, func(in Input) ([]int32, error) { return nil, nil })
	if err := Register(spec); err != nil {
		t.Fatal(err)
	}
	if err := Register(spec); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
	if err := Register(NewFunc("UWH", Caps{}, nil)); err == nil {
		t.Fatal("clobbering a built-in must be rejected")
	}
	if err := Register(NewFunc("", Caps{}, nil)); err == nil {
		t.Fatal("empty name must be rejected")
	}
}

func TestCustomMapperDispatch(t *testing.T) {
	called := false
	spec := NewFunc("TEST-IDENT", Caps{}, func(in Input) ([]int32, error) {
		called = true
		out := make([]int32, in.Coarse.N())
		copy(out, in.Alloc.Nodes)
		return out, nil
	})
	if err := Register(spec); err != nil {
		t.Fatal(err)
	}
	got, ok := Lookup("TEST-IDENT")
	if !ok {
		t.Fatal("registered mapper not found")
	}
	topo := torus.NewHopper3D(4, 4, 4)
	a, err := alloc.Generate(topo, 4, alloc.Config{Mode: alloc.Contiguous, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(4, []int32{0, 1}, []int32{1, 0}, []int64{5, 5}, nil)
	nodeOf, err := got.Map(Input{Coarse: g, Topo: topo, Alloc: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !called || len(nodeOf) != 4 {
		t.Fatalf("dispatch failed: called=%v len=%d", called, len(nodeOf))
	}
}

func TestMapperErrorsPropagate(t *testing.T) {
	wantErr := fmt.Errorf("boom")
	if err := Register(NewFunc("TEST-ERR", Caps{}, func(Input) ([]int32, error) {
		return nil, wantErr
	})); err != nil {
		t.Fatal(err)
	}
	spec, _ := Lookup("TEST-ERR")
	if _, err := spec.Map(Input{}); err != wantErr {
		t.Fatalf("error not propagated: %v", err)
	}
}

// TestListServesCapabilities pins the /v1/mappers source of truth:
// every registered mapper appears in order with the capability flags
// its spec declares.
func TestListServesCapabilities(t *testing.T) {
	infos := List()
	names := Names()
	if len(infos) != len(names) {
		t.Fatalf("List has %d entries, Names has %d", len(infos), len(names))
	}
	for i, in := range infos {
		if in.Name != names[i] {
			t.Fatalf("List order diverged at %d: %s vs %s", i, in.Name, names[i])
		}
		spec, ok := Lookup(in.Name)
		if !ok {
			t.Fatalf("%s listed but not lookupable", in.Name)
		}
		if in.Caps != spec.Caps() {
			t.Fatalf("%s: listed caps %+v != spec caps %+v", in.Name, in.Caps, spec.Caps())
		}
	}
	byName := map[string]Caps{}
	for _, in := range infos {
		byName[in.Name] = in.Caps
	}
	if !byName["DEF"].BlockGrouping || !byName["UMMC"].NeedsMessageGraph || !byName["UMCA"].NeedsMultipath {
		t.Fatalf("built-in capability flags wrong: %+v", byName)
	}
}

package registry

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/torus"
)

// The built-in mappers: the seven of the paper's figures (DEF,
// the TMAP/SMAP baselines, the four UMPA variants), then the
// extension variants the paper sketches but does not plot, the
// hetero-aware greedy construction HET, and the geometric pair
// GEOM/SFCM (coordinate-requiring, declared via Caps). All are
// topology-generic — the WH family runs on anything implementing
// torus.Topology (§III: the algorithms "can be applied to various
// topologies"), the baselines degrade their geometric node split to
// an order split when the topology has no coordinate grid, and UMCA
// requires multipath route enumeration, declared via Caps.
func init() {
	simple := func(name string, fn func(g *graph.Graph, topo torus.Topology, allocNodes []int32, ex *core.Exec) []int32) MapperSpec {
		return NewFunc(name, Caps{}, func(in Input) ([]int32, error) {
			return fn(in.Coarse, in.Topo, in.Alloc.Nodes, in.Exec), nil
		})
	}

	MustRegister(NewFunc("DEF", Caps{BlockGrouping: true}, func(in Input) ([]int32, error) {
		return baseline.DEF(in.Coarse.N(), in.Alloc), nil
	}))
	MustRegister(NewFunc("TMAP", Caps{}, func(in Input) ([]int32, error) {
		return baseline.TMAP(in.Coarse, in.Topo, in.Alloc, in.Seed), nil
	}))
	MustRegister(NewFunc("SMAP", Caps{}, func(in Input) ([]int32, error) {
		return baseline.SMAP(in.Coarse, in.Topo, in.Alloc, in.Seed), nil
	}))
	MustRegister(simple("UG", core.MapUGEx))
	MustRegister(simple("UWH", core.MapUWHEx))
	MustRegister(simple("UMC", core.MapUMCEx))
	MustRegister(NewFunc("UMMC", Caps{NeedsMessageGraph: true}, func(in Input) ([]int32, error) {
		return core.MapUMMCEx(in.Coarse, in.Msg, in.Topo, in.Alloc.Nodes, in.Exec), nil
	}))
	MustRegister(simple("UTH", core.MapUTHEx))
	MustRegister(NewFunc("TMAPG", Caps{}, func(in Input) ([]int32, error) {
		return baseline.TMAPGreedy(in.Coarse, in.Topo, in.Alloc, in.Seed), nil
	}))
	MustRegister(NewFunc("UML", Caps{}, func(in Input) ([]int32, error) {
		return core.MapUML(in.Coarse, in.Topo, in.Alloc.Nodes, core.MultilevelOptions{Exec: in.Exec}), nil
	}))
	MustRegister(NewFunc("UMCA", Caps{NeedsMultipath: true}, func(in Input) ([]int32, error) {
		mp, ok := torus.MultipathOf(in.Topo)
		if !ok {
			return nil, fmt.Errorf("registry: mapper UMCA needs a multipath topology")
		}
		return core.MapUMCAEx(in.Coarse, withMultipath{in.Topo, mp}, in.Alloc.Nodes, in.Exec), nil
	}))
	MustRegister(NewFunc("HET", Caps{}, func(in Input) ([]int32, error) {
		return hetero.Map(in.Coarse, in.Topo, in.Alloc), nil
	}))
	MustRegister(NewFunc("GEOM", Caps{NeedsCoords: true}, func(in Input) ([]int32, error) {
		opt := geom.Options{Seed: in.Seed}
		if in.Exec != nil {
			opt.Par, opt.Arena, opt.Trace = in.Exec.Par, in.Exec.Arena, in.Exec.Trace
		}
		return geom.MapGEOM(in.Coords, in.Dim, in.Coarse.VW, in.Topo, in.Alloc.Nodes, opt)
	}))
	MustRegister(NewFunc("SFCM", Caps{NeedsCoords: true}, func(in Input) ([]int32, error) {
		return geom.MapSFCM(in.Coords, in.Dim, in.Topo, in.Alloc.Nodes)
	}))
}

// withMultipath runs the adaptive refinement on the engine's cached
// view for the Topology methods while borrowing the base topology's
// minimal-route enumeration (views delegate those anyway; this also
// covers a view that hides them behind Unwrap).
type withMultipath struct {
	torus.Topology
	mp torus.MultipathTopology
}

func (w withMultipath) ForEachMinimalRoute(a, b int, fn func(route []int32)) int {
	return w.mp.ForEachMinimalRoute(a, b, fn)
}
func (w withMultipath) NumMinimalRoutes(a, b int) int { return w.mp.NumMinimalRoutes(a, b) }
func (w withMultipath) RouteScale() int64             { return w.mp.RouteScale() }

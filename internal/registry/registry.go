// Package registry is the pluggable mapper registry behind the
// public Engine API: every mapping algorithm — the paper's seven
// Figure-2 mappers, the four extension variants, and any mapper a
// downstream user registers — is a MapperSpec dispatched by name.
// The registry replaces the hard-coded switch the legacy RunMapping
// facade used, so adding a mapper no longer touches the engine and
// the CLI/flag surfaces derive their mapper lists instead of
// duplicating them.
package registry

import (
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/torus"
)

// Input is everything a mapper may consume for one request. Topo is
// the engine's (possibly cached) topology view; capability helpers in
// package torus (CoordsOf, MultipathOf) discover geometry and
// multipath support through it.
type Input struct {
	// Coarse is the symmetric volume-weighted supertask graph, one
	// vertex per allocated node.
	Coarse *graph.Graph
	// Msg is the message-count-weighted view of the same supertasks;
	// populated only when the spec declares NeedsMessageGraph.
	Msg *graph.Graph
	// Topo is the network the mapping targets.
	Topo torus.Topology
	// Alloc is the reserved node set, in scheduler order.
	Alloc *alloc.Allocation
	// Seed drives any randomized choice the mapper makes.
	Seed int64
	// Coords are per-group geometric centroids (group-major flattened,
	// Dim values per group, load-weighted means of the member tasks'
	// coordinates); populated only when the spec declares NeedsCoords.
	Coords []float64
	// Dim is the coordinate dimensionality of Coords (2 or 3; 0 when
	// absent).
	Dim int
	// Exec is the solve's execution context: the bounded worker pool
	// for intra-request parallelism, the scratch arena, and the
	// cooperative cancellation signal. May be nil (serial, fresh
	// allocations, never cancelled); mappers that ignore it stay
	// correct, just serial.
	Exec *core.Exec
}

// Caps are a mapper's declared capability requirements; the engine
// prepares inputs and grouping accordingly.
type Caps struct {
	// NeedsMessageGraph asks the engine to aggregate the
	// message-count coarse graph into Input.Msg (UMMC-style mappers).
	NeedsMessageGraph bool `json:"needs_message_graph"`
	// NeedsMultipath requires the topology to enumerate minimal
	// routes (torus.MultipathTopology); the engine rejects requests
	// on topologies that cannot.
	NeedsMultipath bool `json:"needs_multipath"`
	// BlockGrouping groups tasks into consecutive-rank blocks (the
	// SMP-style DEF placement) instead of partitioning the task
	// graph, and skips the heterogeneous capacity repair.
	BlockGrouping bool `json:"block_grouping"`
	// NeedsCoords requires per-task geometric coordinates on the task
	// graph (geometric/SFC mappers); the engine rejects requests whose
	// graph carries none, and coordinate-free portfolios filter these
	// mappers out.
	NeedsCoords bool `json:"needs_coords"`
}

// MapperSpec is one registered mapping algorithm.
type MapperSpec interface {
	// Name is the registry key (canonically upper-case, e.g. "UWH").
	Name() string
	// Caps declares what the engine must prepare.
	Caps() Caps
	// Map places the supertasks of in.Coarse one-to-one onto
	// allocated nodes and returns the supertask→node vector.
	Map(in Input) ([]int32, error)
}

// funcSpec adapts a plain function to MapperSpec.
type funcSpec struct {
	name string
	caps Caps
	fn   func(Input) ([]int32, error)
}

func (f *funcSpec) Name() string                  { return f.name }
func (f *funcSpec) Caps() Caps                    { return f.caps }
func (f *funcSpec) Map(in Input) ([]int32, error) { return f.fn(in) }

// NewFunc wraps a function as a MapperSpec.
func NewFunc(name string, caps Caps, fn func(Input) ([]int32, error)) MapperSpec {
	return &funcSpec{name: name, caps: caps, fn: fn}
}

var (
	mu    sync.RWMutex
	specs = map[string]MapperSpec{}
	order []string
)

// Register adds a mapper to the registry. Empty names and duplicate
// names are rejected — a registered mapper can never be silently
// replaced.
func Register(s MapperSpec) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("registry: mapper name must not be empty")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := specs[name]; dup {
		return fmt.Errorf("registry: mapper %q already registered", name)
	}
	specs[name] = s
	order = append(order, name)
	return nil
}

// MustRegister is Register for init-time built-ins.
func MustRegister(s MapperSpec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the spec registered under name.
func Lookup(name string) (MapperSpec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := specs[name]
	return s, ok
}

// Names returns every registered mapper name in registration order
// (built-ins first, in figure order).
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), order...)
}

// Info describes one registered mapper for capability listings (the
// mapd /v1/mappers payload, CLI usage strings).
type Info struct {
	Name string `json:"name"`
	Caps Caps   `json:"caps"`
}

// List returns the name and capability flags of every registered
// mapper in registration order (built-ins first, in figure order).
func List() []Info {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Info, 0, len(order))
	for _, name := range order {
		out = append(out, Info{Name: name, Caps: specs[name].Caps()})
	}
	return out
}

// Figure2Names are the seven mappers of the paper's Figure 2, in
// figure order.
func Figure2Names() []string {
	return []string{"DEF", "TMAP", "SMAP", "UG", "UWH", "UMC", "UMMC"}
}

package dragonfly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func mustNew(t testing.TB, h int) *Dragonfly {
	t.Helper()
	d, err := New(h, 10e9, 5e9, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1e9, 1e9, 1e9); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := New(2, 0, 1e9, 1e9); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestCanonicalCounts(t *testing.T) {
	for _, h := range []int{1, 2, 3} {
		d := mustNew(t, h)
		a := 2 * h
		g := a*h + 1
		if d.Groups() != g || d.RoutersPerGroup() != a {
			t.Fatalf("h=%d: groups %d routers %d, want %d %d", h, d.Groups(), d.RoutersPerGroup(), g, a)
		}
		if want := g * a * h; d.Hosts() != want {
			t.Fatalf("h=%d: hosts %d, want %d", h, d.Hosts(), want)
		}
		// Directed links: hosts + local mesh + one global per pair.
		want := 2 * (d.Hosts() + g*a*(a-1)/2 + g*(g-1)/2)
		if d.Links() != want {
			t.Fatalf("h=%d: links %d, want %d", h, d.Links(), want)
		}
	}
}

func TestRouterDegrees(t *testing.T) {
	d := mustNew(t, 2) // a=4, g=9, p=2
	for v := 0; v < d.Nodes(); v++ {
		deg := len(d.NeighborNodes(v, nil))
		if v < d.Hosts() {
			if deg != 1 {
				t.Fatalf("host %d degree %d", v, deg)
			}
			continue
		}
		// p hosts + (a-1) local + h global.
		if want := d.p + d.a - 1 + d.h; deg != want {
			t.Fatalf("router %d degree %d, want %d", v, deg, want)
		}
	}
}

func TestGlobalLinksConsistent(t *testing.T) {
	d := mustNew(t, 2)
	// Every group pair has exactly one global link, endpoints agree
	// from both sides, and every router carries exactly h globals.
	globalCount := make(map[int]int)
	for gi := 0; gi < d.g; gi++ {
		for gj := 0; gj < d.g; gj++ {
			if gi == gj {
				continue
			}
			ri, rj := d.globalEndpoints(gi, gj)
			ri2, rj2 := d.globalEndpoints(gj, gi)
			if ri != rj2 || rj != ri2 {
				t.Fatalf("asymmetric global link between %d and %d", gi, gj)
			}
			if d.routerGroup(ri) != gi || d.routerGroup(rj) != gj {
				t.Fatalf("global link endpoints in wrong groups")
			}
			if gi < gj {
				globalCount[ri]++
				globalCount[rj]++
			}
		}
	}
	for r, c := range globalCount {
		if c != d.h {
			t.Fatalf("router %d has %d global links, want %d", r, c, d.h)
		}
	}
}

func validateRoute(t *testing.T, d *Dragonfly, a, b int, route []int32) {
	t.Helper()
	cur := a
	for _, l := range route {
		from, to := d.LinkInfo(int(l))
		if from != cur {
			t.Fatalf("route %d->%d: link %d leaves %d, expected %d", a, b, l, from, cur)
		}
		cur = to
	}
	if cur != b {
		t.Fatalf("route %d->%d ends at %d", a, b, cur)
	}
}

func TestRouteMatchesHopDist(t *testing.T) {
	d := mustNew(t, 2)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		a, b := rng.Intn(d.Hosts()), rng.Intn(d.Hosts())
		route := d.Route(a, b, nil)
		validateRoute(t, d, a, b, route)
		if len(route) != d.HopDist(a, b) {
			t.Fatalf("route %d->%d has %d links, HopDist %d", a, b, len(route), d.HopDist(a, b))
		}
	}
}

// bfsDist is the raw graph distance, for the routing-distance bound.
func bfsDist(d *Dragonfly, a, b int) int {
	if a == b {
		return 0
	}
	dist := make([]int, d.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range d.NeighborNodes(v, nil) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				if int(u) == b {
					return dist[u]
				}
				queue = append(queue, int(u))
			}
		}
	}
	return -1
}

func TestHopDistIsRoutingDistance(t *testing.T) {
	// HopDist equals the hierarchical routing distance: at least the
	// graph distance, at most one hop more (the two-global shortcut
	// minimal routing never takes), and never above the diameter.
	d := mustNew(t, 2)
	rng := rand.New(rand.NewSource(3))
	shortcuts := 0
	for trial := 0; trial < 150; trial++ {
		a, b := rng.Intn(d.Nodes()), rng.Intn(d.Nodes())
		hd := d.HopDist(a, b)
		gd := bfsDist(d, a, b)
		if hd < gd || hd > gd+1 {
			t.Fatalf("HopDist(%d,%d)=%d outside [graph %d, graph+1]", a, b, hd, gd)
		}
		if hd > d.Diameter() {
			t.Fatalf("HopDist %d exceeds diameter %d", hd, d.Diameter())
		}
		if hd == gd+1 {
			shortcuts++
		}
	}
	t.Logf("%d of 150 sampled pairs had a shortcut path", shortcuts)
}

func TestHopDistCases(t *testing.T) {
	d := mustNew(t, 2) // p=2: hosts 0,1 under router 0
	if got := d.HopDist(0, 0); got != 0 {
		t.Fatalf("self distance %d", got)
	}
	if got := d.HopDist(0, 1); got != 2 {
		t.Fatalf("same-router hosts: %d, want 2", got)
	}
	// Hosts under different routers of group 0: up, one local, down.
	if got := d.HopDist(0, d.p); got != 3 {
		t.Fatalf("same-group hosts: %d, want 3", got)
	}
	// Inter-group distance is between 3 (both endpoints on the
	// global-link routers) and 5.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		a := rng.Intn(d.Hosts())
		b := rng.Intn(d.Hosts())
		ga := a / d.p / d.a
		gb := b / d.p / d.a
		if ga == gb {
			continue
		}
		if got := d.HopDist(a, b); got < 3 || got > 5 {
			t.Fatalf("inter-group host distance %d outside [3,5]", got)
		}
	}
}

func TestRoutePanicsOnRouterEndpoint(t *testing.T) {
	d := mustNew(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for router endpoint")
		}
	}()
	d.Route(0, d.Hosts(), nil)
}

func TestUniqueMinimalRoute(t *testing.T) {
	d := mustNew(t, 2)
	if d.NumMinimalRoutes(0, 0) != 0 {
		t.Fatal("self pair has routes")
	}
	if d.NumMinimalRoutes(0, 5) != 1 || d.RouteScale() != 1 {
		t.Fatal("canonical dragonfly must have unique minimal routes")
	}
	calls := 0
	d.ForEachMinimalRoute(0, 5, func(route []int32) {
		calls++
		validateRoute(t, d, 0, 5, route)
	})
	if calls != 1 {
		t.Fatalf("%d routes enumerated", calls)
	}
}

func TestLinkBandwidthLevels(t *testing.T) {
	d := mustNew(t, 2)
	// Find an inter-group route touching all three levels.
	a, b := 0, d.Hosts()-1
	route := d.Route(a, b, nil)
	sawHost, sawLocal, sawGlobal := false, false, false
	for _, l := range route {
		switch d.LinkBW(int(l)) {
		case 10e9:
			sawHost = true
		case 5e9:
			sawLocal = true
		case 4e9:
			sawGlobal = true
		}
	}
	if !sawHost || !sawGlobal {
		t.Fatalf("route misses host or global level: %v", route)
	}
	_ = sawLocal // local hops may be absent when endpoints own the link
}

func TestMappingPipelineOnDragonfly(t *testing.T) {
	d := mustNew(t, 2) // 72 hosts
	a, err := SparseHosts(d, 24, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(24, 72, 60, 7)
	block := append([]int32(nil), a.Nodes[:24]...)
	refined := append([]int32(nil), block...)
	core.RefineWH(g, d, a.Nodes, refined, core.RefineOptions{})
	whBlock := metrics.WeightedHops(g, d, block)
	whRefined := metrics.WeightedHops(g, d, refined)
	if whRefined > whBlock {
		t.Fatalf("Algorithm 2 regressed WH on dragonfly: %d -> %d", whBlock, whRefined)
	}
	uwh := core.MapUWH(g, d, a.Nodes)
	pl := &metrics.Placement{NodeOf: uwh}
	m := metrics.Compute(g, d, pl)
	if m.WH <= 0 || m.MC <= 0 || m.UsedLinks == 0 {
		t.Fatalf("degenerate metrics on dragonfly: %+v", m)
	}
	// Congestion refinement under the (unique-route) static model.
	mc := append([]int32(nil), uwh...)
	core.RefineCongestion(g, d, a.Nodes, mc, core.VolumeCongestion, core.RefineOptions{})
	after := metrics.Compute(g, d, &metrics.Placement{NodeOf: mc})
	if after.MC > m.MC*(1+1e-9) {
		t.Fatalf("congestion refinement raised MC: %g -> %g", m.MC, after.MC)
	}
}

func TestSparseHostsValid(t *testing.T) {
	d := mustNew(t, 2)
	a, err := SparseHosts(d, 30, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProcs() != 240 {
		t.Fatalf("procs %d", a.TotalProcs())
	}
	seen := map[int32]bool{}
	for _, hst := range a.Nodes {
		if hst < 0 || int(hst) >= d.Hosts() || seen[hst] {
			t.Fatalf("bad host %d", hst)
		}
		seen[hst] = true
	}
	if _, err := SparseHosts(d, d.Hosts()+1, 8, 1); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestHopDistSymmetryProperty(t *testing.T) {
	d := mustNew(t, 2)
	f := func(ai, bi uint16) bool {
		a, b := int(ai)%d.Nodes(), int(bi)%d.Nodes()
		hd := d.HopDist(a, b)
		return hd == d.HopDist(b, a) && (hd == 0) == (a == b) && hd <= d.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

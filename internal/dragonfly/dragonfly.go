// Package dragonfly models a canonical dragonfly network (the
// Cray Aries / Slingshot class of interconnects) behind the same
// torus.Topology interface the mapping algorithms consume — the third
// topology family exercising §III's claim that the WH-minimizing
// algorithms "can be applied to various topologies".
//
// The canonical maximally-sized dragonfly(p, a, h) has groups of
// a = 2h routers, p = h hosts per router, and g = a·h + 1 groups, so
// every pair of groups is joined by exactly one global link and every
// router carries h global links. Routers within a group form a full
// mesh of local links. Minimal routing is then unique: up from the
// host, at most one local hop to the router owning the right global
// link, the global hop, at most one local hop to the destination
// router, down to the host — at most five hops host to host.
//
// Vertex ids place the hosts first (0..H-1) so host ids double as
// placement targets; routers follow. The unique minimal route makes
// the adaptive (multipath) machinery degenerate to static routing,
// which the package implements and tests explicitly.
package dragonfly

import (
	"fmt"
	"strconv"

	"repro/internal/alloc"
	"repro/internal/torus"
)

// Dragonfly is a canonical dragonfly network. It implements
// torus.Topology and torus.MultipathTopology (with unique minimal
// routes).
type Dragonfly struct {
	p, a, h int // hosts/router, routers/group, global links/router
	g       int // groups = a*h + 1
	hosts   int // g * a * p

	// CSR adjacency over hosts + routers; the index of a neighbour
	// within its row is the directed link id offset.
	xadj []int32
	adj  []int32
	bw   []float64

	bwHost, bwLocal, bwGlobal float64 // construction parameters
}

// New builds a canonical dragonfly with h global links per router
// (so a = 2h routers per group, p = h hosts per router, and
// g = 2h² + 1 groups). Bandwidths are per directed link for the
// host-router, local (intra-group) and global (inter-group) levels.
func New(h int, bwHost, bwLocal, bwGlobal float64) (*Dragonfly, error) {
	if h < 1 {
		return nil, fmt.Errorf("dragonfly: need h >= 1 global links per router, got %d", h)
	}
	if bwHost <= 0 || bwLocal <= 0 || bwGlobal <= 0 {
		return nil, fmt.Errorf("dragonfly: bandwidths must be positive")
	}
	d := &Dragonfly{p: h, a: 2 * h, h: h, bwHost: bwHost, bwLocal: bwLocal, bwGlobal: bwGlobal}
	d.g = d.a*d.h + 1
	d.hosts = d.g * d.a * d.p
	d.build(bwHost, bwLocal, bwGlobal)
	return d, nil
}

// TopologyFingerprint canonically describes the dragonfly: global
// links per router and the three level bandwidths
// (torus.Fingerprinter).
func (d *Dragonfly) TopologyFingerprint() string {
	return "dragonfly:h=" + strconv.Itoa(d.h) +
		";bw=" + strconv.FormatFloat(d.bwHost, 'g', -1, 64) +
		"," + strconv.FormatFloat(d.bwLocal, 'g', -1, 64) +
		"," + strconv.FormatFloat(d.bwGlobal, 'g', -1, 64)
}

// Groups returns the number of groups g = 2h²+1.
func (d *Dragonfly) Groups() int { return d.g }

// RoutersPerGroup returns a = 2h.
func (d *Dragonfly) RoutersPerGroup() int { return d.a }

// Hosts returns the number of compute nodes; they are vertices
// 0..Hosts()-1.
func (d *Dragonfly) Hosts() int { return d.hosts }

// Nodes returns hosts plus routers.
func (d *Dragonfly) Nodes() int { return d.hosts + d.g*d.a }

// routerID returns the vertex id of router k of group gi.
func (d *Dragonfly) routerID(gi, k int) int { return d.hosts + gi*d.a + k }

// hostRouter returns the router vertex owning host v.
func (d *Dragonfly) hostRouter(v int) int { return d.hosts + v/d.p }

// routerGroup returns the group of a router vertex.
func (d *Dragonfly) routerGroup(r int) int { return (r - d.hosts) / d.a }

// globalEndpoints returns the routers joined by the unique global
// link between groups gi and gj (gi != gj): group gi exits toward gj
// through router (dd-1)/h where dd = (gj-gi) mod g, and symmetric on
// the far side.
func (d *Dragonfly) globalEndpoints(gi, gj int) (ri, rj int) {
	dd := ((gj-gi)%d.g + d.g) % d.g
	ri = d.routerID(gi, (dd-1)/d.h)
	rj = d.routerID(gj, (d.a*d.h-dd)/d.h)
	return ri, rj
}

func (d *Dragonfly) build(bwHost, bwLocal, bwGlobal float64) {
	n := d.Nodes()
	type link struct {
		u, v int
		bw   float64
	}
	var links []link
	// Host links.
	for v := 0; v < d.hosts; v++ {
		links = append(links, link{v, d.hostRouter(v), bwHost})
	}
	// Local full mesh within each group.
	for gi := 0; gi < d.g; gi++ {
		for k := 0; k < d.a; k++ {
			for l := k + 1; l < d.a; l++ {
				links = append(links, link{d.routerID(gi, k), d.routerID(gi, l), bwLocal})
			}
		}
	}
	// One global link per group pair.
	for gi := 0; gi < d.g; gi++ {
		for gj := gi + 1; gj < d.g; gj++ {
			ri, rj := d.globalEndpoints(gi, gj)
			links = append(links, link{ri, rj, bwGlobal})
		}
	}
	deg := make([]int32, n)
	for _, l := range links {
		deg[l.u]++
		deg[l.v]++
	}
	d.xadj = make([]int32, n+1)
	for v := 0; v < n; v++ {
		d.xadj[v+1] = d.xadj[v] + deg[v]
	}
	d.adj = make([]int32, d.xadj[n])
	d.bw = make([]float64, d.xadj[n])
	fill := make([]int32, n)
	put := func(u, v int, bw float64) {
		i := d.xadj[u] + fill[u]
		d.adj[i] = int32(v)
		d.bw[i] = bw
		fill[u]++
	}
	for _, l := range links {
		put(l.u, l.v, l.bw)
		put(l.v, l.u, l.bw)
	}
}

// Diameter is 5: host, local hop, global hop, local hop, host.
func (d *Dragonfly) Diameter() int { return 5 }

// Links returns the number of directed links.
func (d *Dragonfly) Links() int { return len(d.adj) }

// LinkBW returns a directed link's bandwidth.
func (d *Dragonfly) LinkBW(link int) float64 { return d.bw[link] }

// LinkInfo decodes a directed link id into its endpoints.
func (d *Dragonfly) LinkInfo(link int) (from, to int) {
	lo, hi := 0, len(d.xadj)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(d.xadj[mid]) <= link {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, int(d.adj[link])
}

// NeighborNodes appends the vertices adjacent to v.
func (d *Dragonfly) NeighborNodes(v int, dst []int32) []int32 {
	return append(dst, d.adj[d.xadj[v]:d.xadj[v+1]]...)
}

// linkID returns the directed link id u→v; u and v must be adjacent.
func (d *Dragonfly) linkID(u, v int) int32 {
	for i := d.xadj[u]; i < d.xadj[u+1]; i++ {
		if d.adj[i] == int32(v) {
			return i
		}
	}
	panic(fmt.Sprintf("dragonfly: vertices %d and %d are not adjacent", u, v))
}

// routerPath returns the router-level vertices of the unique minimal
// route between two distinct routers (inclusive of both endpoints).
func (d *Dragonfly) routerPath(rs, rt int) []int {
	gs, gt := d.routerGroup(rs), d.routerGroup(rt)
	if gs == gt {
		if rs == rt {
			return []int{rs}
		}
		return []int{rs, rt} // local full mesh: one hop
	}
	exit, entry := d.globalEndpoints(gs, gt)
	path := []int{rs}
	if exit != rs {
		path = append(path, exit)
	}
	path = append(path, entry)
	if entry != rt {
		path = append(path, rt)
	}
	return path
}

// HopDist returns the minimal-routing distance between two vertices
// in O(1): the length of the hierarchical local-global-local route
// that dragonfly minimal routing uses. For a few vertex pairs the raw
// graph distance is one hop shorter (a "shortcut" through two global
// links of an intermediate group), but the network never routes
// minimally that way, and the paper's dilation is defined on the
// routed path — so HopDist deliberately matches Route, with
// len(Route(a,b)) == HopDist(a,b) always.
func (d *Dragonfly) HopDist(a, b int) int {
	if a == b {
		return 0
	}
	ra, down := a, 0
	if a < d.hosts {
		ra = d.hostRouter(a)
		down++
	}
	rb := b
	if b < d.hosts {
		rb = d.hostRouter(b)
		down++
	}
	if ra == rb {
		return down // same router (down counts the host links)
	}
	return down + len(d.routerPath(ra, rb)) - 1
}

// Route appends the unique minimal route between two hosts: up to the
// source router, at most one local hop to the exit router, the global
// link, at most one local hop, down to the destination host. Both
// endpoints must be hosts.
func (d *Dragonfly) Route(a, b int, dst []int32) []int32 {
	if a == b {
		return dst
	}
	if a >= d.hosts || b >= d.hosts {
		panic("dragonfly: Route endpoints must be hosts")
	}
	ra, rb := d.hostRouter(a), d.hostRouter(b)
	dst = append(dst, d.linkID(a, ra))
	if ra != rb {
		path := d.routerPath(ra, rb)
		for i := 1; i < len(path); i++ {
			dst = append(dst, d.linkID(path[i-1], path[i]))
		}
	}
	return append(dst, d.linkID(rb, b))
}

// NumMinimalRoutes returns 1 for distinct hosts: canonical dragonfly
// minimal routing is unique (one global link per group pair, full
// local mesh).
func (d *Dragonfly) NumMinimalRoutes(a, b int) int {
	if a == b {
		return 0
	}
	return 1
}

// ForEachMinimalRoute enumerates the single minimal route.
func (d *Dragonfly) ForEachMinimalRoute(a, b int, fn func(route []int32)) int {
	if a == b {
		return 0
	}
	fn(d.Route(a, b, nil))
	return 1
}

// RouteScale returns 1: all route counts are 1.
func (d *Dragonfly) RouteScale() int64 { return 1 }

// SparseHosts reserves want hosts on a busy machine in host-id
// (rack-locality) order, non-contiguous but locality biased, with
// procsPerHost processors each.
func SparseHosts(d *Dragonfly, want, procsPerHost int, seed int64) (*alloc.Allocation, error) {
	if procsPerHost <= 0 {
		procsPerHost = alloc.DefaultProcsPerNode
	}
	nodes, err := alloc.SparseIDs(d.Hosts(), want, seed, 0.5)
	if err != nil {
		return nil, fmt.Errorf("dragonfly: %w", err)
	}
	procs := make([]int, want)
	for i := range procs {
		procs[i] = procsPerHost
	}
	return &alloc.Allocation{Nodes: nodes, ProcsPerNode: procs}, nil
}

var (
	_ torus.Topology          = (*Dragonfly)(nil)
	_ torus.MultipathTopology = (*Dragonfly)(nil)
)

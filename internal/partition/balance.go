package partition

import (
	"fmt"

	"repro/internal/graph"
)

// FixToCapacities enforces hard part capacities on an existing k-way
// partition by moving vertices out of overfull parts, choosing moves
// that damage the edge cut least (the paper's "fix the balance with a
// small sacrifice on the edge-cut metric via a single FM iteration",
// §III-A). Vertices move to the underfull part they are most
// connected to (or the emptiest one when they have no underfull
// neighbour part). It returns an error only when the total weight
// exceeds the total capacity.
func FixToCapacities(g *graph.Graph, part []int32, capacities []int64) error {
	k := len(capacities)
	w := PartWeights(g, part, k)
	var totalW, totalC int64
	for p := 0; p < k; p++ {
		totalW += w[p]
		totalC += capacities[p]
	}
	if totalW > totalC {
		return fmt.Errorf("partition: total weight %d exceeds total capacity %d", totalW, totalC)
	}
	conn := make([]int64, k) // scratch: connectivity of v to each part
	touched := make([]int32, 0, 16)
	// Per-part vertex lists so each move scans only one part.
	verts := make([][]int32, k)
	for v := 0; v < g.N(); v++ {
		p := part[v]
		verts[p] = append(verts[p], int32(v))
	}
	for p := 0; p < k; p++ {
		for w[p] > capacities[p] {
			// Choose the vertex in p whose move is cheapest:
			// maximize (connectivity to destination - connectivity to p).
			var bestV, bestDest int32 = -1, -1
			var bestScore int64
			for _, v32 := range verts[p] {
				v := int(v32)
				if part[v] != int32(p) {
					continue // already moved away
				}
				vw := g.VertexWeight(v)
				touched = touched[:0]
				var connP int64
				for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
					q := part[g.Adj[i]]
					ew := g.EdgeWeight(int(i))
					if q == int32(p) {
						connP += ew
						continue
					}
					if conn[q] == 0 {
						touched = append(touched, q)
					}
					conn[q] += ew
				}
				// Best underfull destination among neighbour parts.
				var dest int32 = -1
				var destConn int64 = -1
				for _, q := range touched {
					if w[q]+vw <= capacities[q] && conn[q] > destConn {
						dest, destConn = q, conn[q]
					}
					conn[q] = 0
				}
				if dest < 0 {
					// Fall back to the globally emptiest part with room.
					var slack int64 = -1
					for q := 0; q < k; q++ {
						if int32(q) == int32(p) || w[q]+vw > capacities[q] {
							continue
						}
						if s := capacities[q] - w[q]; s > slack {
							slack, dest = s, int32(q)
						}
					}
					destConn = 0
				}
				if dest < 0 {
					continue
				}
				score := destConn - connP
				if bestV < 0 || score > bestScore {
					bestV, bestDest, bestScore = int32(v), dest, score
				}
			}
			if bestV < 0 {
				return fmt.Errorf("partition: cannot rebalance part %d (weight %d > capacity %d)", p, w[p], capacities[p])
			}
			vw := g.VertexWeight(int(bestV))
			part[bestV] = bestDest
			verts[bestDest] = append(verts[bestDest], bestV)
			w[p] -= vw
			w[bestDest] += vw
		}
	}
	return nil
}

// RefineKWayPass runs one greedy k-way refinement pass: every boundary
// vertex may move to the neighbouring part it is most connected to if
// that strictly reduces the cut and respects capacities. Returns the
// total gain achieved. The paper's mapping pipeline uses this to
// polish the task-to-node grouping.
func RefineKWayPass(g *graph.Graph, part []int32, capacities []int64) int64 {
	k := len(capacities)
	w := PartWeights(g, part, k)
	conn := make([]int64, k)
	touched := make([]int32, 0, 16)
	var total int64
	for v := 0; v < g.N(); v++ {
		p := part[v]
		touched = touched[:0]
		var connP int64
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			q := part[g.Adj[i]]
			ew := g.EdgeWeight(int(i))
			if q == p {
				connP += ew
				continue
			}
			if conn[q] == 0 {
				touched = append(touched, q)
			}
			conn[q] += ew
		}
		var dest int32 = -1
		var destConn int64
		vw := g.VertexWeight(v)
		for _, q := range touched {
			if conn[q] > connP && conn[q] > destConn && w[q]+vw <= capacities[q] {
				dest, destConn = q, conn[q]
			}
			conn[q] = 0
		}
		if dest >= 0 {
			part[v] = dest
			w[p] -= vw
			w[dest] += vw
			total += destConn - connP
		}
	}
	return total
}

package partition

import (
	"math/rand"

	"repro/internal/arena"
	"repro/internal/ds"
	"repro/internal/graph"
)

// matchVertices computes a matching of g according to the policy and
// returns the coarse vertex id of every fine vertex plus the number
// of coarse vertices. Unmatched vertices map to singleton coarse
// vertices.
func matchVertices(g *graph.Graph, policy Matching, rng *rand.Rand) ([]int32, int) {
	n := g.N()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		switch policy {
		case HeavyEdge:
			var bestW int64 = -1
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				u := g.Adj[i]
				if u == v || match[u] >= 0 {
					continue
				}
				if w := g.EdgeWeight(int(i)); w > bestW {
					bestW, best = w, u
				}
			}
		case RandomEdge:
			cnt := 0
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				u := g.Adj[i]
				if u == v || match[u] >= 0 {
					continue
				}
				cnt++
				if rng.Intn(cnt) == 0 {
					best = u
				}
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	// Assign coarse ids.
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	nc := int32(0)
	for v := 0; v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = nc
		if m := match[v]; m >= 0 && int(m) != v {
			cmap[m] = nc
		}
		nc++
	}
	return cmap, int(nc)
}

// contract builds the coarse graph for a coarse map: vertex weights
// are summed, parallel edges merged, intra-cluster edges dropped. The
// edge-staging scratch is borrowed from ar (nil allocates fresh).
func contract(g *graph.Graph, cmap []int32, nc int, ar *arena.Arena) *graph.Graph {
	vw := make([]int64, nc)
	for v := 0; v < g.N(); v++ {
		vw[cmap[v]] += g.VertexWeight(v)
	}
	triples := ar.Edges(g.M())
	cnt := 0
	for u := 0; u < g.N(); u++ {
		cu := cmap[u]
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			cv := cmap[g.Adj[i]]
			if cu == cv {
				continue
			}
			triples[cnt] = ds.EdgeTriple{U: cu, V: cv, W: g.EdgeWeight(int(i))}
			cnt++
		}
	}
	out := graph.FromTriples(nc, triples[:cnt], vw)
	ar.PutEdges(triples)
	return out
}

// level is one rung of the multilevel hierarchy.
type level struct {
	g    *graph.Graph
	cmap []int32 // fine vertex -> coarse vertex of the next level
}

// coarsen builds the hierarchy from fine to coarse, stopping when the
// graph is small enough or stops shrinking.
func coarsen(g *graph.Graph, opt Options, rng *rand.Rand) []level {
	levels := []level{{g: g}}
	cur := g
	for cur.N() > opt.CoarsenTo {
		cmap, nc := matchVertices(cur, opt.Matching, rng)
		if float64(nc) > 0.95*float64(cur.N()) {
			break // diminishing returns (star-like graphs)
		}
		next := contract(cur, cmap, nc, opt.Arena)
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{g: next})
		cur = next
	}
	return levels
}

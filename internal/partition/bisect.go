package partition

import (
	"math/rand"

	"repro/internal/ds"
	"repro/internal/graph"
)

// bisect computes a 2-way partition of g with target weights tw using
// the full multilevel pipeline. It returns the side (0/1) per vertex;
// the slice is arena-backed when opt.Arena is set and the caller owns
// it (recursiveBisect returns it to the pool after splitting).
func bisect(g *graph.Graph, tw [2]int64, opt Options, rng *rand.Rand) []int8 {
	if g.N() == 0 {
		return nil
	}
	levels := coarsen(g, opt, rng)
	coarsest := levels[len(levels)-1].g
	side := initialBisection(coarsest, tw, opt, rng)
	refineBisection(coarsest, side, tw, opt, rng)
	// Project back up the hierarchy, refining at each level. On
	// cancellation the projection still completes — the caller needs a
	// full-length side vector — but the refinement work is skipped.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		fineSide := opt.Arena.Int8s(fine.g.N())
		for v := 0; v < fine.g.N(); v++ {
			fineSide[v] = side[fine.cmap[v]]
		}
		opt.Arena.PutInt8s(side)
		side = fineSide
		if opt.Par.Cancelled() {
			continue
		}
		refineBisection(fine.g, side, tw, opt, rng)
	}
	return side
}

// initialBisection runs several greedy-graph-growing attempts and
// keeps the best (feasible first, then lowest cut).
func initialBisection(g *graph.Graph, tw [2]int64, opt Options, rng *rand.Rand) []int8 {
	var best []int8
	bestCut := int64(-1)
	bestFeasible := false
	maxW0 := maxAllowed(tw[0], opt.Imbalance)
	for run := 0; run < opt.InitRuns; run++ {
		side := growBisection(g, tw, opt, rng)
		w := sideWeights(g, side)
		feasible := w[0] <= maxW0 && w[1] <= maxAllowed(tw[1], opt.Imbalance)
		cut := cutOf(g, side)
		better := false
		switch {
		case best == nil:
			better = true
		case feasible && !bestFeasible:
			better = true
		case feasible == bestFeasible && cut < bestCut:
			better = true
		}
		if better {
			opt.Arena.PutInt8s(best)
			best, bestCut, bestFeasible = side, cut, feasible
		} else {
			opt.Arena.PutInt8s(side)
		}
	}
	return best
}

// growBisection grows part 0 from a random seed via max-gain frontier
// expansion until it reaches its target weight share; everything else
// is part 1. Disconnected graphs restart from fresh random seeds.
func growBisection(g *graph.Graph, tw [2]int64, opt Options, rng *rand.Rand) []int8 {
	n := g.N()
	side := opt.Arena.Int8s(n)
	for i := range side {
		side[i] = 1
	}
	total := g.TotalVertexWeight()
	// Scale the target in case vertex weights don't sum to tw0+tw1.
	want := int64(float64(total) * float64(tw[0]) / float64(tw[0]+tw[1]))
	if want <= 0 {
		return side
	}
	var w0 int64
	heap := opt.Arena.MaxHeap(n)
	inPart := opt.Arena.Bools(n)
	defer func() {
		opt.Arena.PutMaxHeap(heap)
		opt.Arena.PutBools(inPart)
	}()
	addVertex := func(v int32) {
		side[v] = 0
		inPart[v] = true
		w0 += g.VertexWeight(int(v))
		heap.Remove(int(v))
		nb := g.Neighbors(int(v))
		wt := g.Weights(int(v))
		for i, u := range nb {
			if inPart[u] {
				continue
			}
			// Gain of pulling u in: edges to part 0 minus edges away.
			heap.Add(int(u), 2*wt[i])
		}
	}
	for w0 < want {
		if heap.Len() == 0 {
			// Pick an unassigned seed (new component).
			seed := -1
			start := rng.Intn(n)
			for off := 0; off < n; off++ {
				v := (start + off) % n
				if !inPart[v] {
					seed = v
					break
				}
			}
			if seed < 0 {
				break
			}
			addVertex(int32(seed))
			continue
		}
		v, _ := heap.Pop()
		if w0+g.VertexWeight(v) > maxAllowed(tw[0], opt.Imbalance) && w0 >= want/2 {
			// Adding v would overshoot badly; stop here.
			break
		}
		addVertex(int32(v))
	}
	return side
}

// refineBisection runs FM passes until no pass improves the cut.
func refineBisection(g *graph.Graph, side []int8, tw [2]int64, opt Options, rng *rand.Rand) {
	for pass := 0; pass < opt.FMPasses; pass++ {
		if opt.Par.Cancelled() {
			return
		}
		if !fmPass(g, side, tw, opt) {
			return
		}
	}
}

// fmPass performs one Fiduccia–Mattheyses pass with rollback to the
// best prefix. It reports whether the cut or feasibility improved.
func fmPass(g *graph.Graph, side []int8, tw [2]int64, opt Options) bool {
	n := g.N()
	maxW := [2]int64{maxAllowed(tw[0], opt.Imbalance), maxAllowed(tw[1], opt.Imbalance)}
	w := sideWeights(g, side)

	ar := opt.Arena
	// gain[v] = cut reduction if v moves to the other side.
	gains := ar.Int64s(n)
	heaps := [2]*ds.IndexedMaxHeap{ar.MaxHeap(n), ar.MaxHeap(n)}
	locked := ar.Bools(n)
	defer func() {
		ar.PutInt64s(gains)
		ar.PutMaxHeap(heaps[0])
		ar.PutMaxHeap(heaps[1])
		ar.PutBools(locked)
	}()
	for v := 0; v < n; v++ {
		var ext, internal int64
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			if side[g.Adj[i]] != side[v] {
				ext += g.EdgeWeight(int(i))
			} else {
				internal += g.EdgeWeight(int(i))
			}
		}
		gains[v] = ext - internal
		heaps[side[v]].Push(v, gains[v])
	}

	type move struct {
		v    int32
		from int8
	}
	var history []move
	var gainSum, bestSum int64
	bestPrefix := 0
	negStreak := 0
	imbalanced := w[0] > maxW[0] || w[1] > maxW[1]

moves:
	for heaps[0].Len()+heaps[1].Len() > 0 {
		// Choose source side: the overweight one when infeasible;
		// otherwise the side offering the better feasible move.
		var from int
		switch {
		case w[0] > maxW[0]:
			from = 0
		case w[1] > maxW[1]:
			from = 1
		default:
			from = -1
			var bestGain int64
			for s := 0; s < 2; s++ {
				if heaps[s].Len() == 0 {
					continue
				}
				v, gkey := heaps[s].Peek()
				if w[1-s]+g.VertexWeight(v) > maxW[1-s] {
					continue // destination would overflow
				}
				if from < 0 || gkey > bestGain {
					from, bestGain = s, gkey
				}
			}
			if from < 0 {
				break moves // no feasible move remains
			}
		}
		if heaps[from].Len() == 0 {
			break
		}
		v, gkey := heaps[from].Pop()
		// While infeasible, allow any move off the heavy side.
		if !imbalanced && w[1-from]+g.VertexWeight(v) > maxW[1-from] {
			locked[v] = true
			continue
		}
		// Apply the move.
		to := 1 - from
		side[v] = int8(to)
		w[from] -= g.VertexWeight(v)
		w[to] += g.VertexWeight(v)
		locked[v] = true
		gainSum += gkey
		history = append(history, move{int32(v), int8(from)})
		// Update neighbour gains.
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adj[i]
			if locked[u] {
				continue
			}
			ew := g.EdgeWeight(int(i))
			if int(side[u]) == from {
				gains[u] += 2 * ew
			} else {
				gains[u] -= 2 * ew
			}
			heaps[side[u]].Update(int(u), gains[u])
		}
		nowFeasible := w[0] <= maxW[0] && w[1] <= maxW[1]
		improved := gainSum > bestSum || (imbalanced && nowFeasible)
		if improved {
			bestSum = gainSum
			bestPrefix = len(history)
			if nowFeasible {
				imbalanced = false
			}
			negStreak = 0
		} else {
			negStreak++
			if negStreak > opt.MaxNegMoves {
				break
			}
		}
	}
	// Roll back past the best prefix.
	for i := len(history) - 1; i >= bestPrefix; i-- {
		m := history[i]
		to := 1 - m.from
		side[m.v] = m.from
		w[to] -= g.VertexWeight(int(m.v))
		w[m.from] += g.VertexWeight(int(m.v))
	}
	return bestSum > 0 || bestPrefix > 0 && bestSum >= 0
}

func maxAllowed(target int64, eps float64) int64 {
	return int64(float64(target) * (1 + eps))
}

func sideWeights(g *graph.Graph, side []int8) [2]int64 {
	var w [2]int64
	for v := 0; v < g.N(); v++ {
		w[side[v]] += g.VertexWeight(v)
	}
	return w
}

func cutOf(g *graph.Graph, side []int8) int64 {
	var cut int64
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			if side[g.Adj[i]] != side[u] {
				cut += g.EdgeWeight(int(i))
			}
		}
	}
	return cut / 2
}

// Package partition implements a multilevel graph partitioner in the
// style of METIS/Scotch/KaFFPa: heavy-edge-matching coarsening, greedy
// graph growing initial bisection, Fiduccia–Mattheyses refinement, and
// recursive bisection to k parts with arbitrary per-part target
// weights. The paper uses graph partitioners both to produce the MPI
// task graphs (§IV-A) and to group tasks onto allocated nodes before
// mapping (§III-A); this package plays both roles.
package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Matching selects the coarsening matching policy.
type Matching int

// Matching policies.
const (
	// HeavyEdge matches each vertex with its heaviest unmatched
	// neighbour (METIS-style HEM).
	HeavyEdge Matching = iota
	// RandomEdge matches with a random unmatched neighbour
	// (Scotch-style, cheaper and slightly lower quality).
	RandomEdge
)

// Options tunes the partitioner; the zero value is usable.
type Options struct {
	// Seed drives all randomized decisions; runs are deterministic
	// for a fixed seed.
	Seed int64
	// Imbalance is the allowed relative imbalance epsilon (default 0.05):
	// every part p must satisfy weight(p) <= target(p)*(1+eps).
	Imbalance float64
	// InitRuns is the number of greedy-graph-growing attempts for the
	// coarsest bisection (default 4).
	InitRuns int
	// FMPasses bounds the refinement passes per level (default 2).
	FMPasses int
	// Matching selects the coarsening policy.
	Matching Matching
	// CoarsenTo stops coarsening when a level has at most this many
	// vertices (default 96).
	CoarsenTo int
	// MaxNegMoves is the FM hill-climbing window: a pass aborts after
	// this many consecutive non-improving moves (default 100).
	MaxNegMoves int
}

func (o Options) withDefaults() Options {
	if o.Imbalance == 0 {
		o.Imbalance = 0.05
	}
	if o.InitRuns == 0 {
		o.InitRuns = 4
	}
	if o.FMPasses == 0 {
		o.FMPasses = 2
	}
	if o.CoarsenTo == 0 {
		o.CoarsenTo = 96
	}
	if o.MaxNegMoves == 0 {
		o.MaxNegMoves = 100
	}
	return o
}

// Partition splits g into k parts of equal target weight and returns
// the part vector. g must be symmetric (undirected).
func Partition(g *graph.Graph, k int, opt Options) ([]int32, error) {
	targets := make([]int64, k)
	total := g.TotalVertexWeight()
	for i := range targets {
		targets[i] = total / int64(k)
		if int64(i) < total%int64(k) {
			targets[i]++
		}
	}
	return PartitionTargets(g, targets, opt)
}

// PartitionTargets splits g into len(targets) parts where part p aims
// for weight targets[p]. Recursive bisection assigns contiguous part
// id ranges to graph regions, so nearby part ids correspond to nearby
// vertices — the locality property the paper notes makes DEF mappings
// strong (§IV-B).
func PartitionTargets(g *graph.Graph, targets []int64, opt Options) ([]int32, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("partition: no targets")
	}
	opt = opt.withDefaults()
	var totalTarget int64
	for _, t := range targets {
		if t < 0 {
			return nil, fmt.Errorf("partition: negative target")
		}
		totalTarget += t
	}
	if totalTarget <= 0 {
		return nil, fmt.Errorf("partition: zero total target")
	}
	part := make([]int32, g.N())
	rng := rand.New(rand.NewSource(opt.Seed))
	vertices := make([]int32, g.N())
	for i := range vertices {
		vertices[i] = int32(i)
	}
	recursiveBisect(g, vertices, targets, 0, opt, rng, part)
	return part, nil
}

// recursiveBisect assigns part ids [offset, offset+len(targets)) to
// the given vertices of g (a subgraph of the original, with original
// ids tracked by the caller through vertices).
func recursiveBisect(g *graph.Graph, vertices []int32, targets []int64, offset int, opt Options, rng *rand.Rand, out []int32) {
	if len(targets) == 1 {
		for _, v := range vertices {
			out[v] = int32(offset)
		}
		return
	}
	kl := len(targets) / 2
	var twL, twR int64
	for i, t := range targets {
		if i < kl {
			twL += t
		} else {
			twR += t
		}
	}
	// Tighten the per-bisection imbalance so leaf parts still meet the
	// global epsilon after log2(k) nested bisections.
	bisOpt := opt
	levels := 1
	for 1<<levels < len(targets) {
		levels++
	}
	bisOpt.Imbalance = opt.Imbalance / float64(levels)
	side := bisect(g, [2]int64{twL, twR}, bisOpt, rng)
	var leftIDs, rightIDs []int32
	for i, v := range vertices {
		if side[i] == 0 {
			leftIDs = append(leftIDs, v)
		} else {
			rightIDs = append(rightIDs, v)
		}
	}
	var leftLocal, rightLocal []int32
	for i := range side {
		if side[i] == 0 {
			leftLocal = append(leftLocal, int32(i))
		} else {
			rightLocal = append(rightLocal, int32(i))
		}
	}
	gl, _ := g.InducedSubgraph(leftLocal)
	gr, _ := g.InducedSubgraph(rightLocal)
	recursiveBisect(gl, leftIDs, targets[:kl], offset, opt, rng, out)
	recursiveBisect(gr, rightIDs, targets[kl:], offset+kl, opt, rng, out)
}

// EdgeCut returns the weight of edges crossing parts (each undirected
// edge counted once for symmetric graphs storing both directions).
func EdgeCut(g *graph.Graph, part []int32) int64 {
	var cut int64
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			v := g.Adj[i]
			if part[u] != part[v] {
				cut += g.EdgeWeight(int(i))
			}
		}
	}
	return cut / 2
}

// PartWeights returns the total vertex weight of each of the k parts.
func PartWeights(g *graph.Graph, part []int32, k int) []int64 {
	w := make([]int64, k)
	for v := 0; v < g.N(); v++ {
		w[part[v]] += g.VertexWeight(v)
	}
	return w
}

// Imbalance returns max_p weight(p)/target(p) - 1; zero targets with
// nonzero weight yield +Inf-like large values.
func Imbalance(weights, targets []int64) float64 {
	worst := 0.0
	for p := range weights {
		if targets[p] == 0 {
			if weights[p] > 0 {
				return 1e18
			}
			continue
		}
		r := float64(weights[p])/float64(targets[p]) - 1
		if r > worst {
			worst = r
		}
	}
	return worst
}

// Package partition implements a multilevel graph partitioner in the
// style of METIS/Scotch/KaFFPa: heavy-edge-matching coarsening, greedy
// graph growing initial bisection, Fiduccia–Mattheyses refinement, and
// recursive bisection to k parts with arbitrary per-part target
// weights. The paper uses graph partitioners both to produce the MPI
// task graphs (§IV-A) and to group tasks onto allocated nodes before
// mapping (§III-A); this package plays both roles.
package partition

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/arena"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Matching selects the coarsening matching policy.
type Matching int

// Matching policies.
const (
	// HeavyEdge matches each vertex with its heaviest unmatched
	// neighbour (METIS-style HEM).
	HeavyEdge Matching = iota
	// RandomEdge matches with a random unmatched neighbour
	// (Scotch-style, cheaper and slightly lower quality).
	RandomEdge
)

// Options tunes the partitioner; the zero value is usable.
type Options struct {
	// Seed drives all randomized decisions; runs are deterministic
	// for a fixed seed.
	Seed int64
	// Imbalance is the allowed relative imbalance epsilon (default 0.05):
	// every part p must satisfy weight(p) <= target(p)*(1+eps).
	Imbalance float64
	// InitRuns is the number of greedy-graph-growing attempts for the
	// coarsest bisection (default 4).
	InitRuns int
	// FMPasses bounds the refinement passes per level (default 2).
	FMPasses int
	// Matching selects the coarsening policy.
	Matching Matching
	// CoarsenTo stops coarsening when a level has at most this many
	// vertices (default 96).
	CoarsenTo int
	// MaxNegMoves is the FM hill-climbing window: a pass aborts after
	// this many consecutive non-improving moves (default 100).
	MaxNegMoves int
	// Par, when non-nil, runs independent bisection subtrees on the
	// group's bounded worker pool and polls it for cooperative
	// cancellation. Every subtree draws from its own seeded RNG, so
	// the split tree — and therefore the part vector — is identical
	// for every worker count, including nil (serial).
	Par *parallel.Group
	// Arena, when non-nil, supplies the recycled side/gain/heap
	// scratch of the bisection pipeline, so steady-state partitioning
	// allocates almost nothing. A nil Arena allocates fresh buffers.
	Arena *arena.Arena
	// Trace, when non-nil, receives per-stage counters (bisections
	// run, maximum recursion depth) on its open span. Counters are
	// reported once per bisection subtree — never from an inner loop —
	// and never influence a partitioning decision.
	Trace *trace.Trace
}

func (o Options) withDefaults() Options {
	if o.Imbalance == 0 {
		o.Imbalance = 0.05
	}
	if o.InitRuns == 0 {
		o.InitRuns = 4
	}
	if o.FMPasses == 0 {
		o.FMPasses = 2
	}
	if o.CoarsenTo == 0 {
		o.CoarsenTo = 96
	}
	if o.MaxNegMoves == 0 {
		o.MaxNegMoves = 100
	}
	return o
}

// Partition splits g into k parts of equal target weight and returns
// the part vector. g must be symmetric (undirected).
func Partition(g *graph.Graph, k int, opt Options) ([]int32, error) {
	targets := make([]int64, k)
	total := g.TotalVertexWeight()
	for i := range targets {
		targets[i] = total / int64(k)
		if int64(i) < total%int64(k) {
			targets[i]++
		}
	}
	return PartitionTargets(g, targets, opt)
}

// PartitionTargets splits g into len(targets) parts where part p aims
// for weight targets[p]. Recursive bisection assigns contiguous part
// id ranges to graph regions, so nearby part ids correspond to nearby
// vertices — the locality property the paper notes makes DEF mappings
// strong (§IV-B).
func PartitionTargets(g *graph.Graph, targets []int64, opt Options) ([]int32, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("partition: no targets")
	}
	opt = opt.withDefaults()
	var totalTarget int64
	for _, t := range targets {
		if t < 0 {
			return nil, fmt.Errorf("partition: negative target")
		}
		totalTarget += t
	}
	if totalTarget <= 0 {
		return nil, fmt.Errorf("partition: zero total target")
	}
	part := make([]int32, g.N())
	vertices := make([]int32, g.N())
	for i := range vertices {
		vertices[i] = int32(i)
	}
	recursiveBisect(g, vertices, targets, 0, opt, 1, part)
	if err := opt.Par.Err(); err != nil {
		return nil, err
	}
	return part, nil
}

// subtreeSeed derives the RNG seed of one bisection subtree from the
// partitioner seed and the subtree's position in the split tree
// (root 1, children 2p and 2p+1), finalized splitmix64-style. Each
// subtree owns an independent deterministic stream, so the split tree
// does not depend on the order — or the goroutine — its siblings run
// on.
func subtreeSeed(seed int64, path uint64) int64 {
	return int64(mix64(uint64(seed)*0x9E3779B97F4A7C15 + path))
}

// mix64 is the splitmix64 finalizer shared by subtreeSeed and the
// splitmix source — one copy, so the two can never drift apart and
// silently change the split tree.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// splitmix is a tiny rand.Source64. The stock math/rand source carries
// a 607-word feedback array — ~5 KB seeded per bisection subtree —
// while the partitioner only needs cheap, well-mixed draws for seed
// picks and matching orders.
type splitmix struct{ state uint64 }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

// subtreeRNG builds the RNG of one bisection subtree.
func subtreeRNG(seed int64, path uint64) *rand.Rand {
	return rand.New(&splitmix{state: uint64(subtreeSeed(seed, path))})
}

// recursiveBisect assigns part ids [offset, offset+len(targets)) to
// the given vertices of g (a subgraph of the original, with original
// ids tracked by the caller through vertices). The two halves recurse
// as independent subtasks: they write disjoint ranges of out and
// disjoint subslices of vertices, so Options.Par may run them on any
// worker. path identifies the subtree for its seeded RNG.
func recursiveBisect(g *graph.Graph, vertices []int32, targets []int64, offset int, opt Options, path uint64, out []int32) {
	if opt.Par.Cancelled() {
		return // caller surfaces the context error
	}
	if len(targets) == 1 {
		for _, v := range vertices {
			out[v] = int32(offset)
		}
		return
	}
	kl := len(targets) / 2
	var twL, twR int64
	for i, t := range targets {
		if i < kl {
			twL += t
		} else {
			twR += t
		}
	}
	// Tighten the per-bisection imbalance so leaf parts still meet the
	// global epsilon after log2(k) nested bisections.
	bisOpt := opt
	levels := 1
	for 1<<levels < len(targets) {
		levels++
	}
	bisOpt.Imbalance = opt.Imbalance / float64(levels)
	rng := subtreeRNG(opt.Seed, path)
	side := bisect(g, [2]int64{twL, twR}, bisOpt, rng)
	// path doubles per level, so its bit length is the subtree's depth
	// in the split tree (root 1 = depth 0).
	opt.Trace.Add("bisections", 1)
	opt.Trace.Max("bisect_depth", int64(bits.Len64(path)-1))

	ar := opt.Arena
	nl := 0
	for _, s := range side {
		if s == 0 {
			nl++
		}
	}
	leftLocal := ar.Int32s(nl)
	rightLocal := ar.Int32s(len(side) - nl)
	// Reorder vertices in place into [left block | right block]: the
	// subtrees then own disjoint subslices instead of freshly
	// allocated id lists.
	buf := ar.Int32s(len(vertices))
	li, ri := 0, nl
	for i, v := range vertices {
		if side[i] == 0 {
			leftLocal[li] = int32(i)
			buf[li] = v
			li++
		} else {
			rightLocal[ri-nl] = int32(i)
			buf[ri] = v
			ri++
		}
	}
	copy(vertices, buf)
	ar.PutInt32s(buf)
	ar.PutInt8s(side)
	leftIDs, rightIDs := vertices[:nl], vertices[nl:]
	gl, _ := g.InducedSubgraphArena(ar, leftLocal)
	gr, _ := g.InducedSubgraphArena(ar, rightLocal)
	ar.PutInt32s(leftLocal)
	ar.PutInt32s(rightLocal)
	opt.Par.Fork(
		func() { recursiveBisect(gl, leftIDs, targets[:kl], offset, opt, 2*path, out) },
		func() { recursiveBisect(gr, rightIDs, targets[kl:], offset+kl, opt, 2*path+1, out) },
	)
}

// EdgeCut returns the weight of edges crossing parts (each undirected
// edge counted once for symmetric graphs storing both directions).
func EdgeCut(g *graph.Graph, part []int32) int64 {
	var cut int64
	for u := 0; u < g.N(); u++ {
		for i := g.Xadj[u]; i < g.Xadj[u+1]; i++ {
			v := g.Adj[i]
			if part[u] != part[v] {
				cut += g.EdgeWeight(int(i))
			}
		}
	}
	return cut / 2
}

// PartWeights returns the total vertex weight of each of the k parts.
func PartWeights(g *graph.Graph, part []int32, k int) []int64 {
	w := make([]int64, k)
	for v := 0; v < g.N(); v++ {
		w[part[v]] += g.VertexWeight(v)
	}
	return w
}

// Imbalance returns max_p weight(p)/target(p) - 1; zero targets with
// nonzero weight yield +Inf-like large values.
func Imbalance(weights, targets []int64) float64 {
	worst := 0.0
	for p := range weights {
		if targets[p] == 0 {
			if weights[p] > 0 {
				return 1e18
			}
			continue
		}
		r := float64(weights[p])/float64(targets[p]) - 1
		if r > worst {
			worst = r
		}
	}
	return worst
}

package partition

import (
	"context"
	"testing"

	"repro/internal/arena"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func checkPartition(t *testing.T, g *graph.Graph, part []int32, k int, targets []int64, eps float64) {
	t.Helper()
	if len(part) != g.N() {
		t.Fatalf("part vector length %d, want %d", len(part), g.N())
	}
	for v, p := range part {
		if p < 0 || int(p) >= k {
			t.Fatalf("vertex %d in part %d (k=%d)", v, p, k)
		}
	}
	w := PartWeights(g, part, k)
	if imb := Imbalance(w, targets); imb > eps+1e-9 {
		t.Fatalf("imbalance %f > %f (weights %v targets %v)", imb, eps, w, targets)
	}
}

func TestPartitionGrid(t *testing.T) {
	g := graph.Grid2D(16, 16)
	for _, k := range []int{2, 4, 8} {
		part, err := Partition(g, k, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		targets := make([]int64, k)
		for i := range targets {
			targets[i] = int64(g.N() / k)
		}
		checkPartition(t, g, part, k, targets, 0.05)
		// A 16x16 grid split into k parts has an ideal cut around
		// 16*(k-1)/something; just require far below the total edges.
		cut := EdgeCut(g, part)
		if cut <= 0 {
			t.Fatalf("k=%d: cut = %d, expected positive", k, cut)
		}
		maxCut := g.TotalEdgeWeight() / 2 / 3 // no more than a third of edges cut
		if cut > maxCut {
			t.Fatalf("k=%d: cut %d too high (limit %d)", k, cut, maxCut)
		}
	}
}

func TestBisectionQualityOnGrid(t *testing.T) {
	// Optimal bisection of a 16x16 grid cuts 16 edges; the multilevel
	// partitioner should get within 2x.
	g := graph.Grid2D(16, 16)
	part, err := Partition(g, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cut := EdgeCut(g, part)
	if cut > 32 {
		t.Fatalf("grid bisection cut = %d, want <= 32", cut)
	}
}

func TestPartitionTargetsUneven(t *testing.T) {
	g := graph.Grid2D(12, 12) // 144 vertices
	targets := []int64{100, 28, 16}
	part, err := PartitionTargets(g, targets, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, part, 3, targets, 0.08)
}

func TestPartitionWeightedVertices(t *testing.T) {
	g := graph.Grid2D(10, 10)
	g.VW = make([]int64, g.N())
	for i := range g.VW {
		g.VW[i] = int64(1 + i%5)
	}
	part, err := Partition(g, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := g.TotalVertexWeight()
	targets := []int64{total / 4, total / 4, total / 4, total / 4}
	checkPartition(t, g, part, 4, targets, 0.10)
}

func TestPartitionDisconnected(t *testing.T) {
	// Two disjoint grids; partitioner must still balance.
	g1 := graph.Grid2D(8, 8)
	n1 := g1.N()
	var us, vs []int32
	var ws []int64
	for u := 0; u < n1; u++ {
		for i := g1.Xadj[u]; i < g1.Xadj[u+1]; i++ {
			us = append(us, int32(u), int32(u)+int32(n1))
			vs = append(vs, g1.Adj[i], g1.Adj[i]+int32(n1))
			ws = append(ws, 1, 1)
		}
	}
	g := graph.FromEdges(2*n1, us, vs, ws, nil)
	part, err := Partition(g, 4, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	targets := []int64{32, 32, 32, 32}
	checkPartition(t, g, part, 4, targets, 0.10)
}

func TestPartitionDeterministic(t *testing.T) {
	g := graph.RandomConnected(300, 600, 5, 11)
	p1, err := Partition(g, 8, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Partition(g, 8, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed gave different partitions")
		}
	}
}

func TestPartitionSinglePart(t *testing.T) {
	g := graph.Ring(10)
	part, err := Partition(g, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must put everything in part 0")
		}
	}
	if EdgeCut(g, part) != 0 {
		t.Fatal("k=1 cut must be 0")
	}
}

func TestPartitionErrors(t *testing.T) {
	g := graph.Ring(4)
	if _, err := PartitionTargets(g, nil, Options{}); err == nil {
		t.Fatal("want error for no targets")
	}
	if _, err := PartitionTargets(g, []int64{-1, 5}, Options{}); err == nil {
		t.Fatal("want error for negative target")
	}
	if _, err := PartitionTargets(g, []int64{0, 0}, Options{}); err == nil {
		t.Fatal("want error for zero total")
	}
}

func TestRecursiveBisectionLocality(t *testing.T) {
	// On a path graph, recursive bisection should produce part ids
	// that are contiguous along the path (the locality property DEF
	// exploits). Verify the number of part transitions equals k-1.
	n, k := 256, 8
	var us, vs []int32
	for i := 0; i < n-1; i++ {
		us = append(us, int32(i), int32(i+1))
		vs = append(vs, int32(i+1), int32(i))
	}
	g := graph.FromEdges(n, us, vs, nil, nil)
	part, err := Partition(g, k, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	transitions := 0
	for i := 1; i < n; i++ {
		if part[i] != part[i-1] {
			transitions++
		}
	}
	if transitions > k+2 {
		t.Fatalf("path partition has %d transitions, want close to %d", transitions, k-1)
	}
}

func TestHeavyEdgesStayTogether(t *testing.T) {
	// A graph of 8 pairs connected by huge weights, pairs connected in
	// a ring by weight-1 edges. Bisection must never cut a heavy edge.
	var us, vs []int32
	var ws []int64
	const pairs = 8
	for p := 0; p < pairs; p++ {
		a, b := int32(2*p), int32(2*p+1)
		us = append(us, a, b)
		vs = append(vs, b, a)
		ws = append(ws, 1000, 1000)
		c := int32((2*p + 2) % (2 * pairs))
		us = append(us, b, c)
		vs = append(vs, c, b)
		ws = append(ws, 1, 1)
	}
	g := graph.FromEdges(2*pairs, us, vs, ws, nil)
	part, err := Partition(g, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < pairs; p++ {
		if part[2*p] != part[2*p+1] {
			t.Fatalf("heavy pair %d cut", p)
		}
	}
}

func TestFixToCapacities(t *testing.T) {
	g := graph.Grid2D(8, 8) // 64 vertices
	// Deliberately unbalanced: everything in part 0.
	part := make([]int32, g.N())
	caps := []int64{16, 16, 16, 16}
	if err := FixToCapacities(g, part, caps); err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, part, 4)
	for p, ww := range w {
		if ww > caps[p] {
			t.Fatalf("part %d weight %d exceeds capacity %d", p, ww, caps[p])
		}
	}
}

func TestFixToCapacitiesInfeasible(t *testing.T) {
	g := graph.Ring(10)
	part := make([]int32, 10)
	if err := FixToCapacities(g, part, []int64{4, 4}); err == nil {
		t.Fatal("want error when total capacity < total weight")
	}
}

func TestFixToCapacitiesPrefersCheapMoves(t *testing.T) {
	// Path 0-1-2-3; parts {0,1,2} and {3}; capacities 2,2. Moving 2
	// (connected to 3) is cheaper than moving 0 or 1.
	var us, vs []int32
	for i := 0; i < 3; i++ {
		us = append(us, int32(i), int32(i+1))
		vs = append(vs, int32(i+1), int32(i))
	}
	g := graph.FromEdges(4, us, vs, nil, nil)
	part := []int32{0, 0, 0, 1}
	if err := FixToCapacities(g, part, []int64{2, 2}); err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 0, 1, 1}
	for i := range want {
		if part[i] != want[i] {
			t.Fatalf("part = %v, want %v", part, want)
		}
	}
}

func TestRefineKWayPass(t *testing.T) {
	// 4x4 grid, 2 parts split badly (checkerboard); one pass should
	// reduce the cut substantially.
	g := graph.Grid2D(4, 4)
	part := make([]int32, 16)
	for i := range part {
		part[i] = int32((i + i/4) % 2) // checkerboard
	}
	before := EdgeCut(g, part)
	caps := []int64{12, 12}
	gain := RefineKWayPass(g, part, caps)
	after := EdgeCut(g, part)
	if after != before-gain {
		t.Fatalf("gain accounting wrong: before %d, after %d, gain %d", before, after, gain)
	}
	if after >= before {
		t.Fatalf("refinement did not improve checkerboard cut (%d -> %d)", before, after)
	}
	w := PartWeights(g, part, 2)
	if w[0] > caps[0] || w[1] > caps[1] {
		t.Fatalf("refinement broke capacities: %v", w)
	}
}

func TestMatchingPolicies(t *testing.T) {
	g := graph.RandomConnected(500, 1500, 10, 13)
	for _, m := range []Matching{HeavyEdge, RandomEdge} {
		part, err := Partition(g, 4, Options{Seed: 17, Matching: m})
		if err != nil {
			t.Fatal(err)
		}
		targets := []int64{125, 125, 125, 125}
		checkPartition(t, g, part, 4, targets, 0.10)
	}
}

func TestImbalanceHelper(t *testing.T) {
	if got := Imbalance([]int64{110, 90}, []int64{100, 100}); got < 0.099 || got > 0.101 {
		t.Fatalf("Imbalance = %f, want 0.10", got)
	}
	if got := Imbalance([]int64{0, 0}, []int64{0, 10}); got != 0 {
		t.Fatalf("Imbalance with empty ok = %f", got)
	}
	if got := Imbalance([]int64{5}, []int64{0}); got < 1e17 {
		t.Fatalf("Imbalance zero target = %f, want huge", got)
	}
}

// TestPartitionWorkerDeterminism is the subtree-RNG contract: the
// part vector must be byte-identical for every worker count — the
// split tree depends only on (graph, targets, seed), never on how
// subtrees were scheduled. Run under -race this is also the proof
// that parallel subtrees touch disjoint state.
func TestPartitionWorkerDeterminism(t *testing.T) {
	g := graph.RandomConnected(2000, 6000, 50, 7)
	targets := make([]int64, 32)
	for i := range targets {
		targets[i] = int64(g.N() / len(targets))
	}
	targets[0] += int64(g.N() % len(targets))
	for _, m := range []Matching{HeavyEdge, RandomEdge} {
		base, err := PartitionTargets(g, targets, Options{Seed: 42, Matching: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			opt := Options{
				Seed:     42,
				Matching: m,
				Par:      parallel.NewGroup(context.Background(), workers),
				Arena:    arena.New(),
			}
			got, err := PartitionTargets(g, targets, opt)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for v := range base {
				if got[v] != base[v] {
					t.Fatalf("matching=%d workers=%d: part[%d] = %d, want %d",
						m, workers, v, got[v], base[v])
				}
			}
		}
	}
}

// TestPartitionCancellation: a dead context must surface as an error
// from PartitionTargets, not as a silently wrong part vector.
func TestPartitionCancellation(t *testing.T) {
	g := graph.RandomConnected(500, 1500, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PartitionTargets(g, []int64{250, 250}, Options{
		Seed: 1,
		Par:  parallel.NewGroup(ctx, 2),
	})
	if err == nil {
		t.Fatal("cancelled partition returned no error")
	}
}

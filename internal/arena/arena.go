// Package arena recycles the per-solve scratch buffers of the mapping
// pipeline. A solve allocates the same shapes every time — node-sized
// mark/level arrays for BFS, task-sized gain vectors, indexed heaps,
// ring-buffer queues — and a resident Engine serves thousands of
// solves against one topology, so steady state should reuse yesterday's
// buffers instead of making the garbage collector shred them.
//
// An Arena is a set of sync.Pool free lists keyed by element type.
// Borrowed slices come back zeroed to the requested length (exactly
// what a fresh make() would give), so call sites swap make(...) for
// a.Int32s(...) without behavioural change. All methods are safe for
// concurrent use — parallel subtasks of one solve borrow from the
// same arena — and nil-safe: a nil *Arena degrades to plain
// allocation, so serial facades need no special casing.
package arena

import (
	"sync"

	"repro/internal/ds"
)

// Arena is a reusable scratch allocator. The zero value is ready to
// use; a nil *Arena allocates fresh on every call and discards on
// every Put.
type Arena struct {
	i8     slicePool[int8]
	i32    slicePool[int32]
	i64    slicePool[int64]
	b      slicePool[bool]
	edges  slicePool[ds.EdgeTriple]
	heaps  sync.Pool
	queues sync.Pool
}

// New returns an empty Arena.
func New() *Arena { return &Arena{} }

// slicePool recycles slices through pointer-sized boxes: storing a
// bare slice in a sync.Pool boxes its three-word header on every Put
// (staticcheck SA6002) — an allocation per pool transaction, in the
// paths the arena exists to de-allocate. The boxes themselves cycle
// through a second pool, so the steady state allocates nothing.
type slicePool[T any] struct {
	full  sync.Pool // *sliceBox[T] carrying a slice
	empty sync.Pool // *sliceBox[T] without one
}

type sliceBox[T any] struct{ s []T }

// take fetches a pooled slice with capacity >= n, or reports failure
// so the caller allocates. Undersized pool entries are put back
// rather than dropped: a transient small request must not evict the
// full-size buffer the steady state needs.
func (p *slicePool[T]) take(n int) ([]T, bool) {
	v := p.full.Get()
	if v == nil {
		return nil, false
	}
	b := v.(*sliceBox[T])
	if cap(b.s) < n {
		p.full.Put(b)
		return nil, false
	}
	s := b.s[:n]
	b.s = nil
	p.empty.Put(b)
	return s, true
}

// put returns a slice to the pool.
func (p *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	b, _ := p.empty.Get().(*sliceBox[T])
	if b == nil {
		b = &sliceBox[T]{}
	}
	b.s = s[:0]
	p.full.Put(b)
}

func zero[T any](s []T) {
	var z T
	for i := range s {
		s[i] = z
	}
}

// Int8s borrows a zeroed []int8 of length n.
func (a *Arena) Int8s(n int) []int8 {
	if a != nil {
		if s, ok := a.i8.take(n); ok {
			zero(s)
			return s
		}
	}
	return make([]int8, n)
}

// PutInt8s returns a slice borrowed with Int8s.
func (a *Arena) PutInt8s(s []int8) {
	if a != nil {
		a.i8.put(s)
	}
}

// Int32s borrows a zeroed []int32 of length n.
func (a *Arena) Int32s(n int) []int32 {
	if a != nil {
		if s, ok := a.i32.take(n); ok {
			zero(s)
			return s
		}
	}
	return make([]int32, n)
}

// PutInt32s returns a slice borrowed with Int32s.
func (a *Arena) PutInt32s(s []int32) {
	if a != nil {
		a.i32.put(s)
	}
}

// Int64s borrows a zeroed []int64 of length n.
func (a *Arena) Int64s(n int) []int64 {
	if a != nil {
		if s, ok := a.i64.take(n); ok {
			zero(s)
			return s
		}
	}
	return make([]int64, n)
}

// PutInt64s returns a slice borrowed with Int64s.
func (a *Arena) PutInt64s(s []int64) {
	if a != nil {
		a.i64.put(s)
	}
}

// Bools borrows a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool {
	if a != nil {
		if s, ok := a.b.take(n); ok {
			zero(s)
			return s
		}
	}
	return make([]bool, n)
}

// PutBools returns a slice borrowed with Bools.
func (a *Arena) PutBools(s []bool) {
	if a != nil {
		a.b.put(s)
	}
}

// Edges borrows a zeroed []ds.EdgeTriple of length n — the staging
// buffer the CSR graph builders sort and merge before laying out the
// final arrays (which escape and therefore stay freshly allocated).
func (a *Arena) Edges(n int) []ds.EdgeTriple {
	if a != nil {
		if s, ok := a.edges.take(n); ok {
			zero(s)
			return s
		}
	}
	return make([]ds.EdgeTriple, n)
}

// PutEdges returns a slice borrowed with Edges.
func (a *Arena) PutEdges(s []ds.EdgeTriple) {
	if a != nil {
		a.edges.put(s)
	}
}

// MaxHeap borrows an empty indexed max-heap addressing items 0..n-1.
func (a *Arena) MaxHeap(n int) *ds.IndexedMaxHeap {
	if a != nil {
		if v := a.heaps.Get(); v != nil {
			h := v.(*ds.IndexedMaxHeap)
			h.Reset(n)
			return h
		}
	}
	return ds.NewIndexedMaxHeap(n)
}

// PutMaxHeap returns a heap borrowed with MaxHeap.
func (a *Arena) PutMaxHeap(h *ds.IndexedMaxHeap) {
	if a != nil && h != nil {
		a.heaps.Put(h)
	}
}

// Queue borrows an empty FIFO queue.
func (a *Arena) Queue() *ds.Queue {
	if a != nil {
		if v := a.queues.Get(); v != nil {
			q := v.(*ds.Queue)
			q.Clear()
			return q
		}
	}
	return ds.NewQueue(256)
}

// PutQueue returns a queue borrowed with Queue.
func (a *Arena) PutQueue(q *ds.Queue) {
	if a != nil && q != nil {
		a.queues.Put(q)
	}
}

package arena

import (
	"sync"
	"testing"
)

// TestArenaZeroedReuse: a returned buffer must come back zeroed at
// the requested length, like a fresh make.
func TestArenaZeroedReuse(t *testing.T) {
	a := New()
	s := a.Int32s(8)
	for i := range s {
		s[i] = int32(i + 1)
	}
	a.PutInt32s(s)
	got := a.Int32s(4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %d", i, v)
		}
	}

	w := a.Int64s(3)
	w[0] = 7
	a.PutInt64s(w)
	if g := a.Int64s(3); g[0] != 0 {
		t.Fatal("int64 buffer not zeroed on reuse")
	}

	b := a.Bools(5)
	b[2] = true
	a.PutBools(b)
	if g := a.Bools(5); g[2] {
		t.Fatal("bool buffer not zeroed on reuse")
	}

	e := a.Int8s(5)
	e[1] = 1
	a.PutInt8s(e)
	if g := a.Int8s(5); g[1] != 0 {
		t.Fatal("int8 buffer not zeroed on reuse")
	}
}

// TestArenaUndersizedEntryKept: asking for more than a pooled entry
// holds must allocate fresh without losing the pooled entry.
func TestArenaUndersizedEntryKept(t *testing.T) {
	a := New()
	small := a.Int32s(4)
	a.PutInt32s(small)
	big := a.Int32s(1 << 16)
	if len(big) != 1<<16 {
		t.Fatalf("len = %d", len(big))
	}
	// The small entry must still be poolable.
	if s := a.Int32s(4); len(s) != 4 {
		t.Fatalf("len = %d, want 4", len(s))
	}
}

// TestArenaNil: a nil arena degrades to plain allocation.
func TestArenaNil(t *testing.T) {
	var a *Arena
	s := a.Int32s(4)
	if len(s) != 4 {
		t.Fatalf("nil arena Int32s len = %d", len(s))
	}
	a.PutInt32s(s) // must not panic
	h := a.MaxHeap(4)
	h.Push(1, 10)
	a.PutMaxHeap(h)
	q := a.Queue()
	q.Push(3)
	a.PutQueue(q)
}

// TestArenaHeapReset: a reused heap must behave like a fresh one of
// the new dimension.
func TestArenaHeapReset(t *testing.T) {
	a := New()
	h := a.MaxHeap(8)
	h.Push(3, 30)
	h.Push(5, 50)
	a.PutMaxHeap(h)
	h2 := a.MaxHeap(4)
	if h2.Len() != 0 {
		t.Fatalf("reused heap not empty: %d", h2.Len())
	}
	for i := 0; i < 4; i++ {
		if h2.Contains(i) {
			t.Fatalf("reused heap claims to contain %d", i)
		}
	}
	h2.Push(2, 20)
	h2.Push(1, 40)
	if it, k := h2.Pop(); it != 1 || k != 40 {
		t.Fatalf("Pop = (%d,%d), want (1,40)", it, k)
	}
}

// TestArenaConcurrent hammers one arena from many goroutines — the
// shape of parallel subtasks inside one solve (run under -race).
func TestArenaConcurrent(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := a.Int32s(64)
				for j := range s {
					if s[j] != 0 {
						panic("dirty buffer")
					}
					s[j] = int32(j)
				}
				a.PutInt32s(s)
				h := a.MaxHeap(16)
				h.Push(i%16, int64(i))
				a.PutMaxHeap(h)
			}
		}()
	}
	wg.Wait()
}

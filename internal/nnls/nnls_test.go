package nnls

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveExactNonnegative(t *testing.T) {
	// b = A·x* with x* >= 0 and A well-conditioned: recover x*.
	A := [][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
		{1, 1, 1},
	}
	want := []float64{2, 0, 3}
	b := make([]float64, 4)
	for i := range A {
		for j := range want {
			b[i] += A[i][j] * want[j]
		}
	}
	x, err := Solve(A, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(x[j]-want[j]) > 1e-8 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveClampsNegative(t *testing.T) {
	// Unconstrained solution would be negative: NNLS must return 0.
	A := [][]float64{{1}, {1}, {1}}
	b := []float64{-1, -2, -3}
	x, err := Solve(A, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 {
		t.Fatalf("x = %v, want [0]", x)
	}
}

func TestSolveMatchesKKT(t *testing.T) {
	// Random overdetermined systems: verify the KKT conditions
	// x >= 0, grad_j <= 0 for x_j = 0, grad_j ~ 0 for x_j > 0.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		rows, cols := 30, 6
		A := make([][]float64, rows)
		for i := range A {
			A[i] = make([]float64, cols)
			for j := range A[i] {
				A[i][j] = rng.NormFloat64()
			}
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(A, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Gradient w = Aᵀ(b - Ax).
		resid := make([]float64, rows)
		for i := 0; i < rows; i++ {
			r := b[i]
			for j := 0; j < cols; j++ {
				r -= A[i][j] * x[j]
			}
			resid[i] = r
		}
		for j := 0; j < cols; j++ {
			var w float64
			for i := 0; i < rows; i++ {
				w += A[i][j] * resid[i]
			}
			if x[j] < 0 {
				t.Fatalf("trial %d: negative coefficient %g", trial, x[j])
			}
			if x[j] == 0 && w > 1e-6 {
				t.Fatalf("trial %d: active var %d has positive gradient %g", trial, j, w)
			}
			if x[j] > 0 && math.Abs(w) > 1e-6 {
				t.Fatalf("trial %d: passive var %d has gradient %g", trial, j, w)
			}
		}
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil, nil, 0); err == nil {
		t.Fatal("want error for empty system")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("want error for rhs length mismatch")
	}
	if _, err := Solve([][]float64{{1, 2}, {1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("want error for ragged matrix")
	}
}

func TestStandardize(t *testing.T) {
	col := []float64{1, 2, 3, 4, 5}
	cols := [][]float64{col, {7, 7, 7}}
	Standardize(cols)
	var mean float64
	for _, v := range cols[0] {
		mean += v
	}
	if math.Abs(mean) > 1e-12 {
		t.Fatalf("standardized mean = %g", mean)
	}
	var variance float64
	for _, v := range cols[0] {
		variance += v * v
	}
	if math.Abs(variance/5-1) > 1e-12 {
		t.Fatalf("standardized variance = %g", variance/5)
	}
	for _, v := range cols[1] {
		if v != 0 {
			t.Fatal("constant column should zero out")
		}
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 20, 30, 40}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %g, want 1", r)
	}
	yneg := []float64{-1, -2, -3, -4}
	if r := Pearson(x, yneg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %g, want -1", r)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		return !math.IsNaN(r) && r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{1, 2})) {
		t.Fatal("constant input should yield NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{1, 2})) {
		t.Fatal("length mismatch should yield NaN")
	}
}

func TestCholSolve(t *testing.T) {
	g := [][]float64{{4, 2}, {2, 3}}
	c := []float64{10, 8}
	x, err := cholSolve(g, c)
	if err != nil {
		t.Fatal(err)
	}
	// Verify G·x = c.
	for i := range g {
		var s float64
		for j := range x {
			s += g[i][j] * x[j]
		}
		if math.Abs(s-c[i]) > 1e-10 {
			t.Fatalf("G·x != c at row %d: %g vs %g", i, s, c[i])
		}
	}
	if _, err := cholSolve([][]float64{{-1}}, []float64{1}); err == nil {
		t.Fatal("want error for non-PD matrix")
	}
}

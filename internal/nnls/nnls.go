// Package nnls implements the nonnegative least squares solver and
// correlation statistics the paper's regression analysis uses
// (§IV-E): the Lawson–Hanson active-set algorithm (the algorithm
// behind MATLAB's lsqnonneg), column standardization, and Pearson
// correlation.
package nnls

import (
	"fmt"
	"math"
)

// Solve minimizes ||A·x − b||₂ subject to x ≥ 0 with the
// Lawson–Hanson active-set method. A is row-major (len(A) rows, each
// of equal length). maxIter ≤ 0 selects 3·cols iterations.
func Solve(A [][]float64, b []float64, maxIter int) ([]float64, error) {
	rows := len(A)
	if rows == 0 {
		return nil, fmt.Errorf("nnls: empty system")
	}
	cols := len(A[0])
	if len(b) != rows {
		return nil, fmt.Errorf("nnls: %d rows but %d rhs entries", rows, len(b))
	}
	for i := range A {
		if len(A[i]) != cols {
			return nil, fmt.Errorf("nnls: ragged matrix at row %d", i)
		}
	}
	if maxIter <= 0 {
		maxIter = 3 * cols
	}

	x := make([]float64, cols)
	passive := make([]bool, cols)
	w := make([]float64, cols) // gradient Aᵀ(b−Ax)
	resid := append([]float64(nil), b...)

	const tol = 1e-10
	for iter := 0; iter < maxIter; iter++ {
		// w = Aᵀ·resid.
		for j := 0; j < cols; j++ {
			w[j] = 0
			for i := 0; i < rows; i++ {
				w[j] += A[i][j] * resid[i]
			}
		}
		// Pick the most positive gradient among active (zero) vars.
		best, bestW := -1, tol
		for j := 0; j < cols; j++ {
			if !passive[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best < 0 {
			break // KKT satisfied
		}
		passive[best] = true

		// Inner loop: solve the unconstrained LS on the passive set
		// and clip variables that went nonpositive.
		for {
			z, err := lsqPassive(A, b, passive)
			if err != nil {
				return nil, err
			}
			minNeg := math.Inf(1)
			alpha := 1.0
			for j := 0; j < cols; j++ {
				if passive[j] && z[j] <= tol {
					a := x[j] / (x[j] - z[j])
					if a < alpha {
						alpha = a
					}
					if z[j] < minNeg {
						minNeg = z[j]
					}
				}
			}
			if alpha >= 1 { // all passive strictly positive
				copy(x, z)
				break
			}
			for j := 0; j < cols; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
					if x[j] <= tol {
						x[j] = 0
						passive[j] = false
					}
				}
			}
		}
		// resid = b − A·x.
		for i := 0; i < rows; i++ {
			r := b[i]
			for j := 0; j < cols; j++ {
				if x[j] != 0 {
					r -= A[i][j] * x[j]
				}
			}
			resid[i] = r
		}
	}
	return x, nil
}

// lsqPassive solves the unconstrained least squares over the passive
// columns via normal equations with Cholesky factorization (plus a
// tiny ridge for rank-deficient sets), returning a full-length vector
// with zeros on active columns.
func lsqPassive(A [][]float64, b []float64, passive []bool) ([]float64, error) {
	rows, cols := len(A), len(passive)
	var idx []int
	for j := 0; j < cols; j++ {
		if passive[j] {
			idx = append(idx, j)
		}
	}
	p := len(idx)
	out := make([]float64, cols)
	if p == 0 {
		return out, nil
	}
	// Normal equations G = ApᵀAp, c = Apᵀb.
	g := make([][]float64, p)
	c := make([]float64, p)
	for a := 0; a < p; a++ {
		g[a] = make([]float64, p)
		for bb := a; bb < p; bb++ {
			var s float64
			for i := 0; i < rows; i++ {
				s += A[i][idx[a]] * A[i][idx[bb]]
			}
			g[a][bb] = s
		}
		for i := 0; i < rows; i++ {
			c[a] += A[i][idx[a]] * b[i]
		}
	}
	for a := 0; a < p; a++ {
		g[a][a] += 1e-12 // ridge against exact collinearity
		for bb := 0; bb < a; bb++ {
			g[a][bb] = g[bb][a]
		}
	}
	z, err := cholSolve(g, c)
	if err != nil {
		return nil, err
	}
	for a, j := range idx {
		out[j] = z[a]
	}
	return out, nil
}

// cholSolve solves G·x = c for symmetric positive definite G.
func cholSolve(g [][]float64, c []float64) ([]float64, error) {
	n := len(g)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := g[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("nnls: matrix not positive definite")
				}
				l[i][i] = math.Sqrt(s)
			} else {
				l[i][j] = s / l[j][j]
			}
		}
	}
	// Forward then backward substitution.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := c[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * y[k]
		}
		y[i] = s / l[i][i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k][i] * x[k]
		}
		x[i] = s / l[i][i]
	}
	return x, nil
}

// Standardize transforms each column in place to zero mean and unit
// standard deviation ("each column of V is normalized by first
// subtracting the column mean ... and dividing them to the column
// standard deviation", §IV-E). Constant columns become all zeros.
// Columns are given as cols[j][i] = value of column j at row i.
func Standardize(cols [][]float64) {
	for _, col := range cols {
		n := float64(len(col))
		if n == 0 {
			continue
		}
		var mean float64
		for _, v := range col {
			mean += v
		}
		mean /= n
		var variance float64
		for _, v := range col {
			variance += (v - mean) * (v - mean)
		}
		std := math.Sqrt(variance / n)
		for i := range col {
			if std > 0 {
				col[i] = (col[i] - mean) / std
			} else {
				col[i] = 0
			}
		}
	}
}

// Pearson returns the Pearson correlation coefficient of x and y
// (NaN when either is constant).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return math.NaN()
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

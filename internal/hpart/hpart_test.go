package hpart

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hypergraph"
)

func meshHG(nx, ny int) *hypergraph.H {
	return hypergraph.ColumnNet(gen.Mesh2D(nx, ny, 5))
}

func TestPartitionBalanced(t *testing.T) {
	h := meshHG(16, 16)
	for _, k := range []int{2, 4, 8} {
		part, err := Partition(h, k, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		w := PartWeights(h, part, k)
		total := h.TotalVertexWeight()
		for p, ww := range w {
			limit := int64(float64(total/int64(k)) * 1.10)
			if ww > limit {
				t.Fatalf("k=%d part %d weight %d > %d", k, p, ww, limit)
			}
		}
	}
}

func TestPartitionConnectivityQuality(t *testing.T) {
	// Partitioned 16x16 mesh: the hypergraph TV should be far below a
	// random assignment's.
	h := meshHG(16, 16)
	const k = 4
	part, err := Partition(h, k, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tv := h.Connectivity(part, k)
	random := make([]int32, h.NV)
	for i := range random {
		random[i] = int32(i % k)
	}
	tvRandom := h.Connectivity(random, k)
	if tv*3 > tvRandom {
		t.Fatalf("partitioner TV %d not clearly better than random %d", tv, tvRandom)
	}
}

func TestBisectEqualsConnectivityOnCut(t *testing.T) {
	// For k=2 the connectivity-1 equals the cut-net metric.
	h := meshHG(12, 12)
	part, err := Partition(h, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	side := make([]int8, h.NV)
	for v, p := range part {
		side[v] = int8(p)
	}
	if got, want := Cut(h, side), h.Connectivity(part, 2); got != want {
		t.Fatalf("Cut %d != Connectivity %d", got, want)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	h := hypergraph.ColumnNet(gen.Uniform(500, 4, 9))
	p1, err := Partition(h, 8, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Partition(h, 8, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed gave different partitions")
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	h := meshHG(4, 4)
	if _, err := PartitionTargets(h, nil, Options{}); err == nil {
		t.Fatal("want error for no targets")
	}
	if _, err := PartitionTargets(h, []int64{-3}, Options{}); err == nil {
		t.Fatal("want error for negative target")
	}
}

func TestSubHypergraphDropsTrivialNets(t *testing.T) {
	// Net {0,1,2}: restricted to {0} it must disappear.
	h := hypergraph.Build(3, [][]int32{{0, 1, 2}, {0, 1}}, nil, nil)
	sub := subHypergraph(h, []int32{0})
	if sub.NV != 1 || sub.NN != 0 {
		t.Fatalf("sub NV=%d NN=%d, want 1,0", sub.NV, sub.NN)
	}
	sub2 := subHypergraph(h, []int32{0, 1})
	if sub2.NN != 2 {
		t.Fatalf("sub2 NN=%d, want 2 (both nets have 2 pins on this side)", sub2.NN)
	}
}

func TestMeasureKWaySmall(t *testing.T) {
	// 4 vertices, nets: n0={0,1} owner 0, n1={1,2} owner 1, n2={2,3}
	// owner 2, n3={3,0} owner 3. Partition {0,1} {2,3}.
	h := hypergraph.Build(4, [][]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, nil, nil)
	owner := []int32{0, 1, 2, 3}
	part := []int32{0, 0, 1, 1}
	m := MeasureKWay(h, part, 2, owner)
	// Cut nets: n1 (owner part 0, covers part 1), n3 (owner part 1,
	// covers part 0). TV=2, TM=2, MSV=1, MSM=1.
	if m.TV != 2 || m.TM != 2 || m.MSV != 1 || m.MSM != 1 {
		t.Fatalf("metrics = %+v, want TV=2 TM=2 MSV=1 MSM=1", m)
	}
}

func TestMeasureKWayMatchesConnectivity(t *testing.T) {
	h := hypergraph.ColumnNet(gen.Uniform(300, 4, 11))
	owner := make([]int32, h.NN)
	for i := range owner {
		owner[i] = int32(i)
	}
	const k = 8
	part := make([]int32, h.NV)
	for i := range part {
		part[i] = int32((i * 7) % k)
	}
	m := MeasureKWay(h, part, k, owner)
	if want := h.Connectivity(part, k); m.TV != want {
		t.Fatalf("kstate TV %d != Connectivity %d", m.TV, want)
	}
}

func TestKStateMoveRevert(t *testing.T) {
	h := hypergraph.ColumnNet(gen.Mesh2D(8, 8, 5))
	owner := make([]int32, h.NN)
	for i := range owner {
		owner[i] = int32(i)
	}
	const k = 4
	part := make([]int32, h.NV)
	for i := range part {
		part[i] = int32(i % k)
	}
	s := newKState(h, append([]int32(nil), part...), k, owner)
	before := s.metrics()
	// Move a few vertices and move them back; metrics must be restored.
	for _, v := range []int32{0, 5, 17, 33} {
		orig := s.part[v]
		s.move(v, (orig+1)%k)
		s.move(v, (orig+2)%k)
		s.move(v, orig)
	}
	after := s.metrics()
	if before != after {
		t.Fatalf("move/revert not exact: before %+v after %+v", before, after)
	}
	// And the state must agree with a fresh computation.
	fresh := MeasureKWay(h, s.part, k, owner)
	if fresh != after {
		t.Fatalf("incremental %+v != fresh %+v", after, fresh)
	}
}

func TestKStateIncrementalAgainstFresh(t *testing.T) {
	h := hypergraph.ColumnNet(gen.Uniform(120, 3, 13))
	owner := make([]int32, h.NN)
	for i := range owner {
		owner[i] = int32(i)
	}
	const k = 5
	part := make([]int32, h.NV)
	for i := range part {
		part[i] = int32(i % k)
	}
	s := newKState(h, part, k, owner)
	// A pseudo-random walk of moves; after each, fresh must match.
	rngState := int64(12345)
	for step := 0; step < 100; step++ {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		v := int32(uint64(rngState) >> 33 % uint64(h.NV))
		rngState = rngState*6364136223846793005 + 1442695040888963407
		q := int32(uint64(rngState) >> 33 % uint64(k))
		s.move(v, q)
		if step%10 == 0 {
			fresh := MeasureKWay(h, s.part, k, owner)
			if got := s.metrics(); got != fresh {
				t.Fatalf("step %d: incremental %+v != fresh %+v", step, got, fresh)
			}
		}
	}
}

func TestRefineObjectivesImprovesMSV(t *testing.T) {
	h := hypergraph.ColumnNet(gen.Uniform(400, 4, 17))
	owner := make([]int32, h.NN)
	for i := range owner {
		owner[i] = int32(i)
	}
	const k = 8
	part, err := Partition(h, k, Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]int64, k)
	total := h.TotalVertexWeight()
	for i := range targets {
		targets[i] = total / int64(k)
	}
	before := MeasureKWay(h, part, k, owner)
	refined := append([]int32(nil), part...)
	moves := RefineObjectives(h, refined, k, owner, StackMV, targets, 0.10, 4)
	after := MeasureKWay(h, refined, k, owner)
	if moves > 0 && after.MSV > before.MSV {
		t.Fatalf("MSV refinement made MSV worse: %d -> %d", before.MSV, after.MSV)
	}
	if after.MSV > before.MSV || (after.MSV == before.MSV && after.TV > before.TV) {
		t.Fatalf("objective stack regressed: before %+v after %+v", before, after)
	}
}

func TestRefineObjectivesRespectsBalance(t *testing.T) {
	h := hypergraph.ColumnNet(gen.Mesh2D(10, 10, 5))
	owner := make([]int32, h.NN)
	for i := range owner {
		owner[i] = int32(i)
	}
	const k = 4
	part, err := Partition(h, k, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]int64, k)
	total := h.TotalVertexWeight()
	for i := range targets {
		targets[i] = total / int64(k)
	}
	RefineObjectives(h, part, k, owner, StackTM, targets, 0.10, 3)
	w := PartWeights(h, part, k)
	for p, ww := range w {
		if ww > maxAllowed(targets[p], 0.101) {
			t.Fatalf("part %d weight %d violates balance", p, ww)
		}
	}
}

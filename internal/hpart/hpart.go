// Package hpart implements a multilevel hypergraph partitioner in the
// style of PaToH: heavy-connectivity matching, greedy initial
// bisections, 2-way FM refinement of the connectivity (cut-net) cost,
// and recursive bisection with cut-net splitting so the sum of
// bisection cuts equals the k-way connectivity-1 metric — the total
// SpMV communication volume TV the paper's PATOH and UMPA partitioners
// minimize. The multi-objective UMPA refinement (MSV / MSM / TM
// secondary objectives, §IV-A) lives in objectives.go.
package hpart

import (
	"fmt"
	"math/rand"

	"repro/internal/hypergraph"
)

// Options tunes the partitioner; the zero value is usable.
type Options struct {
	// Seed drives all randomized decisions.
	Seed int64
	// Imbalance is the allowed relative imbalance (default 0.05).
	Imbalance float64
	// InitRuns is the number of initial bisection attempts (default 4).
	InitRuns int
	// FMPasses bounds refinement passes per level (default 2).
	FMPasses int
	// CoarsenTo stops coarsening at this many vertices (default 120).
	CoarsenTo int
	// MaxNetSize: nets larger than this are ignored during matching
	// and skipped in gain updates (default 64); they are still counted
	// in the cut exactly.
	MaxNetSize int
	// MaxNegMoves is the FM hill-climb window (default 100).
	MaxNegMoves int
}

func (o Options) withDefaults() Options {
	if o.Imbalance == 0 {
		o.Imbalance = 0.05
	}
	if o.InitRuns == 0 {
		o.InitRuns = 4
	}
	if o.FMPasses == 0 {
		o.FMPasses = 2
	}
	if o.CoarsenTo == 0 {
		o.CoarsenTo = 120
	}
	if o.MaxNetSize == 0 {
		o.MaxNetSize = 64
	}
	if o.MaxNegMoves == 0 {
		o.MaxNegMoves = 100
	}
	return o
}

// Partition splits h into k parts of equal target weight.
func Partition(h *hypergraph.H, k int, opt Options) ([]int32, error) {
	targets := make([]int64, k)
	total := h.TotalVertexWeight()
	for i := range targets {
		targets[i] = total / int64(k)
		if int64(i) < total%int64(k) {
			targets[i]++
		}
	}
	return PartitionTargets(h, targets, opt)
}

// PartitionTargets splits h into len(targets) parts with the given
// per-part target weights via recursive bisection.
func PartitionTargets(h *hypergraph.H, targets []int64, opt Options) ([]int32, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("hpart: no targets")
	}
	var totalTarget int64
	for _, t := range targets {
		if t < 0 {
			return nil, fmt.Errorf("hpart: negative target")
		}
		totalTarget += t
	}
	if totalTarget <= 0 {
		return nil, fmt.Errorf("hpart: zero total target")
	}
	opt = opt.withDefaults()
	part := make([]int32, h.NV)
	rng := rand.New(rand.NewSource(opt.Seed))
	vertices := make([]int32, h.NV)
	for i := range vertices {
		vertices[i] = int32(i)
	}
	recursiveBisect(h, vertices, targets, 0, opt, rng, part)
	return part, nil
}

func recursiveBisect(h *hypergraph.H, vertices []int32, targets []int64, offset int, opt Options, rng *rand.Rand, out []int32) {
	if len(targets) == 1 {
		for _, v := range vertices {
			out[v] = int32(offset)
		}
		return
	}
	kl := len(targets) / 2
	var twL, twR int64
	for i, t := range targets {
		if i < kl {
			twL += t
		} else {
			twR += t
		}
	}
	bisOpt := opt
	levels := 1
	for 1<<levels < len(targets) {
		levels++
	}
	bisOpt.Imbalance = opt.Imbalance / float64(levels)
	side := bisect(h, [2]int64{twL, twR}, bisOpt, rng)

	var leftIDs, rightIDs []int32
	var leftLocal, rightLocal []int32
	for i, v := range vertices {
		if side[i] == 0 {
			leftIDs = append(leftIDs, v)
			leftLocal = append(leftLocal, int32(i))
		} else {
			rightIDs = append(rightIDs, v)
			rightLocal = append(rightLocal, int32(i))
		}
	}
	hl := subHypergraph(h, leftLocal)
	hr := subHypergraph(h, rightLocal)
	recursiveBisect(hl, leftIDs, targets[:kl], offset, opt, rng, out)
	recursiveBisect(hr, rightIDs, targets[kl:], offset+kl, opt, rng, out)
}

// subHypergraph restricts h to the given vertices with cut-net
// splitting: each net keeps its pins on this side; nets reduced to
// fewer than two pins are dropped (they can never be cut again).
func subHypergraph(h *hypergraph.H, vertices []int32) *hypergraph.H {
	remap := make([]int32, h.NV)
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range vertices {
		remap[v] = int32(i)
	}
	var nets [][]int32
	var costs []int64
	for n := 0; n < h.NN; n++ {
		var pins []int32
		for _, v := range h.Pin(n) {
			if nv := remap[v]; nv >= 0 {
				pins = append(pins, nv)
			}
		}
		if len(pins) >= 2 {
			nets = append(nets, pins)
			costs = append(costs, h.Cost(n))
		}
	}
	vw := make([]int64, len(vertices))
	for i, v := range vertices {
		vw[i] = h.VW[v]
	}
	return hypergraph.Build(len(vertices), nets, vw, costs)
}

// Cut returns the 2-way cut cost of a side assignment: the total cost
// of nets with pins on both sides (equal to connectivity-1 for k=2).
func Cut(h *hypergraph.H, side []int8) int64 {
	var cut int64
	for n := 0; n < h.NN; n++ {
		var has [2]bool
		for _, v := range h.Pin(n) {
			has[side[v]] = true
		}
		if has[0] && has[1] {
			cut += h.Cost(n)
		}
	}
	return cut
}

// PartWeights returns the per-part vertex weight sums.
func PartWeights(h *hypergraph.H, part []int32, k int) []int64 {
	w := make([]int64, k)
	for v := 0; v < h.NV; v++ {
		w[part[v]] += h.VW[v]
	}
	return w
}

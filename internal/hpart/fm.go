package hpart

import (
	"math/rand"

	"repro/internal/ds"
	"repro/internal/hypergraph"
)

// bisect runs the multilevel 2-way pipeline on h with target weights
// tw and returns the side per vertex.
func bisect(h *hypergraph.H, tw [2]int64, opt Options, rng *rand.Rand) []int8 {
	if h.NV == 0 {
		return nil
	}
	levels := coarsen(h, opt, rng)
	coarsest := levels[len(levels)-1].h
	side := initialBisection(coarsest, tw, opt, rng)
	refine(coarsest, side, tw, opt)
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		fineSide := make([]int8, fine.h.NV)
		for v := 0; v < fine.h.NV; v++ {
			fineSide[v] = side[fine.cmap[v]]
		}
		side = fineSide
		refine(fine.h, side, tw, opt)
	}
	return side
}

// initialBisection tries several net-aware greedy growings and keeps
// the best feasible/lowest-cut result.
func initialBisection(h *hypergraph.H, tw [2]int64, opt Options, rng *rand.Rand) []int8 {
	var best []int8
	var bestCut int64
	bestFeasible := false
	for run := 0; run < opt.InitRuns; run++ {
		side := growBisection(h, tw, rng)
		w := weightsOf(h, side)
		feasible := w[0] <= maxAllowed(tw[0], opt.Imbalance) && w[1] <= maxAllowed(tw[1], opt.Imbalance)
		cut := Cut(h, side)
		better := best == nil || (feasible && !bestFeasible) ||
			(feasible == bestFeasible && cut < bestCut)
		if better {
			best, bestCut, bestFeasible = side, cut, feasible
		}
	}
	return best
}

// growBisection grows part 0 from a random seed, preferring vertices
// that share nets with the growing part (a BFS over the net
// structure), until the target weight share is reached.
func growBisection(h *hypergraph.H, tw [2]int64, rng *rand.Rand) []int8 {
	n := h.NV
	side := make([]int8, n)
	for i := range side {
		side[i] = 1
	}
	total := h.TotalVertexWeight()
	want := int64(float64(total) * float64(tw[0]) / float64(tw[0]+tw[1]))
	if want <= 0 {
		return side
	}
	var w0 int64
	q := ds.NewQueue(64)
	inPart := make([]bool, n)
	queued := make([]bool, n)
	add := func(v int32) {
		inPart[v] = true
		side[v] = 0
		w0 += h.VW[v]
		for _, nn := range h.VertexNets(int(v)) {
			for _, u := range h.Pin(int(nn)) {
				if !inPart[u] && !queued[u] {
					queued[u] = true
					q.Push(int(u))
				}
			}
		}
	}
	for w0 < want {
		if q.Len() == 0 {
			seed := -1
			start := rng.Intn(n)
			for off := 0; off < n; off++ {
				v := (start + off) % n
				if !inPart[v] {
					seed = v
					break
				}
			}
			if seed < 0 {
				break
			}
			add(int32(seed))
			continue
		}
		v := q.Pop()
		if inPart[v] {
			continue
		}
		add(int32(v))
	}
	return side
}

// refine runs FM passes until no pass helps.
func refine(h *hypergraph.H, side []int8, tw [2]int64, opt Options) {
	for pass := 0; pass < opt.FMPasses; pass++ {
		if !fmPass(h, side, tw, opt) {
			return
		}
	}
}

// fmPass is one 2-way hypergraph FM pass with best-prefix rollback.
// pins[s][n] counts the pins of net n on side s.
func fmPass(h *hypergraph.H, side []int8, tw [2]int64, opt Options) bool {
	n := h.NV
	maxW := [2]int64{maxAllowed(tw[0], opt.Imbalance), maxAllowed(tw[1], opt.Imbalance)}
	w := weightsOf(h, side)

	pins := [2][]int32{make([]int32, h.NN), make([]int32, h.NN)}
	for nn := 0; nn < h.NN; nn++ {
		for _, v := range h.Pin(nn) {
			pins[side[v]][nn]++
		}
	}
	gainOf := func(v int) int64 {
		var g int64
		s := side[v]
		for _, nn := range h.VertexNets(v) {
			c := h.Cost(int(nn))
			if pins[s][nn] == 1 && pins[1-s][nn] > 0 {
				g += c // move uncuts the net
			} else if pins[s][nn] > 1 && pins[1-s][nn] == 0 {
				g -= c // move cuts the net
			}
		}
		return g
	}

	heaps := [2]*ds.IndexedMaxHeap{ds.NewIndexedMaxHeap(n), ds.NewIndexedMaxHeap(n)}
	locked := make([]bool, n)
	for v := 0; v < n; v++ {
		heaps[side[v]].Push(v, gainOf(v))
	}

	type move struct {
		v    int32
		from int8
	}
	var history []move
	var gainSum, bestSum int64
	bestPrefix := 0
	negStreak := 0
	imbalanced := w[0] > maxW[0] || w[1] > maxW[1]
	stamp := make([]int32, n) // dedupe gain recomputation per move
	for i := range stamp {
		stamp[i] = -1
	}
	moveID := int32(0)

moves:
	for heaps[0].Len()+heaps[1].Len() > 0 {
		var from int
		switch {
		case w[0] > maxW[0]:
			from = 0
		case w[1] > maxW[1]:
			from = 1
		default:
			from = -1
			var bestGain int64
			for s := 0; s < 2; s++ {
				if heaps[s].Len() == 0 {
					continue
				}
				v, gkey := heaps[s].Peek()
				if w[1-s]+h.VW[v] > maxW[1-s] {
					continue
				}
				if from < 0 || gkey > bestGain {
					from, bestGain = s, gkey
				}
			}
			if from < 0 {
				break moves
			}
		}
		if heaps[from].Len() == 0 {
			break
		}
		v, gkey := heaps[from].Pop()
		if !imbalanced && w[1-from]+h.VW[v] > maxW[1-from] {
			locked[v] = true
			continue
		}
		to := 1 - from
		side[v] = int8(to)
		w[from] -= h.VW[v]
		w[to] += h.VW[v]
		locked[v] = true
		gainSum += gkey
		history = append(history, move{int32(v), int8(from)})

		// Update net pin counts; collect pins whose gains may change
		// (only nets near criticality matter, and huge nets are
		// skipped as in PaToH).
		for _, nn := range h.VertexNets(v) {
			critical := pins[from][nn] <= 2 || pins[to][nn] <= 1
			pins[from][nn]--
			pins[to][nn]++
			if !critical || h.NetSize(int(nn)) > opt.MaxNetSize {
				continue
			}
			for _, u := range h.Pin(int(nn)) {
				if locked[u] || stamp[u] == moveID {
					continue
				}
				stamp[u] = moveID
				heaps[side[u]].Update(int(u), gainOf(int(u)))
			}
		}
		moveID++

		nowFeasible := w[0] <= maxW[0] && w[1] <= maxW[1]
		if gainSum > bestSum || (imbalanced && nowFeasible) {
			bestSum = gainSum
			bestPrefix = len(history)
			if nowFeasible {
				imbalanced = false
			}
			negStreak = 0
		} else {
			negStreak++
			if negStreak > opt.MaxNegMoves {
				break
			}
		}
	}
	// Roll back past the best prefix (pin counts need no restoration:
	// the pass is over and they are rebuilt next pass).
	for i := len(history) - 1; i >= bestPrefix; i-- {
		m := history[i]
		side[m.v] = m.from
	}
	return bestSum > 0 || bestPrefix > 0 && bestSum >= 0
}

func maxAllowed(target int64, eps float64) int64 {
	return int64(float64(target) * (1 + eps))
}

func weightsOf(h *hypergraph.H, side []int8) [2]int64 {
	var w [2]int64
	for v := 0; v < h.NV; v++ {
		w[side[v]] += h.VW[v]
	}
	return w
}

package hpart

import (
	"math/rand"

	"repro/internal/hypergraph"
)

// matchHCM computes a heavy-connectivity matching: each vertex pairs
// with the unmatched vertex sharing the largest total net-cost
// weighted by 1/(netsize-1), the classic PaToH scoring. Nets larger
// than opt.MaxNetSize are ignored for matching. Returns the coarse
// map and coarse vertex count.
func matchHCM(h *hypergraph.H, opt Options, rng *rand.Rand) ([]int32, int) {
	n := h.NV
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	// Scratch: score per candidate vertex, with a touched list.
	score := make([]float64, n)
	touched := make([]int32, 0, 64)
	order := rng.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		touched = touched[:0]
		for _, nn := range h.VertexNets(int(v)) {
			size := h.NetSize(int(nn))
			if size < 2 || size > opt.MaxNetSize {
				continue
			}
			w := float64(h.Cost(int(nn))) / float64(size-1)
			for _, u := range h.Pin(int(nn)) {
				if u == v || match[u] >= 0 {
					continue
				}
				if score[u] == 0 {
					touched = append(touched, u)
				}
				score[u] += w
			}
		}
		var best int32 = -1
		bestScore := 0.0
		for _, u := range touched {
			if score[u] > bestScore {
				best, bestScore = u, score[u]
			}
			score[u] = 0
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	nc := int32(0)
	for v := 0; v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = nc
		if m := match[v]; m >= 0 && int(m) != v {
			cmap[m] = nc
		}
		nc++
	}
	return cmap, int(nc)
}

// contract builds the coarse hypergraph: vertex weights are summed,
// pins remapped and deduplicated, single-pin nets dropped.
func contract(h *hypergraph.H, cmap []int32, nc int) *hypergraph.H {
	vw := make([]int64, nc)
	for v := 0; v < h.NV; v++ {
		vw[cmap[v]] += h.VW[v]
	}
	var nets [][]int32
	var costs []int64
	seen := make([]int32, nc)
	for i := range seen {
		seen[i] = -1
	}
	for n := 0; n < h.NN; n++ {
		var pins []int32
		for _, v := range h.Pin(n) {
			cv := cmap[v]
			if seen[cv] != int32(n) {
				seen[cv] = int32(n)
				pins = append(pins, cv)
			}
		}
		if len(pins) >= 2 {
			nets = append(nets, pins)
			costs = append(costs, h.Cost(n))
		}
	}
	return hypergraph.Build(nc, nets, vw, costs)
}

type level struct {
	h    *hypergraph.H
	cmap []int32
}

// coarsen builds the multilevel hierarchy.
func coarsen(h *hypergraph.H, opt Options, rng *rand.Rand) []level {
	levels := []level{{h: h}}
	cur := h
	for cur.NV > opt.CoarsenTo {
		cmap, nc := matchHCM(cur, opt, rng)
		if float64(nc) > 0.95*float64(cur.NV) {
			break
		}
		next := contract(cur, cmap, nc)
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{h: next})
		cur = next
	}
	return levels
}

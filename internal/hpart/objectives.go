package hpart

import (
	"repro/internal/ds"
	"repro/internal/hypergraph"
)

// Objective identifies one of the communication metrics the
// multi-objective UMPA partitioner variants optimize (§IV-A): the
// total volume TV, the total message count TM, the maximum per-part
// send volume MSV and the maximum per-part sent message count MSM.
type Objective int

// Objectives, in the paper's notation.
const (
	ObjTV Objective = iota
	ObjTM
	ObjMSV
	ObjMSM
)

// Objective stacks of the three UMPA personalities (primary first;
// §IV-A: UMPA-MV minimizes MSV and TV; UMPA-MM minimizes MSM, TM and
// TV; UMPA-TM minimizes TM and TV).
var (
	StackMV = []Objective{ObjMSV, ObjTV}
	StackMM = []Objective{ObjMSM, ObjTM, ObjTV}
	StackTM = []Objective{ObjTM, ObjTV}
)

// PartMetrics summarizes the communication metrics of a k-way
// hypergraph partition under the owner model: net n is "sent" by the
// part of its owner vertex to every other part covering the net.
type PartMetrics struct {
	TV  int64
	TM  int64
	MSV int64
	MSM int64
}

// partCount is one (part, pins) entry of a net's coverage list.
type partCount struct {
	part, cnt int32
}

// kstate tracks a k-way partition's communication metrics under
// single-vertex moves, exactly and incrementally.
type kstate struct {
	h     *hypergraph.H
	k     int
	part  []int32
	owner []int32   // owner vertex per net
	owned [][]int32 // nets owned per vertex

	netParts [][]partCount
	lambda   []int32
	tv       int64
	tm       int64
	msg      map[int64]int32 // senderPart*k+destPart -> covering net count
	svHeap   *ds.IndexedMaxHeap
	smHeap   *ds.IndexedMaxHeap
	weights  []int64
}

func newKState(h *hypergraph.H, part []int32, k int, owner []int32) *kstate {
	s := &kstate{
		h:        h,
		k:        k,
		part:     part,
		owner:    owner,
		owned:    make([][]int32, h.NV),
		netParts: make([][]partCount, h.NN),
		lambda:   make([]int32, h.NN),
		msg:      make(map[int64]int32),
		svHeap:   ds.NewIndexedMaxHeap(k),
		smHeap:   ds.NewIndexedMaxHeap(k),
		weights:  make([]int64, k),
	}
	for p := 0; p < k; p++ {
		s.svHeap.Push(p, 0)
		s.smHeap.Push(p, 0)
	}
	for v := 0; v < h.NV; v++ {
		s.weights[part[v]] += h.VW[v]
	}
	for n := 0; n < h.NN; n++ {
		s.owned[owner[n]] = append(s.owned[owner[n]], int32(n))
		for _, v := range h.Pin(n) {
			s.addPin(int32(n), part[v])
		}
		po := part[owner[n]]
		cost := h.Cost(n)
		s.svHeap.Add(int(po), cost*int64(s.lambda[n]-1))
		s.tv += cost * int64(s.lambda[n]-1)
		for _, pc := range s.netParts[n] {
			if pc.part != po {
				s.msgIncr(po, pc.part)
			}
		}
	}
	return s
}

// addPin registers one pin of net n in part p (init only: no metric
// side effects beyond lambda).
func (s *kstate) addPin(n, p int32) {
	for i := range s.netParts[n] {
		if s.netParts[n][i].part == p {
			s.netParts[n][i].cnt++
			return
		}
	}
	s.netParts[n] = append(s.netParts[n], partCount{p, 1})
	s.lambda[n]++
}

func (s *kstate) msgIncr(a, b int32) {
	key := int64(a)*int64(s.k) + int64(b)
	if s.msg[key] == 0 {
		s.smHeap.Add(int(a), 1)
		s.tm++
	}
	s.msg[key]++
}

func (s *kstate) msgDecr(a, b int32) {
	key := int64(a)*int64(s.k) + int64(b)
	s.msg[key]--
	if s.msg[key] == 0 {
		delete(s.msg, key)
		s.smHeap.Add(int(a), -1)
		s.tm--
	}
}

// pinDelta moves one pin of net n from part "from" to part "to",
// maintaining lambda, TV, SV and messages. When the net is owned by
// the moving vertex itself, owner-side bookkeeping is suspended
// (handled by the caller around the move).
func (s *kstate) pinDelta(n, from, to int32, skipOwner bool) {
	cost := s.h.Cost(int(n))
	var po int32 = -1
	if !skipOwner {
		po = s.part[s.owner[n]]
	}
	// Remove from "from".
	for i := range s.netParts[n] {
		if s.netParts[n][i].part == from {
			s.netParts[n][i].cnt--
			if s.netParts[n][i].cnt == 0 {
				last := len(s.netParts[n]) - 1
				s.netParts[n][i] = s.netParts[n][last]
				s.netParts[n] = s.netParts[n][:last]
				s.lambda[n]--
				s.tv -= cost
				if !skipOwner {
					s.svHeap.Add(int(po), -cost)
					if from != po {
						s.msgDecr(po, from)
					}
				}
			}
			break
		}
	}
	// Add to "to".
	present := false
	for i := range s.netParts[n] {
		if s.netParts[n][i].part == to {
			s.netParts[n][i].cnt++
			present = true
			break
		}
	}
	if !present {
		s.netParts[n] = append(s.netParts[n], partCount{to, 1})
		s.lambda[n]++
		s.tv += cost
		if !skipOwner {
			s.svHeap.Add(int(po), cost)
			if to != po {
				s.msgIncr(po, to)
			}
		}
	}
}

// move relocates vertex v to part b, updating every metric exactly.
func (s *kstate) move(v int32, b int32) {
	a := s.part[v]
	if a == b {
		return
	}
	// Detach owner contributions of nets owned by v.
	for _, n := range s.owned[v] {
		cost := s.h.Cost(int(n))
		s.svHeap.Add(int(a), -cost*int64(s.lambda[n]-1))
		for _, pc := range s.netParts[n] {
			if pc.part != a {
				s.msgDecr(a, pc.part)
			}
		}
	}
	ownedSet := make(map[int32]bool, len(s.owned[v]))
	for _, n := range s.owned[v] {
		ownedSet[n] = true
	}
	// Move the pins.
	for _, n := range s.h.VertexNets(int(v)) {
		s.pinDelta(n, a, b, ownedSet[n])
	}
	s.part[v] = b
	s.weights[a] -= s.h.VW[v]
	s.weights[b] += s.h.VW[v]
	// Reattach owner contributions at the new part.
	for _, n := range s.owned[v] {
		cost := s.h.Cost(int(n))
		s.svHeap.Add(int(b), cost*int64(s.lambda[n]-1))
		for _, pc := range s.netParts[n] {
			if pc.part != b {
				s.msgIncr(b, pc.part)
			}
		}
	}
}

// metrics snapshots the current metric values.
func (s *kstate) metrics() PartMetrics {
	_, msv := s.svHeap.Peek()
	_, msm := s.smHeap.Peek()
	return PartMetrics{TV: s.tv, TM: s.tm, MSV: msv, MSM: msm}
}

// vec projects the metrics onto an objective stack.
func (m PartMetrics) vec(objs []Objective) [4]int64 {
	var out [4]int64
	for i, o := range objs {
		switch o {
		case ObjTV:
			out[i] = m.TV
		case ObjTM:
			out[i] = m.TM
		case ObjMSV:
			out[i] = m.MSV
		case ObjMSM:
			out[i] = m.MSM
		}
	}
	return out
}

func lexLess(a, b [4]int64, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// MeasureKWay computes the partition communication metrics of part
// under the owner model without any refinement.
func MeasureKWay(h *hypergraph.H, part []int32, k int, owner []int32) PartMetrics {
	s := newKState(h, append([]int32(nil), part...), k, owner)
	return s.metrics()
}

// RefineObjectives runs move-based multi-objective refinement passes
// over the boundary vertices: a move is kept only when it improves
// the objective stack lexicographically while respecting the balance
// constraint. This reproduces the directed refinement of the UMPA
// partitioner variants. It mutates part and returns the number of
// improving moves applied.
func RefineObjectives(h *hypergraph.H, part []int32, k int, owner []int32, objs []Objective, targets []int64, eps float64, maxPasses int) int {
	s := newKState(h, part, k, owner)
	nObj := len(objs)
	maxW := make([]int64, k)
	for p := 0; p < k; p++ {
		maxW[p] = maxAllowed(targets[p], eps)
	}
	moves := 0
	cands := make([]int32, 0, 8)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := 0; v < h.NV; v++ {
			a := s.part[v]
			// Candidate destinations: parts sharing a net with v.
			cands = cands[:0]
			for _, n := range h.VertexNets(v) {
				if s.lambda[n] < 2 {
					continue
				}
				for _, pc := range s.netParts[n] {
					if pc.part == a {
						continue
					}
					dup := false
					for _, c := range cands {
						if c == pc.part {
							dup = true
							break
						}
					}
					if !dup {
						cands = append(cands, pc.part)
						if len(cands) == cap(cands) {
							break
						}
					}
				}
				if len(cands) == cap(cands) {
					break
				}
			}
			if len(cands) == 0 {
				continue
			}
			base := s.metrics().vec(objs)
			vw := h.VW[v]
			for _, q := range cands {
				if s.weights[q]+vw > maxW[q] {
					continue
				}
				s.move(int32(v), q)
				now := s.metrics().vec(objs)
				if lexLess(now, base, nObj) {
					improved = true
					moves++
					break
				}
				s.move(int32(v), a) // revert
			}
		}
		if !improved {
			break
		}
	}
	return moves
}

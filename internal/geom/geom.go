// Package geom implements the geometric mapping pipeline: a
// multi-jagged recursive coordinate bisection that orders point sets
// (task-group centroids) into spatially coherent rank ranges, and
// space-filling-curve orderings of both points and allocated torus
// nodes. Together they power the GEOM and SFCM mappers — the
// coordinate-based placement family the paper compares its
// topology-aware mappers against (§II: geometric partitioners and
// SFC mappings are the standard when task coordinates exist).
//
// Both mappers place one supertask per allocated node, so the
// problem is a permutation: derive a spatial order of the supertask
// centroids, derive a locality-preserving order of the allocated
// nodes, and marry rank i of one to rank i of the other.
package geom

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/arena"
	"repro/internal/parallel"
	"repro/internal/sfc"
	"repro/internal/torus"
	"repro/internal/trace"
)

// Options tunes the multi-jagged bisection; the zero value is usable
// (serial, fresh allocations, never cancelled).
type Options struct {
	// Seed drives the randomized cut-dimension tie-breaks; runs are
	// deterministic for a fixed seed at any worker count.
	Seed int64
	// Par, when non-nil, runs independent bisection subtrees on the
	// group's bounded worker pool and polls it for cooperative
	// cancellation. Every subtree draws from its own seeded RNG, so
	// the cut tree — and therefore the part vector — is identical for
	// every worker count, including nil (serial).
	Par *parallel.Group
	// Arena, when non-nil, supplies the recycled index scratch of the
	// bisection. A nil Arena allocates fresh buffers.
	Arena *arena.Arena
	// Trace, when non-nil, receives per-stage counters (cuts made,
	// maximum recursion depth) on its open span. Counters never
	// influence a bisection decision.
	Trace *trace.Trace
}

// MultiJagged splits n = len(coords)/dim points into k parts of equal
// target weight by recursive weight-balanced bisection along the
// longest bounding-box extent (the multi-jagged scheme of Deveci et
// al., TPDS 2016, restricted to one cut per level). w are the point
// weights (nil = unit). The returned part vector assigns contiguous
// part id ranges to spatially contiguous regions, so nearby part ids
// correspond to nearby points — the locality property the SFC node
// order on the other side of the mapping preserves.
func MultiJagged(coords []float64, dim int, w []int64, k int, opt Options) ([]int32, error) {
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("geom: dimensionality %d not supported (want 2 or 3)", dim)
	}
	if len(coords)%dim != 0 {
		return nil, fmt.Errorf("geom: %d coordinates not divisible by dim %d", len(coords), dim)
	}
	n := len(coords) / dim
	if w != nil && len(w) != n {
		return nil, fmt.Errorf("geom: %d weights for %d points", len(w), n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("geom: %d parts", k)
	}
	var total int64
	if w == nil {
		total = int64(n)
	} else {
		for _, wi := range w {
			if wi < 0 {
				return nil, fmt.Errorf("geom: negative point weight %d", wi)
			}
			total += wi
		}
	}
	targets := make([]int64, k)
	for i := range targets {
		targets[i] = total / int64(k)
		if int64(i) < total%int64(k) {
			targets[i]++
		}
	}
	part := make([]int32, n)
	ar := opt.Arena
	ids := ar.Int32s(n)
	for i := range ids {
		ids[i] = int32(i)
	}
	mjBisect(coords, dim, w, ids, targets, 0, opt, 1, part)
	ar.PutInt32s(ids)
	if err := opt.Par.Err(); err != nil {
		return nil, err
	}
	return part, nil
}

// subtreeSeed derives the RNG seed of one bisection subtree from the
// caller seed and the subtree's position in the cut tree (root 1,
// children 2p and 2p+1), finalized splitmix64-style — the same
// discipline partition.recursiveBisect uses, so the cut tree does not
// depend on the order — or the goroutine — its siblings run on.
func subtreeSeed(seed int64, path uint64) int64 {
	return int64(mix64(uint64(seed)*0x9E3779B97F4A7C15 + path))
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// splitmix is a tiny rand.Source64; the bisection only draws a
// cut-dimension tie-break per subtree.
type splitmix struct{ state uint64 }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

func pointWeight(w []int64, id int32) int64 {
	if w == nil {
		return 1
	}
	return w[id]
}

// mjBisect assigns part ids [offset, offset+len(targets)) to the
// points listed in ids. The two halves recurse as independent
// subtasks: they write disjoint entries of out and own disjoint
// subslices of ids, so Options.Par may run them on any worker. path
// identifies the subtree for its seeded RNG.
func mjBisect(coords []float64, dim int, w []int64, ids []int32, targets []int64, offset int, opt Options, path uint64, out []int32) {
	if opt.Par.Cancelled() {
		return // caller surfaces the context error
	}
	if len(ids) == 0 {
		return
	}
	if len(targets) == 1 || len(ids) == 1 {
		// A single point under multiple parts takes the first id; the
		// sibling parts stay empty (only reachable when k > n).
		for _, v := range ids {
			out[v] = int32(offset)
		}
		return
	}
	kl := len(targets) / 2
	var twL int64
	for _, t := range targets[:kl] {
		twL += t
	}

	// The cut runs along the longest bounding-box extent; exact ties
	// (squares, cubes, coincident point clouds) are broken by the
	// subtree's seeded RNG so the choice is deterministic per seed but
	// not biased toward low dimensions.
	var mins, maxs [3]float64
	for d := 0; d < dim; d++ {
		mins[d], maxs[d] = math.Inf(1), math.Inf(-1)
	}
	for _, v := range ids {
		for d := 0; d < dim; d++ {
			c := coords[int(v)*dim+d]
			if c < mins[d] {
				mins[d] = c
			}
			if c > maxs[d] {
				maxs[d] = c
			}
		}
	}
	cutDim, best := 0, maxs[0]-mins[0]
	var ties [3]int
	ties[0] = 0
	nTies := 1
	for d := 1; d < dim; d++ {
		switch ext := maxs[d] - mins[d]; {
		case ext > best:
			cutDim, best = d, ext
			ties[0], nTies = d, 1
		case ext == best:
			ties[nTies] = d
			nTies++
		}
	}
	if nTies > 1 {
		rng := rand.New(&splitmix{state: uint64(subtreeSeed(opt.Seed, path))})
		cutDim = ties[rng.Intn(nTies)]
	}

	sort.Slice(ids, func(a, b int) bool {
		ca, cb := coords[int(ids[a])*dim+cutDim], coords[int(ids[b])*dim+cutDim]
		if ca != cb {
			return ca < cb
		}
		return ids[a] < ids[b]
	})

	// Pick the split point closest to the left target weight. When the
	// points outnumber the parts, both sides must keep at least as many
	// points as parts so every leaf part ends up non-empty.
	cLo, cHi := 1, len(ids)-1
	if len(ids) >= len(targets) {
		if kl > cLo {
			cLo = kl
		}
		if m := len(ids) - (len(targets) - kl); m < cHi {
			cHi = m
		}
	}
	cut, bestDiff := cLo, int64(math.MaxInt64)
	var acc int64
	for i := 0; i < cHi; i++ {
		acc += pointWeight(w, ids[i])
		if c := i + 1; c >= cLo {
			diff := acc - twL
			if diff < 0 {
				diff = -diff
			}
			if diff < bestDiff {
				cut, bestDiff = c, diff
			}
		}
	}

	// path doubles per level, so its bit length is the subtree's depth
	// in the cut tree (root 1 = depth 0).
	opt.Trace.Add("mj_cuts", 1)
	opt.Trace.Max("mj_depth", int64(bits.Len64(path)-1))

	left, right := ids[:cut], ids[cut:]
	opt.Par.Fork(
		func() { mjBisect(coords, dim, w, left, targets[:kl], offset, opt, 2*path, out) },
		func() { mjBisect(coords, dim, w, right, targets[kl:], offset+kl, opt, 2*path+1, out) },
	)
}

// hilbertBits is the per-dimension quantization resolution of
// HilbertOrder: centroids snap to a 2^hilbertBits-sided grid over
// their bounding box before keying.
const hilbertBits = 10

// HilbertOrder returns the indices of the n = len(coords)/dim points
// sorted along a Hilbert curve over their bounding box (points
// quantized to a 2^hilbertBits grid; key ties broken by point index).
func HilbertOrder(coords []float64, dim int) []int32 {
	n := len(coords) / dim
	var mins, maxs [3]float64
	for d := 0; d < dim; d++ {
		mins[d], maxs[d] = math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			c := coords[i*dim+d]
			if c < mins[d] {
				mins[d] = c
			}
			if c > maxs[d] {
				maxs[d] = c
			}
		}
	}
	side := float64(int(1)<<hilbertBits - 1)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		var q [3]uint32
		for d := 0; d < dim; d++ {
			if ext := maxs[d] - mins[d]; ext > 0 {
				q[d] = uint32((coords[i*dim+d]-mins[d])/ext*side + 0.5)
			}
		}
		keys[i] = sfc.HilbertXYZ2D(hilbertBits, q[0], q[1], q[2])
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if keys[ia] != keys[ib] {
			return keys[ia] < keys[ib]
		}
		return ia < ib
	})
	return order
}

// NodeOrder returns the allocated nodes reordered along a Hilbert
// curve over the topology's coordinate grid — the locality-preserving
// linearization consecutive spatial ranks map onto. Topologies without
// grid geometry (fat trees, dragonflies), grids beyond three
// dimensions, and degenerate coordinate collisions all fall back to
// the scheduler's allocation order unchanged.
func NodeOrder(topo torus.Topology, nodes []int32) []int32 {
	out := append([]int32(nil), nodes...)
	ct, ok := torus.CoordsOf(topo)
	if !ok {
		return out
	}
	nd := ct.NDims()
	if nd < 1 || nd > 3 {
		return out
	}
	var buf []int
	pts := make([][3]int, len(nodes))
	var mins, maxs [3]int
	for i, node := range nodes {
		buf = ct.Coord(int(node), buf)
		for d := 0; d < 3; d++ {
			c := 0
			if d < len(buf) {
				c = buf[d]
			}
			pts[i][d] = c
			if i == 0 || c < mins[d] {
				mins[d] = c
			}
			if i == 0 || c > maxs[d] {
				maxs[d] = c
			}
		}
	}
	dx, dy, dz := maxs[0]-mins[0]+1, maxs[1]-mins[1]+1, maxs[2]-mins[2]+1
	slot := make([]int32, dx*dy*dz)
	for i := range slot {
		slot[i] = -1
	}
	for i, p := range pts {
		lin := (p[0] - mins[0]) + dx*((p[1]-mins[1])+dy*(p[2]-mins[2]))
		if slot[lin] != -1 {
			return out // colliding coordinates: keep allocation order
		}
		slot[lin] = nodes[i]
	}
	ordered := out[:0]
	for _, lin := range sfc.BoxOrder(sfc.OrderHilbert, dx, dy, dz) {
		if n := slot[lin]; n != -1 {
			ordered = append(ordered, n)
		}
	}
	return ordered
}

// MapGEOM is the GEOM mapper: multi-jagged bisection of the supertask
// centroids into one part per node (a spatial ordering), married to
// the Hilbert node order. coords are the group-major centroid
// coordinates, w the supertask weights (nil = unit).
func MapGEOM(coords []float64, dim int, w []int64, topo torus.Topology, nodes []int32, opt Options) ([]int32, error) {
	if dim == 0 || len(coords) != len(nodes)*dim {
		return nil, fmt.Errorf("geom: %d centroid coordinates (dim %d) for %d nodes", len(coords), dim, len(nodes))
	}
	part, err := MultiJagged(coords, dim, w, len(nodes), opt)
	if err != nil {
		return nil, err
	}
	order := NodeOrder(topo, nodes)
	nodeOf := make([]int32, len(part))
	for i, p := range part {
		nodeOf[i] = order[p]
	}
	return nodeOf, nil
}

// MapSFCM is the SFCM mapper: supertask centroids in Hilbert curve
// order onto allocated nodes in Hilbert curve order — the pure
// SFC-to-SFC placement geometric frameworks default to.
func MapSFCM(coords []float64, dim int, topo torus.Topology, nodes []int32) ([]int32, error) {
	if dim == 0 || len(coords) != len(nodes)*dim {
		return nil, fmt.Errorf("geom: %d centroid coordinates (dim %d) for %d nodes", len(coords), dim, len(nodes))
	}
	rank := HilbertOrder(coords, dim)
	order := NodeOrder(topo, nodes)
	nodeOf := make([]int32, len(rank))
	for r, i := range rank {
		nodeOf[i] = order[r]
	}
	return nodeOf, nil
}

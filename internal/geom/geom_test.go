package geom

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/parallel"
	"repro/internal/torus"
)

// randCoords returns n points in [0,100)^dim from a seeded RNG.
func randCoords(n, dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n*dim)
	for i := range out {
		out[i] = rng.Float64() * 100
	}
	return out
}

// TestMultiJaggedPermutation: with as many parts as points the
// bisection is forced all the way down to singletons — the part
// vector must be a permutation of 0..n-1.
func TestMultiJaggedPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 129} {
		for _, dim := range []int{2, 3} {
			part, err := MultiJagged(randCoords(n, dim, 42), dim, nil, n, Options{Seed: 1})
			if err != nil {
				t.Fatalf("n=%d dim=%d: %v", n, dim, err)
			}
			seen := make([]bool, n)
			for i, p := range part {
				if p < 0 || int(p) >= n {
					t.Fatalf("n=%d dim=%d: point %d in part %d", n, dim, i, p)
				}
				if seen[p] {
					t.Fatalf("n=%d dim=%d: part %d assigned twice", n, dim, p)
				}
				seen[p] = true
			}
		}
	}
}

// TestMultiJaggedBalance: unit weights, n divisible by k — every part
// must land exactly n/k points; skewed weights must keep every part
// non-empty and within one max-weight point of the target.
func TestMultiJaggedBalance(t *testing.T) {
	const n, k = 256, 16
	coords := randCoords(n, 3, 7)
	part, err := MultiJagged(coords, 3, nil, k, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for _, p := range part {
		counts[p]++
	}
	for p, c := range counts {
		if c != n/k {
			t.Fatalf("unit weights: part %d holds %d points, want %d", p, c, n/k)
		}
	}

	w := make([]int64, n)
	var total, wmax int64
	for i := range w {
		w[i] = int64(1 + (i*13)%9)
		total += w[i]
		if w[i] > wmax {
			wmax = w[i]
		}
	}
	part, err = MultiJagged(coords, 3, w, k, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]int64, k)
	for i, p := range part {
		loads[p] += w[i]
	}
	target := total / k
	for p, l := range loads {
		if l == 0 {
			t.Fatalf("weighted: part %d is empty", p)
		}
		if diff := l - target; diff > wmax || diff < -wmax {
			t.Fatalf("weighted: part %d load %d, target %d (max point weight %d)", p, l, target, wmax)
		}
	}
}

// TestMultiJaggedWorkerDeterminism: the per-subtree seeding makes the
// part vector independent of the worker pool. The fixture piles many
// points onto coincident positions so the cut-dimension tie-break RNG
// genuinely fires.
func TestMultiJaggedWorkerDeterminism(t *testing.T) {
	const n, k = 512, 32
	// A quantized cloud: every coordinate snaps to an 8-step grid, so
	// subtree bounding boxes tie constantly.
	coords := randCoords(n, 3, 11)
	for i := range coords {
		coords[i] = float64(int(coords[i]) / 8 * 8)
	}
	base, err := MultiJagged(coords, 3, nil, k, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		g := parallel.NewGroup(context.Background(), workers)
		got, err := MultiJagged(coords, 3, nil, k, Options{Seed: 5, Par: g})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: part vector diverged from serial", workers)
		}
	}
	// A different seed must be allowed to cut differently (the RNG is
	// live, not vestigial) — not asserted as a must, but the seed must
	// at least reach the output deterministically.
	again, err := MultiJagged(coords, 3, nil, k, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, base) {
		t.Fatal("same seed, same input: part vector diverged across calls")
	}
}

// TestMultiJaggedCoincidentPoints: a fully degenerate cloud (every
// point identical) still splits into non-empty parts by the id
// tie-break.
func TestMultiJaggedCoincidentPoints(t *testing.T) {
	const n, k = 64, 8
	coords := make([]float64, n*3)
	part, err := MultiJagged(coords, 3, nil, k, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for _, p := range part {
		counts[p]++
	}
	for p, c := range counts {
		if c != n/k {
			t.Fatalf("part %d holds %d coincident points, want %d", p, c, n/k)
		}
	}
}

// TestMultiJaggedCancellation: a group whose context is already done
// must surface the context error instead of a part vector.
func TestMultiJaggedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := parallel.NewGroup(ctx, 2)
	if _, err := MultiJagged(randCoords(256, 3, 1), 3, nil, 16, Options{Seed: 1, Par: g}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMultiJaggedValidation walks the error surface.
func TestMultiJaggedValidation(t *testing.T) {
	good := randCoords(8, 2, 1)
	cases := []struct {
		name   string
		coords []float64
		dim    int
		w      []int64
		k      int
	}{
		{"dim 1", good, 1, nil, 2},
		{"dim 4", good, 4, nil, 2},
		{"ragged coords", good[:15], 2, nil, 2},
		{"weight length", good, 2, make([]int64, 3), 2},
		{"negative weight", good, 2, []int64{1, 1, 1, -1, 1, 1, 1, 1}, 2},
		{"zero parts", good, 2, nil, 0},
	}
	for _, tc := range cases {
		if _, err := MultiJagged(tc.coords, tc.dim, tc.w, tc.k, Options{}); err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
	}
}

// TestHilbertOrderPermutation: the order is a permutation, is
// deterministic, and survives coincident points by the index
// tie-break.
func TestHilbertOrderPermutation(t *testing.T) {
	for _, dim := range []int{2, 3} {
		const n = 200
		coords := randCoords(n, dim, 9)
		// A third of the points coincide exactly.
		for i := 0; i < n/3; i++ {
			copy(coords[i*dim:(i+1)*dim], coords[:dim])
		}
		order := HilbertOrder(coords, dim)
		if len(order) != n {
			t.Fatalf("dim=%d: %d entries, want %d", dim, len(order), n)
		}
		seen := make([]bool, n)
		for _, i := range order {
			if seen[i] {
				t.Fatalf("dim=%d: index %d ordered twice", dim, i)
			}
			seen[i] = true
		}
		if again := HilbertOrder(coords, dim); !reflect.DeepEqual(again, order) {
			t.Fatalf("dim=%d: order diverged across calls", dim)
		}
	}
}

// TestNodeOrderPermutationAndLocality: on a torus box the node order
// is a permutation of the allocation, and consecutive nodes are
// strictly more local (mean hop distance) than the raw allocation
// order it replaces.
func TestNodeOrderPermutationAndLocality(t *testing.T) {
	topo := torus.New([]int{8, 8, 8}, []float64{1, 1, 1})
	// Every other node of the machine, in scheduler (linear) order —
	// a spatially scattered allocation.
	var nodes []int32
	for n := 0; n < topo.Nodes(); n += 2 {
		nodes = append(nodes, int32(n))
	}
	order := NodeOrder(topo, nodes)
	if len(order) != len(nodes) {
		t.Fatalf("%d ordered nodes, want %d", len(order), len(nodes))
	}
	seen := map[int32]bool{}
	for _, n := range order {
		seen[n] = true
	}
	for _, n := range nodes {
		if !seen[n] {
			t.Fatalf("node %d missing from the order", n)
		}
	}
	mean := func(ns []int32) float64 {
		var total float64
		for i := 1; i < len(ns); i++ {
			total += float64(topo.HopDist(int(ns[i-1]), int(ns[i])))
		}
		return total / float64(len(ns)-1)
	}
	if h, raw := mean(order), mean(nodes); h >= raw {
		t.Fatalf("hilbert node order mean hop %f not below allocation order %f", h, raw)
	}
}

// TestNodeOrderFallbacks: no grid geometry and colliding coordinates
// both return the allocation order untouched.
func TestNodeOrderFallbacks(t *testing.T) {
	nodes := []int32{5, 3, 9, 1}
	if got := NodeOrder(nil, nodes); !reflect.DeepEqual(got, nodes) {
		t.Fatalf("nil topology: order %v, want allocation order %v", got, nodes)
	}
	topo := torus.New([]int{4, 4, 4}, []float64{1, 1, 1})
	dup := []int32{5, 3, 5, 1} // node 5 twice: coordinate collision
	if got := NodeOrder(topo, dup); !reflect.DeepEqual(got, dup) {
		t.Fatalf("colliding coords: order %v, want allocation order %v", got, dup)
	}
}

// TestMapValidation: both mappers reject centroid slices that do not
// match the allocation.
func TestMapValidation(t *testing.T) {
	topo := torus.New([]int{4, 4, 4}, []float64{1, 1, 1})
	nodes := []int32{0, 1, 2, 3}
	if _, err := MapGEOM(make([]float64, 9), 3, nil, topo, nodes, Options{}); err == nil {
		t.Fatal("MapGEOM accepted 3 centroids for 4 nodes")
	}
	if _, err := MapGEOM(nil, 0, nil, topo, nil, Options{}); err == nil {
		t.Fatal("MapGEOM accepted dim 0")
	}
	if _, err := MapSFCM(make([]float64, 9), 3, topo, nodes); err == nil {
		t.Fatal("MapSFCM accepted 3 centroids for 4 nodes")
	}
}

// TestMapGEOMPlacesEveryGroup: a well-formed instance yields one node
// per group, drawn from the allocation, each node exactly once.
func TestMapGEOMPlacesEveryGroup(t *testing.T) {
	topo := torus.New([]int{4, 4, 4}, []float64{1, 1, 1})
	nodes := []int32{0, 3, 17, 21, 40, 44, 58, 63}
	coords := randCoords(len(nodes), 3, 13)
	for _, run := range []struct {
		name string
		f    func() ([]int32, error)
	}{
		{"GEOM", func() ([]int32, error) { return MapGEOM(coords, 3, nil, topo, nodes, Options{Seed: 1}) }},
		{"SFCM", func() ([]int32, error) { return MapSFCM(coords, 3, topo, nodes) }},
	} {
		nodeOf, err := run.f()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(nodeOf) != len(nodes) {
			t.Fatalf("%s: placed %d groups, want %d", run.name, len(nodeOf), len(nodes))
		}
		used := map[int32]bool{}
		ok := map[int32]bool{}
		for _, n := range nodes {
			ok[n] = true
		}
		for g, n := range nodeOf {
			if !ok[n] {
				t.Fatalf("%s: group %d on unallocated node %d", run.name, g, n)
			}
			if used[n] {
				t.Fatalf("%s: node %d hosts two groups", run.name, n)
			}
			used[n] = true
		}
	}
}

package service

// The binary protocol endpoints: POST /v2/map, /v2/map/batch and
// /v2/remap speak length-prefixed wirebin frames instead of JSON.
// Same engine cache, same worker-slot accounting, same solve pipeline
// and same result fingerprints as the /v1 handlers — only the
// envelope differs. The request path is allocation-lean by design:
// the frame body lands in a pooled buffer, the CSR task graph is
// staged through an arena, interned sections skip decode entirely,
// and the response frame streams out of a pooled writer without an
// intermediate response struct tree.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	topomap "repro"
	"repro/internal/wirebin"
)

// frameBufPool recycles request-body buffers: one Get per binary
// request, returned as soon as the handler is done with the decoded
// views into it.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64<<10)
	return &b
}}

// readFrame reads the whole request body into a pooled buffer. The
// returned release puts the buffer back; every slice decoded out of
// the frame (section views, CSR views) dies with it.
func (s *Server) readFrame(w http.ResponseWriter, r *http.Request) (frame []byte, release func(), err error) {
	limit := s.cfg.MaxBodyBytes + wirebin.HeaderLen
	body := http.MaxBytesReader(w, r.Body, limit)
	bp := frameBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	if n := r.ContentLength; n > 0 && n <= limit && int64(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, rerr := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			*bp = buf
			frameBufPool.Put(bp)
			return nil, nil, rerr
		}
	}
	*bp = buf
	return buf, func() { frameBufPool.Put(bp) }, nil
}

// writeFrame sends one encoded frame.
func writeFrame(w http.ResponseWriter, code int, fw *wirebin.Writer) {
	w.Header().Set("Content-Type", wirebin.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(fw.Len()))
	w.WriteHeader(code)
	w.Write(fw.Bytes())
}

// binError is the binary twin of requestLog.error: counts the error,
// records the outcome, and sends an Error frame. missing carries the
// intern-miss bitmask (zero otherwise).
func (s *Server) binError(w http.ResponseWriter, lg *requestLog, code int, missing byte, err error) {
	s.st.errors.Add(1)
	lg.fail(code, err)
	fw := wirebin.GetWriter()
	defer wirebin.PutWriter(fw)
	wirebin.EncodeError(fw, &wirebin.ErrorFrame{Status: uint16(code), Missing: missing, Message: err.Error()})
	writeFrame(w, code, fw)
}

// decodeFrame reads and validates the frame envelope of one request,
// checking the message type. On failure the error response has
// already been written.
func (s *Server) decodeFrame(w http.ResponseWriter, r *http.Request, lg *requestLog, wantType byte) (payload []byte, release func(), ok bool) {
	if r.Method != http.MethodPost {
		s.binError(w, lg, http.StatusMethodNotAllowed, 0, fmt.Errorf("use POST"))
		return nil, nil, false
	}
	frame, release, err := s.readFrame(w, r)
	if err != nil {
		s.binError(w, lg, http.StatusBadRequest, 0, err)
		return nil, nil, false
	}
	msgType, payload, err := wirebin.DecodeHeader(frame, int(s.cfg.MaxBodyBytes))
	if err != nil {
		release()
		s.binError(w, lg, http.StatusBadRequest, 0, err)
		return nil, nil, false
	}
	if msgType != wantType {
		release()
		s.binError(w, lg, http.StatusBadRequest, 0, fmt.Errorf("wirebin: message type %d on this endpoint, want %d", msgType, wantType))
		return nil, nil, false
	}
	return payload, release, true
}

// binSections is the resolved form of a binary request's three big
// sections, carrying the canonical cache keys alongside so the engine
// lookup never recomputes them.
type binSections struct {
	topo     TopologySpec
	topoKey  string
	alloc    AllocationSpec
	allocKey string
	tasks    *topomap.TaskGraph
}

// resolveSections turns the mode-tagged wire sections into specs and
// a built task graph, consulting the intern table for references and
// feeding it from full bodies. A non-zero missing bitmask means
// unresolvable references: the caller sends a 404 Error frame and the
// client resends those sections in full.
func (s *Server) resolveSections(topoSec, allocSec, tasksSec wirebin.Section) (*binSections, byte, error) {
	out := &binSections{}
	var missing byte

	if id, isRef := topoSec.IsRef(); isRef {
		if v, hit := s.intern.get(id); hit && v.kind == wirebin.SecTopology {
			out.topo, out.topoKey = v.topo, v.topoKey
		} else {
			missing |= wirebin.SecTopology
		}
	} else {
		if topoSec.Mode == wirebin.SectionResend {
			s.intern.resends.Add(1)
		}
		bt, err := wirebin.DecodeTopology(topoSec.Body)
		if err != nil {
			return nil, 0, err
		}
		ts, err := topoSpecFromBinary(bt)
		if err != nil {
			return nil, 0, err
		}
		out.topo, out.topoKey = ts, ts.Key()
		s.intern.put(wirebin.Fingerprint(topoSec.Body),
			internVal{kind: wirebin.SecTopology, topo: ts, topoKey: out.topoKey})
	}

	if id, isRef := allocSec.IsRef(); isRef {
		if v, hit := s.intern.get(id); hit && v.kind == wirebin.SecAllocation {
			out.alloc, out.allocKey = v.alloc, v.allocKey
		} else {
			missing |= wirebin.SecAllocation
		}
	} else {
		if allocSec.Mode == wirebin.SectionResend {
			s.intern.resends.Add(1)
		}
		ba, err := wirebin.DecodeAllocation(allocSec.Body)
		if err != nil {
			return nil, 0, err
		}
		as, err := allocSpecFromBinary(ba)
		if err != nil {
			return nil, 0, err
		}
		key, err := as.Key()
		if err != nil {
			return nil, 0, err
		}
		out.alloc, out.allocKey = as, key
		s.intern.put(wirebin.Fingerprint(allocSec.Body),
			internVal{kind: wirebin.SecAllocation, alloc: as, allocKey: key})
	}

	if id, isRef := tasksSec.IsRef(); isRef {
		if v, hit := s.intern.get(id); hit && v.kind == wirebin.SecTasks {
			out.tasks = v.tasks
		} else {
			missing |= wirebin.SecTasks
		}
	} else {
		if tasksSec.Mode == wirebin.SectionResend {
			s.intern.resends.Add(1)
		}
		view, err := wirebin.ParseTasks(tasksSec.Body)
		if err != nil {
			return nil, 0, err
		}
		tg, err := taskGraphFromCSR(view)
		if err != nil {
			return nil, 0, err
		}
		out.tasks = tg
		s.intern.put(wirebin.Fingerprint(tasksSec.Body),
			internVal{kind: wirebin.SecTasks, tasks: tg})
	}

	if missing != 0 {
		return nil, missing, fmt.Errorf("intern: unresolved section reference(s); resend the flagged sections in full")
	}
	return out, 0, nil
}

// engineForKeys is engineFor with the canonical keys already in hand
// (the binary path computes or interns them during section
// resolution, so re-deriving them per request would be pure waste).
func (s *Server) engineForKeys(sec *binSections) (*topomap.Engine, bool, error) {
	return s.cache.GetKeyed(sec.topoKey+"|"+sec.allocKey, func() (*topomap.Engine, error) {
		net, err := sec.topo.Build()
		if err != nil {
			return nil, err
		}
		a, err := sec.alloc.Build(net)
		if err != nil {
			return nil, err
		}
		return topomap.NewEngine(net.Topo, a)
	})
}

// binMapResp fills a result frame's map-response body from the engine
// result: the placement slices alias the result arrays (the frame
// writer copies them straight into the output buffer), the rankfile
// renders on demand, and the trace echo rides as a JSON blob when the
// request opted in.
func binMapResp(res *topomap.MapResult, eng *topomap.Engine, hit, wantRank, wantTrace bool, elapsed time.Duration, fp string) (wirebin.MapResp, error) {
	met := res.Metrics
	m := wirebin.MapResp{
		Mapper:     string(res.Mapper),
		GroupOf:    res.GroupOf,
		NodeOf:     res.NodeOf,
		AllocNodes: eng.Allocation().Nodes,
		Metrics: wirebin.Metrics{
			TH: met.TH, WH: met.WH, MMC: met.MMC, MC: met.MC, AMC: met.AMC, AC: met.AC,
			ICV: met.ICV, ICM: met.ICM, MNRV: met.MNRV, MNRM: met.MNRM,
			UsedLinks: uint32(met.UsedLinks),
			Makespan:  met.Makespan, LoadImbalance: met.LoadImbalance,
		},
		FineWHGain:  res.FineWHGain,
		FineVolGain: res.FineVolGain,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
		Fingerprint: fp,
	}
	if hit {
		m.Flags |= wirebin.RespCacheHit
	}
	if wantRank {
		var buf bytes.Buffer
		if err := topomap.WriteRankOrder(&buf, res.Placement(), eng.Allocation()); err != nil {
			return m, err // already prefixed "rankfile:"
		}
		m.Rankfile = buf.Bytes()
	}
	if wantTrace && res.Trace != nil {
		blob, err := json.Marshal(res.Trace.Stages())
		if err != nil {
			return m, err
		}
		m.TraceJSON = blob
	}
	return m, nil
}

// handleMapBin serves POST /v2/map: one mapping job over the binary
// protocol — the frame twin of handleMap.
func (s *Server) handleMapBin(w http.ResponseWriter, r *http.Request) {
	s.st.requests.Add(1)
	s.st.protoBinary.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	lg := s.beginLog(endpointMap)
	defer lg.emit()
	payload, release, ok := s.decodeFrame(w, r, lg, wirebin.MsgMapRequest)
	if !ok {
		return
	}
	defer release()
	req, err := wirebin.DecodeMapReq(payload)
	if err != nil {
		s.binError(w, lg, http.StatusBadRequest, 0, err)
		return
	}
	lg.mapper = req.Mapper
	began := time.Now()
	sec, missing, err := s.resolveSections(req.Topo, req.Alloc, req.Tasks)
	if err != nil {
		code := http.StatusBadRequest
		if missing != 0 {
			code = http.StatusNotFound
		}
		s.binError(w, lg, code, missing, err)
		return
	}
	// Solve memo, shared with /v1/map: the interned sections already
	// carry canonical keys and the built graph, so a warm repeat is a
	// hash and a cache read — no spec parse, no graph build, no solve.
	memoKey := solveMemoKey(sec.topoKey+"|"+sec.allocKey, req.Mapper, req.Seed,
		req.Flags&wirebin.FlagRefine != 0, req.Flags&wirebin.FlagFineRefine != 0,
		req.Flags&wirebin.FlagBalance != 0, sec.tasks)
	if ent, ok := s.results.getReq(memoKey); ok {
		lg.cacheHit = true
		m, err := binMapResp(ent.res, ent.eng, true,
			req.Flags&wirebin.FlagRankfile != 0, req.Flags&wirebin.FlagTrace != 0,
			time.Since(began), ent.fp)
		if err != nil {
			s.binError(w, lg, http.StatusBadRequest, 0, err)
			return
		}
		s.st.observe(endpointMap, m.ElapsedMS)
		fw := wirebin.GetWriter()
		defer wirebin.PutWriter(fw)
		wirebin.EncodeMapResp(fw, &m)
		writeFrame(w, http.StatusOK, fw)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	workers := s.parallelism(int(req.Parallelism))
	// Server-side tracing is always on (stage histograms); the flag
	// only gates the wire echo — same contract as /v1/map.
	sol := lowerSolve(req.Mapper, req.Seed,
		req.Flags&wirebin.FlagRefine != 0, req.Flags&wirebin.FlagFineRefine != 0,
		true, req.Flags&wirebin.FlagBalance != 0, workers)
	var eng *topomap.Engine
	var hit bool
	var res *topomap.MapResult
	err = s.solve(ctx, workers, func(ctx context.Context) error {
		var err error
		eng, hit, err = s.engineForKeys(sec)
		if err != nil {
			return err
		}
		res, err = eng.RunSolve(ctx, sec.tasks, sol)
		return err
	})
	if err != nil {
		s.binError(w, lg, s.errStatus(err), 0, err)
		return
	}
	lg.cacheHit = hit
	s.st.observeStages(res.Trace.Stages())
	s.st.observeResult(res.Metrics.Makespan, res.Metrics.LoadImbalance)
	fp := resultFingerprint(eng, sec.tasks, res)
	s.results.putReq(memoKey, resultEntry{fp: fp, eng: eng, tasks: sec.tasks, res: res})
	m, err := binMapResp(res, eng, hit,
		req.Flags&wirebin.FlagRankfile != 0, req.Flags&wirebin.FlagTrace != 0,
		time.Since(began), fp)
	if err != nil {
		s.binError(w, lg, http.StatusBadRequest, 0, err)
		return
	}
	s.st.observe(endpointMap, m.ElapsedMS)
	fw := wirebin.GetWriter()
	defer wirebin.PutWriter(fw)
	wirebin.EncodeMapResp(fw, &m)
	writeFrame(w, http.StatusOK, fw)
}

// handleBatchBin serves POST /v2/map/batch: several mapper runs
// against one shared engine — the frame twin of handleBatch.
func (s *Server) handleBatchBin(w http.ResponseWriter, r *http.Request) {
	s.st.batchRequests.Add(1)
	s.st.protoBinary.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	lg := s.beginLog(endpointBatch)
	defer lg.emit()
	payload, release, ok := s.decodeFrame(w, r, lg, wirebin.MsgBatchRequest)
	if !ok {
		return
	}
	defer release()
	req, err := wirebin.DecodeBatchReq(payload)
	if err != nil {
		s.binError(w, lg, http.StatusBadRequest, 0, err)
		return
	}
	if len(req.Items) == 0 {
		s.binError(w, lg, http.StatusBadRequest, 0, fmt.Errorf("batch: empty requests"))
		return
	}
	began := time.Now()
	sec, missing, err := s.resolveSections(req.Topo, req.Alloc, req.Tasks)
	if err != nil {
		code := http.StatusBadRequest
		if missing != 0 {
			code = http.StatusNotFound
		}
		s.binError(w, lg, code, missing, err)
		return
	}
	workers := s.parallelism(int(req.Parallelism))
	runs := make([]topomap.Request, len(req.Items))
	for i, it := range req.Items {
		runs[i] = lowerSolve(it.Mapper, it.Seed,
			it.Flags&wirebin.FlagRefine != 0, it.Flags&wirebin.FlagFineRefine != 0,
			it.Flags&wirebin.FlagTrace != 0, it.Flags&wirebin.FlagBalance != 0, workers).Request(sec.tasks)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	var eng *topomap.Engine
	var hit bool
	var results []*topomap.MapResult
	err = s.solve(ctx, workers, func(ctx context.Context) error {
		var err error
		eng, hit, err = s.engineForKeys(sec)
		if err != nil {
			return err
		}
		results, err = eng.RunBatchContext(ctx, runs, 1)
		return err
	})
	if err != nil {
		s.binError(w, lg, s.errStatus(err), 0, err)
		return
	}
	lg.cacheHit = hit
	out := wirebin.BatchResp{
		ElapsedMS: float64(time.Since(began)) / float64(time.Millisecond),
		Results:   make([]wirebin.MapResp, len(results)),
	}
	if hit {
		out.Flags |= wirebin.RespCacheHit
	}
	for i, res := range results {
		traced := res.Trace != nil
		if traced {
			s.st.observeStages(res.Trace.Stages())
		}
		s.st.observeResult(res.Metrics.Makespan, res.Metrics.LoadImbalance)
		// Like /v1: items share one engine run, per-item elapsed and
		// fingerprints are omitted, and only opted-in items echo traces.
		m, err := binMapResp(res, eng, hit, false, traced, 0, "")
		if err != nil {
			s.binError(w, lg, http.StatusBadRequest, 0, err)
			return
		}
		out.Results[i] = m
	}
	s.st.observe(endpointBatch, out.ElapsedMS)
	fw := wirebin.GetWriter()
	defer wirebin.PutWriter(fw)
	wirebin.EncodeBatchResp(fw, &out)
	writeFrame(w, http.StatusOK, fw)
}

// handleRemapBin serves POST /v2/remap: an incremental remap over the
// binary protocol — the frame twin of handleRemap. The request
// converts onto the JSON wire's RemapRequest so validation and
// lowering stay single-sourced.
func (s *Server) handleRemapBin(w http.ResponseWriter, r *http.Request) {
	s.st.remapRequests.Add(1)
	s.st.protoBinary.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	lg := s.beginLog(endpointRemap)
	defer lg.emit()
	payload, release, ok := s.decodeFrame(w, r, lg, wirebin.MsgRemapRequest)
	if !ok {
		return
	}
	defer release()
	breq, err := wirebin.DecodeRemapReq(payload)
	if err != nil {
		s.binError(w, lg, http.StatusBadRequest, 0, err)
		return
	}
	req := RemapRequest{
		Fingerprint: breq.Fingerprint,
		Solve: topomap.Solve{
			Mapper:     topomap.Mapper(breq.Mapper),
			Seed:       breq.Seed,
			Refine:     breq.Flags&wirebin.FlagRefine != 0,
			FineRefine: breq.Flags&wirebin.FlagFineRefine != 0,
			Trace:      breq.Flags&wirebin.FlagTrace != 0,
			Balance:    breq.Flags&wirebin.FlagBalance != 0,
		},
		FenceThreshold: breq.FenceThreshold,
		TimeoutMS:      breq.TimeoutMS,
		Rankfile:       breq.Flags&wirebin.FlagRankfile != 0,
		Parallelism:    int(breq.Parallelism),
		Delta:          topomap.AllocationDelta{Remove: breq.Remove},
	}
	for _, c := range breq.Add {
		req.Delta.Add = append(req.Delta.Add, topomap.NodeCapacity{Node: c.Node, Procs: int(c.Procs)})
	}
	for _, c := range breq.SetCapacity {
		req.Delta.SetCapacity = append(req.Delta.SetCapacity, topomap.NodeCapacity{Node: c.Node, Procs: int(c.Procs)})
	}
	if len(breq.Objective) > 0 {
		if err := json.Unmarshal(breq.Objective, &req.Objective); err != nil {
			s.binError(w, lg, http.StatusBadRequest, 0, fmt.Errorf("remap: objective blob: %w", err))
			return
		}
	}
	if len(breq.Sim) > 0 {
		if err := json.Unmarshal(breq.Sim, &req.Solve.Sim); err != nil {
			s.binError(w, lg, http.StatusBadRequest, 0, fmt.Errorf("remap: sim blob: %w", err))
			return
		}
	}
	if err := req.Validate(); err != nil {
		s.binError(w, lg, http.StatusBadRequest, 0, err)
		return
	}
	lg.mapper = string(req.Solve.Mapper)
	entry, found := s.results.get(req.Fingerprint)
	if !found {
		s.binError(w, lg, http.StatusNotFound, 0, fmt.Errorf("remap: unknown fingerprint %q; the result may have been evicted — re-solve through /v2/map", req.Fingerprint))
		return
	}
	lg.cacheHit = true
	began := time.Now()
	workers := s.parallelism(req.Parallelism)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	spec := req.Spec(workers)
	spec.Solve.Trace = true
	var rres *topomap.RemapResult
	err = s.solve(ctx, workers, func(ctx context.Context) error {
		var err error
		rres, err = entry.eng.RunRemap(ctx, entry.tasks, entry.res, req.Delta, spec)
		return err
	})
	if err != nil {
		s.binError(w, lg, s.errStatus(err), 0, err)
		return
	}
	s.st.observeStages(rres.Result.Trace.Stages())
	s.st.observeResult(rres.Result.Metrics.Makespan, rres.Result.Metrics.LoadImbalance)
	fp := resultFingerprint(rres.Engine, entry.tasks, rres.Result)
	s.results.put(resultEntry{fp: fp, eng: rres.Engine, tasks: entry.tasks, res: rres.Result})
	s.st.remapPairsReused.Add(int64(rres.PairsReused))
	s.st.remapPairsTotal.Add(int64(rres.PairsTotal))
	if rres.Warm {
		s.st.remapWarm.Add(1)
	}
	if rres.FenceTripped {
		s.st.remapFallbacks.Add(1)
	}
	m, err := binMapResp(rres.Result, rres.Engine, true, req.Rankfile, req.Solve.Trace, time.Since(began), fp)
	if err != nil {
		s.binError(w, lg, http.StatusBadRequest, 0, err)
		return
	}
	if rres.Warm {
		m.Flags |= wirebin.RespWarm
	}
	if rres.FenceTripped {
		m.Flags |= wirebin.RespFenceTripped
	}
	out := wirebin.RemapResp{
		MapResp:       m,
		PrevScore:     rres.PrevScore,
		WarmScore:     rres.WarmScore,
		ColdScore:     rres.ColdScore,
		PairsReused:   uint32(rres.PairsReused),
		PairsTotal:    uint32(rres.PairsTotal),
		MigratedTasks: uint32(rres.MigratedTasks),
	}
	s.st.observe(endpointRemap, m.ElapsedMS)
	fw := wirebin.GetWriter()
	defer wirebin.PutWriter(fw)
	wirebin.EncodeRemapResp(fw, &out)
	writeFrame(w, http.StatusOK, fw)
}

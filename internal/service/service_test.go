package service_test

// Load-shaped tests of the mapd service: wire equivalence to direct
// Engine.Run for every registered mapper, concurrent clients against
// one server, engine-cache churn, cancellation mid-solve, and the
// capability/status/error surfaces. `make race` runs this whole
// package under the race detector.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	topomap "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

// testTasks builds a deterministic 64-task wheel-with-chords graph in
// both wire and engine forms.
func testTasks(n int) (service.TaskGraphSpec, *topomap.TaskGraph) {
	spec := service.TaskGraphSpec{N: n}
	for i := 0; i < n; i++ {
		spec.Edges = append(spec.Edges, [3]int64{int64(i), int64((i + 1) % n), 10})
		spec.Edges = append(spec.Edges, [3]int64{int64(i), int64((i + n/2) % n), 3})
	}
	tg, err := spec.Build()
	if err != nil {
		panic(err)
	}
	return spec, tg
}

// testTasksCoords is testTasks with a deterministic square grid of 2D
// coordinates attached — the coordinate-carrying variant the
// geometric mappers (GEOM, SFCM) need.
func testTasksCoords(n int) (service.TaskGraphSpec, *topomap.TaskGraph) {
	spec, _ := testTasks(n)
	side := 1
	for side*side < n {
		side++
	}
	spec.Coords = make([][]float64, n)
	for i := 0; i < n; i++ {
		spec.Coords[i] = []float64{float64(i % side), float64(i / side)}
	}
	tg, err := spec.Build()
	if err != nil {
		panic(err)
	}
	return spec, tg
}

// torusSpec is the shared test network: a 6x6x6 torus with default
// bandwidths.
func torusSpec() service.TopologySpec {
	return service.TopologySpec{Kind: "torus", Dims: []int{6, 6, 6}}
}

func newClient(t *testing.T, cfg service.Config) *client.Client {
	t.Helper()
	return client.InProcess(service.New(cfg).Handler())
}

// TestTopologySpecKeyMatchesFingerprint pins the cache-key contract:
// the key derived from a wire spec must equal the fingerprint of the
// topology it builds, so spec-keyed and engine-keyed cache entries
// never alias or split.
func TestTopologySpecKeyMatchesFingerprint(t *testing.T) {
	specs := []service.TopologySpec{
		{Kind: "torus", Dims: []int{6, 6, 6}},
		{Kind: "torus", Dims: []int{4, 4}, BW: []float64{1e9, 2e9}},
		{Kind: "mesh", Dims: []int{8, 8, 8}},
		{Kind: "fattree"},
		{Kind: "fattree", K: 4, BWHost: 5e9, Taper: 1},
		{Kind: "dragonfly"},
		{Kind: "dragonfly", H: 2, BWGlobal: 1e9},
	}
	for _, s := range specs {
		ns, err := s.Normalize()
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		net, err := ns.Build()
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if got, want := ns.Key(), topomap.TopologyFingerprint(net.Topo); got != want {
			t.Fatalf("spec key %q != topology fingerprint %q", got, want)
		}
	}
}

// TestMapEquivalence is the acceptance gate: the wire response must
// be byte-identical to a direct Engine.Run for every registered
// mapper — same GroupOf, NodeOf and metrics.
func TestMapEquivalence(t *testing.T) {
	spec, tg := testTasks(64)
	specC, tgC := testTasksCoords(64)
	c := newClient(t, service.Config{})

	topo := topomap.NewTorus([]int{6, 6, 6}, []float64{9.38e9, 4.68e9, 9.38e9})
	a, err := topomap.SparseAllocation(topo, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range topomap.RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue // registered by other tests in this binary
		}
		taskSpec, tasks := spec, tg
		if topomap.MapperCapsOf(mp).NeedsCoords {
			taskSpec, tasks = specC, tgC
		}
		direct, err := eng.Run(topomap.Request{Mapper: mp, Tasks: tasks, Seed: 7})
		if err != nil {
			t.Fatalf("%s: direct: %v", mp, err)
		}
		resp, err := c.Map(context.Background(), service.MapRequest{
			Topology:   torusSpec(),
			Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
			Tasks:      taskSpec,
			Mapper:     string(mp),
			Seed:       7,
		})
		if err != nil {
			t.Fatalf("%s: wire: %v", mp, err)
		}
		if !reflect.DeepEqual(resp.GroupOf, direct.GroupOf) {
			t.Fatalf("%s: GroupOf diverged from direct Engine.Run", mp)
		}
		if !reflect.DeepEqual(resp.NodeOf, direct.NodeOf) {
			t.Fatalf("%s: NodeOf diverged from direct Engine.Run", mp)
		}
		m, dm := resp.Metrics, direct.Metrics
		if m.TH != dm.TH || m.WH != dm.WH || m.MMC != dm.MMC || m.MC != dm.MC ||
			m.AMC != dm.AMC || m.AC != dm.AC || m.UsedLinks != dm.UsedLinks {
			t.Fatalf("%s: metrics diverged:\n direct %+v\n wire   %+v", mp, dm, m)
		}
		if !reflect.DeepEqual(resp.AllocNodes, a.Nodes) {
			t.Fatalf("%s: alloc_nodes %v, want %v", mp, resp.AllocNodes, a.Nodes)
		}
	}
}

// TestBatchMatchesSingles pins the batch endpoint to the single-map
// one: same engine, same placements, in request order.
func TestBatchMatchesSingles(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{})
	var items []service.BatchItem
	for _, mp := range topomap.Mappers() {
		items = append(items, service.BatchItem{Mapper: string(mp), Seed: 3})
	}
	batch, err := c.MapBatch(context.Background(), service.BatchRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Requests:   items,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(items) {
		t.Fatalf("batch returned %d results, want %d", len(batch.Results), len(items))
	}
	for i, item := range items {
		single, err := c.Map(context.Background(), service.MapRequest{
			Topology:   torusSpec(),
			Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
			Tasks:      spec,
			Mapper:     item.Mapper,
			Seed:       item.Seed,
		})
		if err != nil {
			t.Fatalf("%s: %v", item.Mapper, err)
		}
		if !reflect.DeepEqual(batch.Results[i].NodeOf, single.NodeOf) ||
			!reflect.DeepEqual(batch.Results[i].GroupOf, single.GroupOf) {
			t.Fatalf("%s: batch result diverged from single map", item.Mapper)
		}
	}
	// The singles above reused the engine the batch built.
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits < int64(len(items)) {
		t.Fatalf("cache hits = %d, want >= %d", st.CacheHits, len(items))
	}
}

// TestConcurrentClients hammers one server from many goroutines
// mixing mappers and topologies; every response must equal the serial
// answer (run `make race` to get this under the race detector).
func TestConcurrentClients(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{Workers: 4})
	mappers := []string{"DEF", "UG", "UWH", "UMC"}
	topos := []service.TopologySpec{
		torusSpec(),
		{Kind: "fattree", K: 8},
	}
	type key struct {
		mapper string
		topo   int
	}
	want := map[key]*service.MapResponse{}
	for ti, ts := range topos {
		for _, mp := range mappers {
			resp, err := c.Map(context.Background(), service.MapRequest{
				Topology:   ts,
				Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
				Tasks:      spec,
				Mapper:     mp,
				Seed:       5,
			})
			if err != nil {
				t.Fatalf("%s: %v", mp, err)
			}
			want[key{mp, ti}] = resp
		}
	}
	const goroutines = 16
	const perG = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := key{mappers[(g+i)%len(mappers)], (g + i) % len(topos)}
				resp, err := c.Map(context.Background(), service.MapRequest{
					Topology:   topos[k.topo],
					Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
					Tasks:      spec,
					Mapper:     k.mapper,
					Seed:       5,
				})
				if err != nil {
					errs <- fmt.Errorf("%s: %v", k.mapper, err)
					return
				}
				if !reflect.DeepEqual(resp.NodeOf, want[k].NodeOf) ||
					!reflect.DeepEqual(resp.GroupOf, want[k].GroupOf) {
					errs <- fmt.Errorf("%s on topo %d: concurrent response diverged", k.mapper, k.topo)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.InFlight != 0 {
		t.Fatalf("in_flight = %d after drain", st.InFlight)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d", st.Errors)
	}
}

// TestCacheChurn cycles more (topology, allocation) pairs than the
// cache holds: every request must still answer correctly, and
// revisiting a resident pair must hit. Every churn request carries a
// distinct solver seed — an identical repeat would be answered by the
// solve memo without consulting the engine cache at all.
func TestCacheChurn(t *testing.T) {
	spec, _ := testTasks(32)
	c := newClient(t, service.Config{CacheSize: 2})
	seeds := []int64{1, 2, 3, 4}
	for round := 0; round < 3; round++ {
		for _, seed := range seeds {
			resp, err := c.Map(context.Background(), service.MapRequest{
				Topology:   torusSpec(),
				Allocation: service.AllocationSpec{SparseNodes: 4, Seed: seed},
				Tasks:      spec,
				Mapper:     "UWH",
				Seed:       int64(10*round) + seed,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if resp.CacheHit {
				t.Fatalf("seed %d: unexpected cache hit while churning 4 pairs through 2 slots", seed)
			}
			if resp.Metrics.WH <= 0 {
				t.Fatalf("seed %d: degenerate WH", seed)
			}
		}
	}
	// Back-to-back repeats of one pair hit.
	for i := 0; i < 2; i++ {
		resp, err := c.Map(context.Background(), service.MapRequest{
			Topology:   torusSpec(),
			Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
			Tasks:      spec,
			Mapper:     "UWH",
			Seed:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 && !resp.CacheHit {
			t.Fatal("repeated (topology, allocation) pair missed the cache")
		}
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheEntries > 2 {
		t.Fatalf("cache grew past capacity: %d entries", st.CacheEntries)
	}
	if st.CacheMisses < int64(len(seeds)) {
		t.Fatalf("cache misses = %d, want >= %d (churn)", st.CacheMisses, len(seeds))
	}
}

// slowMapper blocks long enough for a deadline to fire, then places
// identity — the cancellation-mid-solve fixture.
func init() {
	err := topomap.RegisterMapper(topomap.NewMapper("TEST-SLOW", topomap.MapperCaps{},
		func(in topomap.MapperInput) ([]int32, error) {
			time.Sleep(500 * time.Millisecond)
			nodeOf := make([]int32, in.Coarse.N())
			copy(nodeOf, in.Alloc.Nodes)
			return nodeOf, nil
		}))
	if err != nil {
		panic(err)
	}
}

// TestCancellationMidSolve sends a request whose deadline expires
// while the mapper stage is still running: the response must come
// back promptly as a timeout, the worker slot must be reclaimed, and
// the server must keep serving.
func TestCancellationMidSolve(t *testing.T) {
	spec, _ := testTasks(32)
	c := newClient(t, service.Config{Workers: 1})
	began := time.Now()
	_, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
		Tasks:      spec,
		Mapper:     "TEST-SLOW",
		Seed:       1,
		TimeoutMS:  50,
	})
	if err == nil {
		t.Fatal("want timeout error from a 500ms solve under a 50ms deadline")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
	if waited := time.Since(began); waited > 400*time.Millisecond {
		t.Fatalf("timeout response took %s; the handler must not wait out the solve", waited)
	}
	// The single worker slot frees once the abandoned solve finishes;
	// the next request queues for it and succeeds.
	resp, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("server unserviceable after a cancelled solve: %v", err)
	}
	if resp.Metrics.WH <= 0 {
		t.Fatal("degenerate WH after cancellation")
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Timeouts < 1 {
		t.Fatalf("timeouts counter = %d, want >= 1", st.Timeouts)
	}
}

// TestMappersEndpoint checks the capability listing: all built-ins
// present with the flags the engine dispatches on.
func TestMappersEndpoint(t *testing.T) {
	c := newClient(t, service.Config{})
	infos, err := c.Mappers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	caps := map[string]struct{ msg, multi, block bool }{}
	for _, in := range infos {
		caps[in.Name] = struct{ msg, multi, block bool }{
			in.Caps.NeedsMessageGraph, in.Caps.NeedsMultipath, in.Caps.BlockGrouping,
		}
	}
	for _, mp := range topomap.Mappers() {
		if _, ok := caps[string(mp)]; !ok {
			t.Fatalf("mappers listing misses %s", mp)
		}
	}
	if !caps["DEF"].block {
		t.Fatal("DEF must declare block_grouping")
	}
	if !caps["UMMC"].msg {
		t.Fatal("UMMC must declare needs_message_graph")
	}
	if !caps["UMCA"].multi {
		t.Fatal("UMCA must declare needs_multipath")
	}
}

// TestRankfileRoundTrip asks for the MPICH_RANK_ORDER text and
// re-derives the placement from it.
func TestRankfileRoundTrip(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{})
	resp, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{Nodes: []int32{3, 17, 41, 90}, ProcsPerNode: []int{16}},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       1,
		Rankfile:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Rankfile, "# MPICH_RANK_ORDER") {
		t.Fatalf("rankfile payload malformed: %q", resp.Rankfile)
	}
	order, err := topomap.ReadRankOrder(strings.NewReader(resp.Rankfile))
	if err != nil {
		t.Fatal(err)
	}
	a := &topomap.Allocation{Nodes: resp.AllocNodes, ProcsPerNode: []int{16, 16, 16, 16}}
	pl, err := topomap.PlacementFromRankOrder(order, a)
	if err != nil {
		t.Fatal(err)
	}
	// The realized placement puts every task on the node the response
	// mapped it to.
	for task, g := range resp.GroupOf {
		if pl.Node(int32(task)) != resp.NodeOf[g] {
			t.Fatalf("task %d realized on node %d, mapped to %d", task, pl.Node(int32(task)), resp.NodeOf[g])
		}
	}
}

// TestWireErrors walks the error surface: malformed payloads and
// invalid specs must come back as clean HTTP errors, not hangs or
// panics.
func TestWireErrors(t *testing.T) {
	spec, _ := testTasks(32)
	c := newClient(t, service.Config{})
	good := service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
		Tasks:      spec,
		Mapper:     "UWH",
	}
	cases := []struct {
		name   string
		mutate func(service.MapRequest) service.MapRequest
		want   string
	}{
		{"unknown mapper", func(r service.MapRequest) service.MapRequest { r.Mapper = "NOPE"; return r }, "unknown mapper"},
		{"unknown topology", func(r service.MapRequest) service.MapRequest { r.Topology.Kind = "hypercube"; return r }, "unknown kind"},
		{"missing allocation", func(r service.MapRequest) service.MapRequest { r.Allocation = service.AllocationSpec{}; return r }, "nodes or sparse_nodes"},
		{"ambiguous allocation", func(r service.MapRequest) service.MapRequest {
			r.Allocation = service.AllocationSpec{Nodes: []int32{0}, SparseNodes: 2}
			return r
		}, "not both"},
		{"node out of range", func(r service.MapRequest) service.MapRequest {
			r.Allocation = service.AllocationSpec{Nodes: []int32{9999}}
			return r
		}, "outside"},
		{"too many tasks", func(r service.MapRequest) service.MapRequest {
			r.Allocation = service.AllocationSpec{Nodes: []int32{0}, ProcsPerNode: []int{1}}
			return r
		}, "exceed"},
		{"bad edge", func(r service.MapRequest) service.MapRequest {
			r.Tasks = service.TaskGraphSpec{N: 2, Edges: [][3]int64{{0, 5, 1}}}
			return r
		}, "out of"},
		// Resource bombs: tiny payloads whose derived cost would OOM
		// the daemon must be rejected up front.
		{"giant torus", func(r service.MapRequest) service.MapRequest {
			r.Topology = service.TopologySpec{Kind: "torus", Dims: []int{2000, 2000, 2000}}
			return r
		}, "service limit"},
		{"giant fattree", func(r service.MapRequest) service.MapRequest {
			r.Topology = service.TopologySpec{Kind: "fattree", K: 4096}
			return r
		}, "service limit"},
		{"giant dragonfly", func(r service.MapRequest) service.MapRequest {
			r.Topology = service.TopologySpec{Kind: "dragonfly", H: 512}
			return r
		}, "service limit"},
		{"giant task count", func(r service.MapRequest) service.MapRequest {
			r.Tasks = service.TaskGraphSpec{N: 2_000_000_000}
			return r
		}, "service limit"},
	}
	for _, tc := range cases {
		_, err := c.Map(context.Background(), tc.mutate(good))
		if err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := c.Mappers(context.Background()); err != nil {
		t.Fatalf("server unserviceable after error storm: %v", err)
	}
}

// TestOverTheWire runs the same request through a real TCP listener
// and through the in-process transport: byte-identical protocol, so
// identical results.
func TestOverTheWire(t *testing.T) {
	spec, _ := testTasks(64)
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := service.MapRequest{
		Topology:   service.TopologySpec{Kind: "dragonfly", H: 3},
		Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 2},
		Tasks:      spec,
		Mapper:     "UMC",
		Seed:       9,
	}
	wire, err := client.New(ts.URL, nil).Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := client.InProcess(srv.Handler()).Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wire.NodeOf, inproc.NodeOf) || !reflect.DeepEqual(wire.GroupOf, inproc.GroupOf) {
		t.Fatal("wire and in-process transports diverged")
	}
	if err := client.New(ts.URL, nil).Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := client.New(ts.URL, nil).Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 2 || st.LatencySamples < 1 {
		t.Fatalf("statusz counters not live: %+v", st)
	}
}

// TestParallelismDeterminism: the wire-level parallelism field may
// change latency only — placements, metrics and the rankfile must be
// byte-identical to the serial solve, including values far above the
// server cap (which clamp instead of erroring).
func TestParallelismDeterminism(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{Workers: 4})
	// A fully occupied allocation (4 nodes x 16 procs = 64 tasks)
	// keeps every placement rankfile-realizable.
	req := service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
		Tasks:      spec,
		Mapper:     "UWH",
		Refine:     true,
		Seed:       7,
		Rankfile:   true,
	}
	base, err := c.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 1000} {
		req.Parallelism = p
		got, err := c.Map(context.Background(), req)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if !reflect.DeepEqual(got.NodeOf, base.NodeOf) ||
			!reflect.DeepEqual(got.GroupOf, base.GroupOf) ||
			got.Rankfile != base.Rankfile {
			t.Fatalf("parallelism=%d: response diverged from serial", p)
		}
	}

	// The full pipeline (partitioned grouping + congestion refinement)
	// must agree too; UMC placements are compared without a rankfile,
	// which SMP block filling cannot realize for them here.
	umc := service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Mapper:     "UMC",
		Seed:       7,
	}
	ubase, err := c.Map(context.Background(), umc)
	if err != nil {
		t.Fatal(err)
	}
	umc.Parallelism = 4
	ugot, err := c.Map(context.Background(), umc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ugot.NodeOf, ubase.NodeOf) || !reflect.DeepEqual(ugot.GroupOf, ubase.GroupOf) {
		t.Fatal("UMC diverged under parallelism")
	}
}

// TestParallelismSlotAccounting: concurrent parallel requests on a
// small pool must all complete (the clamped multi-slot acquisition
// cannot deadlock) and batches with parallelism keep matching their
// serial counterparts.
func TestParallelismSlotAccounting(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{Workers: 3, MaxParallelism: 2})
	base, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	diverged := make([]bool, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Map(context.Background(), service.MapRequest{
				Topology:    torusSpec(),
				Allocation:  service.AllocationSpec{SparseNodes: 8, Seed: 1},
				Tasks:       spec,
				Mapper:      "UWH",
				Seed:        3,
				Parallelism: 2,
			})
			if err != nil {
				errs[i] = err
				return
			}
			diverged[i] = !reflect.DeepEqual(resp.NodeOf, base.NodeOf)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if diverged[i] {
			t.Fatalf("request %d diverged under concurrent parallel solves", i)
		}
	}

	// Batch with parallelism matches the batch without.
	items := []service.BatchItem{{Mapper: "UWH", Seed: 3}, {Mapper: "UMC", Seed: 3}}
	serial, err := c.MapBatch(context.Background(), service.BatchRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Requests:   items,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.MapBatch(context.Background(), service.BatchRequest{
		Topology:    torusSpec(),
		Allocation:  service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:       spec,
		Requests:    items,
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Results {
		if !reflect.DeepEqual(par.Results[i].NodeOf, serial.Results[i].NodeOf) {
			t.Fatalf("batch item %d diverged with parallelism", i)
		}
	}

	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxParallelism != 2 {
		t.Fatalf("max_parallelism = %d, want 2", st.MaxParallelism)
	}
}

// TestStatuszCacheEvictions: churning more engines than the cache
// holds must surface as a non-zero eviction counter — the operator's
// signal that the cached-path win is not being realized.
func TestStatuszCacheEvictions(t *testing.T) {
	spec, _ := testTasks(32)
	c := newClient(t, service.Config{CacheSize: 2})
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		if _, err := c.Map(context.Background(), service.MapRequest{
			Topology:   torusSpec(),
			Allocation: service.AllocationSpec{SparseNodes: 4, Seed: seed},
			Tasks:      spec,
			Mapper:     "DEF",
			Seed:       1,
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses != 5 {
		t.Fatalf("cache_misses = %d, want 5", st.CacheMisses)
	}
	if st.CacheEvictions != 3 {
		t.Fatalf("cache_evictions = %d, want 3 (5 builds through 2 slots)", st.CacheEvictions)
	}
	if st.CacheEntries != 2 {
		t.Fatalf("cache_entries = %d, want 2", st.CacheEntries)
	}
}

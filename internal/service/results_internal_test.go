package service

// White-box tests of the result cache's retention policy: eviction is
// recency-ordered but remap-frequency-weighted, refreshes keep an
// entry's age and heat, and the per-age counters land in the right
// buckets.

import (
	"fmt"
	"testing"
	"time"
)

func fpEntry(i int) resultEntry { return resultEntry{fp: fmt.Sprintf("map:%d", i)} }

// TestResultCacheFrequencyWeightedEviction: an entry that keeps being
// remapped survives recency churn that plain LRU would evict it
// under; the victim is the coldest low-heat entry instead.
func TestResultCacheFrequencyWeightedEviction(t *testing.T) {
	c := newResultCache(4)
	for i := 0; i < 4; i++ {
		c.put(fpEntry(i))
	}
	// Heat entry 0 twice, the rest once. Recency order front→back is
	// then 3,2,1,0 — the hot entry is also the coldest.
	c.get("map:0")
	c.get("map:0")
	for i := 1; i < 4; i++ {
		c.get(fmt.Sprintf("map:%d", i))
	}
	c.put(fpEntry(4)) // over capacity: someone must go

	if _, ok := c.get("map:0"); !ok {
		t.Fatal("remap-hot entry was evicted; retention is not frequency-weighted")
	}
	// The victim is the least-remapped among the cold end: entry 1.
	if _, ok := c.get("map:1"); ok {
		t.Fatal("expected the coldest low-heat entry (map:1) to be the victim")
	}
	if h, m, e := c.stats(); e != 1 || m != 1 || h != 6 {
		t.Fatalf("stats hits=%d misses=%d evictions=%d, want 6/1/1", h, m, e)
	}
}

// TestResultCacheZeroHeatIsPlainLRU: with no remap heat anywhere the
// policy degenerates to LRU — the scan stops at the first zero-heat
// back entry.
func TestResultCacheZeroHeatIsPlainLRU(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 4; i++ {
		c.put(fpEntry(i))
	}
	if _, ok := c.get("map:0"); ok {
		t.Fatal("LRU entry survived zero-heat eviction")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.get(fmt.Sprintf("map:%d", i)); !ok {
			t.Fatalf("entry %d missing after zero-heat eviction", i)
		}
	}
}

// TestResultCacheNeverEvictsFreshInsert: even when every resident
// entry is remap-hot, the entry just inserted is not the victim — its
// fingerprint is the one the handler is about to return.
func TestResultCacheNeverEvictsFreshInsert(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 3; i++ {
		c.put(fpEntry(i))
		c.get(fmt.Sprintf("map:%d", i)) // everyone hot
	}
	c.put(fpEntry(9))
	if _, ok := c.get("map:9"); !ok {
		t.Fatal("freshly inserted entry was evicted by hotter residents")
	}
}

// TestResultCacheRefreshKeepsAgeAndHeat: re-putting the same
// fingerprint refreshes the payload but neither resets the entry's
// creation time nor its remap count.
func TestResultCacheRefreshKeepsAgeAndHeat(t *testing.T) {
	c := newResultCache(4)
	c.put(fpEntry(0))
	c.get("map:0")
	n := c.idx["map:0"].Value.(*resultNode)
	created := n.created
	c.put(fpEntry(0))
	n = c.idx["map:0"].Value.(*resultNode)
	if n.remaps != 1 {
		t.Fatalf("refresh reset remap heat: %d, want 1", n.remaps)
	}
	if !n.created.Equal(created) {
		t.Fatal("refresh reset the entry's creation time")
	}
	if c.ll.Len() != 1 {
		t.Fatalf("refresh duplicated the entry: len %d", c.ll.Len())
	}
}

// TestResultAgeBuckets pins the bucket boundaries and the by-age
// counter plumbing for both hits and evictions.
func TestResultAgeBuckets(t *testing.T) {
	for _, tc := range []struct {
		age  time.Duration
		want int
	}{
		{0, 0}, {999 * time.Millisecond, 0},
		{time.Second, 1}, {9 * time.Second, 1},
		{10 * time.Second, 2}, {59 * time.Second, 2},
		{time.Minute, 3}, {9 * time.Minute, 3},
		{10 * time.Minute, 4}, {time.Hour, 4},
	} {
		if got := resultAgeBucket(tc.age); got != tc.want {
			t.Fatalf("resultAgeBucket(%v) = %d (%s), want %d (%s)",
				tc.age, got, resultAgeLabels[got], tc.want, resultAgeLabels[tc.want])
		}
	}

	c := newResultCache(1)
	c.put(fpEntry(0))
	// Backdate the entry, then hit it: the hit lands in lt_1m.
	c.idx["map:0"].Value.(*resultNode).created = time.Now().Add(-30 * time.Second)
	c.get("map:0")
	// A second insert evicts the backdated entry: eviction in lt_1m
	// too... except the fresh-insert guard never evicts the MRU of a
	// 1-entry cache, so grow to 2 residents first.
	c = newResultCache(2)
	c.put(fpEntry(0))
	c.idx["map:0"].Value.(*resultNode).created = time.Now().Add(-30 * time.Second)
	c.put(fpEntry(1))
	c.put(fpEntry(2)) // evicts the backdated map:0

	hits, evictions := c.byAge()
	if len(hits) != resultAgeBuckets || len(evictions) != resultAgeBuckets {
		t.Fatalf("byAge sizes %d/%d, want %d", len(hits), len(evictions), resultAgeBuckets)
	}
	if evictions["lt_1m"] != 1 {
		t.Fatalf("evictions by age = %v, want lt_1m=1", evictions)
	}
	if _, ok := c.idx["map:0"]; ok {
		t.Fatal("backdated cold entry survived; wrong victim")
	}
}

// TestStatusExportsRetentionCounters: the /statusz payload carries the
// by-age maps and the intern-table counters with every label present.
func TestStatusExportsRetentionCounters(t *testing.T) {
	s := New(Config{})
	s.results.put(fpEntry(0))
	s.results.get("map:0")
	st := s.Status()
	for _, l := range resultAgeLabels {
		if _, ok := st.ResultHitsByAge[l]; !ok {
			t.Fatalf("result_hits_by_age missing bucket %q", l)
		}
		if _, ok := st.ResultEvictionsByAge[l]; !ok {
			t.Fatalf("result_evictions_by_age missing bucket %q", l)
		}
	}
	if st.ResultHitsByAge["lt_1s"] != 1 {
		t.Fatalf("hits_by_age[lt_1s] = %d, want 1", st.ResultHitsByAge["lt_1s"])
	}
	if st.InternCapacity == 0 {
		t.Fatal("intern capacity missing from /statusz")
	}
	if st.ProtocolRequests[protoJSONLabel] != 0 || st.ProtocolRequests[protoBinaryLabel] != 0 {
		t.Fatalf("protocol_requests = %v, want zeros on a fresh server", st.ProtocolRequests)
	}
}

package service

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// buildInfo reports the running binary's Go version and VCS revision,
// read once from the module build info. Binaries built outside a
// checkout (go test, stripped builds) report "unknown" for the
// revision rather than omitting the series.
var buildInfo = sync.OnceValues(func() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return
})

package service

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4): the service's counters, the engine- and
// result-cache accounting, per-endpoint request-duration histograms
// and per-stage solve-duration histograms. Everything is assembled
// from the same atomics /statusz reads — scrapes never take a lock a
// solve could be holding.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	s.writeMetrics(&b)
	w.Write([]byte(b.String()))
}

// fmtFloat renders a float the exposition format accepts, shortest
// round-trip form.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeMetrics renders the full scrape payload.
func (s *Server) writeMetrics(b *strings.Builder) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
	}

	// Request counters, one labeled series per solving endpoint.
	fmt.Fprintf(b, "# HELP mapd_requests_total Requests received per endpoint.\n# TYPE mapd_requests_total counter\n")
	for _, e := range solveEndpoints {
		var v int64
		switch e {
		case endpointMap:
			v = s.st.requests.Load()
		case endpointBatch:
			v = s.st.batchRequests.Load()
		case endpointPortfolio:
			v = s.st.portfolioRequests.Load()
		case endpointRemap:
			v = s.st.remapRequests.Load()
		}
		fmt.Fprintf(b, "mapd_requests_total{endpoint=%q} %d\n", e, v)
	}
	// Per-protocol split of the same traffic: JSON envelopes vs binary
	// frames.
	fmt.Fprintf(b, "# HELP mapd_protocol_requests_total Solving requests received per wire protocol.\n# TYPE mapd_protocol_requests_total counter\n")
	fmt.Fprintf(b, "mapd_protocol_requests_total{protocol=%q} %d\n", protoJSONLabel, s.st.protoJSON.Load())
	fmt.Fprintf(b, "mapd_protocol_requests_total{protocol=%q} %d\n", protoBinaryLabel, s.st.protoBinary.Load())
	counter("mapd_errors_total", "Requests that failed (bad input, solve error, timeout).", s.st.errors.Load())
	counter("mapd_timeouts_total", "Requests that exceeded their solve deadline.", s.st.timeouts.Load())
	gauge("mapd_inflight_requests", "Requests currently being served.", strconv.FormatInt(s.st.inflight.Load(), 10))
	gauge("mapd_uptime_seconds", "Seconds since the server started.", fmtFloat(time.Since(s.start).Seconds()))

	// Portfolio and remap accounting.
	counter("mapd_portfolio_candidates_total", "Candidates solved on behalf of /v1/portfolio requests.", s.st.portfolioCandidates.Load())
	counter("mapd_portfolio_skipped_total", "Portfolio candidates cut off by their deadline.", s.st.portfolioSkipped.Load())
	counter("mapd_remap_warm_total", "Remaps the warm-started path won.", s.st.remapWarm.Load())
	counter("mapd_remap_fallbacks_total", "Remaps whose quality fence fell back to a cold solve.", s.st.remapFallbacks.Load())
	counter("mapd_remap_pairs_reused_total", "Route-cache pairs that survived allocation deltas verbatim.", s.st.remapPairsReused.Load())
	counter("mapd_remap_pairs_total", "Route-cache pairs examined across allocation deltas.", s.st.remapPairsTotal.Load())

	// Engine cache (topology+allocation keyed route state).
	hits, misses, evictions := s.cache.Stats()
	counter("mapd_engine_cache_hits_total", "Engine cache hits (route state reused).", hits)
	counter("mapd_engine_cache_misses_total", "Engine cache misses (route state rebuilt).", misses)
	counter("mapd_engine_cache_evictions_total", "Engines evicted from the LRU.", evictions)
	gauge("mapd_engine_cache_entries", "Engines currently cached.", strconv.Itoa(s.cache.Len()))

	// Result cache (fingerprints /v1/remap resolves).
	rhits, rmisses, revictions := s.results.stats()
	counter("mapd_result_cache_hits_total", "Result-cache fingerprint lookups that resolved.", rhits)
	counter("mapd_result_cache_misses_total", "Result-cache fingerprint lookups that missed (unknown or evicted).", rmisses)
	counter("mapd_result_cache_evictions_total", "Results evicted from the LRU.", revictions)
	gauge("mapd_result_cache_entries", "Results currently cached.", strconv.Itoa(s.results.len()))
	mhits, mmisses := s.results.memoStats()
	counter("mapd_solve_memo_hits_total", "Map requests answered from the result cache without solving (identical repeat request).", mhits)
	counter("mapd_solve_memo_misses_total", "Map requests that solved (no identical prior request cached).", mmisses)

	// Intern table (binary-protocol 16-byte section references).
	ihits, imisses, ievictions, iresends := s.intern.stats()
	counter("mapd_intern_hits_total", "Interned section references that resolved.", ihits)
	counter("mapd_intern_misses_total", "Interned section references the table could not resolve (client must resend).", imisses)
	counter("mapd_intern_evictions_total", "Sections evicted from the intern table.", ievictions)
	counter("mapd_intern_resends_total", "Full sections resent after a reported intern miss.", iresends)
	gauge("mapd_intern_entries", "Sections currently interned.", strconv.Itoa(s.intern.len()))

	writeHistogramVec(b, "mapd_request_duration_seconds",
		"Wall time of completed requests by endpoint.", "endpoint", s.st.reqHist)
	writeHistogramVec(b, "mapd_stage_duration_seconds",
		"Wall time of solve pipeline stages (grouping, coarsening, mapping, refinement, balance, metrics).", "stage", s.st.stageHist)

	// Heterogeneous-solve observability: the makespan each completed
	// solve achieved (bottleneck-node finish time, load/speed units)
	// and the load imbalance of the most recent one.
	writeHistogram(b, "mapd_solve_makespan",
		"Makespan (bottleneck-node finish time, load/speed units) of completed solves.", s.st.makespanHist)
	gauge("mapd_load_imbalance", "Load imbalance (makespan over mean node finish time) of the most recent solve.",
		fmtFloat(math.Float64frombits(s.st.lastImbalance.Load())))

	// Build identity, the standard *_build_info shape.
	gov, rev := buildInfo()
	fmt.Fprintf(b, "# HELP mapd_build_info Build identity of the running binary.\n# TYPE mapd_build_info gauge\nmapd_build_info{go_version=%q,revision=%q} 1\n", gov, rev)
}

// writeHistogramVec renders one labeled histogram family with
// cumulative buckets, sorted labels for deterministic scrapes.
func writeHistogramVec(b *strings.Builder, name, help, label string, v *histogramVec) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, l := range v.labels() {
		h := v.get(l)
		var cum int64
		for i, ub := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", name, label, l, fmtFloat(ub), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, l, cum)
		fmt.Fprintf(b, "%s_sum{%s=%q} %s\n", name, label, l, fmtFloat(float64(h.sumMicros.Load())/1e6))
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", name, label, l, h.count.Load())
	}
}

// writeHistogram renders one unlabeled histogram family with
// cumulative buckets.
func writeHistogram(b *strings.Builder, name, help string, h *histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, fmtFloat(ub), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, fmtFloat(float64(h.sumMicros.Load())/1e6))
	fmt.Fprintf(b, "%s_count %d\n", name, h.count.Load())
}

package service_test

// Observability tests: the /metrics scrape (exposition-format golden
// structure, histogram invariants), per-endpoint /statusz latency,
// result-cache counters, and the wire-level trace opt-in.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/service"
)

// mapBody is the request every observability test solves: small and
// fully deterministic, so the stage label set on /metrics is pinned.
func mapBody(extra string) string {
	return fmt.Sprintf(`{
		"topology":   {"kind": "torus", "dims": [6,6,6]},
		"allocation": {"sparse_nodes": 8, "seed": 1},
		"tasks":      {"n": 64, "edges": [%s]},
		"mapper":     "UWH"%s}`, ringEdges(64), extra)
}

func ringEdges(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d,10]", i, (i+1)%n)
	}
	return sb.String()
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestMetricsExposition is the /metrics golden test: after one /v1/map
// solve the scrape must carry exactly the advertised metric families
// in order, declare the exposition content type, and satisfy the
// histogram invariants (monotone cumulative buckets, +Inf == count).
func TestMetricsExposition(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}).Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/map", mapBody(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want text exposition format 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Golden family list, in scrape order. Add new metrics here when
	// the server grows them — the test pins the set both ways.
	wantFamilies := []string{
		"mapd_requests_total",
		"mapd_protocol_requests_total",
		"mapd_errors_total",
		"mapd_timeouts_total",
		"mapd_inflight_requests",
		"mapd_uptime_seconds",
		"mapd_portfolio_candidates_total",
		"mapd_portfolio_skipped_total",
		"mapd_remap_warm_total",
		"mapd_remap_fallbacks_total",
		"mapd_remap_pairs_reused_total",
		"mapd_remap_pairs_total",
		"mapd_engine_cache_hits_total",
		"mapd_engine_cache_misses_total",
		"mapd_engine_cache_evictions_total",
		"mapd_engine_cache_entries",
		"mapd_result_cache_hits_total",
		"mapd_result_cache_misses_total",
		"mapd_result_cache_evictions_total",
		"mapd_result_cache_entries",
		"mapd_solve_memo_hits_total",
		"mapd_solve_memo_misses_total",
		"mapd_intern_hits_total",
		"mapd_intern_misses_total",
		"mapd_intern_evictions_total",
		"mapd_intern_resends_total",
		"mapd_intern_entries",
		"mapd_request_duration_seconds",
		"mapd_stage_duration_seconds",
		"mapd_solve_makespan",
		"mapd_load_imbalance",
		"mapd_build_info",
	}
	var gotFamilies []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			gotFamilies = append(gotFamilies, strings.Fields(line)[2])
		}
	}
	if strings.Join(gotFamilies, ",") != strings.Join(wantFamilies, ",") {
		t.Fatalf("metric families:\n got  %v\n want %v", gotFamilies, wantFamilies)
	}

	// Every HELP has a TYPE and every sample line parses as
	// name{labels} value with a finite numeric value.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
	}

	mustContain := []string{
		`mapd_requests_total{endpoint="map"} 1`,
		`mapd_protocol_requests_total{protocol="json"} 1`,
		`mapd_protocol_requests_total{protocol="binary"} 0`,
		"mapd_intern_entries 0",
		`mapd_requests_total{endpoint="batch"} 0`,
		`mapd_requests_total{endpoint="portfolio"} 0`,
		`mapd_requests_total{endpoint="remap"} 0`,
		"mapd_errors_total 0",
		"mapd_engine_cache_misses_total 1",
		"mapd_result_cache_entries 1",
		`mapd_request_duration_seconds_count{endpoint="map"} 1`,
		// The solved coarse graph reports a makespan, so one solve
		// lands in the makespan histogram and sets the gauge.
		"mapd_solve_makespan_count 1",
		"mapd_load_imbalance ",
		`mapd_build_info{go_version="go`,
	}
	for _, want := range mustContain {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q", want)
		}
	}

	// One untraced-by-the-client map solve still feeds the per-stage
	// histograms (the server traces for itself): exactly the four
	// always-on stages of a plain solve.
	for _, stage := range []string{"group", "coarsen", "map", "metrics"} {
		if !strings.Contains(body, fmt.Sprintf(`mapd_stage_duration_seconds_count{stage=%q} 1`, stage)) {
			t.Fatalf("scrape missing stage histogram for %q", stage)
		}
	}

	// Histogram invariant: cumulative buckets are monotone and the
	// +Inf bucket equals the count.
	checkHistogram(t, body, `mapd_request_duration_seconds`, `endpoint="map"`)
	checkHistogram(t, body, `mapd_stage_duration_seconds`, `stage="map"`)
}

// checkHistogram verifies monotone cumulative buckets and
// +Inf == count for one labeled series.
func checkHistogram(t *testing.T, body, name, label string) {
	t.Helper()
	var last, inf int64 = -1, -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"_bucket{"+label+",") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if v < last {
			t.Fatalf("%s{%s}: bucket counts not monotone at %q", name, label, line)
		}
		last = v
		if strings.Contains(line, `le="+Inf"`) {
			inf = v
		}
	}
	if inf < 0 {
		t.Fatalf("%s{%s}: no +Inf bucket", name, label)
	}
	countLine := name + "_count{" + label + "} "
	i := strings.Index(body, countLine)
	if i < 0 {
		t.Fatalf("%s{%s}: no count series", name, label)
	}
	rest := body[i+len(countLine):]
	count, err := strconv.ParseInt(rest[:strings.IndexByte(rest, '\n')], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if inf != count {
		t.Fatalf("%s{%s}: +Inf bucket %d != count %d", name, label, inf, count)
	}
}

// TestMapTraceOnWire: the stage breakdown rides the response only when
// the request opts in, and names the pipeline stages in order.
func TestMapTraceOnWire(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{}).Handler())
	defer ts.Close()

	var plain struct {
		Trace []json.RawMessage `json:"trace"`
	}
	resp := postJSON(t, ts.URL+"/v1/map", mapBody(""))
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if plain.Trace != nil {
		t.Fatalf("untraced request got %d trace stages", len(plain.Trace))
	}

	var traced struct {
		Trace []struct {
			Name  string  `json:"name"`
			DurMS float64 `json:"dur_ms"`
		} `json:"trace"`
	}
	resp = postJSON(t, ts.URL+"/v1/map", mapBody(`, "trace": true`))
	if err := json.NewDecoder(resp.Body).Decode(&traced); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var names []string
	for _, st := range traced.Trace {
		names = append(names, st.Name)
	}
	if strings.Join(names, ",") != "group,coarsen,map,metrics" {
		t.Fatalf("traced stages %v, want [group coarsen map metrics]", names)
	}
}

// TestStatuszObservability: per-endpoint latency blocks, result-cache
// counters and build identity on /statusz.
func TestStatuszObservability(t *testing.T) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/map", mapBody(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// An unknown fingerprint is a result-cache miss (and a 404).
	resp = postJSON(t, ts.URL+"/v1/remap", `{"fingerprint":"map:nope","delta":{"remove":[1]}}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remap with bogus fingerprint: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	st := srv.Status()
	lat, ok := st.EndpointLatency["map"]
	if !ok || lat.Samples != 1 {
		t.Fatalf("endpoint_latency[map] = %+v, want 1 sample", lat)
	}
	for _, e := range []string{"batch", "portfolio", "remap"} {
		if st.EndpointLatency[e].Samples != 0 {
			t.Fatalf("endpoint %s has %d samples, want 0", e, st.EndpointLatency[e].Samples)
		}
	}
	if st.LatencySamples != 1 {
		t.Fatalf("combined latency samples = %d, want 1", st.LatencySamples)
	}
	if st.ResultMisses != 1 || st.ResultHits != 0 || st.ResultEntries != 1 {
		t.Fatalf("result cache hits=%d misses=%d entries=%d, want 0/1/1",
			st.ResultHits, st.ResultMisses, st.ResultEntries)
	}
	if st.GoVersion == "" || st.VCSRevision == "" {
		t.Fatalf("build identity missing: go=%q rev=%q", st.GoVersion, st.VCSRevision)
	}
}

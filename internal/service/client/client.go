// Package client is the Go client of the mapd mapping service. It
// speaks the wire protocol of package service over HTTP, or — for
// embedding the service in a harness or test without a socket —
// directly against the service's http.Handler, byte-identical to the
// wire path.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/registry"
	"repro/internal/service"
)

// Client calls a mapd server. By default it negotiates the wire
// protocol transparently: the first solving call tries the binary
// frame protocol (POST /v2/*) and pins whichever the server speaks,
// falling back to the JSON envelope (/v1/*) against servers that
// predate the frames. See WithProtocol to force either.
type Client struct {
	base string
	hc   *http.Client

	proto  Protocol     // configured (ProtoAuto by default)
	pinned atomic.Int32 // negotiated: pinNone / pinJSON / pinBinary
	memo   sectionMemo  // client-side intern memo (binary protocol)
}

// New returns a client for a server at baseURL (e.g.
// "http://localhost:8080"). hc may be nil for http.DefaultClient.
func New(baseURL string, hc *http.Client, opts ...Option) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: baseURL, hc: hc}
	for _, o := range opts {
		o(c)
	}
	return c
}

// InProcess returns a client that dispatches straight into the
// handler — same codecs, same routes, no socket. Use it to embed the
// service in the experiment harness or in tests.
func InProcess(h http.Handler, opts ...Option) *Client {
	return New("http://mapd.inprocess", &http.Client{Transport: handlerTransport{h: h}}, opts...)
}

// handlerTransport adapts an http.Handler to a RoundTripper.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	rec := &responseRecorder{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rec, r)
	return &http.Response{
		Status:        http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         r.Proto,
		ProtoMajor:    r.ProtoMajor,
		ProtoMinor:    r.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(&rec.body),
		ContentLength: int64(rec.body.Len()),
		Request:       r,
	}, nil
}

// responseRecorder is the minimal in-memory http.ResponseWriter the
// in-process transport needs.
type responseRecorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
	wrote  bool
}

func (r *responseRecorder) Header() http.Header { return r.header }
func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.body.Write(p)
}
func (r *responseRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

// do posts (or gets) a JSON payload and decodes the response into
// out, turning non-2xx payloads into errors.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e service.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("mapd: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("mapd: HTTP %d on %s", resp.StatusCode, path)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Map runs one mapping job (POST /v2/map when the server speaks the
// binary protocol, POST /v1/map otherwise).
func (c *Client) Map(ctx context.Context, req service.MapRequest) (*service.MapResponse, error) {
	if c.useBinary() {
		out, err := c.mapBinary(ctx, req)
		if err == nil {
			c.pinned.CompareAndSwap(pinNone, pinBinary)
			return out, nil
		}
		if !c.binFallback(err) {
			return nil, err
		}
	}
	var out service.MapResponse
	if err := c.do(ctx, http.MethodPost, "/v1/map", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MapBatch runs several mapper runs against one shared engine
// (POST /v2/map/batch, falling back to /v1/map/batch).
func (c *Client) MapBatch(ctx context.Context, req service.BatchRequest) (*service.BatchResponse, error) {
	if c.useBinary() {
		out, err := c.batchBinary(ctx, req)
		if err == nil {
			c.pinned.CompareAndSwap(pinNone, pinBinary)
			return out, nil
		}
		if !c.binFallback(err) {
			return nil, err
		}
	}
	var out service.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/map/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Portfolio races a candidate set against one shared engine toward a
// declared objective and returns the winner plus the per-candidate
// leaderboard (POST /v1/portfolio).
func (c *Client) Portfolio(ctx context.Context, req service.PortfolioRequest) (*service.PortfolioResponse, error) {
	var out service.PortfolioResponse
	if err := c.do(ctx, http.MethodPost, "/v1/portfolio", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Remap incrementally remaps a cached result — referenced by the
// fingerprint an earlier Map or Remap response returned — onto a
// changed allocation (POST /v1/remap). The response carries a fresh
// fingerprint, so allocation deltas chain without re-sending the task
// graph.
func (c *Client) Remap(ctx context.Context, req service.RemapRequest) (*service.RemapResponse, error) {
	if c.useBinary() {
		out, err := c.remapBinary(ctx, req)
		if err == nil {
			c.pinned.CompareAndSwap(pinNone, pinBinary)
			return out, nil
		}
		if !c.binFallback(err) {
			return nil, err
		}
	}
	var out service.RemapResponse
	if err := c.do(ctx, http.MethodPost, "/v1/remap", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Mappers lists the registered mappers with their capability flags
// (GET /v1/mappers).
func (c *Client) Mappers(ctx context.Context) ([]registry.Info, error) {
	var out service.MappersResponse
	if err := c.do(ctx, http.MethodGet, "/v1/mappers", nil, &out); err != nil {
		return nil, err
	}
	return out.Mappers, nil
}

// Status snapshots the server's live counters (GET /statusz).
func (c *Client) Status(ctx context.Context) (*service.Status, error) {
	var out service.Status
	if err := c.do(ctx, http.MethodGet, "/statusz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

package client

// The binary protocol side of the client: transparent negotiation
// (try /v2 frames, fall back to /v1 JSON against servers that don't
// speak them), a client-side intern memo so warm requests send
// 16-byte section references instead of full bodies, and the
// miss-resend recovery loop — a server that lost an interned section
// answers 404 with a bitmask, the client resends those sections in
// full, once.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	topomap "repro"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/wirebin"
)

// Protocol selects the client's wire protocol.
type Protocol int

const (
	// ProtoAuto (the default) tries the binary protocol and pins
	// whichever the server speaks — one extra round-trip against an
	// old server, zero against a current one.
	ProtoAuto Protocol = iota
	// ProtoJSON forces the /v1 JSON envelope.
	ProtoJSON
	// ProtoBinary forces /v2 frames; a server without them is an
	// error.
	ProtoBinary
)

// Option configures a Client.
type Option func(*Client)

// WithProtocol pins the client's wire protocol.
func WithProtocol(p Protocol) Option {
	return func(c *Client) { c.proto = p }
}

// pinned states of the auto negotiation.
const (
	pinNone int32 = iota
	pinJSON
	pinBinary
)

// useBinary reports whether the next request should try the binary
// protocol.
func (c *Client) useBinary() bool {
	switch c.proto {
	case ProtoJSON:
		return false
	case ProtoBinary:
		return true
	}
	return c.pinned.Load() != pinJSON
}

// memoEntry caches one encoded section: its intern fingerprint, the
// body bytes (kept for miss recovery), and whether a response has
// confirmed the server interned it — only then does the client dare
// send the bare reference.
type memoEntry struct {
	id   [wirebin.FingerprintLen]byte
	body []byte
	// known flips outside the memo lock (confirm runs after the
	// response while other goroutines are already building requests),
	// so it is atomic; id and body are write-once before publication.
	known atomic.Bool
}

// sectionMemo is the client-side twin of the server's intern table,
// keyed by cheap spec identities (no body encode needed to look up).
type sectionMemo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

// memoCap bounds the memo; past it the map resets wholesale (a client
// cycling through hundreds of distinct specs gets no interning
// benefit anyway).
const memoCap = 256

func (m *sectionMemo) get(key string) (*memoEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	return e, ok
}

func (m *sectionMemo) put(key string, e *memoEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil || len(m.entries) >= memoCap {
		m.entries = make(map[string]*memoEntry)
	}
	m.entries[key] = e
}

// tasksMemoKey is the cheap identity of a task-graph spec: an FNV-1a
// hash over the raw edge list. It only keys the client's own memo
// (the wire fingerprint is over the canonical encoded body), so a
// hash collision costs a wrong ref at worst — which the server's
// content-addressed table turns into a different spec's solve only if
// the full bodies collided too, i.e. never in practice for 64+128
// bits.
func tasksMemoKey(ts service.TaskGraphSpec) string {
	h := wirebin.Hash64Init
	h = h.U64(uint64(ts.N))
	h = h.U64(uint64(len(ts.Edges)))
	for _, e := range ts.Edges {
		h = h.U64(uint64(e[0]))
		h = h.U64(uint64(e[1]))
		h = h.U64(uint64(e[2]))
	}
	h = h.U64(uint64(len(ts.Loads)))
	for _, l := range ts.Loads {
		h = h.U64(uint64(l))
	}
	h = h.U64(uint64(len(ts.Coords)))
	for _, row := range ts.Coords {
		h = h.U64(uint64(len(row)))
		for _, c := range row {
			h = h.U64(math.Float64bits(c))
		}
	}
	return "g|" + strconv.FormatUint(uint64(h), 16)
}

// section prepares one request section: a bare reference when the
// memo says the server has it, the full body otherwise. encode runs
// only on first sight of a spec; resend forces the full body in
// resend mode (after a reported miss).
func (c *Client) section(key string, resend bool, encode func(*wirebin.Writer) error) (wirebin.Section, string, error) {
	if e, ok := c.memo.get(key); ok {
		switch {
		case resend:
			return wirebin.ResendSection(e.body), key, nil
		case e.known.Load():
			return wirebin.RefSection(e.id), key, nil
		default:
			return wirebin.FullSection(e.body), key, nil
		}
	}
	w := wirebin.GetWriter()
	defer wirebin.PutWriter(w)
	if err := encode(w); err != nil {
		return wirebin.Section{}, "", err
	}
	body := append([]byte(nil), w.Bytes()...)
	e := &memoEntry{id: wirebin.Fingerprint(body), body: body}
	c.memo.put(key, e)
	return wirebin.FullSection(body), key, nil
}

// confirm marks memo entries as server-known (after a non-miss
// response) or unknown (the sections a miss frame flagged).
func (c *Client) confirm(keys []string, known bool) {
	for _, k := range keys {
		if e, ok := c.memo.get(k); ok {
			e.known.Store(known)
		}
	}
}

// respBufPool recycles response-body buffers.
var respBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 16<<10)
	return &b
}}

// errNotBinary marks a response that is not a wirebin frame — an old
// server or a proxy. Auto-negotiating clients pin JSON and retry.
var errNotBinary = fmt.Errorf("mapd: server does not speak the binary protocol")

// doBinary posts one frame and returns the response frame's message
// type and payload inside a pooled buffer (release it when done with
// every decoded view). An Error frame with a miss bitmask comes back
// as *missError so callers can resend.
func (c *Client) doBinary(ctx context.Context, path string, fw *wirebin.Writer) (msgType byte, payload []byte, release func(), err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(fw.Bytes()))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", wirebin.ContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Type") != wirebin.ContentType {
		io.Copy(io.Discard, resp.Body)
		return 0, nil, nil, errNotBinary
	}
	bp := respBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, rerr := resp.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			*bp = buf
			respBufPool.Put(bp)
			return 0, nil, nil, rerr
		}
	}
	*bp = buf
	release = func() { respBufPool.Put(bp) }
	msgType, payload, err = wirebin.DecodeHeader(buf, 64<<20)
	if err != nil {
		release()
		return 0, nil, nil, err
	}
	if msgType == wirebin.MsgError {
		ef, derr := wirebin.DecodeError(payload)
		release()
		if derr != nil {
			return 0, nil, nil, derr
		}
		if ef.Missing != 0 {
			return 0, nil, nil, &missError{missing: ef.Missing, msg: ef.Message}
		}
		return 0, nil, nil, fmt.Errorf("mapd: %s (HTTP %d)", ef.Message, ef.Status)
	}
	return msgType, payload, release, nil
}

// missError is a 404 intern-miss frame: the bitmask names the
// sections to resend in full.
type missError struct {
	missing byte
	msg     string
}

func (e *missError) Error() string { return "mapd: intern miss: " + e.msg }

// mapRespFromBin lifts a decoded result frame onto the JSON wire's
// response struct, so callers see one shape regardless of protocol.
func mapRespFromBin(m *wirebin.MapResp) (*service.MapResponse, error) {
	out := &service.MapResponse{
		Mapper:     m.Mapper,
		GroupOf:    m.GroupOf,
		NodeOf:     m.NodeOf,
		AllocNodes: m.AllocNodes,
		Metrics: service.Metrics{
			TH: m.Metrics.TH, WH: m.Metrics.WH, MMC: m.Metrics.MMC,
			MC: m.Metrics.MC, AMC: m.Metrics.AMC, AC: m.Metrics.AC,
			ICV: m.Metrics.ICV, ICM: m.Metrics.ICM, MNRV: m.Metrics.MNRV, MNRM: m.Metrics.MNRM,
			UsedLinks: int(m.Metrics.UsedLinks),
			Makespan:  m.Metrics.Makespan, LoadImbalance: m.Metrics.LoadImbalance,
		},
		FineWHGain:  m.FineWHGain,
		FineVolGain: m.FineVolGain,
		Rankfile:    string(m.Rankfile),
		CacheHit:    m.Flags&wirebin.RespCacheHit != 0,
		ElapsedMS:   m.ElapsedMS,
		Fingerprint: m.Fingerprint,
	}
	if len(m.TraceJSON) > 0 {
		var stages []trace.Stage
		if err := json.Unmarshal(m.TraceJSON, &stages); err != nil {
			return nil, fmt.Errorf("mapd: trace blob: %w", err)
		}
		out.Trace = stages
	}
	return out, nil
}

// solveFlags folds the request's solve options into the frame flag
// word.
func solveFlags(refine, fineRefine, traced, rankfile, balance bool) uint16 {
	var f uint16
	if refine {
		f |= wirebin.FlagRefine
	}
	if fineRefine {
		f |= wirebin.FlagFineRefine
	}
	if traced {
		f |= wirebin.FlagTrace
	}
	if rankfile {
		f |= wirebin.FlagRankfile
	}
	if balance {
		f |= wirebin.FlagBalance
	}
	return f
}

// mapBinary runs one Map over the binary protocol, driving the
// miss-resend recovery loop (at most one resend round).
func (c *Client) mapBinary(ctx context.Context, req service.MapRequest) (*service.MapResponse, error) {
	var resend byte
	for attempt := 0; ; attempt++ {
		topoSec, topoKey, err := c.section("t|"+mustTopoKey(req.Topology), resend&wirebin.SecTopology != 0,
			func(w *wirebin.Writer) error { return service.AppendTopologySection(w, req.Topology) })
		if err != nil {
			return nil, err
		}
		allocSec, allocKey, err := c.section("a|"+mustAllocKey(req.Allocation), resend&wirebin.SecAllocation != 0,
			func(w *wirebin.Writer) error { return service.AppendAllocationSection(w, req.Allocation) })
		if err != nil {
			return nil, err
		}
		tasksSec, tasksKey, err := c.section(tasksMemoKey(req.Tasks), resend&wirebin.SecTasks != 0,
			func(w *wirebin.Writer) error { return service.AppendTasksSection(w, req.Tasks) })
		if err != nil {
			return nil, err
		}
		keys := []string{topoKey, allocKey, tasksKey}

		fw := wirebin.GetWriter()
		wirebin.EncodeMapReq(fw, &wirebin.MapReq{
			Mapper:      req.Mapper,
			Seed:        req.Seed,
			Flags:       solveFlags(req.Refine, req.FineRefine, req.Trace, req.Rankfile, req.Balance),
			TimeoutMS:   req.TimeoutMS,
			Parallelism: uint32(req.Parallelism),
			Topo:        topoSec,
			Alloc:       allocSec,
			Tasks:       tasksSec,
		})
		msgType, payload, release, err := c.doBinary(ctx, "/v2/map", fw)
		wirebin.PutWriter(fw)
		if miss, retry := c.handleMiss(err, keys, &resend, attempt); retry {
			continue
		} else if miss != nil {
			return nil, miss
		}
		if err != nil {
			return nil, err
		}
		defer release()
		if msgType != wirebin.MsgMapResponse {
			return nil, fmt.Errorf("mapd: unexpected frame type %d", msgType)
		}
		m, err := wirebin.DecodeMapResp(payload)
		if err != nil {
			return nil, err
		}
		c.confirm(keys, true)
		return mapRespFromBin(m)
	}
}

// handleMiss interprets a doBinary error: on the first intern miss it
// flags the sections for resend and asks the caller to retry; a
// second miss (or any other error) is final.
func (c *Client) handleMiss(err error, keys []string, resend *byte, attempt int) (final error, retry bool) {
	me, ok := err.(*missError)
	if !ok {
		return nil, false
	}
	if attempt > 0 {
		return fmt.Errorf("mapd: intern miss persisted after resend: %s", me.msg), false
	}
	*resend = me.missing
	// The server forgot them; stop sending references until the
	// resend is confirmed.
	var lost []string
	if me.missing&wirebin.SecTopology != 0 {
		lost = append(lost, keys[0])
	}
	if me.missing&wirebin.SecAllocation != 0 {
		lost = append(lost, keys[1])
	}
	if me.missing&wirebin.SecTasks != 0 {
		lost = append(lost, keys[2])
	}
	c.confirm(lost, false)
	return nil, true
}

// batchBinary runs one MapBatch over the binary protocol.
func (c *Client) batchBinary(ctx context.Context, req service.BatchRequest) (*service.BatchResponse, error) {
	var resend byte
	for attempt := 0; ; attempt++ {
		topoSec, topoKey, err := c.section("t|"+mustTopoKey(req.Topology), resend&wirebin.SecTopology != 0,
			func(w *wirebin.Writer) error { return service.AppendTopologySection(w, req.Topology) })
		if err != nil {
			return nil, err
		}
		allocSec, allocKey, err := c.section("a|"+mustAllocKey(req.Allocation), resend&wirebin.SecAllocation != 0,
			func(w *wirebin.Writer) error { return service.AppendAllocationSection(w, req.Allocation) })
		if err != nil {
			return nil, err
		}
		tasksSec, tasksKey, err := c.section(tasksMemoKey(req.Tasks), resend&wirebin.SecTasks != 0,
			func(w *wirebin.Writer) error { return service.AppendTasksSection(w, req.Tasks) })
		if err != nil {
			return nil, err
		}
		keys := []string{topoKey, allocKey, tasksKey}

		items := make([]wirebin.BatchItem, len(req.Requests))
		for i, it := range req.Requests {
			items[i] = wirebin.BatchItem{
				Mapper: it.Mapper,
				Seed:   it.Seed,
				Flags:  solveFlags(it.Refine, it.FineRefine, it.Trace, false, it.Balance),
			}
		}
		fw := wirebin.GetWriter()
		wirebin.EncodeBatchReq(fw, &wirebin.BatchReq{
			TimeoutMS:   req.TimeoutMS,
			Parallelism: uint32(req.Parallelism),
			Topo:        topoSec,
			Alloc:       allocSec,
			Tasks:       tasksSec,
			Items:       items,
		})
		msgType, payload, release, err := c.doBinary(ctx, "/v2/map/batch", fw)
		wirebin.PutWriter(fw)
		if miss, retry := c.handleMiss(err, keys, &resend, attempt); retry {
			continue
		} else if miss != nil {
			return nil, miss
		}
		if err != nil {
			return nil, err
		}
		defer release()
		if msgType != wirebin.MsgBatchResponse {
			return nil, fmt.Errorf("mapd: unexpected frame type %d", msgType)
		}
		bin, err := wirebin.DecodeBatchResp(payload)
		if err != nil {
			return nil, err
		}
		c.confirm(keys, true)
		out := &service.BatchResponse{
			Results:   make([]service.MapResponse, len(bin.Results)),
			CacheHit:  bin.Flags&wirebin.RespCacheHit != 0,
			ElapsedMS: bin.ElapsedMS,
		}
		for i := range bin.Results {
			r, err := mapRespFromBin(&bin.Results[i])
			if err != nil {
				return nil, err
			}
			out.Results[i] = *r
		}
		return out, nil
	}
}

// remapBinary runs one Remap over the binary protocol. No sections
// travel — the previous result is a fingerprint, the delta is plain
// arrays — so there is no miss-resend loop; an unknown result
// fingerprint surfaces as the same HTTP 404 error the JSON path
// returns.
func (c *Client) remapBinary(ctx context.Context, req service.RemapRequest) (*service.RemapResponse, error) {
	// The frame deliberately has no slots for the server-controlled
	// solve fields; reject them with the server's own words instead of
	// silently dropping what the JSON path would 400.
	if req.Solve.Workers != 0 {
		return nil, fmt.Errorf("mapd: remap: solve.workers is server-controlled, use the parallelism field")
	}
	if req.Solve.TimeoutMS != 0 {
		return nil, fmt.Errorf("mapd: remap: solve.timeout_ms is server-controlled, use the request-level timeout_ms field")
	}
	breq := wirebin.RemapReq{
		Fingerprint: req.Fingerprint,
		Mapper:      string(req.Solve.Mapper),
		Seed:        req.Solve.Seed,
		Flags: solveFlags(req.Solve.Refine, req.Solve.FineRefine,
			req.Solve.Trace, req.Rankfile, req.Solve.Balance),
		FenceThreshold: req.FenceThreshold,
		TimeoutMS:      req.TimeoutMS,
		Parallelism:    uint32(req.Parallelism),
		Remove:         req.Delta.Remove,
	}
	for _, nc := range req.Delta.Add {
		breq.Add = append(breq.Add, wirebin.NodeCap{Node: nc.Node, Procs: uint32(nc.Procs)})
	}
	for _, nc := range req.Delta.SetCapacity {
		breq.SetCapacity = append(breq.SetCapacity, wirebin.NodeCap{Node: nc.Node, Procs: uint32(nc.Procs)})
	}
	if !objectiveIsZero(req.Objective) {
		blob, err := json.Marshal(req.Objective)
		if err != nil {
			return nil, err
		}
		breq.Objective = blob
	}
	if req.Solve.Sim != nil {
		blob, err := json.Marshal(req.Solve.Sim)
		if err != nil {
			return nil, err
		}
		breq.Sim = blob
	}
	fw := wirebin.GetWriter()
	wirebin.EncodeRemapReq(fw, &breq)
	msgType, payload, release, err := c.doBinary(ctx, "/v2/remap", fw)
	wirebin.PutWriter(fw)
	if err != nil {
		return nil, err
	}
	defer release()
	if msgType != wirebin.MsgRemapResponse {
		return nil, fmt.Errorf("mapd: unexpected frame type %d", msgType)
	}
	bin, err := wirebin.DecodeRemapResp(payload)
	if err != nil {
		return nil, err
	}
	m, err := mapRespFromBin(&bin.MapResp)
	if err != nil {
		return nil, err
	}
	return &service.RemapResponse{
		MapResponse:   *m,
		Warm:          bin.Flags&wirebin.RespWarm != 0,
		FenceTripped:  bin.Flags&wirebin.RespFenceTripped != 0,
		PrevScore:     bin.PrevScore,
		WarmScore:     bin.WarmScore,
		ColdScore:     bin.ColdScore,
		PairsReused:   int(bin.PairsReused),
		PairsTotal:    int(bin.PairsTotal),
		MigratedTasks: int(bin.MigratedTasks),
	}, nil
}

// objectiveIsZero reports whether an objective is the zero value (in
// which case it stays off the wire, like the JSON path's omitempty).
func objectiveIsZero(o topomap.Objective) bool {
	return o.Minimize == "" && len(o.Terms) == 0
}

// mustTopoKey / mustAllocKey derive the memo identity of a spec: an
// FNV-1a hash over every field, same collision argument as
// tasksMemoKey (the memo maps identity → wire fingerprint; a 64-bit
// collision would have to be matched by a 128-bit body collision to
// misroute a request). Hashing raw fields — not the canonical
// Normalize/Key form — keeps the warm path alloc-free; two spellings
// of one topology just occupy two memo slots. An invalid spec hashes
// like any other: the real error surfaces from the encode (or the
// server), never from the memo.
func mustTopoKey(ts service.TopologySpec) string {
	h := wirebin.Hash64Init
	h = h.Str(ts.Kind)
	h = h.U64(uint64(len(ts.Dims)))
	for _, d := range ts.Dims {
		h = h.U64(uint64(d))
	}
	h = h.U64(uint64(len(ts.BW)))
	for _, bw := range ts.BW {
		h = h.U64(math.Float64bits(bw))
	}
	h = h.U64(uint64(ts.K))
	h = h.U64(math.Float64bits(ts.BWHost))
	h = h.U64(math.Float64bits(ts.Taper))
	h = h.U64(uint64(ts.H))
	h = h.U64(math.Float64bits(ts.BWLocal))
	h = h.U64(math.Float64bits(ts.BWGlobal))
	return strconv.FormatUint(uint64(h), 16)
}

func mustAllocKey(as service.AllocationSpec) string {
	h := wirebin.Hash64Init
	h = h.U64(uint64(len(as.Nodes)))
	for _, n := range as.Nodes {
		h = h.U64(uint64(uint32(n)))
	}
	h = h.U64(uint64(len(as.ProcsPerNode)))
	for _, p := range as.ProcsPerNode {
		h = h.U64(uint64(p))
	}
	h = h.U64(uint64(len(as.Speeds)))
	for _, sp := range as.Speeds {
		h = h.U64(math.Float64bits(sp))
	}
	h = h.U64(uint64(as.SparseNodes))
	h = h.U64(uint64(as.Seed))
	return strconv.FormatUint(uint64(h), 16)
}

// binFallback decides what to do with a binary-path error under auto
// negotiation: pin JSON and retry there when the server doesn't speak
// frames, give up otherwise.
func (c *Client) binFallback(err error) bool {
	if err == errNotBinary {
		if c.proto == ProtoAuto {
			c.pinned.Store(pinJSON)
			return true
		}
	}
	return false
}

package service_test

// Cross-protocol tests of the /v2 binary frame endpoints: a binary
// request must produce the IDENTICAL response a JSON request for the
// same spec does — same placements, metrics, rankfiles and result
// fingerprints, for every registered mapper — plus the intern-table
// flow (full sections → 16-byte references → miss → 404 → resend
// recovery), transparent client negotiation against JSON-only
// servers, and the error surface for malformed frames. `make race`
// runs this whole package under the race detector.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	topomap "repro"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/wirebin"
)

// protoClient builds a fresh server and an in-process client pinned
// to the given protocol.
func protoClient(cfg service.Config, p client.Protocol) (*service.Server, *client.Client) {
	srv := service.New(cfg)
	return srv, client.InProcess(srv.Handler(), client.WithProtocol(p))
}

// scrubMap zeroes the response fields that legitimately differ
// between two servers answering the same request: wall time and the
// stage-timeline timings. Everything else must match bit for bit.
func scrubMap(r *service.MapResponse) {
	r.ElapsedMS = 0
	r.Trace = nil
}

// mapReq is the shared equivalence workload: explicit solve knobs so
// both protocols exercise their full flag words.
func mapReq(spec service.TaskGraphSpec, mapper string) service.MapRequest {
	return service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Mapper:     mapper,
		Seed:       7,
	}
}

// TestBinaryMapEquivalence is the cross-protocol acceptance gate: for
// every registered mapper, a /v2/map frame and a /v1/map JSON
// envelope for the same spec must return identical responses —
// placements, metrics, rankfile text and, critically, the result
// fingerprint (so a remap chain can hop protocols).
func TestBinaryMapEquivalence(t *testing.T) {
	spec, _ := testTasks(64)
	specC, _ := testTasksCoords(64)
	_, cj := protoClient(service.Config{}, client.ProtoJSON)
	_, cb := protoClient(service.Config{}, client.ProtoBinary)

	for _, mp := range topomap.RegisteredMappers() {
		if strings.HasPrefix(string(mp), "TEST-") {
			continue // registered by other tests in this binary
		}
		taskSpec := spec
		if topomap.MapperCapsOf(mp).NeedsCoords {
			taskSpec = specC
		}
		jr, err := cj.Map(context.Background(), mapReq(taskSpec, string(mp)))
		if err != nil {
			t.Fatalf("%s: json: %v", mp, err)
		}
		br, err := cb.Map(context.Background(), mapReq(taskSpec, string(mp)))
		if err != nil {
			t.Fatalf("%s: binary: %v", mp, err)
		}
		if jr.Fingerprint == "" || br.Fingerprint != jr.Fingerprint {
			t.Fatalf("%s: fingerprint diverged: json %q, binary %q", mp, jr.Fingerprint, br.Fingerprint)
		}
		scrubMap(jr)
		scrubMap(br)
		if !reflect.DeepEqual(jr, br) {
			t.Fatalf("%s: responses diverged:\n json   %+v\n binary %+v", mp, jr, br)
		}
	}
}

// TestBinaryBatchEquivalence pins the batch endpoint across
// protocols: same shared-engine semantics, same per-item results in
// request order.
func TestBinaryBatchEquivalence(t *testing.T) {
	spec, _ := testTasks(64)
	_, cj := protoClient(service.Config{}, client.ProtoJSON)
	_, cb := protoClient(service.Config{}, client.ProtoBinary)

	req := service.BatchRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Requests: []service.BatchItem{
			{Mapper: "UWH", Seed: 3},
			{Mapper: "UMC", Seed: 3, Refine: true},
			{Mapper: "UG", Seed: 9},
		},
	}
	jr, err := cj.MapBatch(context.Background(), req)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	br, err := cb.MapBatch(context.Background(), req)
	if err != nil {
		t.Fatalf("binary: %v", err)
	}
	if len(br.Results) != len(jr.Results) {
		t.Fatalf("binary returned %d results, json %d", len(br.Results), len(jr.Results))
	}
	jr.ElapsedMS, br.ElapsedMS = 0, 0
	for i := range jr.Results {
		scrubMap(&jr.Results[i])
		scrubMap(&br.Results[i])
	}
	if !reflect.DeepEqual(jr, br) {
		t.Fatalf("batch responses diverged:\n json   %+v\n binary %+v", jr, br)
	}
}

// TestBinaryRemapEquivalence pins the incremental-remap flow across
// protocols: map, kill a node, remap by fingerprint — identical
// post-delta placements, warm/fence accounting and fresh
// fingerprints on both wires.
func TestBinaryRemapEquivalence(t *testing.T) {
	spec, _ := testTasks(64)
	_, cj := protoClient(service.Config{}, client.ProtoJSON)
	_, cb := protoClient(service.Config{}, client.ProtoBinary)

	remap := func(c *client.Client, label string) *service.RemapResponse {
		t.Helper()
		mapped, err := c.Map(context.Background(), mapReq(spec, "UWH"))
		if err != nil {
			t.Fatalf("%s: map: %v", label, err)
		}
		rr, err := c.Remap(context.Background(), service.RemapRequest{
			Fingerprint: mapped.Fingerprint,
			Delta:       topomap.AllocationDelta{Remove: []int32{mapped.AllocNodes[3]}},
		})
		if err != nil {
			t.Fatalf("%s: remap: %v", label, err)
		}
		return rr
	}
	jr := remap(cj, "json")
	br := remap(cb, "binary")
	if jr.Fingerprint == "" || br.Fingerprint != jr.Fingerprint {
		t.Fatalf("remap fingerprint diverged: json %q, binary %q", jr.Fingerprint, br.Fingerprint)
	}
	scrubMap(&jr.MapResponse)
	scrubMap(&br.MapResponse)
	if !reflect.DeepEqual(jr, br) {
		t.Fatalf("remap responses diverged:\n json   %+v\n binary %+v", jr, br)
	}
}

// TestBinaryRankfileEquivalence pins the rankfile echo across
// protocols on a fully packed allocation (the shape SMP block filling
// can realize): identical MPICH_RANK_ORDER text on both wires.
func TestBinaryRankfileEquivalence(t *testing.T) {
	spec, _ := testTasks(64)
	_, cj := protoClient(service.Config{}, client.ProtoJSON)
	_, cb := protoClient(service.Config{}, client.ProtoBinary)

	req := service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{Nodes: []int32{3, 17, 41, 90}, ProcsPerNode: []int{16}},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       1,
		Rankfile:   true,
	}
	jr, err := cj.Map(context.Background(), req)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	br, err := cb.Map(context.Background(), req)
	if err != nil {
		t.Fatalf("binary: %v", err)
	}
	if jr.Rankfile == "" || br.Rankfile != jr.Rankfile {
		t.Fatalf("rankfile text diverged:\n json   %q\n binary %q", jr.Rankfile, br.Rankfile)
	}
}

// TestBinaryTraceEcho pins the opt-in trace echo across protocols:
// the binary path ships the stage timeline as a JSON blob, and the
// decoded stages must name the same pipeline the JSON path reports.
func TestBinaryTraceEcho(t *testing.T) {
	spec, _ := testTasks(64)
	_, cj := protoClient(service.Config{}, client.ProtoJSON)
	_, cb := protoClient(service.Config{}, client.ProtoBinary)

	req := mapReq(spec, "UWH")
	req.Trace = true
	jr, err := cj.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	br, err := cb.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Trace) == 0 {
		t.Fatal("binary response carries no trace despite the request flag")
	}
	names := func(resp *service.MapResponse) (out []string) {
		for _, st := range resp.Trace {
			out = append(out, st.Name)
		}
		return out
	}
	if got, want := names(br), names(jr); !reflect.DeepEqual(got, want) {
		t.Fatalf("binary trace stages %v, json %v", got, want)
	}
}

// TestBinaryInternFlow walks the intern table end to end on one
// server: full sections on first contact, 16-byte references once
// confirmed, eviction-induced miss answered with a 404 bitmask, and
// the client's transparent one-round resend recovery. The /statusz
// counters must narrate every step.
func TestBinaryInternFlow(t *testing.T) {
	spec, _ := testTasks(64)
	srv := service.New(service.Config{InternTableSize: 4})
	cb := client.InProcess(srv.Handler(), client.WithProtocol(client.ProtoBinary))

	req := mapReq(spec, "UWH")
	first, err := cb.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Status()
	if st.InternEntries != 3 {
		t.Fatalf("first contact interned %d sections, want 3 (topology, allocation, tasks)", st.InternEntries)
	}
	if st.InternHits != 0 || st.InternResends != 0 {
		t.Fatalf("first contact counted hits=%d resends=%d, want 0/0", st.InternHits, st.InternResends)
	}

	// Warm repeat: the client now sends bare references.
	second, err := cb.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st = srv.Status()
	if st.InternHits != 3 {
		t.Fatalf("warm repeat resolved %d references, want 3", st.InternHits)
	}
	if !reflect.DeepEqual(second.NodeOf, first.NodeOf) || second.Fingerprint != first.Fingerprint {
		t.Fatal("interned-reference solve diverged from the full-section solve")
	}

	// Churn the 4-entry table with two distinct specs (6 fresh
	// sections) so the first client's entries all evict.
	churnSpec, _ := testTasks(48)
	for i, dims := range [][]int{{4, 4, 4}, {5, 5, 5}} {
		churn := service.MapRequest{
			Topology:   service.TopologySpec{Kind: "torus", Dims: dims},
			Allocation: service.AllocationSpec{SparseNodes: 6, Seed: int64(i + 2)},
			Tasks:      churnSpec,
			Mapper:     "UWH",
			Seed:       1,
		}
		// A fresh client per spec: its own memo, full sections on the wire.
		churnClient := client.InProcess(srv.Handler(), client.WithProtocol(client.ProtoBinary))
		if _, err := churnClient.Map(context.Background(), churn); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
	}
	st = srv.Status()
	if st.InternEvictions < 3 {
		t.Fatalf("churn evicted %d sections, want >= 3", st.InternEvictions)
	}

	// The first client still believes its sections are interned: the
	// reference request must 404 with a miss bitmask and the client
	// must recover by resending in full — transparently.
	third, err := cb.Map(context.Background(), req)
	if err != nil {
		t.Fatalf("miss recovery failed: %v", err)
	}
	if !reflect.DeepEqual(third.NodeOf, first.NodeOf) || third.Fingerprint != first.Fingerprint {
		t.Fatal("post-recovery solve diverged from the original")
	}
	st = srv.Status()
	if st.InternMisses < 3 {
		t.Fatalf("eviction round-trip counted %d misses, want >= 3", st.InternMisses)
	}
	if st.InternResends != 3 {
		t.Fatalf("recovery resent %d sections, want 3", st.InternResends)
	}
	if st.ProtocolRequests[`json`] != 0 || st.ProtocolRequests[`binary`] == 0 {
		t.Fatalf("protocol counters %v, want all-binary traffic", st.ProtocolRequests)
	}

	// Result fingerprints are protocol-neutral: a mapping solved over
	// /v2 frames remaps over /v1 JSON on the same server.
	cj := client.InProcess(srv.Handler(), client.WithProtocol(client.ProtoJSON))
	rr, err := cj.Remap(context.Background(), service.RemapRequest{
		Fingerprint: third.Fingerprint,
		Delta:       topomap.AllocationDelta{Remove: []int32{third.AllocNodes[0]}},
	})
	if err != nil {
		t.Fatalf("cross-protocol remap: %v", err)
	}
	if rr.Fingerprint == "" || rr.Fingerprint == third.Fingerprint {
		t.Fatal("cross-protocol remap returned no fresh fingerprint")
	}
}

// TestBinaryNegotiation pins the client's transparent fallback: an
// auto client against a JSON-only server (no /v2 routes) quietly pins
// JSON; a forced-binary client fails loudly.
func TestBinaryNegotiation(t *testing.T) {
	spec, _ := testTasks(64)
	srv := service.New(service.Config{})
	// A pre-/v2 server: only the /v1 routes exist; /v2/* is the mux's
	// plain-text 404.
	legacy := http.NewServeMux()
	legacy.Handle("/v1/", srv.Handler())

	auto := client.InProcess(legacy)
	for i := 0; i < 2; i++ {
		if _, err := auto.Map(context.Background(), mapReq(spec, "UWH")); err != nil {
			t.Fatalf("auto client, call %d: %v", i, err)
		}
	}
	if st := srv.Status(); st.ProtocolRequests["json"] != 2 || st.ProtocolRequests["binary"] != 0 {
		t.Fatalf("auto client against a JSON-only server recorded %v, want 2 json / 0 binary", st.ProtocolRequests)
	}

	forced := client.InProcess(legacy, client.WithProtocol(client.ProtoBinary))
	if _, err := forced.Map(context.Background(), mapReq(spec, "UWH")); err == nil ||
		!strings.Contains(err.Error(), "does not speak the binary protocol") {
		t.Fatalf("forced-binary client against a JSON-only server: %v", err)
	}
}

// TestBinaryFrameErrors pins the /v2 error surface over a real
// socket: garbage, version skew, wrong message types and oversized
// declarations must come back as clean Error frames with the HTTP
// status the JSON path would have used — never hangs or panics.
func TestBinaryFrameErrors(t *testing.T) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(t *testing.T, body []byte) (int, *wirebin.ErrorFrame) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v2/map", wirebin.ContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != wirebin.ContentType {
			t.Fatalf("error response content type %q, want %q", ct, wirebin.ContentType)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		msgType, payload, err := wirebin.DecodeHeader(raw, 1<<20)
		if err != nil {
			t.Fatalf("undecodable error frame: %v", err)
		}
		if msgType != wirebin.MsgError {
			t.Fatalf("frame type %d, want MsgError", msgType)
		}
		ef, err := wirebin.DecodeError(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, ef
	}

	t.Run("garbage", func(t *testing.T) {
		code, ef := post(t, []byte("definitely not a frame"))
		if code != http.StatusBadRequest || ef.Status != http.StatusBadRequest {
			t.Fatalf("garbage got HTTP %d / frame %d, want 400/400", code, ef.Status)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		fw := wirebin.GetWriter()
		defer wirebin.PutWriter(fw)
		wirebin.EncodeMapReq(fw, &wirebin.MapReq{Mapper: "UWH"})
		frame := append([]byte(nil), fw.Bytes()...)
		frame[4] = 99 // future version byte
		code, ef := post(t, frame)
		if code != http.StatusBadRequest || !strings.Contains(ef.Message, "version") {
			t.Fatalf("version skew got HTTP %d %q", code, ef.Message)
		}
	})
	t.Run("wrong-message-type", func(t *testing.T) {
		fw := wirebin.GetWriter()
		defer wirebin.PutWriter(fw)
		wirebin.EncodeRemapReq(fw, &wirebin.RemapReq{Fingerprint: "x", Mapper: "UWH"})
		code, ef := post(t, fw.Bytes())
		if code != http.StatusBadRequest || !strings.Contains(ef.Message, "message type") {
			t.Fatalf("wrong message type got HTTP %d %q", code, ef.Message)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		fw := wirebin.GetWriter()
		defer wirebin.PutWriter(fw)
		wirebin.EncodeMapReq(fw, &wirebin.MapReq{
			Mapper: "UWH",
			Topo:   wirebin.FullSection([]byte{1, 2, 3}),
			Alloc:  wirebin.FullSection([]byte{1}),
			Tasks:  wirebin.FullSection([]byte{0, 0}),
		})
		frame := fw.Bytes()[:fw.Len()-3] // cut mid-payload; declared length now lies
		code, _ := post(t, frame)
		if code != http.StatusBadRequest {
			t.Fatalf("truncated frame got HTTP %d, want 400", code)
		}
	})
	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v2/map")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v2/map got %d, want 405", resp.StatusCode)
		}
	})
	t.Run("unknown-ref", func(t *testing.T) {
		// Bare references a fresh server has never seen: the miss frame
		// must name all three sections.
		fw := wirebin.GetWriter()
		defer wirebin.PutWriter(fw)
		var id [wirebin.FingerprintLen]byte
		copy(id[:], "nobody-home-1234")
		wirebin.EncodeMapReq(fw, &wirebin.MapReq{
			Mapper: "UWH",
			Topo:   wirebin.RefSection(id),
			Alloc:  wirebin.RefSection(id),
			Tasks:  wirebin.RefSection(id),
		})
		code, ef := post(t, fw.Bytes())
		if code != http.StatusNotFound {
			t.Fatalf("unknown refs got HTTP %d, want 404", code)
		}
		want := wirebin.SecTopology | wirebin.SecAllocation | wirebin.SecTasks
		if ef.Missing != want {
			t.Fatalf("miss bitmask %b, want %b", ef.Missing, want)
		}
	})
}

// TestBinaryBatchItemLimit pins the frame-level batch cap: a forged
// item count cannot drive an oversized allocation.
func TestBinaryBatchItemLimit(t *testing.T) {
	items := make([]wirebin.BatchItem, 5000)
	for i := range items {
		items[i] = wirebin.BatchItem{Mapper: "UWH"}
	}
	fw := wirebin.GetWriter()
	defer wirebin.PutWriter(fw)
	wirebin.EncodeBatchReq(fw, &wirebin.BatchReq{
		Topo:  wirebin.FullSection(nil),
		Alloc: wirebin.FullSection(nil),
		Tasks: wirebin.FullSection(nil),
		Items: items,
	})
	msgType, payload, err := wirebin.DecodeHeader(fw.Bytes(), 64<<20)
	if err != nil || msgType != wirebin.MsgBatchRequest {
		t.Fatalf("header: type %d err %v", msgType, err)
	}
	if _, err := wirebin.DecodeBatchReq(payload); err == nil ||
		!strings.Contains(err.Error(), "item") {
		t.Fatalf("5000-item frame decoded without error: %v", err)
	}
}

// TestSolveMemo pins the solve memo: an identical repeat map request
// is answered from the result cache without a solve — across
// protocols, because both derive the same request key from canonical
// section keys and the task graph structure.
func TestSolveMemo(t *testing.T) {
	spec, _ := testTasks(48)
	srv := service.New(service.Config{})
	h := srv.Handler()
	cj := client.InProcess(h, client.WithProtocol(client.ProtoJSON))
	cb := client.InProcess(h, client.WithProtocol(client.ProtoBinary))
	req := mapReq(spec, "UWH")

	first, err := cj.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cj.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeat request did not report a cache hit")
	}
	if again.Fingerprint != first.Fingerprint {
		t.Fatalf("memo changed the fingerprint: %q vs %q", again.Fingerprint, first.Fingerprint)
	}
	scrubMap(first)
	first.CacheHit = false
	scrubMap(again)
	again.CacheHit = false
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("memoized response diverged:\n first %+v\n again %+v", first, again)
	}

	// The binary twin of the same request must hit the memo the JSON
	// solve warmed: same canonical keys, same graph hash.
	br, err := cb.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if br.Fingerprint != again.Fingerprint {
		t.Fatalf("binary fingerprint diverged: %q vs %q", br.Fingerprint, again.Fingerprint)
	}
	st := srv.Status()
	if st.SolveMemoHits != 2 || st.SolveMemoMisses != 1 {
		t.Fatalf("memo counters: hits %d misses %d, want 2/1", st.SolveMemoHits, st.SolveMemoMisses)
	}

	// Any solve knob change is a different job: new seed, new solve.
	req.Seed = 99
	if _, err := cj.Map(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := srv.Status(); st.SolveMemoMisses != 2 {
		t.Fatalf("changed seed should miss the memo: misses %d", st.SolveMemoMisses)
	}
}

package service

import (
	"fmt"
	"strconv"
	"strings"

	topomap "repro"
	"repro/internal/alloc"
)

// TopologySpec is the wire form of a network: a family kind plus the
// family's construction parameters. Omitted bandwidths default to the
// values the CLI and the paper's experiments use (Hopper-like Gemini
// links on tori, 10 GB/s host links on fat trees and dragonflies).
type TopologySpec struct {
	// Kind selects the family: "torus", "mesh", "fattree",
	// "dragonfly".
	Kind string `json:"kind"`
	// Dims and BW are the torus/mesh dimension sizes and
	// per-dimension bandwidths.
	Dims []int     `json:"dims,omitempty"`
	BW   []float64 `json:"bw,omitempty"`
	// K, BWHost and Taper parameterize the k-ary fat tree.
	K      int     `json:"k,omitempty"`
	BWHost float64 `json:"bw_host,omitempty"`
	Taper  float64 `json:"taper,omitempty"`
	// H, BWHost, BWLocal and BWGlobal parameterize the dragonfly.
	H        int     `json:"h,omitempty"`
	BWLocal  float64 `json:"bw_local,omitempty"`
	BWGlobal float64 `json:"bw_global,omitempty"`
}

// maxTopologyNodes bounds wire-built networks: the cost of a request
// is derived from a handful of small integers (dims, k, h), not from
// its body size, so without a cap a few-hundred-byte payload could
// make the daemon allocate multi-billion-node routing state.
const maxTopologyNodes = 1 << 22

// Default bandwidths of the wire protocol, matching cmd/mapper.
const (
	defaultBWHigh   = 9.38e9 // Hopper Gemini X/Z links
	defaultBWLow    = 4.68e9 // Hopper Gemini Y links
	defaultBWHost   = 10e9
	defaultBWLocal  = 5e9
	defaultBWGlobal = 4e9
	defaultTaper    = 2
)

// Normalize validates the spec and fills family defaults, so that
// Key and Build agree on every parameter.
func (s TopologySpec) Normalize() (TopologySpec, error) {
	s.Kind = strings.ToLower(s.Kind)
	switch s.Kind {
	case "torus", "mesh":
		if len(s.Dims) == 0 {
			return s, fmt.Errorf("topology: %s needs dims", s.Kind)
		}
		nodes := 1
		for _, d := range s.Dims {
			if d < 1 {
				return s, fmt.Errorf("topology: bad dimension %d", d)
			}
			if nodes > maxTopologyNodes/d {
				return s, fmt.Errorf("topology: %v exceeds the %d-node service limit", s.Dims, maxTopologyNodes)
			}
			nodes *= d
		}
		if len(s.BW) == 0 {
			s.BW = make([]float64, len(s.Dims))
			for d := range s.BW {
				s.BW[d] = defaultBWHigh
			}
			if len(s.Dims) == 3 {
				s.BW[1] = defaultBWLow // Hopper's slow Y dimension
			}
		}
		if len(s.BW) != len(s.Dims) {
			return s, fmt.Errorf("topology: %d dims but %d bandwidths", len(s.Dims), len(s.BW))
		}
		for _, b := range s.BW {
			if b <= 0 {
				return s, fmt.Errorf("topology: bandwidths must be positive")
			}
		}
	case "fattree":
		if s.K == 0 {
			s.K = 8
		}
		if s.K < 2 || s.K%2 != 0 {
			return s, fmt.Errorf("topology: fat-tree arity k must be even and >= 2, got %d", s.K)
		}
		if s.K*s.K*s.K/4 > maxTopologyNodes {
			return s, fmt.Errorf("topology: fat-tree k=%d exceeds the %d-node service limit", s.K, maxTopologyNodes)
		}
		if s.BWHost == 0 {
			s.BWHost = defaultBWHost
		}
		if s.Taper == 0 {
			s.Taper = defaultTaper
		}
		if s.BWHost <= 0 || s.Taper < 1 {
			return s, fmt.Errorf("topology: need bw_host > 0 and taper >= 1")
		}
	case "dragonfly":
		if s.H == 0 {
			s.H = 3
		}
		if s.H < 1 {
			return s, fmt.Errorf("topology: dragonfly needs h >= 1, got %d", s.H)
		}
		// hosts = (2h²+1) · 2h · h
		if h := s.H; (2*h*h+1)*2*h*h > maxTopologyNodes {
			return s, fmt.Errorf("topology: dragonfly h=%d exceeds the %d-node service limit", s.H, maxTopologyNodes)
		}
		if s.BWHost == 0 {
			s.BWHost = defaultBWHost
		}
		if s.BWLocal == 0 {
			s.BWLocal = defaultBWLocal
		}
		if s.BWGlobal == 0 {
			s.BWGlobal = defaultBWGlobal
		}
		if s.BWHost <= 0 || s.BWLocal <= 0 || s.BWGlobal <= 0 {
			return s, fmt.Errorf("topology: bandwidths must be positive")
		}
	case "":
		return s, fmt.Errorf("topology: missing kind (want torus, mesh, fattree or dragonfly)")
	default:
		return s, fmt.Errorf("topology: unknown kind %q (want torus, mesh, fattree or dragonfly)", s.Kind)
	}
	return s, nil
}

// Key returns the canonical fingerprint of the normalized spec. It is
// defined to equal the built topology's TopologyFingerprint, so a
// spec-derived cache key and an engine-derived one never alias or
// split — TestTopologySpecKeyMatchesFingerprint pins the equality.
func (s TopologySpec) Key() string {
	var b strings.Builder
	switch s.Kind {
	case "torus", "mesh":
		b.WriteString(s.Kind)
		b.WriteByte(':')
		for d, sz := range s.Dims {
			if d > 0 {
				b.WriteByte('x')
			}
			b.WriteString(strconv.Itoa(sz))
		}
		b.WriteString(";bw=")
		for d, bw := range s.BW {
			if d > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(bw, 'g', -1, 64))
		}
	case "fattree":
		fmt.Fprintf(&b, "fattree:k=%d;bw=%s;taper=%s", s.K,
			strconv.FormatFloat(s.BWHost, 'g', -1, 64),
			strconv.FormatFloat(s.Taper, 'g', -1, 64))
	case "dragonfly":
		fmt.Fprintf(&b, "dragonfly:h=%d;bw=%s,%s,%s", s.H,
			strconv.FormatFloat(s.BWHost, 'g', -1, 64),
			strconv.FormatFloat(s.BWLocal, 'g', -1, 64),
			strconv.FormatFloat(s.BWGlobal, 'g', -1, 64))
	}
	return b.String()
}

// Network bundles a built topology with its placement-host count,
// human label, and sparse-allocation generator, so callers (the
// service, cmd/mapper) stay topology-agnostic.
type Network struct {
	Topo  topomap.Topology
	Label string
	// Hosts is the number of placement-eligible nodes; ids 0..Hosts-1.
	Hosts int
	// SparseAlloc reserves n hosts the way a busy scheduler does.
	SparseAlloc func(n int, seed int64) (*topomap.Allocation, error)
}

// Build constructs the network of a normalized spec.
func (s TopologySpec) Build() (*Network, error) {
	switch s.Kind {
	case "torus", "mesh":
		dimsLabel := make([]string, len(s.Dims))
		for d, sz := range s.Dims {
			dimsLabel[d] = strconv.Itoa(sz)
		}
		var t *topomap.Torus
		if s.Kind == "mesh" {
			t = topomap.NewTorusMesh(s.Dims, s.BW)
		} else {
			t = topomap.NewTorus(s.Dims, s.BW)
		}
		return &Network{
			Topo:  t,
			Label: s.Kind + " " + strings.Join(dimsLabel, "x"),
			Hosts: t.Nodes(),
			SparseAlloc: func(n int, seed int64) (*topomap.Allocation, error) {
				return topomap.SparseAllocation(t, n, seed)
			},
		}, nil
	case "fattree":
		ft, err := topomap.NewFatTree(s.K, s.BWHost, s.Taper)
		if err != nil {
			return nil, err
		}
		return &Network{
			Topo:  ft,
			Label: fmt.Sprintf("fat tree k=%d (%d hosts)", s.K, ft.Hosts()),
			Hosts: ft.Hosts(),
			SparseAlloc: func(n int, seed int64) (*topomap.Allocation, error) {
				return topomap.FatTreeSparseHosts(ft, n, seed)
			},
		}, nil
	case "dragonfly":
		d, err := topomap.NewDragonfly(s.H, s.BWHost, s.BWLocal, s.BWGlobal)
		if err != nil {
			return nil, err
		}
		return &Network{
			Topo:  d,
			Label: fmt.Sprintf("dragonfly h=%d (%d hosts)", s.H, d.Hosts()),
			Hosts: d.Hosts(),
			SparseAlloc: func(n int, seed int64) (*topomap.Allocation, error) {
				return topomap.DragonflySparseHosts(d, n, seed)
			},
		}, nil
	}
	return nil, fmt.Errorf("topology: unknown kind %q", s.Kind)
}

// AllocationSpec is the wire form of an allocation: either the
// explicit node set the scheduler handed out (Nodes, with
// ProcsPerNode empty for the default 16, one entry for a uniform
// capacity, or one entry per node; Speeds likewise empty for unit
// speed, one entry for a uniform factor, or one entry per node), or
// SparseNodes+Seed asking the server to generate a busy-scheduler
// sparse allocation (always unit speed — heterogeneous node sets come
// from a real scheduler, explicitly).
type AllocationSpec struct {
	Nodes        []int32   `json:"nodes,omitempty"`
	ProcsPerNode []int     `json:"procs_per_node,omitempty"`
	Speeds       []float64 `json:"speeds,omitempty"`
	SparseNodes  int       `json:"sparse_nodes,omitempty"`
	Seed         int64     `json:"seed,omitempty"`
}

// resolve expands the explicit form into a full Allocation (node
// range checking happens against the built network in Build).
func (a AllocationSpec) resolve() (*topomap.Allocation, error) {
	procs := make([]int, len(a.Nodes))
	switch len(a.ProcsPerNode) {
	case 0:
		for i := range procs {
			procs[i] = alloc.DefaultProcsPerNode
		}
	case 1:
		for i := range procs {
			procs[i] = a.ProcsPerNode[0]
		}
	case len(a.Nodes):
		copy(procs, a.ProcsPerNode)
	default:
		return nil, fmt.Errorf("allocation: %d nodes but %d capacities", len(a.Nodes), len(a.ProcsPerNode))
	}
	r := &topomap.Allocation{Nodes: append([]int32(nil), a.Nodes...), ProcsPerNode: procs}
	switch len(a.Speeds) {
	case 0:
	case 1:
		r.Speeds = make([]float64, len(a.Nodes))
		for i := range r.Speeds {
			r.Speeds[i] = a.Speeds[0]
		}
	case len(a.Nodes):
		r.Speeds = append([]float64(nil), a.Speeds...)
	default:
		return nil, fmt.Errorf("allocation: %d nodes but %d speeds", len(a.Nodes), len(a.Speeds))
	}
	// A unit speed vector is the nil default — canonicalizing here keeps
	// the fingerprint (and so the engine cache key and solve memo) of
	// an explicit speeds=[1,...] spec identical to an absent one.
	r.CanonicalizeSpeeds()
	return r, nil
}

// Key returns the allocation part of the engine cache key: the
// fingerprint of the explicit node set, or the generation parameters
// (which determine the node set, given the topology).
func (a AllocationSpec) Key() (string, error) {
	switch {
	case len(a.Nodes) > 0 && a.SparseNodes > 0:
		return "", fmt.Errorf("allocation: give nodes or sparse_nodes, not both")
	case len(a.Nodes) > 0:
		r, err := a.resolve()
		if err != nil {
			return "", err
		}
		return topomap.AllocationFingerprint(r), nil
	case a.SparseNodes > 0:
		if len(a.Speeds) > 0 {
			return "", fmt.Errorf("allocation: speeds need explicit nodes, not sparse_nodes")
		}
		return "gen:" + strconv.Itoa(a.SparseNodes) + ":" + strconv.FormatInt(a.Seed, 10), nil
	}
	return "", fmt.Errorf("allocation: need nodes or sparse_nodes")
}

// Build materializes the allocation on the built network. It repeats
// Key's exclusivity validation so direct callers cannot slip an
// ambiguous spec past the cache layer.
func (a AllocationSpec) Build(net *Network) (*topomap.Allocation, error) {
	switch {
	case len(a.Nodes) > 0 && a.SparseNodes > 0:
		return nil, fmt.Errorf("allocation: give nodes or sparse_nodes, not both")
	case len(a.Nodes) == 0 && a.SparseNodes <= 0:
		return nil, fmt.Errorf("allocation: need nodes or sparse_nodes")
	case a.SparseNodes > 0:
		if len(a.Speeds) > 0 {
			return nil, fmt.Errorf("allocation: speeds need explicit nodes, not sparse_nodes")
		}
		return net.SparseAlloc(a.SparseNodes, a.Seed)
	}
	r, err := a.resolve()
	if err != nil {
		return nil, err
	}
	for _, n := range r.Nodes {
		if int(n) >= net.Hosts {
			return nil, fmt.Errorf("allocation: node %d outside the %d placement-eligible nodes of the %s", n, net.Hosts, net.Label)
		}
	}
	return r, nil
}

package service

import (
	"sort"
	"sync"
	"sync/atomic"
)

// durationBuckets are the fixed histogram bucket upper bounds in
// seconds, shared by the per-endpoint request histograms and the
// per-stage solve histograms. Fixed buckets keep observation lock-free
// (one atomic increment) and make scrapes from different mapd
// instances aggregatable.
var durationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// makespanBuckets are the bucket upper bounds of the solve-makespan
// histogram. Makespan is in load/speed units, not seconds, so the
// bounds are exponential: unit-load coarse graphs land at the low
// end, million-unit pipelines at the top.
var makespanBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}

// histogram is a fixed-bucket histogram. Buckets hold per-bucket
// (non-cumulative) counts — the /metrics writer sums them cumulatively
// the way the Prometheus exposition format wants. All fields are
// atomics, so observe is lock-free; the sum is kept scaled by 1e6 to
// stay an integer.
type histogram struct {
	bounds    []float64
	buckets   []atomic.Int64 // len(bounds)+1; last is +Inf
	count     atomic.Int64
	sumMicros atomic.Int64
}

func newHistogram() *histogram { return newHistogramWith(durationBuckets) }

func newHistogramWith(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one value (seconds for the duration histograms,
// load/speed units for the makespan histogram).
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(int64(v * 1e6))
}

// histogramVec is a label → histogram map: endpoints (pre-registered,
// so /metrics shows zeroed series from boot) and solve stages
// (created on first observation). Lookup takes a read lock only; the
// histogram itself is lock-free.
type histogramVec struct {
	mu sync.RWMutex
	m  map[string]*histogram
}

func newHistogramVec(labels ...string) *histogramVec {
	v := &histogramVec{m: make(map[string]*histogram, len(labels))}
	for _, l := range labels {
		v.m[l] = newHistogram()
	}
	return v
}

// get returns the histogram of a label, creating it on first use.
func (v *histogramVec) get(label string) *histogram {
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[label]; h == nil {
		h = newHistogram()
		v.m[label] = h
	}
	return h
}

// labels returns the registered labels sorted, for deterministic
// scrape output.
func (v *histogramVec) labels() []string {
	v.mu.RLock()
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	v.mu.RUnlock()
	sort.Strings(out)
	return out
}

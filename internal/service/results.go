package service

import (
	"container/list"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	topomap "repro"
	"repro/internal/wirebin"
)

// resultEntry is one finished solve the service keeps around for
// incremental remapping: the engine that produced it (route state
// intact), the task graph it placed, and the result itself. The
// fingerprint is the wire handle POST /v1/remap presents instead of
// re-sending any of the three.
type resultEntry struct {
	fp    string
	eng   *topomap.Engine
	tasks *topomap.TaskGraph
	res   *topomap.MapResult
}

// resultNode wraps an entry with its retention accounting: when it
// entered the cache and how many remaps have resolved it since. The
// remap count is the "heat" eviction weighs — an allocation that is
// being remapped over and over is exactly the one whose route state
// must not be churned out by a burst of one-shot solves.
type resultNode struct {
	entry   resultEntry
	created time.Time
	remaps  int64
	// reqKey is the solve-memo index of the request that produced this
	// entry ("" for entries fed by remap deltas): a repeat of the
	// identical map request — solves are deterministic — is answered
	// from here without touching a worker slot.
	reqKey string
}

// resultEvictionWindow bounds the eviction scan: past capacity, the
// cache examines this many entries from the cold (LRU) end and evicts
// the one with the fewest remap resolutions, ties going to the
// colder entry. Plain LRU is the window=1 special case; a small
// window keeps eviction O(1)-ish while letting remap-hot entries
// survive recency churn.
const resultEvictionWindow = 8

// Age buckets of the result-cache hit/eviction counters on /statusz:
// an upper bound per bucket, the last unbounded. Evictions landing in
// the young buckets mean the cache is thrashing below the remap
// interval; hits landing in the old buckets mean long-lived
// allocations are being remapped, the workload retention is for.
const resultAgeBuckets = 5

var (
	resultAgeBounds = [resultAgeBuckets - 1]time.Duration{time.Second, 10 * time.Second, time.Minute, 10 * time.Minute}
	resultAgeLabels = [resultAgeBuckets]string{"lt_1s", "lt_10s", "lt_1m", "lt_10m", "ge_10m"}
)

func resultAgeBucket(age time.Duration) int {
	for i, b := range resultAgeBounds {
		if age < b {
			return i
		}
	}
	return len(resultAgeBounds)
}

// resultCache is the bounded cache of recent results /v1/map (and
// /v1/remap itself — deltas chain) feeds and the remap endpoints
// resolve fingerprints against. Retention is recency-ordered but
// remap-frequency-weighted: see resultEvictionWindow.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent; values are *resultNode
	idx map[string]*list.Element
	// byReq is the solve-memo index: request key → the entry that
	// request produced. Entries enter it via putReq (the map
	// handlers); remap-fed entries are not memoized — their result
	// depends on the chain of deltas, not on one request.
	byReq map[string]*list.Element

	// Lookup and eviction accounting, surfaced on /statusz and
	// /metrics: a miss is a remap the client must recover from with a
	// full re-solve, so the hit rate is the signal operators size the
	// cache by. The by-age breakdowns index resultAgeLabels.
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// Solve-memo counters: a memo hit is an identical repeat request
	// served without a solve — the steady-state the binary protocol's
	// interned refs are built for.
	memoHits   atomic.Int64
	memoMisses atomic.Int64

	hitsByAge      [resultAgeBuckets]atomic.Int64
	evictionsByAge [resultAgeBuckets]atomic.Int64
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), idx: make(map[string]*list.Element), byReq: make(map[string]*list.Element)}
}

// put inserts (or refreshes) an entry; past capacity it evicts the
// least-remapped entry among the resultEvictionWindow coldest.
func (c *resultCache) put(e resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[e.fp]; ok {
		// Same fingerprint means the same placement re-derived; the
		// entry keeps its age and heat, only the payload refreshes.
		c.ll.MoveToFront(el)
		el.Value.(*resultNode).entry = e
		return
	}
	c.idx[e.fp] = c.ll.PushFront(&resultNode{entry: e, created: time.Now()})
	for c.ll.Len() > c.max {
		c.evictOne()
	}
}

// evictOne removes the coldest low-heat entry: scan up to
// resultEvictionWindow entries from the back, victim = fewest remap
// resolutions, ties to the colder one. The front (most recent) entry
// is never a victim — it is the result the handler is about to hand
// out a fingerprint for, and evicting it would turn every immediate
// remap into a miss. Called with c.mu held.
func (c *resultCache) evictOne() {
	victim := c.ll.Back()
	if victim == nil || victim == c.ll.Front() {
		return
	}
	best := victim.Value.(*resultNode).remaps
	el := victim
	for i := 1; i < resultEvictionWindow && best > 0; i++ {
		el = el.Prev()
		if el == nil || el == c.ll.Front() {
			break
		}
		if n := el.Value.(*resultNode); n.remaps < best {
			victim, best = el, n.remaps
		}
	}
	n := victim.Value.(*resultNode)
	delete(c.idx, n.entry.fp)
	if n.reqKey != "" {
		delete(c.byReq, n.reqKey)
	}
	c.ll.Remove(victim)
	c.evictions.Add(1)
	c.evictionsByAge[resultAgeBucket(time.Since(n.created))].Add(1)
}

// putReq is put plus solve-memo indexing: the entry is additionally
// reachable by the request key that produced it, so an identical
// repeat request skips the solve entirely.
func (c *resultCache) putReq(reqKey string, e resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[e.fp]; ok {
		c.ll.MoveToFront(el)
		n := el.Value.(*resultNode)
		n.entry = e
		if n.reqKey == "" {
			n.reqKey = reqKey
			c.byReq[reqKey] = el
		}
		return
	}
	if old, ok := c.byReq[reqKey]; ok {
		// A new fingerprint under an old request key can only mean the
		// solve stopped being deterministic — don't leave the stale
		// index dangling, but keep the old entry remap-resolvable.
		old.Value.(*resultNode).reqKey = ""
	}
	el := c.ll.PushFront(&resultNode{entry: e, created: time.Now(), reqKey: reqKey})
	c.idx[e.fp] = el
	c.byReq[reqKey] = el
	for c.ll.Len() > c.max {
		c.evictOne()
	}
}

// getReq resolves a request key — a solve-memo lookup. A hit refreshes
// recency but is deliberately not remap heat: repeat solves and remap
// chains are different retention signals.
func (c *resultCache) getReq(reqKey string) (resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byReq[reqKey]
	if !ok {
		c.memoMisses.Add(1)
		return resultEntry{}, false
	}
	c.memoHits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*resultNode).entry, true
}

// get resolves a fingerprint, marking the entry most recently used
// and counting the resolution as remap heat.
func (c *resultCache) get(fp string) (resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[fp]
	if !ok {
		c.misses.Add(1)
		return resultEntry{}, false
	}
	c.hits.Add(1)
	n := el.Value.(*resultNode)
	n.remaps++
	c.hitsByAge[resultAgeBucket(time.Since(n.created))].Add(1)
	c.ll.MoveToFront(el)
	return n.entry, true
}

// stats snapshots the lookup and eviction counters.
func (c *resultCache) stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// memoStats snapshots the solve-memo counters.
func (c *resultCache) memoStats() (hits, misses int64) {
	return c.memoHits.Load(), c.memoMisses.Load()
}

// byAge snapshots the per-entry-age hit and eviction counters, keyed
// by resultAgeLabels.
func (c *resultCache) byAge() (hits, evictions map[string]int64) {
	hits = make(map[string]int64, len(resultAgeLabels))
	evictions = make(map[string]int64, len(resultAgeLabels))
	for i, l := range resultAgeLabels {
		hits[l] = c.hitsByAge[i].Load()
		evictions[l] = c.evictionsByAge[i].Load()
	}
	return hits, evictions
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// resultFingerprint derives the content handle of a finished solve:
// an FNV-1a hash over the engine's canonical (topology, allocation)
// fingerprint, the task graph's structure, and the placement itself.
// Identical solves produce identical fingerprints across requests and
// restarts, so clients may cache them; distinct placements collide
// only with hash probability.
func resultFingerprint(eng *topomap.Engine, tg *topomap.TaskGraph, res *topomap.MapResult) string {
	h := wirebin.Hash64Init
	h = h.Str(topomap.EngineFingerprint(eng.Topology(), eng.Allocation()))
	h = hashTaskGraph(h, tg)
	h = h.Str(string(res.Mapper))
	h = h.U64(uint64(len(res.GroupOf)))
	for _, g := range res.GroupOf {
		h = h.U64(uint64(uint32(g)))
	}
	for _, m := range res.NodeOf {
		h = h.U64(uint64(uint32(m)))
	}
	return "map:" + strconv.FormatUint(uint64(h), 16)
}

// hashTaskGraph folds the task graph's structure — coarsening factor,
// adjacency, edge volumes, (when heterogeneous) per-task loads and
// (when geometric) per-task coordinates — into h, alloc-free. Unit
// loads are canonically nil (TaskGraphSpec and the binary decoder
// both canonicalize) and absent coordinates are nil, so
// pre-heterogeneity, coordinate-free hashes are unchanged.
func hashTaskGraph(h wirebin.Hash64, tg *topomap.TaskGraph) wirebin.Hash64 {
	h = h.U64(uint64(tg.K))
	h = h.U64(uint64(tg.G.N()))
	for v := 0; v < tg.G.N(); v++ {
		adj, w := tg.G.Neighbors(v), tg.G.Weights(v)
		h = h.U64(uint64(len(adj)))
		for i, u := range adj {
			h = h.U64(uint64(uint32(u)))
			h = h.U64(uint64(w[i]))
		}
	}
	if tg.G.VW != nil {
		h = h.U64(^uint64(0)) // domain separator: loads follow
		for _, l := range tg.G.VW {
			h = h.U64(uint64(l))
		}
	}
	if tg.HasCoords() {
		h = h.U64(^uint64(1)) // domain separator: coordinates follow
		h = h.U64(uint64(tg.Dim))
		for _, c := range tg.Coords {
			h = h.U64(math.Float64bits(c))
		}
	}
	return h
}

// solveMemoKey identifies a map job up to response framing: the
// engine cache key (canonical topology + allocation), every solve
// knob that can change the placement, and the task graph structure.
// Both protocols derive it the same way, so a JSON solve warms the
// memo for binary repeats and vice versa. Response-only options
// (rankfile, trace echo) stay out — they re-render per response.
func solveMemoKey(engineKey, mapper string, seed int64, refine, fineRefine, balance bool, tg *topomap.TaskGraph) string {
	h := wirebin.Hash64Init
	h = h.Str(engineKey)
	h = h.U64(0) // domain separator between the key and the knobs
	h = h.Str(mapper)
	h = h.U64(uint64(seed))
	var flags uint64
	if refine {
		flags |= 1
	}
	if fineRefine {
		flags |= 2
	}
	if balance {
		flags |= 4
	}
	h = h.U64(flags)
	h = hashTaskGraph(h, tg)
	return "req:" + strconv.FormatUint(uint64(h), 16)
}

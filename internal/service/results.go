package service

import (
	"container/list"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"

	topomap "repro"
)

// resultEntry is one finished solve the service keeps around for
// incremental remapping: the engine that produced it (route state
// intact), the task graph it placed, and the result itself. The
// fingerprint is the wire handle POST /v1/remap presents instead of
// re-sending any of the three.
type resultEntry struct {
	fp    string
	eng   *topomap.Engine
	tasks *topomap.TaskGraph
	res   *topomap.MapResult
}

// resultCache is the bounded LRU of recent results /v1/map (and
// /v1/remap itself — deltas chain) feeds and /v1/remap resolves
// fingerprints against. Eviction is by recency: a fingerprint stays
// valid as long as its result is among the last max solves touched.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent; values are resultEntry
	idx map[string]*list.Element

	// Lookup and eviction accounting, surfaced on /statusz and
	// /metrics: a miss is a remap the client must recover from with a
	// full re-solve, so the hit rate is the signal operators size the
	// cache by.
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), idx: make(map[string]*list.Element)}
}

// put inserts (or refreshes) an entry, evicting the least recently
// touched one past capacity.
func (c *resultCache) put(e resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[e.fp]; ok {
		c.ll.MoveToFront(el)
		el.Value = e
		return
	}
	c.idx[e.fp] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		delete(c.idx, last.Value.(resultEntry).fp)
		c.ll.Remove(last)
		c.evictions.Add(1)
	}
}

// get resolves a fingerprint, marking the entry most recently used.
func (c *resultCache) get(fp string) (resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[fp]
	if !ok {
		c.misses.Add(1)
		return resultEntry{}, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(resultEntry), true
}

// stats snapshots the lookup and eviction counters.
func (c *resultCache) stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// resultFingerprint derives the content handle of a finished solve:
// an FNV-1a hash over the engine's canonical (topology, allocation)
// fingerprint, the task graph's structure, and the placement itself.
// Identical solves produce identical fingerprints across requests and
// restarts, so clients may cache them; distinct placements collide
// only with hash probability.
func resultFingerprint(eng *topomap.Engine, tg *topomap.TaskGraph, res *topomap.MapResult) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(topomap.EngineFingerprint(eng.Topology(), eng.Allocation())))
	put(uint64(tg.K))
	put(uint64(tg.G.N()))
	for v := 0; v < tg.G.N(); v++ {
		adj, w := tg.G.Neighbors(v), tg.G.Weights(v)
		put(uint64(len(adj)))
		for i, u := range adj {
			put(uint64(uint32(u)))
			put(uint64(w[i]))
		}
	}
	h.Write([]byte(res.Mapper))
	put(uint64(len(res.GroupOf)))
	for _, g := range res.GroupOf {
		put(uint64(uint32(g)))
	}
	for _, m := range res.NodeOf {
		put(uint64(uint32(m)))
	}
	return "map:" + strconv.FormatUint(h.Sum64(), 16)
}

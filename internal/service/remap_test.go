package service_test

// Wire-level tests of POST /v1/remap: the fingerprint flow (map →
// remap → chained remap), equivalence to the library's RunRemap,
// the 404 surface for unknown or evicted fingerprints, request
// validation, and the /statusz remap counters.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	topomap "repro"
	"repro/internal/service"
)

// TestRemapWire walks the full fingerprint flow: a /v1/map solve
// returns a fingerprint, a single-node-death delta remaps it warm
// (reusing the whole surviving route cache), the result matches a
// direct Engine.RunRemap, and the fresh fingerprint chains into a
// second delta without re-sending the task graph.
func TestRemapWire(t *testing.T) {
	spec, tg := testTasks(64)
	c := newClient(t, service.Config{})

	mapped, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Fingerprint == "" {
		t.Fatal("map response carries no fingerprint")
	}

	dead := mapped.AllocNodes[3]
	remapped, err := c.Remap(context.Background(), service.RemapRequest{
		Fingerprint: mapped.Fingerprint,
		Delta:       topomap.AllocationDelta{Remove: []int32{dead}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(remapped.AllocNodes) != len(mapped.AllocNodes)-1 {
		t.Fatalf("post-delta allocation has %d nodes, want %d", len(remapped.AllocNodes), len(mapped.AllocNodes)-1)
	}
	for _, m := range remapped.AllocNodes {
		if m == dead {
			t.Fatalf("removed node %d still allocated", dead)
		}
	}
	// A pure removal keeps every surviving pair's routes verbatim.
	if remapped.PairsTotal == 0 || remapped.PairsReused != remapped.PairsTotal {
		t.Fatalf("pure removal reused %d/%d route pairs, want full reuse", remapped.PairsReused, remapped.PairsTotal)
	}
	if remapped.MigratedTasks <= 0 {
		t.Fatal("killing an occupied node migrated no tasks")
	}
	if remapped.Fingerprint == "" || remapped.Fingerprint == mapped.Fingerprint {
		t.Fatalf("remap fingerprint %q must be fresh", remapped.Fingerprint)
	}
	if !remapped.CacheHit {
		t.Fatal("remap route state comes from a cached result; cache_hit must be true")
	}

	// The wire answer equals the library's: same prev result, same
	// delta, same (server-clamped) worker grant.
	ns, err := torusSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	net, err := ns.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := (service.AllocationSpec{SparseNodes: 8, Seed: 1}).Build(net)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := topomap.NewEngine(net.Topo, a)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := eng.RunSolve(context.Background(), tg, topomap.Solve{Mapper: topomap.UWH, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := eng.RunRemap(context.Background(), tg, prev, topomap.AllocationDelta{Remove: []int32{dead}},
		topomap.RemapSpec{Solve: topomap.Solve{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remapped.GroupOf, direct.Result.GroupOf) ||
		!reflect.DeepEqual(remapped.NodeOf, direct.Result.NodeOf) {
		t.Fatal("wire remap diverged from direct Engine.RunRemap")
	}
	if remapped.Warm != direct.Warm || remapped.FenceTripped != direct.FenceTripped ||
		remapped.MigratedTasks != direct.MigratedTasks {
		t.Fatalf("wire accounting (warm=%v fence=%v migrated=%d) diverged from direct (%v %v %d)",
			remapped.Warm, remapped.FenceTripped, remapped.MigratedTasks,
			direct.Warm, direct.FenceTripped, direct.MigratedTasks)
	}

	// Deltas chain: the remap's fingerprint resolves without another
	// /v1/map, against the patched engine.
	chained, err := c.Remap(context.Background(), service.RemapRequest{
		Fingerprint: remapped.Fingerprint,
		Delta:       topomap.AllocationDelta{Remove: []int32{remapped.AllocNodes[0]}},
	})
	if err != nil {
		t.Fatalf("chained remap: %v", err)
	}
	if len(chained.AllocNodes) != len(remapped.AllocNodes)-1 {
		t.Fatalf("chained remap allocation has %d nodes, want %d", len(chained.AllocNodes), len(remapped.AllocNodes)-1)
	}

	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.RemapRequests != 2 {
		t.Fatalf("remap_requests = %d, want 2", st.RemapRequests)
	}
	if st.RemapWarm+st.RemapFallbacks == 0 {
		t.Fatal("remap counters flat after two remaps")
	}
	if st.RemapPairsTotal == 0 || st.RemapPairsReused == 0 {
		t.Fatalf("pair-reuse counters flat: %d/%d", st.RemapPairsReused, st.RemapPairsTotal)
	}
	if st.ResultEntries < 3 || st.ResultCapacity != 128 {
		t.Fatalf("result cache = %d/%d, want >= 3 entries at default capacity 128", st.ResultEntries, st.ResultCapacity)
	}
}

// TestRemapUnknownFingerprint pins the 404 surface: a fingerprint the
// server has never issued (or has evicted) must say so cleanly.
func TestRemapUnknownFingerprint(t *testing.T) {
	c := newClient(t, service.Config{})
	_, err := c.Remap(context.Background(), service.RemapRequest{
		Fingerprint: "map:deadbeef",
		Delta:       topomap.AllocationDelta{Remove: []int32{0}},
	})
	if err == nil {
		t.Fatal("unknown fingerprint accepted")
	}
	if !strings.Contains(err.Error(), "unknown fingerprint") || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want a 404 naming the unknown fingerprint", err)
	}
}

// TestRemapEviction: the result LRU is bounded, and falling out of it
// invalidates the fingerprint — the client's cue to re-solve.
func TestRemapEviction(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{ResultCacheSize: 1})
	first, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A second solve on a different allocation evicts the first result.
	if _, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 2},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       7,
	}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Remap(context.Background(), service.RemapRequest{
		Fingerprint: first.Fingerprint,
		Delta:       topomap.AllocationDelta{Remove: []int32{first.AllocNodes[0]}},
	})
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want 404 after eviction", err)
	}
}

// TestRemapValidation walks the fail-fast surface: every malformed
// request costs a clean 400 before any worker slot is held.
func TestRemapValidation(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{})
	mapped, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	good := service.RemapRequest{
		Fingerprint: mapped.Fingerprint,
		Delta:       topomap.AllocationDelta{Remove: []int32{mapped.AllocNodes[0]}},
	}
	cases := []struct {
		name   string
		mutate func(service.RemapRequest) service.RemapRequest
		want   string
	}{
		{"missing fingerprint", func(r service.RemapRequest) service.RemapRequest { r.Fingerprint = ""; return r }, "missing fingerprint"},
		{"empty delta", func(r service.RemapRequest) service.RemapRequest { r.Delta = topomap.AllocationDelta{}; return r }, "empty delta"},
		{"wire-set workers", func(r service.RemapRequest) service.RemapRequest { r.Solve.Workers = 4; return r }, "server-controlled"},
		{"wire-set solve timeout", func(r service.RemapRequest) service.RemapRequest { r.Solve.TimeoutMS = 100; return r }, "server-controlled"},
		{"unknown mapper", func(r service.RemapRequest) service.RemapRequest { r.Solve.Mapper = "NOPE"; return r }, "unknown mapper"},
		{"unknown objective", func(r service.RemapRequest) service.RemapRequest {
			r.Objective = topomap.MinimizeMetric("bogus")
			return r
		}, "unknown objective metric"},
		{"delta naming a stranger", func(r service.RemapRequest) service.RemapRequest {
			r.Delta = topomap.AllocationDelta{Remove: []int32{-3}}
			return r
		}, "not allocated"},
	}
	for _, tc := range cases {
		_, err := c.Remap(context.Background(), tc.mutate(good))
		if err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The good request still works after the error storm.
	if _, err := c.Remap(context.Background(), good); err != nil {
		t.Fatalf("server unserviceable after validation errors: %v", err)
	}
}

package service

import (
	"sort"
	"sync"
	"sync/atomic"
)

// stats holds the service's live counters: monotonically increasing
// request/error/timeout counts (lock-free atomics on the hot path)
// and a fixed ring of recent request latencies from which /statusz
// computes p50/p90/p99.
type stats struct {
	requests            atomic.Int64
	batchRequests       atomic.Int64
	portfolioRequests   atomic.Int64
	portfolioCandidates atomic.Int64
	portfolioSkipped    atomic.Int64
	remapRequests       atomic.Int64
	remapWarm           atomic.Int64
	remapFallbacks      atomic.Int64
	remapPairsReused    atomic.Int64
	remapPairsTotal     atomic.Int64
	errors              atomic.Int64
	timeouts            atomic.Int64
	inflight            atomic.Int64

	mu  sync.Mutex
	lat []float64 // ms, ring buffer
	pos int
	n   int // filled entries, <= len(lat)
}

// latencyWindow bounds the quantile ring: big enough for stable tail
// estimates, small enough that /statusz snapshots stay cheap.
const latencyWindow = 2048

func newStats() *stats {
	return &stats{lat: make([]float64, latencyWindow)}
}

// observe records one completed request's latency.
func (s *stats) observe(ms float64) {
	s.mu.Lock()
	s.lat[s.pos] = ms
	s.pos = (s.pos + 1) % len(s.lat)
	if s.n < len(s.lat) {
		s.n++
	}
	s.mu.Unlock()
}

// quantiles returns the p50/p90/p99 of the recorded window (zeros
// when nothing completed yet).
func (s *stats) quantiles() (p50, p90, p99 float64, samples int) {
	s.mu.Lock()
	snap := append([]float64(nil), s.lat[:s.n]...)
	s.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(snap)
	at := func(q float64) float64 {
		i := int(q * float64(len(snap)-1))
		return snap[i]
	}
	return at(0.50), at(0.90), at(0.99), len(snap)
}

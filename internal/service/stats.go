package service

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Endpoint labels of the solving endpoints — the keys of the
// per-endpoint latency rings and the `endpoint` label values on
// /metrics.
const (
	endpointMap       = "map"
	endpointBatch     = "batch"
	endpointPortfolio = "portfolio"
	endpointRemap     = "remap"
)

var solveEndpoints = []string{endpointMap, endpointBatch, endpointPortfolio, endpointRemap}

// Protocol labels of the per-protocol request counters: every solving
// request is either a /v1 JSON envelope or a /v2 binary frame.
const (
	protoJSONLabel   = "json"
	protoBinaryLabel = "binary"
)

// stats holds the service's live counters: monotonically increasing
// request/error/timeout counts (lock-free atomics on the hot path),
// latency quantile rings — one combined, one per solving endpoint —
// and the fixed-bucket histograms /metrics exposes per endpoint and
// per solve stage.
type stats struct {
	requests            atomic.Int64
	batchRequests       atomic.Int64
	portfolioRequests   atomic.Int64
	portfolioCandidates atomic.Int64
	portfolioSkipped    atomic.Int64
	remapRequests       atomic.Int64
	remapWarm           atomic.Int64
	remapFallbacks      atomic.Int64
	remapPairsReused    atomic.Int64
	remapPairsTotal     atomic.Int64
	errors              atomic.Int64
	timeouts            atomic.Int64
	inflight            atomic.Int64

	// Per-protocol request counters: how much of the solving traffic
	// arrives as /v1 JSON envelopes vs /v2 binary frames.
	protoJSON   atomic.Int64
	protoBinary atomic.Int64

	all      latRing
	endpoint map[string]*latRing // fixed keys, read-only after newStats

	reqHist   *histogramVec // per-endpoint request duration, seconds
	stageHist *histogramVec // per-stage solve duration, seconds

	// Heterogeneous-solve observability: the makespan distribution of
	// completed solves (load/speed units) and the load imbalance of
	// the most recent one (Float64bits, so the gauge stays an atomic).
	makespanHist  *histogram
	lastImbalance atomic.Uint64
}

// latencyWindow bounds each quantile ring: big enough for stable tail
// estimates, small enough that /statusz snapshots stay cheap.
const latencyWindow = 2048

// latRing is one fixed ring of recent latencies (milliseconds) from
// which /statusz computes p50/p90/p99.
type latRing struct {
	mu  sync.Mutex
	lat []float64
	pos int
	n   int // filled entries, <= len(lat)
}

func newLatRing() *latRing { return &latRing{lat: make([]float64, latencyWindow)} }

func (r *latRing) observe(ms float64) {
	r.mu.Lock()
	r.lat[r.pos] = ms
	r.pos = (r.pos + 1) % len(r.lat)
	if r.n < len(r.lat) {
		r.n++
	}
	r.mu.Unlock()
}

// quantiles returns the p50/p90/p99 of the recorded window (zeros
// when nothing completed yet).
func (r *latRing) quantiles() (p50, p90, p99 float64, samples int) {
	r.mu.Lock()
	snap := append([]float64(nil), r.lat[:r.n]...)
	r.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(snap)
	at := func(q float64) float64 {
		i := int(q * float64(len(snap)-1))
		return snap[i]
	}
	return at(0.50), at(0.90), at(0.99), len(snap)
}

func newStats() *stats {
	s := &stats{
		all:          latRing{lat: make([]float64, latencyWindow)},
		endpoint:     make(map[string]*latRing, len(solveEndpoints)),
		reqHist:      newHistogramVec(solveEndpoints...),
		stageHist:    newHistogramVec(),
		makespanHist: newHistogramWith(makespanBuckets),
	}
	for _, e := range solveEndpoints {
		s.endpoint[e] = newLatRing()
	}
	return s
}

// observe records one completed request's latency against the
// combined ring, the endpoint's ring, and the endpoint's histogram.
func (s *stats) observe(endpoint string, ms float64) {
	s.all.observe(ms)
	if r := s.endpoint[endpoint]; r != nil {
		r.observe(ms)
	}
	s.reqHist.get(endpoint).observe(ms / 1e3)
}

// observeStages feeds a finished solve's stage timeline into the
// per-stage histograms.
func (s *stats) observeStages(stages []trace.Stage) {
	for _, st := range stages {
		s.stageHist.get(st.Name).observe(st.DurMS / 1e3)
	}
}

// observeResult feeds one completed solve's load summary into the
// makespan histogram and the latest-imbalance gauge. Solves that
// predate the metric (or failed to compute one) report zero and are
// skipped.
func (s *stats) observeResult(makespan, imbalance float64) {
	if makespan <= 0 {
		return
	}
	s.makespanHist.observe(makespan)
	s.lastImbalance.Store(math.Float64bits(imbalance))
}

package service

// The intern table behind the binary protocol's 16-byte section
// references: the server remembers the topology, allocation and
// task-graph sections it has decoded, keyed by the content
// fingerprint of their encoded bodies, so a repeat client can replace
// the bulky sections of a /v2 request with references. The table is a
// bounded LRU — an unresolvable reference is an explicit miss frame
// (HTTP 404, with a bitmask naming the sections to resend), exactly
// the recovery contract the /v1/remap fingerprint flow established.

import (
	"container/list"
	"sync"
	"sync/atomic"

	topomap "repro"
	"repro/internal/wirebin"
)

// internVal is one interned section in its post-decode, post-validate
// form — a reference hit skips not just the body bytes but the decode
// and canonicalization work:
//   - topology: the normalized spec and its canonical cache key
//   - allocation: the resolved spec and its cache key
//   - tasks: the built task graph itself (immutable once built, so
//     sharing it across concurrent solves is safe — the JSON batch
//     path already relies on that)
type internVal struct {
	kind     byte // wirebin.SecTopology | SecAllocation | SecTasks
	topo     TopologySpec
	topoKey  string
	alloc    AllocationSpec
	allocKey string
	tasks    *topomap.TaskGraph
}

type internTable struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent; values are *internNode
	idx map[[wirebin.FingerprintLen]byte]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	resends   atomic.Int64
}

type internNode struct {
	id  [wirebin.FingerprintLen]byte
	val internVal
}

func newInternTable(max int) *internTable {
	return &internTable{
		max: max,
		ll:  list.New(),
		idx: make(map[[wirebin.FingerprintLen]byte]*list.Element),
	}
}

// get resolves a reference, marking the entry most recently used.
func (t *internTable) get(id [wirebin.FingerprintLen]byte) (internVal, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.idx[id]
	if !ok {
		t.misses.Add(1)
		return internVal{}, false
	}
	t.hits.Add(1)
	t.ll.MoveToFront(el)
	return el.Value.(*internNode).val, true
}

// put interns a decoded section, evicting the least recently used
// entry past capacity.
func (t *internTable) put(id [wirebin.FingerprintLen]byte, v internVal) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.idx[id]; ok {
		t.ll.MoveToFront(el)
		el.Value.(*internNode).val = v
		return
	}
	t.idx[id] = t.ll.PushFront(&internNode{id: id, val: v})
	for t.ll.Len() > t.max {
		last := t.ll.Back()
		delete(t.idx, last.Value.(*internNode).id)
		t.ll.Remove(last)
		t.evictions.Add(1)
	}
}

func (t *internTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len()
}

func (t *internTable) stats() (hits, misses, evictions, resends int64) {
	return t.hits.Load(), t.misses.Load(), t.evictions.Load(), t.resends.Load()
}

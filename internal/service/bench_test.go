package service_test

// BenchmarkServeParallel measures the steady-state request path of a
// warm mapd — engine and result caches hot, intern table and client
// section memos populated — so what's left on the clock is exactly
// what this protocol work targets: request decode, cache lookup and
// response encode. JSON and binary variants run the same workload at
// 1, 8 and 64 concurrent clients; `make bench-json` records the
// allocs/op gap to BENCH_PR<n>.json.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/service"
	"repro/internal/service/client"
)

func benchServe(b *testing.B, proto client.Protocol, clients int) {
	// DEF is a block assignment, so the solve contributes almost
	// nothing and the clock measures the wire layer — which is the
	// point: a 1024-task spec that JSON re-parses on every request
	// travels as three 16-byte refs once the intern table is warm.
	spec, _ := testTasks(1024)
	req := service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 64, Seed: 1},
		Tasks:      spec,
		Mapper:     "DEF",
		Seed:       7,
	}
	srv := service.New(service.Config{Workers: clients})
	h := srv.Handler()

	// One client per goroutine: section memos and protocol pinning
	// are per-client state, and 64 clients is the scenario the intern
	// table exists for. The warm-up request pins the protocol, fills
	// the engine and result caches, and interns the sections, so the
	// timed region never solves.
	cs := make([]*client.Client, clients)
	for i := range cs {
		cs[i] = client.InProcess(h, client.WithProtocol(proto))
		if _, err := cs[i].Map(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if _, err := c.Map(context.Background(), req); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func BenchmarkServeParallel(b *testing.B) {
	protos := []struct {
		name  string
		proto client.Protocol
	}{
		{"json", client.ProtoJSON},
		{"binary", client.ProtoBinary},
	}
	for _, p := range protos {
		for _, n := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/c%d", p.name, n), func(b *testing.B) {
				benchServe(b, p.proto, n)
			})
		}
	}
}

package service_test

// Portfolio endpoint tests: wire-level racing with fail-fast
// validation, determinism across the parallelism knob, candidate
// auto-expansion, status counters, and the Solve-spec equivalence to
// the closure-option engine path.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	topomap "repro"
	"repro/internal/service"
)

// portfolioCandidates returns the seven Figure-2 mappers as wire
// candidates at one seed.
func portfolioCandidates(seed int64) []topomap.Solve {
	var out []topomap.Solve
	for _, mp := range topomap.Mappers() {
		out = append(out, topomap.Solve{Mapper: mp, Seed: seed})
	}
	return out
}

// TestPortfolioEndpoint races the Figure-2 mappers over the wire: the
// winner must head an ascending leaderboard, and Best must be
// byte-identical to a plain /v1/map of the winning candidate.
func TestPortfolioEndpoint(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{})
	resp, err := c.Portfolio(context.Background(), service.PortfolioRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Candidates: portfolioCandidates(5),
		Objective:  topomap.MinimizeMetric("mc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Leaderboard) != len(topomap.Mappers()) {
		t.Fatalf("leaderboard has %d entries, want %d", len(resp.Leaderboard), len(topomap.Mappers()))
	}
	if resp.Skipped != 0 {
		t.Fatalf("skipped = %d", resp.Skipped)
	}
	if resp.Winner != resp.Leaderboard[0].Index {
		t.Fatalf("winner %d != leaderboard head %d", resp.Winner, resp.Leaderboard[0].Index)
	}
	for i, entry := range resp.Leaderboard {
		if entry.Metrics == nil {
			t.Fatalf("rank %d (%s) has no metrics", i, entry.Solve.Mapper)
		}
		if entry.Score != entry.Metrics.MC {
			t.Fatalf("rank %d: score %g != MC %g", i, entry.Score, entry.Metrics.MC)
		}
		if i > 0 && entry.Score < resp.Leaderboard[i-1].Score {
			t.Fatalf("leaderboard not ascending at rank %d", i)
		}
	}
	winner := resp.Leaderboard[0].Solve
	single, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Mapper:     string(winner.Mapper),
		Seed:       winner.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Best.NodeOf, single.NodeOf) ||
		!reflect.DeepEqual(resp.Best.GroupOf, single.GroupOf) ||
		resp.Best.Metrics != single.Metrics {
		t.Fatal("portfolio best diverged from a plain /v1/map of the winning candidate")
	}
}

// TestPortfolioWireValidation: malformed portfolios cost a 400 before
// any solve — duplicate (mapper, seed) candidates, unknown mapper and
// objective names, wire-set candidate workers, and the candidate cap.
func TestPortfolioWireValidation(t *testing.T) {
	spec, _ := testTasks(32)
	c := newClient(t, service.Config{MaxPortfolioCandidates: 3})
	good := service.PortfolioRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
		Tasks:      spec,
		Candidates: []topomap.Solve{{Mapper: "UWH", Seed: 1}, {Mapper: "UMC", Seed: 1}},
	}
	cases := []struct {
		name   string
		mutate func(service.PortfolioRequest) service.PortfolioRequest
		want   string
	}{
		{"duplicate candidates", func(r service.PortfolioRequest) service.PortfolioRequest {
			r.Candidates = []topomap.Solve{{Mapper: "UWH", Seed: 1}, {Mapper: "uwh", Seed: 1}}
			return r
		}, "duplicate"},
		{"unknown mapper", func(r service.PortfolioRequest) service.PortfolioRequest {
			r.Candidates = []topomap.Solve{{Mapper: "NOPE", Seed: 1}}
			return r
		}, "unknown mapper"},
		{"unknown objective", func(r service.PortfolioRequest) service.PortfolioRequest {
			r.Objective = topomap.MinimizeMetric("latency")
			return r
		}, "unknown objective"},
		{"ambiguous objective", func(r service.PortfolioRequest) service.PortfolioRequest {
			r.Objective = topomap.Objective{Minimize: "wh",
				Terms: []topomap.ObjectiveTerm{{Metric: "mc", Weight: 1}}}
			return r
		}, "pick one"},
		{"candidate workers", func(r service.PortfolioRequest) service.PortfolioRequest {
			r.Candidates = []topomap.Solve{{Mapper: "UWH", Seed: 1, Workers: 4}}
			return r
		}, "parallelism"},
		{"candidate cap", func(r service.PortfolioRequest) service.PortfolioRequest {
			r.Candidates = []topomap.Solve{
				{Mapper: "UWH", Seed: 1}, {Mapper: "UMC", Seed: 1},
				{Mapper: "UG", Seed: 1}, {Mapper: "DEF", Seed: 1}}
			return r
		}, "cap"},
		{"sim objective without sim", func(r service.PortfolioRequest) service.PortfolioRequest {
			r.Objective = topomap.MinimizeMetric("sim_seconds")
			return r
		}, "sim spec"},
	}
	for _, tc := range cases {
		_, err := c.Portfolio(context.Background(), tc.mutate(good))
		if err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if !strings.Contains(err.Error(), "HTTP 400") {
			t.Fatalf("%s: want a 400, got %q", tc.name, err)
		}
	}
	// The good request still solves after the error storm.
	if _, err := c.Portfolio(context.Background(), good); err != nil {
		t.Fatalf("server unserviceable after validation errors: %v", err)
	}
}

// TestPortfolioParallelismDeterminism: the parallelism field changes
// wall-clock only — winner, leaderboard order and scores, and the
// winning placement are identical at 1, 2, 8 and clamped values.
func TestPortfolioParallelismDeterminism(t *testing.T) {
	spec, _ := testTasks(64)
	c := newClient(t, service.Config{Workers: 8})
	req := service.PortfolioRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Candidates: portfolioCandidates(3),
		Objective:  topomap.MinimizeMetric("wh"),
	}
	base, err := c.Portfolio(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 8, 1000} {
		req.Parallelism = p
		got, err := c.Portfolio(context.Background(), req)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if got.Winner != base.Winner {
			t.Fatalf("parallelism=%d: winner %d, want %d", p, got.Winner, base.Winner)
		}
		for i := range base.Leaderboard {
			b, g := base.Leaderboard[i], got.Leaderboard[i]
			if g.Index != b.Index || g.Score != b.Score {
				t.Fatalf("parallelism=%d: leaderboard rank %d diverged", p, i)
			}
		}
		if !reflect.DeepEqual(got.Best.NodeOf, base.Best.NodeOf) ||
			!reflect.DeepEqual(got.Best.GroupOf, base.Best.GroupOf) {
			t.Fatalf("parallelism=%d: winning placement diverged", p)
		}
	}
}

// TestPortfolioAutoExpansion: an empty candidate list expands
// server-side to every registered mapper the topology dispatches
// (including this binary's test mappers — the registry is the
// registry).
func TestPortfolioAutoExpansion(t *testing.T) {
	spec, _ := testTasks(32)
	c := newClient(t, service.Config{})
	resp, err := c.Portfolio(context.Background(), service.PortfolioRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
		Tasks:      spec,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Coordinate-requiring mappers (GEOM, SFCM) are excluded: the spec
	// carries no coords, so the expansion must leave them out rather
	// than fail the whole portfolio.
	want := 0
	for _, mp := range topomap.RegisteredMappers() {
		if !topomap.MapperCapsOf(mp).NeedsCoords {
			want++
		}
	}
	if len(resp.Leaderboard) < want {
		t.Fatalf("auto expansion ran %d candidates, registry has %d coordinate-free mappers",
			len(resp.Leaderboard), want)
	}
	for _, entry := range resp.Leaderboard {
		if topomap.MapperCapsOf(entry.Solve.Mapper).NeedsCoords {
			t.Fatalf("auto expansion included %s on a coordinate-free task graph", entry.Solve.Mapper)
		}
	}
	for _, entry := range resp.Leaderboard {
		if entry.Solve.Seed != 2 {
			t.Fatalf("auto candidate %s ran at seed %d, want 2", entry.Solve.Mapper, entry.Solve.Seed)
		}
	}
}

// TestPortfolioDeadlineBestSoFarOverWire: a deadline that cuts off
// one candidate must still deliver HTTP 200 with the best of what
// completed and the loser marked skipped — the handler waits for the
// portfolio to assemble its best-so-far result instead of racing the
// response against the deadline. TEST-SLOW (registered above) sleeps
// 500ms; the 150ms deadline kills it, UWH survives.
func TestPortfolioDeadlineBestSoFarOverWire(t *testing.T) {
	spec, _ := testTasks(32)
	c := newClient(t, service.Config{Workers: 2})
	resp, err := c.Portfolio(context.Background(), service.PortfolioRequest{
		Topology:    torusSpec(),
		Allocation:  service.AllocationSpec{SparseNodes: 4, Seed: 1},
		Tasks:       spec,
		Candidates:  []topomap.Solve{{Mapper: "UWH", Seed: 1}, {Mapper: "TEST-SLOW", Seed: 1}},
		TimeoutMS:   150,
		Parallelism: 2,
	})
	if err != nil {
		t.Fatalf("deadline portfolio must return best-so-far, got %v", err)
	}
	if resp.Winner != 0 || resp.Best.Mapper != "UWH" {
		t.Fatalf("winner = %d (%s), want 0 (UWH)", resp.Winner, resp.Best.Mapper)
	}
	if resp.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", resp.Skipped)
	}
	last := resp.Leaderboard[len(resp.Leaderboard)-1]
	if !last.Skipped || last.Index != 1 || last.Metrics != nil {
		t.Fatalf("skipped entry malformed: %+v", last)
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.PortfolioSkipped != 1 {
		t.Fatalf("portfolio_skipped = %d, want 1", st.PortfolioSkipped)
	}
}

// TestPortfolioStatusCounters: /statusz exposes the portfolio
// traffic.
func TestPortfolioStatusCounters(t *testing.T) {
	spec, _ := testTasks(32)
	c := newClient(t, service.Config{MaxPortfolioCandidates: 5})
	for i := 0; i < 2; i++ {
		if _, err := c.Portfolio(context.Background(), service.PortfolioRequest{
			Topology:   torusSpec(),
			Allocation: service.AllocationSpec{SparseNodes: 4, Seed: 1},
			Tasks:      spec,
			Candidates: []topomap.Solve{{Mapper: "UWH", Seed: 1}, {Mapper: "UG", Seed: 1}, {Mapper: "DEF", Seed: 1}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.PortfolioRequests != 2 {
		t.Fatalf("portfolio_requests = %d, want 2", st.PortfolioRequests)
	}
	if st.PortfolioCandidates != 6 {
		t.Fatalf("portfolio_candidates = %d, want 6", st.PortfolioCandidates)
	}
	if st.MaxCandidates != 5 {
		t.Fatalf("max_candidates = %d, want 5", st.MaxCandidates)
	}
}

// TestSolveWireMatchesClosurePath is the service side of the Solve
// round trip: a wire request with every option set must match a
// direct engine Run built from the closure options, byte for byte —
// proving the wire's Solve lowering and the legacy option path are
// the same pipeline.
func TestSolveWireMatchesClosurePath(t *testing.T) {
	spec, tg := testTasks(64)
	c := newClient(t, service.Config{})
	topo := topomap.NewTorus([]int{6, 6, 6}, []float64{9.38e9, 4.68e9, 9.38e9})
	a, err := topomap.SparseAllocation(topo, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := topomap.NewEngine(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := eng.Run(topomap.Request{Mapper: topomap.UWH, Tasks: tg, Seed: 11,
		Options: []topomap.RequestOption{topomap.WithRefinement(), topomap.WithFineRefine()}})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := c.Map(context.Background(), service.MapRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Mapper:     "UWH",
		Seed:       11,
		Refine:     true,
		FineRefine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wire.NodeOf, direct.NodeOf) || !reflect.DeepEqual(wire.GroupOf, direct.GroupOf) {
		t.Fatal("wire Solve path diverged from the closure-option engine path")
	}
	if wire.FineWHGain != direct.FineWHGain || wire.FineVolGain != direct.FineVolGain {
		t.Fatal("fine-refine gains diverged between wire and closure paths")
	}
	if wire.Metrics.WH != direct.Metrics.WH || wire.Metrics.MC != direct.Metrics.MC {
		t.Fatal("metrics diverged between wire and closure paths")
	}
}

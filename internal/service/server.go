package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	topomap "repro"
	"repro/internal/registry"
)

// Config tunes a Server. The zero value serves with sensible
// defaults.
type Config struct {
	// Workers bounds the total solver goroutines across all in-flight
	// requests (further requests queue, cancellable while waiting).
	// A request with wire-level parallelism p occupies p worker
	// slots, so a parallel batch can never oversubscribe the host.
	// Default: GOMAXPROCS.
	Workers int
	// MaxParallelism caps the per-request `parallelism` field: a
	// request may ask for more, but the server clamps it here (and to
	// Workers). Default: GOMAXPROCS.
	MaxParallelism int
	// CacheSize bounds the engine LRU cache. Default 32 engines.
	CacheSize int
	// MaxPortfolioCandidates caps the explicit candidate list of one
	// /v1/portfolio request. Default 16.
	MaxPortfolioCandidates int
	// ResultCacheSize bounds the LRU of recent results /v1/remap
	// resolves fingerprints against. Default 128 results.
	ResultCacheSize int
	// InternTableSize bounds the LRU of interned request sections the
	// binary protocol's 16-byte references resolve against. Default
	// 512 sections.
	InternTableSize int
	// DefaultTimeout is the per-request solve deadline when the
	// request carries no timeout_ms. Default 30s.
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 32 MiB.
	MaxBodyBytes int64
	// Logger, when non-nil, receives one structured line per request
	// (request id, endpoint, mapper, cache hit, outcome, duration).
	// Nil disables request logging; counters and histograms record
	// regardless.
	Logger *slog.Logger
}

// Server is the mapping service: HTTP handlers over a bounded worker
// pool and an allocation-keyed engine cache. Create it with New and
// mount Handler on any http.Server (cmd/mapd) or drive it in-process
// through the client package.
type Server struct {
	cfg     Config
	cache   *topomap.EngineCache
	results *resultCache
	intern  *internTable
	sem     chan struct{}
	acq     chan struct{} // serializes slot acquisition (multi-slot safe)
	st      *stats
	mux     *http.ServeMux
	start   time.Time
	log     *slog.Logger
	reqID   atomic.Uint64
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxParallelism <= 0 {
		cfg.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxParallelism > cfg.Workers {
		cfg.MaxParallelism = cfg.Workers
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 32
	}
	if cfg.MaxPortfolioCandidates <= 0 {
		cfg.MaxPortfolioCandidates = 16
	}
	if cfg.ResultCacheSize <= 0 {
		cfg.ResultCacheSize = 128
	}
	if cfg.InternTableSize <= 0 {
		cfg.InternTableSize = 512
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	s := &Server{
		cfg:     cfg,
		cache:   topomap.NewEngineCache(cfg.CacheSize),
		results: newResultCache(cfg.ResultCacheSize),
		intern:  newInternTable(cfg.InternTableSize),
		sem:     make(chan struct{}, cfg.Workers),
		acq:     make(chan struct{}, 1),
		st:      newStats(),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		log:     cfg.Logger,
	}
	s.mux.HandleFunc("/v1/map", s.handleMap)
	s.mux.HandleFunc("/v1/map/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/portfolio", s.handlePortfolio)
	s.mux.HandleFunc("/v1/remap", s.handleRemap)
	s.mux.HandleFunc("/v1/mappers", s.handleMappers)
	s.mux.HandleFunc("/v2/map", s.handleMapBin)
	s.mux.HandleFunc("/v2/map/batch", s.handleBatchBin)
	s.mux.HandleFunc("/v2/remap", s.handleRemapBin)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// requestLog accumulates the fields of one request's structured log
// line; the handler fills them in as they become known and emit
// writes the line once, from a defer. A nil server logger makes the
// whole thing a cheap no-op.
type requestLog struct {
	s        *Server
	id       uint64
	endpoint string
	mapper   string
	cacheHit bool
	status   int
	errMsg   string
	began    time.Time
}

// beginLog opens the log record of one request (status defaults to
// 200 — error paths overwrite it through fail or error).
func (s *Server) beginLog(endpoint string) *requestLog {
	return &requestLog{
		s: s, id: s.reqID.Add(1), endpoint: endpoint,
		status: http.StatusOK, began: time.Now(),
	}
}

// fail records an error outcome without writing the response.
func (l *requestLog) fail(status int, err error) {
	l.status = status
	if err != nil {
		l.errMsg = err.Error()
	}
}

// error records the outcome, bumps the error counter and writes the
// wire error — the one call every handler error path makes.
func (l *requestLog) error(w http.ResponseWriter, status int, err error) {
	l.s.st.errors.Add(1)
	l.fail(status, err)
	writeError(w, status, err)
}

// emit writes the request's log line: Info for 2xx, Warn otherwise.
func (l *requestLog) emit() {
	if l.s.log == nil {
		return
	}
	attrs := []slog.Attr{
		slog.Uint64("req_id", l.id),
		slog.String("endpoint", l.endpoint),
		slog.Int("status", l.status),
		slog.Float64("duration_ms", float64(time.Since(l.began))/float64(time.Millisecond)),
	}
	if l.mapper != "" {
		attrs = append(attrs, slog.String("mapper", l.mapper))
	}
	attrs = append(attrs, slog.Bool("cache_hit", l.cacheHit))
	level := slog.LevelInfo
	if l.status >= 400 {
		level = slog.LevelWarn
		attrs = append(attrs, slog.String("error", l.errMsg))
	}
	l.s.log.LogAttrs(context.Background(), level, "request", attrs...)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// engineFor resolves the request's (topology, allocation) pair
// through the LRU cache: the canonical key is derived from the wire
// specs alone, so a hit skips building the topology, the allocation
// and — the expensive part — the engine's pairwise routing state.
func (s *Server) engineFor(ts TopologySpec, as AllocationSpec) (*topomap.Engine, bool, error) {
	ts, key, err := s.engineKey(ts, as)
	if err != nil {
		return nil, false, err
	}
	return s.engineNormalized(key, ts, as)
}

// engineKey derives the engine cache key of a spec pair — the
// normalized topology key joined with the allocation key — returning
// the normalized topology so the caller can build from it.
func (s *Server) engineKey(ts TopologySpec, as AllocationSpec) (TopologySpec, string, error) {
	ts, err := ts.Normalize()
	if err != nil {
		return ts, "", err
	}
	allocKey, err := as.Key()
	if err != nil {
		return ts, "", err
	}
	return ts, ts.Key() + "|" + allocKey, nil
}

// engineNormalized is engineFor with the normalization and keying
// already done — the map handler derives the key early for its
// solve-memo lookup and must not pay for it twice.
func (s *Server) engineNormalized(key string, ts TopologySpec, as AllocationSpec) (*topomap.Engine, bool, error) {
	return s.cache.GetKeyed(key, func() (*topomap.Engine, error) {
		net, err := ts.Build()
		if err != nil {
			return nil, err
		}
		a, err := as.Build(net)
		if err != nil {
			return nil, err
		}
		return topomap.NewEngine(net.Topo, a)
	})
}

// timeout resolves the effective solve deadline of a request.
func (s *Server) timeout(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// parallelism clamps a request's wire-level parallelism to the
// server's cap: at least 1, at most min(MaxParallelism, Workers).
func (s *Server) parallelism(p int) int {
	if p < 1 {
		p = 1
	}
	if p > s.cfg.MaxParallelism {
		p = s.cfg.MaxParallelism
	}
	return p
}

// acquire takes n worker slots, waiting cancellably; the returned
// release must be called when the solve finishes. Acquisition is
// serialized through s.acq so two multi-slot requests can never
// deadlock each other holding partial slot sets; a cancelled waiter
// returns everything it held.
func (s *Server) acquire(ctx context.Context, n int) (release func(), err error) {
	select {
	case s.acq <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.acq }()
	for got := 0; got < n; got++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			for i := 0; i < got; i++ {
				<-s.sem
			}
			return nil, ctx.Err()
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-s.sem
		}
	}, nil
}

// respond converts an engine result to the wire form, rendering the
// rankfile text when asked.
func respond(res *topomap.MapResult, eng *topomap.Engine, hit bool, wantRankfile bool, elapsed time.Duration) (*MapResponse, error) {
	out := &MapResponse{
		Mapper:      string(res.Mapper),
		GroupOf:     res.GroupOf,
		NodeOf:      res.NodeOf,
		AllocNodes:  eng.Allocation().Nodes,
		Metrics:     metricsPayload(res.Metrics),
		FineWHGain:  res.FineWHGain,
		FineVolGain: res.FineVolGain,
		CacheHit:    hit,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	}
	if wantRankfile {
		var sb strings.Builder
		if err := topomap.WriteRankOrder(&sb, res.Placement(), eng.Allocation()); err != nil {
			return nil, err // already prefixed "rankfile:"
		}
		out.Rankfile = sb.String()
	}
	return out, nil
}

// solve runs fn on `slots` worker slots under deadline; fn captures
// its own result. The handler returns as soon as the deadline expires
// even if a solve stage is still winding down to its next
// cancellation point; the abandoned solve keeps its slots until it
// finishes (bounding CPU oversubscription) and is then discarded.
func (s *Server) solve(ctx context.Context, slots int, fn func(context.Context) error) error {
	return s.solveUntil(ctx, ctx, slots, fn)
}

// solveUntil separates the two contexts a solve answers to: fn runs
// under solveCtx (the per-request deadline — cancelling it is how the
// deadline reaches the candidates), while the caller waits for fn or
// for waitCtx, whichever ends first. /v1/map races both on the same
// context (a dead deadline means the response has no value); the
// portfolio handler passes the bare client context as waitCtx so an
// expired deadline cancels the race but the handler still collects
// the best-so-far result RunPortfolio assembles after it — only a
// client disconnect abandons the solve outright.
func (s *Server) solveUntil(waitCtx, solveCtx context.Context, slots int, fn func(context.Context) error) error {
	release, err := s.acquire(solveCtx, slots)
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		defer release()
		done <- fn(solveCtx)
	}()
	select {
	case err := <-done:
		return err
	case <-waitCtx.Done():
		return waitCtx.Err()
	}
}

// errStatus maps a solve error to its HTTP status. Deadline expiry is
// a server-side timeout; a canceled context means the client went
// away (nobody reads the response) and must not inflate the timeout
// counter operators tune deadlines from.
func (s *Server) errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.st.timeouts.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	}
	return http.StatusBadRequest
}

// handleMap serves POST /v1/map: one mapping job.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.st.requests.Add(1)
	s.st.protoJSON.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	lg := s.beginLog(endpointMap)
	defer lg.emit()
	var req MapRequest
	if err := readJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	lg.mapper = req.Mapper
	began := time.Now()
	tg, err := req.Tasks.Build()
	if err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	ts, engineKey, err := s.engineKey(req.Topology, req.Allocation)
	if err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	// Solve memo: an identical repeat request — solves are
	// deterministic — is answered from the result cache without
	// touching a worker slot; only response framing (rankfile, trace
	// echo) re-renders. Stage histograms count real solves only.
	memoKey := solveMemoKey(engineKey, req.Mapper, req.Seed, req.Refine, req.FineRefine, req.Balance, tg)
	if ent, ok := s.results.getReq(memoKey); ok {
		lg.cacheHit = true
		out, err := respond(ent.res, ent.eng, true, req.Rankfile, time.Since(began))
		if err != nil {
			lg.error(w, http.StatusBadRequest, err)
			return
		}
		if req.Trace {
			out.Trace = ent.res.Trace.Stages()
		}
		out.Fingerprint = ent.fp
		s.st.observe(endpointMap, out.ElapsedMS)
		writeJSON(w, http.StatusOK, out)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	workers := s.parallelism(req.Parallelism)
	// The server traces every solve to feed its per-stage histograms
	// (tracing is a handful of clock reads; the mapping is
	// byte-identical either way); req.Trace only decides whether the
	// breakdown travels back on the wire.
	sol := req.Solve(workers)
	sol.Trace = true
	// The engine build — the expensive cold path — runs inside the
	// worker slots and under the deadline, like the solve itself.
	var eng *topomap.Engine
	var hit bool
	var res *topomap.MapResult
	err = s.solve(ctx, workers, func(ctx context.Context) error {
		var err error
		eng, hit, err = s.engineNormalized(engineKey, ts, req.Allocation)
		if err != nil {
			return err
		}
		res, err = eng.RunSolve(ctx, tg, sol)
		return err
	})
	if err != nil {
		lg.error(w, s.errStatus(err), err)
		return
	}
	lg.cacheHit = hit
	out, err := respond(res, eng, hit, req.Rankfile, time.Since(began))
	if err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	s.st.observeStages(res.Trace.Stages())
	s.st.observeResult(res.Metrics.Makespan, res.Metrics.LoadImbalance)
	if req.Trace {
		out.Trace = res.Trace.Stages()
	}
	// Feed the result cache so /v1/remap can pick this mapping up by
	// fingerprint when the allocation changes, and the solve memo so
	// a repeat of this exact request skips the solve.
	out.Fingerprint = resultFingerprint(eng, tg, res)
	s.results.putReq(memoKey, resultEntry{fp: out.Fingerprint, eng: eng, tasks: tg, res: res})
	s.st.observe(endpointMap, out.ElapsedMS)
	writeJSON(w, http.StatusOK, out)
}

// handleRemap serves POST /v1/remap: an incremental remap of a cached
// result onto a changed allocation. The previous mapping arrives as a
// fingerprint (404 when unknown or evicted — the client re-solves via
// /v1/map); only the allocation delta travels. The engine patches its
// route cache, migrates stranded tasks, warm-starts refinement and
// guards the shortcut with the quality fence; the response carries a
// fresh fingerprint so follow-up deltas chain without re-solving.
func (s *Server) handleRemap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.st.remapRequests.Add(1)
	s.st.protoJSON.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	lg := s.beginLog(endpointRemap)
	defer lg.emit()
	var req RemapRequest
	if err := readJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	lg.mapper = string(req.Solve.Mapper)
	entry, ok := s.results.get(req.Fingerprint)
	if !ok {
		lg.error(w, http.StatusNotFound, fmt.Errorf("remap: unknown fingerprint %q; the result may have been evicted — re-solve through /v1/map", req.Fingerprint))
		return
	}
	lg.cacheHit = true
	began := time.Now()
	workers := s.parallelism(req.Parallelism)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	// Trace every remap server-side (see handleMap); the wire echoes
	// the breakdown only when the request's solve asked.
	spec := req.Spec(workers)
	spec.Solve.Trace = true
	var rres *topomap.RemapResult
	err := s.solve(ctx, workers, func(ctx context.Context) error {
		var err error
		rres, err = entry.eng.RunRemap(ctx, entry.tasks, entry.res, req.Delta, spec)
		return err
	})
	if err != nil {
		lg.error(w, s.errStatus(err), err)
		return
	}
	// The post-delta engine rides in the new result's cache entry, so
	// chained deltas keep patching instead of rebuilding. CacheHit is
	// true by construction: the route state came from a cached result.
	out, err := respond(rres.Result, rres.Engine, true, req.Rankfile, time.Since(began))
	if err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	s.st.observeStages(rres.Result.Trace.Stages())
	s.st.observeResult(rres.Result.Metrics.Makespan, rres.Result.Metrics.LoadImbalance)
	if req.Solve.Trace {
		out.Trace = rres.Result.Trace.Stages()
	}
	out.Fingerprint = resultFingerprint(rres.Engine, entry.tasks, rres.Result)
	s.results.put(resultEntry{fp: out.Fingerprint, eng: rres.Engine, tasks: entry.tasks, res: rres.Result})
	s.st.remapPairsReused.Add(int64(rres.PairsReused))
	s.st.remapPairsTotal.Add(int64(rres.PairsTotal))
	if rres.Warm {
		s.st.remapWarm.Add(1)
	}
	if rres.FenceTripped {
		s.st.remapFallbacks.Add(1)
	}
	s.st.observe(endpointRemap, out.ElapsedMS)
	writeJSON(w, http.StatusOK, RemapResponse{
		MapResponse:   *out,
		Warm:          rres.Warm,
		FenceTripped:  rres.FenceTripped,
		PrevScore:     rres.PrevScore,
		WarmScore:     rres.WarmScore,
		ColdScore:     rres.ColdScore,
		PairsReused:   rres.PairsReused,
		PairsTotal:    rres.PairsTotal,
		MigratedTasks: rres.MigratedTasks,
	})
}

// handleBatch serves POST /v1/map/batch: several mapper runs against
// one shared engine, fanned out on the engine's deterministic worker
// pool.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.st.batchRequests.Add(1)
	s.st.protoJSON.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	lg := s.beginLog(endpointBatch)
	defer lg.emit()
	var req BatchRequest
	if err := readJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Requests) == 0 {
		lg.error(w, http.StatusBadRequest, fmt.Errorf("batch: empty requests"))
		return
	}
	began := time.Now()
	tg, err := req.Tasks.Build()
	if err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	workers := s.parallelism(req.Parallelism)
	runs := make([]topomap.Request, len(req.Requests))
	for i, item := range req.Requests {
		runs[i] = item.Solve(workers).Request(tg)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	// A batch runs its items serially, each item solving with the
	// batch's `parallelism` workers, and occupies that many slots for
	// its whole duration — the pool's accounting stays exact, so a
	// stream of parallel batches cannot oversubscribe the host.
	// Clients that want cross-item parallelism issue parallel /v1/map
	// requests, which share the cached engine anyway.
	var eng *topomap.Engine
	var hit bool
	var results []*topomap.MapResult
	err = s.solve(ctx, workers, func(ctx context.Context) error {
		var err error
		eng, hit, err = s.engineFor(req.Topology, req.Allocation)
		if err != nil {
			return err
		}
		results, err = eng.RunBatchContext(ctx, runs, 1)
		return err
	})
	if err != nil {
		lg.error(w, s.errStatus(err), err)
		return
	}
	lg.cacheHit = hit
	out := BatchResponse{
		Results:   make([]MapResponse, len(results)),
		CacheHit:  hit,
		ElapsedMS: float64(time.Since(began)) / float64(time.Millisecond),
	}
	for i, res := range results {
		// Items share one engine run; only the batch-level elapsed is
		// meaningful, so per-item elapsed_ms is omitted.
		item, err := respond(res, eng, hit, false, 0)
		if err != nil {
			lg.error(w, http.StatusBadRequest, err)
			return
		}
		// Batch items trace only on request (a sweep's point is bulk
		// throughput); traced items feed the stage histograms too.
		if res.Trace != nil {
			s.st.observeStages(res.Trace.Stages())
			item.Trace = res.Trace.Stages()
		}
		s.st.observeResult(res.Metrics.Makespan, res.Metrics.LoadImbalance)
		out.Results[i] = *item
	}
	s.st.observe(endpointBatch, out.ElapsedMS)
	writeJSON(w, http.StatusOK, out)
}

// handlePortfolio serves POST /v1/portfolio: a candidate set raced
// against one shared engine toward a declared objective. The request
// is validated fail-fast — duplicate candidates, unknown mapper or
// objective names and the candidate cap all cost a 400 before any
// slot is held — and then occupies `parallelism` worker slots for the
// whole race, exactly like a batch.
func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.st.portfolioRequests.Add(1)
	s.st.protoJSON.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	lg := s.beginLog(endpointPortfolio)
	defer lg.emit()
	var req PortfolioRequest
	if err := readJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(s.cfg.MaxPortfolioCandidates); err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	began := time.Now()
	tg, err := req.Tasks.Build()
	if err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	workers := s.parallelism(req.Parallelism)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	var eng *topomap.Engine
	var hit bool
	var pres *topomap.PortfolioResult
	err = s.solveUntil(r.Context(), ctx, workers, func(ctx context.Context) error {
		var err error
		eng, hit, err = s.engineFor(req.Topology, req.Allocation)
		if err != nil {
			return err
		}
		pres, err = eng.RunPortfolio(ctx, req.engineRequest(tg, workers))
		return err
	})
	if err != nil {
		lg.error(w, s.errStatus(err), err)
		return
	}
	lg.cacheHit = hit
	lg.mapper = string(pres.Best.Mapper)
	best, err := respond(pres.Best, eng, hit, req.Rankfile, 0)
	if err != nil {
		lg.error(w, http.StatusBadRequest, err)
		return
	}
	// Candidates trace only when their Solve asks (they race — tracing
	// all of them by default would be pure overhead); traced winners
	// carry the breakdown out and feed the stage histograms.
	if pres.Best.Trace != nil {
		s.st.observeStages(pres.Best.Trace.Stages())
		best.Trace = pres.Best.Trace.Stages()
	}
	s.st.observeResult(pres.Best.Metrics.Makespan, pres.Best.Metrics.LoadImbalance)
	out := PortfolioResponse{
		Winner:      pres.Winner,
		Best:        *best,
		Leaderboard: make([]LeaderboardEntry, len(pres.Leaderboard)),
		Skipped:     pres.Skipped,
		CacheHit:    hit,
		ElapsedMS:   float64(time.Since(began)) / float64(time.Millisecond),
	}
	for i, entry := range pres.Leaderboard {
		le := LeaderboardEntry{Index: entry.Index, Solve: entry.Solve, Score: entry.Score, Skipped: entry.Skipped}
		if entry.Result != nil {
			m := metricsPayload(entry.Result.Metrics)
			le.Metrics = &m
			le.SimSeconds = entry.Result.SimSeconds
		}
		out.Leaderboard[i] = le
	}
	s.st.portfolioCandidates.Add(int64(len(pres.Leaderboard)))
	s.st.portfolioSkipped.Add(int64(pres.Skipped))
	s.st.observe(endpointPortfolio, out.ElapsedMS)
	writeJSON(w, http.StatusOK, out)
}

// handleMappers serves GET /v1/mappers: the registry's capability
// listing.
func (s *Server) handleMappers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, MappersResponse{Mappers: registry.List()})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleStatusz serves GET /statusz: the live counters.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// Status snapshots the live counters.
func (s *Server) Status() Status {
	hits, misses, evictions := s.cache.Stats()
	rhits, rmisses, revictions := s.results.stats()
	hitsByAge, evictionsByAge := s.results.byAge()
	mhits, mmisses := s.results.memoStats()
	ihits, imisses, ievictions, iresends := s.intern.stats()
	p50, p90, p99, samples := s.st.all.quantiles()
	perEndpoint := make(map[string]LatencySummary, len(solveEndpoints))
	for _, e := range solveEndpoints {
		ep50, ep90, ep99, en := s.st.endpoint[e].quantiles()
		perEndpoint[e] = LatencySummary{P50MS: ep50, P90MS: ep90, P99MS: ep99, Samples: en}
	}
	goVersion, revision := buildInfo()
	return Status{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Requests:       s.st.requests.Load(),
		BatchRequests:  s.st.batchRequests.Load(),
		Errors:         s.st.errors.Load(),
		Timeouts:       s.st.timeouts.Load(),
		InFlight:       s.st.inflight.Load(),
		Workers:        s.cfg.Workers,
		MaxParallelism: s.cfg.MaxParallelism,

		PortfolioRequests:    s.st.portfolioRequests.Load(),
		PortfolioCandidates:  s.st.portfolioCandidates.Load(),
		PortfolioSkipped:     s.st.portfolioSkipped.Load(),
		MaxCandidates:        s.cfg.MaxPortfolioCandidates,
		RemapRequests:        s.st.remapRequests.Load(),
		RemapWarm:            s.st.remapWarm.Load(),
		RemapFallbacks:       s.st.remapFallbacks.Load(),
		RemapPairsReused:     s.st.remapPairsReused.Load(),
		RemapPairsTotal:      s.st.remapPairsTotal.Load(),
		ResultEntries:        s.results.len(),
		ResultCapacity:       s.cfg.ResultCacheSize,
		ResultHits:           rhits,
		ResultMisses:         rmisses,
		ResultEvictions:      revictions,
		ResultHitsByAge:      hitsByAge,
		ResultEvictionsByAge: evictionsByAge,
		SolveMemoHits:        mhits,
		SolveMemoMisses:      mmisses,
		ProtocolRequests: map[string]int64{
			protoJSONLabel:   s.st.protoJSON.Load(),
			protoBinaryLabel: s.st.protoBinary.Load(),
		},
		InternEntries:   s.intern.len(),
		InternCapacity:  s.cfg.InternTableSize,
		InternHits:      ihits,
		InternMisses:    imisses,
		InternEvictions: ievictions,
		InternResends:   iresends,
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvictions:  evictions,
		CacheEntries:    s.cache.Len(),
		CacheCapacity:   s.cache.Cap(),
		LatencyP50MS:    p50,
		LatencyP90MS:    p90,
		LatencyP99MS:    p99,
		LatencySamples:  samples,
		EndpointLatency: perEndpoint,
		Mappers:         len(registry.Names()),
		MakespanSolves:  s.st.makespanHist.count.Load(),
		MakespanSum:     float64(s.st.makespanHist.sumMicros.Load()) / 1e6,
		LoadImbalance:   math.Float64frombits(s.st.lastImbalance.Load()),
		GoVersion:       goVersion,
		VCSRevision:     revision,
	}
}

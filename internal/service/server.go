package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	topomap "repro"
	"repro/internal/registry"
)

// Config tunes a Server. The zero value serves with sensible
// defaults.
type Config struct {
	// Workers bounds the total solver goroutines across all in-flight
	// requests (further requests queue, cancellable while waiting).
	// A request with wire-level parallelism p occupies p worker
	// slots, so a parallel batch can never oversubscribe the host.
	// Default: GOMAXPROCS.
	Workers int
	// MaxParallelism caps the per-request `parallelism` field: a
	// request may ask for more, but the server clamps it here (and to
	// Workers). Default: GOMAXPROCS.
	MaxParallelism int
	// CacheSize bounds the engine LRU cache. Default 32 engines.
	CacheSize int
	// DefaultTimeout is the per-request solve deadline when the
	// request carries no timeout_ms. Default 30s.
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 32 MiB.
	MaxBodyBytes int64
}

// Server is the mapping service: HTTP handlers over a bounded worker
// pool and an allocation-keyed engine cache. Create it with New and
// mount Handler on any http.Server (cmd/mapd) or drive it in-process
// through the client package.
type Server struct {
	cfg   Config
	cache *topomap.EngineCache
	sem   chan struct{}
	acq   chan struct{} // serializes slot acquisition (multi-slot safe)
	st    *stats
	mux   *http.ServeMux
	start time.Time
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxParallelism <= 0 {
		cfg.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxParallelism > cfg.Workers {
		cfg.MaxParallelism = cfg.Workers
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 32
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	s := &Server{
		cfg:   cfg,
		cache: topomap.NewEngineCache(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.Workers),
		acq:   make(chan struct{}, 1),
		st:    newStats(),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("/v1/map", s.handleMap)
	s.mux.HandleFunc("/v1/map/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/mappers", s.handleMappers)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// engineFor resolves the request's (topology, allocation) pair
// through the LRU cache: the canonical key is derived from the wire
// specs alone, so a hit skips building the topology, the allocation
// and — the expensive part — the engine's pairwise routing state.
func (s *Server) engineFor(ts TopologySpec, as AllocationSpec) (*topomap.Engine, bool, error) {
	ts, err := ts.Normalize()
	if err != nil {
		return nil, false, err
	}
	allocKey, err := as.Key()
	if err != nil {
		return nil, false, err
	}
	return s.cache.GetKeyed(ts.Key()+"|"+allocKey, func() (*topomap.Engine, error) {
		net, err := ts.Build()
		if err != nil {
			return nil, err
		}
		a, err := as.Build(net)
		if err != nil {
			return nil, err
		}
		return topomap.NewEngine(net.Topo, a)
	})
}

// timeout resolves the effective solve deadline of a request.
func (s *Server) timeout(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// parallelism clamps a request's wire-level parallelism to the
// server's cap: at least 1, at most min(MaxParallelism, Workers).
func (s *Server) parallelism(p int) int {
	if p < 1 {
		p = 1
	}
	if p > s.cfg.MaxParallelism {
		p = s.cfg.MaxParallelism
	}
	return p
}

// acquire takes n worker slots, waiting cancellably; the returned
// release must be called when the solve finishes. Acquisition is
// serialized through s.acq so two multi-slot requests can never
// deadlock each other holding partial slot sets; a cancelled waiter
// returns everything it held.
func (s *Server) acquire(ctx context.Context, n int) (release func(), err error) {
	select {
	case s.acq <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.acq }()
	for got := 0; got < n; got++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			for i := 0; i < got; i++ {
				<-s.sem
			}
			return nil, ctx.Err()
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-s.sem
		}
	}, nil
}

// buildRequest turns wire options into an engine Request. workers is
// the server-clamped per-request parallelism; it is always set
// explicitly so the engine's host-wide default cannot bypass the
// service's slot accounting.
func buildRequest(mapper string, seed int64, refine, fineRefine bool, workers int, tg *topomap.TaskGraph) topomap.Request {
	req := topomap.Request{Mapper: topomap.Mapper(strings.ToUpper(mapper)), Tasks: tg, Seed: seed}
	req.Options = append(req.Options, topomap.WithParallelism(workers))
	if refine {
		req.Options = append(req.Options, topomap.WithRefinement())
	}
	if fineRefine {
		req.Options = append(req.Options, topomap.WithFineRefine())
	}
	return req
}

// respond converts an engine result to the wire form, rendering the
// rankfile text when asked.
func respond(res *topomap.MapResult, eng *topomap.Engine, hit bool, wantRankfile bool, elapsed time.Duration) (*MapResponse, error) {
	out := &MapResponse{
		Mapper:      string(res.Mapper),
		GroupOf:     res.GroupOf,
		NodeOf:      res.NodeOf,
		AllocNodes:  eng.Allocation().Nodes,
		Metrics:     metricsPayload(res.Metrics),
		FineWHGain:  res.FineWHGain,
		FineVolGain: res.FineVolGain,
		CacheHit:    hit,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	}
	if wantRankfile {
		var sb strings.Builder
		if err := topomap.WriteRankOrder(&sb, res.Placement(), eng.Allocation()); err != nil {
			return nil, err // already prefixed "rankfile:"
		}
		out.Rankfile = sb.String()
	}
	return out, nil
}

// solveOutcome carries a solve across the goroutine boundary.
type solveOutcome struct {
	res []*topomap.MapResult
	err error
}

// solve runs fn on `slots` worker slots under deadline. The handler
// returns as soon as the deadline expires even if a solve stage is
// still winding down to its next cancellation point; the abandoned
// solve keeps its slots until it finishes (bounding CPU
// oversubscription) and is then discarded.
func (s *Server) solve(ctx context.Context, slots int, fn func(context.Context) ([]*topomap.MapResult, error)) ([]*topomap.MapResult, error) {
	release, err := s.acquire(ctx, slots)
	if err != nil {
		return nil, err
	}
	done := make(chan solveOutcome, 1)
	go func() {
		defer release()
		res, err := fn(ctx)
		done <- solveOutcome{res: res, err: err}
	}()
	select {
	case out := <-done:
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// errStatus maps a solve error to its HTTP status. Deadline expiry is
// a server-side timeout; a canceled context means the client went
// away (nobody reads the response) and must not inflate the timeout
// counter operators tune deadlines from.
func (s *Server) errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.st.timeouts.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	}
	return http.StatusBadRequest
}

// handleMap serves POST /v1/map: one mapping job.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.st.requests.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	var req MapRequest
	if err := readJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.st.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	began := time.Now()
	tg, err := req.Tasks.Build()
	if err != nil {
		s.st.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	workers := s.parallelism(req.Parallelism)
	run := buildRequest(req.Mapper, req.Seed, req.Refine, req.FineRefine, workers, tg)
	// The engine build — the expensive cold path — runs inside the
	// worker slots and under the deadline, like the solve itself.
	var eng *topomap.Engine
	var hit bool
	results, err := s.solve(ctx, workers, func(ctx context.Context) ([]*topomap.MapResult, error) {
		var err error
		eng, hit, err = s.engineFor(req.Topology, req.Allocation)
		if err != nil {
			return nil, err
		}
		res, err := eng.RunContext(ctx, run)
		if err != nil {
			return nil, err
		}
		return []*topomap.MapResult{res}, nil
	})
	if err != nil {
		s.st.errors.Add(1)
		writeError(w, s.errStatus(err), err)
		return
	}
	out, err := respond(results[0], eng, hit, req.Rankfile, time.Since(began))
	if err != nil {
		s.st.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.st.observe(out.ElapsedMS)
	writeJSON(w, http.StatusOK, out)
}

// handleBatch serves POST /v1/map/batch: several mapper runs against
// one shared engine, fanned out on the engine's deterministic worker
// pool.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.st.batchRequests.Add(1)
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)
	var req BatchRequest
	if err := readJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.st.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Requests) == 0 {
		s.st.errors.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch: empty requests"))
		return
	}
	began := time.Now()
	tg, err := req.Tasks.Build()
	if err != nil {
		s.st.errors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	workers := s.parallelism(req.Parallelism)
	runs := make([]topomap.Request, len(req.Requests))
	for i, item := range req.Requests {
		runs[i] = buildRequest(item.Mapper, item.Seed, item.Refine, item.FineRefine, workers, tg)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	// A batch runs its items serially, each item solving with the
	// batch's `parallelism` workers, and occupies that many slots for
	// its whole duration — the pool's accounting stays exact, so a
	// stream of parallel batches cannot oversubscribe the host.
	// Clients that want cross-item parallelism issue parallel /v1/map
	// requests, which share the cached engine anyway.
	var eng *topomap.Engine
	var hit bool
	results, err := s.solve(ctx, workers, func(ctx context.Context) ([]*topomap.MapResult, error) {
		var err error
		eng, hit, err = s.engineFor(req.Topology, req.Allocation)
		if err != nil {
			return nil, err
		}
		return eng.RunBatchContext(ctx, runs, 1)
	})
	if err != nil {
		s.st.errors.Add(1)
		writeError(w, s.errStatus(err), err)
		return
	}
	out := BatchResponse{
		Results:   make([]MapResponse, len(results)),
		CacheHit:  hit,
		ElapsedMS: float64(time.Since(began)) / float64(time.Millisecond),
	}
	for i, res := range results {
		// Items share one engine run; only the batch-level elapsed is
		// meaningful, so per-item elapsed_ms is omitted.
		item, err := respond(res, eng, hit, false, 0)
		if err != nil {
			s.st.errors.Add(1)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out.Results[i] = *item
	}
	s.st.observe(out.ElapsedMS)
	writeJSON(w, http.StatusOK, out)
}

// handleMappers serves GET /v1/mappers: the registry's capability
// listing.
func (s *Server) handleMappers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, MappersResponse{Mappers: registry.List()})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleStatusz serves GET /statusz: the live counters.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// Status snapshots the live counters.
func (s *Server) Status() Status {
	hits, misses, evictions := s.cache.Stats()
	p50, p90, p99, samples := s.st.quantiles()
	return Status{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Requests:       s.st.requests.Load(),
		BatchRequests:  s.st.batchRequests.Load(),
		Errors:         s.st.errors.Load(),
		Timeouts:       s.st.timeouts.Load(),
		InFlight:       s.st.inflight.Load(),
		Workers:        s.cfg.Workers,
		MaxParallelism: s.cfg.MaxParallelism,
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evictions,
		CacheEntries:   s.cache.Len(),
		CacheCapacity:  s.cache.Cap(),
		LatencyP50MS:   p50,
		LatencyP90MS:   p90,
		LatencyP99MS:   p99,
		LatencySamples: samples,
		Mappers:        len(registry.Names()),
	}
}

package service_test

// Heterogeneous-processor wire tests: `makespan` must be servable as
// an objective on both protocols — /v1 races portfolios toward it,
// and a /v2 remap chain scores its quality fence with it, agreeing
// byte-for-byte with the JSON envelope.

import (
	"context"
	"reflect"
	"testing"

	topomap "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

// heteroSpec returns the shared wheel graph with skewed per-task
// loads and an explicit allocation (speeds need explicit nodes) where
// every third node is a 4x accelerator.
func heteroSpec() (service.TaskGraphSpec, service.AllocationSpec) {
	spec, _ := testTasks(64)
	spec.Loads = make([]int64, spec.N)
	for i := range spec.Loads {
		spec.Loads[i] = 2
		if i%8 == 0 {
			spec.Loads[i] = 64
		}
	}
	nodes := []int32{3, 17, 41, 90, 107, 128, 163, 201}
	speeds := make([]float64, len(nodes))
	for i := range speeds {
		speeds[i] = 1
		if i%3 == 0 {
			speeds[i] = 4
		}
	}
	return spec, service.AllocationSpec{Nodes: nodes, ProcsPerNode: []int{16}, Speeds: speeds}
}

// TestMakespanObjectiveV1 races a /v1/portfolio toward
// minimize:makespan: every candidate's score must be its makespan
// metric, ranked ascending, and the winner's makespan rides out in
// Best.
func TestMakespanObjectiveV1(t *testing.T) {
	spec, alloc := heteroSpec()
	c := newClient(t, service.Config{})
	resp, err := c.Portfolio(context.Background(), service.PortfolioRequest{
		Topology:   torusSpec(),
		Allocation: alloc,
		Tasks:      spec,
		Candidates: []topomap.Solve{
			{Mapper: topomap.UWH, Seed: 1},
			{Mapper: topomap.HET, Seed: 1, Balance: true},
			{Mapper: topomap.UMC, Seed: 1},
		},
		Objective: topomap.MinimizeMetric("makespan"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, entry := range resp.Leaderboard {
		if entry.Metrics == nil {
			t.Fatalf("rank %d (%s) has no metrics", i, entry.Solve.Mapper)
		}
		if entry.Score <= 0 || entry.Score != entry.Metrics.Makespan {
			t.Fatalf("rank %d: score %g != makespan %g", i, entry.Score, entry.Metrics.Makespan)
		}
		if i > 0 && entry.Score < resp.Leaderboard[i-1].Score {
			t.Fatalf("leaderboard not ascending at rank %d", i)
		}
	}
	if resp.Best.Metrics.Makespan != resp.Leaderboard[0].Metrics.Makespan {
		t.Fatalf("best makespan %g != leaderboard head %g",
			resp.Best.Metrics.Makespan, resp.Leaderboard[0].Metrics.Makespan)
	}
}

// TestMakespanObjectiveV2 drives a heterogeneous map + remap chain —
// the remap's quality fence scoring a weighted mc/makespan combo —
// over both the /v2 binary frames and the /v1 JSON envelope; the two
// protocols must return identical responses.
func TestMakespanObjectiveV2(t *testing.T) {
	spec, alloc := heteroSpec()
	_, cj := protoClient(service.Config{}, client.ProtoJSON)
	_, cb := protoClient(service.Config{}, client.ProtoBinary)

	run := func(c *client.Client, label string) *service.RemapResponse {
		t.Helper()
		mapped, err := c.Map(context.Background(), service.MapRequest{
			Topology:   torusSpec(),
			Allocation: alloc,
			Tasks:      spec,
			Mapper:     "HET",
			Seed:       1,
			Balance:    true,
		})
		if err != nil {
			t.Fatalf("%s: map: %v", label, err)
		}
		if mapped.Metrics.Makespan <= 0 {
			t.Fatalf("%s: heterogeneous map reported makespan %g", label, mapped.Metrics.Makespan)
		}
		rr, err := c.Remap(context.Background(), service.RemapRequest{
			Fingerprint: mapped.Fingerprint,
			Delta:       topomap.AllocationDelta{Remove: []int32{mapped.AllocNodes[3]}},
			Solve:       topomap.Solve{Mapper: topomap.HET, Seed: 1, Balance: true},
			Objective: topomap.Objective{Terms: []topomap.ObjectiveTerm{
				{Metric: "mc", Weight: 1}, {Metric: "makespan", Weight: 2}}},
		})
		if err != nil {
			t.Fatalf("%s: remap: %v", label, err)
		}
		return rr
	}
	jr := run(cj, "json")
	br := run(cb, "binary")
	if jr.Fingerprint == "" || br.Fingerprint != jr.Fingerprint {
		t.Fatalf("remap fingerprint diverged: json %q, binary %q", jr.Fingerprint, br.Fingerprint)
	}
	if jr.Metrics.Makespan <= 0 {
		t.Fatalf("remap lost the makespan metric: %+v", jr.Metrics)
	}
	scrubMap(&jr.MapResponse)
	scrubMap(&br.MapResponse)
	if !reflect.DeepEqual(jr, br) {
		t.Fatalf("remap responses diverged:\n json   %+v\n binary %+v", jr, br)
	}
}

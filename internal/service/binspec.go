package service

// Conversions between the JSON wire specs and their binary section
// bodies. Both protocols funnel into the SAME spec types
// (TopologySpec.Normalize/Key/Build, AllocationSpec.Key/Build,
// graph.FromTriples canonicalization), so an engine-cache key or a
// result fingerprint derived from a binary request is byte-identical
// to the one the equivalent JSON request derives — the property the
// cross-protocol equivalence tests pin.

import (
	"fmt"

	topomap "repro"
	"repro/internal/arena"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/wirebin"
)

// topoKinds maps the binary topology kind byte to the spec kind
// string and back.
var topoKinds = map[byte]string{
	wirebin.TopoTorus:     "torus",
	wirebin.TopoMesh:      "mesh",
	wirebin.TopoFatTree:   "fattree",
	wirebin.TopoDragonfly: "dragonfly",
}

func topoKindByte(kind string) (byte, bool) {
	for b, s := range topoKinds {
		if s == kind {
			return b, true
		}
	}
	return 0, false
}

// AppendTopologySection encodes a topology spec as a binary section
// body. The spec is normalized first — normalization fills family
// defaults, so the encoded body (and therefore its intern
// fingerprint) is canonical for the network it denotes.
func AppendTopologySection(w *wirebin.Writer, ts TopologySpec) error {
	ts, err := ts.Normalize()
	if err != nil {
		return err
	}
	kind, ok := topoKindByte(ts.Kind)
	if !ok {
		return fmt.Errorf("topology: kind %q has no binary encoding", ts.Kind)
	}
	bt := wirebin.Topology{
		Kind: kind, BW: ts.BW,
		K: uint32(ts.K), H: uint32(ts.H),
		BWHost: ts.BWHost, Taper: ts.Taper, BWLocal: ts.BWLocal, BWGlobal: ts.BWGlobal,
	}
	if len(ts.Dims) > 0 {
		bt.Dims = make([]int32, len(ts.Dims))
		for i, d := range ts.Dims {
			bt.Dims[i] = int32(d)
		}
	}
	wirebin.AppendTopology(w, &bt)
	return nil
}

// topoSpecFromBinary lifts a decoded binary topology onto the spec
// type and re-normalizes — idempotent for bodies a conforming client
// encoded, corrective for hand-rolled ones.
func topoSpecFromBinary(bt *wirebin.Topology) (TopologySpec, error) {
	kind, ok := topoKinds[bt.Kind]
	if !ok {
		return TopologySpec{}, fmt.Errorf("topology: unknown binary kind %d", bt.Kind)
	}
	ts := TopologySpec{
		Kind: kind, BW: bt.BW,
		K: int(bt.K), H: int(bt.H),
		BWHost: bt.BWHost, Taper: bt.Taper, BWLocal: bt.BWLocal, BWGlobal: bt.BWGlobal,
	}
	if len(bt.Dims) > 0 {
		ts.Dims = make([]int, len(bt.Dims))
		for i, d := range bt.Dims {
			ts.Dims[i] = int(d)
		}
	}
	return ts.Normalize()
}

// AppendAllocationSection encodes an allocation spec as a binary
// section body.
func AppendAllocationSection(w *wirebin.Writer, as AllocationSpec) error {
	switch {
	case len(as.Nodes) > 0 && as.SparseNodes > 0:
		return fmt.Errorf("allocation: give nodes or sparse_nodes, not both")
	case as.SparseNodes > 0:
		wirebin.AppendAllocation(w, &wirebin.Allocation{
			Form: wirebin.AllocSparse, SparseNodes: uint32(as.SparseNodes), Seed: as.Seed,
		})
		return nil
	case len(as.Nodes) == 0:
		return fmt.Errorf("allocation: need nodes or sparse_nodes")
	}
	ba := wirebin.Allocation{Form: wirebin.AllocExplicit, Nodes: as.Nodes}
	switch len(as.ProcsPerNode) {
	case 0:
		ba.CapsForm = wirebin.CapsDefault
	case 1:
		ba.CapsForm = wirebin.CapsUniform
		ba.UniformProcs = uint32(as.ProcsPerNode[0])
	case len(as.Nodes):
		ba.CapsForm = wirebin.CapsPerNode
		ba.ProcsPerNode = make([]int32, len(as.ProcsPerNode))
		for i, p := range as.ProcsPerNode {
			ba.ProcsPerNode[i] = int32(p)
		}
	default:
		return fmt.Errorf("allocation: %d nodes but %d capacities", len(as.Nodes), len(as.ProcsPerNode))
	}
	// Speeds resolve through the same canonicalization as the JSON
	// path: a single factor broadcasts, a unit vector drops to the
	// absent (legacy) encoding so the body fingerprint never splits.
	if len(as.Speeds) > 0 {
		r, err := as.resolve()
		if err != nil {
			return err
		}
		ba.Speeds = r.Speeds
	}
	wirebin.AppendAllocation(w, &ba)
	return nil
}

// allocSpecFromBinary lifts a decoded binary allocation onto the spec
// type. The decoded slices are fresh copies (never frame views), so
// retaining the spec in the intern table is safe.
func allocSpecFromBinary(ba *wirebin.Allocation) (AllocationSpec, error) {
	switch ba.Form {
	case wirebin.AllocSparse:
		if ba.SparseNodes == 0 {
			return AllocationSpec{}, fmt.Errorf("allocation: sparse form needs nodes > 0")
		}
		return AllocationSpec{SparseNodes: int(ba.SparseNodes), Seed: ba.Seed}, nil
	case wirebin.AllocExplicit:
		as := AllocationSpec{Nodes: ba.Nodes, Speeds: ba.Speeds}
		switch ba.CapsForm {
		case wirebin.CapsDefault:
		case wirebin.CapsUniform:
			as.ProcsPerNode = []int{int(ba.UniformProcs)}
		case wirebin.CapsPerNode:
			as.ProcsPerNode = make([]int, len(ba.ProcsPerNode))
			for i, p := range ba.ProcsPerNode {
				as.ProcsPerNode[i] = int(p)
			}
		}
		return as, nil
	}
	return AllocationSpec{}, fmt.Errorf("allocation: unknown binary form %d", ba.Form)
}

// AppendTasksSection encodes a task-graph spec as a binary section
// body: the spec is built first (the shared canonicalization — self
// loops dropped, parallel edges merged, adjacency sorted), then the
// canonical CSR arrays travel verbatim.
func AppendTasksSection(w *wirebin.Writer, ts TaskGraphSpec) error {
	tg, err := ts.Build()
	if err != nil {
		return err
	}
	// Build canonicalized unit loads to a nil VW and absent coordinates
	// to a nil slice, so homogeneous coordinate-free graphs keep the
	// legacy body bytes.
	wirebin.AppendTasksCSR(w, tg.G.Xadj, tg.G.Adj, tg.G.EW, tg.G.VW, tg.Coords, tg.Dim)
	return nil
}

// binArena pools the edge-triple staging buffers of binary task-graph
// decodes, shared across requests (the arena is concurrency-safe).
var binArena = arena.New()

// taskGraphFromCSR builds the engine's task graph straight from a
// CSR section view: the triples are staged in an arena-recycled
// buffer indexed directly off the frame bytes — no intermediate
// edge-list or spec struct — and canonicalized by the same
// FromTriples path the JSON spec builder bottoms out in. Validation
// matches TaskGraphSpec.Build: endpoints in range, volumes positive,
// self loops dropped, n capped.
func taskGraphFromCSR(t wirebin.TasksCSR) (*topomap.TaskGraph, error) {
	if t.N <= 0 {
		return nil, fmt.Errorf("tasks: need n > 0, got %d", t.N)
	}
	if t.N > maxTasks {
		return nil, fmt.Errorf("tasks: n=%d exceeds the %d-task service limit", t.N, maxTasks)
	}
	tri := binArena.Edges(t.M)
	defer binArena.PutEdges(tri)
	cnt := 0
	for v := 0; v < t.N; v++ {
		lo, hi := t.Xadj(v), t.Xadj(v+1)
		for j := lo; j < hi; j++ {
			dst, vol := t.Adj(j), t.EW(j)
			if dst < 0 || int(dst) >= t.N {
				return nil, fmt.Errorf("tasks: edge %d endpoint out of [0,%d)", j, t.N)
			}
			if vol <= 0 {
				return nil, fmt.Errorf("tasks: edge %d has volume %d", j, vol)
			}
			if int32(v) == dst {
				continue // self loop, dropped like the JSON path
			}
			tri[cnt] = ds.EdgeTriple{U: int32(v), V: dst, W: vol}
			cnt++
		}
	}
	var loads []int64
	if t.HasLoads() {
		unit := true
		loads = make([]int64, t.N)
		for i := range loads {
			l := t.Load(i)
			if l < 0 {
				return nil, fmt.Errorf("tasks: task %d has negative load %d", i, l)
			}
			if l != 1 {
				unit = false
			}
			loads[i] = l
		}
		// Match TaskGraphSpec.Build: a unit loads vector canonicalizes
		// to absent, so both protocols hash and memo identically.
		if unit {
			loads = nil
		}
	}
	tg := &topomap.TaskGraph{G: graph.FromTriples(t.N, tri[:cnt], loads), K: t.N}
	if t.HasCoords() {
		dim := t.CoordDim()
		coords := make([]float64, t.N*dim)
		for i := 0; i < t.N; i++ {
			for d := 0; d < dim; d++ {
				coords[i*dim+d] = t.Coord(i, d)
			}
		}
		// SetCoords re-validates dim and finiteness — the structural
		// decoder accepts any f64 bits, the semantic boundary does not.
		if err := tg.SetCoords(dim, coords); err != nil {
			return nil, fmt.Errorf("tasks: %w", err)
		}
	}
	return tg, nil
}

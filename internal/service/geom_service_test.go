package service_test

// Geometric-mapper wire tests: task coordinates must ride both
// protocols — a /v2 binary GEOM/SFCM map + remap chain agreeing
// byte-for-byte with the /v1 JSON envelope — the capability gate must
// answer coordinate-free requests with a 400 before any solve, and
// coordinates must stay invisible to coordinate-free mappers at the
// placement level.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	topomap "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

// TestGeomMapV1V2Equivalence drives a coordinate-carrying map +
// remap chain — GEOM solving, a node removed, GEOM re-solving against
// the cached coordinate-carrying graph — over both the /v2 binary
// frames and the /v1 JSON envelope; the two protocols must return
// identical responses, fingerprints included.
func TestGeomMapV1V2Equivalence(t *testing.T) {
	spec, _ := testTasksCoords(64)
	_, cj := protoClient(service.Config{}, client.ProtoJSON)
	_, cb := protoClient(service.Config{}, client.ProtoBinary)

	for _, mp := range []topomap.Mapper{topomap.GEOM, topomap.SFCM} {
		run := func(c *client.Client, label string) *service.RemapResponse {
			t.Helper()
			mapped, err := c.Map(context.Background(), service.MapRequest{
				Topology:   torusSpec(),
				Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
				Tasks:      spec,
				Mapper:     string(mp),
				Seed:       1,
			})
			if err != nil {
				t.Fatalf("%s/%s: map: %v", mp, label, err)
			}
			rr, err := c.Remap(context.Background(), service.RemapRequest{
				Fingerprint: mapped.Fingerprint,
				Delta:       topomap.AllocationDelta{Remove: []int32{mapped.AllocNodes[3]}},
				Solve:       topomap.Solve{Mapper: mp, Seed: 1},
			})
			if err != nil {
				t.Fatalf("%s/%s: remap: %v", mp, label, err)
			}
			return rr
		}
		jr := run(cj, "json")
		br := run(cb, "binary")
		if jr.Fingerprint == "" || br.Fingerprint != jr.Fingerprint {
			t.Fatalf("%s: remap fingerprint diverged: json %q, binary %q", mp, jr.Fingerprint, br.Fingerprint)
		}
		scrubMap(&jr.MapResponse)
		scrubMap(&br.MapResponse)
		if !reflect.DeepEqual(jr, br) {
			t.Fatalf("%s: remap responses diverged:\n json   %+v\n binary %+v", mp, jr, br)
		}
	}
}

// TestGeomNeedsCoordsWireError: a GEOM request whose spec carries no
// coordinates costs a 400 mentioning coordinates, on both protocols,
// before any solve.
func TestGeomNeedsCoordsWireError(t *testing.T) {
	spec, _ := testTasks(64)
	for _, proto := range []struct {
		name string
		p    client.Protocol
	}{{"json", client.ProtoJSON}, {"binary", client.ProtoBinary}} {
		_, c := protoClient(service.Config{}, proto.p)
		_, err := c.Map(context.Background(), service.MapRequest{
			Topology:   torusSpec(),
			Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
			Tasks:      spec,
			Mapper:     "GEOM",
			Seed:       1,
		})
		if err == nil {
			t.Fatalf("%s: GEOM mapped a coordinate-free spec", proto.name)
		}
		if !strings.Contains(err.Error(), "coordinates") {
			t.Fatalf("%s: error %q does not mention coordinates", proto.name, err)
		}
		if !strings.Contains(err.Error(), "400") {
			t.Fatalf("%s: want a 400, got %q", proto.name, err)
		}
	}
}

// TestCoordsInvisibleToCoordinateFreeMappers: attaching coordinates
// to a spec must not move a single task under a coordinate-free
// mapper — same placement, same metrics, same rankfile — though the
// result fingerprint legitimately differs (coordinates are part of
// the task-graph identity a remap chain resumes from).
func TestCoordsInvisibleToCoordinateFreeMappers(t *testing.T) {
	spec, _ := testTasks(64)
	specC, _ := testTasksCoords(64)
	c := newClient(t, service.Config{})
	req := func(s service.TaskGraphSpec) service.MapRequest {
		return service.MapRequest{
			Topology:   torusSpec(),
			Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
			Tasks:      s,
			Mapper:     "UWH",
			Seed:       3,
		}
	}
	bare, err := c.Map(context.Background(), req(spec))
	if err != nil {
		t.Fatal(err)
	}
	withC, err := c.Map(context.Background(), req(specC))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withC.NodeOf, bare.NodeOf) || !reflect.DeepEqual(withC.GroupOf, bare.GroupOf) {
		t.Fatal("coordinates moved tasks under a coordinate-free mapper")
	}
	if withC.Metrics != bare.Metrics {
		t.Fatal("coordinates changed metrics under a coordinate-free mapper")
	}
	if withC.Fingerprint == bare.Fingerprint {
		t.Fatal("fingerprint ignored the coordinates — a remap chain would resume from the wrong graph")
	}
}

// TestGeomPortfolioV1: a portfolio over a coordinate-carrying spec
// auto-expands to include GEOM and SFCM; an explicit GEOM candidate
// on a coordinate-free spec costs a 400.
func TestGeomPortfolioV1(t *testing.T) {
	specC, _ := testTasksCoords(64)
	c := newClient(t, service.Config{})
	resp, err := c.Portfolio(context.Background(), service.PortfolioRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      specC,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ran := map[topomap.Mapper]bool{}
	for _, entry := range resp.Leaderboard {
		ran[entry.Solve.Mapper] = true
	}
	for _, mp := range []topomap.Mapper{topomap.GEOM, topomap.SFCM} {
		if !ran[mp] {
			t.Fatalf("auto expansion on a coordinate-carrying spec left out %s", mp)
		}
	}

	spec, _ := testTasks(64)
	_, err = c.Portfolio(context.Background(), service.PortfolioRequest{
		Topology:   torusSpec(),
		Allocation: service.AllocationSpec{SparseNodes: 8, Seed: 1},
		Tasks:      spec,
		Candidates: []topomap.Solve{{Mapper: topomap.GEOM, Seed: 1}},
	})
	if err == nil {
		t.Fatal("portfolio accepted a GEOM candidate on a coordinate-free spec")
	}
	if !strings.Contains(err.Error(), "coordinates") || !strings.Contains(err.Error(), "400") {
		t.Fatalf("error %q should be a 400 mentioning coordinates", err)
	}
}

// Package service is the resident mapping service behind cmd/mapd:
// the paper's pitch is that high-quality topology-aware mapping is
// fast enough to run at job-launch time inside the resource manager,
// and the natural production shape of that is a daemon, not a batch
// CLI. The package defines the JSON wire protocol (map, batch,
// mapper-capability and status payloads), builds topologies and
// allocations from wire specs, and serves requests through a bounded
// worker pool against an LRU cache of Engines keyed by the canonical
// (topology, allocation) fingerprint — so repeated jobs on the same
// partition skip the route-state rebuild that dominates a cold
// request.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	topomap "repro"
	"repro/internal/registry"
	"repro/internal/trace"
)

// TaskGraphSpec is the wire form of a task graph: n tasks, a directed
// weighted edge list (the same "src dst volume" triples the CLI's
// -graph files carry), optionally one compute load per task for
// heterogeneous-processor jobs, and optionally one 2D/3D coordinate
// row per task for the geometric mappers. An absent Loads field — or
// an all-ones one, which canonicalizes to absent — means unit loads;
// an absent Coords field means a coordinate-free graph.
type TaskGraphSpec struct {
	N      int         `json:"n"`
	Edges  [][3]int64  `json:"edges"`
	Loads  []int64     `json:"loads,omitempty"`
	Coords [][]float64 `json:"coords,omitempty"`
}

// maxTasks bounds wire task graphs: n is a bare integer whose cost
// (vertex arrays, grouping) is unrelated to the request's byte size.
const maxTasks = 1 << 20

// Build constructs the task graph (parallel edges merged, self loops
// dropped, unit task weights unless Loads says otherwise).
func (t TaskGraphSpec) Build() (*topomap.TaskGraph, error) {
	if t.N <= 0 {
		return nil, fmt.Errorf("tasks: need n > 0, got %d", t.N)
	}
	if t.N > maxTasks {
		return nil, fmt.Errorf("tasks: n=%d exceeds the %d-task service limit", t.N, maxTasks)
	}
	us := make([]int32, 0, len(t.Edges))
	vs := make([]int32, 0, len(t.Edges))
	ws := make([]int64, 0, len(t.Edges))
	for i, e := range t.Edges {
		src, dst, vol := e[0], e[1], e[2]
		if src < 0 || src >= int64(t.N) || dst < 0 || dst >= int64(t.N) {
			return nil, fmt.Errorf("tasks: edge %d endpoint out of [0,%d)", i, t.N)
		}
		if vol <= 0 {
			return nil, fmt.Errorf("tasks: edge %d has volume %d", i, vol)
		}
		us = append(us, int32(src))
		vs = append(vs, int32(dst))
		ws = append(ws, vol)
	}
	g := topomap.FromEdges(t.N, us, vs, ws)
	if t.Loads != nil {
		if len(t.Loads) != t.N {
			return nil, fmt.Errorf("tasks: %d loads for %d tasks", len(t.Loads), t.N)
		}
		unit := true
		for i, l := range t.Loads {
			if l < 0 {
				return nil, fmt.Errorf("tasks: task %d has negative load %d", i, l)
			}
			if l != 1 {
				unit = false
			}
		}
		// Unit loads canonicalize to the absent form so the graph hash,
		// the solve memo and the binary sections all see one encoding.
		if !unit {
			g.VW = append([]int64(nil), t.Loads...)
		}
	}
	tg := &topomap.TaskGraph{G: g, K: t.N}
	if t.Coords != nil {
		if len(t.Coords) != t.N {
			return nil, fmt.Errorf("tasks: %d coordinate rows for %d tasks", len(t.Coords), t.N)
		}
		dim := len(t.Coords[0])
		if dim != 2 && dim != 3 {
			return nil, fmt.Errorf("tasks: coordinate rows have %d values, want 2 or 3", dim)
		}
		flat := make([]float64, 0, t.N*dim)
		for i, row := range t.Coords {
			if len(row) != dim {
				return nil, fmt.Errorf("tasks: coordinate row %d has %d values, row 0 has %d", i, len(row), dim)
			}
			flat = append(flat, row...)
		}
		// SetCoords validates finiteness; there is no unit-coordinate
		// degeneracy to canonicalize — coordinates are present or not.
		if err := tg.SetCoords(dim, flat); err != nil {
			return nil, fmt.Errorf("tasks: %w", err)
		}
	}
	return tg, nil
}

// MapRequest is one mapping job: network, allocation, task graph,
// mapper, and per-request options. TimeoutMS (0 = the server default)
// bounds the solve; Rankfile additionally asks for the Cray-style
// MPICH_RANK_ORDER text realizing the placement. Parallelism asks for
// that many solver workers for this request (0/1 = serial); the
// server clamps it to its max_parallelism cap and charges that many
// worker slots, and the placement is byte-identical at any value —
// only the latency changes.
type MapRequest struct {
	Topology    TopologySpec   `json:"topology"`
	Allocation  AllocationSpec `json:"allocation"`
	Tasks       TaskGraphSpec  `json:"tasks"`
	Mapper      string         `json:"mapper"`
	Seed        int64          `json:"seed"`
	Refine      bool           `json:"refine,omitempty"`
	FineRefine  bool           `json:"fine_refine,omitempty"`
	TimeoutMS   int64          `json:"timeout_ms,omitempty"`
	Rankfile    bool           `json:"rankfile,omitempty"`
	Parallelism int            `json:"parallelism,omitempty"`
	// Trace asks for the solve's stage timeline in the response. The
	// server traces every solve for its own histograms regardless; this
	// flag only controls whether the breakdown travels back.
	Trace bool `json:"trace,omitempty"`
	// Balance runs the makespan-aware load-repair stage after mapping
	// (see topomap.Solve.Balance); allocations with non-unit speeds get
	// the stage automatically.
	Balance bool `json:"balance,omitempty"`
}

// Metrics is the wire form of the mapping metrics (§II-C).
type Metrics struct {
	TH        int64   `json:"th"`
	WH        int64   `json:"wh"`
	MMC       int64   `json:"mmc"`
	MC        float64 `json:"mc"`
	AMC       float64 `json:"amc"`
	AC        float64 `json:"ac"`
	ICV       int64   `json:"icv"`
	ICM       int64   `json:"icm"`
	MNRV      int64   `json:"mnrv"`
	MNRM      int64   `json:"mnrm"`
	UsedLinks int     `json:"used_links"`
	// Heterogeneous-processor metrics: the compute makespan (max over
	// nodes of load/speed) and the load imbalance (max/mean of the
	// per-node finish times).
	Makespan      float64 `json:"makespan"`
	LoadImbalance float64 `json:"load_imbalance"`
}

func metricsPayload(m topomap.MapMetrics) Metrics {
	return Metrics{
		TH: m.TH, WH: m.WH, MMC: m.MMC, MC: m.MC, AMC: m.AMC, AC: m.AC,
		ICV: m.ICV, ICM: m.ICM, MNRV: m.MNRV, MNRM: m.MNRM, UsedLinks: m.UsedLinks,
		Makespan: m.Makespan, LoadImbalance: m.LoadImbalance,
	}
}

// MapResponse is the outcome of one mapping job. NodeOf values are
// network node ids; AllocNodes reports the allocated node set in
// allocation order (essential when the server generated the
// allocation from a sparse spec). CacheHit reports whether the
// engine's routing state was reused from the cache.
type MapResponse struct {
	Mapper      string  `json:"mapper"`
	GroupOf     []int32 `json:"group_of"`
	NodeOf      []int32 `json:"node_of"`
	AllocNodes  []int32 `json:"alloc_nodes"`
	Metrics     Metrics `json:"metrics"`
	FineWHGain  int64   `json:"fine_wh_gain,omitempty"`
	FineVolGain int64   `json:"fine_vol_gain,omitempty"`
	Rankfile    string  `json:"rankfile,omitempty"`
	CacheHit    bool    `json:"cache_hit"`
	ElapsedMS   float64 `json:"elapsed_ms,omitempty"`
	// Fingerprint is the content handle of this result in the server's
	// recent-result cache; POST /v1/remap accepts it as the previous
	// mapping of an incremental remap. Empty on endpoints that do not
	// feed the result cache.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Trace is the solve's stage timeline (wall time, workers,
	// per-stage counters), present when the request asked for it.
	Trace []trace.Stage `json:"trace,omitempty"`
}

// lowerSolve is the one lowering every wire endpoint shares: mapper
// names uppercased, workers set explicitly (server-clamped) so the
// engine's host-wide default cannot bypass the service's slot
// accounting.
func lowerSolve(mapper string, seed int64, refine, fineRefine, traced, balance bool, workers int) topomap.Solve {
	return topomap.Solve{
		Mapper:     topomap.Mapper(strings.ToUpper(mapper)),
		Seed:       seed,
		Refine:     refine,
		FineRefine: fineRefine,
		Trace:      traced,
		Balance:    balance,
		Workers:    workers,
	}
}

// Solve lowers the wire request onto the engine's declarative Solve
// spec.
func (r MapRequest) Solve(workers int) topomap.Solve {
	return lowerSolve(r.Mapper, r.Seed, r.Refine, r.FineRefine, r.Trace, r.Balance, workers)
}

// BatchItem is one mapper run of a batch; the batch's topology,
// allocation and task graph are shared. Trace asks for that item's
// stage timeline in its result.
type BatchItem struct {
	Mapper     string `json:"mapper"`
	Seed       int64  `json:"seed"`
	Refine     bool   `json:"refine,omitempty"`
	FineRefine bool   `json:"fine_refine,omitempty"`
	Trace      bool   `json:"trace,omitempty"`
	Balance    bool   `json:"balance,omitempty"`
}

// Solve lowers the batch item onto the engine's Solve spec (see
// MapRequest.Solve).
func (it BatchItem) Solve(workers int) topomap.Solve {
	return lowerSolve(it.Mapper, it.Seed, it.Refine, it.FineRefine, it.Trace, it.Balance, workers)
}

// BatchRequest fans several mapper runs out against one shared
// engine — the sweep shape of the paper's figures. Parallelism gives
// every item that many solver workers (items still run one after
// another); the batch occupies that many worker slots for its whole
// duration.
type BatchRequest struct {
	Topology    TopologySpec   `json:"topology"`
	Allocation  AllocationSpec `json:"allocation"`
	Tasks       TaskGraphSpec  `json:"tasks"`
	Requests    []BatchItem    `json:"requests"`
	TimeoutMS   int64          `json:"timeout_ms,omitempty"`
	Parallelism int            `json:"parallelism,omitempty"`
}

// BatchResponse carries the per-item results in request order.
type BatchResponse struct {
	Results   []MapResponse `json:"results"`
	CacheHit  bool          `json:"cache_hit"`
	ElapsedMS float64       `json:"elapsed_ms"`
}

// PortfolioRequest races a candidate set against one engine and
// selects by a declared objective (POST /v1/portfolio). Candidates
// are the library's serializable Solve specs verbatim — the wire no
// longer mirrors option fields — and must differ in (mapper, seed).
// An empty candidate list expands server-side to every registered
// mapper compatible with the topology, each at Seed. The objective's
// zero value minimizes weighted hops. Parallelism is the portfolio's
// worker-pool width; the request occupies that many worker slots.
// Per-candidate workers must stay unset on the wire — the pool is the
// server's to account for.
type PortfolioRequest struct {
	Topology    TopologySpec      `json:"topology"`
	Allocation  AllocationSpec    `json:"allocation"`
	Tasks       TaskGraphSpec     `json:"tasks"`
	Candidates  []topomap.Solve   `json:"candidates,omitempty"`
	Seed        int64             `json:"seed,omitempty"`
	Objective   topomap.Objective `json:"objective,omitempty"`
	Sim         *topomap.SimSpec  `json:"sim,omitempty"`
	TimeoutMS   int64             `json:"timeout_ms,omitempty"`
	Parallelism int               `json:"parallelism,omitempty"`
	Rankfile    bool              `json:"rankfile,omitempty"`
}

// Validate fail-fasts the solve-independent invariants of a portfolio
// request — duplicate (mapper, seed) candidates, unknown mapper and
// objective names, wire-set candidate workers, and the server's
// candidate cap — so a bad request costs a 400, never a solve.
func (p *PortfolioRequest) Validate(maxCandidates int) error {
	if len(p.Candidates) > maxCandidates {
		return fmt.Errorf("portfolio: %d candidates exceed the server's cap of %d", len(p.Candidates), maxCandidates)
	}
	type identity struct {
		mapper string
		seed   int64
	}
	seen := map[identity]int{}
	for i, c := range p.Candidates {
		name := strings.ToUpper(string(c.Mapper))
		if _, ok := registry.Lookup(name); !ok {
			return fmt.Errorf("portfolio: candidate %d: unknown mapper %q", i, c.Mapper)
		}
		if c.Workers != 0 {
			return fmt.Errorf("portfolio: candidate %d sets workers; per-candidate parallelism is server-controlled, use the portfolio-level parallelism field", i)
		}
		if c.TimeoutMS < 0 {
			return fmt.Errorf("portfolio: candidate %d: negative timeout_ms %d", i, c.TimeoutMS)
		}
		id := identity{name, c.Seed}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("portfolio: candidates %d and %d duplicate (mapper %s, seed %d); candidates must differ in mapper or seed", prev, i, name, c.Seed)
		}
		seen[id] = i
	}
	if err := p.Objective.Validate(); err != nil {
		return fmt.Errorf("portfolio: %w", err)
	}
	// A sim-scoring objective needs a sim spec somewhere — reject here
	// so the request never holds worker slots or a cold engine build.
	if p.Objective.NeedsSim() && p.Sim == nil {
		if len(p.Candidates) == 0 {
			return fmt.Errorf("portfolio: objective sim_seconds needs a request-level sim spec when candidates auto-expand")
		}
		for i, c := range p.Candidates {
			if c.Sim == nil {
				return fmt.Errorf("portfolio: objective sim_seconds needs a sim spec, candidate %d (%s) has none", i, c.Mapper)
			}
		}
	}
	return nil
}

// engineRequest converts the validated wire request to the library
// form, uppercasing mapper names the way every other endpoint does.
func (p *PortfolioRequest) engineRequest(tg *topomap.TaskGraph, workers int) topomap.PortfolioRequest {
	cands := make([]topomap.Solve, len(p.Candidates))
	for i, c := range p.Candidates {
		c.Mapper = topomap.Mapper(strings.ToUpper(string(c.Mapper)))
		cands[i] = c
	}
	return topomap.PortfolioRequest{
		Tasks:      tg,
		Candidates: cands,
		Seed:       p.Seed,
		Objective:  p.Objective,
		Workers:    workers,
		Sim:        p.Sim,
	}
}

// LeaderboardEntry is one candidate's line in the portfolio response.
// Metrics is omitted for candidates the deadline skipped.
type LeaderboardEntry struct {
	Index      int           `json:"index"`
	Solve      topomap.Solve `json:"solve"`
	Score      float64       `json:"score"`
	Metrics    *Metrics      `json:"metrics,omitempty"`
	SimSeconds float64       `json:"sim_seconds,omitempty"`
	Skipped    bool          `json:"skipped,omitempty"`
}

// PortfolioResponse reports the winning candidate (index into the
// request's expanded candidate list, full result in Best) and the
// per-candidate leaderboard: completed candidates in ascending score
// order, then deadline-skipped ones.
type PortfolioResponse struct {
	Winner      int                `json:"winner"`
	Best        MapResponse        `json:"best"`
	Leaderboard []LeaderboardEntry `json:"leaderboard"`
	Skipped     int                `json:"skipped,omitempty"`
	CacheHit    bool               `json:"cache_hit"`
	ElapsedMS   float64            `json:"elapsed_ms"`
}

// RemapRequest is one incremental remap (POST /v1/remap): the
// previous mapping is referenced by the fingerprint a /v1/map or
// /v1/remap response returned — the delta travels, the task graph and
// placement do not. Solve carries the warm pipeline's knobs and the
// cold fallback's spec (RemapSpec.Solve verbatim, except Workers and
// TimeoutMS, which are server-controlled: Parallelism asks for solver
// workers and TimeoutMS bounds the whole remap, warm and fallback
// together). An unknown or evicted fingerprint costs a 404; clients
// recover by re-solving through /v1/map.
type RemapRequest struct {
	Fingerprint    string                  `json:"fingerprint"`
	Delta          topomap.AllocationDelta `json:"delta"`
	Solve          topomap.Solve           `json:"solve,omitempty"`
	Objective      topomap.Objective       `json:"objective,omitempty"`
	FenceThreshold float64                 `json:"fence_threshold,omitempty"`
	TimeoutMS      int64                   `json:"timeout_ms,omitempty"`
	Rankfile       bool                    `json:"rankfile,omitempty"`
	Parallelism    int                     `json:"parallelism,omitempty"`
}

// Validate fail-fasts the invariants a remap request must satisfy
// before it is allowed to hold worker slots: a fingerprint, a
// non-empty delta, server-controlled workers/timeout left unset, a
// known cold-fallback mapper, and a scoreable objective.
func (r *RemapRequest) Validate() error {
	if r.Fingerprint == "" {
		return fmt.Errorf("remap: missing fingerprint; solve through /v1/map first and present its fingerprint")
	}
	if r.Delta.Empty() {
		return fmt.Errorf("remap: empty delta; a remap needs a change")
	}
	if r.Solve.Workers != 0 {
		return fmt.Errorf("remap: solve.workers is server-controlled, use the parallelism field")
	}
	if r.Solve.TimeoutMS != 0 {
		return fmt.Errorf("remap: solve.timeout_ms is server-controlled, use the request-level timeout_ms field")
	}
	if m := strings.ToUpper(string(r.Solve.Mapper)); m != "" {
		if _, ok := registry.Lookup(m); !ok {
			return fmt.Errorf("remap: unknown mapper %q", r.Solve.Mapper)
		}
	}
	if err := r.Objective.Validate(); err != nil {
		return fmt.Errorf("remap: %w", err)
	}
	if r.Objective.NeedsSim() && r.Solve.Sim == nil {
		return fmt.Errorf("remap: objective sim_seconds needs a sim spec in solve.sim")
	}
	return nil
}

// Spec lowers the wire request onto the engine's RemapSpec, clamped
// to the server's worker grant.
func (r *RemapRequest) Spec(workers int) topomap.RemapSpec {
	s := r.Solve
	s.Mapper = topomap.Mapper(strings.ToUpper(string(s.Mapper)))
	s.Workers = workers
	return topomap.RemapSpec{Solve: s, Objective: r.Objective, FenceThreshold: r.FenceThreshold}
}

// RemapResponse is the outcome of an incremental remap: the winning
// mapping (with a fresh fingerprint, so deltas chain) plus the
// warm-vs-cold accounting. CacheHit is always true — by construction
// the route state was patched from a cached result, never rebuilt.
type RemapResponse struct {
	MapResponse
	// Warm reports that the warm-started result won; false means the
	// quality fence fell back to a cold solve and the cold result won.
	Warm bool `json:"warm"`
	// FenceTripped reports that the warm result regressed past the
	// threshold and the cold fallback ran.
	FenceTripped bool `json:"fence_tripped"`
	// PrevScore, WarmScore and ColdScore are the objective values of
	// the previous mapping, the warm result, and the cold fallback
	// (meaningful only when FenceTripped).
	PrevScore float64 `json:"prev_score"`
	WarmScore float64 `json:"warm_score"`
	ColdScore float64 `json:"cold_score,omitempty"`
	// PairsReused of PairsTotal route-cache pairs survived the delta
	// verbatim.
	PairsReused int `json:"pairs_reused"`
	PairsTotal  int `json:"pairs_total"`
	// MigratedTasks counts the tasks the delta stranded and the greedy
	// placement moved.
	MigratedTasks int `json:"migrated_tasks"`
}

// MappersResponse lists every registered mapper with its capability
// flags — the registry served over the wire.
type MappersResponse struct {
	Mappers []registry.Info `json:"mappers"`
}

// Status is the /statusz payload: live counters of the running
// service.
type Status struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Requests       int64   `json:"requests"`
	BatchRequests  int64   `json:"batch_requests"`
	Errors         int64   `json:"errors"`
	Timeouts       int64   `json:"timeouts"`
	InFlight       int64   `json:"in_flight"`
	Workers        int     `json:"workers"`
	MaxParallelism int     `json:"max_parallelism"`

	// Portfolio counters: requests served by /v1/portfolio, total
	// candidates solved on their behalf, and candidates deadlines cut
	// off before they finished.
	PortfolioRequests   int64 `json:"portfolio_requests"`
	PortfolioCandidates int64 `json:"portfolio_candidates"`
	PortfolioSkipped    int64 `json:"portfolio_skipped"`
	MaxCandidates       int   `json:"max_candidates"`

	// Remap counters: requests served by /v1/remap, how many the warm
	// path won, how many tripped the quality fence into a cold
	// fallback, and the cumulative route-cache pair reuse (reused over
	// total across every patch).
	RemapRequests    int64 `json:"remap_requests"`
	RemapWarm        int64 `json:"remap_warm"`
	RemapFallbacks   int64 `json:"remap_fallbacks"`
	RemapPairsReused int64 `json:"remap_pairs_reused"`
	RemapPairsTotal  int64 `json:"remap_pairs_total"`
	// Result cache occupancy and accounting: fingerprints /v1/remap
	// can currently resolve, the LRU's capacity, and the lookup
	// hit/miss/eviction counters (a miss forces the client back to a
	// full /v1/map solve).
	ResultEntries   int   `json:"result_entries"`
	ResultCapacity  int   `json:"result_capacity"`
	ResultHits      int64 `json:"result_hits"`
	ResultMisses    int64 `json:"result_misses"`
	ResultEvictions int64 `json:"result_evictions"`
	// ResultHitsByAge / ResultEvictionsByAge break the result-cache
	// counters down by entry age at the event (buckets lt_1s … ge_10m):
	// young evictions mean the cache thrashes below the remap interval,
	// old hits mean retention is carrying long-lived allocations.
	ResultHitsByAge      map[string]int64 `json:"result_hits_by_age"`
	ResultEvictionsByAge map[string]int64 `json:"result_evictions_by_age"`
	// Solve-memo accounting: map requests answered straight from the
	// result cache because an identical request was solved before
	// (solves are deterministic). Misses are requests that solved.
	SolveMemoHits   int64 `json:"solve_memo_hits"`
	SolveMemoMisses int64 `json:"solve_memo_misses"`

	// ProtocolRequests splits the solving traffic by envelope: "json"
	// (/v1) vs "binary" (/v2 frames).
	ProtocolRequests map[string]int64 `json:"protocol_requests"`
	// Intern-table accounting of the binary protocol's 16-byte section
	// references: hits resolve without the section traveling, a miss
	// costs the client one resend round-trip (counted in
	// InternResends when the full section arrives back).
	InternEntries   int   `json:"intern_entries"`
	InternCapacity  int   `json:"intern_capacity"`
	InternHits      int64 `json:"intern_hits"`
	InternMisses    int64 `json:"intern_misses"`
	InternEvictions int64 `json:"intern_evictions"`
	InternResends   int64 `json:"intern_resends"`

	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	CacheEntries   int     `json:"cache_entries"`
	CacheCapacity  int     `json:"cache_capacity"`
	LatencyP50MS   float64 `json:"latency_p50_ms"`
	LatencyP90MS   float64 `json:"latency_p90_ms"`
	LatencyP99MS   float64 `json:"latency_p99_ms"`
	LatencySamples int     `json:"latency_samples"`
	// EndpointLatency breaks the quantiles down per solving endpoint
	// (map, batch, portfolio, remap); the flat fields above stay the
	// combined view.
	EndpointLatency map[string]LatencySummary `json:"endpoint_latency"`
	Mappers         int                       `json:"mappers"`

	// Heterogeneous-solve observability: how many completed solves
	// recorded a makespan, their cumulative makespan (load/speed
	// units), and the load imbalance of the most recent solve.
	MakespanSolves int64   `json:"makespan_solves"`
	MakespanSum    float64 `json:"makespan_sum"`
	LoadImbalance  float64 `json:"load_imbalance"`

	// Build identity of the running binary: the Go toolchain and the
	// VCS revision it was built from ("unknown" outside a checkout).
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision"`
}

// LatencySummary is one endpoint's recent-latency quantile block in
// the /statusz payload.
type LatencySummary struct {
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
	Samples int     `json:"samples"`
}

// ErrorResponse is the uniform error payload of every non-2xx
// response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// writeJSON encodes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// writeError encodes an ErrorResponse with the given status code.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// readJSON decodes a request body into v, rejecting unknown fields
// (typos in a wire payload must fail loudly, not map with defaults)
// and bodies over limit bytes.
func readJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

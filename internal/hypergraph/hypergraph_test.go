package hypergraph

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/matrix"
)

func TestColumnNetSmall(t *testing.T) {
	// 3x3 matrix: row0={0,1}, row1={1}, row2={0,2}.
	m := matrix.FromCOO(3, 3,
		[]int32{0, 0, 1, 2, 2},
		[]int32{0, 1, 1, 0, 2})
	h := ColumnNet(m)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NV != 3 || h.NN != 3 {
		t.Fatalf("NV=%d NN=%d, want 3,3", h.NV, h.NN)
	}
	// Net 0 (column 0): rows {0,2} plus owner 0 -> {0,2}.
	pins0 := h.Pin(0)
	if len(pins0) != 2 {
		t.Fatalf("net 0 pins = %v, want 2 pins", pins0)
	}
	// Net 1 (column 1): rows {0,1}, owner 1 already included.
	if h.NetSize(1) != 2 {
		t.Fatalf("net 1 size = %d, want 2", h.NetSize(1))
	}
	// Net 2 (column 2): row {2} only; owner is 2 itself -> single pin.
	if h.NetSize(2) != 1 {
		t.Fatalf("net 2 size = %d, want 1", h.NetSize(2))
	}
	// Vertex weights = row nonzero counts.
	if h.VW[0] != 2 || h.VW[1] != 1 || h.VW[2] != 2 {
		t.Fatalf("VW = %v", h.VW)
	}
}

func TestColumnNetOwnerAdded(t *testing.T) {
	// Column 1 has a nonzero only in row 0; owner 1 must be added.
	m := matrix.FromCOO(2, 2, []int32{0, 1}, []int32{1, 0})
	h := ColumnNet(m)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range h.Pin(1) {
		if v == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("owner vertex missing from its column net")
	}
	if h.NetSize(1) != 2 {
		t.Fatalf("net 1 size = %d, want 2", h.NetSize(1))
	}
}

func TestConnectivityMatchesSpMVVolume(t *testing.T) {
	// 1D row-wise SpMV on a 4x4 tridiagonal with 2 parts {0,1} {2,3}:
	// x_1 needed by row 2 (part 1) from part 0, x_2 needed by row 1.
	// TV = 2.
	var ri, ci []int32
	for i := 0; i < 4; i++ {
		for _, j := range []int{i - 1, i, i + 1} {
			if j >= 0 && j < 4 {
				ri = append(ri, int32(i))
				ci = append(ci, int32(j))
			}
		}
	}
	m := matrix.FromCOO(4, 4, ri, ci)
	h := ColumnNet(m)
	part := []int32{0, 0, 1, 1}
	if tv := h.Connectivity(part, 2); tv != 2 {
		t.Fatalf("TV = %d, want 2", tv)
	}
	// Everything in one part: zero volume.
	if tv := h.Connectivity([]int32{0, 0, 0, 0}, 1); tv != 0 {
		t.Fatalf("TV single part = %d, want 0", tv)
	}
	// Fully split: each column net with lambda pins in distinct parts
	// costs lambda-1. Columns have sizes 2,3,3,2 -> TV = 1+2+2+1.
	if tv := h.Connectivity([]int32{0, 1, 2, 3}, 4); tv != 6 {
		t.Fatalf("TV fully split = %d, want 6", tv)
	}
}

func TestBuildDedupesPins(t *testing.T) {
	h := Build(3, [][]int32{{0, 1, 1, 2}, {2, 2}}, nil, []int64{5, 7})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NetSize(0) != 3 || h.NetSize(1) != 1 {
		t.Fatalf("net sizes = %d,%d want 3,1", h.NetSize(0), h.NetSize(1))
	}
	if h.Cost(0) != 5 || h.Cost(1) != 7 {
		t.Fatal("net costs lost")
	}
	if h.TotalVertexWeight() != 3 {
		t.Fatalf("total vw = %d, want 3 (unit)", h.TotalVertexWeight())
	}
}

func TestVertexIncidenceConsistency(t *testing.T) {
	m := gen.Mesh2D(12, 12, 5)
	h := ColumnNet(m)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// v is a pin of net n iff n is in v's net list.
	for n := 0; n < h.NN; n++ {
		for _, v := range h.Pin(n) {
			found := false
			for _, nn := range h.VertexNets(int(v)) {
				if int(nn) == n {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("net %d has pin %d but vertex lacks the net", n, v)
			}
		}
	}
}

// Property: connectivity is invariant under part relabeling.
func TestConnectivityRelabelProperty(t *testing.T) {
	m := gen.Uniform(60, 3, 5)
	h := ColumnNet(m)
	prop := func(seed int64) bool {
		// Random 4-part assignment from the seed.
		part := make([]int32, h.NV)
		s := seed
		for i := range part {
			s = s*6364136223846793005 + 1442695040888963407
			part[i] = int32((s >> 33) & 3)
		}
		base := h.Connectivity(part, 4)
		// Relabel parts by the permutation (0 1 2 3) -> (3 0 2 1).
		perm := []int32{3, 0, 2, 1}
		relabeled := make([]int32, len(part))
		for i, p := range part {
			relabeled[i] = perm[p]
		}
		return h.Connectivity(relabeled, 4) == base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectivityLowerOnContiguousParts(t *testing.T) {
	// On a banded matrix, contiguous blocks must beat round-robin.
	m := gen.Banded(400, 8, 3, 2)
	h := ColumnNet(m)
	const k = 4
	blocks := make([]int32, 400)
	rr := make([]int32, 400)
	for i := range blocks {
		blocks[i] = int32(i / 100)
		rr[i] = int32(i % k)
	}
	cb, cr := h.Connectivity(blocks, k), h.Connectivity(rr, k)
	if cb >= cr {
		t.Fatalf("contiguous TV %d >= round-robin TV %d", cb, cr)
	}
}

// Package hypergraph provides the column-net hypergraph model the
// paper's partitioning phase uses (§IV-A): for a sparse matrix, the
// rows become vertices (tasks, weighted by their nonzero counts) and
// every column becomes a net connecting the rows with a nonzero in
// that column. Partitioning this hypergraph with the connectivity-1
// objective minimizes the total communication volume of 1D row-wise
// SpMV.
package hypergraph

import (
	"fmt"

	"repro/internal/matrix"
)

// H is a hypergraph in dual CSR form: Pins lists the vertices of each
// net, and the vertex-to-net incidence is kept as well for traversal.
type H struct {
	NV int // number of vertices
	NN int // number of nets

	// Net -> pins.
	NetPtr []int32
	Pins   []int32

	// Vertex -> incident nets.
	VtxPtr []int32
	Nets   []int32

	// Weights.
	VW      []int64 // vertex weights (len NV)
	NetCost []int64 // net costs (len NN), nil = unit
}

// Pin returns the vertices of net n.
func (h *H) Pin(n int) []int32 { return h.Pins[h.NetPtr[n]:h.NetPtr[n+1]] }

// VertexNets returns the nets incident to vertex v.
func (h *H) VertexNets(v int) []int32 { return h.Nets[h.VtxPtr[v]:h.VtxPtr[v+1]] }

// NetSize returns the number of pins of net n.
func (h *H) NetSize(n int) int { return int(h.NetPtr[n+1] - h.NetPtr[n]) }

// Cost returns the cost of net n (1 when NetCost is nil).
func (h *H) Cost(n int) int64 {
	if h.NetCost == nil {
		return 1
	}
	return h.NetCost[n]
}

// TotalVertexWeight returns the sum of vertex weights.
func (h *H) TotalVertexWeight() int64 {
	var s int64
	for _, w := range h.VW {
		s += w
	}
	return s
}

// Validate checks the structural invariants, including the mutual
// consistency of the two incidence directions.
func (h *H) Validate() error {
	if len(h.NetPtr) != h.NN+1 || len(h.VtxPtr) != h.NV+1 {
		return fmt.Errorf("hypergraph: pointer array sizes wrong")
	}
	if len(h.VW) != h.NV {
		return fmt.Errorf("hypergraph: len(VW)=%d, NV=%d", len(h.VW), h.NV)
	}
	pinCount := 0
	for n := 0; n < h.NN; n++ {
		if h.NetPtr[n+1] < h.NetPtr[n] {
			return fmt.Errorf("hypergraph: NetPtr not monotone at %d", n)
		}
		for _, v := range h.Pin(n) {
			if v < 0 || int(v) >= h.NV {
				return fmt.Errorf("hypergraph: pin %d of net %d out of range", v, n)
			}
			pinCount++
		}
	}
	backCount := 0
	for v := 0; v < h.NV; v++ {
		for _, n := range h.VertexNets(v) {
			if n < 0 || int(n) >= h.NN {
				return fmt.Errorf("hypergraph: net %d of vertex %d out of range", n, v)
			}
			backCount++
		}
	}
	if pinCount != backCount {
		return fmt.Errorf("hypergraph: %d pins but %d vertex-net incidences", pinCount, backCount)
	}
	return nil
}

// ColumnNet builds the column-net hypergraph of a square sparse
// matrix: vertex i is row i with weight = nonzeros of row i (its SpMV
// computation load); net j connects the rows with a nonzero in column
// j plus row j itself (the owner of x_j, which is the source of the
// communication the net models). Nets with fewer than two pins are
// kept — they simply never contribute to connectivity.
func ColumnNet(m *matrix.CSR) *H {
	if m.Rows != m.Cols {
		panic("hypergraph: ColumnNet requires a square matrix")
	}
	n := m.Rows
	h := &H{NV: n, NN: n}
	// Build nets: pins of net j = {j} ∪ {i : a_ij ≠ 0}. Count first.
	counts := make([]int32, n)
	for i := 0; i < n; i++ {
		for _, j := range m.Row(i) {
			counts[j]++
		}
	}
	// Row j may or may not contain a_jj; reserve space for the owner
	// pin and dedupe during fill.
	h.NetPtr = make([]int32, n+1)
	for j := 0; j < n; j++ {
		h.NetPtr[j+1] = h.NetPtr[j] + counts[j] + 1
	}
	h.Pins = make([]int32, h.NetPtr[n])
	next := make([]int32, n)
	copy(next, h.NetPtr[:n])
	hasOwner := make([]bool, n)
	for i := 0; i < n; i++ {
		for _, j := range m.Row(i) {
			h.Pins[next[j]] = int32(i)
			next[j]++
			if int(j) == i {
				hasOwner[j] = true
			}
		}
	}
	for j := 0; j < n; j++ {
		if !hasOwner[j] {
			h.Pins[next[j]] = int32(j)
			next[j]++
		}
	}
	// Compact away the unused owner slots.
	write := int32(0)
	newPtr := make([]int32, n+1)
	for j := 0; j < n; j++ {
		start := h.NetPtr[j]
		newPtr[j] = write
		for p := start; p < next[j]; p++ {
			h.Pins[write] = h.Pins[p]
			write++
		}
	}
	newPtr[n] = write
	h.Pins = h.Pins[:write]
	h.NetPtr = newPtr

	// Vertex weights: row nonzero counts (computation load, §IV-A).
	h.VW = make([]int64, n)
	for i := 0; i < n; i++ {
		w := int64(m.RowNNZ(i))
		if w == 0 {
			w = 1
		}
		h.VW[i] = w
	}
	h.buildVertexIncidence()
	return h
}

func (h *H) buildVertexIncidence() {
	h.VtxPtr = make([]int32, h.NV+1)
	for n := 0; n < h.NN; n++ {
		for _, v := range h.Pin(n) {
			h.VtxPtr[v+1]++
		}
	}
	for v := 0; v < h.NV; v++ {
		h.VtxPtr[v+1] += h.VtxPtr[v]
	}
	h.Nets = make([]int32, h.NetPtr[h.NN])
	next := make([]int32, h.NV)
	copy(next, h.VtxPtr[:h.NV])
	for n := 0; n < h.NN; n++ {
		for _, v := range h.Pin(n) {
			h.Nets[next[v]] = int32(n)
			next[v]++
		}
	}
}

// Build constructs a hypergraph from explicit nets. Pins of each net
// are deduplicated.
func Build(nv int, nets [][]int32, vw []int64, netCost []int64) *H {
	h := &H{NV: nv, NN: len(nets)}
	h.NetPtr = make([]int32, len(nets)+1)
	seen := make([]int32, nv)
	for i := range seen {
		seen[i] = -1
	}
	for n, pins := range nets {
		cnt := int32(0)
		for _, v := range pins {
			if seen[v] != int32(n) {
				seen[v] = int32(n)
				cnt++
			}
		}
		h.NetPtr[n+1] = h.NetPtr[n] + cnt
	}
	for i := range seen {
		seen[i] = -1
	}
	h.Pins = make([]int32, h.NetPtr[len(nets)])
	w := int32(0)
	for n, pins := range nets {
		for _, v := range pins {
			if seen[v] != int32(n) {
				seen[v] = int32(n)
				h.Pins[w] = v
				w++
			}
		}
	}
	if vw == nil {
		vw = make([]int64, nv)
		for i := range vw {
			vw[i] = 1
		}
	}
	h.VW = vw
	h.NetCost = netCost
	h.buildVertexIncidence()
	return h
}

// Connectivity computes, for a partition vector part (values in
// [0,k)), the connectivity-1 cost sum_n cost(n)*(lambda(n)-1), which
// equals the total SpMV communication volume TV for column-net
// models.
func (h *H) Connectivity(part []int32, k int) int64 {
	mark := make([]int32, k)
	for i := range mark {
		mark[i] = -1
	}
	var total int64
	for n := 0; n < h.NN; n++ {
		lambda := int64(0)
		for _, v := range h.Pin(n) {
			p := part[v]
			if mark[p] != int32(n) {
				mark[p] = int32(n)
				lambda++
			}
		}
		if lambda > 1 {
			total += h.Cost(n) * (lambda - 1)
		}
	}
	return total
}

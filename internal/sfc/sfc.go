// Package sfc implements space-filling curves over integer lattices.
// The allocation generator uses them to emulate the locality-biased
// linear node orderings Cray's ALPS scheduler uses when it hands out
// non-contiguous node sets on a torus (Albing et al., CUG 2011), and
// the DEF baseline mapping places consecutive ranks along the same
// order.
package sfc

import "math/bits"

// HilbertD2XYZ converts a Hilbert-curve index d (0 <= d < 2^(3b)) on a
// 2^b-sided cube into lattice coordinates, using Skilling's transpose
// algorithm ("Programming the Hilbert curve", AIP 2004).
func HilbertD2XYZ(bitsPerDim int, d uint64) (x, y, z uint32) {
	var X [3]uint32
	// De-interleave d into the transpose form: bit j of the index
	// chunk i goes to X[i] bit j, MSB first across dimensions.
	for j := bitsPerDim - 1; j >= 0; j-- {
		for i := 0; i < 3; i++ {
			shift := uint(j*3 + (2 - i))
			if d>>shift&1 == 1 {
				X[i] |= 1 << uint(j)
			}
		}
	}
	transposeToAxes(&X, bitsPerDim)
	return X[0], X[1], X[2]
}

// HilbertXYZ2D is the inverse of HilbertD2XYZ.
func HilbertXYZ2D(bitsPerDim int, x, y, z uint32) uint64 {
	X := [3]uint32{x, y, z}
	axesToTranspose(&X, bitsPerDim)
	var d uint64
	for j := bitsPerDim - 1; j >= 0; j-- {
		for i := 0; i < 3; i++ {
			d <<= 1
			d |= uint64(X[i] >> uint(j) & 1)
		}
	}
	return d
}

func transposeToAxes(x *[3]uint32, b int) {
	n := uint32(2) << uint(b-1)
	// Gray decode by H ^ (H/2).
	t := x[2] >> 1
	for i := 2; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := 2; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

func axesToTranspose(x *[3]uint32, b int) {
	m := uint32(1) << uint(b-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		x[i] ^= x[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if x[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		x[i] ^= t
	}
}

// Morton3D interleaves the low 10 bits of x, y, z into a Morton
// (Z-order) code.
func Morton3D(x, y, z uint32) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

func spread(v uint32) uint64 {
	x := uint64(v) & 0x3ff
	x = (x | x<<16) & 0x30000ff
	x = (x | x<<8) & 0x300f00f
	x = (x | x<<4) & 0x30c30c3
	x = (x | x<<2) & 0x9249249
	return x
}

// Order is a linear ordering of the points of an X×Y×Z box.
type Order int

// Supported orderings.
const (
	OrderHilbert  Order = iota // Hilbert curve over the bounding cube
	OrderMorton                // Z-order over the bounding cube
	OrderRowMajor              // plain x-fastest sweep
)

// BoxOrder returns the points of the X×Y×Z box as linear indices
// (x + X*(y + Y*z)) sorted along the requested curve. Every point
// appears exactly once.
func BoxOrder(order Order, dimX, dimY, dimZ int) []int32 {
	n := dimX * dimY * dimZ
	out := make([]int32, 0, n)
	switch order {
	case OrderRowMajor:
		for z := 0; z < dimZ; z++ {
			for y := 0; y < dimY; y++ {
				for x := 0; x < dimX; x++ {
					out = append(out, int32(x+dimX*(y+dimY*z)))
				}
			}
		}
		return out
	case OrderHilbert:
		b := ceilLog2(max3(dimX, dimY, dimZ))
		if b == 0 {
			b = 1
		}
		total := uint64(1) << uint(3*b)
		for d := uint64(0); d < total; d++ {
			x, y, z := HilbertD2XYZ(b, d)
			if int(x) < dimX && int(y) < dimY && int(z) < dimZ {
				out = append(out, int32(int(x)+dimX*(int(y)+dimY*int(z))))
			}
		}
		return out
	case OrderMorton:
		b := ceilLog2(max3(dimX, dimY, dimZ))
		if b == 0 {
			b = 1
		}
		total := uint64(1) << uint(3*b)
		for d := uint64(0); d < total; d++ {
			x, y, z := mortonDecode(d)
			if int(x) < dimX && int(y) < dimY && int(z) < dimZ {
				out = append(out, int32(int(x)+dimX*(int(y)+dimY*int(z))))
			}
		}
		return out
	}
	panic("sfc: unknown order")
}

func mortonDecode(d uint64) (x, y, z uint32) {
	return compact(d), compact(d >> 1), compact(d >> 2)
}

func compact(x uint64) uint32 {
	x &= 0x9249249249249249
	x = (x | x>>2) & 0x30c30c30c30c30c3
	x = (x | x>>4) & 0xf00f00f00f00f00f
	x = (x | x>>8) & 0x00ff0000ff0000ff
	x = (x | x>>16) & 0xffff00000000ffff
	x = (x | x>>32) & 0x00000000ffffffff
	return uint32(x)
}

func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	return bits.Len(uint(v - 1))
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

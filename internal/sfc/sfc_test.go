package sfc

import (
	"testing"
	"testing/quick"
)

func TestHilbertRoundTrip(t *testing.T) {
	for _, b := range []int{1, 2, 3, 4} {
		total := uint64(1) << uint(3*b)
		for d := uint64(0); d < total; d++ {
			x, y, z := HilbertD2XYZ(b, d)
			if got := HilbertXYZ2D(b, x, y, z); got != d {
				t.Fatalf("b=%d d=%d -> (%d,%d,%d) -> %d", b, d, x, y, z, got)
			}
		}
	}
}

func TestHilbertIsBijection(t *testing.T) {
	const b = 3
	side := uint32(1) << b
	seen := map[[3]uint32]bool{}
	for d := uint64(0); d < uint64(side)*uint64(side)*uint64(side); d++ {
		x, y, z := HilbertD2XYZ(b, d)
		if x >= side || y >= side || z >= side {
			t.Fatalf("d=%d out of cube: (%d,%d,%d)", d, x, y, z)
		}
		key := [3]uint32{x, y, z}
		if seen[key] {
			t.Fatalf("duplicate point (%d,%d,%d)", x, y, z)
		}
		seen[key] = true
	}
}

// The defining property of the Hilbert curve: consecutive indices map
// to lattice points at L1 distance exactly 1.
func TestHilbertAdjacency(t *testing.T) {
	const b = 4
	total := uint64(1) << (3 * b)
	px, py, pz := HilbertD2XYZ(b, 0)
	for d := uint64(1); d < total; d++ {
		x, y, z := HilbertD2XYZ(b, d)
		dist := absDiff(x, px) + absDiff(y, py) + absDiff(z, pz)
		if dist != 1 {
			t.Fatalf("d=%d: L1 step = %d, want 1 ((%d,%d,%d)->(%d,%d,%d))",
				d, dist, px, py, pz, x, y, z)
		}
		px, py, pz = x, y, z
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestHilbertRoundTripProperty extends the exhaustive small-cube
// sweep to random points at the 10-bit resolution the geometric
// mappers quantize to: XYZ2D followed by D2XYZ must reproduce the
// point exactly.
func TestHilbertRoundTripProperty(t *testing.T) {
	const b = 10
	prop := func(x, y, z uint16) bool {
		mask := uint32(1)<<b - 1
		xx, yy, zz := uint32(x)&mask, uint32(y)&mask, uint32(z)&mask
		d := HilbertXYZ2D(b, xx, yy, zz)
		gx, gy, gz := HilbertD2XYZ(b, d)
		return gx == xx && gy == yy && gz == zz
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMortonRoundTripProperty(t *testing.T) {
	prop := func(x, y, z uint16) bool {
		xx, yy, zz := uint32(x)&0x3ff, uint32(y)&0x3ff, uint32(z)&0x3ff
		d := Morton3D(xx, yy, zz)
		gx, gy, gz := mortonDecode(d)
		return gx == xx && gy == yy && gz == zz
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxOrderCoversEveryPointOnce(t *testing.T) {
	for _, order := range []Order{OrderHilbert, OrderMorton, OrderRowMajor} {
		for _, dims := range [][3]int{
			{4, 4, 4}, {5, 3, 7}, {1, 1, 1}, {16, 12, 16},
			// Adversarial shapes: degenerate lines and planes, prime
			// extents, and heavy aspect ratios — the curve is generated
			// over the enclosing power-of-two cube and filtered, so these
			// stress the filter, not just the curve.
			{1, 1, 13}, {1, 17, 1}, {31, 1, 1}, {1, 5, 9}, {2, 1, 64}, {3, 3, 1}, {7, 11, 13},
		} {
			pts := BoxOrder(order, dims[0], dims[1], dims[2])
			n := dims[0] * dims[1] * dims[2]
			if len(pts) != n {
				t.Fatalf("order %d dims %v: len = %d, want %d", order, dims, len(pts), n)
			}
			seen := make([]bool, n)
			for _, p := range pts {
				if p < 0 || int(p) >= n {
					t.Fatalf("order %d dims %v: point %d out of range", order, dims, p)
				}
				if seen[p] {
					t.Fatalf("order %d dims %v: duplicate point %d", order, dims, p)
				}
				seen[p] = true
			}
		}
	}
}

// A space-filling ordering should be far more local than a row-major
// sweep on a cube: measure the mean L1 jump between consecutive
// points and require Hilbert to beat row-major.
func TestHilbertLocalityBeatsRowMajor(t *testing.T) {
	dims := [3]int{8, 8, 8}
	jump := func(pts []int32) float64 {
		var total float64
		for i := 1; i < len(pts); i++ {
			a, b := int(pts[i-1]), int(pts[i])
			ax, ay, az := a%dims[0], a/dims[0]%dims[1], a/(dims[0]*dims[1])
			bx, by, bz := b%dims[0], b/dims[0]%dims[1], b/(dims[0]*dims[1])
			total += float64(abs(ax-bx) + abs(ay-by) + abs(az-bz))
		}
		return total / float64(len(pts)-1)
	}
	h := jump(BoxOrder(OrderHilbert, dims[0], dims[1], dims[2]))
	r := jump(BoxOrder(OrderRowMajor, dims[0], dims[1], dims[2]))
	if h != 1.0 {
		t.Fatalf("hilbert mean jump = %f, want exactly 1 on a cube", h)
	}
	if h >= r {
		t.Fatalf("hilbert (%f) not more local than row-major (%f)", h, r)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for in, want := range cases {
		if got := ceilLog2(in); got != want {
			t.Fatalf("ceilLog2(%d) = %d, want %d", in, got, want)
		}
	}
}

package baseline

import (
	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

// TMAPGreedy mirrors LibTopoMap's greedy construction strategy (the
// library ships six algorithms, §IV-B; recursive bipartitioning — our
// TMAP — was the best in the paper's runs, greedy is the common
// alternative): starting from the heaviest task, repeatedly place the
// unmapped task with the maximum connectivity to the mapped set onto
// the free allocated node minimizing the weighted hop increase,
// scanning every free node (no BFS early exit — that is the paper's
// contribution). Like TMAP it returns DEF when it fails to improve
// MC.
func TMAPGreedy(g *graph.Graph, topo torus.Topology, a *alloc.Allocation, seed int64) []int32 {
	n := g.N()
	nodeOf := make([]int32, n)
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	free := make(map[int32]bool, n)
	for _, m := range a.Nodes[:n] {
		free[m] = true
	}
	mapped := make([]bool, n)
	conn := make([]int64, n)

	place := func(t, node int32) {
		nodeOf[t] = node
		mapped[t] = true
		delete(free, node)
		nb := g.Neighbors(int(t))
		wt := g.Weights(int(t))
		for i, u := range nb {
			if !mapped[u] {
				conn[u] += wt[i]
			}
		}
	}

	// Heaviest task first, on the first allocated node.
	var t0 int32
	var best int64 = -1
	for v := 0; v < n; v++ {
		var vol int64
		for _, w := range g.Weights(v) {
			vol += w
		}
		if vol > best {
			best, t0 = vol, int32(v)
		}
	}
	place(t0, a.Nodes[0])

	for placed := 1; placed < n; placed++ {
		// Max-connectivity unmapped task (linear scan, LibTopoMap
		// style).
		var tbest int32 = -1
		var cbest int64 = -1
		for v := 0; v < n; v++ {
			if !mapped[v] && conn[v] > cbest {
				cbest, tbest = conn[v], int32(v)
			}
		}
		// Best free node by exhaustive WH scan.
		var mbest int32 = -1
		var costBest int64
		nb := g.Neighbors(int(tbest))
		wt := g.Weights(int(tbest))
		for node := range free {
			var cost int64
			for i, u := range nb {
				if mapped[u] {
					cost += wt[i] * int64(topo.HopDist(int(node), int(nodeOf[u])))
				}
			}
			if mbest < 0 || cost < costBest || (cost == costBest && node < mbest) {
				mbest, costBest = node, cost
			}
		}
		place(tbest, mbest)
	}

	def := DEF(n, a)
	mG := metrics.Compute(g, topo, &metrics.Placement{NodeOf: nodeOf})
	mD := metrics.Compute(g, topo, &metrics.Placement{NodeOf: def})
	if mG.MC >= mD.MC {
		return def
	}
	return nodeOf
}

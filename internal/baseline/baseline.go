// Package baseline reimplements the three mappers the paper compares
// against (§IV): DEF, the SMP-style default mapping of Hopper; TMAP,
// a LibTopoMap-like recursive-bipartitioning mapper whose primary
// metric is MC and which falls back to DEF when it cannot improve it;
// and SMAP, a Scotch-like dual recursive bipartitioning mapper.
//
// These are substitutes for closed/externally-built tools; they follow
// the published algorithm sketches and reproduce the baselines'
// qualitative behaviour (DEF already strong on WH/TH thanks to
// part-id locality, TMAP ≈ DEF with occasional MC gains, SMAP often
// worse than DEF on sparse allocations).
package baseline

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/torus"
)

// DEF maps supertask g to the g-th allocated node: consecutive MPI
// ranks fill a node and nodes are taken in scheduler (SFC) order,
// exactly what Hopper's SMP-STYLE placement does (§IV-B).
func DEF(nTasks int, a *alloc.Allocation) []int32 {
	nodeOf := make([]int32, nTasks)
	for t := 0; t < nTasks; t++ {
		nodeOf[t] = a.Nodes[t%len(a.Nodes)]
	}
	return nodeOf
}

// TMAP maps the coarse task graph with recursive bipartitioning: the
// task graph and the allocated node set are bisected in lockstep
// (tasks by min edge cut, nodes geometrically by their widest
// coordinate spread) until singletons remain. If the resulting MC is
// not lower than DEF's, DEF is returned, as LibTopoMap does (§IV-B).
// On topologies without a coordinate grid (fat trees, dragonflies)
// the geometric node split degrades to an allocation-order split.
func TMAP(g *graph.Graph, topo torus.Topology, a *alloc.Allocation, seed int64) []int32 {
	nodeOf := make([]int32, g.N())
	tasks := make([]int32, g.N())
	for i := range tasks {
		tasks[i] = int32(i)
	}
	nodes := append([]int32(nil), a.Nodes[:g.N()]...)
	rbMap(g, tasks, nodes, topo, seed, true, nodeOf)

	def := DEF(g.N(), a)
	mTMAP := metrics.Compute(g, topo, &metrics.Placement{NodeOf: nodeOf})
	mDEF := metrics.Compute(g, topo, &metrics.Placement{NodeOf: def})
	if mTMAP.MC >= mDEF.MC {
		return def
	}
	return nodeOf
}

// SMAP maps with Scotch-style dual recursive bipartitioning: both the
// task graph and the node set are bisected recursively, but the node
// set is split by allocation order rather than geometry (Scotch 5.1's
// architecture decomposition does not see the sparse allocation's
// geometry, which is why the paper finds SMAP below DEF on most
// cases).
func SMAP(g *graph.Graph, topo torus.Topology, a *alloc.Allocation, seed int64) []int32 {
	nodeOf := make([]int32, g.N())
	tasks := make([]int32, g.N())
	for i := range tasks {
		tasks[i] = int32(i)
	}
	nodes := append([]int32(nil), a.Nodes[:g.N()]...)
	rbMap(g, tasks, nodes, topo, seed, false, nodeOf)
	return nodeOf
}

// rbMap recursively assigns the given tasks to the given nodes
// (|tasks| == |nodes|). When geometric is true and the topology has a
// coordinate grid, the node set is split along the dimension with the
// widest spread (LibTopoMap style); otherwise it is split in
// allocation order (Scotch style).
func rbMap(g *graph.Graph, tasks, nodes []int32, topo torus.Topology, seed int64, geometric bool, out []int32) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		out[tasks[0]] = nodes[0]
		return
	}
	nl := len(nodes) / 2
	var nodesL, nodesR []int32
	if ct, ok := torus.CoordsOf(topo); geometric && ok {
		nodesL, nodesR = splitGeometric(nodes, nl, ct)
	} else {
		nodesL = append([]int32(nil), nodes[:nl]...)
		nodesR = append([]int32(nil), nodes[nl:]...)
	}
	// Bisect the task subgraph with target sizes |nodesL| and |nodesR|
	// (unit task weights: one task per node).
	sub, _ := g.InducedSubgraph(tasks)
	unit := make([]int64, sub.N())
	for i := range unit {
		unit[i] = 1
	}
	sub.VW = unit
	part, err := partition.PartitionTargets(sub, []int64{int64(len(nodesL)), int64(len(nodesR))},
		partition.Options{Seed: seed, Imbalance: 0.001})
	if err != nil {
		// Cannot happen with valid targets; degrade to order split.
		part = make([]int32, sub.N())
		for i := range part {
			if i >= len(nodesL) {
				part[i] = 1
			}
		}
	}
	// Hard-fit the side sizes to the node counts.
	fitSides(sub, part, len(nodesL), len(nodesR))
	var tasksL, tasksR []int32
	for i, t := range tasks {
		if part[i] == 0 {
			tasksL = append(tasksL, t)
		} else {
			tasksR = append(tasksR, t)
		}
	}
	rbMap(g, tasksL, nodesL, topo, seed+1, geometric, out)
	rbMap(g, tasksR, nodesR, topo, seed+2, geometric, out)
}

// splitGeometric splits nodes into two sets of sizes nl and
// len(nodes)-nl along the grid dimension with the widest coordinate
// spread among the set.
func splitGeometric(nodes []int32, nl int, topo torus.CoordTopology) (left, right []int32) {
	dims := topo.NDims()
	coords := make([][]int, len(nodes))
	var buf []int
	for i, m := range nodes {
		buf = topo.Coord(int(m), buf[:0])
		coords[i] = append([]int(nil), buf...)
	}
	bestDim, bestSpread := 0, -1
	for d := 0; d < dims; d++ {
		lo, hi := 1<<30, -1
		for i := range coords {
			c := coords[i][d]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if s := hi - lo; s > bestSpread {
			bestSpread, bestDim = s, d
		}
	}
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := coords[order[a]], coords[order[b]]
		if ca[bestDim] != cb[bestDim] {
			return ca[bestDim] < cb[bestDim]
		}
		return nodes[order[a]] < nodes[order[b]]
	})
	for i, oi := range order {
		if i < nl {
			left = append(left, nodes[oi])
		} else {
			right = append(right, nodes[oi])
		}
	}
	return left, right
}

// fitSides forces exactly wantL vertices on side 0 by moving the
// least-connected boundary vertices.
func fitSides(g *graph.Graph, part []int32, wantL, wantR int) {
	count := [2]int{}
	for _, p := range part {
		count[p]++
	}
	for count[0] != wantL {
		var from, to int32
		if count[0] > wantL {
			from, to = 0, 1
		} else {
			from, to = 1, 0
		}
		// Move the vertex with the best (gain to other side).
		var bestV int32 = -1
		var bestGain int64 = -1 << 62
		for v := 0; v < g.N(); v++ {
			if part[v] != from {
				continue
			}
			var gain int64
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				if part[g.Adj[i]] == to {
					gain += g.EdgeWeight(int(i))
				} else {
					gain -= g.EdgeWeight(int(i))
				}
			}
			if gain > bestGain {
				bestGain, bestV = gain, int32(v)
			}
		}
		part[bestV] = to
		count[from]--
		count[to]++
	}
	_ = wantR
}

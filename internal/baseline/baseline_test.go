package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/torus"
)

func fixture(t *testing.T, n int, seed int64) (*torus.Torus, *alloc.Allocation) {
	t.Helper()
	topo := torus.NewHopper3D(8, 8, 8)
	a, err := alloc.Generate(topo, n, alloc.Config{Mode: alloc.Sparse, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return topo, a
}

func checkValid(t *testing.T, g *graph.Graph, a *alloc.Allocation, nodeOf []int32) {
	t.Helper()
	allocated := map[int32]bool{}
	for _, m := range a.Nodes {
		allocated[m] = true
	}
	used := map[int32]bool{}
	for tk, m := range nodeOf {
		if !allocated[m] {
			t.Fatalf("task %d on unallocated node %d", tk, m)
		}
		if used[m] {
			t.Fatalf("node %d reused", m)
		}
		used[m] = true
	}
}

func TestDEFFollowsAllocationOrder(t *testing.T) {
	_, a := fixture(t, 16, 1)
	nodeOf := DEF(16, a)
	for i := 0; i < 16; i++ {
		if nodeOf[i] != a.Nodes[i] {
			t.Fatalf("DEF[%d] = %d, want %d", i, nodeOf[i], a.Nodes[i])
		}
	}
}

func TestTMAPValidAndMCNoWorseThanDEF(t *testing.T) {
	topo, a := fixture(t, 32, 3)
	g := graph.RandomConnected(32, 80, 20, 4)
	nodeOf := TMAP(g, topo, a, 5)
	checkValid(t, g, a, nodeOf)
	mT := metrics.Compute(g, topo, &metrics.Placement{NodeOf: nodeOf})
	mD := metrics.Compute(g, topo, &metrics.Placement{NodeOf: DEF(32, a)})
	// The defining property: TMAP never returns something with MC
	// above DEF's (it falls back to DEF).
	if mT.MC > mD.MC {
		t.Fatalf("TMAP MC %f > DEF MC %f", mT.MC, mD.MC)
	}
}

func TestSMAPValid(t *testing.T) {
	topo, a := fixture(t, 24, 7)
	g := graph.RandomConnected(24, 60, 10, 8)
	nodeOf := SMAP(g, topo, a, 9)
	checkValid(t, g, a, nodeOf)
}

func TestSplitGeometricSeparates(t *testing.T) {
	topo := torus.NewHopper3D(8, 8, 8)
	// Nodes along a line in X: split must give low-X vs high-X halves.
	var nodes []int32
	for x := 0; x < 8; x++ {
		nodes = append(nodes, int32(topo.NodeAt([]int{x, 0, 0})))
	}
	l, r := splitGeometric(nodes, 4, topo)
	if len(l) != 4 || len(r) != 4 {
		t.Fatalf("split sizes %d/%d", len(l), len(r))
	}
	var buf []int
	for _, m := range l {
		buf = topo.Coord(int(m), buf[:0])
		if buf[0] >= 4 {
			t.Fatalf("left half contains x=%d", buf[0])
		}
	}
}

func TestRBMapSingletons(t *testing.T) {
	topo, a := fixture(t, 2, 11)
	g := graph.Ring(2)
	nodeOf := SMAP(g, topo, a, 12)
	checkValid(t, g, a, nodeOf)
}

func TestTMAPKeepsCommunicatingTasksClose(t *testing.T) {
	// Path task graph on a contiguous allocation: recursive
	// bipartitioning should beat a scrambled placement on WH.
	topo := torus.NewHopper3D(8, 8, 8)
	a, err := alloc.Generate(topo, 16, alloc.Config{Mode: alloc.Contiguous, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var us, vs []int32
	var ws []int64
	for i := 0; i < 15; i++ {
		us = append(us, int32(i), int32(i+1))
		vs = append(vs, int32(i+1), int32(i))
		ws = append(ws, 5, 5)
	}
	g := graph.FromEdges(16, us, vs, ws, nil)
	nodeOf := TMAP(g, topo, a, 14)
	checkValid(t, g, a, nodeOf)
	scrambled := make([]int32, 16)
	for i := range scrambled {
		scrambled[i] = a.Nodes[(i*5)%16]
	}
	whT := metrics.WeightedHops(g, topo, nodeOf)
	whS := metrics.WeightedHops(g, topo, scrambled)
	if whT >= whS {
		t.Fatalf("TMAP WH %d not better than scrambled %d", whT, whS)
	}
}

func TestFitSidesExact(t *testing.T) {
	g := graph.Ring(6)
	part := []int32{0, 0, 0, 0, 0, 1}
	fitSides(g, part, 3, 3)
	c := [2]int{}
	for _, p := range part {
		c[p]++
	}
	if c[0] != 3 || c[1] != 3 {
		t.Fatalf("fitSides result %v", part)
	}
}

func TestTMAPGreedyValidAndFallsBack(t *testing.T) {
	topo, a := fixture(t, 28, 15)
	g := graph.RandomConnected(28, 70, 15, 16)
	nodeOf := TMAPGreedy(g, topo, a, 17)
	checkValid(t, g, a, nodeOf)
	mG := metrics.Compute(g, topo, &metrics.Placement{NodeOf: nodeOf})
	mD := metrics.Compute(g, topo, &metrics.Placement{NodeOf: DEF(28, a)})
	// Defining property shared with TMAP: MC never above DEF's.
	if mG.MC > mD.MC {
		t.Fatalf("TMAPGreedy MC %f > DEF %f", mG.MC, mD.MC)
	}
}

func TestTMAPGreedyDeterministic(t *testing.T) {
	topo, a := fixture(t, 16, 18)
	g := graph.RandomConnected(16, 40, 8, 19)
	m1 := TMAPGreedy(g, topo, a, 20)
	m2 := TMAPGreedy(g, topo, a, 20)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("TMAPGreedy not deterministic")
		}
	}
}

func TestTMAPDeterministic(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := alloc.Generate(topo, 16, alloc.Config{Mode: alloc.Sparse, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(16, 40, 30, 3)
	m1 := TMAP(g, topo, a, 1)
	m2 := TMAP(g, topo, a, 1)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("TMAP not deterministic at %d", i)
		}
	}
}

func TestSMAPDeterministic(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	a, err := alloc.Generate(topo, 16, alloc.Config{Mode: alloc.Sparse, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.RandomConnected(16, 40, 30, 9)
	m1 := SMAP(g, topo, a, 1)
	m2 := SMAP(g, topo, a, 1)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("SMAP not deterministic at %d", i)
		}
	}
}

func TestBaselinesPermutationProperty(t *testing.T) {
	topo := torus.NewHopper3D(6, 6, 6)
	f := func(seed int64, nn uint8) bool {
		n := 4 + int(nn%12)
		a, err := alloc.Generate(topo, n, alloc.Config{Mode: alloc.Sparse, Seed: seed})
		if err != nil {
			return false
		}
		g := graph.RandomConnected(n, 3*n, 20, seed*3+1)
		for _, nodeOf := range [][]int32{
			DEF(n, a),
			TMAP(g, topo, a, seed),
			TMAPGreedy(g, topo, a, seed),
			SMAP(g, topo, a, seed),
		} {
			if len(nodeOf) != n {
				return false
			}
			allocated := map[int32]bool{}
			for _, m := range a.Nodes {
				allocated[m] = true
			}
			used := map[int32]bool{}
			for _, m := range nodeOf {
				if !allocated[m] || used[m] {
					return false
				}
				used[m] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

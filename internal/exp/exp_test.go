package exp

import (
	"strings"
	"testing"

	"repro/internal/metrics"

	topomap "repro"
)

// The experiment tests run at Tiny scale; they validate that every
// figure/table pipeline executes end to end and emits the expected
// rows, and spot-check the headline qualitative shapes.

func TestFigure1Tiny(t *testing.T) {
	cfg := TinyConfig()
	out, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range topomap.Partitioners() {
		if !strings.Contains(out, string(p)) {
			t.Fatalf("figure 1 missing partitioner %s:\n%s", p, out)
		}
	}
	// PATOH normalized to itself must produce 1.000 rows.
	if !selfNormalizedRow(out, "PATOH", 4) {
		t.Fatalf("PATOH row not self-normalized:\n%s", out)
	}
}

// selfNormalizedRow reports whether a row for the given label carries
// n cells equal to 1.000 (robust to column widths).
func selfNormalizedRow(out, label string, n int) bool {
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, label) {
			continue
		}
		if strings.Count(line, "1.000") == n {
			return true
		}
	}
	return false
}

func TestFigure2Tiny(t *testing.T) {
	cfg := TinyConfig()
	out, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range topomap.Mappers() {
		if !strings.Contains(out, string(mp)) {
			t.Fatalf("figure 2 missing mapper %s:\n%s", mp, out)
		}
	}
	if !selfNormalizedRow(out, "DEF", 4) {
		t.Fatalf("DEF row not self-normalized:\n%s", out)
	}
}

func TestFigure3Tiny(t *testing.T) {
	cfg := TinyConfig()
	out, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UG") || !strings.Contains(out, "TMAP") {
		t.Fatalf("figure 3 incomplete:\n%s", out)
	}
}

func TestFigure4Tiny(t *testing.T) {
	cfg := TinyConfig()
	out, err := Figure4(cfg, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CommTime") {
		t.Fatalf("figure 4 missing time column:\n%s", out)
	}
	if _, err := Figure4(cfg, "c"); err == nil {
		t.Fatal("want error for unknown variant")
	}
}

func TestFigure5Tiny(t *testing.T) {
	cfg := TinyConfig()
	out, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TpetraTime") {
		t.Fatalf("figure 5 missing time column:\n%s", out)
	}
}

func TestTable1Tiny(t *testing.T) {
	cfg := TinyConfig()
	out, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"cagelike SpMV", "cagelike Comm", "rgg Comm", "Gmean"} {
		if !strings.Contains(out, label) {
			t.Fatalf("table 1 missing %q:\n%s", label, out)
		}
	}
}

func TestRegressionTiny(t *testing.T) {
	cfg := TinyConfig()
	out, err := Regression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range regressionColumns {
		if !strings.Contains(out, col) {
			t.Fatalf("regression missing column %s:\n%s", col, out)
		}
	}
	if !strings.Contains(out, "SpMV") || !strings.Contains(out, "communication-only") {
		t.Fatalf("regression missing a workload:\n%s", out)
	}
}

func TestSuiteSharesCache(t *testing.T) {
	s := NewSuite(TinyConfig())
	if _, err := s.Figure2(); err != nil {
		t.Fatal(err)
	}
	cached := len(s.c.tgs)
	if cached == 0 {
		t.Fatal("suite cached nothing")
	}
	// Figure 3 uses the same PATOH task graphs: the cache must not
	// need any new partitioning runs.
	if _, err := s.Figure3(); err != nil {
		t.Fatal(err)
	}
	if len(s.c.tgs) != cached {
		t.Fatalf("figure 3 re-partitioned: %d -> %d cache entries", cached, len(s.c.tgs))
	}
}

func TestConfigs(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), TinyConfig(), PaperConfig()} {
		if cfg.ProcsPerNode != 16 {
			t.Fatalf("paper uses 16 procs/node, config has %d", cfg.ProcsPerNode)
		}
		if len(cfg.PartCounts) == 0 || cfg.Reps <= 0 || cfg.Allocations <= 0 {
			t.Fatalf("degenerate config: %+v", cfg)
		}
		topo := cfg.torus()
		maxNodes := cfg.PartCounts[len(cfg.PartCounts)-1] / cfg.ProcsPerNode
		if maxNodes > topo.Nodes() {
			t.Fatalf("config needs %d nodes but machine has %d", maxNodes, topo.Nodes())
		}
	}
	if len(PaperConfig().matrices()) != 25 {
		t.Fatal("paper config should use the whole dataset")
	}
}

func TestMetricValuePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown metric")
		}
	}()
	metricValue(metrics.MapMetrics{}, "NOPE")
}

package exp

import (
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/torus"
)

// Ablations reports the extension experiments of DESIGN.md §7 that
// fall outside the paper's figures: the multilevel mapper (§III-B)
// against UG/UWH, and the dynamic-routing variant (§III-C) against
// the static congestion refinement, scored both by expected
// congestion and by the multipath simulator. One deterministic
// instance (a random coarse graph on a Hopper-like torus) keeps the
// run to seconds; the benchmark harness covers the same comparisons
// under `go test -bench=BenchmarkAblation`.
func Ablations(cfg Config) (string, error) {
	topo := torus.NewHopper3D(cfg.TorusDims[0], cfg.TorusDims[1], cfg.TorusDims[2])
	n := cfg.PartCounts[len(cfg.PartCounts)-1] / cfg.ProcsPerNode
	if n < 8 {
		n = 8
	}
	if n > topo.Nodes()/2 {
		n = topo.Nodes() / 2
	}
	a, err := alloc.Generate(topo, n, alloc.Config{
		Mode: alloc.Sparse, Seed: cfg.Seed, ProcsPerNode: cfg.ProcsPerNode,
	})
	if err != nil {
		return "", err
	}
	g := graph.RandomConnected(n, 4*n, 100, cfg.Seed+1)

	out := &stats.Table{
		Title: fmt.Sprintf("Extension ablations (%d supertasks, %dx%dx%d torus)",
			n, cfg.TorusDims[0], cfg.TorusDims[1], cfg.TorusDims[2]),
		Headers: []string{"variant", "WH", "EMC(us)", "adaptiveSim(us)", "mapTime(ms)"},
	}
	row := func(name string, mapFn func() []int32) {
		start := time.Now()
		nodeOf := mapFn()
		dt := time.Since(start)
		pl := &metrics.Placement{NodeOf: nodeOf}
		wh := metrics.WeightedHops(g, topo, nodeOf)
		emc := metrics.ComputeAdaptive(g, topo, pl).EMC
		sim := netsim.CommOnlyAdaptive(g, topo, pl, 4096,
			netsim.Params{Seed: cfg.Seed, NoiseSigma: 1e-9}).Seconds
		out.AddRow(name,
			fmt.Sprint(wh),
			fmt.Sprintf("%.4f", emc*1e6),
			fmt.Sprintf("%.2f", sim*1e6),
			fmt.Sprintf("%.1f", dt.Seconds()*1e3))
	}
	row("UG (Alg 1)", func() []int32 { return core.MapUG(g, topo, a.Nodes) })
	row("UWH (Alg 1+2)", func() []int32 { return core.MapUWH(g, topo, a.Nodes) })
	row("UML (multilevel, §III-B)", func() []int32 {
		return core.MapUML(g, topo, a.Nodes, core.MultilevelOptions{})
	})
	row("UMC (Alg 3, static model)", func() []int32 { return core.MapUMC(g, topo, a.Nodes) })
	row("UMCA (Alg 3, adaptive model, §III-C)", func() []int32 {
		return core.MapUMCA(g, topo, a.Nodes)
	})
	return render(out), nil
}

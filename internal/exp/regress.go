package exp

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/nnls"
	"repro/internal/parallel"
	"repro/internal/partitioners"
	"repro/internal/stats"
)

// regressionColumns are the 14 covariates of the §IV-E analysis, in
// the paper's listing order: partitioning metrics, mapping metrics,
// and the node-level communication covariates.
var regressionColumns = []string{
	"MSV", "TV", "MSM", "TM",
	"WH", "TH", "MC", "MMC", "AC", "AMC",
	"ICV", "ICM", "MNRV", "MNRM",
}

// Regression regenerates the §IV-E analysis: it collects the
// communication-only and SpMV executions of the cagelike graphs over
// all partitioners, mappers and two allocations, standardizes the 14
// metric columns, solves the nonnegative least squares problem for
// the execution time, and reports the nonzero coefficients plus the
// Pearson correlations with the dominant metric.
func Regression(cfg Config) (string, error) { return NewSuite(cfg).Regression() }

// Regression is the shared-cache variant.
func (s *Suite) Regression() (string, error) {
	out := ""
	for _, kind := range []string{"comm", "spmv"} {
		txt, err := s.regressOne(kind)
		if err != nil {
			return "", err
		}
		out += txt + "\n"
	}
	return out, nil
}

func (s *Suite) regressOne(kind string) (string, error) {
	c := s.c
	cfg := s.cfg
	topo := cfg.torus()
	k := cfg.PartCounts[len(cfg.PartCounts)-1]
	nNodes := k / cfg.ProcsPerNode
	scale := 4096.0
	iters := 500

	var rows [][]float64 // covariates per execution
	var times []float64
	type sample struct {
		rows  [][]float64
		times []float64
	}
	for ai := 0; ai < 2; ai++ {
		a, err := c.allocOf(topo, nNodes, cfg.Seed+int64(ai)*101)
		if err != nil {
			return "", err
		}
		// One parallel unit per partitioner; samples are appended in
		// partitioner order afterwards, identical to a serial run.
		parts := partitioners.All()
		samples, err := parallel.Map(len(parts), 0, func(pi int) (sample, error) {
			tg, err := c.taskGraphOf(gen.Cagelike, parts[pi], k)
			if err == errSkip {
				return sample{}, nil
			}
			if err != nil {
				return sample{}, err
			}
			pm := tg.PartitionMetrics()
			var sm sample
			for _, mp := range commMappers() {
				res, _, err := c.mapCase(mp, tg, topo, a, cfg.Seed)
				if err != nil {
					return sample{}, err
				}
				m := res.Metrics
				sm.rows = append(sm.rows, []float64{
					float64(pm.MSV), float64(pm.TV), float64(pm.MSM), float64(pm.TM),
					float64(m.WH), float64(m.TH), m.MC, float64(m.MMC), m.AC, m.AMC,
					float64(m.ICV), float64(m.ICM), float64(m.MNRV), float64(m.MNRM),
				})
				t, _ := c.simulate(kind, tg, topo, res.Placement(), scale, iters)
				sm.times = append(sm.times, t)
			}
			return sm, nil
		})
		if err != nil {
			return "", err
		}
		for _, sm := range samples {
			rows = append(rows, sm.rows...)
			times = append(times, sm.times...)
		}
		c.progressf("  regression %s: allocation %d done\n", kind, ai)
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("exp: no regression samples")
	}

	// Standardize columns (and the target, as lsqnonneg users do to
	// make coefficients comparable).
	nCols := len(regressionColumns)
	cols := make([][]float64, nCols)
	for j := 0; j < nCols; j++ {
		cols[j] = make([]float64, len(rows))
		for i := range rows {
			cols[j][i] = rows[i][j]
		}
	}
	// Keep raw copies for the correlation report.
	raw := make([][]float64, nCols)
	for j := range cols {
		raw[j] = append([]float64(nil), cols[j]...)
	}
	nnls.Standardize(cols)
	A := make([][]float64, len(rows))
	for i := range rows {
		A[i] = make([]float64, nCols)
		for j := 0; j < nCols; j++ {
			A[i][j] = cols[j][i]
		}
	}
	target := append([]float64(nil), times...)
	nnls.Standardize([][]float64{target})
	coef, err := nnls.Solve(A, target, 0)
	if err != nil {
		return "", err
	}

	label := "communication-only"
	if kind == "spmv" {
		label = "SpMV"
	}
	tab := &stats.Table{
		Title:   fmt.Sprintf("Regression (§IV-E), %s, %d samples: NNLS coefficients and Pearson r", label, len(rows)),
		Headers: []string{"metric", "coefficient", "pearson-r(time)"},
	}
	type item struct {
		name string
		c    float64
		r    float64
	}
	var items []item
	for j, name := range regressionColumns {
		items = append(items, item{name, coef[j], nnls.Pearson(raw[j], times)})
	}
	sort.Slice(items, func(a, b int) bool { return items[a].c > items[b].c })
	for _, it := range items {
		tab.AddRow(it.name, fmt.Sprintf("%.4f", it.c), fmt.Sprintf("%.3f", it.r))
	}
	return render(tab), nil
}

package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
)

// Medium-scale shape check for the UMMC message-graph fix.
func TestShapeMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale shape check")
	}
	cfg := Config{
		Tier:         gen.Small,
		TorusDims:    [3]int{8, 8, 8},
		ProcsPerNode: 16,
		PartCounts:   []int{1024},
		Matrices:     []string{"mesh3d-a", "struct-a"},
		Allocations:  2,
		Reps:         3,
		Seed:         1,
	}
	out, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	// The headline qualitative shapes of Figure 2 (everything is
	// deterministic for fixed seeds, so these are stable):
	// UWH clearly improves WH over DEF; UMC clearly improves MC;
	// UMMC clearly improves MMC.
	checks := []struct {
		mapper string
		col    int // 0=TH 1=WH 2=MMC 3=MC
		max    float64
	}{
		{"UWH", 1, 0.95},
		{"UMC", 3, 0.80},
		{"UMMC", 2, 0.90},
	}
	for _, c := range checks {
		v, ok := figure2Cell(out, c.mapper, c.col)
		if !ok {
			t.Fatalf("mapper %s missing from output", c.mapper)
		}
		if v > c.max {
			t.Errorf("%s column %d = %.3f, want <= %.2f\n%s", c.mapper, c.col, v, c.max, out)
		}
	}
}

// figure2Cell extracts a normalized metric cell from the rendered
// Figure 2 table.
func figure2Cell(out, mapper string, col int) (float64, bool) {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && fields[1] == mapper {
			v, err := strconv.ParseFloat(fields[2+col], 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

package exp

import "testing"

// The harness runs its cases on a worker pool; these tests pin the
// contract that parallel execution produces byte-identical output to
// any other run (results are always aggregated in index order).

func TestFigure2Deterministic(t *testing.T) {
	cfg := TinyConfig()
	a, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Figure2 differs between runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestSuiteSharedCacheMatchesFresh(t *testing.T) {
	// A figure produced from a warm shared cache must equal one from
	// a fresh cache (memoization must not change results).
	cfg := TinyConfig()
	s := NewSuite(cfg)
	if _, err := s.Figure1(); err != nil { // warms the PATOH cases
		t.Fatal(err)
	}
	warm, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm != fresh {
		t.Fatalf("shared-cache Figure2 differs from fresh run")
	}
}

func TestTable1Deterministic(t *testing.T) {
	cfg := TinyConfig()
	a, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Table1 differs between runs")
	}
}

func TestAblationsRuns(t *testing.T) {
	cfg := TinyConfig()
	out, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"UG", "UWH", "UML", "UMC", "UMCA", "EMC"} {
		if !containsStr(out, want) {
			t.Fatalf("ablations output missing %q:\n%s", want, out)
		}
	}
	again, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except the wall-clock mapTime column must be
	// deterministic.
	if stripLastColumn(out) != stripLastColumn(again) {
		t.Fatalf("ablations quality columns not deterministic:\n%s\n---\n%s", out, again)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func stripLastColumn(s string) string {
	var out []byte
	lineStart := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[lineStart:i]
			// Drop the final whitespace-separated field.
			end := len(line)
			for end > 0 && line[end-1] != ' ' && line[end-1] != '\t' {
				end--
			}
			out = append(out, line[:end]...)
			out = append(out, '\n')
			lineStart = i + 1
		}
	}
	return string(out)
}

func TestRegressionDeterministic(t *testing.T) {
	cfg := TinyConfig()
	a, err := Regression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Regression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Regression differs between runs")
	}
}
